GO ?= go

.PHONY: all build test race bench bench-compare fmt vet golden

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark run; BenchmarkBatchVsTuple is the batched-vs-tuple
# engine comparison the performance bars are measured on.
bench:
	$(GO) test -run XXX -bench . -benchtime=10x ./internal/exec ./internal/bench

# Regenerate the committed batch-vs-tuple baseline (BENCH_N.json).
bench-compare:
	$(GO) run ./cmd/fuzzybench -compare -scalediv 8

# Regenerate the golden EXPLAIN plans (internal/core/testdata/golden)
# after an intentional planner change; the diff is the review artifact.
golden:
	$(GO) test ./internal/core -run TestGoldenPlans -update-golden

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...
