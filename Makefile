GO ?= go

.PHONY: all build test race bench bench-compare bench-check crash fmt vet golden serve server-smoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark run; BenchmarkBatchVsTuple is the batched-vs-tuple
# engine comparison the performance bars are measured on.
bench:
	$(GO) test -run XXX -bench . -benchtime=10x ./internal/exec ./internal/bench

# Regenerate the committed batch-vs-tuple baseline (BENCH_N.json).
bench-compare:
	$(GO) run ./cmd/fuzzybench -compare -scalediv 8

# CI's bench-regression smoke: re-measure table1 against the committed
# baseline and fail on a >25% cold-wall regression.
bench-check:
	$(GO) run ./cmd/benchcheck -baseline BENCH_9.json -experiments table1 -threshold 1.6

# The crash-recovery fault-injection sweep (CRASH_SEED varies the torn
# prefix length and flipped bit position; CI runs seeds 1-4).
crash:
	$(GO) test -run TestCrashRecovery -count=1 -v ./internal/workload

# Regenerate the golden EXPLAIN plans (internal/core/testdata/golden)
# after an intentional planner change; the diff is the review artifact.
golden:
	$(GO) test ./internal/core -run TestGoldenPlans -update-golden

# Run the network server on the default port with a throwaway database.
serve:
	$(GO) run ./cmd/fuzzydbd

# CI's live-server smoke: start fuzzydbd, drive it with 200 concurrent
# fuzzyload connections (answers verified), SIGTERM, require a clean
# checkpointed shutdown.
server-smoke:
	$(GO) build -o /tmp/fuzzydbd ./cmd/fuzzydbd
	$(GO) build -o /tmp/fuzzyload ./cmd/fuzzyload
	/tmp/fuzzydbd -addr 127.0.0.1:4540 & \
	pid=$$!; sleep 1; \
	/tmp/fuzzyload -addr 127.0.0.1:4540 -connections 200 -duration 5s; rc=$$?; \
	kill -TERM $$pid; wait $$pid; \
	exit $$rc

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...
