// Package client is the Go client for fuzzydbd, the fuzzy database's
// network server. It mirrors the embedded pkg/fuzzydb API — Exec, Query
// returning a streaming Rows, Prepare returning a Stmt — over the
// internal/wire protocol, and surfaces server failures as the same typed
// *fuzzydb.Error values the embedded API returns, reconstructed from the
// code each Error frame carries.
//
//	conn, err := client.Dial("localhost:4540")
//	defer conn.Close()
//	rows, err := conn.Query(ctx, `SELECT F.NAME FROM F WHERE F.AGE = 'young'`)
//	for rows.Next() { ... }
//
// A Conn is safe for concurrent use: requests serialize over the single
// connection. Open several Conns for parallelism.
package client

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
	"repro/pkg/fuzzydb"
)

// Conn is one connection to a fuzzydbd server.
type Conn struct {
	mu     sync.Mutex
	c      net.Conn
	r      *bufio.Reader
	w      *bufio.Writer
	closed bool
}

// Dial connects to a fuzzydbd server and performs the handshake.
func Dial(addr string) (*Conn, error) {
	return DialContext(context.Background(), addr)
}

// DialContext is Dial observing ctx for the connect and handshake.
func DialContext(ctx context.Context, addr string) (*Conn, error) {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Conn{c: nc, r: bufio.NewReader(nc), w: bufio.NewWriter(nc)}
	c.applyDeadline(ctx)
	if err := c.send(&wire.Hello{Version: wire.Version, Client: "fuzzydb-go-client"}); err != nil {
		nc.Close()
		return nil, err
	}
	msg, err := c.read()
	if err != nil {
		nc.Close()
		return nil, err
	}
	if _, ok := msg.(*wire.HelloOK); !ok {
		nc.Close()
		if e, ok := msg.(*wire.Error); ok {
			return nil, decodeError(e)
		}
		return nil, fuzzydb.NewError(fuzzydb.CodeProtocol, fmt.Sprintf("handshake: unexpected %s", msg.Type()))
	}
	c.clearDeadline()
	return c, nil
}

// Close sends Quit and closes the connection. It is idempotent.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	wire.Write(c.w, &wire.Quit{}) // best effort; the close is authoritative
	c.w.Flush()
	return c.c.Close()
}

// Exec runs a Fuzzy SQL script on the server, discarding query answers.
func (c *Conn) Exec(ctx context.Context, sql string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, err := c.roundTrip(ctx, &wire.Exec{SQL: sql})
	return err
}

// Begin opens an explicit transaction on the connection's server-side
// session: reads see the snapshot taken at Begin plus the transaction's
// own writes, until Commit or Rollback. A write-write conflict with a
// concurrently committed transaction aborts it with CodeTxnConflict
// (the transaction is already rolled back; retry from Begin — the
// connection stays usable).
func (c *Conn) Begin(ctx context.Context) error { return c.Exec(ctx, "BEGIN") }

// Commit makes the open transaction's writes durable and visible.
func (c *Conn) Commit(ctx context.Context) error { return c.Exec(ctx, "COMMIT") }

// Rollback discards the open transaction's writes. Disconnecting with a
// transaction open rolls it back server-side as well.
func (c *Conn) Rollback(ctx context.Context) error { return c.Exec(ctx, "ROLLBACK") }

// Checkpoint forces a server-side checkpoint.
func (c *Conn) Checkpoint(ctx context.Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, err := c.roundTrip(ctx, &wire.Checkpoint{})
	return err
}

// Query evaluates one SELECT. The whole answer streams back immediately
// (in batches) and iterates without further round trips.
func (c *Conn) Query(ctx context.Context, sql string) (*Rows, error) {
	return c.query(ctx, &wire.Query{SQL: sql}, 0)
}

// QueryFetch is Query in cursor mode: the server suspends the answer
// after fetchSize rows and Rows pulls further windows on demand (each a
// round trip). fetchSize 0 behaves like Query.
func (c *Conn) QueryFetch(ctx context.Context, sql string, fetchSize int) (*Rows, error) {
	return c.query(ctx, &wire.Query{SQL: sql, FetchSize: uint32(fetchSize)}, fetchSize)
}

// Prepare parses one statement server-side, returning its handle.
func (c *Conn) Prepare(ctx context.Context, sql string) (*Stmt, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	msg, err := c.roundTrip(ctx, &wire.Parse{SQL: sql})
	if err != nil {
		return nil, err
	}
	ok, isOK := msg.(*wire.ParseOK)
	if !isOK {
		return nil, fuzzydb.NewError(fuzzydb.CodeProtocol, fmt.Sprintf("expected ParseOK, got %s", msg.Type()))
	}
	return &Stmt{conn: c, id: ok.Stmt, numParams: int(ok.NumParams), isQuery: ok.IsQuery}, nil
}

// Stmt is a statement prepared on the server: parse (and for
// parameterless queries, plan) once, execute many times.
type Stmt struct {
	conn      *Conn
	id        uint32
	numParams int
	isQuery   bool
	closed    bool
}

// NumParams returns the number of '?' parameters.
func (s *Stmt) NumParams() int { return s.numParams }

// IsQuery reports whether executing the statement returns rows.
func (s *Stmt) IsQuery() bool { return s.isQuery }

// Exec executes a prepared non-query statement with the given arguments
// (numbers or strings, one per '?').
func (s *Stmt) Exec(ctx context.Context, args ...any) error {
	bound, err := wireArgs(args)
	if err != nil {
		return err
	}
	c := s.conn
	c.mu.Lock()
	defer c.mu.Unlock()
	if s.closed {
		return fuzzydb.NewError(fuzzydb.CodeClosed, "statement is closed")
	}
	_, err = c.roundTrip(ctx, &wire.BindExec{Stmt: s.id, Args: bound})
	return err
}

// Query executes a prepared SELECT with the given arguments, streaming
// the whole answer.
func (s *Stmt) Query(ctx context.Context, args ...any) (*Rows, error) {
	return s.queryFetch(ctx, 0, args)
}

// QueryFetch is Query in cursor mode (see Conn.QueryFetch).
func (s *Stmt) QueryFetch(ctx context.Context, fetchSize int, args ...any) (*Rows, error) {
	return s.queryFetch(ctx, fetchSize, args)
}

func (s *Stmt) queryFetch(ctx context.Context, fetchSize int, args []any) (*Rows, error) {
	bound, err := wireArgs(args)
	if err != nil {
		return nil, err
	}
	if s.closed {
		return nil, fuzzydb.NewError(fuzzydb.CodeClosed, "statement is closed")
	}
	return s.conn.query(ctx, &wire.BindExec{Stmt: s.id, Args: bound, FetchSize: uint32(fetchSize)}, fetchSize)
}

// Close releases the server-side statement.
func (s *Stmt) Close() error {
	c := s.conn
	c.mu.Lock()
	defer c.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	_, err := c.roundTrip(context.Background(), &wire.CloseStmt{Stmt: s.id})
	return err
}

// wireArgs converts Go arguments to wire arguments.
func wireArgs(args []any) ([]wire.Arg, error) {
	if len(args) == 0 {
		return nil, nil
	}
	out := make([]wire.Arg, len(args))
	for i, a := range args {
		switch v := a.(type) {
		case int:
			out[i] = wire.NumArg(float64(v))
		case int64:
			out[i] = wire.NumArg(float64(v))
		case float64:
			out[i] = wire.NumArg(v)
		case string:
			out[i] = wire.StrArg(v)
		default:
			return nil, fuzzydb.NewError(fuzzydb.CodeExec, fmt.Sprintf("argument %d: unsupported type %T (want a number or string)", i, a))
		}
	}
	return out, nil
}

// query sends a row-returning request and reads the header plus the
// first window of batches.
func (c *Conn) query(ctx context.Context, req wire.Message, fetchSize int) (*Rows, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, fuzzydb.NewError(fuzzydb.CodeClosed, "connection is closed")
	}
	c.applyDeadline(ctx)
	defer c.clearDeadline()
	if err := c.send(req); err != nil {
		return nil, err
	}
	msg, err := c.read()
	if err != nil {
		return nil, err
	}
	switch m := msg.(type) {
	case *wire.Error:
		return nil, decodeError(m)
	case *wire.RowHeader:
		rows := &Rows{conn: c, cursor: m.Cursor, cols: m.Columns, fetchSize: fetchSize}
		if err := rows.readWindow(fetchSize); err != nil {
			return nil, err
		}
		return rows, nil
	default:
		return nil, fuzzydb.NewError(fuzzydb.CodeProtocol, fmt.Sprintf("expected RowHeader, got %s", msg.Type()))
	}
}

// roundTrip sends a request expecting a single Done (or ParseOK) reply.
// Caller holds c.mu.
func (c *Conn) roundTrip(ctx context.Context, req wire.Message) (wire.Message, error) {
	if c.closed {
		return nil, fuzzydb.NewError(fuzzydb.CodeClosed, "connection is closed")
	}
	c.applyDeadline(ctx)
	defer c.clearDeadline()
	if err := c.send(req); err != nil {
		return nil, err
	}
	msg, err := c.read()
	if err != nil {
		return nil, err
	}
	if e, ok := msg.(*wire.Error); ok {
		return nil, decodeError(e)
	}
	return msg, nil
}

func (c *Conn) send(m wire.Message) error {
	if err := wire.Write(c.w, m); err != nil {
		return err
	}
	return c.w.Flush()
}

func (c *Conn) read() (wire.Message, error) {
	return wire.ReadMessage(c.r)
}

// applyDeadline maps ctx's deadline onto the socket; cancellation without
// a deadline is checked between requests, not mid-read.
func (c *Conn) applyDeadline(ctx context.Context) {
	if dl, ok := ctx.Deadline(); ok {
		c.c.SetDeadline(dl)
	}
}

func (c *Conn) clearDeadline() { c.c.SetDeadline(time.Time{}) }

// decodeError reconstructs the server's typed error.
func decodeError(e *wire.Error) error {
	return fuzzydb.NewError(fuzzydb.ErrorCode(e.Code), e.Msg)
}
