package client

import (
	"fmt"
	"strconv"

	"repro/internal/wire"
	"repro/pkg/fuzzydb"
)

// Rows is a cursor over a network query answer, mirroring
// fuzzydb.Rows. In streaming mode (fetch size 0) the whole answer
// arrived with the query and Next never blocks; in cursor mode an
// exhausted window pulls the next one from the server (a round trip).
type Rows struct {
	conn      *Conn
	cursor    uint32
	cols      []string
	fetchSize int

	buf    []wire.Row // rows received, not yet consumed
	i      int        // index of the current row in buf; -1 before Next
	done   bool       // the server sent a final (More false) batch
	closed bool
	err    error
}

// Columns returns the answer's column names.
func (r *Rows) Columns() []string { return append([]string(nil), r.cols...) }

// Next advances to the next answer row, fetching from the server when
// the local window is exhausted. It returns false at the end of the
// answer or on error; check Err afterwards.
func (r *Rows) Next() bool {
	if r.closed || r.err != nil {
		return false
	}
	if r.i+1 < len(r.buf) {
		r.i++
		return true
	}
	if r.done {
		return false
	}
	// Cursor mode: pull the next window.
	c := r.conn
	c.mu.Lock()
	err := func() error {
		if c.closed {
			return fuzzydb.NewError(fuzzydb.CodeClosed, "connection is closed")
		}
		if err := c.send(&wire.Fetch{Cursor: r.cursor, MaxRows: uint32(r.fetchSize)}); err != nil {
			return err
		}
		r.buf = r.buf[:0]
		r.i = -1
		return r.readWindowLocked(r.fetchSize)
	}()
	c.mu.Unlock()
	if err != nil {
		r.err = err
		return false
	}
	if len(r.buf) == 0 {
		return false
	}
	r.i = 0
	return true
}

// readWindow reads one window of batches. The caller holds conn.mu.
func (r *Rows) readWindow(quota int) error {
	r.i = -1
	return r.readWindowLocked(quota)
}

// readWindowLocked accumulates batches into r.buf until the stream ends
// (More false) or, in cursor mode, the window quota is reached — the
// server sends exactly quota rows before suspending, so counting tells
// us when to stop reading without blocking.
func (r *Rows) readWindowLocked(quota int) error {
	got := 0
	for {
		msg, err := r.conn.read()
		if err != nil {
			return err
		}
		switch m := msg.(type) {
		case *wire.Error:
			r.done = true
			return decodeError(m)
		case *wire.RowBatch:
			r.buf = append(r.buf, m.Rows...)
			got += len(m.Rows)
			if !m.More {
				r.done = true
				return nil
			}
			if quota > 0 && got >= quota {
				return nil
			}
		default:
			return fuzzydb.NewError(fuzzydb.CodeProtocol, fmt.Sprintf("expected RowBatch, got %s", msg.Type()))
		}
	}
}

// Scan copies the current row into dest, one target per column: *string
// (any value) or *float64 (crisp numbers only), as in fuzzydb.Rows.Scan.
func (r *Rows) Scan(dest ...any) error {
	if r.closed {
		return fuzzydb.NewError(fuzzydb.CodeClosed, "rows are closed")
	}
	if r.i < 0 || r.i >= len(r.buf) {
		return fuzzydb.NewError(fuzzydb.CodeExec, "Scan called without a successful Next")
	}
	row := r.buf[r.i]
	if len(dest) != len(row.Values) {
		return fuzzydb.NewError(fuzzydb.CodeExec, fmt.Sprintf("Scan got %d targets for %d columns", len(dest), len(row.Values)))
	}
	for i, d := range dest {
		v := row.Values[i]
		switch p := d.(type) {
		case *string:
			*p = v
		case *float64:
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return fuzzydb.NewError(fuzzydb.CodeExec, fmt.Sprintf("column %s is not a crisp number; scan into a *string", r.cols[i]))
			}
			*p = f
		default:
			return fuzzydb.NewError(fuzzydb.CodeExec, fmt.Sprintf("unsupported Scan target %T (want *string or *float64)", d))
		}
	}
	return nil
}

// Degree returns the membership degree of the current row.
func (r *Rows) Degree() float64 {
	if r.i < 0 || r.i >= len(r.buf) {
		return 0
	}
	return r.buf[r.i].Degree
}

// Err returns the error, if any, that ended iteration early.
func (r *Rows) Err() error { return r.err }

// Close releases the cursor. A suspended server-side cursor is drained
// so the connection stays usable for further requests. Idempotent.
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if r.done {
		return nil
	}
	// Drain the suspended cursor: MaxRows 0 streams the rest.
	c := r.conn
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	if err := c.send(&wire.Fetch{Cursor: r.cursor, MaxRows: 0}); err != nil {
		return err
	}
	r.buf = r.buf[:0]
	r.i = -1
	err := r.readWindowLocked(0)
	r.buf = nil
	return err
}

// All drains the remaining rows into memory: values rendered as strings
// plus each row's degree. It closes the cursor.
func (r *Rows) All() (rows [][]string, degrees []float64, err error) {
	for r.Next() {
		row := r.buf[r.i]
		rows = append(rows, append([]string(nil), row.Values...))
		degrees = append(degrees, row.Degree)
	}
	if r.err != nil {
		return nil, nil, r.err
	}
	r.Close()
	return rows, degrees, nil
}
