package client_test

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/wire"
	"repro/pkg/client"
	"repro/pkg/fuzzydb"
)

// startServer serves a throwaway database on a loopback listener.
func startServer(t *testing.T) string {
	t.Helper()
	db, err := fuzzydb.Open("")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	srv := server.New(db, server.Config{BatchRows: 4, Logf: t.Logf})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		db.Close()
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(lis)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return lis.Addr().String()
}

func dial(t *testing.T, addr string) *client.Conn {
	t.Helper()
	conn, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func wantCode(t *testing.T, err error, code fuzzydb.ErrorCode) {
	t.Helper()
	fe, ok := fuzzydb.AsError(err)
	if !ok || fe.Code != code {
		t.Errorf("error = %v, want code %v", err, code)
	}
}

func TestConnExecQueryRows(t *testing.T) {
	addr := startServer(t)
	conn := dial(t, addr)
	ctx := context.Background()

	var sb strings.Builder
	sb.WriteString("CREATE TABLE T (ID NUMBER, NAME STRING);\n")
	const n = 10
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "INSERT INTO T VALUES (%d, 'N%d');\n", i, i)
	}
	if err := conn.Exec(ctx, sb.String()); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if err := conn.Checkpoint(ctx); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	// Streaming mode: rows span several 4-row server batches.
	rows, err := conn.Query(ctx, `SELECT T.ID, T.NAME FROM T`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if cols := rows.Columns(); len(cols) != 2 {
		t.Fatalf("Columns = %v", cols)
	}
	count := 0
	for rows.Next() {
		var id float64
		var name string
		if err := rows.Scan(&id, &name); err != nil {
			t.Fatalf("Scan: %v", err)
		}
		if want := fmt.Sprintf("N%g", id); name != want {
			t.Errorf("row (%g, %s), want name %s", id, name, want)
		}
		if rows.Degree() != 1 {
			t.Errorf("degree %g, want 1", rows.Degree())
		}
		count++
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	if count != n {
		t.Fatalf("got %d rows, want %d", count, n)
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Scan error paths.
	rows, err = conn.Query(ctx, `SELECT T.ID FROM T`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	var s string
	wantCode(t, rows.Scan(&s), fuzzydb.CodeExec) // before Next
	if !rows.Next() {
		t.Fatal("Next = false")
	}
	var a, b string
	wantCode(t, rows.Scan(&a, &b), fuzzydb.CodeExec) // target count
	var i int
	wantCode(t, rows.Scan(&i), fuzzydb.CodeExec) // unsupported target
	var name float64
	rows2, err := conn.Query(ctx, `SELECT T.NAME FROM T`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	rows2.Next()
	wantCode(t, rows2.Scan(&name), fuzzydb.CodeExec) // string into *float64
	rows2.Close()
	rows.Close()
	wantCode(t, rows.Scan(&s), fuzzydb.CodeClosed)
	if rows.Close() != nil { // idempotent
		t.Error("second Close errored")
	}

	// All() on a cursor-mode query.
	rows, err = conn.QueryFetch(ctx, `SELECT T.ID FROM T`, 3)
	if err != nil {
		t.Fatalf("QueryFetch: %v", err)
	}
	vals, degrees, err := rows.All()
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	if len(vals) != n || len(degrees) != n {
		t.Fatalf("All returned %d rows, %d degrees; want %d", len(vals), len(degrees), n)
	}
}

func TestStmtOverWire(t *testing.T) {
	addr := startServer(t)
	conn := dial(t, addr)
	ctx := context.Background()

	if err := conn.Exec(ctx, `CREATE TABLE S (ID NUMBER, NAME STRING)`); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	ins, err := conn.Prepare(ctx, `INSERT INTO S VALUES (?, ?)`)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if ins.NumParams() != 2 || ins.IsQuery() {
		t.Fatalf("NumParams %d IsQuery %v", ins.NumParams(), ins.IsQuery())
	}
	// Argument conversions: int, int64, float64, string.
	if err := ins.Exec(ctx, 1, "one"); err != nil {
		t.Fatalf("Exec int: %v", err)
	}
	if err := ins.Exec(ctx, int64(2), "two"); err != nil {
		t.Fatalf("Exec int64: %v", err)
	}
	if err := ins.Exec(ctx, 3.5, "threeish"); err != nil {
		t.Fatalf("Exec float64: %v", err)
	}
	wantCode(t, ins.Exec(ctx, []byte("no"), "x"), fuzzydb.CodeExec)

	sel, err := conn.Prepare(ctx, `SELECT S.NAME FROM S WHERE S.ID > ?`)
	if err != nil {
		t.Fatalf("Prepare select: %v", err)
	}
	rows, err := sel.QueryFetch(ctx, 1, 1.5)
	if err != nil {
		t.Fatalf("QueryFetch: %v", err)
	}
	got, _, err := rows.All()
	if err != nil || len(got) != 2 {
		t.Fatalf("All = %v (err %v), want 2 rows", got, err)
	}
	if _, err := sel.Query(ctx, "not", "two"); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := sel.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := sel.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
	if _, err := sel.Query(ctx, 1); err == nil {
		t.Error("Query on closed stmt accepted")
	}
	wantCode(t, ins.Exec(ctx), fuzzydb.CodeExec) // arity on exec stmt
	if err := ins.Close(); err != nil {
		t.Fatalf("Close ins: %v", err)
	}
	wantCode(t, ins.Exec(ctx, 4, "four"), fuzzydb.CodeClosed)
}

func TestConnClosedAndErrors(t *testing.T) {
	addr := startServer(t)
	conn := dial(t, addr)
	ctx := context.Background()

	wantCode(t, conn.Exec(ctx, `SELEKT`), fuzzydb.CodeParse)
	_, err := conn.Query(ctx, `SELECT X.Y FROM X`)
	wantCode(t, err, fuzzydb.CodeExec)
	_, err = conn.Prepare(ctx, `SELEKT`)
	wantCode(t, err, fuzzydb.CodeParse)

	if err := conn.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := conn.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
	wantCode(t, conn.Exec(ctx, `CHECKPOINT`), fuzzydb.CodeClosed)
	_, err = conn.Query(ctx, `SELECT T.X FROM T`)
	wantCode(t, err, fuzzydb.CodeClosed)
	_, err = conn.Prepare(ctx, `SELECT T.X FROM T`)
	wantCode(t, err, fuzzydb.CodeClosed)
}

func TestDialContextDeadline(t *testing.T) {
	addr := startServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := client.DialContext(ctx, addr); err == nil {
		t.Error("DialContext with canceled context succeeded")
	}
	if _, err := client.Dial("127.0.0.1:1"); err == nil {
		t.Error("Dial to a dead port succeeded")
	}
}

// fakeServer accepts one connection and answers with a scripted reply per
// received message, exercising the client's protocol-error handling.
func fakeServer(t *testing.T, script func(msg wire.Message) []wire.Message) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		nc, err := lis.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		r := bufio.NewReader(nc)
		w := bufio.NewWriter(nc)
		for {
			msg, err := wire.ReadMessage(r)
			if err != nil {
				return
			}
			for _, reply := range script(msg) {
				if err := wire.Write(w, reply); err != nil {
					return
				}
			}
			if err := w.Flush(); err != nil {
				return
			}
		}
	}()
	return lis.Addr().String()
}

func TestClientProtocolErrors(t *testing.T) {
	// Handshake: reply to Hello with something that is not HelloOK.
	addr := fakeServer(t, func(msg wire.Message) []wire.Message {
		return []wire.Message{&wire.Done{}}
	})
	_, err := client.Dial(addr)
	wantCode(t, err, fuzzydb.CodeProtocol)

	// Handshake rejected with a typed error frame.
	addr = fakeServer(t, func(msg wire.Message) []wire.Message {
		return []wire.Message{&wire.Error{Code: byte(fuzzydb.CodeProtocol), Msg: "go away"}}
	})
	_, err = client.Dial(addr)
	wantCode(t, err, fuzzydb.CodeProtocol)

	// After a clean handshake: Query answered without a RowHeader, then a
	// RowHeader followed by a non-RowBatch, then Parse without ParseOK.
	handshakeOK := func(msg wire.Message, then []wire.Message) []wire.Message {
		if _, ok := msg.(*wire.Hello); ok {
			return []wire.Message{&wire.HelloOK{Version: wire.Version, Server: "fake"}}
		}
		return then
	}
	addr = fakeServer(t, func(msg wire.Message) []wire.Message {
		return handshakeOK(msg, []wire.Message{&wire.Done{}})
	})
	conn, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	_, err = conn.Query(context.Background(), `SELECT T.X FROM T`)
	wantCode(t, err, fuzzydb.CodeProtocol)
	_, err = conn.Prepare(context.Background(), `SELECT T.X FROM T`)
	wantCode(t, err, fuzzydb.CodeProtocol)
	conn.Close()

	addr = fakeServer(t, func(msg wire.Message) []wire.Message {
		return handshakeOK(msg, []wire.Message{
			&wire.RowHeader{Cursor: 1, Columns: []string{"X"}},
			&wire.Done{},
		})
	})
	conn, err = client.Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	_, err = conn.Query(context.Background(), `SELECT T.X FROM T`)
	wantCode(t, err, fuzzydb.CodeProtocol)
	conn.Close()

	// A mid-stream Error frame surfaces through Rows with its code.
	addr = fakeServer(t, func(msg wire.Message) []wire.Message {
		return handshakeOK(msg, []wire.Message{
			&wire.RowHeader{Cursor: 1, Columns: []string{"X"}},
			&wire.RowBatch{Cursor: 1, Rows: []wire.Row{{Degree: 1, Values: []string{"1"}}}, More: true},
			&wire.Error{Code: byte(fuzzydb.CodeExec), Msg: "spilled"},
		})
	})
	conn, err = client.Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	_, err = conn.Query(context.Background(), `SELECT T.X FROM T`)
	wantCode(t, err, fuzzydb.CodeExec)
	conn.Close()
}

func TestQueryContextDeadline(t *testing.T) {
	// A server that answers the handshake and then goes silent: the
	// query's context deadline must unblock the read.
	addr := fakeServer(t, func(msg wire.Message) []wire.Message {
		if _, ok := msg.(*wire.Hello); ok {
			return []wire.Message{&wire.HelloOK{Version: wire.Version, Server: "fake"}}
		}
		return nil
	})
	conn, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = conn.Query(ctx, `SELECT T.X FROM T`)
	if err == nil {
		t.Fatal("Query against a silent server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline took %s to fire", elapsed)
	}
}
