package fuzzydb

import (
	"fmt"

	"repro/internal/frel"
)

// Rows is a cursor over a query answer, the streaming alternative to the
// materialized Result: values render lazily, one row at a time, as the
// caller advances. The wire protocol's client mirrors this interface, so
// code written against Rows runs unchanged over a network connection.
//
// Usage follows database/sql:
//
//	rows, err := db.QueryRows(ctx, sql)
//	defer rows.Close()
//	for rows.Next() {
//	    var name string
//	    if err := rows.Scan(&name); err != nil { ... }
//	    fmt.Println(name, rows.Degree())
//	}
//	err = rows.Err()
//
// Both Rows and Result remain supported: Result for small answers wanted
// whole (it offers Equal, Stats, String), Rows for iteration.
type Rows struct {
	rel    *frel.Relation
	cols   []string
	i      int // index of the current row; -1 before the first Next
	closed bool
	err    error
}

func newRows(rel *frel.Relation) *Rows {
	cols := make([]string, len(rel.Schema.Attrs))
	for i, a := range rel.Schema.Attrs {
		cols[i] = a.Name
	}
	return &Rows{rel: rel, cols: cols, i: -1}
}

// Columns returns the answer's column names.
func (r *Rows) Columns() []string { return append([]string(nil), r.cols...) }

// Next advances to the next answer row. It returns false when the rows
// are exhausted or closed; check Err afterwards.
func (r *Rows) Next() bool {
	if r.closed || r.err != nil || r.i+1 >= r.rel.Len() {
		return false
	}
	r.i++
	return true
}

// Scan copies the current row into dest, one target per column. A target
// may be a *string (any value renders; ill-known numbers render as their
// possibility distribution, e.g. "TRAP(28,30,39,42)") or a *float64
// (crisp numbers only).
func (r *Rows) Scan(dest ...any) error {
	if r.closed {
		return errClosed("rows")
	}
	if r.i < 0 || r.i >= r.rel.Len() {
		return &Error{Code: CodeExec, Msg: "Scan called without a successful Next"}
	}
	t := r.rel.Tuples[r.i]
	if len(dest) != len(t.Values) {
		return &Error{Code: CodeExec, Msg: fmt.Sprintf("Scan got %d targets for %d columns", len(dest), len(t.Values))}
	}
	for i, d := range dest {
		v := t.Values[i]
		switch p := d.(type) {
		case *string:
			if v.Kind == frel.KindString {
				*p = v.Str
			} else {
				*p = v.Num.String()
			}
		case *float64:
			if v.Kind != frel.KindNumber || !v.Num.IsCrisp() {
				return &Error{Code: CodeExec, Msg: fmt.Sprintf("column %s is not a crisp number; scan into a *string", r.cols[i])}
			}
			lo, _ := v.Num.Core()
			*p = lo
		default:
			return &Error{Code: CodeExec, Msg: fmt.Sprintf("unsupported Scan target %T (want *string or *float64)", d)}
		}
	}
	return nil
}

// Degree returns the membership degree of the current row.
func (r *Rows) Degree() float64 {
	if r.i < 0 || r.i >= r.rel.Len() {
		return 0
	}
	return r.rel.Tuples[r.i].D
}

// Err returns the error, if any, that ended iteration early.
func (r *Rows) Err() error { return r.err }

// Close releases the cursor. It is idempotent; Next returns false after.
func (r *Rows) Close() error {
	r.closed = true
	return nil
}
