package fuzzydb

import (
	"context"
	"errors"
	"math"
	"os"
	"strings"
	"testing"
	"time"
)

const datingData = `
	CREATE TABLE F (ID NUMBER, NAME STRING, AGE NUMBER, INCOME NUMBER);
	CREATE TABLE M (ID NUMBER, NAME STRING, AGE NUMBER, INCOME NUMBER);
	INSERT INTO F VALUES (101, 'Ann',   'about 35',     'about 60K');
	INSERT INTO F VALUES (102, 'Ann',   'medium young', 'medium high');
	INSERT INTO F VALUES (103, 'Betty', 'middle age',   'high');
	INSERT INTO F VALUES (104, 'Cathy', 'about 50',     'low');
	INSERT INTO M VALUES (201, 'Allen', 24,           'about 25K');
	INSERT INTO M VALUES (202, 'Allen', 'about 50',   'about 40K');
	INSERT INTO M VALUES (203, 'Bill',  'middle age', 'high');
	INSERT INTO M VALUES (204, 'Carl',  'about 29',   'medium low');
`

const query2 = `
	SELECT F.NAME FROM F
	WHERE F.AGE = 'medium young' AND
	      F.INCOME IN (SELECT M.INCOME FROM M WHERE M.AGE = 'middle age')`

func openTemp(t *testing.T, opts ...Option) *DB {
	t.Helper()
	db, err := Open("", opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// TestQuery2PaperAnswer runs the paper's Example 4.1 end to end through
// the public API: the answer must be {Ann: 0.7, Betty: 0.7}.
func TestQuery2PaperAnswer(t *testing.T) {
	db := openTemp(t)
	if err := db.Exec(datingData); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(query2)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Columns(); len(got) != 1 || got[0] != "F.NAME" {
		t.Errorf("Columns = %v", got)
	}
	if res.Len() != 2 {
		t.Fatalf("Len = %d, want 2\n%s", res.Len(), res)
	}
	want := map[string]float64{"Ann": 0.7, "Betty": 0.7}
	for i := 0; i < res.Len(); i++ {
		name := res.Row(i)[0]
		if d, ok := want[name]; !ok || math.Abs(res.Degree(i)-d) > 1e-9 {
			t.Errorf("row %d: %s with degree %g, want %v", i, name, res.Degree(i), want)
		}
		delete(want, name)
	}

	// The naive nested evaluation must agree (Theorem 4.1).
	naive, err := db.QueryNaive(query2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(naive, 1e-9) {
		t.Errorf("unnested and naive answers differ:\n%s\nvs\n%s", res, naive)
	}
}

func TestExplain(t *testing.T) {
	db := openTemp(t)
	if err := db.Exec(datingData); err != nil {
		t.Fatal(err)
	}
	s, err := db.Explain(query2)
	if err != nil {
		t.Fatal(err)
	}
	if s == "" {
		t.Error("empty explain")
	}
}

// TestOptions exercises the option plumbing, including rejection of
// invalid values.
func TestOptions(t *testing.T) {
	db := openTemp(t, WithBufferPoolPages(64), WithParallelism(2))
	if err := db.Exec(`CREATE TABLE T (X NUMBER); INSERT INTO T VALUES (1);`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT T.X FROM T;`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Errorf("Len = %d", res.Len())
	}
	if _, err := Open("", WithBufferPoolPages(1)); err == nil {
		t.Error("WithBufferPoolPages(1) should fail")
	}
	if _, err := Open("", WithParallelism(-1)); err == nil {
		t.Error("WithParallelism(-1) should fail")
	}

	// The engine ablation switches compute the same answer.
	for _, opt := range []Option{WithTupleAtATime(), WithInterpretedKernels()} {
		db := openTemp(t, opt)
		if err := db.Exec(`CREATE TABLE T (X NUMBER); INSERT INTO T VALUES (1);`); err != nil {
			t.Fatal(err)
		}
		res, err := db.Query(`SELECT T.X FROM T;`)
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != 1 {
			t.Errorf("ablation engine: Len = %d", res.Len())
		}
	}
}

// TestPersistence: a database opened over a real directory survives
// closing and reopening.
func TestPersistence(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(`CREATE TABLE P (X NUMBER); INSERT INTO P VALUES (7);`); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res, err := db2.Query(`SELECT P.X FROM P`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Row(0)[0] != "7" {
		t.Errorf("reopened answer: %s", res)
	}
}

// TestTempDirRemovedOnClose: Open("") creates a directory that Close
// deletes; Close is idempotent and later calls fail cleanly.
func TestTempDirRemovedOnClose(t *testing.T) {
	db, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	dir := db.Dir()
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("temp dir missing while open: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Errorf("temp dir still exists after Close")
	}
	if err := db.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if err := db.Exec(`SELECT X FROM T`); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Errorf("Exec after Close: %v", err)
	}
	if _, err := db.Query(`SELECT X FROM T`); err == nil {
		t.Errorf("Query after Close should fail")
	}
}

func TestQueryContextCancelled(t *testing.T) {
	db := openTemp(t)
	if err := db.Exec(`CREATE TABLE T (X NUMBER); INSERT INTO T VALUES (1);`); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryContext(ctx, `SELECT T.X FROM T`); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if err := db.ExecContext(ctx, `SELECT T.X FROM T;`); !errors.Is(err, context.Canceled) {
		t.Errorf("ExecContext err = %v, want context.Canceled", err)
	}
}

func TestQueryParseError(t *testing.T) {
	db := openTemp(t)
	if _, err := db.Query(`NOT SQL`); err == nil {
		t.Error("want parse error")
	}
}

// TestCheckpointAndReopen: CHECKPOINT (statement and method) truncates the
// log without losing data across a close/reopen cycle.
func TestCheckpointAndReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(`CREATE TABLE C (X NUMBER);
		INSERT INTO C VALUES (1) DEGREE 0.5;
		INSERT INTO C VALUES (2);
		CHECKPOINT;
		INSERT INTO C VALUES (3);`); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res, err := db2.Query(`SELECT C.X FROM C`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Errorf("reopened with %d tuples, want 3", res.Len())
	}
	if res.Degree(0) != 0.5 {
		t.Errorf("degree lost across checkpoint: %g", res.Degree(0))
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db2.Checkpoint(); err == nil {
		t.Errorf("Checkpoint after Close should fail")
	}
}

// TestNoWAL: the ablation switch still yields a working database, and the
// group-commit option validates its argument.
func TestNoWAL(t *testing.T) {
	db := openTemp(t, WithNoWAL())
	if err := db.Exec(`CREATE TABLE T (X NUMBER); INSERT INTO T VALUES (4);`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT T.X FROM T`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Errorf("Len = %d", res.Len())
	}
	if err := db.Checkpoint(); err != nil {
		t.Errorf("Checkpoint without WAL should be a no-op, got %v", err)
	}
	if _, err := Open("", WithGroupCommitWindow(-time.Millisecond)); err == nil {
		t.Error("negative group-commit window should fail")
	}
	db2 := openTemp(t, WithGroupCommitWindow(100*time.Microsecond))
	if err := db2.Exec(`CREATE TABLE G (X NUMBER); INSERT INTO G VALUES (9);`); err != nil {
		t.Fatal(err)
	}
}

// TestUncommittedlessCrashRecovery: reopening a database directory whose
// process never checkpointed still sees every acknowledged INSERT, replayed
// from the write-ahead log.
func TestWALReplayOnReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(`CREATE TABLE R (X NUMBER);
		INSERT INTO R VALUES (1); INSERT INTO R VALUES (2);`); err != nil {
		t.Fatal(err)
	}
	// Abandon the session without Close: the heap pages were never
	// flushed, so the reopened database must rebuild them from the log.
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res, err := db2.Query(`SELECT R.X FROM R`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Errorf("replayed %d tuples, want 2", res.Len())
	}
	db.Close()
}
