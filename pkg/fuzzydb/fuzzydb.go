// Package fuzzydb is the public embedding API of the fuzzy relational
// database engine: a possibilistic database with Fuzzy SQL, linguistic
// terms, and automatic unnesting of nested fuzzy queries (the rewrites of
// "Efficient Processing of Nested Fuzzy SQL Queries").
//
// Open a database, execute Fuzzy SQL, read answers:
//
//	db, err := fuzzydb.Open("") // "" = throwaway temporary database
//	defer db.Close()
//	err = db.Exec(`CREATE TABLE F (NAME STRING, AGE NUMBER);
//	               INSERT INTO F VALUES ('Ann', 'about 35');`)
//	res, err := db.Query(`SELECT F.NAME FROM F WHERE F.AGE = 'middle age'`)
//	for i := 0; i < res.Len(); i++ {
//	    fmt.Println(res.Row(i), res.Degree(i))
//	}
//
// The package wraps the internal engine without exposing its types: rows
// come back as rendered strings plus a membership degree per tuple, either
// materialized (Result) or streamed (Rows).
//
// A DB is safe for concurrent use. Read-only statements (SELECT, EXPLAIN)
// run concurrently and — on a write-ahead-logged database — read a
// consistent committed snapshot, so they never wait for a writer, even
// one with an open transaction. Writers (INSERT, and BEGIN/COMMIT/
// ROLLBACK transactions) serialize against each other behind a writer
// mutex; barrier operations (DDL, DELETE, shared DEFINE TERM,
// CHECKPOINT) exclude everything and are rejected inside transactions.
// For isolated contexts — a private linguistic vocabulary, an own sort
// cache, prepared statements, transactions — open a Session per
// goroutine or connection; the fuzzydbd network server maps each client
// connection to one. All entry points return *Error values carrying a
// stable ErrorCode, the same codes the wire protocol transports.
package fuzzydb

import (
	"context"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
)

// config collects the Open options.
type config struct {
	bufferPages    int
	parallelism    int
	disableBatch   bool
	disableKernels bool
	noWAL          bool
	groupCommit    time.Duration
}

// Option customizes Open.
type Option func(*config) error

// WithBufferPoolPages sets the buffer pool capacity in 8 KiB pages. The
// default, 256 pages (2 MB), matches the paper's experimental setup.
func WithBufferPoolPages(pages int) Option {
	return func(c *config) error {
		if pages < 2 {
			return fmt.Errorf("fuzzydb: buffer pool needs at least 2 pages, got %d", pages)
		}
		c.bufferPages = pages
		return nil
	}
}

// WithParallelism sets the worker count for parallel query execution
// (partitioned merge-joins and sort run generation). 0, the default, uses
// all available CPUs; 1 forces serial execution.
func WithParallelism(workers int) Option {
	return func(c *config) error {
		if workers < 0 {
			return fmt.Errorf("fuzzydb: negative parallelism %d", workers)
		}
		c.parallelism = workers
		return nil
	}
}

// WithTupleAtATime disables the batched execution engine and runs queries
// through strict tuple-at-a-time iterators. The two modes compute
// identical answers; this switch exists for comparison and debugging (the
// batched engine is faster and is the default).
func WithTupleAtATime() Option {
	return func(c *config) error {
		c.disableBatch = true
		return nil
	}
}

// WithInterpretedKernels disables the fused kernel compiler and runs the
// batched engine through its interpreted closure operators. The two modes
// compute identical answers; this switch exists for comparison and
// debugging (compiled kernels are faster and are the default). It is a
// no-op under WithTupleAtATime, which bypasses the batch engine entirely.
func WithInterpretedKernels() Option {
	return func(c *config) error {
		c.disableKernels = true
		return nil
	}
}

// WithNoWAL disables the write-ahead log. Without it the database offers
// no crash safety — mutations reach the heap files only on explicit
// flushes — matching the pre-WAL engine. It exists as an ablation switch
// for measuring logging overhead; durable is the default.
func WithNoWAL() Option {
	return func(c *config) error {
		c.noWAL = true
		return nil
	}
}

// WithGroupCommitWindow sets how long a commit waits for concurrent
// commits to share its fsync. 0 (the default) syncs immediately; a small
// window (hundreds of microseconds) trades commit latency for fewer
// fsyncs under concurrent writers.
func WithGroupCommitWindow(d time.Duration) Option {
	return func(c *config) error {
		if d < 0 {
			return fmt.Errorf("fuzzydb: negative group-commit window %v", d)
		}
		c.groupCommit = d
		return nil
	}
}

// DB is an open fuzzy database, safe for concurrent use: concurrent
// read-only statements share a reader lock, mutations take the writer
// lock (the engine is single-writer — see DESIGN.md §12). The DB's own
// methods run in a base session whose DEFINE TERM writes the shared,
// persisted dictionary; DB.Session opens isolated per-caller sessions.
type DB struct {
	// wmu is the writer mutex: the engine is single-writer, and every
	// mutating statement — an autocommitted INSERT, a transaction from its
	// first write through COMMIT/ROLLBACK, a barrier operation — holds it.
	// Snapshot readers never take it, so reads proceed while a writer's
	// transaction is open. Lock order: wmu before mu, always.
	wmu sync.Mutex
	// mu is the database readers-writer lock. Read-only statements and
	// WAL-logged writes (which snapshot isolation makes safe to run beside
	// readers) take RLock; barrier operations that mutate shared structures
	// in place (DDL, DELETE, CHECKPOINT, shared DEFINE TERM, any write
	// without the WAL) and Close take Lock, draining in-flight statements.
	mu      sync.RWMutex
	base    *Session
	dir     string
	ownsDir bool
	closed  bool
}

// Open opens (or creates) the database stored in dir. An existing
// database directory is recovered with its relations and terms; a fresh
// one starts empty with the paper's linguistic-term dictionary preloaded.
// The empty string opens a throwaway database in a temporary directory
// that Close removes.
func Open(dir string, opts ...Option) (*DB, error) {
	c := config{bufferPages: 256}
	for _, opt := range opts {
		if err := opt(&c); err != nil {
			return nil, err
		}
	}
	ownsDir := false
	if dir == "" {
		d, err := os.MkdirTemp("", "fuzzydb-*")
		if err != nil {
			return nil, err
		}
		dir, ownsDir = d, true
	}
	sess, err := core.OpenSessionOptions(dir, core.SessionOptions{
		BufferPages:       c.bufferPages,
		NoWAL:             c.noWAL,
		GroupCommitWindow: c.groupCommit,
	})
	if err != nil {
		if ownsDir {
			os.RemoveAll(dir)
		}
		return nil, err
	}
	sess.Env.Parallelism = c.parallelism
	sess.Env.DisableBatch = c.disableBatch
	sess.Env.DisableKernels = c.disableKernels
	db := &DB{dir: dir, ownsDir: ownsDir}
	db.base = &Session{db: db, sess: sess}
	return db, nil
}

// SortCacheStats reports the sort-order cache traffic accumulated over the
// database's lifetime: hits are sorts served from a cached permutation
// (no re-sort), misses are orders that had to be built. INSERTs and other
// mutations invalidate the affected entries, so a repeated query on
// unchanged data hits.
func (db *DB) SortCacheStats() (hits, misses int64) {
	return db.base.sess.Env.Counters.SortCacheHits.Load(),
		db.base.sess.Env.Counters.SortCacheMisses.Load()
}

// Dir returns the database directory.
func (db *DB) Dir() string { return db.dir }

// Close releases the database's file handles, draining in-flight
// statements first (it takes the writer lock) and invalidating open
// sessions. A temporary database (opened with dir "") is deleted; a
// persistent one reopens with its committed contents, replayed from the
// write-ahead log. Close is idempotent.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	err := db.base.sess.Close()
	if db.ownsDir {
		if rerr := os.RemoveAll(db.dir); rerr != nil {
			return rerr
		}
	}
	return wrapErr(CodeInternal, err)
}

// Checkpoint flushes every relation to its heap file and truncates the
// write-ahead log. Without a WAL (WithNoWAL) it is a no-op. It serializes
// behind running statements and open transactions like any other barrier
// operation.
func (db *DB) Checkpoint() error {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return errClosed("database")
	}
	return wrapErr(CodeInternal, db.base.sess.Catalog().Manager().Checkpoint())
}

// Exec executes a Fuzzy SQL script (one or more ';'-separated statements:
// DDL, INSERT, DELETE, DEFINE TERM, SELECT), discarding query answers.
func (db *DB) Exec(sql string) error {
	return db.ExecContext(context.Background(), sql)
}

// ExecContext is Exec observing ctx: cancellation aborts the running
// statement.
func (db *DB) ExecContext(ctx context.Context, sql string) error {
	return db.base.ExecContext(ctx, sql)
}

// Query evaluates one SELECT (through the unnesting rewrites) and returns
// its answer.
func (db *DB) Query(sql string) (*Result, error) {
	return db.QueryContext(context.Background(), sql)
}

// QueryContext is Query observing ctx.
func (db *DB) QueryContext(ctx context.Context, sql string) (*Result, error) {
	return db.base.QueryContext(ctx, sql)
}

// QueryRows evaluates one SELECT and returns a streaming cursor over its
// answer (see Rows; Query returns the same answer materialized).
func (db *DB) QueryRows(ctx context.Context, sql string) (*Rows, error) {
	return db.base.QueryRows(ctx, sql)
}

// QueryNaive evaluates one SELECT by the nested execution semantics
// directly (the paper's baseline). It returns the same fuzzy relation as
// Query — useful for cross-checking — but nested queries cost a full
// inner evaluation per outer tuple.
func (db *DB) QueryNaive(sql string) (*Result, error) {
	q, err := parseQuery(sql)
	if err != nil {
		return nil, err
	}
	s := db.base
	s.mu.Lock()
	defer s.mu.Unlock()
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, errClosed("database")
	}
	rel, err := s.sess.EvalNaive(context.Background(), q)
	if err != nil {
		return nil, wrapErr(CodeExec, err)
	}
	return newResult(rel), nil
}

// Explain reports the unnesting strategy Query would use for the SELECT,
// e.g. "merge-join chain (type N query, Theorem 4.1)".
func (db *DB) Explain(sql string) (string, error) {
	q, err := parseQuery(sql)
	if err != nil {
		return "", err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return "", errClosed("database")
	}
	plan := db.base.sess.Env.Explain(q)
	if plan.Note == "" {
		return fmt.Sprint(plan.Strategy), nil
	}
	return fmt.Sprintf("%s (%s)", plan.Strategy, plan.Note), nil
}

// PlanInfo is the logical plan the three-stage planner (AST → plan IR →
// unnesting rewrites → statistics-backed cost model) chose for a query.
type PlanInfo struct {
	// Strategy is the evaluation strategy in the paper's vocabulary
	// (e.g. "chain-join", "jx-anti-join").
	Strategy string
	// Note is the decision's reason: the theorem applied, or the cause
	// of a naive fallback.
	Note string
	// Rules lists the unnesting rewrite rules applied, in order (e.g.
	// "unnest-in", "unnest-scalar-agg"); empty for flat and naive plans.
	Rules []string
	// Tree is the rendered logical operator tree with per-node
	// cost/cardinality estimates — the same text EXPLAIN prints.
	Tree string
	// Rows and Cost are the estimated answer cardinality and total plan
	// cost (abstract units, roughly tuples touched).
	Rows, Cost float64
	// NaiveCost is the estimated cost of evaluating the query naively by
	// its nested semantics, for comparison against Cost.
	NaiveCost float64
}

// Plan plans the SELECT without executing it and returns the logical
// plan: strategy, applied unnesting rules, and the operator tree with the
// cost model's estimates.
func (db *DB) Plan(sql string) (*PlanInfo, error) {
	q, err := parseQuery(sql)
	if err != nil {
		return nil, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, errClosed("database")
	}
	p, err := db.base.sess.Env.PlanQuery(q)
	if err != nil {
		return nil, wrapErr(CodePlan, err)
	}
	est := p.Root.Est()
	return &PlanInfo{
		Strategy:  fmt.Sprint(p.Strategy),
		Note:      p.Note,
		Rules:     append([]string(nil), p.Rules...),
		Tree:      strings.Join(p.Lines(), "\n"),
		Rows:      est.Rows,
		Cost:      est.Cost,
		NaiveCost: p.NaiveCost,
	}, nil
}
