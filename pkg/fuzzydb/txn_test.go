package fuzzydb

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// countRows queries the table through sess and returns the row count with
// the summed degrees (so changed degrees are as visible as changed rows).
func countRows(t *testing.T, s *Session, table string) (int, float64) {
	t.Helper()
	res, err := s.Query(fmt.Sprintf("SELECT %s.ID FROM %s", table, table))
	if err != nil {
		t.Fatal(err)
	}
	var deg float64
	for i := 0; i < res.Len(); i++ {
		deg += res.Degree(i)
	}
	return res.Len(), deg
}

func openTxnDB(t *testing.T, opts ...Option) (*DB, *Session) {
	t.Helper()
	db := openTemp(t, opts...)
	if err := db.Exec(`CREATE TABLE T (ID NUMBER, V NUMBER)`); err != nil {
		t.Fatal(err)
	}
	sess, err := db.Session()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sess.Close() })
	return db, sess
}

func TestTxnCommitMakesWritesVisible(t *testing.T) {
	db, sess := openTxnDB(t)
	ctx := context.Background()
	if err := sess.Begin(ctx); err != nil {
		t.Fatal(err)
	}
	if err := sess.Exec(`INSERT INTO T VALUES (1, 10); INSERT INTO T VALUES (2, 20)`); err != nil {
		t.Fatal(err)
	}
	// The transaction reads its own writes...
	if n, _ := countRows(t, sess, "T"); n != 2 {
		t.Errorf("transaction sees %d own rows, want 2", n)
	}
	// ...which stay invisible to the rest of the database until COMMIT.
	other, err := db.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if n, _ := countRows(t, other, "T"); n != 0 {
		t.Errorf("uncommitted rows visible to another session: %d", n)
	}
	if err := sess.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if n, _ := countRows(t, other, "T"); n != 2 {
		t.Errorf("committed rows: other session sees %d, want 2", n)
	}
}

func TestTxnRollbackDiscardsWrites(t *testing.T) {
	db, sess := openTxnDB(t)
	ctx := context.Background()
	if err := db.Exec(`INSERT INTO T VALUES (1, 10)`); err != nil {
		t.Fatal(err)
	}
	preN, preDeg := countRows(t, sess, "T")
	if err := sess.Begin(ctx); err != nil {
		t.Fatal(err)
	}
	if err := sess.Exec(`INSERT INTO T VALUES (2, 20); INSERT INTO T VALUES (3, 30)`); err != nil {
		t.Fatal(err)
	}
	if err := sess.Rollback(ctx); err != nil {
		t.Fatal(err)
	}
	if n, deg := countRows(t, sess, "T"); n != preN || deg != preDeg {
		t.Errorf("after rollback: %d rows / %g degree, want %d / %g", n, deg, preN, preDeg)
	}
	// The session keeps working, including a fresh transaction.
	if err := sess.Begin(ctx); err != nil {
		t.Fatal(err)
	}
	if err := sess.Exec(`INSERT INTO T VALUES (4, 40)`); err != nil {
		t.Fatal(err)
	}
	if err := sess.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if n, _ := countRows(t, sess, "T"); n != preN+1 {
		t.Errorf("after rollback+commit: %d rows, want %d", countFirst(t, sess), preN+1)
	}
}

func countFirst(t *testing.T, s *Session) int {
	n, _ := countRows(t, s, "T")
	return n
}

// TestTxnSnapshotIsolation: a transaction's reads are frozen at BEGIN —
// a concurrent committed insert neither appears mid-transaction nor
// changes answers between the transaction's statements.
func TestTxnSnapshotIsolation(t *testing.T) {
	db, sess := openTxnDB(t)
	ctx := context.Background()
	if err := db.Exec(`INSERT INTO T VALUES (1, 10)`); err != nil {
		t.Fatal(err)
	}
	if err := sess.Begin(ctx); err != nil {
		t.Fatal(err)
	}
	if n, _ := countRows(t, sess, "T"); n != 1 {
		t.Fatalf("transaction opens seeing %d rows, want 1", n)
	}
	// Auto-commit write from outside the transaction.
	if err := db.Exec(`INSERT INTO T VALUES (2, 20)`); err != nil {
		t.Fatal(err)
	}
	if n, _ := countRows(t, sess, "T"); n != 1 {
		t.Errorf("mid-transaction read sees %d rows, want the BEGIN-time 1", n)
	}
	if err := sess.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if n, _ := countRows(t, sess, "T"); n != 2 {
		t.Errorf("after commit the session sees %d rows, want 2", n)
	}
}

// TestTxnWriteConflict: first-writer-wins. A transaction that writes a
// relation another transaction committed to after its BEGIN aborts with
// CodeTxnConflict and is rolled back; the session survives and a retry
// succeeds.
func TestTxnWriteConflict(t *testing.T) {
	db, sess := openTxnDB(t)
	ctx := context.Background()
	if err := sess.Begin(ctx); err != nil {
		t.Fatal(err)
	}
	if n, _ := countRows(t, sess, "T"); n != 0 { // pin the snapshot
		t.Fatal("dirty table")
	}
	if err := db.Exec(`INSERT INTO T VALUES (1, 10)`); err != nil {
		t.Fatal(err)
	}
	err := sess.Exec(`INSERT INTO T VALUES (2, 20)`)
	if err == nil {
		t.Fatal("conflicting write succeeded, want CodeTxnConflict")
	}
	fe, ok := AsError(err)
	if !ok || fe.Code != CodeTxnConflict {
		t.Fatalf("conflict error = %v (code %v), want CodeTxnConflict", err, fe.Code)
	}
	if sess.InTxn() {
		t.Errorf("session still in a transaction after a conflict abort")
	}
	// The aborted transaction left nothing behind and the session works.
	if n, _ := countRows(t, sess, "T"); n != 1 {
		t.Errorf("after abort: %d rows, want the 1 committed outside", n)
	}
	if err := sess.Begin(ctx); err != nil {
		t.Fatal(err)
	}
	if err := sess.Exec(`INSERT INTO T VALUES (2, 20)`); err != nil {
		t.Fatal(err)
	}
	if err := sess.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if n, _ := countRows(t, sess, "T"); n != 2 {
		t.Errorf("after retry: %d rows, want 2", n)
	}
}

// TestTxnBarrierStatementsRejected: DDL, DELETE, CHECKPOINT and shared
// DEFINE TERM cannot run inside a transaction, and the rejection leaves
// the transaction open and intact.
func TestTxnBarrierStatementsRejected(t *testing.T) {
	db, sess := openTxnDB(t)
	ctx := context.Background()
	if err := sess.Begin(ctx); err != nil {
		t.Fatal(err)
	}
	if err := sess.Exec(`INSERT INTO T VALUES (1, 10)`); err != nil {
		t.Fatal(err)
	}
	for _, sql := range []string{
		`CREATE TABLE U (ID NUMBER)`,
		`DROP TABLE T`,
		`DELETE FROM T WHERE T.ID = 1`,
		`CHECKPOINT`,
	} {
		if err := sess.Exec(sql); err == nil || !strings.Contains(err.Error(), "inside a transaction") {
			t.Errorf("%s inside txn: err = %v, want inside-a-transaction error", sql, err)
		}
	}
	if !sess.InTxn() {
		t.Fatal("rejected barrier statement closed the transaction")
	}
	if err := sess.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if n, _ := countRows(t, sess, "T"); n != 1 {
		t.Errorf("transaction did not survive the rejections")
	}
	_ = db
}

func TestTxnControlErrors(t *testing.T) {
	_, sess := openTxnDB(t)
	ctx := context.Background()
	if err := sess.Commit(ctx); err == nil {
		t.Errorf("COMMIT outside a transaction: want error")
	}
	if err := sess.Rollback(ctx); err == nil {
		t.Errorf("ROLLBACK outside a transaction: want error")
	}
	if err := sess.Begin(ctx); err != nil {
		t.Fatal(err)
	}
	if err := sess.Begin(ctx); err == nil {
		t.Errorf("nested BEGIN: want error")
	}
	if !sess.InTxn() {
		t.Errorf("failed nested BEGIN closed the transaction")
	}
	if err := sess.Rollback(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestTxnRequiresWAL(t *testing.T) {
	_, sess := openTxnDB(t, WithNoWAL())
	if err := sess.Begin(context.Background()); err == nil || !strings.Contains(err.Error(), "write-ahead log") {
		t.Errorf("BEGIN without WAL: err = %v, want write-ahead-log error", err)
	}
}

// TestTxnReadOnlyTransaction: BEGIN / reads / COMMIT with no writes never
// takes the writer mutex and commits trivially.
func TestTxnReadOnlyTransaction(t *testing.T) {
	db, sess := openTxnDB(t)
	ctx := context.Background()
	if err := db.Exec(`INSERT INTO T VALUES (1, 10)`); err != nil {
		t.Fatal(err)
	}
	if err := sess.Begin(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if n, _ := countRows(t, sess, "T"); n != 1 {
			t.Errorf("read-only txn read %d: %d rows, want 1", i, n)
		}
	}
	if err := sess.Commit(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestTxnSessionCloseRollsBack: closing a session with an open
// transaction discards its writes (the disconnect path).
func TestTxnSessionCloseRollsBack(t *testing.T) {
	db, _ := openTxnDB(t)
	ctx := context.Background()
	sess, err := db.Session()
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Begin(ctx); err != nil {
		t.Fatal(err)
	}
	if err := sess.Exec(`INSERT INTO T VALUES (1, 10)`); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	other, err := db.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if n, _ := countRows(t, other, "T"); n != 0 {
		t.Errorf("closed session's open transaction left %d rows", n)
	}
	// The writer mutex was released: a fresh write proceeds.
	if err := db.Exec(`INSERT INTO T VALUES (2, 20)`); err != nil {
		t.Fatal(err)
	}
}

// TestTxnReaderNotBlockedByOpenWriter is the liveness demonstration the
// issue demands: while a writer's transaction is open (writer mutex
// held, uncommitted rows in the heap), a snapshot reader in another
// session completes immediately.
func TestTxnReaderNotBlockedByOpenWriter(t *testing.T) {
	db, writer := openTxnDB(t)
	ctx := context.Background()
	if err := db.Exec(`INSERT INTO T VALUES (1, 10)`); err != nil {
		t.Fatal(err)
	}
	if err := writer.Begin(ctx); err != nil {
		t.Fatal(err)
	}
	if err := writer.Exec(`INSERT INTO T VALUES (2, 20)`); err != nil {
		t.Fatal(err)
	}
	// The writer now holds the writer mutex and keeps its transaction
	// open while the reader runs.
	reader, err := db.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()
	done := make(chan int, 1)
	go func() {
		n, _ := countRows(t, reader, "T")
		done <- n
	}()
	select {
	case n := <-done:
		if n != 1 {
			t.Errorf("reader saw %d rows beside an open writer, want the committed 1", n)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("snapshot reader blocked behind an open write transaction")
	}
	if err := writer.Commit(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestTxnConcurrentReadersRace sweeps concurrent snapshot readers
// against 1, 2, 4 and 8 committing writer goroutines; run with -race it
// doubles as the data-race check on the latch/snapshot machinery. Every
// reader must observe a consistent committed prefix: the tuple IDs it
// sees are exactly 1..n for some n (writers insert sequential IDs inside
// transactions, so a torn read would surface as a gap).
func TestTxnConcurrentReadersRace(t *testing.T) {
	for _, writers := range []int{1, 2, 4, 8} {
		writers := writers
		t.Run(fmt.Sprintf("writers=%d", writers), func(t *testing.T) {
			db := openTemp(t)
			if err := db.Exec(`CREATE TABLE T (ID NUMBER, V NUMBER)`); err != nil {
				t.Fatal(err)
			}
			perWriter := 20
			if testing.Short() {
				perWriter = 5
			}
			// Writers append disjoint ID ranges, two rows per transaction;
			// both rows of a transaction carry the same batch tag so a
			// reader can detect a half-visible transaction.
			var wg sync.WaitGroup
			stop := make(chan struct{})
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					sess, err := db.Session()
					if err != nil {
						t.Error(err)
						return
					}
					defer sess.Close()
					ctx := context.Background()
					for i := 0; i < perWriter; i++ {
						batch := w*perWriter + i
						for {
							if err := sess.Begin(ctx); err != nil {
								t.Error(err)
								return
							}
							err := sess.Exec(fmt.Sprintf(
								`INSERT INTO T VALUES (%d, %d); INSERT INTO T VALUES (%d, %d)`,
								2*batch, batch, 2*batch+1, batch))
							if err == nil {
								err = sess.Commit(ctx)
							}
							if err == nil {
								break
							}
							if fe, ok := AsError(err); ok && fe.Code == CodeTxnConflict {
								continue // retry from BEGIN
							}
							t.Error(err)
							return
						}
					}
				}(w)
			}
			var rg sync.WaitGroup
			for r := 0; r < 4; r++ {
				rg.Add(1)
				go func() {
					defer rg.Done()
					sess, err := db.Session()
					if err != nil {
						t.Error(err)
						return
					}
					defer sess.Close()
					for {
						select {
						case <-stop:
							return
						default:
						}
						res, err := sess.Query(`SELECT T.ID, T.V FROM T`)
						if err != nil {
							t.Error(err)
							return
						}
						// Count rows per transaction batch: snapshot
						// atomicity means every visible batch is complete.
						seen := make(map[string]int)
						for i := 0; i < res.Len(); i++ {
							seen[res.Row(i)[1]]++
						}
						for batch, n := range seen {
							if n != 2 {
								t.Errorf("transaction batch %s half-visible: %d of 2 rows", batch, n)
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			close(stop)
			rg.Wait()
			sess, err := db.Session()
			if err != nil {
				t.Fatal(err)
			}
			defer sess.Close()
			res, err := sess.Query(`SELECT T.ID FROM T`)
			if err != nil {
				t.Fatal(err)
			}
			if want := writers * perWriter * 2; res.Len() != want {
				t.Errorf("final row count %d, want %d", res.Len(), want)
			}
		})
	}
}
