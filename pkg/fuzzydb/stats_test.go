package fuzzydb

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestExplainAnalyze runs the paper's query 2 with statistics collection
// through the public API and checks the stats contract: strategy, answer
// accounting, a populated plan tree, and JSON/String rendering.
func TestExplainAnalyze(t *testing.T) {
	db := openTemp(t)
	if err := db.Exec(datingData); err != nil {
		t.Fatal(err)
	}
	res, stats, err := db.ExplainAnalyze(query2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("Len = %d, want 2", res.Len())
	}
	if stats == nil {
		t.Fatal("nil stats")
	}
	if res.Stats() != stats {
		t.Fatal("Result.Stats() does not return the collected stats")
	}
	if stats.Strategy != "chain-join" {
		t.Errorf("Strategy = %q, want chain-join", stats.Strategy)
	}
	if stats.Answer != res.Len() {
		t.Errorf("Answer = %d, want %d", stats.Answer, res.Len())
	}
	if stats.Wall() <= 0 {
		t.Errorf("Wall = %v, want > 0", stats.Wall())
	}
	if stats.Plan == nil {
		t.Fatal("nil plan tree")
	}
	rows, cmp, _ := stats.Plan.Totals()
	if rows == 0 || cmp == 0 {
		t.Errorf("zero plan totals: rows=%d cmp=%d", rows, cmp)
	}

	s := stats.String()
	for _, want := range []string{"strategy: chain-join", "answer: 2 tuples", "merge-join"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}

	b, err := json.Marshal(stats)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"strategy"`, `"wall_ns"`, `"answer_rows"`, `"plan"`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("JSON missing %s: %s", key, b)
		}
	}
}

// TestQueryHasNoStats checks plain queries do not carry a stats payload.
func TestQueryHasNoStats(t *testing.T) {
	db := openTemp(t)
	if err := db.Exec(`CREATE TABLE R (X NUMBER); INSERT INTO R VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT R.X FROM R`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats() != nil {
		t.Fatal("plain Query attached stats")
	}
}

// TestExplainAnalyzeParseError checks error propagation.
func TestExplainAnalyzeParseError(t *testing.T) {
	db := openTemp(t)
	if _, _, err := db.ExplainAnalyze(`SELECT FROM`); err == nil {
		t.Fatal("no error for malformed query")
	}
}
