package fuzzydb

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
)

// PlanStats is one node of the per-operator statistics tree an EXPLAIN
// ANALYZE run produces: the operator name, its runtime counters (rows
// out, comparisons, degree evaluations, Rng(r) scan lengths, sort and
// buffer-pool work, wall time), and its input operators as children. It
// serializes to stable JSON (see DESIGN.md for the schema).
type PlanStats = exec.StatsSnapshot

// QueryStats is the machine-readable summary of an EXPLAIN ANALYZE run.
type QueryStats struct {
	Strategy   string     `json:"strategy"`       // unnesting strategy chosen
	Note       string     `json:"note,omitempty"` // strategy detail (theorem applied)
	WallNanos  int64      `json:"wall_ns"`        // total evaluation wall time
	Answer     int        `json:"answer_rows"`    // answer cardinality
	Pruned     int64      `json:"pruned_by_with"` // rows dropped by WITH D >=
	PoolHits   int64      `json:"pool_hits"`      // buffer-pool page hits
	PoolMisses int64      `json:"pool_misses"`    // buffer-pool misses (physical reads)
	Plan       *PlanStats `json:"plan"`           // per-operator tree
}

// Wall returns the total evaluation wall time.
func (s *QueryStats) Wall() time.Duration { return time.Duration(s.WallNanos) }

// String renders the stats as the shell's EXPLAIN ANALYZE output.
func (s *QueryStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "strategy: %s (%s)\n", s.Strategy, s.Note)
	fmt.Fprintf(&b, "wall: %s  answer: %d tuples  pruned by WITH: %d  pool: %d hits / %d misses\n",
		s.Wall().Round(time.Microsecond), s.Answer, s.Pruned, s.PoolHits, s.PoolMisses)
	if s.Plan != nil {
		b.WriteString(s.Plan.Render())
	}
	return b.String()
}

func convertStats(es *core.ExecStats) *QueryStats {
	return &QueryStats{
		Strategy:   es.Strategy.String(),
		Note:       es.Note,
		WallNanos:  es.Wall.Nanoseconds(),
		Answer:     es.Answer,
		Pruned:     es.Pruned,
		PoolHits:   es.PoolHits,
		PoolMisses: es.PoolMisses,
		Plan:       es.Plan(),
	}
}

// ExplainAnalyze evaluates one SELECT (through the unnesting rewrites)
// and returns its answer together with the per-operator runtime
// statistics; Result.Stats also carries them.
func (db *DB) ExplainAnalyze(sql string) (*Result, *QueryStats, error) {
	return db.ExplainAnalyzeContext(context.Background(), sql)
}

// ExplainAnalyzeContext is ExplainAnalyze observing ctx.
func (db *DB) ExplainAnalyzeContext(ctx context.Context, sql string) (*Result, *QueryStats, error) {
	q, err := parseQuery(sql)
	if err != nil {
		return nil, nil, err
	}
	s := db.base
	s.mu.Lock()
	defer s.mu.Unlock()
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, nil, errClosed("database")
	}
	rel, es, err := s.sess.EvalAnalyze(ctx, q)
	if err != nil {
		return nil, nil, wrapErr(CodeExec, err)
	}
	res := newResult(rel)
	res.stats = convertStats(es)
	return res, res.stats, nil
}
