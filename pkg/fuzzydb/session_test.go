package fuzzydb

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func openSession(t *testing.T, db *DB) *Session {
	t.Helper()
	s, err := db.Session()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestSessionTermScope checks the session → database resolution order of
// linguistic terms: DEFINE TERM through a session is private to it, while
// DEFINE TERM through the DB writes the shared dictionary.
func TestSessionTermScope(t *testing.T) {
	db := openTemp(t)
	if err := db.Exec(`
		CREATE TABLE F (NAME STRING, AGE NUMBER);
		INSERT INTO F VALUES ('Ann', 25);
		INSERT INTO F VALUES ('Old Joe', 70);
	`); err != nil {
		t.Fatal(err)
	}
	s1 := openSession(t, db)
	s2 := openSession(t, db)

	if err := s1.Exec(`DEFINE TERM 'young' AS TRAP(0, 0, 80, 90)`); err != nil {
		t.Fatal(err)
	}
	q := `SELECT F.NAME FROM F WHERE F.AGE = 'young'`
	count := func(res *Result, err error) int {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return res.Len()
	}
	if got := count(s1.Query(q)); got != 2 {
		t.Errorf("session with private 'young': %d answers, want 2", got)
	}
	if got := count(s2.Query(q)); got != 1 {
		t.Errorf("sibling session: %d answers, want 1", got)
	}
	if got := count(db.Query(q)); got != 1 {
		t.Errorf("base: %d answers, want 1", got)
	}

	// A shared definition through the DB is visible to sessions.
	if err := db.Exec(`DEFINE TERM 'ancient' AS TRAP(60, 65, 120, 120)`); err != nil {
		t.Fatal(err)
	}
	if got := count(s2.Query(`SELECT F.NAME FROM F WHERE F.AGE = 'ancient'`)); got != 1 {
		t.Errorf("shared term through session: %d answers, want 1", got)
	}

	// An undefined term reports CodeTermUndefined.
	_, err := s2.Query(`SELECT F.NAME FROM F WHERE F.AGE = 'no such term'`)
	fe, ok := AsError(err)
	if !ok || fe.Code != CodeTermUndefined {
		t.Errorf("unknown term: err = %v, want CodeTermUndefined", err)
	}
}

// TestPreparedQueryPlanReuse prepares a parameterless nested query (its
// plan is cached at Prepare) and re-executes it across an INSERT: the
// cached plan must observe the new contents.
func TestPreparedQueryPlanReuse(t *testing.T) {
	db := openTemp(t)
	if err := db.Exec(`
		CREATE TABLE R (K NUMBER, B NUMBER);
		CREATE TABLE S (B NUMBER);
		INSERT INTO R VALUES (1, 10);
		INSERT INTO S VALUES (10);
	`); err != nil {
		t.Fatal(err)
	}
	s := openSession(t, db)
	stmt, err := s.Prepare(`SELECT R.K FROM R WHERE R.B IN (SELECT S.B FROM S)`)
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	if stmt.NumParams() != 0 {
		t.Fatalf("NumParams = %d", stmt.NumParams())
	}
	ctx := context.Background()
	res, err := stmt.Query(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("first execution: %d answers, want 1", res.Len())
	}
	if err := db.Exec(`INSERT INTO R VALUES (2, 10)`); err != nil {
		t.Fatal(err)
	}
	res, err = stmt.Query(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Errorf("re-execution after insert: %d answers, want 2", res.Len())
	}
}

// TestPreparedParams binds '?' parameters: numbers and strings, in
// queries and inserts, with arity and type errors reported.
func TestPreparedParams(t *testing.T) {
	db := openTemp(t)
	if err := db.Exec(`CREATE TABLE T (NAME STRING, AGE NUMBER)`); err != nil {
		t.Fatal(err)
	}
	s := openSession(t, db)
	ctx := context.Background()

	ins, err := s.Prepare(`INSERT INTO T VALUES (?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	defer ins.Close()
	if ins.NumParams() != 2 {
		t.Fatalf("NumParams = %d", ins.NumParams())
	}
	for i := 0; i < 3; i++ {
		if err := ins.Exec(ctx, fmt.Sprintf("p%d", i), 20+10*i); err != nil {
			t.Fatal(err)
		}
	}

	sel, err := s.Prepare(`SELECT T.NAME FROM T WHERE T.AGE > ?`)
	if err != nil {
		t.Fatal(err)
	}
	defer sel.Close()
	res, err := sel.Query(ctx, 25)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Errorf("AGE > 25: %d answers, want 2\n%s", res.Len(), res)
	}
	res, err = sel.Query(ctx, 35.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Errorf("AGE > 35: %d answers, want 1", res.Len())
	}

	if _, err := sel.Query(ctx); err == nil {
		t.Error("want arity error for missing argument")
	}
	if _, err := sel.Query(ctx, struct{}{}); err == nil {
		t.Error("want type error for struct argument")
	}
	if err := ins.Exec(ctx, "x"); err == nil {
		t.Error("want arity error for INSERT with one of two arguments")
	}
	if _, err := ins.Query(ctx, "x", 1); err == nil {
		t.Error("Query on a prepared INSERT should fail")
	}
}

// TestConcurrentSessions runs many read-only sessions against a shared
// database while a writer inserts, exercising the readers-writer locking
// (meaningful under -race).
func TestConcurrentSessions(t *testing.T) {
	db := openTemp(t)
	if err := db.Exec(datingData); err != nil {
		t.Fatal(err)
	}
	want, err := db.Query(query2)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := db.Session()
			if err != nil {
				errc <- err
				return
			}
			defer s.Close()
			for i := 0; i < 5; i++ {
				res, err := s.Query(query2)
				if err != nil {
					errc <- err
					return
				}
				if !res.Equal(want, 1e-9) {
					errc <- fmt.Errorf("concurrent answer diverged:\n%s", res)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			// Rows with no bearing on query2's answer.
			if err := db.Exec(`INSERT INTO M VALUES (900, 'Zed', 99, 1)`); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestSessionClosed checks the CodeClosed paths of sessions and
// statements, and that closing the DB invalidates open sessions.
func TestSessionClosed(t *testing.T) {
	db := openTemp(t)
	if err := db.Exec(`CREATE TABLE T (X NUMBER)`); err != nil {
		t.Fatal(err)
	}
	s, err := db.Session()
	if err != nil {
		t.Fatal(err)
	}
	stmt, err := s.Prepare(`SELECT T.X FROM T`)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if _, err := s.Query(`SELECT T.X FROM T`); !isCode(err, CodeClosed) {
		t.Errorf("Query on closed session: %v", err)
	}
	if _, err := stmt.Query(context.Background()); !isCode(err, CodeClosed) {
		t.Errorf("Stmt.Query on closed session: %v", err)
	}

	s2, err := db.Session()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Query(`SELECT T.X FROM T`); !isCode(err, CodeClosed) {
		t.Errorf("Query after DB close: %v", err)
	}
	if err := s2.Close(); err != nil {
		t.Errorf("session Close after DB close: %v", err)
	}
	if _, err := db.Session(); !isCode(err, CodeClosed) {
		t.Errorf("Session on closed DB: %v", err)
	}
}

func isCode(err error, code ErrorCode) bool {
	fe, ok := AsError(err)
	return ok && fe.Code == code
}

// TestTypedErrors checks the code classification at the public boundary.
func TestTypedErrors(t *testing.T) {
	db := openTemp(t)
	if err := db.Exec(`CREATE TABLE T (X NUMBER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`SELEC nonsense`); !isCode(err, CodeParse) {
		t.Errorf("parse error: %v", err)
	}
	if err := db.Exec(`INSERT INTO T VALUES ('no such term')`); !isCode(err, CodeTermUndefined) {
		t.Errorf("unknown term on insert: %v", err)
	}
	if _, err := db.Query(`SELECT T.Y FROM T`); !isCode(err, CodeExec) {
		t.Errorf("unresolvable reference: %v", err)
	}
	// A cancelled context stays visible through the typed wrapper.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := db.ExecContext(ctx, `SELECT T.X FROM T`); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled exec: %v", err)
	}
	if CodeTermUndefined.String() != "term-undefined" || ErrorCode(99).String() != "code(99)" {
		t.Error("ErrorCode.String misrenders")
	}
	e := NewError(CodeProtocol, "bad frame")
	if e.Error() != "fuzzydb: bad frame" || e.Code != CodeProtocol {
		t.Errorf("NewError: %v", e)
	}
}

// TestRowsIterator drives the streaming cursor: Next/Scan/Degree, both
// scan target kinds, and its misuse errors.
func TestRowsIterator(t *testing.T) {
	db := openTemp(t)
	if err := db.Exec(`
		CREATE TABLE T (NAME STRING, AGE NUMBER);
		INSERT INTO T VALUES ('Ann', 25);
		INSERT INTO T VALUES ('Joe', 'about 35');
	`); err != nil {
		t.Fatal(err)
	}
	rows, err := db.QueryRows(context.Background(), `SELECT T.NAME, T.AGE FROM T`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if cols := rows.Columns(); len(cols) != 2 || cols[0] != "T.NAME" {
		t.Errorf("Columns = %v", cols)
	}
	var name string
	if err := rows.Scan(&name); err == nil {
		t.Error("Scan before Next should fail")
	}
	got := map[string]string{}
	for rows.Next() {
		var age string
		if err := rows.Scan(&name, &age); err != nil {
			t.Fatal(err)
		}
		if d := rows.Degree(); d != 1 {
			t.Errorf("Degree = %g", d)
		}
		got[name] = age
	}
	if rows.Err() != nil {
		t.Fatal(rows.Err())
	}
	if got["Ann"] != "25" || got["Joe"] != "TRAP(30,35,35,40)" {
		t.Errorf("scanned %v", got)
	}

	// Numeric scan targets: crisp values only.
	rows2, err := db.QueryRows(context.Background(), `SELECT T.AGE FROM T WHERE T.NAME = 'Ann'`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows2.Close()
	if !rows2.Next() {
		t.Fatal("no row")
	}
	var age float64
	if err := rows2.Scan(&age); err != nil || age != 25 {
		t.Errorf("Scan(*float64) = %g, %v", age, err)
	}
	if err := rows2.Scan(&age, &age); err == nil {
		t.Error("want column-count error")
	}
	var n int
	if err := rows2.Scan(&n); err == nil {
		t.Error("want unsupported-target error")
	}
	rows2.Close()
	if rows2.Next() {
		t.Error("Next after Close")
	}
	if err := rows2.Scan(&age); !isCode(err, CodeClosed) {
		t.Errorf("Scan after Close: %v", err)
	}
}
