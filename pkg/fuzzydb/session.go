package fuzzydb

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/frel"
	"repro/internal/fsql"
	"repro/internal/fuzzy"
	"repro/internal/plan"
)

// Session is an isolated execution context over a shared database: its
// own evaluation environment (sort caches, counters) and a private
// linguistic-term scope resolved before the shared dictionary, so DEFINE
// TERM through a session customizes the vocabulary for that session
// alone. The network server gives every connection one Session; embedded
// callers open them for the same isolation.
//
// A Session serializes its own statements (it is safe for concurrent use,
// but calls queue), while read-only statements of different sessions run
// concurrently; mutations serialize behind the database writer lock.
type Session struct {
	db   *DB
	sess *core.Session

	mu     sync.Mutex // serializes this session's statements
	closed bool
	// holdsW records that this session's open transaction holds the
	// database writer mutex (acquired at the transaction's first write,
	// released when the transaction ends). Guarded by mu.
	holdsW bool
}

// Session opens a new session over the database. Sessions must be closed
// when done; closing the database invalidates them.
func (db *DB) Session() (*Session, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, errClosed("database")
	}
	return &Session{db: db, sess: db.base.sess.Fork()}, nil
}

// Statement lock classes. Reads take only the shared reader lock:
// snapshot isolation makes them safe beside a logged writer, so they
// never wait for one. Logged writes serialize against each other through
// the writer mutex but still run beside readers. Barrier operations
// mutate shared structures in place and exclude everything.
const (
	lockRead    = iota // mu.RLock
	lockWrite          // wmu + mu.RLock (WAL-logged appends)
	lockBarrier        // wmu + mu.Lock (in-place mutations, NoWAL writes)
)

// lockClass classifies st for sess: which locks its execution takes.
func lockClass(sess *core.Session, st fsql.Statement, wal bool) int {
	switch st.(type) {
	case *fsql.Select, *fsql.Explain:
		return lockRead
	case *fsql.Begin, *fsql.Commit, *fsql.Rollback:
		// Transaction control itself only manipulates snapshots; the
		// writer mutex is managed by the first-write/transaction-end
		// bookkeeping in runLocked.
		return lockRead
	case *fsql.DefineTerm:
		if sess.Forked() {
			return lockRead // private term scope only
		}
		return lockBarrier
	case *fsql.Insert:
		if wal {
			return lockWrite
		}
		return lockBarrier // unlogged writes have no snapshots to hide behind
	}
	return lockBarrier // DDL, DELETE, CHECKPOINT
}

// run executes one parsed statement under the session and database locks.
func (s *Session) run(ctx context.Context, st fsql.Statement) (*frel.Relation, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runLocked(ctx, st)
}

// runLocked is run for callers already holding s.mu.
//
// Transactions and the writer mutex: a session's open transaction
// acquires wmu at its first write and keeps holding it across statements
// until the transaction ends (COMMIT, ROLLBACK, a conflict abort, or
// Close), so concurrent transactions' writes never interleave, while
// snapshot readers — including other sessions' read-only transactions —
// proceed throughout.
func (s *Session) runLocked(ctx context.Context, st fsql.Statement) (*frel.Relation, error) {
	if s.closed {
		return nil, errClosed("session")
	}
	db := s.db
	class := lockClass(s.sess, st, s.sess.Catalog().Manager().WALEnabled())
	if class == lockBarrier && s.sess.InTxn() {
		// The engine rejects barrier statements inside a transaction;
		// run it under the locks the transaction already holds to
		// surface that error without self-deadlocking on wmu.
		class = lockRead
	}

	// Lock order: wmu before mu, always.
	acquiredW := false
	switch class {
	case lockBarrier:
		db.wmu.Lock()
		acquiredW = true
		db.mu.Lock()
		defer db.mu.Unlock()
	case lockWrite:
		if !s.holdsW {
			db.wmu.Lock()
			acquiredW = true
		}
		db.mu.RLock()
		defer db.mu.RUnlock()
	default:
		db.mu.RLock()
		defer db.mu.RUnlock()
	}
	defer func() {
		// Keep wmu across statements of a live open transaction;
		// otherwise release whatever this session holds. Covers the
		// whole ending spectrum: auto-commit, COMMIT, ROLLBACK,
		// conflict abort, statements after the database closed.
		if s.sess.InTxn() && !db.closed {
			s.holdsW = s.holdsW || acquiredW
			return
		}
		if s.holdsW || acquiredW {
			s.holdsW = false
			db.wmu.Unlock()
		}
	}()
	if db.closed {
		return nil, errClosed("database")
	}
	rel, err := s.sess.ExecContext(ctx, st)
	if err != nil {
		return nil, wrapErr(CodeExec, err)
	}
	return rel, nil
}

// Begin opens an explicit transaction on the session: until Commit or
// Rollback, every read sees the consistent committed snapshot taken here
// (plus the transaction's own writes), and the writes of other
// transactions neither appear nor block it. A concurrent committed write
// to a relation this transaction then writes aborts it with
// CodeTxnConflict (first-writer-wins); retry from Begin.
func (s *Session) Begin(ctx context.Context) error {
	_, err := s.run(ctx, &fsql.Begin{})
	return err
}

// Commit makes the open transaction's writes durable and visible to
// statements and snapshots that follow.
func (s *Session) Commit(ctx context.Context) error {
	_, err := s.run(ctx, &fsql.Commit{})
	return err
}

// Rollback discards the open transaction's writes; the database is left
// as if the transaction never ran.
func (s *Session) Rollback(ctx context.Context) error {
	_, err := s.run(ctx, &fsql.Rollback{})
	return err
}

// InTxn reports whether the session has an open explicit transaction.
func (s *Session) InTxn() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sess.InTxn()
}

// ExecContext executes a Fuzzy SQL script (one or more ';'-separated
// statements), discarding query answers. Cancelling ctx aborts the
// running statement and skips the rest.
func (s *Session) ExecContext(ctx context.Context, sql string) error {
	stmts, err := fsql.ParseScript(sql)
	if err != nil {
		return wrapErr(CodeParse, err)
	}
	for _, st := range stmts {
		if _, err := s.run(ctx, st); err != nil {
			return err
		}
	}
	return nil
}

// Exec is ExecContext with a background context.
func (s *Session) Exec(sql string) error { return s.ExecContext(context.Background(), sql) }

// QueryContext evaluates one SELECT (through the unnesting rewrites) and
// returns its materialized answer.
func (s *Session) QueryContext(ctx context.Context, sql string) (*Result, error) {
	q, err := parseQuery(sql)
	if err != nil {
		return nil, err
	}
	rel, err := s.run(ctx, q)
	if err != nil {
		return nil, err
	}
	return newResult(rel), nil
}

// Query is QueryContext with a background context.
func (s *Session) Query(sql string) (*Result, error) {
	return s.QueryContext(context.Background(), sql)
}

// QueryRows evaluates one SELECT and returns a streaming cursor over its
// answer.
func (s *Session) QueryRows(ctx context.Context, sql string) (*Rows, error) {
	q, err := parseQuery(sql)
	if err != nil {
		return nil, err
	}
	rel, err := s.run(ctx, q)
	if err != nil {
		return nil, err
	}
	return newRows(rel), nil
}

// Close releases the session's cached sort temporaries, rolling back an
// open transaction first (a client that disconnects mid-transaction
// leaves nothing behind). The shared database stays open; Close is
// idempotent.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	defer func() {
		if s.holdsW {
			s.holdsW = false
			s.db.wmu.Unlock()
		}
	}()
	s.db.mu.RLock()
	defer s.db.mu.RUnlock()
	if s.db.closed {
		// The database released the storage already; nothing left to drop.
		return nil
	}
	return wrapErr(CodeInternal, s.sess.Close())
}

// Stmt is a prepared statement: parsed once, executed many times.
// Parameters are written '?' and bound positionally at execution. A
// parameterless SELECT is also planned once at Prepare — re-executions
// replay the recorded plan (sources and terms still re-resolve per run,
// so answers follow later inserts).
type Stmt struct {
	s       *Session
	text    string
	st      fsql.Statement
	sel     *fsql.Select // non-nil when the statement is a query
	nparams int
	cached  *plan.Plan // replayable plan, for parameterless queries
	closed  bool
}

// Prepare parses one statement (its trailing ';' is optional) and, for a
// parameterless query, plans it. The returned statement is bound to this
// session: it sees the session's term scope and serializes with its other
// statements.
func (s *Session) Prepare(sql string) (*Stmt, error) {
	st, err := fsql.ParseStatement(sql)
	if err != nil {
		return nil, wrapErr(CodeParse, err)
	}
	stmt := &Stmt{s: s, text: sql, st: st, nparams: fsql.NumParams(st)}
	if sel, ok := st.(*fsql.Select); ok {
		stmt.sel = sel
		if stmt.nparams == 0 {
			s.mu.Lock()
			defer s.mu.Unlock()
			if s.closed {
				return nil, errClosed("session")
			}
			s.db.mu.RLock()
			defer s.db.mu.RUnlock()
			if s.db.closed {
				return nil, errClosed("database")
			}
			p, err := s.sess.Env.PlanQuery(sel)
			if err != nil {
				return nil, wrapErr(CodePlan, err)
			}
			stmt.cached = p
		}
	}
	return stmt, nil
}

// Text returns the statement's Fuzzy SQL source.
func (st *Stmt) Text() string { return st.text }

// IsQuery reports whether executing the statement returns rows.
func (st *Stmt) IsQuery() bool { return st.sel != nil }

// NumParams returns the number of '?' parameters the statement takes.
func (st *Stmt) NumParams() int { return st.nparams }

// Query executes a prepared SELECT with the given arguments (one per '?',
// numbers or strings) and returns its materialized answer.
func (st *Stmt) Query(ctx context.Context, args ...any) (*Result, error) {
	rel, err := st.query(ctx, args)
	if err != nil {
		return nil, err
	}
	return newResult(rel), nil
}

// QueryRows is Query returning a streaming cursor.
func (st *Stmt) QueryRows(ctx context.Context, args ...any) (*Rows, error) {
	rel, err := st.query(ctx, args)
	if err != nil {
		return nil, err
	}
	return newRows(rel), nil
}

func (st *Stmt) query(ctx context.Context, args []any) (*frel.Relation, error) {
	if st.sel == nil {
		return nil, &Error{Code: CodeExec, Msg: fmt.Sprintf("prepared statement is not a query (%T)", st.st)}
	}
	ops, err := bindArgs(args)
	if err != nil {
		return nil, err
	}
	if len(ops) != st.nparams {
		return nil, &Error{Code: CodeExec, Msg: fmt.Sprintf("statement takes %d parameters, got %d arguments", st.nparams, len(ops))}
	}
	s := st.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errClosed("session")
	}
	if st.closed {
		return nil, errClosed("statement")
	}
	s.db.mu.RLock()
	defer s.db.mu.RUnlock()
	if s.db.closed {
		return nil, errClosed("database")
	}
	if st.cached != nil {
		rel, err := s.sess.EvalPlan(ctx, st.cached)
		if err != nil {
			return nil, wrapErr(CodeExec, err)
		}
		return rel, nil
	}
	q, err := fsql.BindQuery(st.sel, ops)
	if err != nil {
		return nil, wrapErr(CodeExec, err)
	}
	rel, err := s.sess.EvalSelect(ctx, q)
	if err != nil {
		return nil, wrapErr(CodeExec, err)
	}
	return rel, nil
}

// Exec executes a prepared non-query statement (INSERT, DELETE, DDL) with
// the given arguments. Executing a prepared SELECT this way evaluates it
// and discards the answer.
func (st *Stmt) Exec(ctx context.Context, args ...any) error {
	ops, err := bindArgs(args)
	if err != nil {
		return err
	}
	s := st.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if st.closed {
		return errClosed("statement")
	}
	bound := st.st
	if st.nparams > 0 {
		b, err := fsql.BindStatement(st.st, ops)
		if err != nil {
			return wrapErr(CodeExec, err)
		}
		bound = b
	} else if len(ops) != 0 {
		return &Error{Code: CodeExec, Msg: fmt.Sprintf("statement takes no parameters, got %d arguments", len(ops))}
	}
	_, err = s.runLocked(ctx, bound)
	return err
}

// Close releases the prepared statement. It is idempotent.
func (st *Stmt) Close() error {
	s := st.s
	s.mu.Lock()
	defer s.mu.Unlock()
	st.closed = true
	st.cached = nil
	return nil
}

// bindArgs converts Go argument values to Fuzzy SQL literal operands.
func bindArgs(args []any) ([]fsql.Operand, error) {
	if len(args) == 0 {
		return nil, nil
	}
	ops := make([]fsql.Operand, len(args))
	for i, a := range args {
		switch v := a.(type) {
		case int:
			ops[i] = fsql.NumOperand(fuzzy.Crisp(float64(v)))
		case int64:
			ops[i] = fsql.NumOperand(fuzzy.Crisp(float64(v)))
		case float64:
			ops[i] = fsql.NumOperand(fuzzy.Crisp(v))
		case string:
			ops[i] = fsql.StrOperand(v)
		default:
			return nil, &Error{Code: CodeExec, Msg: fmt.Sprintf("argument %d: unsupported type %T (want a number or string)", i, a)}
		}
	}
	return ops, nil
}

// parseQuery parses one SELECT, tolerating a trailing ';'.
func parseQuery(sql string) (*fsql.Select, error) {
	q, err := fsql.ParseQuery(strings.TrimSuffix(strings.TrimSpace(sql), ";"))
	if err != nil {
		return nil, wrapErr(CodeParse, err)
	}
	return q, nil
}
