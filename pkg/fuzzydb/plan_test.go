package fuzzydb

import (
	"strings"
	"testing"
)

func planDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if err := db.Exec(`
		CREATE TABLE R (K NUMBER, A NUMBER, B NUMBER);
		CREATE TABLE S (A NUMBER, B NUMBER);
		INSERT INTO R VALUES (1, 1, 10);
		INSERT INTO R VALUES (2, 2, 20);
		INSERT INTO S VALUES (1, 10);
		INSERT INTO S VALUES (2, 99);
	`); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPlanInspection(t *testing.T) {
	db := planDB(t)
	info, err := db.Plan(`SELECT R.K FROM R WHERE R.B IN (SELECT S.B FROM S WHERE S.A = R.A)`)
	if err != nil {
		t.Fatal(err)
	}
	if info.Strategy != "chain-join" {
		t.Errorf("strategy = %q", info.Strategy)
	}
	if len(info.Rules) != 1 || info.Rules[0] != "unnest-in" {
		t.Errorf("rules = %v", info.Rules)
	}
	if info.Cost <= 0 || info.Rows <= 0 {
		t.Errorf("estimates rows=%g cost=%g, want positive", info.Rows, info.Cost)
	}
	if info.NaiveCost <= info.Cost {
		t.Errorf("naive cost %g not above plan cost %g", info.NaiveCost, info.Cost)
	}
	for _, want := range []string{"rules: unnest-in", "join", "scan R", "scan S", "threshold"} {
		if !strings.Contains(info.Tree, want) {
			t.Errorf("plan tree missing %q:\n%s", want, info.Tree)
		}
	}
}

func TestPlanFlatQuery(t *testing.T) {
	db := planDB(t)
	info, err := db.Plan(`SELECT R.K FROM R WHERE R.A = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if info.Strategy != "flat" || len(info.Rules) != 0 {
		t.Errorf("strategy = %q rules = %v", info.Strategy, info.Rules)
	}
}

func TestPlanParseError(t *testing.T) {
	db := planDB(t)
	if _, err := db.Plan(`SELECT FROM WHERE`); err == nil {
		t.Fatal("Plan of malformed SQL succeeded")
	}
}
