package fuzzydb

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// ErrorCode classifies a database error for programmatic handling. Codes
// are stable one-byte values: the wire protocol carries them verbatim, so
// a network client can switch on the same constants as an embedded one.
type ErrorCode uint8

const (
	// CodeInternal is an unclassified engine failure (I/O, corruption).
	CodeInternal ErrorCode = 1
	// CodeParse marks a Fuzzy SQL syntax error.
	CodeParse ErrorCode = 2
	// CodePlan marks a planning failure (unresolvable reference, shape
	// outside the supported classes that also defeats the naive fallback).
	CodePlan ErrorCode = 3
	// CodeExec marks a runtime evaluation failure.
	CodeExec ErrorCode = 4
	// CodeClosed reports use of a closed DB, Session, Stmt, or Rows.
	CodeClosed ErrorCode = 5
	// CodeTermUndefined reports a linguistic term found in neither the
	// session's term scope nor the shared dictionary.
	CodeTermUndefined ErrorCode = 6
	// CodeProtocol reports a wire-protocol violation (malformed frame,
	// message out of sequence); it never arises from the embedded API.
	CodeProtocol ErrorCode = 7
	// CodeTxnConflict reports a write-write transaction conflict: a
	// relation this transaction wrote was modified by another transaction
	// that committed after this one's BEGIN. The transaction has been
	// rolled back; retrying it from BEGIN is the expected response.
	CodeTxnConflict ErrorCode = 8
)

// String returns the code's stable lowercase name.
func (c ErrorCode) String() string {
	switch c {
	case CodeInternal:
		return "internal"
	case CodeParse:
		return "parse"
	case CodePlan:
		return "plan"
	case CodeExec:
		return "exec"
	case CodeClosed:
		return "closed"
	case CodeTermUndefined:
		return "term-undefined"
	case CodeProtocol:
		return "protocol"
	case CodeTxnConflict:
		return "txn-conflict"
	default:
		return fmt.Sprintf("code(%d)", uint8(c))
	}
}

// Error is the typed error every public entry point returns: a stable
// code plus a human-readable message. It maps onto the wire protocol's
// Error message unchanged, so errors look the same to embedded and
// network callers. Errors wrap their cause — errors.Is still sees
// context.Canceled through a cancelled query's error.
type Error struct {
	Code ErrorCode
	Msg  string
	// cause is the wrapped engine error; nil for errors reconstructed
	// from the wire.
	cause error
}

// Error implements the error interface.
func (e *Error) Error() string { return "fuzzydb: " + e.Msg }

// Unwrap returns the wrapped cause, keeping errors.Is/As chains intact.
func (e *Error) Unwrap() error { return e.cause }

// NewError builds an Error from a code and message, as the wire layer
// does when it reconstructs a server-side error on the client.
func NewError(code ErrorCode, msg string) *Error { return &Error{Code: code, Msg: msg} }

// AsError extracts the typed error from err's chain.
func AsError(err error) (*Error, bool) {
	var fe *Error
	if errors.As(err, &fe) {
		return fe, true
	}
	return nil, false
}

// wrapErr classifies err under the given default code. Errors that are
// already typed pass through; unknown-term failures refine to
// CodeTermUndefined wherever they surface.
func wrapErr(code ErrorCode, err error) error {
	if err == nil {
		return nil
	}
	var fe *Error
	if errors.As(err, &fe) {
		return err
	}
	if errors.Is(err, core.ErrUnknownTerm) {
		code = CodeTermUndefined
	}
	if errors.Is(err, core.ErrTxnConflict) {
		code = CodeTxnConflict
	}
	return &Error{Code: code, Msg: err.Error(), cause: err}
}

// errClosed reports use of a closed handle ("database", "session", ...).
func errClosed(what string) error {
	return &Error{Code: CodeClosed, Msg: what + " is closed"}
}
