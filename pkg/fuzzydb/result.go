package fuzzydb

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/frel"
)

// Result is a query answer: a fuzzy relation rendered as rows of strings,
// each with the degree to which the tuple satisfies the query. Results
// are self-contained — detached from the database they came from.
type Result struct {
	columns []string
	rows    [][]string
	degrees []float64
	stats   *QueryStats
}

func newResult(rel *frel.Relation) *Result {
	r := &Result{
		columns: make([]string, len(rel.Schema.Attrs)),
		rows:    make([][]string, 0, rel.Len()),
		degrees: make([]float64, 0, rel.Len()),
	}
	for i, a := range rel.Schema.Attrs {
		r.columns[i] = a.Name
	}
	for _, t := range rel.Tuples {
		row := make([]string, len(t.Values))
		for i, v := range t.Values {
			if v.Kind == frel.KindString {
				row[i] = v.Str
			} else {
				row[i] = v.Num.String()
			}
		}
		r.rows = append(r.rows, row)
		r.degrees = append(r.degrees, t.D)
	}
	return r
}

// Columns returns the answer's column names.
func (r *Result) Columns() []string { return append([]string(nil), r.columns...) }

// Len returns the number of answer tuples.
func (r *Result) Len() int { return len(r.rows) }

// Row returns the i-th answer tuple's values, rendered as strings
// (ill-known numbers render as their possibility distributions, e.g.
// "TRAP(28,30,39,42)").
func (r *Result) Row(i int) []string { return append([]string(nil), r.rows[i]...) }

// Degree returns the membership degree of the i-th answer tuple.
func (r *Result) Degree(i int) float64 { return r.degrees[i] }

// Stats returns the runtime statistics collected for this result, or nil
// unless the result came from ExplainAnalyze.
func (r *Result) Stats() *QueryStats { return r.stats }

// Equal reports whether two results hold the same rows in the same order
// with degrees equal to within tol.
func (r *Result) Equal(other *Result, tol float64) bool {
	if other == nil || len(r.rows) != len(other.rows) || len(r.columns) != len(other.columns) {
		return false
	}
	for i := range r.rows {
		if math.Abs(r.degrees[i]-other.degrees[i]) > tol {
			return false
		}
		for j := range r.rows[i] {
			if r.rows[i][j] != other.rows[i][j] {
				return false
			}
		}
	}
	return true
}

// String renders the result as a small table.
func (r *Result) String() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.columns, "  "))
	b.WriteString("  D\n")
	for i, row := range r.rows {
		b.WriteString(strings.Join(row, "  "))
		fmt.Fprintf(&b, "  %.4g\n", r.degrees[i])
	}
	fmt.Fprintf(&b, "(%d tuples)", len(r.rows))
	return b.String()
}
