package repro

// testing.B benchmarks, one per table and figure of the paper's evaluation
// (Section 9), plus ablations of the design choices called out in
// DESIGN.md. The full parameter sweeps with paper-vs-measured output live
// in cmd/fuzzybench; these benchmarks pin one representative configuration
// per experiment so `go test -bench=.` tracks regressions.

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/extsort"
	"repro/internal/frel"
	"repro/internal/fsql"
	"repro/internal/fuzzy"
	"repro/internal/storage"
	"repro/internal/workload"
)

// benchConfig is the shared scaled-down configuration.
func benchConfig(b *testing.B) bench.Config {
	b.Helper()
	return bench.Config{Dir: b.TempDir(), ScaleDiv: 128}
}

// runPair benches one method of the type J experiment at the given sizes.
func runPair(b *testing.B, m bench.Method, nOuter, nInner int) {
	cfg := benchConfig(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		meas, err := cfg.MeasureOne(m, nOuter, nInner)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(meas.IOs), "pageIOs/op")
		b.ReportMetric(float64(meas.DegreeEvals), "degreeEvals/op")
	}
}

// Table 1: both relations equal-sized, C = 7, 128-byte tuples.

func BenchmarkTable1NestedLoop(b *testing.B) {
	for _, n := range []int{250, 500, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			runPair(b, bench.NestedLoop, n, n)
		})
	}
}

func BenchmarkTable1MergeJoin(b *testing.B) {
	for _, n := range []int{250, 500, 1000, 2000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			runPair(b, bench.MergeJoin, n, n)
		})
	}
}

// Table 2: outer fixed, inner growing.

func BenchmarkTable2NestedLoop(b *testing.B) {
	for _, inner := range []int{250, 500, 1000} {
		b.Run(fmt.Sprintf("inner=%d", inner), func(b *testing.B) {
			runPair(b, bench.NestedLoop, 500, inner)
		})
	}
}

func BenchmarkTable2MergeJoin(b *testing.B) {
	for _, inner := range []int{250, 500, 1000, 2000} {
		b.Run(fmt.Sprintf("inner=%d", inner), func(b *testing.B) {
			runPair(b, bench.MergeJoin, 500, inner)
		})
	}
}

// Table 3 is the phase breakdown of the Table 2 merge-join runs; the
// benchmark reports the sort share as a metric.
func BenchmarkTable3SortShare(b *testing.B) {
	cfg := benchConfig(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		meas, err := cfg.MeasureOne(bench.MergeJoin, 500, 1000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(meas.SortFraction()*100, "sort%")
		b.ReportMetric(meas.CPUFraction()*100, "cpu%")
	}
}

// Table 4: tuple size sweep at C = 1.

func BenchmarkTable4TupleSize(b *testing.B) {
	for _, size := range []int{128, 512, 2048} {
		b.Run(fmt.Sprintf("bytes=%d", size), func(b *testing.B) {
			cfg := benchConfig(b)
			cfg.TupleBytes = size
			cfg.Fanout = 1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				meas, err := cfg.MeasureOne(bench.MergeJoin, 250, 250)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(meas.IOs), "pageIOs/op")
			}
		})
	}
}

// Fig. 3: join fanout sweep for the merge-join.

func BenchmarkFig3Fanout(b *testing.B) {
	for _, c := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("C=%d", c), func(b *testing.B) {
			cfg := benchConfig(b)
			cfg.Fanout = c
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				meas, err := cfg.MeasureOne(bench.MergeJoin, 500, 500)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(meas.IOs), "pageIOs/op")
				b.ReportMetric(float64(meas.DegreeEvals), "degreeEvals/op")
			}
		})
	}
}

// --- Ablations -----------------------------------------------------------

// ablationRelations builds a sorted pair of workload relations in memory.
func ablationRelations(b *testing.B, n int, width float64) (outer, inner *frel.Relation) {
	b.Helper()
	r, err := workload.Generate(workload.Params{
		Name: "R", Tuples: n, TupleBytes: 128, Fanout: 7, Width: width, Jitter: 0.5, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	s, err := workload.Generate(workload.Params{
		Name: "S", Tuples: n, TupleBytes: 128, Fanout: 7, Width: width, Jitter: 0.5, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	for _, rel := range []*frel.Relation{r, s} {
		less, err := extsort.ByAttr(rel.Schema, "B")
		if err != nil {
			b.Fatal(err)
		}
		extsort.SortRelation(rel, less)
	}
	return r, s
}

func drainJoin(b *testing.B, src exec.Source) int {
	b.Helper()
	rel, err := exec.Collect(src)
	if err != nil {
		b.Fatal(err)
	}
	return rel.Len()
}

// BenchmarkAblationRangeCursor measures the extended merge-join with its
// Rng(r) cursor against the same sorted inputs joined by a nested loop —
// isolating the value of the range cursor (Section 3).
func BenchmarkAblationRangeCursor(b *testing.B) {
	r, s := ablationRelations(b, 2000, 5)
	b.Run("with-cursor", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mj, err := exec.NewMergeJoin(exec.NewMemSource(r), exec.NewMemSource(s), "R.B", "S.B", nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			drainJoin(b, mj)
		}
	})
	b.Run("no-cursor-sorted-nl", func(b *testing.B) {
		ri, _ := r.Schema.Resolve("B")
		si, _ := s.Schema.Resolve("B")
		on := func(l, m frel.Tuple) float64 {
			return fuzzy.Eq(l.Values[ri].Num, m.Values[si].Num)
		}
		for i := 0; i < b.N; i++ {
			nl := exec.NewBlockNLJoin(exec.NewMemSource(r), exec.NewMemSource(s), on, 1<<20, nil)
			drainJoin(b, nl)
		}
	})
}

// BenchmarkAblationIntervalWidth exercises the paper's closing caveat:
// excessively vague values (temporal-database-sized intervals) keep
// dangling tuples inside Rng(r) and erode the merge-join's advantage. A
// growing fraction of the inner relation gets supports spanning many join
// groups; the pair-examination metric shows the range bloat.
func BenchmarkAblationIntervalWidth(b *testing.B) {
	for _, vaguePct := range []int{0, 5, 20, 50} {
		b.Run(fmt.Sprintf("vague=%d%%", vaguePct), func(b *testing.B) {
			r, s := ablationRelations(b, 1000, 5)
			// Widen every (100/vaguePct)-th inner value to span ~10 of the
			// 1000-spaced centre groups.
			if vaguePct > 0 {
				s = s.Clone()
				bi, _ := s.Schema.Resolve("B")
				for i := range s.Tuples {
					if i%(100/vaguePct) == 0 {
						v := s.Tuples[i].Values[bi].Num
						s.Tuples[i].Values[bi] = frel.Num(fuzzy.Tri(v.B-5000, v.B, v.B+5000))
					}
				}
				less, err := extsort.ByAttr(s.Schema, "B")
				if err != nil {
					b.Fatal(err)
				}
				extsort.SortRelation(s, less)
			}
			var c exec.Counters
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mj, err := exec.NewMergeJoin(exec.NewMemSource(r), exec.NewMemSource(s), "R.B", "S.B", nil, &c)
				if err != nil {
					b.Fatal(err)
				}
				drainJoin(b, mj)
			}
			b.ReportMetric(float64(c.Comparisons.Load())/float64(b.N), "pairExams/op")
		})
	}
}

// BenchmarkAblationParallelism measures the partitioned parallel
// merge-join against the serial operator on the Table 1 workload (equal
// relations, C = 7, 128-byte tuples), at 2, 4, and 8 workers. The inputs
// are pre-sorted so the comparison isolates the join itself; the parallel
// operator returns the identical fuzzy relation (see
// exec.TestParallelMergeJoinEquivalence).
func BenchmarkAblationParallelism(b *testing.B) {
	r, s := ablationRelations(b, 8000, 5)
	run := func(b *testing.B, mk func() (exec.Source, error)) {
		want := -1
		for i := 0; i < b.N; i++ {
			src, err := mk()
			if err != nil {
				b.Fatal(err)
			}
			n := drainJoin(b, src)
			if want < 0 {
				want = n
			} else if n != want {
				b.Fatalf("answer cardinality changed: %d vs %d", n, want)
			}
		}
	}
	b.Run("serial", func(b *testing.B) {
		run(b, func() (exec.Source, error) {
			return exec.NewMergeJoin(exec.NewMemSource(r), exec.NewMemSource(s), "R.B", "S.B", nil, nil)
		})
	})
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			run(b, func() (exec.Source, error) {
				return exec.NewParallelMergeJoin(exec.NewMemSource(r), exec.NewMemSource(s),
					"R.B", "S.B", fuzzy.Crisp(0), nil, nil, workers)
			})
		})
	}
}

// BenchmarkAblationParallelSort measures parallel run generation in the
// external sort (serial vs 4 workers) on the Table 1 workload spilled to
// disk with a small memory budget.
func BenchmarkAblationParallelSort(b *testing.B) {
	rel, err := workload.Generate(workload.Params{
		Name: "R", Tuples: 8000, TupleBytes: 128, Fanout: 7, Width: 5, Jitter: 0.5, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				mgr := storage.NewManager(b.TempDir(), 16)
				cat := catalog.New(mgr)
				h, err := cat.CreateRelation("R", rel.Schema)
				if err != nil {
					b.Fatal(err)
				}
				if err := h.AppendAll(rel); err != nil {
					b.Fatal(err)
				}
				less, err := extsort.ByAttr(h.Schema, "B")
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				sorter := extsort.NewSorter(mgr, 4).WithParallelism(workers)
				if _, _, err := sorter.Sort(h, less); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationChainOrder compares the DP join ordering against the
// syntactic order on a 3-level chain whose best order differs from the
// syntactic one (Section 8's dynamic programming suggestion).
func BenchmarkAblationChainOrder(b *testing.B) {
	mk := func(name string, n int, seed int64) *frel.Relation {
		rel, err := workload.Generate(workload.Params{
			Name: name, Tuples: n, TupleBytes: 128, Fanout: 4, Width: 5, Jitter: 0.5, Seed: seed})
		if err != nil {
			b.Fatal(err)
		}
		return rel
	}
	query := `
		SELECT R1.K FROM R1
		WHERE R1.B IN
		  (SELECT R2.B FROM R2
		   WHERE R2.A = R1.A AND R2.B IN
		     (SELECT R3.B FROM R3 WHERE R3.A = R2.A))`
	q, err := fsql.ParseQuery(query)
	if err != nil {
		b.Fatal(err)
	}
	for _, dp := range []bool{true, false} {
		name := "dp-order"
		if !dp {
			name = "syntactic-order"
		}
		b.Run(name, func(b *testing.B) {
			// Syntactic order joins the two large relations first; the DP
			// order starts from the tiny R3 and keeps intermediates small.
			env := core.NewMemEnv()
			env.DisableJoinReorder = !dp
			env.RegisterRelation("R1", mk("R1", 3000, 1))
			env.RegisterRelation("R2", mk("R2", 3000, 2))
			env.RegisterRelation("R3", mk("R3", 60, 3))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := env.EvalUnnested(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBufferSize varies the buffer pool while the data size
// stays fixed, showing the merge-join's I/O sensitivity to memory.
func BenchmarkAblationBufferSize(b *testing.B) {
	for _, pages := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("pages=%d", pages), func(b *testing.B) {
			var lastIOs int64
			for i := 0; i < b.N; i++ {
				dir := b.TempDir()
				mgr := storage.NewManager(dir, pages)
				cat := catalog.New(mgr)
				env := core.NewEnv(cat)
				env.SortMemPages = pages
				for _, spec := range []struct {
					name string
					seed int64
				}{{"R", 1}, {"S", 2}} {
					if _, err := workload.Load(cat, workload.Params{
						Name: spec.name, Tuples: 2000, TupleBytes: 128,
						Fanout: 7, Width: 5, Jitter: 0.5, Seed: spec.seed,
					}); err != nil {
						b.Fatal(err)
					}
				}
				q, err := fsql.ParseQuery(bench.TypeJQuery)
				if err != nil {
					b.Fatal(err)
				}
				mgr.Stats().Reset()
				if _, err := env.EvalUnnested(q); err != nil {
					b.Fatal(err)
				}
				lastIOs = mgr.Stats().IO()
			}
			b.ReportMetric(float64(lastIOs), "pageIOs/op")
		})
	}
}

// BenchmarkFuzzyDegree pins the cost of the closed-form satisfaction
// degrees — the paper's "calls to the fuzzy library functions".
func BenchmarkFuzzyDegree(b *testing.B) {
	u := fuzzy.Trap(20, 25, 30, 35)
	v := fuzzy.Tri(30, 35, 40)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += fuzzy.Eq(u, v) + fuzzy.Lt(u, v)
	}
	_ = sink
}

// BenchmarkExternalSort pins the external sort on the Definition 3.1
// order.
func BenchmarkExternalSort(b *testing.B) {
	rel, err := workload.Generate(workload.Params{
		Name: "R", Tuples: 5000, TupleBytes: 128, Fanout: 7, Width: 5, Jitter: 0.5, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		mgr := storage.NewManager(b.TempDir(), 8)
		cat := catalog.New(mgr)
		h, err := cat.CreateRelation("R", rel.Schema)
		if err != nil {
			b.Fatal(err)
		}
		if err := h.AppendAll(rel); err != nil {
			b.Fatal(err)
		}
		less, err := extsort.ByAttr(h.Schema, "B")
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, _, err := extsort.NewSorter(mgr, 8).Sort(h, less); err != nil {
			b.Fatal(err)
		}
	}
}
