// Command fuzzybench regenerates the tables and figures of the paper's
// evaluation (Section 9). Each experiment compares the naive nested-loop
// evaluation of the nested type J query against the extended merge-join
// evaluation of its unnested form, printing the paper's published numbers
// next to the measured ones.
//
// Usage:
//
//	fuzzybench [-experiment table1|table2|table3|table4|fig3|all]
//	           [-scalediv 32] [-iolatency 10ms] [-dir DIR] [-verify]
//	           [-json] [-compare] [-tupleatatime] [-indexes]
//
// With -json, instead of the experiment tables, both methods run once on
// the standard workload pair with EXPLAIN ANALYZE collection and the
// per-operator statistics are printed as a machine-readable JSON report
// (schema in DESIGN.md).
//
// With -compare, the merge-join method runs on a representative workload
// of each paper experiment under the three engine modes (batched with
// fused kernels, batched interpreted, and tuple-at-a-time) at 1 and 4
// workers, twice each so the warm run exercises the sort-order cache. The
// comparison is printed as JSON on stdout (the committed BENCH_N.json
// baselines) and as a human-readable grid on stderr.
//
// -tupleatatime disables batched execution for the experiment tables,
// reproducing the pre-batching engine.
//
// -indexes pre-builds persistent order indexes on the join attributes of
// the generated relations; combined with -compare the grid gains the
// indexed-vs-sort cold-start ablation runs and each experiment records
// its cold-wall speedup.
//
// Absolute times are not comparable across three decades of hardware; the
// point of the reproduction is the shape: who wins, by how much, and how
// the gap moves with relation size, tuple size, and join fanout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		experiment   = flag.String("experiment", "all", "experiment to run: table1, table2, table3, table4, fig3, or all")
		scaleDiv     = flag.Int("scalediv", 32, "divide the paper's tuple counts and buffer size by this factor")
		ioLatency    = flag.Duration("iolatency", 10*time.Millisecond, "simulated per-page-I/O latency of the response model")
		dir          = flag.String("dir", "", "scratch directory (default: system temp)")
		cpuFactor    = flag.Float64("cpufactor", 100, "scale measured compute time in the response model, representing the paper's ~100x slower 1995 CPU; set 1 for raw measurements")
		verify       = flag.Bool("verify", false, "cross-check that both methods return identical answers")
		seed         = flag.Int64("seed", 1, "workload random seed")
		parallel     = flag.Int("parallel", 1, "merge-join worker count: 1 reproduces the paper's serial execution, 0 uses all CPUs")
		jsonStats    = flag.Bool("json", false, "run both methods once with EXPLAIN ANALYZE collection and print the per-operator statistics as JSON")
		compare      = flag.Bool("compare", false, "run the batch vs tuple-at-a-time engine comparison on each paper experiment's representative workload and print it as JSON")
		tupleAtATime = flag.Bool("tupleatatime", false, "disable batched execution (run the tuple-at-a-time engine)")
		kernels      = flag.Bool("kernels", true, "compile eligible predicates into fused degree kernels; -kernels=false is the interpreted-evaluator ablation")
		indexes      = flag.Bool("indexes", false, "pre-build persistent order indexes on the join attributes; with -compare, adds the indexed-vs-sort cold-start ablation runs to the grid")
	)
	flag.Parse()

	cfg := bench.Config{
		Dir:            *dir,
		ScaleDiv:       *scaleDiv,
		IOLatency:      *ioLatency,
		CPUFactor:      *cpuFactor,
		Parallelism:    *parallel,
		DisableBatch:   *tupleAtATime,
		DisableKernels: !*kernels,
		Indexes:        *indexes,
		Verify:         *verify,
		Seed:           *seed,
	}

	if *compare {
		rep, err := cfg.Report()
		if err != nil {
			fmt.Fprintf(os.Stderr, "fuzzybench: compare: %v\n", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "fuzzybench: %v\n", err)
			os.Exit(1)
		}
		// The human-readable grid goes to stderr so piping stdout still
		// yields clean JSON; its legend prints once per experiment.
		fmt.Fprint(os.Stderr, rep.RenderGrid())
		return
	}

	if *jsonStats {
		n := 8000 / cfg.ScaleDiv
		if n < 50 {
			n = 50
		}
		rep, err := cfg.AnalyzePair(n, n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fuzzybench: analyze: %v\n", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "fuzzybench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	names := bench.Names
	if *experiment != "all" {
		if _, ok := bench.Experiments[*experiment]; !ok {
			fmt.Fprintf(os.Stderr, "fuzzybench: unknown experiment %q (want one of %v or all)\n", *experiment, bench.Names)
			os.Exit(2)
		}
		names = []string{*experiment}
	}

	for i, name := range names {
		if i > 0 {
			fmt.Println()
		}
		start := time.Now()
		tbl, err := bench.Experiments[name](cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fuzzybench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Print(tbl.Render())
		fmt.Printf("(%s regenerated in %v)\n", name, time.Since(start).Round(time.Millisecond))
	}
}
