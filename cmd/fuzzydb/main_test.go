package main

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/core"
)

func newApp(t *testing.T) (*app, *bytes.Buffer) {
	t.Helper()
	sess, err := core.OpenSession(t.TempDir(), 32)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	return &app{sess: sess, out: &out}, &out
}

func TestRunScriptPrintsAnswers(t *testing.T) {
	a, out := newApp(t)
	err := a.runScript(context.Background(), `
		CREATE TABLE W (ID NUMBER, AGE NUMBER);
		INSERT INTO W VALUES (1, 24);
		INSERT INTO W VALUES (2, 'about 35');
		SELECT W.ID FROM W WHERE W.AGE = 'medium young';
	`)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"W.ID", "1  0.8", "2  0.5", "(2 tuples)"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunScriptError(t *testing.T) {
	a, _ := newApp(t)
	if err := a.runScript(context.Background(), `SELECT X.Y FROM NOPE;`); err == nil {
		t.Errorf("want error for unknown relation")
	}
	if err := a.runScript(context.Background(), `NOT SQL AT ALL`); err == nil {
		t.Errorf("want parse error")
	}
}

func TestMetaCommands(t *testing.T) {
	a, out := newApp(t)
	if err := a.runScript(context.Background(), `CREATE TABLE W (X NUMBER);`); err != nil {
		t.Fatal(err)
	}

	if quit := a.meta(`\d`); quit {
		t.Errorf("\\d should not quit")
	}
	if !strings.Contains(out.String(), "W(X NUMBER, D)") {
		t.Errorf("\\d output: %q", out.String())
	}

	out.Reset()
	a.meta(`\terms`)
	if !strings.Contains(out.String(), "medium young") {
		t.Errorf("\\terms output: %q", out.String())
	}

	out.Reset()
	a.meta(`\explain SELECT W.X FROM W;`)
	if !strings.Contains(out.String(), "strategy: flat") {
		t.Errorf("\\explain output: %q", out.String())
	}

	out.Reset()
	a.meta(`\explain BAD QUERY`)
	if !strings.Contains(out.String(), "error:") {
		t.Errorf("\\explain bad query output: %q", out.String())
	}

	out.Reset()
	a.meta(`\unknown`)
	if !strings.Contains(out.String(), "meta commands") {
		t.Errorf("unknown meta output: %q", out.String())
	}

	if quit := a.meta(`\q`); !quit {
		t.Errorf("\\q should quit")
	}
}

func TestReplSession(t *testing.T) {
	a, out := newApp(t)
	input := strings.Join([]string{
		`CREATE TABLE W (X NUMBER);`,
		`INSERT INTO W`, // continuation line
		`VALUES (7);`,
		`SELECT W.X FROM W;`,
		`\d`,
		`SELECT BROKEN`, // error is reported, shell continues
		`;`,
		`\q`,
	}, "\n")
	a.repl(strings.NewReader(input))
	s := out.String()
	if !strings.Contains(s, "7  1") {
		t.Errorf("answer missing: %q", s)
	}
	if !strings.Contains(s, "error:") {
		t.Errorf("error not reported: %q", s)
	}
	if !strings.Contains(s, "-> ") {
		t.Errorf("continuation prompt missing: %q", s)
	}
}

func TestReplEOF(t *testing.T) {
	a, _ := newApp(t)
	a.repl(strings.NewReader("")) // must terminate on EOF
}

func TestCSVExportImportMeta(t *testing.T) {
	a, out := newApp(t)
	if err := a.runScript(context.Background(), `
		CREATE TABLE W (NAME STRING, AGE NUMBER);
		INSERT INTO W VALUES ('Ann', 'about 35');
		INSERT INTO W VALUES ('Bob', 24) DEGREE 0.5;
	`); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/w.csv"
	a.meta(`\export W ` + path)
	if !strings.Contains(out.String(), "exported 2 tuples") {
		t.Fatalf("export output: %q", out.String())
	}

	// Import back into a second relation.
	if err := a.runScript(context.Background(), `CREATE TABLE W2 (NAME STRING, AGE NUMBER);`); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	a.meta(`\import W2 ` + path)
	if !strings.Contains(out.String(), "imported 2 tuples") {
		t.Fatalf("import output: %q", out.String())
	}
	out.Reset()
	if err := a.runScript(context.Background(), `SELECT W2.NAME FROM W2 ORDER BY D DESC;`); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "(2 tuples)") {
		t.Errorf("query after import: %q", out.String())
	}

	// Usage and error paths.
	out.Reset()
	a.meta(`\export W`)
	if !strings.Contains(out.String(), "usage:") {
		t.Errorf("usage output: %q", out.String())
	}
	out.Reset()
	a.meta(`\import NOPE ` + path)
	if !strings.Contains(out.String(), "error:") {
		t.Errorf("unknown relation output: %q", out.String())
	}
}

func TestStatsMeta(t *testing.T) {
	a, out := newApp(t)
	if err := a.runScript(context.Background(), `
		CREATE TABLE W (X NUMBER);
		INSERT INTO W VALUES (1);
		SELECT W.X FROM W WHERE W.X > 0;
	`); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	a.meta(`\stats`)
	s := out.String()
	if !strings.Contains(s, "physical I/O") || !strings.Contains(s, "degree evals") {
		t.Errorf("stats output: %q", s)
	}
}
