// Command fuzzydb is an interactive Fuzzy SQL shell (and script runner)
// over the fuzzy relational database engine. Statements end with ';'.
//
//	fuzzydb                  # interactive shell (temporary database)
//	fuzzydb -dir mydb        # open or create a persistent database
//	fuzzydb -f script.fsql   # run a script, print query answers
//
// Supported statements:
//
//	CREATE TABLE F (ID NUMBER, NAME STRING, AGE NUMBER, INCOME NUMBER);
//	DEFINE TERM 'medium young' AS TRAP(20, 25, 30, 35);
//	INSERT INTO F VALUES (101, 'Ann', 'about 35', 'about 60K') DEGREE 1;
//	SELECT F.NAME FROM F WHERE F.AGE = 'medium young'
//	    AND F.INCOME IN (SELECT M.INCOME FROM M WHERE M.AGE = 'middle age')
//	    WITH D >= 0.5;
//	DROP TABLE F;
//	EXPLAIN SELECT …;          -- show the unnesting strategy
//	EXPLAIN ANALYZE SELECT …;  -- run it and print per-operator statistics
//	CHECKPOINT;                -- flush relations, truncate the write-ahead log
//
// Databases are crash-safe by default: mutations go through a write-ahead
// log that is replayed on open, and CHECKPOINT truncates it. -no-wal
// disables the log (the pre-WAL behavior) for overhead measurements.
//
// The paper's Fig. 1 / Fig. 2 linguistic terms ("medium young", "middle
// age", "high", …) are predefined; DEFINE TERM adds or overrides terms.
// Meta commands: \d (list relations), \terms (list terms),
// \explain SELECT … (shorthand for EXPLAIN), \q (quit).
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"repro/internal/core"
	"repro/internal/csvio"
	"repro/internal/frel"
	"repro/internal/fsql"
)

func main() {
	var (
		script = flag.String("f", "", "run this Fuzzy SQL script instead of the interactive shell")
		dir    = flag.String("dir", "", "database directory (default: a fresh temporary directory)")
		pages  = flag.Int("buffer", 256, "buffer pool size in 8 KiB pages (default: the paper's 2 MB)")
		noWAL  = flag.Bool("no-wal", false, "disable the write-ahead log (no crash safety; ablation switch)")
	)
	flag.Parse()

	dbdir := *dir
	if dbdir == "" {
		d, err := os.MkdirTemp("", "fuzzydb-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(d)
		dbdir = d
	}
	sess, err := core.OpenSessionOptions(dbdir, core.SessionOptions{BufferPages: *pages, NoWAL: *noWAL})
	if err != nil {
		fatal(err)
	}
	defer sess.Close()
	a := &app{sess: sess, out: os.Stdout}

	if *script != "" {
		src, err := os.ReadFile(*script)
		if err != nil {
			fatal(err)
		}
		// SIGINT cancels the running statement and aborts the script.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		if err := a.runScript(ctx, string(src)); err != nil {
			fatal(err)
		}
		return
	}

	a.repl(os.Stdin)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fuzzydb:", err)
	os.Exit(1)
}

// app bundles the session with the output stream, so the shell logic is
// testable.
type app struct {
	sess *core.Session
	out  io.Writer
}

// runScript parses and executes a script under ctx, printing every query
// answer. A cancelled context aborts the running statement and skips the
// rest of the script.
func (a *app) runScript(ctx context.Context, src string) error {
	stmts, err := fsql.ParseScript(src)
	if err != nil {
		return err
	}
	for _, st := range stmts {
		rel, err := a.sess.ExecContext(ctx, st)
		if err != nil {
			return fmt.Errorf("%s: %w", st, err)
		}
		if rel != nil {
			a.printRelation(rel)
		}
	}
	return nil
}

// repl reads statements from in until EOF or \q. SIGINT cancels the
// running statement (returning to the prompt) and is ignored while idle;
// quit with \q or EOF.
func (a *app) repl(in io.Reader) {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	defer signal.Stop(sig)
	fmt.Fprintln(a.out, "fuzzydb — Fuzzy SQL shell (statements end with ';', \\q quits, \\d lists relations)")
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "fuzzydb> "
	for {
		fmt.Fprint(a.out, prompt)
		if !sc.Scan() {
			fmt.Fprintln(a.out)
			return
		}
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if a.meta(trimmed) {
				return
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			prompt = "      -> "
			continue
		}
		src := buf.String()
		buf.Reset()
		prompt = "fuzzydb> "
		// Ctrl-C while the statement runs cancels it and returns to the
		// prompt rather than killing the shell.
		select {
		case <-sig: // drop any interrupt typed at the prompt
		default:
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			select {
			case <-sig:
				cancel()
			case <-done:
			}
		}()
		err := a.runScript(ctx, src)
		close(done)
		cancel()
		switch {
		case err == nil:
		case errors.Is(err, context.Canceled):
			fmt.Fprintln(a.out, "cancelled")
		default:
			fmt.Fprintln(a.out, "error:", err)
		}
	}
}

// meta handles shell meta commands; it returns true to quit.
func (a *app) meta(cmd string) bool {
	switch {
	case cmd == "\\q" || cmd == "\\quit":
		return true
	case cmd == "\\d":
		for _, name := range a.sess.Catalog().Relations() {
			h, err := a.sess.Catalog().Relation(name)
			if err != nil {
				continue
			}
			fmt.Fprintf(a.out, "%s  (%d tuples, %d pages)\n", h.Schema, h.NumTuples(), h.NumPages())
		}
	case cmd == "\\stats":
		stats := a.sess.Catalog().Manager().Stats()
		fmt.Fprintf(a.out, "physical I/O: %s\n", stats)
		fmt.Fprintf(a.out, "work: degree evals=%d comparisons=%d tuples out=%d\n",
			a.sess.Env.Counters.DegreeEvals.Load(), a.sess.Env.Counters.Comparisons.Load(), a.sess.Env.Counters.TuplesOut.Load())
	case cmd == "\\terms":
		for _, name := range a.sess.Catalog().Terms() {
			t, _ := a.sess.Catalog().Term(name)
			fmt.Fprintf(a.out, "%-16s %s\n", name, t)
		}
	case strings.HasPrefix(cmd, "\\export ") || strings.HasPrefix(cmd, "\\import "):
		fields := strings.Fields(cmd)
		if len(fields) != 3 {
			fmt.Fprintln(a.out, "usage: \\export REL FILE.csv  or  \\import REL FILE.csv")
			break
		}
		var err error
		if fields[0] == "\\export" {
			err = a.exportCSV(fields[1], fields[2])
		} else {
			err = a.importCSV(fields[1], fields[2])
		}
		if err != nil {
			fmt.Fprintln(a.out, "error:", err)
		}
	case strings.HasPrefix(cmd, "\\explain "):
		src := strings.TrimSuffix(strings.TrimPrefix(cmd, "\\explain "), ";")
		q, err := fsql.ParseQuery(src)
		if err != nil {
			fmt.Fprintln(a.out, "error:", err)
			break
		}
		plan := a.sess.Env.Explain(q)
		fmt.Fprintf(a.out, "strategy: %s (%s)\n", plan.Strategy, plan.Note)
	default:
		fmt.Fprintln(a.out, "meta commands: \\d  \\terms  \\stats  \\explain SELECT ...;  \\export REL FILE  \\import REL FILE  \\q")
	}
	return false
}

// exportCSV writes a relation to a CSV file.
func (a *app) exportCSV(rel, path string) error {
	h, err := a.sess.Catalog().Relation(rel)
	if err != nil {
		return err
	}
	r, err := h.ReadAll()
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := csvio.Export(f, r); err != nil {
		return err
	}
	fmt.Fprintf(a.out, "exported %d tuples to %s\n", r.Len(), path)
	return nil
}

// importCSV appends the tuples of a CSV file to a relation; linguistic
// terms resolve through the catalog.
func (a *app) importCSV(rel, path string) error {
	h, err := a.sess.Catalog().Relation(rel)
	if err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := csvio.Import(f, h.Schema, a.sess.Catalog().Term)
	if err != nil {
		return err
	}
	if err := h.AppendAll(r); err != nil {
		return err
	}
	if err := h.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(a.out, "imported %d tuples from %s\n", r.Len(), path)
	return nil
}

// printRelation renders a query answer with its membership degrees.
func (a *app) printRelation(rel *frel.Relation) {
	for i := range rel.Schema.Attrs {
		if i > 0 {
			fmt.Fprint(a.out, "  ")
		}
		fmt.Fprint(a.out, rel.Schema.Attrs[i].Name)
	}
	fmt.Fprintln(a.out, "  D")
	for _, t := range rel.Tuples {
		for i, v := range t.Values {
			if i > 0 {
				fmt.Fprint(a.out, "  ")
			}
			fmt.Fprint(a.out, v)
		}
		fmt.Fprintf(a.out, "  %.4g\n", t.D)
	}
	fmt.Fprintf(a.out, "(%d tuples)\n", rel.Len())
}
