package main

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/server"
	"repro/pkg/fuzzydb"
)

func startServer(t *testing.T) string {
	t.Helper()
	db, err := fuzzydb.Open("")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	srv := server.New(db, server.Config{Logf: t.Logf})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		db.Close()
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(lis)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return lis.Addr().String()
}

func TestRunModes(t *testing.T) {
	addr := startServer(t)
	// Plain streaming queries; the first run also creates the schema.
	if err := run(addr, 3, 300*time.Millisecond, false, 0, 0, true, false); err != nil {
		t.Fatalf("plain run: %v", err)
	}
	// Prepared statements with a write mixed in, reusing the schema.
	if err := run(addr, 3, 300*time.Millisecond, true, 3, 0, false, false); err != nil {
		t.Fatalf("prepared+write run: %v", err)
	}
	// Cursor mode.
	if err := run(addr, 2, 300*time.Millisecond, false, 0, 1, false, false); err != nil {
		t.Fatalf("cursor run: %v", err)
	}
	// Transactional read-modify-write mode.
	if err := run(addr, 3, 300*time.Millisecond, false, 0, 0, false, true); err != nil {
		t.Fatalf("txn run: %v", err)
	}
}

func TestRunFailures(t *testing.T) {
	// No server at the address: setup fails.
	if err := run("127.0.0.1:1", 1, 100*time.Millisecond, false, 0, 0, true, false); err == nil {
		t.Error("run against a dead address succeeded")
	}
	// Skipping setup against an empty database: every query errors and
	// the run reports them.
	addr := startServer(t)
	if err := run(addr, 2, 200*time.Millisecond, false, 0, 0, false, false); err == nil {
		t.Error("run against an empty database reported no errors")
	}
}
