// Command fuzzyload drives a fuzzydbd server with many concurrent
// connections, measuring throughput and latency and failing loudly on
// any error — the server-side counterpart of the embedded benchmarks and
// the smoke test CI runs against a live server.
//
// Usage:
//
//	fuzzyload -addr localhost:4540 -connections 200 -duration 5s
//
// Each connection runs the paper's nested dating query (a type N query
// through the unnesting rewrites) in a loop. With -prepared each
// connection prepares the query once and re-executes the server-side
// plan; with -write-every N every Nth request becomes an INSERT, mixing
// writers into the read load. With -txn each connection instead runs
// multi-statement read-modify-write transactions (BEGIN, snapshot read,
// INSERT derived from the read, read-own-write check, COMMIT — with
// conflict retries and periodic ROLLBACKs) and verifies at the end that
// its committed sequence is exactly intact. The process exits non-zero
// if any request fails or any answer diverges from the expected one.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/pkg/client"
	"repro/pkg/fuzzydb"
)

// The dating-service dataset and nested query of the paper's running
// example (Example 4.1); every connection checks each answer against the
// known result {Ann, Betty}, so a concurrency bug that corrupts answers
// fails the load run, not just crashes it.
const setupScript = `
	CREATE TABLE F (ID NUMBER, NAME STRING, AGE NUMBER, INCOME NUMBER);
	CREATE TABLE M (ID NUMBER, NAME STRING, AGE NUMBER, INCOME NUMBER);
	INSERT INTO F VALUES (101, 'Ann',   'about 35',     'about 60K');
	INSERT INTO F VALUES (102, 'Ann',   'medium young', 'medium high');
	INSERT INTO F VALUES (103, 'Betty', 'middle age',   'high');
	INSERT INTO F VALUES (104, 'Cathy', 'about 50',     'low');
	INSERT INTO M VALUES (201, 'Allen', 24,           'about 25K');
	INSERT INTO M VALUES (202, 'Allen', 'about 50',   'about 40K');
	INSERT INTO M VALUES (203, 'Bill',  'middle age', 'high');
	INSERT INTO M VALUES (204, 'Carl',  'about 29',   'medium low');
	CREATE TABLE LOADLOG (ID NUMBER, NOTE STRING);
	CREATE TABLE TXNK (W NUMBER, N NUMBER);
`

const loadQuery = `
	SELECT F.NAME FROM F
	WHERE F.AGE = 'medium young' AND
	      F.INCOME IN (SELECT M.INCOME FROM M WHERE M.AGE = 'middle age')`

func main() {
	log.SetFlags(0)
	log.SetPrefix("fuzzyload: ")

	addr := flag.String("addr", "localhost:4540", "fuzzydbd address")
	connections := flag.Int("connections", 100, "concurrent connections")
	duration := flag.Duration("duration", 5*time.Second, "load duration")
	prepared := flag.Bool("prepared", false, "use prepared statements")
	writeEvery := flag.Int("write-every", 0, "make every Nth request an INSERT (0: read-only)")
	fetchSize := flag.Int("fetch", 0, "cursor fetch size (0: stream whole answers)")
	setup := flag.Bool("setup", true, "create and populate the load schema first")
	txn := flag.Bool("txn", false, "run read-modify-write transactions instead of queries")
	flag.Parse()

	if err := run(*addr, *connections, *duration, *prepared, *writeEvery, *fetchSize, *setup, *txn); err != nil {
		log.Print(err)
		os.Exit(1)
	}
}

type stats struct {
	requests  atomic.Int64
	errors    atomic.Int64
	wrong     atomic.Int64
	conflicts atomic.Int64 // transactions retried after a write conflict

	mu        sync.Mutex
	latencies []time.Duration // sampled request latencies
}

func (st *stats) record(d time.Duration) {
	st.requests.Add(1)
	st.mu.Lock()
	// Cap the sample so hours-long runs stay bounded.
	if len(st.latencies) < 1<<20 {
		st.latencies = append(st.latencies, d)
	}
	st.mu.Unlock()
}

func run(addr string, connections int, duration time.Duration, prepared bool, writeEvery, fetchSize int, setup, txn bool) error {
	if setup {
		conn, err := client.Dial(addr)
		if err != nil {
			return fmt.Errorf("dial %s: %w", addr, err)
		}
		if err := conn.Exec(context.Background(), setupScript); err != nil {
			conn.Close()
			return fmt.Errorf("setup: %w", err)
		}
		conn.Close()
	}

	log.Printf("%d connections against %s for %s (prepared=%v write-every=%d fetch=%d txn=%v)",
		connections, addr, duration, prepared, writeEvery, fetchSize, txn)

	var st stats
	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	firstErr := make(chan error, 1)
	fail := func(err error) {
		st.errors.Add(1)
		select {
		case firstErr <- err:
		default:
		}
	}

	for w := 0; w < connections; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			conn, err := client.Dial(addr)
			if err != nil {
				fail(fmt.Errorf("worker %d: dial: %w", worker, err))
				return
			}
			defer conn.Close()
			if txn {
				txnWorklet(worker, conn, &st, deadline, fail)
				return
			}
			worklet(worker, conn, &st, deadline, prepared, writeEvery, fetchSize, fail)
		}(w)
	}
	wg.Wait()

	reqs := st.requests.Load()
	errs := st.errors.Load()
	wrong := st.wrong.Load()
	elapsed := duration
	st.mu.Lock()
	lat := st.latencies
	st.mu.Unlock()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) time.Duration {
		if len(lat) == 0 {
			return 0
		}
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	log.Printf("%d requests in %s: %.0f req/s, p50 %s p95 %s p99 %s, %d conflict retries, %d errors, %d wrong answers",
		reqs, elapsed, float64(reqs)/elapsed.Seconds(),
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond), pct(0.99).Round(time.Microsecond),
		st.conflicts.Load(), errs, wrong)

	if errs > 0 || wrong > 0 {
		select {
		case err := <-firstErr:
			return fmt.Errorf("%d errors, %d wrong answers (first: %v)", errs, wrong, err)
		default:
			return fmt.Errorf("%d errors, %d wrong answers", errs, wrong)
		}
	}
	return nil
}

// worklet is one connection's request loop.
func worklet(worker int, conn *client.Conn, st *stats, deadline time.Time, prepared bool, writeEvery, fetchSize int, fail func(error)) {
	ctx := context.Background()
	var stmt *client.Stmt
	if prepared {
		var err error
		stmt, err = conn.Prepare(ctx, loadQuery)
		if err != nil {
			fail(fmt.Errorf("worker %d: prepare: %w", worker, err))
			return
		}
		defer stmt.Close()
	}
	var ins *client.Stmt
	if writeEvery > 0 {
		var err error
		ins, err = conn.Prepare(ctx, `INSERT INTO LOADLOG VALUES (?, ?)`)
		if err != nil {
			fail(fmt.Errorf("worker %d: prepare insert: %w", worker, err))
			return
		}
		defer ins.Close()
	}

	for i := 0; time.Now().Before(deadline); i++ {
		start := time.Now()
		if writeEvery > 0 && i%writeEvery == writeEvery-1 {
			if err := ins.Exec(ctx, worker*1000000+i, "load"); err != nil {
				fail(fmt.Errorf("worker %d: insert: %w", worker, err))
				return
			}
			st.record(time.Since(start))
			continue
		}
		var rows *client.Rows
		var err error
		switch {
		case prepared:
			rows, err = stmt.QueryFetch(ctx, fetchSize)
		case fetchSize > 0:
			rows, err = conn.QueryFetch(ctx, loadQuery, fetchSize)
		default:
			rows, err = conn.Query(ctx, loadQuery)
		}
		if err != nil {
			fail(fmt.Errorf("worker %d: query: %w", worker, err))
			return
		}
		got, _, err := rows.All()
		if err != nil {
			fail(fmt.Errorf("worker %d: rows: %w", worker, err))
			return
		}
		st.record(time.Since(start))
		if len(got) != 2 || got[0][0] != "Ann" || got[1][0] != "Betty" {
			st.wrong.Add(1)
			fail(fmt.Errorf("worker %d: answer diverged: %v", worker, got))
			return
		}
	}
}

// txnWorklet is one connection's transaction loop: read-modify-write
// against the shared TXNK table. Each transaction reads the worker's own
// rows under the BEGIN-time snapshot, inserts the next sequence value
// derived from that read, re-reads to see its own write, and commits —
// retrying from BEGIN on write conflicts. Every 5th transaction rolls
// itself back instead. The sequence numbers double as the verifier: a
// lost update, torn transaction, or leaked rollback would break the
// exact 0..committed-1 run the final read checks for.
func txnWorklet(worker int, conn *client.Conn, st *stats, deadline time.Time, fail func(error)) {
	ctx := context.Background()
	countQ := fmt.Sprintf(`SELECT TXNK.N FROM TXNK WHERE TXNK.W = %d`, worker)

	// readSeqs returns the worker's committed-or-own sequence values.
	readSeqs := func() ([]int, error) {
		rows, err := conn.Query(ctx, countQ)
		if err != nil {
			return nil, err
		}
		got, _, err := rows.All()
		if err != nil {
			return nil, err
		}
		out := make([]int, 0, len(got))
		for _, row := range got {
			n, err := strconv.Atoi(row[0])
			if err != nil {
				return nil, fmt.Errorf("unparsable sequence %q", row[0])
			}
			out = append(out, n)
		}
		return out, nil
	}
	isConflict := func(err error) bool {
		fe, ok := fuzzydb.AsError(err)
		return ok && fe.Code == fuzzydb.CodeTxnConflict
	}

	committed := 0
	for i := 0; time.Now().Before(deadline); i++ {
		start := time.Now()
		rollback := i%5 == 4
		for {
			if err := conn.Begin(ctx); err != nil {
				fail(fmt.Errorf("worker %d: begin: %w", worker, err))
				return
			}
			seqs, err := readSeqs()
			if err != nil {
				fail(fmt.Errorf("worker %d: snapshot read: %w", worker, err))
				return
			}
			if len(seqs) != committed {
				st.wrong.Add(1)
				fail(fmt.Errorf("worker %d: snapshot read saw %d rows, committed %d", worker, len(seqs), committed))
				return
			}
			err = conn.Exec(ctx, fmt.Sprintf(`INSERT INTO TXNK VALUES (%d, %d)`, worker, committed))
			if isConflict(err) {
				st.conflicts.Add(1)
				continue // the server rolled the transaction back; retry
			}
			if err != nil {
				fail(fmt.Errorf("worker %d: insert: %w", worker, err))
				return
			}
			seqs, err = readSeqs()
			if err != nil {
				fail(fmt.Errorf("worker %d: read own write: %w", worker, err))
				return
			}
			if len(seqs) != committed+1 {
				st.wrong.Add(1)
				fail(fmt.Errorf("worker %d: own write invisible: %d rows, want %d", worker, len(seqs), committed+1))
				return
			}
			if rollback {
				if err := conn.Rollback(ctx); err != nil {
					fail(fmt.Errorf("worker %d: rollback: %w", worker, err))
					return
				}
				break
			}
			err = conn.Commit(ctx)
			if isConflict(err) {
				st.conflicts.Add(1)
				continue
			}
			if err != nil {
				fail(fmt.Errorf("worker %d: commit: %w", worker, err))
				return
			}
			committed++
			break
		}
		st.record(time.Since(start))
	}

	// Final verification: exactly the committed sequence, nothing else.
	seqs, err := readSeqs()
	if err != nil {
		fail(fmt.Errorf("worker %d: final read: %w", worker, err))
		return
	}
	sort.Ints(seqs)
	ok := len(seqs) == committed
	for i := 0; ok && i < len(seqs); i++ {
		ok = seqs[i] == i
	}
	if !ok {
		st.wrong.Add(1)
		fail(fmt.Errorf("worker %d: final sequence %v, want exactly 0..%d", worker, seqs, committed-1))
	}
}
