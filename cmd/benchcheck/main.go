// Command benchcheck is the CI bench-regression smoke: it re-measures the
// batch-vs-tuple comparison grid (or a subset of its experiments) with the
// same workload parameters as a committed baseline report (BENCH_N.json)
// and fails when a matched run's cold merge-join wall time regresses past
// the threshold. Differing answer cardinalities fail regardless of timing.
//
//	benchcheck -baseline BENCH_9.json -experiments table1 -threshold 1.25
//
// Wall-clock comparisons on shared CI runners are noisy; -warn-only keeps
// the exit status zero and leaves the findings in the log (used on the
// newer-Go legs of the matrix, where the pinned-Go leg is the gate).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		baseline    = flag.String("baseline", "BENCH_9.json", "committed baseline report to compare against")
		experiments = flag.String("experiments", "table1", "comma-separated experiments to re-measure (empty = all)")
		threshold   = flag.Float64("threshold", 1.25, "fail when cold wall time exceeds baseline by this ratio")
		warnOnly    = flag.Bool("warn-only", false, "report regressions but exit 0")
		dir         = flag.String("dir", "", "scratch directory (default: system temp)")
	)
	flag.Parse()

	base, err := bench.LoadBaseline(*baseline)
	if err != nil {
		fatal(err)
	}
	var names []string
	if *experiments != "" {
		names = strings.Split(*experiments, ",")
	}
	// Indexes on: the re-measured grid includes the indexed ablation runs,
	// so a baseline carrying them gets its indexed cold walls gated too.
	cfg := bench.Config{Dir: *dir, ScaleDiv: base.ScaleDiv, Seed: base.Seed, Indexes: true}
	cur, err := cfg.ReportFor(names...)
	if err != nil {
		fatal(err)
	}
	regs, err := bench.FindRegressions(base, cur, *threshold)
	if err != nil {
		fatal(err)
	}
	matched := 0
	for _, ex := range cur.Experiments {
		matched += len(ex.Runs)
	}
	if len(regs) == 0 {
		fmt.Printf("benchcheck: %d runs within %.2fx of %s\n", matched, *threshold, *baseline)
		return
	}
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "benchcheck: regression: %s\n", r)
	}
	if *warnOnly {
		fmt.Printf("benchcheck: %d regression(s), ignored (-warn-only)\n", len(regs))
		return
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcheck:", err)
	os.Exit(1)
}
