// Command fuzzydbd serves a fuzzy database over TCP, speaking the
// internal/wire protocol. Each connection gets its own session (private
// linguistic-term scope, prepared statements, cursors); read-only queries
// of different connections run concurrently, writes serialize behind the
// engine's single-writer lock. SIGINT/SIGTERM shut down gracefully:
// drain, checkpoint, close the write-ahead log.
//
// Usage:
//
//	fuzzydbd [-addr :4540] [-dir DIR] [-init script.sql]
//	         [-buffer-pages N] [-parallelism N]
//	         [-max-conns N] [-max-workers N]
//
// With no -dir the server runs a throwaway in-memory-directory database,
// deleted on exit — handy for tests and load generation.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/pkg/fuzzydb"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)
	log.SetPrefix("fuzzydbd: ")

	addr := flag.String("addr", ":4540", "TCP listen address")
	dir := flag.String("dir", "", "database directory (empty: temporary, deleted on exit)")
	initScript := flag.String("init", "", "Fuzzy SQL script to run before serving")
	bufferPages := flag.Int("buffer-pages", 256, "buffer pool size in 8 KiB pages")
	parallelism := flag.Int("parallelism", 0, "query workers per statement (0 = all CPUs)")
	maxConns := flag.Int("max-conns", 4096, "maximum concurrent connections")
	maxWorkers := flag.Int("max-workers", 64, "maximum concurrently executing statements")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown drain budget")
	flag.Parse()

	if err := run(*addr, *dir, *initScript, *bufferPages, *parallelism, *maxConns, *maxWorkers, *drainTimeout); err != nil {
		log.Fatal(err)
	}
}

func run(addr, dir, initScript string, bufferPages, parallelism, maxConns, maxWorkers int, drainTimeout time.Duration) error {
	db, err := fuzzydb.Open(dir,
		fuzzydb.WithBufferPoolPages(bufferPages),
		fuzzydb.WithParallelism(parallelism),
	)
	if err != nil {
		return err
	}
	if initScript != "" {
		script, err := os.ReadFile(initScript)
		if err != nil {
			db.Close()
			return err
		}
		if err := db.Exec(string(script)); err != nil {
			db.Close()
			return fmt.Errorf("init script: %w", err)
		}
		log.Printf("ran init script %s", initScript)
	}

	srv := server.New(db, server.Config{MaxConns: maxConns, MaxWorkers: maxWorkers})

	// Graceful shutdown on SIGINT/SIGTERM: stop accepting, drain
	// in-flight statements, checkpoint, close the WAL. The handler is
	// installed before the listener exists, so once the address answers,
	// signals are guaranteed to shut down rather than kill.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	lis, err := net.Listen("tcp", addr)
	if err != nil {
		db.Close()
		return err
	}
	log.Printf("serving %s on %s", db.Dir(), lis.Addr())
	done := make(chan error, 1)
	go func() {
		s := <-sig
		log.Printf("caught %s, shutting down", s)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()

	if err := srv.Serve(lis); err != server.ErrServerClosed {
		return err
	}
	if err := <-done; err != nil {
		return err
	}
	log.Printf("shutdown complete (checkpointed)")
	return nil
}
