package main

import (
	"context"
	"net"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/pkg/client"
)

// freeAddr reserves a loopback port and releases it for run to claim.
func freeAddr(t *testing.T) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := lis.Addr().String()
	lis.Close()
	return addr
}

func TestRunServeAndSignalShutdown(t *testing.T) {
	init := filepath.Join(t.TempDir(), "init.sql")
	if err := os.WriteFile(init, []byte(`
		CREATE TABLE BOOT (X NUMBER);
		INSERT INTO BOOT VALUES (42);
	`), 0o644); err != nil {
		t.Fatalf("write init: %v", err)
	}

	addr := freeAddr(t)
	done := make(chan error, 1)
	go func() {
		done <- run(addr, "", init, 64, 1, 16, 16, 10*time.Second)
	}()

	// The signal handler is installed before the listener, so a
	// successful dial means SIGTERM will be caught, not kill the process.
	var conn *client.Conn
	var err error
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, err = client.Dial(addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	rows, err := conn.Query(context.Background(), `SELECT BOOT.X FROM BOOT`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	got, _, err := rows.All()
	if err != nil || len(got) != 1 || got[0][0] != "42" {
		t.Fatalf("answer = %v (err %v), want [[42]] from the init script", got, err)
	}
	conn.Close()

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM, want nil", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not return after SIGTERM")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("999.999.999.999:0", "", "", 64, 1, 4, 4, time.Second); err == nil {
		t.Error("run with a bogus address succeeded")
	}
	if err := run(freeAddr(t), "", filepath.Join(t.TempDir(), "missing.sql"), 64, 1, 4, 4, time.Second); err == nil {
		t.Error("run with a missing init script succeeded")
	}
	bad := filepath.Join(t.TempDir(), "bad.sql")
	if err := os.WriteFile(bad, []byte(`SELEKT`), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	err := run(freeAddr(t), "", bad, 64, 1, 4, 4, time.Second)
	if err == nil || !strings.Contains(err.Error(), "init script") {
		t.Errorf("run with a broken init script: %v", err)
	}
}
