// Package repro is a from-scratch Go reproduction of Yang, Zhang, Liu,
// Wu, Yu, Nakajima and Rishe, "Efficient Processing of Nested Fuzzy SQL
// Queries in a Fuzzy Database" (IEEE TKDE 13(6), 2001; earlier version at
// IEEE ICDE 1995).
//
// The repository root holds the benchmark suite (bench_test.go) that
// regenerates every table and figure of the paper's evaluation; the
// library lives under internal/ (see DESIGN.md for the module map) and the
// runnable tools under cmd/ and examples/.
package repro
