// The paper's running example: a dating service database with male (M)
// and female (F) clients whose ages and incomes are ill-known linguistic
// values. Reproduces, with the exact degrees of the paper:
//
//   - Query 1 (Section 2.2): pairs of about the same age where the male
//     earns more than "medium high";
//   - Query 2 / Example 4.1 (Sections 2.3 and 4): the nested type N query,
//     its temporary relation T = {about 40K: 0.4, high: 1}, and the final
//     answer {Ann: 0.7, Betty: 0.7} — via both the naive nested evaluation
//     and the unnested merge-join evaluation.
//
// Uses only the public embedding API (package repro/pkg/fuzzydb).
package main

import (
	"fmt"
	"log"

	"repro/pkg/fuzzydb"
)

const schemaAndData = `
	CREATE TABLE F (ID NUMBER, NAME STRING, AGE NUMBER, INCOME NUMBER);
	CREATE TABLE M (ID NUMBER, NAME STRING, AGE NUMBER, INCOME NUMBER);

	-- Example 4.1 of the paper (incomes in thousands of dollars).
	INSERT INTO F VALUES (101, 'Ann',   'about 35',     'about 60K');
	INSERT INTO F VALUES (102, 'Ann',   'medium young', 'medium high');
	INSERT INTO F VALUES (103, 'Betty', 'middle age',   'high');
	INSERT INTO F VALUES (104, 'Cathy', 'about 50',     'low');

	INSERT INTO M VALUES (201, 'Allen', 24,           'about 25K');
	INSERT INTO M VALUES (202, 'Allen', 'about 50',   'about 40K');
	INSERT INTO M VALUES (203, 'Bill',  'middle age', 'high');
	INSERT INTO M VALUES (204, 'Carl',  'about 29',   'medium low');
`

const query1 = `
	SELECT F.NAME, M.NAME
	FROM F, M
	WHERE F.AGE = M.AGE AND M.INCOME > 'medium high'`

const query2 = `
	SELECT F.NAME
	FROM F
	WHERE F.AGE = 'medium young' AND
	      F.INCOME IN
	      (SELECT M.INCOME
	       FROM M
	       WHERE M.AGE = 'middle age')`

func main() {
	db, err := fuzzydb.Open("") // paper terms preloaded
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if err := db.Exec(schemaAndData); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Query 1 — about the same age, he earns more than 'medium high':")
	show(db, query1)

	fmt.Println("\nQuery 2, inner block — T = incomes of middle-aged men:")
	show(db, `SELECT M.INCOME FROM M WHERE M.AGE = 'middle age'`)

	fmt.Println("\nQuery 2 — medium young women with a middle-aged man's income:")
	strategy, err := db.Explain(query2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  (unnesting strategy: %s)\n", strategy)

	naive, err := db.QueryNaive(query2)
	if err != nil {
		log.Fatal(err)
	}
	unnested, err := db.Query(query2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  naive nested evaluation:")
	printResult(naive, "    ")
	fmt.Println("  unnested merge-join evaluation:")
	printResult(unnested, "    ")
	if naive.Equal(unnested, 1e-9) {
		fmt.Println("  ✓ identical fuzzy relations (Theorem 4.1)")
	} else {
		fmt.Println("  ✗ MISMATCH")
	}
}

func show(db *fuzzydb.DB, src string) {
	res, err := db.Query(src)
	if err != nil {
		log.Fatal(err)
	}
	printResult(res, "  ")
}

func printResult(res *fuzzydb.Result, indent string) {
	for i := 0; i < res.Len(); i++ {
		fmt.Print(indent)
		for j, v := range res.Row(i) {
			if j > 0 {
				fmt.Print(", ")
			}
			fmt.Print(v)
		}
		fmt.Printf("  |  D = %.4g\n", res.Degree(i))
	}
}
