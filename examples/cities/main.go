// Query 5 of the paper (Section 6), a type JA query with an aggregate
// subquery: cities of region A whose average household income exceeds the
// MAXIMUM average household income of region-B cities with similar
// population. The rewrite is the pipelined group-aggregate join of Query
// JA′ (Theorem 6.1); a COUNT variant exercises the left outer join arm of
// Query COUNT′.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/fsql"
)

const script = `
	CREATE TABLE CITIES_REGION_A (NAME STRING, POPULATION NUMBER, AVE_HOME_INCOME NUMBER);
	CREATE TABLE CITIES_REGION_B (NAME STRING, POPULATION NUMBER, AVE_HOME_INCOME NUMBER);

	-- Populations in thousands, ill-known from survey data; incomes in K$.
	DEFINE TERM 'small town'  AS TRAP(0, 5, 30, 50);
	DEFINE TERM 'mid city'    AS TRAP(40, 80, 200, 280);
	DEFINE TERM 'big city'    AS TRAP(250, 400, 2000, 2500);

	INSERT INTO CITIES_REGION_A VALUES ('Aston',   'small town', 'about 40K');
	INSERT INTO CITIES_REGION_A VALUES ('Appleby', 'mid city',   'high');
	INSERT INTO CITIES_REGION_A VALUES ('Arbor',   'big city',   'medium high');
	INSERT INTO CITIES_REGION_A VALUES ('Alton',   TRI(60, 90, 120), 'about 60K');

	INSERT INTO CITIES_REGION_B VALUES ('Birch',   'small town', 'about 25K');
	INSERT INTO CITIES_REGION_B VALUES ('Bedrock', 'mid city',   'about 40K');
	INSERT INTO CITIES_REGION_B VALUES ('Bern',    'mid city',   'medium high');
	INSERT INTO CITIES_REGION_B VALUES ('Bigton',  'big city',   'about 60K');
`

const query5 = `
	SELECT R.NAME
	FROM CITIES_REGION_A R
	WHERE R.AVE_HOME_INCOME >
	      (SELECT MAX(S.AVE_HOME_INCOME)
	       FROM CITIES_REGION_B S
	       WHERE S.POPULATION = R.POPULATION)`

const countVariant = `
	SELECT R.NAME
	FROM CITIES_REGION_A R
	WHERE R.POPULATION >
	      (SELECT COUNT(S.NAME)
	       FROM CITIES_REGION_B S
	       WHERE S.POPULATION = R.POPULATION)`

func main() {
	dir, err := os.MkdirTemp("", "cities-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sess, err := core.OpenSession(dir, 256)
	if err != nil {
		log.Fatal(err)
	}

	if _, err := sess.ExecScript(script); err != nil {
		log.Fatal(err)
	}

	run := func(title, src string) {
		q, err := fsql.ParseQuery(src)
		if err != nil {
			log.Fatal(err)
		}
		plan := sess.Env.Explain(q)
		fmt.Printf("%s\n  strategy: %s (%s)\n", title, plan.Strategy, plan.Note)
		rel, err := sess.Env.EvalUnnested(q)
		if err != nil {
			log.Fatal(err)
		}
		for _, t := range rel.Tuples {
			fmt.Printf("  %-8s D = %.4g\n", t.Values[0].Str, t.D)
		}
		naive, err := sess.Env.EvalNaive(q)
		if err != nil {
			log.Fatal(err)
		}
		if naive.Equal(rel, 1e-9) {
			fmt.Println("  ✓ equivalent to the naive nested evaluation (Theorem 6.1)")
		} else {
			fmt.Println("  ✗ MISMATCH")
		}
		fmt.Println()
	}

	run("Query 5 — beats the best similar-population region-B income (MAX):", query5)
	run("COUNT variant — population above the number of similar region-B cities:", countVariant)
}
