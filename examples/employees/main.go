// Query 4 of the paper (Section 5), a type JX query with the set
// exclusion operator: find employees of the Sales department who do NOT
// have the income of any Research employee of their age. The rewrite is
// the group-minimum anti-join of Query JX′ (Theorem 5.1).
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/fsql"
)

const script = `
	CREATE TABLE EMP_SALES    (ID NUMBER, NAME STRING, AGE NUMBER, INCOME NUMBER);
	CREATE TABLE EMP_RESEARCH (ID NUMBER, NAME STRING, AGE NUMBER, INCOME NUMBER);

	INSERT INTO EMP_SALES VALUES (1, 'Sam',  'about 29',     'about 40K');
	INSERT INTO EMP_SALES VALUES (2, 'Sue',  'medium young', 'medium high');
	INSERT INTO EMP_SALES VALUES (3, 'Stan', 'middle age',   'low');
	INSERT INTO EMP_SALES VALUES (4, 'Sara', 'about 50',     'high');

	INSERT INTO EMP_RESEARCH VALUES (11, 'Ron',  'about 29',   'about 40K');
	INSERT INTO EMP_RESEARCH VALUES (12, 'Rita', 'middle age', 'low');
	INSERT INTO EMP_RESEARCH VALUES (13, 'Rob',  'about 50',   'about 60K');
`

const query4 = `
	SELECT R.NAME
	FROM EMP_SALES R
	WHERE R.INCOME NOT IN
	      (SELECT S.INCOME
	       FROM EMP_RESEARCH S
	       WHERE S.AGE = R.AGE)`

func main() {
	dir, err := os.MkdirTemp("", "employees-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sess, err := core.OpenSession(dir, 256)
	if err != nil {
		log.Fatal(err)
	}

	if _, err := sess.ExecScript(script); err != nil {
		log.Fatal(err)
	}

	q, err := fsql.ParseQuery(query4)
	if err != nil {
		log.Fatal(err)
	}
	plan := sess.Env.Explain(q)
	fmt.Printf("Query 4 strategy: %s (%s)\n\n", plan.Strategy, plan.Note)

	rel, err := sess.Env.EvalUnnested(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Sales employees not earning any Research income at their age:")
	for _, t := range rel.Tuples {
		fmt.Printf("  %-5s  D = %.4g\n", t.Values[0].Str, t.D)
	}

	// Sanity: the unnested evaluation matches the nested semantics.
	naive, err := sess.Env.EvalNaive(q)
	if err != nil {
		log.Fatal(err)
	}
	if naive.Equal(rel, 1e-9) {
		fmt.Println("\n✓ equivalent to the naive nested evaluation (Theorem 5.1)")
	} else {
		fmt.Println("\n✗ MISMATCH against the naive nested evaluation")
	}
}
