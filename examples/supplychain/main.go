// A 3-level chain query in the style of the paper's Query 6 (Section 8):
// projects whose estimated budget possibly matches the cost of a part that
// is itself supplied, within a similar lead time, by a highly rated
// supplier. The unnester flattens all three blocks into one join (Theorem
// 8.1) and picks the join order by dynamic programming.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/fsql"
)

const script = `
	CREATE TABLE PROJECTS  (NAME STRING, BUDGET NUMBER, LEAD NUMBER);
	CREATE TABLE PARTS     (PNAME STRING, COST NUMBER, LEAD NUMBER);
	CREATE TABLE SUPPLIERS (SNAME STRING, PARTCOST NUMBER, RATING NUMBER);

	DEFINE TERM 'cheap'     AS TRAP(0, 0, 40, 70);
	DEFINE TERM 'pricey'    AS TRAP(60, 90, 200, 200);
	DEFINE TERM 'top rated' AS TRAP(7, 9, 10, 10);

	-- Budgets and lead times are estimates: ill-known values.
	INSERT INTO PROJECTS VALUES ('apollo',  ABOUT(80, 15), ABOUT(30, 10));
	INSERT INTO PROJECTS VALUES ('borealis', ABOUT(45, 10), ABOUT(10, 5));
	INSERT INTO PROJECTS VALUES ('comet',   ABOUT(150, 20), ABOUT(60, 10));

	INSERT INTO PARTS VALUES ('valve',  ABOUT(75, 10), ABOUT(25, 8));
	INSERT INTO PARTS VALUES ('gasket', ABOUT(42, 6),  ABOUT(12, 4));
	INSERT INTO PARTS VALUES ('rotor',  ABOUT(145, 15), ABOUT(90, 20));

	INSERT INTO SUPPLIERS VALUES ('acme',  ABOUT(74, 8),  9);
	INSERT INTO SUPPLIERS VALUES ('bolts', ABOUT(41, 5),  ABOUT(6, 1));
	INSERT INTO SUPPLIERS VALUES ('corex', ABOUT(150, 10), 'top rated');
`

const chainQuery = `
	SELECT P.NAME
	FROM PROJECTS P
	WHERE P.BUDGET IN
	      (SELECT PT.COST
	       FROM PARTS PT
	       WHERE PT.LEAD = P.LEAD AND PT.COST IN
	             (SELECT S.PARTCOST
	              FROM SUPPLIERS S
	              WHERE S.RATING >= 8))`

func main() {
	dir, err := os.MkdirTemp("", "supplychain-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sess, err := core.OpenSession(dir, 256)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sess.ExecScript(script); err != nil {
		log.Fatal(err)
	}

	q, err := fsql.ParseQuery(chainQuery)
	if err != nil {
		log.Fatal(err)
	}
	plan := sess.Env.Explain(q)
	fmt.Printf("3-level chain query strategy: %s (%s)\n\n", plan.Strategy, plan.Note)

	rel, err := sess.Env.EvalUnnested(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("projects whose budget possibly equals a well-supplied part's cost,")
	fmt.Println("with a similar lead time:")
	for _, t := range rel.Tuples {
		fmt.Printf("  %-9s D = %.4g\n", t.Values[0].Str, t.D)
	}

	naive, err := sess.Env.EvalNaive(q)
	if err != nil {
		log.Fatal(err)
	}
	if naive.Equal(rel, 1e-9) {
		fmt.Println("\n✓ equivalent to the naive nested evaluation (Theorem 8.1)")
	} else {
		fmt.Println("\n✗ MISMATCH")
	}
}
