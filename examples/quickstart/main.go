// Quickstart: create a fuzzy relation, define a linguistic term, insert
// ill-known data, and run a fuzzy query — the minimal end-to-end use of
// the public API.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/fsql"
)

func main() {
	dir, err := os.MkdirTemp("", "quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A session bundles the storage manager, the catalog (preloaded with
	// the paper's linguistic terms) and the query evaluators.
	sess, err := core.OpenSession(dir, 256)
	if err != nil {
		log.Fatal(err)
	}

	answers, err := sess.ExecScript(`
		CREATE TABLE PEOPLE (ID NUMBER, NAME STRING, AGE NUMBER);

		-- A custom linguistic term: a trapezoidal possibility distribution.
		DEFINE TERM 'thirty something' AS TRAP(28, 30, 39, 42);

		-- Crisp and ill-known ages side by side. DEGREE sets the tuple's
		-- membership in the relation.
		INSERT INTO PEOPLE VALUES (1, 'Ann',  24);
		INSERT INTO PEOPLE VALUES (2, 'Bob',  'about 35');
		INSERT INTO PEOPLE VALUES (3, 'Cora', 'thirty something');
		INSERT INTO PEOPLE VALUES (4, 'Dan',  61) DEGREE 0.9;

		-- A fuzzy selection: every answer tuple carries the degree to which
		-- it satisfies the condition.
		SELECT PEOPLE.NAME FROM PEOPLE
		WHERE PEOPLE.AGE = 'medium young'
		WITH D >= 0.1;
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("who is medium young (TRAP 20,25,30,35)?")
	for _, t := range answers[0].Tuples {
		fmt.Printf("  %-5s with possibility %.2f\n", t.Values[0].Str, t.D)
	}

	// Nested queries are unnested automatically; Explain shows how.
	q, err := fsql.ParseQuery(`
		SELECT P.NAME FROM PEOPLE P
		WHERE P.AGE IN (SELECT Q.AGE FROM PEOPLE Q WHERE Q.NAME = 'Bob')`)
	if err != nil {
		log.Fatal(err)
	}
	plan := sess.Env.Explain(q)
	fmt.Printf("\nnested query strategy: %s (%s)\n", plan.Strategy, plan.Note)
	rel, err := sess.Env.EvalUnnested(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("who possibly has Bob's age?")
	for _, t := range rel.Tuples {
		fmt.Printf("  %-5s with possibility %.2f\n", t.Values[0].Str, t.D)
	}
}
