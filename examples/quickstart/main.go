// Quickstart: create a fuzzy relation, define a linguistic term, insert
// ill-known data, and run a fuzzy query — the minimal end-to-end use of
// the public API (package repro/pkg/fuzzydb).
package main

import (
	"fmt"
	"log"

	"repro/pkg/fuzzydb"
)

func main() {
	// "" opens a throwaway temporary database (removed by Close), with
	// the paper's linguistic terms ("medium young", "about 35", …)
	// preloaded.
	db, err := fuzzydb.Open("")
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	err = db.Exec(`
		CREATE TABLE PEOPLE (ID NUMBER, NAME STRING, AGE NUMBER);

		-- A custom linguistic term: a trapezoidal possibility distribution.
		DEFINE TERM 'thirty something' AS TRAP(28, 30, 39, 42);

		-- Crisp and ill-known ages side by side. DEGREE sets the tuple's
		-- membership in the relation.
		INSERT INTO PEOPLE VALUES (1, 'Ann',  24);
		INSERT INTO PEOPLE VALUES (2, 'Bob',  'about 35');
		INSERT INTO PEOPLE VALUES (3, 'Cora', 'thirty something');
		INSERT INTO PEOPLE VALUES (4, 'Dan',  61) DEGREE 0.9;
	`)
	if err != nil {
		log.Fatal(err)
	}

	// A fuzzy selection: every answer tuple carries the degree to which
	// it satisfies the condition.
	res, err := db.Query(`
		SELECT PEOPLE.NAME FROM PEOPLE
		WHERE PEOPLE.AGE = 'medium young'
		WITH D >= 0.1`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("who is medium young (TRAP 20,25,30,35)?")
	for i := 0; i < res.Len(); i++ {
		fmt.Printf("  %-5s with possibility %.2f\n", res.Row(i)[0], res.Degree(i))
	}

	// Nested queries are unnested automatically; Explain shows how.
	nested := `
		SELECT P.NAME FROM PEOPLE P
		WHERE P.AGE IN (SELECT Q.AGE FROM PEOPLE Q WHERE Q.NAME = 'Bob')`
	strategy, err := db.Explain(nested)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnested query strategy: %s\n", strategy)
	res, err = db.Query(nested)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("who possibly has Bob's age?")
	for i := 0; i < res.Len(); i++ {
		fmt.Printf("  %-5s with possibility %.2f\n", res.Row(i)[0], res.Degree(i))
	}
}
