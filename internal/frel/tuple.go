package frel

import (
	"fmt"
	"strings"
)

// Tuple is a fuzzy tuple: attribute values plus the system-supplied
// membership degree D. A tuple is "in" its relation iff D > 0
// (Section 2.2 of the paper).
type Tuple struct {
	Values []Value
	D      float64
}

// NewTuple builds a tuple with the given membership degree and values.
func NewTuple(d float64, values ...Value) Tuple {
	return Tuple{Values: values, D: d}
}

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	return Tuple{Values: append([]Value(nil), t.Values...), D: t.D}
}

// Concat returns the concatenation of t and u with membership degree d,
// the shape produced by join operators.
func (t Tuple) Concat(u Tuple, d float64) Tuple {
	vals := make([]Value, 0, len(t.Values)+len(u.Values))
	vals = append(vals, t.Values...)
	vals = append(vals, u.Values...)
	return Tuple{Values: vals, D: d}
}

// Project returns the tuple restricted to the given attribute indexes,
// keeping the membership degree.
func (t Tuple) Project(idx []int) Tuple {
	vals := make([]Value, len(idx))
	for i, j := range idx {
		vals[i] = t.Values[j]
	}
	return Tuple{Values: vals, D: t.D}
}

// Key returns a canonical byte-string of the tuple's values (excluding D),
// used for duplicate elimination: two tuples with identical values have
// equal keys.
func (t Tuple) Key() string {
	var b []byte
	for _, v := range t.Values {
		b = v.appendKey(b)
	}
	return string(b)
}

// IdenticalValues reports whether two tuples carry exactly the same
// values, ignoring membership degrees.
func (t Tuple) IdenticalValues(u Tuple) bool {
	if len(t.Values) != len(u.Values) {
		return false
	}
	for i := range t.Values {
		if !t.Values[i].Identical(u.Values[i]) {
			return false
		}
	}
	return true
}

// String renders the tuple with its degree.
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t.Values {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	fmt.Fprintf(&b, " | D=%.4g)", t.D)
	return b.String()
}
