package frel

// SupportKey is the precomputed sort/join key of one tuple on one numeric
// attribute: the support interval endpoints b(v), e(v) of Definition 3.1
// plus the tuple's membership degree. The sort-order cache stores one flat
// key column per cached (relation, attribute) pair so the extended
// merge-join reads interval endpoints from a contiguous array instead of
// recomputing them from the trapezoid on every cursor step.
type SupportKey struct {
	Lo, Hi, D float64
}

// SupportKeys builds the flat key column of tuples on attribute idx. It
// returns nil when the attribute is not numeric (string attributes have no
// support interval; the merge order does not apply to them).
func SupportKeys(tuples []Tuple, idx int) []SupportKey {
	if len(tuples) == 0 {
		return nil
	}
	if idx < 0 || idx >= len(tuples[0].Values) || tuples[0].Values[idx].Kind != KindNumber {
		return nil
	}
	keys := make([]SupportKey, len(tuples))
	for i := range tuples {
		lo, hi := tuples[i].Values[idx].Num.Support()
		keys[i] = SupportKey{Lo: lo, Hi: hi, D: tuples[i].D}
	}
	return keys
}
