package frel

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/fuzzy"
)

func statsSchema() *Schema {
	return NewSchema("T",
		Attribute{Name: "A", Kind: KindNumber},
		Attribute{Name: "S", Kind: KindString})
}

// TestTableStatsObserve checks extents, widths, the crisp bucket and the
// exact distinct count on a small relation.
func TestTableStatsObserve(t *testing.T) {
	r := NewRelation(statsSchema())
	r.Append(NewTuple(1, Crisp(10), Str("x")))
	r.Append(NewTuple(1, Num(fuzzy.Trapezoid{A: 0, B: 1, C: 3, D: 4}), Str("y")))
	r.Append(NewTuple(1, Crisp(10), Str("x")))
	ts := r.Stats()
	if ts.Rows != 3 {
		t.Fatalf("Rows = %d, want 3", ts.Rows)
	}
	a := ts.Attrs[0]
	if a.Numeric != 3 || a.MinLo != 0 || a.MaxHi != 10 {
		t.Fatalf("attr stats = %+v, want numeric=3 extent [0,10]", a)
	}
	if got := ts.Span(0); got != 10 {
		t.Fatalf("Span = %v, want 10", got)
	}
	if got := ts.AvgWidth(0); math.Abs(got-4.0/3) > 1e-12 {
		t.Fatalf("AvgWidth = %v, want 4/3", got)
	}
	if a.WidthHist[0] != 2 {
		t.Fatalf("crisp bucket = %d, want 2", a.WidthHist[0])
	}
	if got := ts.Distinct(0); got != 2 {
		t.Fatalf("Distinct(A) = %v, want 2", got)
	}
	if got := ts.Distinct(1); got != 2 {
		t.Fatalf("Distinct(S) = %v, want 2", got)
	}
	// String attribute contributes no numeric measures.
	if ts.Span(1) != 0 || ts.AvgWidth(1) != 0 {
		t.Fatalf("string attr has numeric measures: %+v", ts.Attrs[1])
	}
}

// TestKMVEstimate checks the distinct estimator stays within a reasonable
// relative error once the sketch saturates.
func TestKMVEstimate(t *testing.T) {
	for _, n := range []int{50, 500, 5000} {
		var s kmvSketch
		for i := 0; i < n; i++ {
			h := fnv1a([]byte(fmt.Sprintf("value-%d", i)))
			s.add(h)
			s.add(h) // duplicates must not distort the estimate
		}
		got := s.distinct()
		if n <= kmvK {
			if got != float64(n) {
				t.Fatalf("n=%d: exact regime returned %v", n, got)
			}
			continue
		}
		if rel := math.Abs(got-float64(n)) / float64(n); rel > 0.5 {
			t.Fatalf("n=%d: estimate %v off by %.0f%%", n, got, rel*100)
		}
	}
}

// TestStatsIncremental checks that Append and Threshold keep fresh
// statistics current without a rebuild, matching a from-scratch build.
func TestStatsIncremental(t *testing.T) {
	r := NewRelation(statsSchema())
	r.Append(NewTuple(1, Crisp(1), Str("a")))
	ts := r.Stats()
	r.Append(NewTuple(0.4, Crisp(2), Str("b")), NewTuple(0.2, Crisp(3), Str("c")))
	if got := r.Stats(); got != ts {
		t.Fatal("Append rebuilt statistics instead of maintaining them")
	}
	if ts.Rows != 3 || ts.Distinct(0) != 3 {
		t.Fatalf("incremental stats: rows=%d distinct=%v", ts.Rows, ts.Distinct(0))
	}
	r.Threshold(0.3)
	ts2 := r.Stats()
	if ts2.Rows != 2 || ts2.Distinct(0) != 2 {
		t.Fatalf("post-threshold stats: rows=%d distinct=%v", ts2.Rows, ts2.Distinct(0))
	}
	// An out-of-band mutation (Bump) must force a lazy rebuild.
	r.Tuples = r.Tuples[:1]
	r.Bump()
	if got := r.Stats(); got.Rows != 1 {
		t.Fatalf("stale stats survived Bump: rows=%d", got.Rows)
	}
}

func TestWidthBucket(t *testing.T) {
	cases := []struct {
		w    float64
		want int
	}{{0, 0}, {-1, 0}, {0.3, 1}, {1, 1}, {1.5, 1}, {2, 2}, {100, 7}, {1e9, widthBuckets - 1}}
	for _, c := range cases {
		if got := widthBucket(c.w); got != c.want {
			t.Errorf("widthBucket(%v) = %d, want %d", c.w, got, c.want)
		}
	}
}
