package frel

import (
	"sort"
	"strings"
)

// Relation is an in-memory fuzzy relation: a schema plus a multiset of
// fuzzy tuples. The storage engine provides the on-disk counterpart; the
// nested-query semantics, temporary relations, and tests use this type.
type Relation struct {
	Schema *Schema
	Tuples []Tuple

	// version counts mutations made through the Relation methods (Append,
	// SortBy, DedupMax, Threshold). Caches keyed by a relation pointer
	// (the engine's sort-order cache) compare versions to detect staleness;
	// callers that mutate Tuples directly must call Bump themselves.
	version uint64

	// stats caches the planner statistics for statsVersion; Stats rebuilds
	// them lazily when stale, and Append/Threshold keep fresh statistics
	// up to date incrementally.
	stats        *TableStats
	statsVersion uint64
}

// Version returns the relation's mutation counter.
func (r *Relation) Version() uint64 { return r.version }

// Bump records an out-of-band mutation of Tuples, invalidating any cache
// entries keyed on this relation.
func (r *Relation) Bump() { r.version++ }

// NewRelation creates an empty relation with the given schema.
func NewRelation(s *Schema) *Relation {
	return &Relation{Schema: s}
}

// Append adds tuples to the relation. Fresh planner statistics are
// maintained incrementally; stale ones are left for Stats to rebuild.
func (r *Relation) Append(ts ...Tuple) {
	fresh := r.stats != nil && r.statsVersion == r.version
	r.Tuples = append(r.Tuples, ts...)
	r.version++
	if fresh {
		r.stats.ObserveAll(ts)
		r.statsVersion = r.version
	}
}

// Stats returns the planner statistics of the relation, rebuilding them
// from the current tuples when the relation changed since the last call
// through a path that does not maintain them incrementally.
func (r *Relation) Stats() *TableStats {
	if r.stats == nil || r.statsVersion != r.version {
		ts := NewTableStats(len(r.Schema.Attrs))
		ts.ObserveAll(r.Tuples)
		r.stats, r.statsVersion = ts, r.version
	}
	return r.stats
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	c := &Relation{Schema: r.Schema.Clone()}
	c.Tuples = make([]Tuple, len(r.Tuples))
	for i, t := range r.Tuples {
		c.Tuples[i] = t.Clone()
	}
	return c
}

// SortBy sorts the tuples in place by the named attribute under the
// Definition 3.1 interval order (strings lexicographically), the order
// required by the extended merge-join.
func (r *Relation) SortBy(attr string) error {
	i, err := r.Schema.Resolve(attr)
	if err != nil {
		return err
	}
	sort.SliceStable(r.Tuples, func(a, b int) bool {
		return Compare(r.Tuples[a].Values[i], r.Tuples[b].Values[i]) < 0
	})
	r.version++
	return nil
}

// DedupMax removes duplicate tuples (identical values), keeping for each
// distinct value combination the maximum membership degree — the fuzzy OR
// of Section 2.2 ("the highest membership degree of the identical name
// pairs will be chosen for the answer"). Tuple order of first occurrence
// is preserved.
func (r *Relation) DedupMax() {
	seen := make(map[string]int, len(r.Tuples))
	out := r.Tuples[:0]
	for _, t := range r.Tuples {
		k := t.Key()
		if i, ok := seen[k]; ok {
			if t.D > out[i].D {
				out[i].D = t.D
			}
			continue
		}
		seen[k] = len(out)
		out = append(out, t)
	}
	r.Tuples = out
	r.version++
}

// Threshold removes tuples whose membership degree is below z, the effect
// of a WITH D >= z clause. Tuples with D <= 0 are never part of a fuzzy
// relation, so Threshold(0) (the implicit clause of every query) removes
// exactly those.
func (r *Relation) Threshold(z float64) {
	fresh := r.stats != nil && r.statsVersion == r.version
	out := r.Tuples[:0]
	for _, t := range r.Tuples {
		if t.D > 0 && t.D >= z {
			out = append(out, t)
		}
	}
	r.Tuples = out
	r.version++
	if fresh {
		// Rebuild from the survivors in place of waiting for a lazy
		// rebuild: thresholding is a mutation this path fully observes.
		ts := NewTableStats(len(r.Schema.Attrs))
		ts.ObserveAll(r.Tuples)
		r.stats, r.statsVersion = ts, r.version
	}
}

// Equal reports whether two relations contain the same fuzzy set of
// tuples: the same distinct values with membership degrees equal within
// tol, regardless of tuple order. It is the notion of query equivalence
// used by the paper's theorems ("not only the answers contain the same set
// of tuples but also the corresponding tuples have the same membership
// degree", Section 2.3).
func (r *Relation) Equal(s *Relation, tol float64) bool {
	collect := func(rel *Relation) map[string]float64 {
		m := make(map[string]float64, len(rel.Tuples))
		for _, t := range rel.Tuples {
			if t.D <= 0 {
				continue
			}
			k := t.Key()
			if t.D > m[k] {
				m[k] = t.D
			}
		}
		return m
	}
	a, b := collect(r), collect(s)
	if len(a) != len(b) {
		return false
	}
	for k, d := range a {
		e, ok := b[k]
		if !ok || d-e > tol || e-d > tol {
			return false
		}
	}
	return true
}

// String renders the relation, one tuple per line, for debugging and the
// interactive shell.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteString(r.Schema.String())
	b.WriteByte('\n')
	for _, t := range r.Tuples {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}
