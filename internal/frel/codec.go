package frel

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/fuzzy"
)

// Binary tuple codec. The layout, per tuple:
//
//	D        float64, little endian (the membership degree)
//	values   in schema order:
//	           NUMBER: the four trapezoid corners, 4 × float64
//	           STRING: uvarint length + raw bytes
//	padding  Schema.Pad zero bytes
//
// The codec is what the storage engine stores in pages; its size is what
// the tuple-size experiments measure.

// AppendTuple appends the serialized form of t (under schema s) to buf and
// returns the extended buffer.
func AppendTuple(buf []byte, s *Schema, t Tuple) ([]byte, error) {
	if len(t.Values) != len(s.Attrs) {
		return nil, fmt.Errorf("frel: tuple has %d values, schema %q has %d attributes", len(t.Values), s.Name, len(s.Attrs))
	}
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(t.D))
	for i, v := range t.Values {
		if v.Kind != s.Attrs[i].Kind {
			return nil, fmt.Errorf("frel: value %d of kind %v does not match attribute %q of kind %v", i, v.Kind, s.Attrs[i].Name, s.Attrs[i].Kind)
		}
		switch v.Kind {
		case KindNumber:
			for _, f := range [4]float64{v.Num.A, v.Num.B, v.Num.C, v.Num.D} {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
			}
		case KindString:
			buf = binary.AppendUvarint(buf, uint64(len(v.Str)))
			buf = append(buf, v.Str...)
		}
	}
	for i := 0; i < s.Pad; i++ {
		buf = append(buf, 0)
	}
	return buf, nil
}

// EncodedSize returns the number of bytes AppendTuple will produce for t.
func EncodedSize(s *Schema, t Tuple) int {
	n := 8 + s.Pad
	for _, v := range t.Values {
		switch v.Kind {
		case KindNumber:
			n += 32
		case KindString:
			n += uvarintLen(uint64(len(v.Str))) + len(v.Str)
		}
	}
	return n
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// DecodeTuple decodes one tuple (under schema s) from the front of data,
// returning the tuple and the number of bytes consumed.
func DecodeTuple(s *Schema, data []byte) (Tuple, int, error) {
	pos := 0
	need := func(n int) error {
		if len(data)-pos < n {
			return fmt.Errorf("frel: truncated tuple: need %d bytes at offset %d, have %d", n, pos, len(data)-pos)
		}
		return nil
	}
	if err := need(8); err != nil {
		return Tuple{}, 0, err
	}
	t := Tuple{
		D:      math.Float64frombits(binary.LittleEndian.Uint64(data[pos:])),
		Values: make([]Value, len(s.Attrs)),
	}
	pos += 8
	for i, a := range s.Attrs {
		switch a.Kind {
		case KindNumber:
			if err := need(32); err != nil {
				return Tuple{}, 0, err
			}
			var c [4]float64
			for j := range c {
				c[j] = math.Float64frombits(binary.LittleEndian.Uint64(data[pos:]))
				pos += 8
			}
			t.Values[i] = Num(fuzzy.Trapezoid{A: c[0], B: c[1], C: c[2], D: c[3]})
		case KindString:
			n, used := binary.Uvarint(data[pos:])
			if used <= 0 {
				return Tuple{}, 0, fmt.Errorf("frel: corrupt string length at offset %d", pos)
			}
			pos += used
			if err := need(int(n)); err != nil {
				return Tuple{}, 0, err
			}
			t.Values[i] = Str(string(data[pos : pos+int(n)]))
			pos += int(n)
		default:
			return Tuple{}, 0, fmt.Errorf("frel: unknown attribute kind %v", a.Kind)
		}
	}
	if err := need(s.Pad); err != nil {
		return Tuple{}, 0, err
	}
	pos += s.Pad
	return t, pos, nil
}
