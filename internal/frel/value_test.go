package frel

import (
	"testing"
	"testing/quick"

	"repro/internal/fuzzy"
)

func TestValueConstructors(t *testing.T) {
	v := Crisp(7)
	if v.Kind != KindNumber || !v.Num.IsCrisp() || v.Num.A != 7 {
		t.Errorf("Crisp(7) = %+v", v)
	}
	s := Str("Ann")
	if s.Kind != KindString || s.Str != "Ann" {
		t.Errorf("Str = %+v", s)
	}
	n := Num(fuzzy.Tri(1, 2, 3))
	if n.Kind != KindNumber || n.Num != fuzzy.Tri(1, 2, 3) {
		t.Errorf("Num = %+v", n)
	}
}

func TestValueIdentical(t *testing.T) {
	tests := []struct {
		a, b Value
		want bool
	}{
		{Crisp(1), Crisp(1), true},
		{Crisp(1), Crisp(2), false},
		{Str("a"), Str("a"), true},
		{Str("a"), Str("b"), false},
		{Crisp(1), Str("1"), false},
		{Num(fuzzy.Tri(1, 2, 3)), Num(fuzzy.Tri(1, 2, 3)), true},
		{Num(fuzzy.Tri(1, 2, 3)), Num(fuzzy.Tri(1, 2, 4)), false},
	}
	for _, tc := range tests {
		if got := tc.a.Identical(tc.b); got != tc.want {
			t.Errorf("Identical(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestValueString(t *testing.T) {
	if got := Str("Ann").String(); got != `"Ann"` {
		t.Errorf("String = %q", got)
	}
	if got := Crisp(28).String(); got != "28" {
		t.Errorf("String = %q", got)
	}
}

func TestValueDegreeStrings(t *testing.T) {
	tests := []struct {
		op   fuzzy.Op
		a, b string
		want float64
	}{
		{fuzzy.OpEq, "Ann", "Ann", 1},
		{fuzzy.OpEq, "Ann", "Bob", 0},
		{fuzzy.OpNe, "Ann", "Bob", 1},
		{fuzzy.OpNe, "Ann", "Ann", 0},
		{fuzzy.OpLt, "Ann", "Bob", 1},
		{fuzzy.OpLt, "Bob", "Ann", 0},
		{fuzzy.OpLe, "Ann", "Ann", 1},
		{fuzzy.OpGt, "Bob", "Ann", 1},
		{fuzzy.OpGe, "Ann", "Ann", 1},
		{fuzzy.OpGe, "Ann", "Bob", 0},
	}
	for _, tc := range tests {
		if got := Degree(tc.op, Str(tc.a), Str(tc.b)); got != tc.want {
			t.Errorf("Degree(%v, %q, %q) = %g, want %g", tc.op, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestValueDegreeNumbers(t *testing.T) {
	u := Num(fuzzy.Trap(20, 25, 30, 35))
	v := Num(fuzzy.Tri(30, 35, 40))
	if got := Degree(fuzzy.OpEq, u, v); got != 0.5 {
		t.Errorf("Degree(=) = %g, want 0.5 (paper Fig. 1)", got)
	}
}

func TestValueDegreeMixedKindsZero(t *testing.T) {
	if got := Degree(fuzzy.OpEq, Crisp(1), Str("1")); got != 0 {
		t.Errorf("mixed-kind degree = %g, want 0", got)
	}
}

func TestValueCompare(t *testing.T) {
	tests := []struct {
		a, b Value
		want int
	}{
		{Crisp(1), Crisp(2), -1},
		{Crisp(2), Crisp(1), 1},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("a"), 1},
		{Str("a"), Str("a"), 0},
		{Crisp(1), Str("a"), -1},
		{Str("a"), Crisp(1), 1},
		{Num(fuzzy.Interval(1, 5)), Num(fuzzy.Interval(1, 6)), -1},
	}
	for _, tc := range tests {
		if got := Compare(tc.a, tc.b); got != tc.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b float64, s1, s2 string, pick uint8) bool {
		var v, w Value
		switch pick % 3 {
		case 0:
			v, w = Crisp(float64(int(a)%100)), Crisp(float64(int(b)%100))
		case 1:
			v, w = Str(s1), Str(s2)
		default:
			v, w = Crisp(float64(int(a)%100)), Str(s2)
		}
		return Compare(v, w) == -Compare(w, v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickKeyInjective(t *testing.T) {
	f := func(a, b float64, s1, s2 string) bool {
		t1 := NewTuple(1, Crisp(a), Str(s1))
		t2 := NewTuple(1, Crisp(b), Str(s2))
		if t1.IdenticalValues(t2) {
			return t1.Key() == t2.Key()
		}
		return t1.Key() != t2.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
