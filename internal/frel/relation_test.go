package frel

import (
	"testing"

	"repro/internal/fuzzy"
)

func xRel(tuples ...Tuple) *Relation {
	r := NewRelation(NewSchema("R", Attribute{"X", KindNumber}))
	r.Append(tuples...)
	return r
}

func TestSortByDefinition31(t *testing.T) {
	r := xRel(
		NewTuple(1, Num(fuzzy.Interval(30, 35))),
		NewTuple(1, Num(fuzzy.Interval(20, 28))),
		NewTuple(1, Num(fuzzy.Interval(20, 35))),
	)
	if err := r.SortBy("X"); err != nil {
		t.Fatal(err)
	}
	want := []fuzzy.Trapezoid{fuzzy.Interval(20, 28), fuzzy.Interval(20, 35), fuzzy.Interval(30, 35)}
	for i, w := range want {
		if r.Tuples[i].Values[0].Num != w {
			t.Errorf("tuple %d = %v, want %v", i, r.Tuples[i].Values[0], w)
		}
	}
}

func TestSortByUnknownAttr(t *testing.T) {
	if err := xRel().SortBy("Y"); err == nil {
		t.Errorf("SortBy(Y): want error")
	}
}

func TestDedupMax(t *testing.T) {
	r := NewRelation(NewSchema("R", Attribute{"NAME", KindString}))
	r.Append(
		NewTuple(0.3, Str("Ann")),
		NewTuple(0.7, Str("Ann")),
		NewTuple(0.7, Str("Betty")),
		NewTuple(0.2, Str("Ann")),
	)
	r.DedupMax()
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if r.Tuples[0].Values[0].Str != "Ann" || r.Tuples[0].D != 0.7 {
		t.Errorf("tuple 0 = %v, want Ann with 0.7", r.Tuples[0])
	}
	if r.Tuples[1].Values[0].Str != "Betty" || r.Tuples[1].D != 0.7 {
		t.Errorf("tuple 1 = %v, want Betty with 0.7", r.Tuples[1])
	}
}

func TestThreshold(t *testing.T) {
	r := xRel(
		NewTuple(0.0, Crisp(1)),
		NewTuple(0.3, Crisp(2)),
		NewTuple(0.6, Crisp(3)),
	)
	r.Threshold(0.5)
	if r.Len() != 1 || r.Tuples[0].Values[0].Num.A != 3 {
		t.Errorf("Threshold(0.5) = %v", r.Tuples)
	}

	r2 := xRel(NewTuple(0, Crisp(1)), NewTuple(0.001, Crisp(2)))
	r2.Threshold(0)
	if r2.Len() != 1 {
		t.Errorf("Threshold(0) should drop D=0 tuples, got %v", r2.Tuples)
	}
}

func TestRelationEqual(t *testing.T) {
	a := xRel(NewTuple(0.5, Crisp(1)), NewTuple(0.8, Crisp(2)))
	b := xRel(NewTuple(0.8, Crisp(2)), NewTuple(0.5, Crisp(1)))
	if !a.Equal(b, 1e-9) {
		t.Errorf("order-insensitive equality failed")
	}
	c := xRel(NewTuple(0.5, Crisp(1)), NewTuple(0.7, Crisp(2)))
	if a.Equal(c, 1e-9) {
		t.Errorf("degrees differ; Equal should be false")
	}
	if !a.Equal(c, 0.2) {
		t.Errorf("degrees within tolerance; Equal should be true")
	}
	d := xRel(NewTuple(0.5, Crisp(1)))
	if a.Equal(d, 1e-9) {
		t.Errorf("cardinalities differ; Equal should be false")
	}
}

func TestRelationEqualIgnoresDuplicatesAndZero(t *testing.T) {
	a := xRel(NewTuple(0.5, Crisp(1)), NewTuple(0.3, Crisp(1)), NewTuple(0, Crisp(9)))
	b := xRel(NewTuple(0.5, Crisp(1)))
	if !a.Equal(b, 1e-9) {
		t.Errorf("Equal should compare the max-degree fuzzy sets")
	}
}

func TestRelationClone(t *testing.T) {
	a := xRel(NewTuple(0.5, Crisp(1)))
	b := a.Clone()
	b.Tuples[0].D = 0.9
	b.Tuples[0].Values[0] = Crisp(7)
	if a.Tuples[0].D != 0.5 || a.Tuples[0].Values[0].Num.A != 1 {
		t.Errorf("Clone is not deep: %v", a.Tuples[0])
	}
}

func TestTupleConcatProject(t *testing.T) {
	a := NewTuple(0.5, Crisp(1), Str("x"))
	b := NewTuple(0.8, Crisp(2))
	c := a.Concat(b, 0.4)
	if len(c.Values) != 3 || c.D != 0.4 {
		t.Errorf("Concat = %v", c)
	}
	p := c.Project([]int{2, 0})
	if len(p.Values) != 2 || p.Values[0].Num.A != 2 || p.Values[1].Num.A != 1 || p.D != 0.4 {
		t.Errorf("Project = %v", p)
	}
}

func TestTupleString(t *testing.T) {
	got := NewTuple(0.7, Str("Ann"), Crisp(35)).String()
	want := `("Ann", 35 | D=0.7)`
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}
