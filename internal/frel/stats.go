package frel

import (
	"math"
	"sort"
)

// This file implements the per-relation statistics the planner's cost
// model feeds on (the paper's Sections 3 and 9 analyze costs in terms of
// relation cardinalities, join selectivities and sort work): tuple
// counts, per-attribute support-interval extents, a support-width
// histogram, and a distinct-support estimate. The statistics are built
// lazily from a full pass over the relation and then maintained
// incrementally alongside the relation's version counter (see
// Relation.Stats and storage.HeapFile.Stats).

const (
	// kmvK is the distinct-estimate sketch size: up to kmvK distinct
	// values the count is exact; beyond that the k-minimum-values
	// estimator extrapolates from the k-th smallest hash.
	kmvK = 64

	// widthBuckets is the number of buckets in the support-width
	// histogram: bucket 0 holds crisp values (width 0), bucket i holds
	// widths in [2^(i-1), 2^i), and the last bucket is open-ended.
	widthBuckets = 8
)

// AttrStats summarizes the values observed in one attribute column.
type AttrStats struct {
	// Numeric counts the numeric (possibility-distribution) values; the
	// extent and width fields below cover only these.
	Numeric int64
	// MinLo and MaxHi bound the observed supports: the smallest support
	// lower bound and the largest support upper bound.
	MinLo, MaxHi float64
	// WidthSum accumulates support widths (Trapezoid D−A), so
	// WidthSum/Numeric is the mean support-interval width.
	WidthSum float64
	// WidthHist is the log2 histogram of support widths; bucket 0 counts
	// crisp values.
	WidthHist [widthBuckets]int64

	sketch kmvSketch
}

// TableStats holds the statistics of one relation: its cardinality and
// one AttrStats per schema attribute.
type TableStats struct {
	Rows  int64
	Attrs []AttrStats

	key []byte // scratch buffer for hashing value keys
}

// NewTableStats returns empty statistics for a relation of n attributes.
func NewTableStats(n int) *TableStats {
	return &TableStats{Attrs: make([]AttrStats, n)}
}

// Observe folds one tuple into the statistics. Tuples whose arity does
// not match the schema contribute only to the row count.
func (ts *TableStats) Observe(t Tuple) {
	ts.Rows++
	if len(t.Values) != len(ts.Attrs) {
		return
	}
	for i, v := range t.Values {
		a := &ts.Attrs[i]
		ts.key = v.appendKey(ts.key[:0])
		a.sketch.add(fnv1a(ts.key))
		if v.Kind != KindNumber {
			continue
		}
		lo, hi := v.Num.A, v.Num.D
		if a.Numeric == 0 || lo < a.MinLo {
			a.MinLo = lo
		}
		if a.Numeric == 0 || hi > a.MaxHi {
			a.MaxHi = hi
		}
		a.Numeric++
		w := hi - lo
		a.WidthSum += w
		a.WidthHist[widthBucket(w)]++
	}
}

// Clone returns an independent deep copy of the statistics, safe to read
// while the original keeps being maintained incrementally by a writer.
func (ts *TableStats) Clone() *TableStats {
	c := &TableStats{Rows: ts.Rows, Attrs: make([]AttrStats, len(ts.Attrs))}
	copy(c.Attrs, ts.Attrs)
	for i := range c.Attrs {
		c.Attrs[i].sketch.h = append([]uint64(nil), ts.Attrs[i].sketch.h...)
	}
	return c
}

// ObserveAll folds a slice of tuples into the statistics.
func (ts *TableStats) ObserveAll(tuples []Tuple) {
	for _, t := range tuples {
		ts.Observe(t)
	}
}

// Distinct estimates the number of distinct values in attribute i.
func (ts *TableStats) Distinct(i int) float64 {
	if i < 0 || i >= len(ts.Attrs) {
		return 0
	}
	return ts.Attrs[i].sketch.distinct()
}

// AvgWidth returns the mean support-interval width of attribute i's
// numeric values (0 when none were observed).
func (ts *TableStats) AvgWidth(i int) float64 {
	if i < 0 || i >= len(ts.Attrs) || ts.Attrs[i].Numeric == 0 {
		return 0
	}
	return ts.Attrs[i].WidthSum / float64(ts.Attrs[i].Numeric)
}

// Span returns the extent of attribute i's observed supports
// (MaxHi − MinLo; 0 when no numeric values were observed).
func (ts *TableStats) Span(i int) float64 {
	if i < 0 || i >= len(ts.Attrs) || ts.Attrs[i].Numeric == 0 {
		return 0
	}
	return ts.Attrs[i].MaxHi - ts.Attrs[i].MinLo
}

// widthBucket maps a support width to its histogram bucket.
func widthBucket(w float64) int {
	if w <= 0 {
		return 0
	}
	b := 1 + int(math.Floor(math.Log2(w)))
	if b < 1 {
		b = 1
	}
	if b >= widthBuckets {
		b = widthBuckets - 1
	}
	return b
}

// kmvSketch is a k-minimum-values distinct counter: it retains the kmvK
// smallest distinct 64-bit hashes seen. With fewer than kmvK retained
// hashes the distinct count is exact; otherwise the k-th smallest hash's
// position in the hash space extrapolates the total.
type kmvSketch struct {
	h []uint64 // sorted ascending, at most kmvK entries
}

func (s *kmvSketch) add(h uint64) {
	i := sort.Search(len(s.h), func(j int) bool { return s.h[j] >= h })
	if i < len(s.h) && s.h[i] == h {
		return
	}
	if len(s.h) < kmvK {
		s.h = append(s.h, 0)
		copy(s.h[i+1:], s.h[i:])
		s.h[i] = h
		return
	}
	if h >= s.h[kmvK-1] {
		return
	}
	copy(s.h[i+1:], s.h[i:kmvK-1])
	s.h[i] = h
}

func (s *kmvSketch) distinct() float64 {
	if len(s.h) < kmvK {
		return float64(len(s.h))
	}
	// (k−1) values fall below the k-th smallest hash, which sits at
	// fraction h/2^64 of the hash space.
	frac := float64(s.h[kmvK-1]) / math.Exp2(64)
	if frac <= 0 {
		return float64(kmvK)
	}
	return float64(kmvK-1) / frac
}

// fnv1a is the 64-bit FNV-1a hash of b with an avalanche finalizer: the
// KMV estimator needs uniformity over the whole 64-bit range, which raw
// FNV does not provide for short keys.
func fnv1a(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
