package frel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/fuzzy"
)

func TestRoundTrip(t *testing.T) {
	s := dating()
	in := NewTuple(0.7, Crisp(101), Str("Ann"), Num(fuzzy.Tri(30, 35, 40)), Num(fuzzy.Trap(50, 60, 68, 78)))
	buf, err := AppendTuple(nil, s, in)
	if err != nil {
		t.Fatalf("AppendTuple: %v", err)
	}
	if len(buf) != EncodedSize(s, in) {
		t.Errorf("EncodedSize = %d, actual %d", EncodedSize(s, in), len(buf))
	}
	out, n, err := DecodeTuple(s, buf)
	if err != nil {
		t.Fatalf("DecodeTuple: %v", err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d bytes", n, len(buf))
	}
	if out.D != in.D || !out.IdenticalValues(in) {
		t.Errorf("round trip mismatch: %v vs %v", out, in)
	}
}

func TestRoundTripWithPadding(t *testing.T) {
	s := dating()
	s.Pad = 64
	in := NewTuple(1, Crisp(1), Str("x"), Crisp(2), Crisp(3))
	buf, err := AppendTuple(nil, s, in)
	if err != nil {
		t.Fatalf("AppendTuple: %v", err)
	}
	unpadded := s.Clone()
	unpadded.Pad = 0
	plain, _ := AppendTuple(nil, unpadded, in)
	if len(buf) != len(plain)+64 {
		t.Errorf("padded size %d, plain %d", len(buf), len(plain))
	}
	out, n, err := DecodeTuple(s, buf)
	if err != nil || n != len(buf) {
		t.Fatalf("DecodeTuple: %v (n=%d)", err, n)
	}
	if !out.IdenticalValues(in) {
		t.Errorf("round trip mismatch with padding")
	}
}

func TestAppendTupleErrors(t *testing.T) {
	s := dating()
	if _, err := AppendTuple(nil, s, NewTuple(1, Crisp(1))); err == nil {
		t.Errorf("arity mismatch: want error")
	}
	bad := NewTuple(1, Str("x"), Str("Ann"), Crisp(1), Crisp(2))
	if _, err := AppendTuple(nil, s, bad); err == nil {
		t.Errorf("kind mismatch: want error")
	}
}

func TestDecodeTruncated(t *testing.T) {
	s := dating()
	in := NewTuple(0.5, Crisp(101), Str("Ann"), Crisp(30), Crisp(60))
	buf, _ := AppendTuple(nil, s, in)
	for _, cut := range []int{0, 4, 8, 20, len(buf) - 1} {
		if _, _, err := DecodeTuple(s, buf[:cut]); err == nil {
			t.Errorf("DecodeTuple of %d/%d bytes: want error", cut, len(buf))
		}
	}
}

func TestDecodeConsecutive(t *testing.T) {
	s := NewSchema("R", Attribute{"X", KindNumber})
	var buf []byte
	var err error
	for i := 0; i < 5; i++ {
		buf, err = AppendTuple(buf, s, NewTuple(1, Crisp(float64(i))))
		if err != nil {
			t.Fatal(err)
		}
	}
	pos := 0
	for i := 0; i < 5; i++ {
		tp, n, err := DecodeTuple(s, buf[pos:])
		if err != nil {
			t.Fatalf("tuple %d: %v", i, err)
		}
		if tp.Values[0].Num.A != float64(i) {
			t.Errorf("tuple %d = %v", i, tp)
		}
		pos += n
	}
	if pos != len(buf) {
		t.Errorf("consumed %d of %d", pos, len(buf))
	}
}

func TestQuickRoundTrip(t *testing.T) {
	s := NewSchema("R",
		Attribute{"X", KindNumber},
		Attribute{"NAME", KindString},
	)
	f := func(vals [4]float64, name string, d float64) bool {
		corners := vals
		// Normalize to a valid trapezoid.
		for i := 0; i < 4; i++ {
			if math.IsNaN(corners[i]) || math.IsInf(corners[i], 0) {
				corners[i] = 0
			}
		}
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				if corners[j] < corners[i] {
					corners[i], corners[j] = corners[j], corners[i]
				}
			}
		}
		deg := math.Abs(math.Mod(d, 1))
		in := NewTuple(deg, Num(fuzzy.Trapezoid{A: corners[0], B: corners[1], C: corners[2], D: corners[3]}), Str(name))
		buf, err := AppendTuple(nil, s, in)
		if err != nil {
			return false
		}
		out, n, err := DecodeTuple(s, buf)
		return err == nil && n == len(buf) && out.D == in.D && out.IdenticalValues(in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodedSizeMatches(t *testing.T) {
	s := dating()
	s.Pad = 13
	in := NewTuple(0.25, Crisp(1), Str("some longer name here"), Crisp(2), Crisp(3))
	buf, err := AppendTuple(nil, s, in)
	if err != nil {
		t.Fatal(err)
	}
	if got := EncodedSize(s, in); got != len(buf) {
		t.Errorf("EncodedSize = %d, want %d", got, len(buf))
	}
}
