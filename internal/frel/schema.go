package frel

import (
	"fmt"
	"strings"
)

// Attribute is one column of a fuzzy relation schema. The membership
// degree D is not an Attribute: it is carried by every tuple implicitly
// (the paper's system-supplied attribute D).
type Attribute struct {
	Name string
	Kind Kind
}

// Schema describes the attributes of a fuzzy relation. Name is the
// relation name or query alias used to resolve qualified references such
// as "F.AGE"; derived schemas (join results) may instead carry qualified
// attribute names directly.
//
// Pad is the number of zero bytes appended to every serialized tuple; the
// tuple-size experiment of the paper (Table 4) uses it to grow tuples from
// 128 to 2048 bytes without changing their logical content.
type Schema struct {
	Name  string
	Attrs []Attribute
	Pad   int
}

// NewSchema builds a schema from a relation name and attributes.
func NewSchema(name string, attrs ...Attribute) *Schema {
	return &Schema{Name: name, Attrs: attrs}
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	c := &Schema{Name: s.Name, Pad: s.Pad}
	c.Attrs = append([]Attribute(nil), s.Attrs...)
	return c
}

// WithName returns a copy of the schema renamed to alias, used when a
// relation is given an alias in a FROM clause.
func (s *Schema) WithName(alias string) *Schema {
	c := s.Clone()
	c.Name = alias
	return c
}

// NumAttrs returns the number of attributes.
func (s *Schema) NumAttrs() int { return len(s.Attrs) }

// splitQualified splits "F.AGE" into ("F", "AGE"); an unqualified name
// yields an empty qualifier.
func splitQualified(name string) (qual, attr string) {
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return name[:i], name[i+1:]
	}
	return "", name
}

// Resolve maps an (optionally qualified) attribute reference to its index
// in the schema. Matching is case-insensitive. A reference matches an
// attribute if it is the attribute's full name, or its unqualified part
// matches an unqualified attribute of a schema with the referenced
// qualifier, or the reference is unqualified and matches the unqualified
// part of exactly one attribute. Ambiguous and unknown references yield an
// error.
func (s *Schema) Resolve(name string) (int, error) {
	qual, attr := splitQualified(name)
	found := -1
	for i, a := range s.Attrs {
		aQual, aAttr := splitQualified(a.Name)
		if aQual == "" {
			aQual = s.Name
		}
		var match bool
		switch {
		case strings.EqualFold(a.Name, name):
			match = true
		case qual != "":
			match = strings.EqualFold(aAttr, attr) && strings.EqualFold(aQual, qual)
		default:
			match = strings.EqualFold(aAttr, attr)
		}
		if !match {
			continue
		}
		if found >= 0 && !s.Attrs[found].Identical(a) {
			return 0, fmt.Errorf("frel: ambiguous attribute reference %q in relation %q", name, s.Name)
		}
		if found < 0 {
			found = i
		}
	}
	if found < 0 {
		return 0, fmt.Errorf("frel: unknown attribute %q in relation %q", name, s.Name)
	}
	return found, nil
}

// Identical reports whether two attributes have the same name and kind.
func (a Attribute) Identical(b Attribute) bool { return a == b }

// Has reports whether the reference resolves in this schema.
func (s *Schema) Has(name string) bool {
	_, err := s.Resolve(name)
	return err == nil
}

// Qualified returns the attribute's fully qualified name in this schema.
func (s *Schema) Qualified(i int) string {
	name := s.Attrs[i].Name
	if strings.IndexByte(name, '.') >= 0 || s.Name == "" {
		return name
	}
	return s.Name + "." + name
}

// Join returns the schema of the concatenation of tuples of s and t, with
// every attribute fully qualified so that references stay unambiguous.
func (s *Schema) Join(t *Schema) *Schema {
	out := &Schema{Name: ""}
	for i := range s.Attrs {
		out.Attrs = append(out.Attrs, Attribute{Name: s.Qualified(i), Kind: s.Attrs[i].Kind})
	}
	for i := range t.Attrs {
		out.Attrs = append(out.Attrs, Attribute{Name: t.Qualified(i), Kind: t.Attrs[i].Kind})
	}
	return out
}

// Project returns the schema of a projection onto the given references,
// along with the source attribute indexes.
func (s *Schema) Project(refs []string) (*Schema, []int, error) {
	out := &Schema{Name: s.Name}
	idx := make([]int, 0, len(refs))
	for _, r := range refs {
		i, err := s.Resolve(r)
		if err != nil {
			return nil, nil, err
		}
		idx = append(idx, i)
		out.Attrs = append(out.Attrs, Attribute{Name: s.Qualified(i), Kind: s.Attrs[i].Kind})
	}
	return out, idx, nil
}

// String renders the schema.
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('(')
	for i, a := range s.Attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", a.Name, a.Kind)
	}
	b.WriteString(", D)")
	return b.String()
}
