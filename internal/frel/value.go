// Package frel defines the fuzzy relational data model of the paper
// (Section 2.2): a fuzzy relation is a fuzzy set of fuzzy tuples. Every
// tuple carries a membership degree D in (0, 1] indicating to what extent
// the tuple belongs to the relation, and attribute values may be ill-known,
// represented by trapezoidal possibility distributions.
//
// The package provides schemas, typed values, tuples, in-memory relations,
// and a compact binary tuple codec used by the paged storage engine.
package frel

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"

	"repro/internal/fuzzy"
)

// Kind is the type of an attribute domain.
type Kind uint8

// The attribute kinds of the model. Numeric attributes hold possibility
// distributions over a numeric domain; string attributes hold crisp
// strings (names, identifiers).
const (
	KindNumber Kind = iota
	KindString
)

// String returns a human-readable kind name.
func (k Kind) String() string {
	switch k {
	case KindNumber:
		return "NUMBER"
	case KindString:
		return "STRING"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is one attribute value of a fuzzy tuple: either a possibility
// distribution over a numeric domain (possibly crisp) or a crisp string.
type Value struct {
	Kind Kind
	Num  fuzzy.Trapezoid // valid when Kind == KindNumber
	Str  string          // valid when Kind == KindString
}

// Num wraps a possibility distribution as an attribute value.
func Num(t fuzzy.Trapezoid) Value {
	return Value{Kind: KindNumber, Num: t}
}

// Crisp wraps a precisely known number as an attribute value.
func Crisp(v float64) Value {
	return Num(fuzzy.Crisp(v))
}

// Str wraps a crisp string as an attribute value.
func Str(s string) Value {
	return Value{Kind: KindString, Str: s}
}

// Identical reports whether v and w are the same value: same kind and,
// corner-for-corner, the same possibility distribution (or the same
// string). This is the identity used by duplicate elimination, not the
// fuzzy possibility of equality.
func (v Value) Identical(w Value) bool {
	if v.Kind != w.Kind {
		return false
	}
	if v.Kind == KindString {
		return v.Str == w.Str
	}
	return v.Num == w.Num
}

// String renders the value.
func (v Value) String() string {
	if v.Kind == KindString {
		return strconv.Quote(v.Str)
	}
	return v.Num.String()
}

// appendKey appends a canonical byte representation of v, used as a
// duplicate-elimination key. Distinct values have distinct keys.
func (v Value) appendKey(b []byte) []byte {
	if v.Kind == KindString {
		b = append(b, 's')
		b = binary.AppendUvarint(b, uint64(len(v.Str)))
		return append(b, v.Str...)
	}
	b = append(b, 'n')
	for _, f := range [4]float64{v.Num.A, v.Num.B, v.Num.C, v.Num.D} {
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(f))
	}
	return b
}

// Degree returns the satisfaction degree d(v op w) between two values
// (Section 2.2). String values support only crisp equality and
// inequality; comparing a string with a number yields degree 0.
func Degree(op fuzzy.Op, v, w Value) float64 {
	if v.Kind == KindString && w.Kind == KindString {
		eq := v.Str == w.Str
		switch op {
		case fuzzy.OpEq, fuzzy.OpLe, fuzzy.OpGe:
			if eq {
				return 1
			}
		case fuzzy.OpNe:
			if !eq {
				return 1
			}
		}
		// Lexicographic order for < and > on strings.
		switch op {
		case fuzzy.OpLt, fuzzy.OpLe:
			if v.Str < w.Str {
				return 1
			}
		case fuzzy.OpGt, fuzzy.OpGe:
			if v.Str > w.Str {
				return 1
			}
		}
		return 0
	}
	if v.Kind != KindNumber || w.Kind != KindNumber {
		return 0
	}
	return fuzzy.Degree(op, v.Num, w.Num)
}

// Key returns a canonical byte-string identity of the value; distinct
// values have distinct keys. Used for duplicate elimination and grouping.
func (v Value) Key() string { return string(v.appendKey(nil)) }

// CompareTotal orders values like Compare but breaks Definition 3.1 ties
// by the full corner representation, so that identical values are always
// adjacent after sorting. Any sequence sorted by CompareTotal is also
// sorted by Compare, so merge-join range cursors remain correct.
func CompareTotal(v, w Value) int {
	if c := Compare(v, w); c != 0 {
		return c
	}
	if v.Kind != KindNumber || w.Kind != KindNumber {
		return 0
	}
	switch {
	case v.Num.B < w.Num.B:
		return -1
	case v.Num.B > w.Num.B:
		return 1
	case v.Num.C < w.Num.C:
		return -1
	case v.Num.C > w.Num.C:
		return 1
	default:
		return 0
	}
}

// Compare orders two values for sorting: numbers by the Definition 3.1
// interval order, strings lexicographically; numbers sort before strings
// (mixed kinds only arise in ill-typed plans).
func Compare(v, w Value) int {
	if v.Kind != w.Kind {
		if v.Kind == KindNumber {
			return -1
		}
		return 1
	}
	if v.Kind == KindString {
		switch {
		case v.Str < w.Str:
			return -1
		case v.Str > w.Str:
			return 1
		default:
			return 0
		}
	}
	return v.Num.Compare(w.Num)
}
