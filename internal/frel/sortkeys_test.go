package frel

import (
	"testing"

	"repro/internal/fuzzy"
)

func TestSupportKeys(t *testing.T) {
	tuples := []Tuple{
		NewTuple(0.9, Num(fuzzy.Tri(1, 2, 3)), Str("a")),
		NewTuple(0.4, Num(fuzzy.Trap(2, 3, 5, 8)), Str("b")),
		NewTuple(1, Crisp(7), Str("c")),
	}
	keys := SupportKeys(tuples, 0)
	if len(keys) != len(tuples) {
		t.Fatalf("got %d keys, want %d", len(keys), len(tuples))
	}
	for i, k := range keys {
		lo, hi := tuples[i].Values[0].Num.Support()
		if k.Lo != lo || k.Hi != hi || k.D != tuples[i].D {
			t.Fatalf("key %d = %+v, want {%v %v %v}", i, k, lo, hi, tuples[i].D)
		}
	}

	if got := SupportKeys(tuples, 1); got != nil {
		t.Fatalf("string attribute produced keys: %v", got)
	}
	if got := SupportKeys(tuples, 5); got != nil {
		t.Fatalf("out-of-range attribute produced keys: %v", got)
	}
	if got := SupportKeys(nil, 0); got != nil {
		t.Fatalf("empty input produced keys: %v", got)
	}
}
