package frel

import (
	"strings"
	"testing"
)

func dating() *Schema {
	return NewSchema("F",
		Attribute{"ID", KindNumber},
		Attribute{"NAME", KindString},
		Attribute{"AGE", KindNumber},
		Attribute{"INCOME", KindNumber},
	)
}

func TestResolveUnqualified(t *testing.T) {
	s := dating()
	i, err := s.Resolve("AGE")
	if err != nil || i != 2 {
		t.Errorf("Resolve(AGE) = %d, %v; want 2", i, err)
	}
}

func TestResolveQualified(t *testing.T) {
	s := dating()
	i, err := s.Resolve("F.AGE")
	if err != nil || i != 2 {
		t.Errorf("Resolve(F.AGE) = %d, %v; want 2", i, err)
	}
	if _, err := s.Resolve("M.AGE"); err == nil {
		t.Errorf("Resolve(M.AGE): want error for wrong qualifier")
	}
}

func TestResolveUnknown(t *testing.T) {
	if _, err := dating().Resolve("HEIGHT"); err == nil {
		t.Errorf("Resolve(HEIGHT): want error")
	}
}

func TestResolveOnJoinedSchema(t *testing.T) {
	f := dating()
	m := dating().WithName("M")
	j := f.Join(m)
	i, err := j.Resolve("F.AGE")
	if err != nil || i != 2 {
		t.Errorf("Resolve(F.AGE) = %d, %v; want 2", i, err)
	}
	i, err = j.Resolve("M.AGE")
	if err != nil || i != 6 {
		t.Errorf("Resolve(M.AGE) = %d, %v; want 6", i, err)
	}
	// Unqualified AGE is ambiguous in the join schema.
	if _, err := j.Resolve("AGE"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("Resolve(AGE) on join = %v; want ambiguity error", err)
	}
}

func TestResolveDuplicateIdenticalAttrsNotAmbiguous(t *testing.T) {
	// A projection can mention the same attribute twice; identical
	// duplicates resolve to the first occurrence rather than erroring.
	s := NewSchema("T", Attribute{"X", KindNumber}, Attribute{"X", KindNumber})
	i, err := s.Resolve("X")
	if err != nil || i != 0 {
		t.Errorf("Resolve(X) = %d, %v; want 0", i, err)
	}
}

func TestWithName(t *testing.T) {
	s := dating().WithName("R")
	if s.Name != "R" {
		t.Errorf("Name = %q", s.Name)
	}
	if _, err := s.Resolve("R.AGE"); err != nil {
		t.Errorf("Resolve(R.AGE) after rename: %v", err)
	}
	if _, err := s.Resolve("F.AGE"); err == nil {
		t.Errorf("Resolve(F.AGE) after rename: want error")
	}
}

func TestQualified(t *testing.T) {
	s := dating()
	if got := s.Qualified(2); got != "F.AGE" {
		t.Errorf("Qualified(2) = %q", got)
	}
	j := s.Join(dating().WithName("M"))
	if got := j.Qualified(0); got != "F.ID" {
		t.Errorf("join Qualified(0) = %q", got)
	}
}

func TestProject(t *testing.T) {
	s := dating()
	p, idx, err := s.Project([]string{"NAME", "F.AGE"})
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if len(p.Attrs) != 2 || p.Attrs[0].Name != "F.NAME" || p.Attrs[1].Name != "F.AGE" {
		t.Errorf("Project schema = %v", p)
	}
	if idx[0] != 1 || idx[1] != 2 {
		t.Errorf("Project indexes = %v", idx)
	}
	if _, _, err := s.Project([]string{"NOPE"}); err == nil {
		t.Errorf("Project(NOPE): want error")
	}
}

func TestSchemaClone(t *testing.T) {
	s := dating()
	c := s.Clone()
	c.Attrs[0].Name = "XX"
	if s.Attrs[0].Name != "ID" {
		t.Errorf("Clone is not deep")
	}
}

func TestSchemaString(t *testing.T) {
	got := NewSchema("R", Attribute{"X", KindNumber}).String()
	if got != "R(X NUMBER, D)" {
		t.Errorf("String = %q", got)
	}
}
