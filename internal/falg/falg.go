// Package falg implements the fuzzy relational algebra underneath Fuzzy
// SQL. Section 2.2 of the paper argues that, with the possibility-only
// satisfaction measure, "algebraic operations can be composed and nested
// query becomes practical" — this package makes those operations concrete
// so the composability is directly testable.
//
// A fuzzy relation is a fuzzy set of tuples; the set-theoretic operations
// follow Zadeh's fuzzy set operations on tuple membership degrees:
//
//	selection     µ(t)  = min(µ_R(t), d(condition(t)))
//	projection    µ(t') = max over tuples projecting to t' (fuzzy OR)
//	product/join  µ(rs) = min(µ_R(r), µ_S(s) [, d(join)])
//	union         µ(t)  = max(µ_R(t), µ_S(t))
//	intersection  µ(t)  = min(µ_R(t), µ_S(t))
//	difference    µ(t)  = min(µ_R(t), 1 − µ_S(t))
//
// All operations return new relations; inputs are never modified.
package falg

import (
	"fmt"

	"repro/internal/frel"
)

// Pred evaluates a fuzzy condition on a tuple, returning a degree in
// [0, 1].
type Pred func(frel.Tuple) float64

// JoinPred evaluates a fuzzy condition across a pair of tuples.
type JoinPred func(left, right frel.Tuple) float64

// Select returns the fuzzy selection σ_pred(r): each tuple keeps degree
// min(µ(t), pred(t)); tuples whose degree reaches 0 are dropped.
func Select(r *frel.Relation, pred Pred) *frel.Relation {
	out := frel.NewRelation(r.Schema)
	for _, t := range r.Tuples {
		d := t.D
		if g := pred(t); g < d {
			d = g
		}
		if d > 0 {
			nt := t.Clone()
			nt.D = d
			out.Append(nt)
		}
	}
	return out
}

// Project returns the fuzzy projection π_refs(r) with max-degree duplicate
// elimination (fuzzy OR over tuples that project to the same value
// combination).
func Project(r *frel.Relation, refs ...string) (*frel.Relation, error) {
	schema, idx, err := r.Schema.Project(refs)
	if err != nil {
		return nil, err
	}
	out := frel.NewRelation(schema)
	for _, t := range r.Tuples {
		if t.D > 0 {
			out.Append(t.Project(idx))
		}
	}
	out.DedupMax()
	return out, nil
}

// Rename returns a copy of r bound to a new relation name.
func Rename(r *frel.Relation, name string) *frel.Relation {
	out := r.Clone()
	out.Schema = out.Schema.WithName(name)
	return out
}

// Product returns the fuzzy Cartesian product r × s: every pair of tuples
// with degree min(µ_R(r), µ_S(s)).
func Product(r, s *frel.Relation) *frel.Relation {
	out := frel.NewRelation(r.Schema.Join(s.Schema))
	for _, a := range r.Tuples {
		for _, b := range s.Tuples {
			d := a.D
			if b.D < d {
				d = b.D
			}
			if d > 0 {
				out.Append(a.Concat(b, d))
			}
		}
	}
	return out
}

// Join returns the fuzzy θ-join r ⋈_on s: pairs with degree
// min(µ_R(r), µ_S(s), on(r, s)), dropping zero degrees.
func Join(r, s *frel.Relation, on JoinPred) *frel.Relation {
	out := frel.NewRelation(r.Schema.Join(s.Schema))
	for _, a := range r.Tuples {
		for _, b := range s.Tuples {
			d := a.D
			if b.D < d {
				d = b.D
			}
			if d <= 0 {
				continue
			}
			if g := on(a, b); g < d {
				d = g
			}
			if d > 0 {
				out.Append(a.Concat(b, d))
			}
		}
	}
	return out
}

// compatible checks union-compatibility: same arity and attribute kinds.
func compatible(r, s *frel.Relation) error {
	if len(r.Schema.Attrs) != len(s.Schema.Attrs) {
		return fmt.Errorf("falg: relations have %d and %d attributes", len(r.Schema.Attrs), len(s.Schema.Attrs))
	}
	for i := range r.Schema.Attrs {
		if r.Schema.Attrs[i].Kind != s.Schema.Attrs[i].Kind {
			return fmt.Errorf("falg: attribute %d kinds differ (%v vs %v)",
				i, r.Schema.Attrs[i].Kind, s.Schema.Attrs[i].Kind)
		}
	}
	return nil
}

// degreesByKey collapses a relation into value-key → max degree.
func degreesByKey(r *frel.Relation) (map[string]float64, map[string]frel.Tuple) {
	deg := make(map[string]float64, r.Len())
	rep := make(map[string]frel.Tuple, r.Len())
	for _, t := range r.Tuples {
		if t.D <= 0 {
			continue
		}
		k := t.Key()
		if t.D > deg[k] {
			deg[k] = t.D
		}
		if _, ok := rep[k]; !ok {
			rep[k] = t
		}
	}
	return deg, rep
}

// Union returns the fuzzy union r ∪ s: µ(t) = max(µ_R(t), µ_S(t)). The
// result uses r's schema; relations must be union-compatible.
func Union(r, s *frel.Relation) (*frel.Relation, error) {
	if err := compatible(r, s); err != nil {
		return nil, err
	}
	dr, repR := degreesByKey(r)
	ds, repS := degreesByKey(s)
	out := frel.NewRelation(r.Schema)
	for k, d := range dr {
		if e, ok := ds[k]; ok && e > d {
			d = e
		}
		t := repR[k].Clone()
		t.D = d
		out.Append(t)
	}
	for k, d := range ds {
		if _, ok := dr[k]; ok {
			continue
		}
		t := repS[k].Clone()
		t.D = d
		out.Append(t)
	}
	return out, nil
}

// Intersect returns the fuzzy intersection r ∩ s:
// µ(t) = min(µ_R(t), µ_S(t)); only tuples present (degree > 0) in both
// survive.
func Intersect(r, s *frel.Relation) (*frel.Relation, error) {
	if err := compatible(r, s); err != nil {
		return nil, err
	}
	dr, repR := degreesByKey(r)
	ds, _ := degreesByKey(s)
	out := frel.NewRelation(r.Schema)
	for k, d := range dr {
		e, ok := ds[k]
		if !ok {
			continue
		}
		if e < d {
			d = e
		}
		t := repR[k].Clone()
		t.D = d
		out.Append(t)
	}
	return out, nil
}

// Difference returns the fuzzy difference r − s:
// µ(t) = min(µ_R(t), 1 − µ_S(t)).
func Difference(r, s *frel.Relation) (*frel.Relation, error) {
	if err := compatible(r, s); err != nil {
		return nil, err
	}
	dr, repR := degreesByKey(r)
	ds, _ := degreesByKey(s)
	out := frel.NewRelation(r.Schema)
	for k, d := range dr {
		if e, ok := ds[k]; ok {
			if c := 1 - e; c < d {
				d = c
			}
		}
		if d > 0 {
			t := repR[k].Clone()
			t.D = d
			out.Append(t)
		}
	}
	return out, nil
}

// SemiJoin returns the fuzzy semi-join r ⋉_on s: each r-tuple with degree
//
//	µ(r) = min(µ_R(r), max over s of min(µ_S(s), on(r, s))),
//
// the possibility that some s-tuple matches. This is the algebraic form of
// the EXISTS / IN rewrites.
func SemiJoin(r, s *frel.Relation, on JoinPred) *frel.Relation {
	out := frel.NewRelation(r.Schema)
	for _, a := range r.Tuples {
		best := 0.0
		for _, b := range s.Tuples {
			d := b.D
			if g := on(a, b); g < d {
				d = g
			}
			if d > best {
				best = d
				if best == 1 {
					break
				}
			}
		}
		d := a.D
		if best < d {
			d = best
		}
		if d > 0 {
			t := a.Clone()
			t.D = d
			out.Append(t)
		}
	}
	return out
}

// AntiJoin returns the fuzzy anti-join r ▷_on s: each r-tuple with degree
//
//	µ(r) = min(µ_R(r), min over s of (1 − min(µ_S(s), on(r, s)))),
//
// the group-minimum form the paper's Query JX′ computes with GROUPBY R.K /
// MIN(D) (Theorem 5.1).
func AntiJoin(r, s *frel.Relation, on JoinPred) *frel.Relation {
	out := frel.NewRelation(r.Schema)
	for _, a := range r.Tuples {
		d := a.D
		for _, b := range s.Tuples {
			m := b.D
			if g := on(a, b); g < m {
				m = g
			}
			if pen := 1 - m; pen < d {
				d = pen
				if d == 0 {
					break
				}
			}
		}
		if d > 0 {
			t := a.Clone()
			t.D = d
			out.Append(t)
		}
	}
	return out
}
