package falg

import (
	"math/rand"
	"testing"

	"repro/internal/frel"
	"repro/internal/fuzzy"
)

func relation(name string, pairs ...float64) *frel.Relation {
	// pairs: value, degree, value, degree, ...
	r := frel.NewRelation(frel.NewSchema(name, frel.Attribute{Name: "X", Kind: frel.KindNumber}))
	for i := 0; i+1 < len(pairs); i += 2 {
		r.Append(frel.NewTuple(pairs[i+1], frel.Crisp(pairs[i])))
	}
	return r
}

func degreeOf(r *frel.Relation, v float64) float64 {
	for _, t := range r.Tuples {
		if t.Values[0].Num == fuzzy.Crisp(v) {
			return t.D
		}
	}
	return 0
}

func TestSelect(t *testing.T) {
	r := relation("R", 1, 0.9, 2, 0.5, 3, 1)
	out := Select(r, func(tp frel.Tuple) float64 {
		return fuzzy.Lt(tp.Values[0].Num, fuzzy.Crisp(3))
	})
	if out.Len() != 2 {
		t.Fatalf("len = %d", out.Len())
	}
	if degreeOf(out, 1) != 0.9 || degreeOf(out, 2) != 0.5 {
		t.Errorf("degrees = %v", out.Tuples)
	}
	// Source unchanged.
	if r.Len() != 3 || r.Tuples[0].D != 0.9 {
		t.Errorf("input mutated")
	}
}

func TestProjectDedups(t *testing.T) {
	r := frel.NewRelation(frel.NewSchema("R",
		frel.Attribute{Name: "A", Kind: frel.KindNumber},
		frel.Attribute{Name: "B", Kind: frel.KindString},
	))
	r.Append(
		frel.NewTuple(0.4, frel.Crisp(1), frel.Str("x")),
		frel.NewTuple(0.8, frel.Crisp(2), frel.Str("x")),
		frel.NewTuple(0.6, frel.Crisp(3), frel.Str("y")),
	)
	out, err := Project(r, "B")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("len = %d", out.Len())
	}
	if out.Tuples[0].Values[0].Str != "x" || out.Tuples[0].D != 0.8 {
		t.Errorf("projection fuzzy OR failed: %v", out.Tuples[0])
	}
	if _, err := Project(r, "NOPE"); err == nil {
		t.Errorf("unknown ref: want error")
	}
}

func TestProductAndJoin(t *testing.T) {
	r := relation("R", 1, 0.9, 2, 0.4)
	s := relation("S", 1, 0.7, 3, 1)
	prod := Product(r, s)
	if prod.Len() != 4 {
		t.Fatalf("product len = %d", prod.Len())
	}
	// Join on equality: only (1, 1) matches.
	eq := func(a, b frel.Tuple) float64 {
		return fuzzy.Eq(a.Values[0].Num, b.Values[0].Num)
	}
	j := Join(r, s, eq)
	if j.Len() != 1 || j.Tuples[0].D != 0.7 {
		t.Fatalf("join = %v", j.Tuples)
	}
	// σ_eq(r × s) ≡ r ⋈_eq s — the composability the paper relies on.
	selected := Select(prod, func(tp frel.Tuple) float64 {
		return fuzzy.Eq(tp.Values[0].Num, tp.Values[1].Num)
	})
	if !selected.Equal(j, 1e-12) {
		t.Errorf("select-product != join")
	}
}

func TestUnionMax(t *testing.T) {
	r := relation("R", 1, 0.3, 2, 0.9)
	s := relation("S", 1, 0.8, 3, 0.5)
	u, err := Union(r, s)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 3 {
		t.Fatalf("len = %d", u.Len())
	}
	if degreeOf(u, 1) != 0.8 || degreeOf(u, 2) != 0.9 || degreeOf(u, 3) != 0.5 {
		t.Errorf("union degrees: %v", u.Tuples)
	}
}

func TestIntersectMin(t *testing.T) {
	r := relation("R", 1, 0.3, 2, 0.9)
	s := relation("S", 1, 0.8, 3, 0.5)
	x, err := Intersect(r, s)
	if err != nil {
		t.Fatal(err)
	}
	if x.Len() != 1 || degreeOf(x, 1) != 0.3 {
		t.Errorf("intersection: %v", x.Tuples)
	}
}

func TestDifference(t *testing.T) {
	r := relation("R", 1, 0.9, 2, 0.9)
	s := relation("S", 1, 0.8)
	d, err := Difference(r, s)
	if err != nil {
		t.Fatal(err)
	}
	// µ(1) = min(0.9, 1 − 0.8) = 0.2; µ(2) = 0.9.
	got1 := degreeOf(d, 1)
	if got1 < 0.199 || got1 > 0.201 {
		t.Errorf("µ(1) = %g, want 0.2", got1)
	}
	if degreeOf(d, 2) != 0.9 {
		t.Errorf("µ(2) = %g", degreeOf(d, 2))
	}
}

func TestCompatibility(t *testing.T) {
	r := relation("R", 1, 1)
	s := frel.NewRelation(frel.NewSchema("S", frel.Attribute{Name: "N", Kind: frel.KindString}))
	if _, err := Union(r, s); err == nil {
		t.Errorf("incompatible union: want error")
	}
	if _, err := Intersect(r, s); err == nil {
		t.Errorf("incompatible intersect: want error")
	}
	if _, err := Difference(r, s); err == nil {
		t.Errorf("incompatible difference: want error")
	}
	two := frel.NewRelation(frel.NewSchema("T",
		frel.Attribute{Name: "A", Kind: frel.KindNumber},
		frel.Attribute{Name: "B", Kind: frel.KindNumber}))
	if _, err := Union(r, two); err == nil {
		t.Errorf("arity mismatch: want error")
	}
}

func TestRename(t *testing.T) {
	r := relation("R", 1, 1)
	s := Rename(r, "Q")
	if s.Schema.Name != "Q" || r.Schema.Name != "R" {
		t.Errorf("rename: %q / %q", s.Schema.Name, r.Schema.Name)
	}
}

// randomSet builds a random fuzzy relation over a small crisp domain.
func randomSet(rng *rand.Rand, name string) *frel.Relation {
	r := frel.NewRelation(frel.NewSchema(name, frel.Attribute{Name: "X", Kind: frel.KindNumber}))
	for v := 0; v < 8; v++ {
		if rng.Intn(2) == 0 {
			r.Append(frel.NewTuple(rng.Float64()*0.99+0.01, frel.Crisp(float64(v))))
		}
	}
	return r
}

// TestAlgebraicLaws checks the fuzzy-set laws that underpin composition.
func TestAlgebraicLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		a := randomSet(rng, "A")
		b := randomSet(rng, "B")
		c := randomSet(rng, "C")

		// Commutativity.
		ab, _ := Union(a, b)
		ba, _ := Union(b, a)
		if !ab.Equal(ba, 1e-12) {
			t.Fatalf("union not commutative")
		}
		iab, _ := Intersect(a, b)
		iba, _ := Intersect(b, a)
		if !iab.Equal(iba, 1e-12) {
			t.Fatalf("intersection not commutative")
		}

		// Associativity of union.
		ab_c, _ := Union(ab, c)
		bc, _ := Union(b, c)
		a_bc, _ := Union(a, bc)
		if !ab_c.Equal(a_bc, 1e-12) {
			t.Fatalf("union not associative")
		}

		// Idempotence.
		aa, _ := Union(a, a)
		if !aa.Equal(a, 1e-12) {
			t.Fatalf("union not idempotent")
		}
		iaa, _ := Intersect(a, a)
		if !iaa.Equal(a, 1e-12) {
			t.Fatalf("intersection not idempotent")
		}

		// Absorption: A ∪ (A ∩ B) = A.
		absorbed, _ := Union(a, iab)
		if !absorbed.Equal(a, 1e-12) {
			t.Fatalf("absorption law failed")
		}

		// Monotonicity of difference: µ(A − B) ≤ µ(A).
		diff, _ := Difference(a, b)
		for _, tp := range diff.Tuples {
			if tp.D > degreeOf(a, tp.Values[0].Num.A)+1e-12 {
				t.Fatalf("difference exceeded source degree")
			}
		}
	}
}

// TestSelectCommutesWithUnion: σ(A ∪ B) = σ(A) ∪ σ(B), one of the
// rewrite-enabling identities.
func TestSelectCommutesWithUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pred := func(tp frel.Tuple) float64 {
		return fuzzy.Le(tp.Values[0].Num, fuzzy.Tri(2, 4, 6))
	}
	for trial := 0; trial < 30; trial++ {
		a := randomSet(rng, "A")
		b := randomSet(rng, "B")
		u, _ := Union(a, b)
		lhs := Select(u, pred)
		ru, _ := Union(Select(a, pred), Select(b, pred))
		if !lhs.Equal(ru, 1e-12) {
			t.Fatalf("selection does not commute with union")
		}
	}
}

func TestSemiJoin(t *testing.T) {
	r := relation("R", 1, 0.9, 2, 0.8)
	s := relation("S", 1, 0.6, 3, 1)
	eq := func(a, b frel.Tuple) float64 {
		return fuzzy.Eq(a.Values[0].Num, b.Values[0].Num)
	}
	out := SemiJoin(r, s, eq)
	if out.Len() != 1 {
		t.Fatalf("semi-join = %v", out.Tuples)
	}
	// µ = min(0.9, max(min(0.6, 1))) = 0.6.
	if degreeOf(out, 1) != 0.6 {
		t.Errorf("µ(1) = %g", degreeOf(out, 1))
	}
}

func TestAntiJoin(t *testing.T) {
	r := relation("R", 1, 0.9, 2, 0.8)
	s := relation("S", 1, 0.6)
	eq := func(a, b frel.Tuple) float64 {
		return fuzzy.Eq(a.Values[0].Num, b.Values[0].Num)
	}
	out := AntiJoin(r, s, eq)
	// µ(1) = min(0.9, 1 − min(0.6, 1)) = 0.4; µ(2) = 0.8 (no match).
	got1 := degreeOf(out, 1)
	if got1 < 0.399 || got1 > 0.401 {
		t.Errorf("µ(1) = %g, want 0.4", got1)
	}
	if degreeOf(out, 2) != 0.8 {
		t.Errorf("µ(2) = %g, want 0.8", degreeOf(out, 2))
	}
	// Empty s: every tuple keeps its own degree (Theorem 5.1 Case 1).
	empty := relation("S")
	out2 := AntiJoin(r, empty, eq)
	if !out2.Equal(r, 1e-12) {
		t.Errorf("anti-join with empty right should be identity")
	}
}

// TestSemiJoinIsProjectedJoin: r ⋉ s equals projecting r's columns out of
// r ⋈ s with max-degree dedup — the identity the EXISTS flattening uses.
func TestSemiJoinIsProjectedJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	eq := func(a, b frel.Tuple) float64 {
		return fuzzy.Eq(a.Values[0].Num, b.Values[0].Num)
	}
	for trial := 0; trial < 30; trial++ {
		r := randomSet(rng, "R")
		s := randomSet(rng, "S")
		semi := SemiJoin(r, s, eq)
		joined := Join(r, s, eq)
		proj, err := Project(joined, "R.X")
		if err != nil {
			t.Fatal(err)
		}
		// Compare as fuzzy sets of X values: semi may carry duplicates of
		// r (it does not dedup), so project it too.
		semiProj, err := Project(semi, "X")
		if err != nil {
			t.Fatal(err)
		}
		if !semiProj.Equal(proj, 1e-12) {
			t.Fatalf("semi-join != projected join")
		}
	}
}
