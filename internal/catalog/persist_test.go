package catalog

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/frel"
	"repro/internal/fuzzy"
	"repro/internal/storage"
)

func TestOpenFreshDirectory(t *testing.T) {
	mgr := storage.NewManager(t.TempDir(), 16)
	c, fresh, err := Open(mgr)
	if err != nil {
		t.Fatal(err)
	}
	if !fresh || c == nil {
		t.Errorf("fresh = %v", fresh)
	}
}

func TestSaveAndReopen(t *testing.T) {
	dir := t.TempDir()
	mgr := storage.NewManager(dir, 16)
	c := New(mgr)
	c.DefinePaperTerms()
	if err := c.DefineTerm("custom", fuzzy.Tri(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	schema := frel.NewSchema("W",
		frel.Attribute{Name: "ID", Kind: frel.KindNumber},
		frel.Attribute{Name: "NAME", Kind: frel.KindString},
	)
	schema.Pad = 16
	h, err := c.CreateRelation("W", schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 700; i++ {
		if err := h.Append(frel.NewTuple(0.5, frel.Crisp(float64(i)), frel.Str("n"))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}

	// A second manager over the same directory restores everything.
	mgr2 := storage.NewManager(dir, 16)
	c2, fresh, err := Open(mgr2)
	if err != nil {
		t.Fatal(err)
	}
	if fresh {
		t.Fatalf("expected existing catalog")
	}
	if got, ok := c2.Term("custom"); !ok || got != fuzzy.Tri(1, 2, 3) {
		t.Errorf("custom term = %v, %v", got, ok)
	}
	if _, ok := c2.Term("medium young"); !ok {
		t.Errorf("paper terms lost")
	}
	h2, err := c2.Relation("W")
	if err != nil {
		t.Fatal(err)
	}
	if h2.NumTuples() != 700 {
		t.Errorf("NumTuples = %d, want 700", h2.NumTuples())
	}
	if h2.Schema.Pad != 16 {
		t.Errorf("Pad = %d", h2.Schema.Pad)
	}
	rel, err := h2.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 700 || rel.Tuples[699].Values[0].Num.A != 699 {
		t.Errorf("data mismatch after reopen")
	}

	// Appends continue where the old session left off.
	if err := h2.Append(frel.NewTuple(1, frel.Crisp(700), frel.Str("x"))); err != nil {
		t.Fatal(err)
	}
	if h2.NumTuples() != 701 {
		t.Errorf("NumTuples after append = %d", h2.NumTuples())
	}
	rel2, err := h2.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if rel2.Len() != 701 || rel2.Tuples[700].Values[0].Num.A != 700 {
		t.Errorf("append after recovery corrupted the file")
	}
}

func TestOpenCorruptCatalog(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "catalog.json"), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	mgr := storage.NewManager(dir, 16)
	if _, _, err := Open(mgr); err == nil {
		t.Errorf("corrupt catalog: want error")
	}
}

func TestOpenMissingHeapFile(t *testing.T) {
	dir := t.TempDir()
	mgr := storage.NewManager(dir, 16)
	c := New(mgr)
	schema := frel.NewSchema("W", frel.Attribute{Name: "X", Kind: frel.KindNumber})
	if _, err := c.CreateRelation("W", schema); err != nil {
		t.Fatal(err)
	}
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "w.heap")); err != nil {
		t.Fatal(err)
	}
	mgr2 := storage.NewManager(dir, 16)
	if _, _, err := Open(mgr2); err == nil {
		t.Errorf("missing heap file: want error")
	}
}

func TestRecoverEmptyHeap(t *testing.T) {
	dir := t.TempDir()
	mgr := storage.NewManager(dir, 16)
	c := New(mgr)
	schema := frel.NewSchema("W", frel.Attribute{Name: "X", Kind: frel.KindNumber})
	if _, err := c.CreateRelation("W", schema); err != nil {
		t.Fatal(err)
	}
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	mgr2 := storage.NewManager(dir, 16)
	c2, _, err := Open(mgr2)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c2.Relation("W")
	if err != nil {
		t.Fatal(err)
	}
	if h.NumTuples() != 0 {
		t.Errorf("NumTuples = %d", h.NumTuples())
	}
	// Appending to a recovered empty heap works.
	if err := h.Append(frel.NewTuple(1, frel.Crisp(1))); err != nil {
		t.Errorf("append: %v", err)
	}
}
