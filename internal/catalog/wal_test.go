package catalog

import (
	"testing"

	"repro/internal/frel"
	"repro/internal/storage"
)

// newWALCatalog opens a WAL-enabled catalog over fs (directory "db"),
// replaying any existing log and catalog.json.
func newWALCatalog(t *testing.T, fs storage.FS) *Catalog {
	t.Helper()
	mgr, err := storage.NewManagerOptions("db", storage.ManagerOptions{
		PoolPages: 8, FS: fs, WAL: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, _, err := Open(mgr)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func catTuple(i int) frel.Tuple {
	return frel.NewTuple(0.25+float64(i%4)/8, frel.Crisp(float64(i)))
}

// TestWALReplaceRelationContents: the DELETE rewrite path (checkpoint,
// temp heap, rename swap, checkpoint) keeps both the survivors and the
// other relations across a reopen, including after an unclean close.
func TestWALReplaceRelationContents(t *testing.T) {
	fs := storage.NewMemFS()
	c := newWALCatalog(t, fs)
	if c.Manager().Dir() != "db" || !c.Manager().WALEnabled() {
		t.Fatalf("manager misconfigured")
	}
	schema := frel.NewSchema("R", frel.Attribute{Name: "X", Kind: frel.KindNumber})
	h, err := c.CreateRelation("R", schema)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := h.Append(catTuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Keep the even tuples.
	var kept []frel.Tuple
	for i := 0; i < 8; i += 2 {
		kept = append(kept, catTuple(i))
	}
	if err := c.ReplaceRelationContents("R", kept); err != nil {
		t.Fatal(err)
	}
	h2, err := c.Relation("R")
	if err != nil {
		t.Fatal(err)
	}
	if h2.NumTuples() != 4 {
		t.Errorf("after replace: %d tuples", h2.NumTuples())
	}
	// More appends after the swap land in the swapped-in heap's log.
	if err := h2.Append(catTuple(8)); err != nil {
		t.Fatal(err)
	}
	if err := c.Manager().Close(); err != nil {
		t.Fatal(err)
	}

	c2 := newWALCatalog(t, fs)
	h3, err := c2.Relation("R")
	if err != nil {
		t.Fatal(err)
	}
	got, err := h3.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	want := frel.NewRelation(schema)
	want.Append(kept...)
	want.Append(catTuple(8))
	if !got.Equal(want, 0) {
		t.Errorf("reopened relation differs: %d tuples, want %d", got.Len(), want.Len())
	}
}

// TestWALDropRelation: dropping under WAL saves the catalog before the
// heap file goes away, so a reopen sees a consistent (empty) catalog.
func TestWALDropRelation(t *testing.T) {
	fs := storage.NewMemFS()
	c := newWALCatalog(t, fs)
	schema := frel.NewSchema("R", frel.Attribute{Name: "X", Kind: frel.KindNumber})
	h, err := c.CreateRelation("R", schema)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Append(catTuple(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	if err := c.DropRelation("R"); err != nil {
		t.Fatal(err)
	}
	if err := c.Manager().Close(); err != nil {
		t.Fatal(err)
	}
	c2 := newWALCatalog(t, fs)
	if names := c2.Relations(); len(names) != 0 {
		t.Errorf("relations after drop+reopen: %v", names)
	}
}
