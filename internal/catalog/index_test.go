package catalog

import (
	"testing"

	"repro/internal/frel"
	"repro/internal/fuzzy"
	"repro/internal/storage"
)

func indexTestRelation(t *testing.T, c *Catalog, name string, n int) *storage.HeapFile {
	t.Helper()
	schema := frel.NewSchema(name,
		frel.Attribute{Name: "X", Kind: frel.KindNumber},
		frel.Attribute{Name: "NAME", Kind: frel.KindString},
	)
	h, err := c.CreateRelation(name, schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		// Descending values so the build actually has to sort.
		v := float64(n - i)
		tup := frel.Tuple{Values: []frel.Value{frel.Num(fuzzy.Tri(v-1, v, v+1)), frel.Str("t")}, D: 1}
		if err := h.Append(tup); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func TestCreateIndexBuildsSortedEntries(t *testing.T) {
	c := newCatalog(t)
	h := indexTestRelation(t, c, "R", 50)
	ix, err := c.CreateIndex("r_x", "R", "X")
	if err != nil {
		t.Fatal(err)
	}
	if ix.Pos() != 0 || ix.Rel != "R" {
		t.Errorf("index = %+v", ix)
	}
	entries, err := storage.ReadIndexEntries(ix.Heap(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(entries)) != h.NumTuples() {
		t.Fatalf("index has %d entries, relation %d tuples", len(entries), h.NumTuples())
	}
	for i := 1; i < len(entries); i++ {
		if storage.CompareEntries(entries[i-1], entries[i]) > 0 {
			t.Fatalf("entries %d and %d out of order", i-1, i)
		}
	}
	if got := c.IndexForHeap(h, 0); got != ix {
		t.Errorf("IndexForHeap = %v", got)
	}
	if got := c.IndexForHeap(h, 1); got != nil {
		t.Errorf("IndexForHeap on unindexed attribute = %v", got)
	}
}

func TestCreateIndexValidation(t *testing.T) {
	c := newCatalog(t)
	indexTestRelation(t, c, "R", 5)
	if _, err := c.CreateIndex("i1", "NOPE", "X"); err == nil {
		t.Errorf("unknown relation: want error")
	}
	if _, err := c.CreateIndex("i1", "R", "NOPE"); err == nil {
		t.Errorf("unknown attribute: want error")
	}
	if _, err := c.CreateIndex("i1", "R", "NAME"); err == nil {
		t.Errorf("string attribute: want error")
	}
	if _, err := c.CreateIndex("i1", "R", "X"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateIndex("I1", "R", "X"); err == nil {
		t.Errorf("duplicate name (case-insensitive): want error")
	}
	if _, err := c.CreateIndex("i2", "r", "x"); err == nil {
		t.Errorf("second index on same attribute: want error")
	}
}

func TestDropIndex(t *testing.T) {
	c := newCatalog(t)
	h := indexTestRelation(t, c, "R", 5)
	if _, err := c.CreateIndex("i1", "R", "X"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropIndex("I1"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropIndex("i1"); err == nil {
		t.Errorf("double drop: want error")
	}
	if got := c.IndexForHeap(h, 0); got != nil {
		t.Errorf("IndexForHeap after drop = %v", got)
	}
}

func TestDropRelationCascadesIndexes(t *testing.T) {
	c := newCatalog(t)
	indexTestRelation(t, c, "R", 5)
	if _, err := c.CreateIndex("i1", "R", "X"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropRelation("R"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.LookupIndex("i1"); ok {
		t.Errorf("index survived its relation")
	}
	// The name is free again for a fresh relation + index.
	indexTestRelation(t, c, "R", 3)
	if _, err := c.CreateIndex("i1", "R", "X"); err != nil {
		t.Fatal(err)
	}
}

func TestReplaceRelationContentsRebuildsIndex(t *testing.T) {
	c := newCatalog(t)
	h := indexTestRelation(t, c, "R", 10)
	ix, err := c.CreateIndex("i1", "R", "X")
	if err != nil {
		t.Fatal(err)
	}
	rel, err := h.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ReplaceRelationContents("R", rel.Tuples[:4]); err != nil {
		t.Fatal(err)
	}
	entries, err := storage.ReadIndexEntries(ix.Heap(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("rebuilt index has %d entries, want 4", len(entries))
	}
	nh, err := c.Relation("R")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.IndexForHeap(nh, 0); got != ix {
		t.Errorf("IndexForHeap after replace = %v", got)
	}
}

func TestIndexPersistence(t *testing.T) {
	fs := storage.NewMemFS()
	mgr, err := storage.NewManagerOptions("db", storage.ManagerOptions{PoolPages: 32, FS: fs, WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	c := New(mgr)
	indexTestRelation(t, c, "R", 20)
	if _, err := c.CreateIndex("r_x", "R", "X"); err != nil {
		t.Fatal(err)
	}
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	mgr2, err := storage.NewManagerOptions("db", storage.ManagerOptions{PoolPages: 32, FS: fs, WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	c2, fresh, err := Open(mgr2)
	if err != nil {
		t.Fatal(err)
	}
	if fresh {
		t.Fatal("want existing catalog")
	}
	ix, ok := c2.LookupIndex("r_x")
	if !ok {
		t.Fatal("index not restored")
	}
	entries, err := storage.ReadIndexEntries(ix.Heap(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 20 {
		t.Fatalf("restored index has %d entries, want 20", len(entries))
	}
}

func TestOpenRebuildsStaleIndexAndRemovesOrphans(t *testing.T) {
	fs := storage.NewMemFS()
	mgr, err := storage.NewManagerOptions("db", storage.ManagerOptions{PoolPages: 32, FS: fs, WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	c := New(mgr)
	h := indexTestRelation(t, c, "R", 10)
	if _, err := c.CreateIndex("r_x", "R", "X"); err != nil {
		t.Fatal(err)
	}
	// Bulk-append behind the index's back: the counts now disagree.
	if err := h.Append(frel.Tuple{Values: []frel.Value{frel.Crisp(0), frel.Str("t")}, D: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	// An orphaned index file from a crashed build.
	orphan, err := mgr.CreateHeap("idx-r-orphan", storage.IndexSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := orphan.AppendIndexEntry(storage.IndexEntry{Tid: 1}); err != nil {
		t.Fatal(err)
	}
	if err := orphan.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	mgr2, err := storage.NewManagerOptions("db", storage.ManagerOptions{PoolPages: 32, FS: fs, WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	c2, _, err := Open(mgr2)
	if err != nil {
		t.Fatal(err)
	}
	ix, ok := c2.LookupIndex("r_x")
	if !ok {
		t.Fatal("index not restored")
	}
	entries, err := storage.ReadIndexEntries(ix.Heap(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 11 {
		t.Fatalf("rebuilt index has %d entries, want 11", len(entries))
	}
	names, err := fs.ReadDir("db")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if n == "idx-r-orphan.heap" {
			t.Errorf("orphan index file survived Open")
		}
	}
}
