package catalog

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/frel"
	"repro/internal/storage"
)

// Persistent order indexes. An index is a secondary file of
// storage.IndexEntry records on one numeric attribute of one relation,
// kept in the stable Definition 3.1 order (support begin, support end,
// base-heap position). The engine serves the extended merge-join's sort
// order from it instead of external-sorting the relation.
//
// Lifecycle and crash ordering:
//
//   - CreateIndex builds the entry file first (one logged transaction) and
//     saves the catalog last, so a crash in between leaves an orphaned
//     idx-*.heap file but never a catalog entry pointing at a half-built
//     index; Open removes orphans.
//   - DropIndex saves the catalog without the index before deleting the
//     file, mirroring DropRelation.
//   - Ordinary inserts append one entry per index in the same storage
//     transaction as the base-tuple append (see the core session), so the
//     committed counts of base and index move together and recovery keeps
//     them consistent.
//   - Bulk paths that bypass maintenance (workload loaders, DELETE's
//     contents swap) leave the counts unequal; the engine then falls back
//     to sorting and Open rebuilds the index from scratch.

// Index is a persistent secondary index on the Definition 3.1 order of one
// numeric attribute.
type Index struct {
	Name string // index name as created (case-insensitive key: upper)
	Rel  string // owning relation's catalog key
	Attr string // indexed attribute's schema name

	pos  int // attribute position in the relation schema
	heap *storage.HeapFile
}

// Pos returns the indexed attribute's position in the relation schema.
func (ix *Index) Pos() int { return ix.pos }

// Heap returns the index's entry file.
func (ix *Index) Heap() *storage.HeapFile { return ix.heap }

// indexHeapName returns the storage name of the index's entry file. The
// "idx-" prefix cannot collide with relation heaps: relation storage names
// are lower-cased SQL identifiers, which cannot contain '-'.
func indexHeapName(rel, attr string) string {
	return "idx-" + strings.ToLower(rel) + "-" + strings.ToLower(attr)
}

// CreateIndex builds a persistent order index named name on relation rel's
// attribute attr. The build scans the relation's current contents (the
// caller runs at a transaction barrier, so everything is committed),
// sorts, writes the entry file as one transaction, and saves the catalog.
func (c *Catalog) CreateIndex(name, rel, attr string) (*Index, error) {
	key := relKey(name)
	c.mu.RLock()
	_, dup := c.indexes[key]
	h, relOK := c.relations[relKey(rel)]
	c.mu.RUnlock()
	if dup {
		return nil, fmt.Errorf("catalog: index %q already exists", name)
	}
	if !relOK {
		return nil, fmt.Errorf("catalog: unknown relation %q", rel)
	}
	pos, err := h.Schema.Resolve(attr)
	if err != nil {
		return nil, fmt.Errorf("catalog: create index %q: %w", name, err)
	}
	if h.Schema.Attrs[pos].Kind != frel.KindNumber {
		return nil, fmt.Errorf("catalog: create index %q: attribute %q is not numeric", name, attr)
	}
	ix := &Index{Name: name, Rel: relKey(rel), Attr: h.Schema.Attrs[pos].Name, pos: pos}
	c.mu.RLock()
	for _, other := range c.indexes {
		if other.Rel == ix.Rel && other.pos == pos {
			err = fmt.Errorf("catalog: relation %q attribute %q is already indexed by %q", rel, attr, other.Name)
			break
		}
	}
	c.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	if err := c.buildIndex(ix, h); err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.indexes[key] = ix
	c.mu.Unlock()
	if c.mgr.WALEnabled() {
		if err := c.Save(); err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// buildIndex (re)creates ix's entry file from relation heap h's current
// contents: one scan, one stable sort, one transaction of entry appends.
func (c *Catalog) buildIndex(ix *Index, h *storage.HeapFile) error {
	rel, err := h.ReadAll()
	if err != nil {
		return err
	}
	entries := make([]storage.IndexEntry, 0, len(rel.Tuples))
	for i, t := range rel.Tuples {
		e, ok := storage.IndexEntryFor(t, ix.pos, uint64(i))
		if !ok {
			return fmt.Errorf("catalog: index %q: tuple %d has no numeric value on %q", ix.Name, i, ix.Attr)
		}
		entries = append(entries, e)
	}
	// Stable: Definition 3.1 ties stay in base-heap position order, the
	// order a single-run stable sort of the relation would produce.
	sort.SliceStable(entries, func(i, j int) bool {
		return storage.CompareEntries(entries[i], entries[j]) < 0
	})
	ih, err := c.mgr.CreateHeap(indexHeapName(ix.Rel, ix.Attr), storage.IndexSchema())
	if err != nil {
		return err
	}
	var tx *storage.Tx
	if c.mgr.WALEnabled() {
		if tx, err = c.mgr.Begin(); err != nil {
			ih.Drop()
			return err
		}
	}
	for _, e := range entries {
		if err := ih.AppendIndexEntry(e); err != nil {
			ih.Drop()
			return err
		}
	}
	if tx != nil {
		if err := tx.Commit(); err != nil {
			ih.Drop()
			return err
		}
	}
	if err := ih.Flush(); err != nil {
		ih.Drop()
		return err
	}
	ix.heap = ih
	return nil
}

// DropIndex removes an index and deletes its entry file. The catalog is
// saved without the index before the file disappears.
func (c *Catalog) DropIndex(name string) error {
	key := relKey(name)
	c.mu.Lock()
	ix, ok := c.indexes[key]
	if ok {
		delete(c.indexes, key)
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("catalog: unknown index %q", name)
	}
	if c.mgr.WALEnabled() {
		if err := c.Save(); err != nil {
			return err
		}
	}
	return ix.heap.Drop()
}

// LookupIndex looks up an index by name.
func (c *Catalog) LookupIndex(name string) (*Index, bool) {
	c.mu.RLock()
	ix, ok := c.indexes[relKey(name)]
	c.mu.RUnlock()
	return ix, ok
}

// Indexes returns the sorted catalog keys of all indexes.
func (c *Catalog) Indexes() []string {
	c.mu.RLock()
	names := make([]string, 0, len(c.indexes))
	for n := range c.indexes {
		names = append(names, n)
	}
	c.mu.RUnlock()
	sort.Strings(names)
	return names
}

// IndexForHeap returns the index on attribute position pos of the relation
// currently backed by heap h, or nil.
func (c *Catalog) IndexForHeap(h *storage.HeapFile, pos int) *Index {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, ix := range c.indexes {
		if ix.pos == pos && c.relations[ix.Rel] == h {
			return ix
		}
	}
	return nil
}

// IndexesForHeap returns every index of the relation currently backed by
// heap h, the set an insert must maintain.
func (c *Catalog) IndexesForHeap(h *storage.HeapFile) []*Index {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*Index
	for _, ix := range c.indexes {
		if c.relations[ix.Rel] == h {
			out = append(out, ix)
		}
	}
	return out
}

// dropIndexesOf removes (and deletes the files of) every index on relation
// key, for DropRelation's cascade. The caller saves the catalog afterwards.
func (c *Catalog) dropIndexesOf(key string) error {
	c.mu.Lock()
	var victims []*Index
	for n, ix := range c.indexes {
		if ix.Rel == key {
			victims = append(victims, ix)
			delete(c.indexes, n)
		}
	}
	c.mu.Unlock()
	for _, ix := range victims {
		if err := ix.heap.Drop(); err != nil {
			return err
		}
	}
	return nil
}

// rebuildIndexesOf rebuilds every index on relation key from its current
// heap, after a bulk rewrite (DELETE's contents swap) invalidated them.
func (c *Catalog) rebuildIndexesOf(key string) error {
	c.mu.RLock()
	h := c.relations[key]
	var victims []*Index
	for _, ix := range c.indexes {
		if ix.Rel == key {
			victims = append(victims, ix)
		}
	}
	c.mu.RUnlock()
	for _, ix := range victims {
		if err := ix.heap.Drop(); err != nil {
			return err
		}
		if err := c.buildIndex(ix, h); err != nil {
			return err
		}
	}
	return nil
}
