// Package catalog maintains the database catalog: named fuzzy relations
// bound to heap files, and the linguistic-term dictionary mapping vague
// terms such as "medium young" to their possibility distributions
// (Section 2 of the paper). Fuzzy SQL queries reference both.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/frel"
	"repro/internal/fuzzy"
	"repro/internal/storage"
)

// Catalog is the root object of a database session. Lookups (Relation,
// Term, listings) may run concurrently with each other; mutations (DDL,
// term definitions, Save) must be serialized against everything else by
// the caller — the public fuzzydb layer does so with a readers-writer
// lock, and the catalog's own mutex only keeps the maps themselves safe
// for concurrent lookups while a forked session defines shared state.
type Catalog struct {
	mgr *storage.Manager

	mu        sync.RWMutex // guards the three maps
	relations map[string]*storage.HeapFile
	indexes   map[string]*Index
	terms     map[string]fuzzy.Trapezoid
}

// New creates an empty catalog over the given storage manager.
func New(mgr *storage.Manager) *Catalog {
	return &Catalog{
		mgr:       mgr,
		relations: make(map[string]*storage.HeapFile),
		indexes:   make(map[string]*Index),
		terms:     make(map[string]fuzzy.Trapezoid),
	}
}

// Manager returns the underlying storage manager.
func (c *Catalog) Manager() *storage.Manager { return c.mgr }

func relKey(name string) string { return strings.ToUpper(name) }

// CreateRelation creates an empty relation with the given schema. Relation
// names are case-insensitive.
func (c *Catalog) CreateRelation(name string, schema *frel.Schema) (*storage.HeapFile, error) {
	key := relKey(name)
	c.mu.RLock()
	_, exists := c.relations[key]
	c.mu.RUnlock()
	if exists {
		return nil, fmt.Errorf("catalog: relation %q already exists", name)
	}
	schema = schema.Clone()
	schema.Name = key
	h, err := c.mgr.CreateHeap(strings.ToLower(key), schema)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.relations[key] = h
	c.mu.Unlock()
	return h, nil
}

// Relation looks up a relation by name.
func (c *Catalog) Relation(name string) (*storage.HeapFile, error) {
	c.mu.RLock()
	h, ok := c.relations[relKey(name)]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("catalog: unknown relation %q", name)
	}
	return h, nil
}

// ReplaceRelationContents rewrites a relation's heap file to contain
// exactly the given tuples (used by DELETE). The schema is unchanged.
// Under the write-ahead log the swap is crash-safe: the replacement is
// built in an unlogged temporary heap and renamed over the original, so a
// crash leaves either the old contents or the new ones, never a mixture.
func (c *Catalog) ReplaceRelationContents(name string, tuples []frel.Tuple) error {
	key := relKey(name)
	c.mu.RLock()
	h, ok := c.relations[key]
	c.mu.RUnlock()
	if !ok {
		return fmt.Errorf("catalog: unknown relation %q", name)
	}
	schema := h.Schema
	if !c.mgr.WALEnabled() {
		if err := h.Drop(); err != nil {
			return err
		}
		nh, err := c.mgr.CreateHeap(strings.ToLower(key), schema)
		if err != nil {
			return err
		}
		for _, t := range tuples {
			if err := nh.Append(t); err != nil {
				return err
			}
		}
		if err := nh.Flush(); err != nil {
			return err
		}
		c.mu.Lock()
		c.relations[key] = nh
		c.mu.Unlock()
		return c.rebuildIndexesOf(key)
	}
	// Checkpoint first: afterwards the log holds no append records for the
	// relation, so recovery will take whichever file the rename left behind
	// as-is instead of replaying old appends onto the new contents.
	if err := c.mgr.Checkpoint(); err != nil {
		return err
	}
	tmp, err := c.mgr.CreateTemp(schema)
	if err != nil {
		return err
	}
	for _, t := range tuples {
		if err := tmp.Append(t); err != nil {
			return err
		}
	}
	if err := tmp.Flush(); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	// Both files' pool frames are clean now (checkpoint / explicit flush);
	// forget them and swap the files on disk.
	if err := c.mgr.Pool().DropPager(h.Pager()); err != nil {
		return err
	}
	if err := h.Pager().Close(); err != nil {
		return err
	}
	if err := c.mgr.Pool().DropPager(tmp.Pager()); err != nil {
		return err
	}
	tmpPath := tmp.Pager().Path()
	if err := tmp.Pager().Close(); err != nil {
		return err
	}
	fs := c.mgr.FS()
	base := strings.ToLower(key)
	if err := fs.Rename(tmpPath, c.mgr.HeapPath(base)); err != nil {
		return err
	}
	if err := fs.SyncDir(c.mgr.Dir()); err != nil {
		return err
	}
	nh, err := c.mgr.OpenHeap(base, schema)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.relations[key] = nh
	c.mu.Unlock()
	// The swap invalidated any order indexes on the relation (their tids
	// point into the old file); rebuild them from the new contents.
	if err := c.rebuildIndexesOf(key); err != nil {
		return err
	}
	// Record the new geometry as the checkpoint base.
	return c.mgr.Checkpoint()
}

// DropRelation removes a relation and deletes its heap file. Under the
// write-ahead log the catalog is saved without the relation before the
// file disappears, so a crash between the two leaves at worst an orphaned
// heap file, never a catalog entry pointing at nothing.
func (c *Catalog) DropRelation(name string) error {
	key := relKey(name)
	c.mu.Lock()
	h, ok := c.relations[key]
	if ok {
		delete(c.relations, key)
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("catalog: unknown relation %q", name)
	}
	if err := c.dropIndexesOf(key); err != nil {
		return err
	}
	if c.mgr.WALEnabled() {
		if err := c.Save(); err != nil {
			return err
		}
	}
	return h.Drop()
}

// Relations returns the sorted names of all relations.
func (c *Catalog) Relations() []string {
	c.mu.RLock()
	names := make([]string, 0, len(c.relations))
	for n := range c.relations {
		names = append(names, n)
	}
	c.mu.RUnlock()
	sort.Strings(names)
	return names
}

func termKey(name string) string { return strings.ToLower(strings.TrimSpace(name)) }

// DefineTerm binds a linguistic term to a possibility distribution. Terms
// are case-insensitive; redefinition overwrites.
func (c *Catalog) DefineTerm(name string, t fuzzy.Trapezoid) error {
	if !t.Valid() {
		return fmt.Errorf("catalog: term %q has invalid distribution %v", name, t)
	}
	c.mu.Lock()
	c.terms[termKey(name)] = t
	c.mu.Unlock()
	return nil
}

// Term looks up a linguistic term.
func (c *Catalog) Term(name string) (fuzzy.Trapezoid, bool) {
	c.mu.RLock()
	t, ok := c.terms[termKey(name)]
	c.mu.RUnlock()
	return t, ok
}

// Terms returns the sorted names of all defined terms.
func (c *Catalog) Terms() []string {
	c.mu.RLock()
	names := make([]string, 0, len(c.terms))
	for n := range c.terms {
		names = append(names, n)
	}
	c.mu.RUnlock()
	sort.Strings(names)
	return names
}

// DefinePaperTerms loads the linguistic-term dictionary of the paper's
// running examples (Figs. 1 and 2). The numeric parameters are
// reconstructed from the figures so that every satisfaction degree worked
// out in the paper is reproduced exactly:
//
//   - d(24 = medium young) = 0.8 and d(about 35 = medium young) = 0.5
//     (Section 2.2, Fig. 1);
//   - in Example 4.1, the temporary relation T = {about 40K: 0.4, high: 1},
//     the intermediate answers {Ann: 0.3, Ann: 0.7, Betty: 0.7}, and the
//     final answer {Ann: 0.7, Betty: 0.7}.
//
// AGE terms are in years, INCOME terms in thousands of dollars.
func (c *Catalog) DefinePaperTerms() {
	c.mu.Lock()
	for name, t := range PaperTerms() {
		// Distributions below are valid by construction.
		c.terms[termKey(name)] = t
	}
	c.mu.Unlock()
}

// PaperTerms returns the reconstructed Fig. 1 / Fig. 2 dictionary; see
// DefinePaperTerms.
func PaperTerms() map[string]fuzzy.Trapezoid {
	return map[string]fuzzy.Trapezoid{
		// AGE (years).
		"young":        fuzzy.Trap(0, 0, 22, 30),
		"medium young": fuzzy.Trap(20, 25, 30, 35),
		// The rising edge 30 → 30+15/7 makes the intersection with
		// "medium young" exactly 0.7, the degree of Betty's tuple in
		// Example 4.1.
		"middle age": fuzzy.Trap(30, 30+15.0/7, 47, 48),
		"old":        fuzzy.Trap(45, 55, 120, 120),
		"about 29":   fuzzy.Tri(28, 29, 30),
		"about 35":   fuzzy.Tri(30, 35, 40),
		// The 46..50 rising edge makes d(about 50 = middle age) = 0.4, the
		// degree of "about 40K" in T of Example 4.1.
		"about 50": fuzzy.Tri(46, 50, 54),

		// INCOME (thousands of dollars).
		"low":        fuzzy.Trap(0, 0, 20, 35),
		"medium low": fuzzy.Trap(20, 28, 35, 45),
		"about 25k":  fuzzy.Tri(20, 25, 30),
		"about 40k":  fuzzy.Tri(30, 40, 50),
		// medium high falls 68 → 78 and high rises 64 → 74, giving
		// d(medium high = high) = 0.7 (Ann 102's degree in Example 4.1).
		"medium high": fuzzy.Trap(50, 60, 68, 78),
		"high":        fuzzy.Trap(64, 74, 120, 120),
		// about 60K rises from 50, giving d(about 60K = high) = 0.3
		// (Ann 101's degree in Example 4.1).
		"about 60k": fuzzy.Tri(50, 60, 70),
	}
}
