package catalog

import (
	"math"
	"testing"

	"repro/internal/frel"
	"repro/internal/fuzzy"
	"repro/internal/storage"
)

func newCatalog(t *testing.T) *Catalog {
	t.Helper()
	return New(storage.NewManager(t.TempDir(), 32))
}

func TestCreateAndLookupRelation(t *testing.T) {
	c := newCatalog(t)
	schema := frel.NewSchema("f", frel.Attribute{Name: "X", Kind: frel.KindNumber})
	h, err := c.CreateRelation("f", schema)
	if err != nil {
		t.Fatal(err)
	}
	if h.Schema.Name != "F" {
		t.Errorf("schema name = %q, want canonical upper case", h.Schema.Name)
	}
	// Case-insensitive lookup.
	got, err := c.Relation("F")
	if err != nil || got != h {
		t.Errorf("Relation(F) = %v, %v", got, err)
	}
	got, err = c.Relation("f")
	if err != nil || got != h {
		t.Errorf("Relation(f) = %v, %v", got, err)
	}
}

func TestCreateDuplicateRelation(t *testing.T) {
	c := newCatalog(t)
	schema := frel.NewSchema("F", frel.Attribute{Name: "X", Kind: frel.KindNumber})
	if _, err := c.CreateRelation("F", schema); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateRelation("f", schema); err == nil {
		t.Errorf("duplicate create: want error")
	}
}

func TestUnknownRelation(t *testing.T) {
	c := newCatalog(t)
	if _, err := c.Relation("NOPE"); err == nil {
		t.Errorf("Relation(NOPE): want error")
	}
	if err := c.DropRelation("NOPE"); err == nil {
		t.Errorf("DropRelation(NOPE): want error")
	}
}

func TestDropRelation(t *testing.T) {
	c := newCatalog(t)
	schema := frel.NewSchema("F", frel.Attribute{Name: "X", Kind: frel.KindNumber})
	if _, err := c.CreateRelation("F", schema); err != nil {
		t.Fatal(err)
	}
	if err := c.DropRelation("F"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Relation("F"); err == nil {
		t.Errorf("relation still present after drop")
	}
	// Name is reusable.
	if _, err := c.CreateRelation("F", schema); err != nil {
		t.Errorf("recreate after drop: %v", err)
	}
}

func TestRelationsSorted(t *testing.T) {
	c := newCatalog(t)
	schema := frel.NewSchema("x", frel.Attribute{Name: "X", Kind: frel.KindNumber})
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if _, err := c.CreateRelation(n, schema); err != nil {
			t.Fatal(err)
		}
	}
	got := c.Relations()
	want := []string{"ALPHA", "MID", "ZETA"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Relations = %v, want %v", got, want)
		}
	}
}

func TestDefineTerm(t *testing.T) {
	c := newCatalog(t)
	if err := c.DefineTerm("Medium Young", fuzzy.Trap(20, 25, 30, 35)); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Term("medium young")
	if !ok || got != fuzzy.Trap(20, 25, 30, 35) {
		t.Errorf("Term = %v, %v", got, ok)
	}
	// Case-insensitive, trimmed.
	if _, ok := c.Term("  MEDIUM YOUNG "); !ok {
		t.Errorf("case-insensitive term lookup failed")
	}
	if _, ok := c.Term("nope"); ok {
		t.Errorf("unknown term resolved")
	}
}

func TestDefineTermInvalid(t *testing.T) {
	c := newCatalog(t)
	if err := c.DefineTerm("bad", fuzzy.Trapezoid{A: 5, B: 1, C: 2, D: 3}); err == nil {
		t.Errorf("invalid distribution: want error")
	}
}

func TestTermsSorted(t *testing.T) {
	c := newCatalog(t)
	c.DefinePaperTerms()
	terms := c.Terms()
	if len(terms) != len(PaperTerms()) {
		t.Fatalf("Terms = %d entries, want %d", len(terms), len(PaperTerms()))
	}
	for i := 1; i < len(terms); i++ {
		if terms[i-1] >= terms[i] {
			t.Errorf("Terms not sorted at %d: %q >= %q", i, terms[i-1], terms[i])
		}
	}
}

// TestPaperTermsReproduceDegrees verifies that the reconstructed
// dictionary yields exactly the satisfaction degrees the paper works out.
func TestPaperTermsReproduceDegrees(t *testing.T) {
	terms := PaperTerms()
	deg := func(a, b string) float64 { return fuzzy.Eq(terms[a], terms[b]) }

	// Fig. 1 / Section 2.2.
	if got := fuzzy.Eq(fuzzy.Crisp(24), terms["medium young"]); !eq(got, 0.8) {
		t.Errorf("d(24 = medium young) = %g, want 0.8", got)
	}
	if got := deg("about 35", "medium young"); !eq(got, 0.5) {
		t.Errorf("d(about 35 = medium young) = %g, want 0.5", got)
	}

	// Example 4.1, inner block: degrees of T.
	if got := deg("about 50", "middle age"); !eq(got, 0.4) {
		t.Errorf("d(about 50 = middle age) = %g, want 0.4", got)
	}
	if got := deg("middle age", "middle age"); !eq(got, 1) {
		t.Errorf("d(middle age = middle age) = %g, want 1", got)
	}
	if got := fuzzy.Eq(fuzzy.Crisp(24), terms["middle age"]); !eq(got, 0) {
		t.Errorf("d(24 = middle age) = %g, want 0", got)
	}
	if got := deg("about 29", "middle age"); !eq(got, 0) {
		t.Errorf("d(about 29 = middle age) = %g, want 0", got)
	}

	// Example 4.1, outer block.
	if got := deg("middle age", "medium young"); !eq(got, 0.7) {
		t.Errorf("d(middle age = medium young) = %g, want 0.7", got)
	}
	if got := deg("about 50", "medium young"); !eq(got, 0) {
		t.Errorf("d(about 50 = medium young) = %g, want 0", got)
	}
	if got := deg("about 60k", "high"); !eq(got, 0.3) {
		t.Errorf("d(about 60K = high) = %g, want 0.3", got)
	}
	if got := deg("medium high", "high"); !eq(got, 0.7) {
		t.Errorf("d(medium high = high) = %g, want 0.7", got)
	}
	if got := deg("about 60k", "about 40k"); got > 0.3 {
		t.Errorf("d(about 60K = about 40K) = %g, want <= 0.3", got)
	}
	if got := deg("medium high", "about 40k"); got != 0 {
		t.Errorf("d(medium high = about 40K) = %g, want 0", got)
	}
}

func eq(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }
