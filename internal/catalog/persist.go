package catalog

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/frel"
	"repro/internal/fuzzy"
	"repro/internal/storage"
)

// The catalog persists itself as catalog.json in the managed directory:
// relation schemas (the heap files carry only tuples) and the
// linguistic-term dictionary. Open restores a previously saved database;
// Save is called by sessions after DDL and term definitions.

// catalogFile is the JSON layout of catalog.json.
type catalogFile struct {
	Relations []relationMeta        `json:"relations"`
	Indexes   []indexMeta           `json:"indexes,omitempty"`
	Terms     map[string][4]float64 `json:"terms"`
}

type indexMeta struct {
	Name string `json:"name"`
	Rel  string `json:"rel"`
	Attr string `json:"attr"`
}

type relationMeta struct {
	Name  string     `json:"name"`
	Pad   int        `json:"pad,omitempty"`
	Attrs []attrMeta `json:"attrs"`
}

type attrMeta struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// fileName is the catalog's file name within the managed directory.
const fileName = "catalog.json"

// Save writes the catalog (schemas and terms) to catalog.json in the
// manager's directory and flushes every relation's pages to disk, so that
// Open can restore the database later.
func (c *Catalog) Save() error {
	var cf catalogFile
	// Snapshot the maps, then do the I/O without holding the lock.
	c.mu.RLock()
	cf.Terms = make(map[string][4]float64, len(c.terms))
	for name, t := range c.terms {
		cf.Terms[name] = [4]float64{t.A, t.B, t.C, t.D}
	}
	heaps := make(map[string]*storage.HeapFile, len(c.relations))
	names := make([]string, 0, len(c.relations))
	for name, h := range c.relations {
		heaps[name] = h
		names = append(names, name)
	}
	c.mu.RUnlock()
	sort.Strings(names)
	for _, name := range names {
		h := heaps[name]
		if err := h.Flush(); err != nil {
			return err
		}
		meta := relationMeta{Name: name, Pad: h.Schema.Pad}
		for _, a := range h.Schema.Attrs {
			meta.Attrs = append(meta.Attrs, attrMeta{Name: a.Name, Kind: a.Kind.String()})
		}
		cf.Relations = append(cf.Relations, meta)
	}
	c.mu.RLock()
	ixNames := make([]string, 0, len(c.indexes))
	for n := range c.indexes {
		ixNames = append(ixNames, n)
	}
	ixs := make(map[string]*Index, len(c.indexes))
	for n, ix := range c.indexes {
		ixs[n] = ix
	}
	c.mu.RUnlock()
	sort.Strings(ixNames)
	for _, n := range ixNames {
		ix := ixs[n]
		if err := ix.heap.Flush(); err != nil {
			return err
		}
		cf.Indexes = append(cf.Indexes, indexMeta{Name: ix.Name, Rel: ix.Rel, Attr: ix.Attr})
	}
	data, err := json.MarshalIndent(&cf, "", "  ")
	if err != nil {
		return fmt.Errorf("catalog: marshal: %w", err)
	}
	// Write-then-rename through the manager's file system, fsyncing the
	// temporary file and the directory: a crash leaves either the old
	// catalog or the new one, never a torn mixture.
	fs := c.mgr.FS()
	path := filepath.Join(c.mgr.Dir(), fileName)
	tmp := path + ".tmp"
	f, err := fs.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("catalog: write: %w", err)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		f.Close()
		return fmt.Errorf("catalog: write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("catalog: write: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("catalog: write: %w", err)
	}
	if err := fs.Rename(tmp, path); err != nil {
		return fmt.Errorf("catalog: write: %w", err)
	}
	if err := fs.SyncDir(c.mgr.Dir()); err != nil {
		return fmt.Errorf("catalog: write: %w", err)
	}
	return nil
}

// Open restores the catalog saved in the manager's directory. If no
// catalog file exists, it returns a fresh empty catalog and fresh = true.
func Open(mgr *storage.Manager) (c *Catalog, fresh bool, err error) {
	data, err := readFileFS(mgr.FS(), filepath.Join(mgr.Dir(), fileName))
	if os.IsNotExist(err) {
		return New(mgr), true, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("catalog: read: %w", err)
	}
	var cf catalogFile
	if err := json.Unmarshal(data, &cf); err != nil {
		return nil, false, fmt.Errorf("catalog: parse %s: %w", fileName, err)
	}
	c = New(mgr)
	for name, corners := range cf.Terms {
		t, err := fuzzy.NewTrap(corners[0], corners[1], corners[2], corners[3])
		if err != nil {
			return nil, false, fmt.Errorf("catalog: term %q: %w", name, err)
		}
		c.terms[termKey(name)] = t
	}
	for _, meta := range cf.Relations {
		schema := &frel.Schema{Name: relKey(meta.Name), Pad: meta.Pad}
		for _, a := range meta.Attrs {
			var kind frel.Kind
			switch a.Kind {
			case frel.KindNumber.String():
				kind = frel.KindNumber
			case frel.KindString.String():
				kind = frel.KindString
			default:
				return nil, false, fmt.Errorf("catalog: relation %q: unknown attribute kind %q", meta.Name, a.Kind)
			}
			schema.Attrs = append(schema.Attrs, frel.Attribute{Name: a.Name, Kind: kind})
		}
		h, err := mgr.OpenHeap(strings.ToLower(relKey(meta.Name)), schema)
		if err != nil {
			return nil, false, fmt.Errorf("catalog: reopen relation %q: %w", meta.Name, err)
		}
		c.relations[relKey(meta.Name)] = h
	}
	if err := c.openIndexes(cf.Indexes); err != nil {
		return nil, false, err
	}
	return c, false, nil
}

// openIndexes restores the saved order indexes. Each entry file is
// reopened and validated against its base relation: the entry count must
// match the base tuple count (bulk loaders that bypass maintenance leave
// them unequal), otherwise — or when the file is missing — the index is
// rebuilt from scratch. idx-*.heap files not referenced by the catalog
// (orphans of a crash between index build and catalog save) are deleted.
// Any disk mutation is sealed with a checkpoint so the write-ahead log
// never references a removed or superseded file.
func (c *Catalog) openIndexes(metas []indexMeta) error {
	referenced := make(map[string]bool, len(metas))
	mutated := false
	for _, m := range metas {
		key := relKey(m.Name)
		c.mu.RLock()
		h := c.relations[relKey(m.Rel)]
		c.mu.RUnlock()
		if h == nil {
			return fmt.Errorf("catalog: index %q references unknown relation %q", m.Name, m.Rel)
		}
		pos, err := h.Schema.Resolve(m.Attr)
		if err != nil {
			return fmt.Errorf("catalog: index %q: %w", m.Name, err)
		}
		ix := &Index{Name: m.Name, Rel: relKey(m.Rel), Attr: h.Schema.Attrs[pos].Name, pos: pos}
		referenced[indexHeapName(ix.Rel, ix.Attr)+".heap"] = true
		ih, err := c.mgr.OpenHeap(indexHeapName(ix.Rel, ix.Attr), storage.IndexSchema())
		if err == nil && ih.NumTuples() == h.NumTuples() {
			ix.heap = ih
		} else {
			if err == nil {
				if derr := ih.Drop(); derr != nil {
					return derr
				}
			}
			if err := c.buildIndex(ix, h); err != nil {
				return err
			}
			mutated = true
		}
		c.mu.Lock()
		c.indexes[key] = ix
		c.mu.Unlock()
	}
	names, err := c.mgr.FS().ReadDir(c.mgr.Dir())
	if err != nil {
		return err
	}
	for _, n := range names {
		if strings.HasPrefix(n, "idx-") && strings.HasSuffix(n, ".heap") && !referenced[n] {
			if err := c.mgr.FS().Remove(filepath.Join(c.mgr.Dir(), n)); err != nil {
				return err
			}
			mutated = true
		}
	}
	if mutated && c.mgr.WALEnabled() {
		return c.mgr.Checkpoint()
	}
	return nil
}

// readFileFS reads the whole file at path through fs.
func readFileFS(fs storage.FS, path string) ([]byte, error) {
	f, err := fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	data := make([]byte, size)
	if size > 0 {
		if n, err := f.ReadAt(data, 0); int64(n) < size {
			return nil, err
		}
	}
	return data, nil
}
