// Package csvio imports and exports fuzzy relations as CSV files, so data
// can move between the fuzzy database and ordinary tools.
//
// Layout: one header row with the attribute names followed by the
// membership-degree column D; then one row per tuple. Numeric cells
// render crisp values as plain numbers and possibility distributions as
// TRAP(a,b,c,d); on import a numeric cell may also be TRI/ABOUT/INTERVAL
// or a linguistic term resolved through a dictionary.
package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/frel"
	"repro/internal/fsql"
	"repro/internal/fuzzy"
)

// TermResolver resolves linguistic terms during import; it may be nil.
type TermResolver func(name string) (fuzzy.Trapezoid, bool)

// Export writes the relation to w as CSV.
func Export(w io.Writer, rel *frel.Relation) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(rel.Schema.Attrs)+1)
	for _, a := range rel.Schema.Attrs {
		header = append(header, a.Name)
	}
	header = append(header, "D")
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for _, t := range rel.Tuples {
		for i, v := range t.Values {
			if v.Kind == frel.KindString {
				row[i] = v.Str
			} else {
				row[i] = formatNum(v.Num)
			}
		}
		row[len(row)-1] = strconv.FormatFloat(t.D, 'g', -1, 64)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatNum(t fuzzy.Trapezoid) string {
	if t.IsCrisp() {
		return strconv.FormatFloat(t.A, 'g', -1, 64)
	}
	return fmt.Sprintf("TRAP(%s,%s,%s,%s)",
		strconv.FormatFloat(t.A, 'g', -1, 64),
		strconv.FormatFloat(t.B, 'g', -1, 64),
		strconv.FormatFloat(t.C, 'g', -1, 64),
		strconv.FormatFloat(t.D, 'g', -1, 64))
}

// Import reads CSV from r into a relation with the given schema. The
// header row is required; its columns must match the schema's attribute
// names (case-insensitively), optionally followed by a final D column.
// Numeric cells accept numbers, fuzzy literals, and — with a resolver —
// linguistic terms. A missing D column (or empty cell) defaults to 1.
func Import(r io.Reader, schema *frel.Schema, terms TermResolver) (*frel.Relation, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("csvio: read header: %w", err)
	}
	nAttrs := len(schema.Attrs)
	hasD := false
	switch len(header) {
	case nAttrs:
	case nAttrs + 1:
		if !equalFold(header[nAttrs], "D") {
			return nil, fmt.Errorf("csvio: last header column is %q, want D", header[nAttrs])
		}
		hasD = true
	default:
		return nil, fmt.Errorf("csvio: header has %d columns, schema has %d attributes", len(header), nAttrs)
	}
	for i, a := range schema.Attrs {
		if !equalFold(header[i], a.Name) {
			return nil, fmt.Errorf("csvio: header column %d is %q, schema attribute is %q", i, header[i], a.Name)
		}
	}

	rel := frel.NewRelation(schema)
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return rel, nil
		}
		if err != nil {
			return nil, fmt.Errorf("csvio: line %d: %w", line+1, err)
		}
		line++
		if len(rec) != len(header) {
			return nil, fmt.Errorf("csvio: line %d has %d cells, want %d", line, len(rec), len(header))
		}
		vals := make([]frel.Value, nAttrs)
		for i, a := range schema.Attrs {
			v, err := parseCell(rec[i], a.Kind, terms)
			if err != nil {
				return nil, fmt.Errorf("csvio: line %d, column %s: %w", line, a.Name, err)
			}
			vals[i] = v
		}
		d := 1.0
		if hasD && rec[nAttrs] != "" {
			d, err = strconv.ParseFloat(rec[nAttrs], 64)
			if err != nil || d <= 0 || d > 1 {
				return nil, fmt.Errorf("csvio: line %d: bad degree %q", line, rec[nAttrs])
			}
		}
		rel.Append(frel.NewTuple(d, vals...))
	}
}

func parseCell(cell string, kind frel.Kind, terms TermResolver) (frel.Value, error) {
	if kind == frel.KindString {
		return frel.Str(cell), nil
	}
	opd, err := fsql.ParseLiteral(cell)
	if err != nil {
		return frel.Value{}, err
	}
	switch opd.Kind {
	case fsql.OpdNumber:
		return frel.Num(opd.Num), nil
	case fsql.OpdString:
		if terms != nil {
			if t, ok := terms(opd.Str); ok {
				return frel.Num(t), nil
			}
		}
		return frel.Value{}, fmt.Errorf("unknown linguistic term %q", opd.Str)
	default:
		return frel.Value{}, fmt.Errorf("cell %q is not a value", cell)
	}
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}
