package csvio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/frel"
	"repro/internal/fuzzy"
)

func sampleSchema() *frel.Schema {
	return frel.NewSchema("F",
		frel.Attribute{Name: "NAME", Kind: frel.KindString},
		frel.Attribute{Name: "AGE", Kind: frel.KindNumber},
	)
}

func TestExportImportRoundTrip(t *testing.T) {
	rel := frel.NewRelation(sampleSchema())
	rel.Append(
		frel.NewTuple(1, frel.Str("Ann"), frel.Crisp(24)),
		frel.NewTuple(0.5, frel.Str("Bob, Jr."), frel.Num(fuzzy.Trap(30, 35, 35, 40))),
		frel.NewTuple(0.25, frel.Str(`quote " inside`), frel.Num(fuzzy.Trap(20, 25, 30, 35))),
	)
	var buf bytes.Buffer
	if err := Export(&buf, rel); err != nil {
		t.Fatal(err)
	}
	back, err := Import(&buf, sampleSchema(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(rel, 1e-12) {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", back, rel)
	}
}

func TestImportTermsAndLiterals(t *testing.T) {
	csvText := `NAME,AGE,D
Ann,medium young,1
Bea,"TRI(30,35,40)",0.5
Cal,44,
`
	terms := catalog.PaperTerms()
	rel, err := Import(strings.NewReader(csvText), sampleSchema(), func(n string) (fuzzy.Trapezoid, bool) {
		v, ok := terms[strings.ToLower(n)]
		return v, ok
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 {
		t.Fatalf("len = %d", rel.Len())
	}
	if rel.Tuples[0].Values[1].Num != fuzzy.Trap(20, 25, 30, 35) {
		t.Errorf("term cell = %v", rel.Tuples[0].Values[1])
	}
	if rel.Tuples[1].Values[1].Num != fuzzy.Tri(30, 35, 40) || rel.Tuples[1].D != 0.5 {
		t.Errorf("literal cell = %v", rel.Tuples[1])
	}
	// Missing degree defaults to 1.
	if rel.Tuples[2].D != 1 || rel.Tuples[2].Values[1].Num != fuzzy.Crisp(44) {
		t.Errorf("default degree = %v", rel.Tuples[2])
	}
}

func TestImportWithoutDColumn(t *testing.T) {
	csvText := "NAME,AGE\nAnn,24\n"
	rel, err := Import(strings.NewReader(csvText), sampleSchema(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || rel.Tuples[0].D != 1 {
		t.Errorf("rel = %v", rel.Tuples)
	}
}

func TestImportErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"bad header count", "NAME\nAnn\n"},
		{"bad header name", "NAME,YEARS,D\nAnn,24,1\n"},
		{"bad last header", "NAME,AGE,DEGREE\nAnn,24,1\n"},
		{"unknown term", "NAME,AGE\nAnn,superb\n"},
		{"bad degree", "NAME,AGE,D\nAnn,24,2\n"},
		{"zero degree", "NAME,AGE,D\nAnn,24,0\n"},
		{"bad fuzzy literal", "NAME,AGE\nAnn,\"TRAP(4,3,2,1)\"\n"},
		{"short row", "NAME,AGE,D\nAnn\n"},
	}
	for _, tc := range cases {
		if _, err := Import(strings.NewReader(tc.text), sampleSchema(), nil); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

func TestExportQuotesCommas(t *testing.T) {
	rel := frel.NewRelation(sampleSchema())
	rel.Append(frel.NewTuple(1, frel.Str("x"), frel.Num(fuzzy.Trap(1, 2, 3, 4))))
	var buf bytes.Buffer
	if err := Export(&buf, rel); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"TRAP(1,2,3,4)"`) {
		t.Errorf("fuzzy cell not quoted: %q", buf.String())
	}
}
