package exec

import (
	"context"

	"repro/internal/frel"
)

// ctxCheckEvery is how many tuples a cancellable iterator passes through
// between context checks. Checking per tuple would put a synchronized load
// on the hot path; amortizing it keeps cancellation latency to a few
// thousand tuples while costing effectively nothing.
const ctxCheckEvery = 256

// WithContext wraps src so that every iterator it opens periodically
// observes ctx: once the context is cancelled, Next returns false and Err
// reports the context's error. Long-running operators (nested-loop joins,
// sorts, naive subquery evaluation) drive their inputs through these
// leaf iterators, so cancelling the context aborts a whole evaluation.
// A nil or never-cancellable context returns src unchanged.
func WithContext(ctx context.Context, src Source) Source {
	if ctx == nil || ctx.Done() == nil {
		return src
	}
	return &cancelSource{src: src, ctx: ctx}
}

type cancelSource struct {
	src Source
	ctx context.Context
}

func (s *cancelSource) Schema() *frel.Schema { return s.src.Schema() }

func (s *cancelSource) Open() (Iterator, error) {
	if err := s.ctx.Err(); err != nil {
		return nil, err
	}
	it, err := s.src.Open()
	if err != nil {
		return nil, err
	}
	return &cancelIterator{in: it, ctx: s.ctx}, nil
}

// OpenBatch implements BatchSource: the context is observed once per
// batch, which is coarser than ctxCheckEvery but still bounds
// cancellation latency to one batch of work.
func (s *cancelSource) OpenBatch() (BatchIterator, error) {
	if err := s.ctx.Err(); err != nil {
		return nil, err
	}
	it, err := OpenBatches(s.src)
	if err != nil {
		return nil, err
	}
	return &cancelBatchIterator{in: it, ctx: s.ctx}, nil
}

type cancelBatchIterator struct {
	in    BatchIterator
	ctx   context.Context
	err   error
	found bool
}

func (it *cancelBatchIterator) NextBatch() ([]frel.Tuple, bool) {
	if it.found {
		return nil, false
	}
	if err := it.ctx.Err(); err != nil {
		it.err = err
		it.found = true
		return nil, false
	}
	return it.in.NextBatch()
}

func (it *cancelBatchIterator) Keys() []frel.SupportKey { return batchKeys(it.in) }

func (it *cancelBatchIterator) Err() error {
	if it.err != nil {
		return it.err
	}
	return it.in.Err()
}

func (it *cancelBatchIterator) Close() { it.in.Close() }

type cancelIterator struct {
	in    Iterator
	ctx   context.Context
	n     int
	err   error
	found bool // cancellation observed
}

func (it *cancelIterator) Next() (frel.Tuple, bool) {
	if it.found {
		return frel.Tuple{}, false
	}
	if it.n%ctxCheckEvery == 0 {
		if err := it.ctx.Err(); err != nil {
			it.err = err
			it.found = true
			return frel.Tuple{}, false
		}
	}
	it.n++
	return it.in.Next()
}

func (it *cancelIterator) Err() error {
	if it.err != nil {
		return it.err
	}
	return it.in.Err()
}

func (it *cancelIterator) Close() { it.in.Close() }
