package exec

import (
	"math/rand"
	"testing"

	"repro/internal/frel"
	"repro/internal/fuzzy"
	"repro/internal/storage"
)

// batchDrain drains src through the batch interface, copying every batch
// out (the reuse contract says batches die at the next NextBatch call).
func batchDrain(t testing.TB, src Source) []frel.Tuple {
	t.Helper()
	it, err := OpenBatches(src)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var out []frel.Tuple
	for {
		b, ok := it.NextBatch()
		if !ok {
			break
		}
		out = append(out, b...)
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// tupleDrain drains src strictly tuple-at-a-time.
func tupleDrain(t testing.TB, src Source) []frel.Tuple {
	t.Helper()
	it, err := src.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var out []frel.Tuple
	for {
		tup, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, tup)
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// sameSequence requires the two drains to agree tuple for tuple, in
// order, values and degrees both.
func sameSequence(t *testing.T, name string, got, want []frel.Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: batch drain produced %d tuples, tuple drain %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i].Key() != want[i].Key() || got[i].D != want[i].D {
			t.Fatalf("%s: tuple %d differs: batch %v (d=%g) vs tuple %v (d=%g)",
				name, i, got[i].Values, got[i].D, want[i].Values, want[i].D)
		}
	}
}

// sameCounters requires the two executions to have recorded identical
// work counters.
func sameCounters(t *testing.T, name string, batch, tuple *Counters) {
	t.Helper()
	if b, w := batch.Comparisons.Load(), tuple.Comparisons.Load(); b != w {
		t.Errorf("%s: Comparisons %d (batch) vs %d (tuple)", name, b, w)
	}
	if b, w := batch.DegreeEvals.Load(), tuple.DegreeEvals.Load(); b != w {
		t.Errorf("%s: DegreeEvals %d (batch) vs %d (tuple)", name, b, w)
	}
	if b, w := batch.TuplesOut.Load(), tuple.TuplesOut.Load(); b != w {
		t.Errorf("%s: TuplesOut %d (batch) vs %d (tuple)", name, b, w)
	}
}

// sameStats requires identical OpStats contents (the EXPLAIN ANALYZE
// contract: batching must not change any reported counter).
func sameStats(t *testing.T, name string, batch, tuple *OpStats) {
	t.Helper()
	b, w := batch.Snapshot(), tuple.Snapshot()
	if b.Comparisons != w.Comparisons || b.DegreeEvals != w.DegreeEvals {
		t.Errorf("%s: stats cmp/deg %d/%d (batch) vs %d/%d (tuple)",
			name, b.Comparisons, b.DegreeEvals, w.Comparisons, w.DegreeEvals)
	}
	if b.RngCount != w.RngCount || b.RngMin != w.RngMin || b.RngMax != w.RngMax ||
		b.RngAvg != w.RngAvg {
		t.Errorf("%s: stats Rng n=%d min=%d max=%d avg=%g (batch) vs n=%d min=%d max=%d avg=%g (tuple)",
			name, b.RngCount, b.RngMin, b.RngMax, b.RngAvg, w.RngCount, w.RngMin, w.RngMax, w.RngAvg)
	}
}

// TestBatchMergeJoinMatchesTuple cross-checks the batched merge-join
// (crisp-equality and band forms) against the tuple-at-a-time operator on
// random inputs: same output sequence, same counters, same stats.
func TestBatchMergeJoinMatchesTuple(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	tols := []fuzzy.Trapezoid{fuzzy.Crisp(0), fuzzy.Tri(-3, 0, 3), fuzzy.Trap(-5, -2, 2, 5)}
	for trial := 0; trial < 15; trial++ {
		r := randomRel("R", 50+rng.Intn(80), 60, 6, rng)
		s := randomRel("S", 50+rng.Intn(80), 60, 6, rng)
		tol := tols[trial%len(tols)]
		build := func(c *Counters, st *OpStats) *MergeJoin {
			mj, err := NewBandMergeJoin(sortedSource(t, r, "X"), sortedSource(t, s, "X"),
				"R.X", "S.X", tol, nil, c)
			if err != nil {
				t.Fatal(err)
			}
			mj.Stats = st
			return mj
		}
		var cb, ct Counters
		sb, st := NewOpStats("merge-join", ""), NewOpStats("merge-join", "")
		got := batchDrain(t, build(&cb, sb))
		want := tupleDrain(t, build(&ct, st))
		sameSequence(t, "merge-join", got, want)
		sameCounters(t, "merge-join", &cb, &ct)
		sameStats(t, "merge-join", sb, st)
	}
}

// TestBatchMergeJoinExtraPredicate covers the extra-conjunct arm (degree
// evaluations for the extra predicate are charged identically).
func TestBatchMergeJoinExtraPredicate(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	r := randomRel("R", 90, 40, 4, rng)
	s := randomRel("S", 90, 40, 4, rng)
	extra := func(l, m frel.Tuple) float64 {
		if int(l.Values[0].Num.B)%2 == int(m.Values[0].Num.B)%2 {
			return 0.7
		}
		return 0
	}
	build := func(c *Counters, st *OpStats) *MergeJoin {
		mj, err := NewMergeJoin(sortedSource(t, r, "X"), sortedSource(t, s, "X"),
			"R.X", "S.X", extra, c)
		if err != nil {
			t.Fatal(err)
		}
		mj.Stats = st
		return mj
	}
	var cb, ct Counters
	sb, st := NewOpStats("merge-join", ""), NewOpStats("merge-join", "")
	sameSequence(t, "merge-join extra", batchDrain(t, build(&cb, sb)), tupleDrain(t, build(&ct, st)))
	sameCounters(t, "merge-join extra", &cb, &ct)
	sameStats(t, "merge-join extra", sb, st)
}

// TestBatchMergeAntiMinMatchesTuple cross-checks the batched merge
// anti-join.
func TestBatchMergeAntiMinMatchesTuple(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	penalty := func(l, m frel.Tuple) float64 {
		return 1 - fuzzy.Eq(l.Values[1].Num, m.Values[1].Num)
	}
	for trial := 0; trial < 10; trial++ {
		r := randomRel("R", 60, 50, 5, rng)
		s := randomRel("S", 60, 50, 5, rng)
		build := func(c *Counters, st *OpStats) *MergeAntiMin {
			am, err := NewMergeAntiMin(sortedSource(t, r, "X"), sortedSource(t, s, "X"),
				"R.X", "S.X", penalty, c)
			if err != nil {
				t.Fatal(err)
			}
			am.Stats = st
			return am
		}
		var cb, ct Counters
		sb, st := NewOpStats("merge-anti-join", ""), NewOpStats("merge-anti-join", "")
		sameSequence(t, "anti-min", batchDrain(t, build(&cb, sb)), tupleDrain(t, build(&ct, st)))
		sameCounters(t, "anti-min", &cb, &ct)
		sameStats(t, "anti-min", sb, st)
	}
}

// TestBatchGroupAggJoinMatchesTuple cross-checks the batched sorted
// group-aggregate join for every aggregate and comparison operator.
func TestBatchGroupAggJoinMatchesTuple(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	aggs := []fuzzy.AggFunc{fuzzy.AggCount, fuzzy.AggSum, fuzzy.AggAvg, fuzzy.AggMin, fuzzy.AggMax}
	for trial := 0; trial < 6; trial++ {
		r, s := randomCorrelated(rng, 30, 45)
		for _, agg := range aggs {
			for _, op2 := range []fuzzy.Op{fuzzy.OpEq, fuzzy.OpGt} {
				build := func(c *Counters, st *OpStats) *GroupAggJoin {
					j, err := NewGroupAggJoin(
						totalSortedSource(t, r, "U"), sortedSource(t, s, "V"),
						"R.U", "S.V", op2, "S.Z", agg, "R.Y", fuzzy.OpGt, c)
					if err != nil {
						t.Fatal(err)
					}
					j.Stats = st
					return j
				}
				var cb, ct Counters
				sb, st := NewOpStats("group-agg-join", ""), NewOpStats("group-agg-join", "")
				sameSequence(t, "group-agg", batchDrain(t, build(&cb, sb)), tupleDrain(t, build(&ct, st)))
				sameCounters(t, "group-agg", &cb, &ct)
				sameStats(t, "group-agg", sb, st)
			}
		}
	}
}

// TestBatchParallelMergeJoinMatchesTuple cross-checks the batched
// partitioned merge-join: the batch path partitions on the precomputed
// key columns, the tuple path on Support() calls — cut points and
// therefore results and stats must be identical.
func TestBatchParallelMergeJoinMatchesTuple(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, workers := range []int{2, 4} {
		r := randomRel("R", 300, 200, 4, rng)
		s := randomRel("S", 300, 200, 4, rng)
		build := func(c *Counters, st *OpStats) *ParallelMergeJoin {
			pj, err := NewParallelMergeJoin(sortedSource(t, r, "X"), sortedSource(t, s, "X"),
				"R.X", "S.X", fuzzy.Crisp(0), nil, c, workers)
			if err != nil {
				t.Fatal(err)
			}
			pj.Stats = st
			return pj
		}
		var cb, ct Counters
		sb, st := NewOpStats("merge-join", ""), NewOpStats("merge-join", "")
		got := batchDrain(t, build(&cb, sb))
		want := tupleDrain(t, build(&ct, st))
		// Partitions may emit in any worker-completion order in the tuple
		// path; both paths emit partitions in order, so sequences match.
		sameSequence(t, "parallel merge-join", got, want)
		sameStats(t, "parallel merge-join", sb, st)
	}
}

// TestBatchScanFilterProjectMatchesTuple covers the scan, filter,
// threshold and projection operators as one pipeline.
func TestBatchScanFilterProjectMatchesTuple(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := randomRel("R", 2500, 100, 5, rng) // > 2 batches
	for _, dedup := range []bool{false, true} {
		build := func() Source {
			f := NewFilter(NewMemSource(r), func(tp frel.Tuple) float64 {
				return fuzzy.Degree(fuzzy.OpGt, tp.Values[1].Num, fuzzy.Crisp(30))
			})
			th := NewThreshold(f, 0.25)
			p, err := NewProject(th, []string{"R.X"}, dedup)
			if err != nil {
				t.Fatal(err)
			}
			return p
		}
		sameSequence(t, "scan-filter-project", batchDrain(t, build()), tupleDrain(t, build()))
	}
}

// TestBatchKeyedSourceServesKeys checks that a KeyedMemSource serves its
// key column batch-aligned, and that the keys match the tuples' actual
// supports.
func TestBatchKeyedSourceServesKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := randomRel("R", 2600, 100, 5, rng)
	xi, _ := r.Schema.Resolve("X")
	keys := frel.SupportKeys(r.Tuples, xi)
	it, err := NewKeyedMemSource(r, keys).OpenBatch()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	kit, ok := it.(KeyedBatchIterator)
	if !ok {
		t.Fatal("keyed source iterator does not serve keys")
	}
	seen := 0
	for {
		b, ok := it.NextBatch()
		if !ok {
			break
		}
		k := kit.Keys()
		if len(k) != len(b) {
			t.Fatalf("batch of %d tuples came with %d keys", len(b), len(k))
		}
		for i, tup := range b {
			lo, hi := tup.Values[xi].Num.Support()
			if k[i].Lo != lo || k[i].Hi != hi || k[i].D != tup.D {
				t.Fatalf("key %d = %+v, want lo=%g hi=%g d=%g", seen+i, k[i], lo, hi, tup.D)
			}
		}
		seen += len(b)
	}
	if seen != r.Len() {
		t.Fatalf("served %d tuples, want %d", seen, r.Len())
	}
}

// joinPipeline builds the scan -> filter -> merge-join pipeline the
// allocation tests and BenchmarkBatchVsTuple measure.
func joinPipeline(t testing.TB, r, s *frel.Relation) Source {
	t.Helper()
	pred := func(tp frel.Tuple) float64 { return 1 }
	mj, err := NewMergeJoin(NewFilter(NewMemSource(r), pred), NewFilter(NewMemSource(s), pred),
		"R.X", "S.X", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Project the answer attribute, the paper's answer-construction shape.
	proj, err := NewProject(mj, []string{"R.ID"}, false)
	if err != nil {
		t.Fatal(err)
	}
	return proj
}

// TestBatchProjectedJoinMatchesTuple checks the projection-pushdown path:
// a plain projection directly over a merge join fuses into the join's
// emit, and its batched output must match the tuple engine's
// join-then-project sequence exactly.
func TestBatchProjectedJoinMatchesTuple(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		r := sortedRel(t, randomRel("R", 300+rng.Intn(200), 800, 4, rng), "X")
		s := sortedRel(t, randomRel("S", 300+rng.Intn(200), 800, 4, rng), "X")
		got := batchDrain(t, joinPipeline(t, r, s))
		want := tupleDrain(t, joinPipeline(t, r, s))
		sameSequence(t, "projected join", got, want)
	}
}

// sortedRel returns a sorted clone (sorting once up front keeps the
// pipelines comparable and the allocation loop sort-free).
func sortedRel(t testing.TB, r *frel.Relation, attr string) *frel.Relation {
	t.Helper()
	c := r.Clone()
	if err := c.SortBy(attr); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestBatchPipelineAllocs is the allocation-regression test for the
// batched scan -> filter -> merge-join pipeline: amortized allocations
// must stay at arena level (a handful per batch), far below one
// allocation per tuple. Skipped under -race, which inflates allocation
// counts.
func TestBatchPipelineAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	rng := rand.New(rand.NewSource(17))
	r := sortedRel(t, randomRel("R", 4000, 3000, 2, rng), "X")
	s := sortedRel(t, randomRel("S", 4000, 3000, 2, rng), "X")

	var rows int
	allocs := testing.AllocsPerRun(5, func() {
		it, err := OpenBatches(joinPipeline(t, r, s))
		if err != nil {
			t.Fatal(err)
		}
		rows = 0
		for {
			b, ok := it.NextBatch()
			if !ok {
				break
			}
			rows += len(b)
		}
		it.Close()
	})
	if rows == 0 {
		t.Fatal("pipeline produced no tuples")
	}
	perTuple := allocs / float64(rows)
	// One output arena + one output batch per BatchSize tuples plus
	// fixed setup; 0.1 allocs/tuple is an order of magnitude of headroom.
	if perTuple > 0.1 {
		t.Errorf("batched pipeline allocates %.3f allocs/tuple (%.0f allocs for %d tuples), want <= 0.1",
			perTuple, allocs, rows)
	}
}

// BenchmarkBatchVsTuple measures the same merge-join pipeline under both
// engines; the batch mode's acceptance bar is >= 1.5x throughput and
// >= 5x fewer allocations per operation.
func BenchmarkBatchVsTuple(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	r := sortedRel(b, randomRel("R", 20000, 15000, 2, rng), "X")
	s := sortedRel(b, randomRel("S", 20000, 15000, 2, rng), "X")

	b.Run("tuple", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			it, err := joinPipeline(b, r, s).Open()
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			for {
				_, ok := it.Next()
				if !ok {
					break
				}
				n++
			}
			it.Close()
			if n == 0 {
				b.Fatal("no output")
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			it, err := OpenBatches(joinPipeline(b, r, s))
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			for {
				bt, ok := it.NextBatch()
				if !ok {
					break
				}
				n += len(bt)
			}
			it.Close()
			if n == 0 {
				b.Fatal("no output")
			}
		}
	})
}

// tupleOnlySource hides a source's OpenBatch so OpenBatches must fall
// back to the re-batching adapter shim.
type tupleOnlySource struct{ src Source }

func (s tupleOnlySource) Schema() *frel.Schema    { return s.src.Schema() }
func (s tupleOnlySource) Open() (Iterator, error) { return s.src.Open() }

// TestBatchAdapterShim checks that a tuple-only source still serves
// batches through the adapter, identically to its tuple scan.
func TestBatchAdapterShim(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	r := randomRel("R", 2500, 1000, 2, rng)
	got := batchDrain(t, tupleOnlySource{src: NewMemSource(r)})
	want := tupleDrain(t, NewMemSource(r))
	sameSequence(t, "adapter shim", got, want)
}

// TestBatchHeapSourceAndSpill round-trips a relation through SpillBatched
// and the batched heap scan: mem -> heap file -> batches must preserve
// the tuple sequence.
func TestBatchHeapSourceAndSpill(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	r := randomRel("R", 3000, 1000, 2, rng)
	mgr := storage.NewManager(t.TempDir(), 8)
	h, err := SpillBatched(mgr, NewMemSource(r))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Drop()
	got := batchDrain(t, NewHeapSource(h))
	want := tupleDrain(t, NewMemSource(r))
	sameSequence(t, "heap batches", got, want)
}
