//go:build !race

package exec

// raceEnabled reports whether the race detector is active; allocation
// tests skip under it (instrumentation inflates allocation counts).
const raceEnabled = false
