package exec

import (
	"repro/internal/frel"
	"repro/internal/kernel"
)

// FusedFilter is the compiled form of a filter chain (optionally ending in
// a WITH D >= z threshold): the whole chain runs as one kernel.Program
// loop over each batch, with no per-tuple closure dispatch and counters
// flushed once per batch. Outputs and degree-evaluation counts are
// identical to the equivalent chain of interpreted Filter operators
// followed by a Threshold — the kernel calls the same closed-form degree
// functions, and it evaluates later predicates only on tuples earlier ones
// kept, exactly like the chain does.
type FusedFilter struct {
	Src      Source
	Prog     *kernel.Program
	Z        float64 // WITH D >= Z threshold; 0 keeps every positive degree
	Counters *Counters

	// Stats, when non-nil, receives the kernel observability counters
	// (KernelTuples). The node's DegreeEvals stays untouched, matching the
	// interpreted filter node, so analyzed totals are kernel-invariant.
	Stats *OpStats
}

// NewFusedFilter builds a compiled filter chain over src.
func NewFusedFilter(src Source, prog *kernel.Program, z float64, counters *Counters) *FusedFilter {
	if counters == nil {
		counters = &Counters{}
	}
	return &FusedFilter{Src: src, Prog: prog, Z: z, Counters: counters}
}

// Schema implements Source.
func (f *FusedFilter) Schema() *frel.Schema { return f.Src.Schema() }

// Open implements Source with the tuple-at-a-time fallback loop.
func (f *FusedFilter) Open() (Iterator, error) {
	it, err := f.Src.Open()
	if err != nil {
		return nil, err
	}
	return &fusedIterator{f: f, in: it}, nil
}

type fusedIterator struct {
	f  *FusedFilter
	in Iterator
}

func (it *fusedIterator) Next() (frel.Tuple, bool) {
	for {
		t, ok := it.in.Next()
		if !ok {
			return frel.Tuple{}, false
		}
		d, evals := it.f.Prog.EvalTuple(t)
		it.f.Counters.DegreeEvals.Add(evals)
		it.f.Counters.KernelTuples.Add(1)
		if st := it.f.Stats; st != nil {
			st.KernelTuples.Add(1)
		}
		if d <= 0 || d < it.f.Z {
			continue
		}
		t.D = d
		return t, true
	}
}

func (it *fusedIterator) Err() error { return it.in.Err() }
func (it *fusedIterator) Close()     { it.in.Close() }

// OpenBatch implements BatchSource: the fused hot path.
func (f *FusedFilter) OpenBatch() (BatchIterator, error) {
	in, err := OpenBatches(f.Src)
	if err != nil {
		return nil, err
	}
	return &fusedBatchIterator{f: f, in: in}, nil
}

type fusedBatchIterator struct {
	f    *FusedFilter
	in   BatchIterator
	degs []float64
	out  []frel.Tuple
}

func (it *fusedBatchIterator) NextBatch() ([]frel.Tuple, bool) {
	f := it.f
	for {
		b, ok := it.in.NextBatch()
		if !ok {
			return nil, false
		}
		if cap(it.degs) < len(b) {
			it.degs = make([]float64, len(b))
		}
		degs := it.degs[:len(b)]
		evals := f.Prog.RunBatch(b, degs)
		if evals != 0 {
			f.Counters.DegreeEvals.Add(evals)
		}
		f.Counters.KernelTuples.Add(int64(len(b)))
		if st := f.Stats; st != nil {
			st.KernelTuples.Add(int64(len(b)))
		}
		// Pass-through fast path: a batch the kernel neither drops from
		// nor re-grades is served as-is (no copy).
		copying := false
		for i, t := range b {
			d := degs[i]
			if !copying {
				if d == t.D && d > 0 && d >= f.Z {
					continue
				}
				copying = true
				it.out = append(it.out[:0], b[:i]...)
			}
			if d <= 0 || d < f.Z {
				continue
			}
			t.D = d
			it.out = append(it.out, t)
		}
		if !copying {
			return b, true
		}
		if len(it.out) > 0 {
			return it.out, true
		}
	}
}

func (it *fusedBatchIterator) Err() error { return it.in.Err() }
func (it *fusedBatchIterator) Close()     { it.in.Close() }
