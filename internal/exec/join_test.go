package exec

import (
	"math/rand"
	"testing"

	"repro/internal/extsort"
	"repro/internal/frel"
	"repro/internal/fuzzy"
)

func xSchema(name string) *frel.Schema {
	return frel.NewSchema(name,
		frel.Attribute{Name: "ID", Kind: frel.KindNumber},
		frel.Attribute{Name: "X", Kind: frel.KindNumber},
	)
}

// randomRel builds a relation of n tuples with fuzzy X values drawn from
// [0, span] with widths in [0, maxWidth].
func randomRel(name string, n int, span, maxWidth float64, rng *rand.Rand) *frel.Relation {
	r := frel.NewRelation(xSchema(name))
	for i := 0; i < n; i++ {
		c := rng.Float64() * span
		wl := rng.Float64() * maxWidth
		wr := rng.Float64() * maxWidth
		var x fuzzy.Trapezoid
		switch rng.Intn(3) {
		case 0:
			x = fuzzy.Crisp(c)
		case 1:
			x = fuzzy.Tri(c-wl, c, c+wr)
		default:
			x = fuzzy.Trap(c-wl-wr, c-wl, c+wl, c+wl+wr)
		}
		d := rng.Float64()*0.9 + 0.1
		r.Append(frel.NewTuple(d, frel.Crisp(float64(i)), frel.Num(x)))
	}
	return r
}

func sortedSource(t *testing.T, r *frel.Relation, attr string) Source {
	t.Helper()
	c := r.Clone()
	less, err := extsort.ByAttr(c.Schema, attr)
	if err != nil {
		t.Fatal(err)
	}
	extsort.SortRelation(c, less)
	return NewMemSource(c)
}

// bruteJoin is the reference all-pairs fuzzy equi-join.
func bruteJoin(r, s *frel.Relation) *frel.Relation {
	out := frel.NewRelation(r.Schema.Join(s.Schema))
	ri, _ := r.Schema.Resolve("X")
	si, _ := s.Schema.Resolve("X")
	for _, l := range r.Tuples {
		for _, m := range s.Tuples {
			d := fuzzy.Min(l.D, m.D, fuzzy.Eq(l.Values[ri].Num, m.Values[si].Num))
			if d > 0 {
				out.Append(l.Concat(m, d))
			}
		}
	}
	return out
}

func TestMergeJoinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		r := randomRel("R", 40, 50, 3, rng)
		s := randomRel("S", 60, 50, 3, rng)
		want := bruteJoin(r, s)

		mj, err := NewMergeJoin(sortedSource(t, r, "X"), sortedSource(t, s, "X"), "R.X", "S.X", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := drain(t, mj)
		if !got.Equal(want, 1e-12) {
			t.Fatalf("trial %d: merge-join mismatch: got %d tuples, want %d", trial, got.Len(), want.Len())
		}
	}
}

func TestMergeJoinWideIntervalsDanglingTuples(t *testing.T) {
	// The Section 3 caveat: a huge interval keeps tuples in Rng(r) that do
	// not actually join. Results must still be exact.
	rng := rand.New(rand.NewSource(5))
	r := randomRel("R", 30, 40, 20, rng)
	s := randomRel("S", 30, 40, 20, rng)
	want := bruteJoin(r, s)
	mj, err := NewMergeJoin(sortedSource(t, r, "X"), sortedSource(t, s, "X"), "R.X", "S.X", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, mj)
	if !got.Equal(want, 1e-12) {
		t.Fatalf("wide-interval merge-join mismatch")
	}
}

func TestBlockNLJoinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	r := randomRel("R", 35, 50, 3, rng)
	s := randomRel("S", 45, 50, 3, rng)
	want := bruteJoin(r, s)
	ri, _ := r.Schema.Resolve("X")
	si, _ := s.Schema.Resolve("X")
	on := func(l, m frel.Tuple) float64 {
		return fuzzy.Eq(l.Values[ri].Num, m.Values[si].Num)
	}
	// Small block size to force several inner rescans.
	j := NewBlockNLJoin(NewMemSource(r), NewMemSource(s), on, 512, nil)
	got := drain(t, j)
	if !got.Equal(want, 1e-12) {
		t.Fatalf("nested-loop mismatch: got %d, want %d", got.Len(), want.Len())
	}
}

func TestMergeJoinExtraPredicate(t *testing.T) {
	r := frel.NewRelation(xSchema("R"))
	s := frel.NewRelation(xSchema("S"))
	r.Append(frel.NewTuple(1, frel.Crisp(1), frel.Crisp(10)))
	r.Append(frel.NewTuple(1, frel.Crisp(2), frel.Crisp(20)))
	s.Append(frel.NewTuple(1, frel.Crisp(1), frel.Crisp(10)))
	s.Append(frel.NewTuple(1, frel.Crisp(2), frel.Crisp(20)))
	// Join on X with the extra predicate R.ID = S.ID, as in Query J'.
	ri, _ := r.Schema.Resolve("ID")
	si, _ := s.Schema.Resolve("ID")
	extra := func(l, m frel.Tuple) float64 {
		return fuzzy.Eq(l.Values[ri].Num, m.Values[si].Num)
	}
	mj, err := NewMergeJoin(sortedSource(t, r, "X"), sortedSource(t, s, "X"), "R.X", "S.X", extra, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, mj)
	if got.Len() != 2 {
		t.Fatalf("len = %d, want 2 (extra predicate filters cross pairs)", got.Len())
	}
}

func TestMergeJoinRejectsUnsortedInputs(t *testing.T) {
	r := frel.NewRelation(xSchema("R"))
	r.Append(frel.NewTuple(1, frel.Crisp(1), frel.Crisp(10)))
	r.Append(frel.NewTuple(1, frel.Crisp(2), frel.Crisp(5))) // out of order
	s := frel.NewRelation(xSchema("S"))
	s.Append(frel.NewTuple(1, frel.Crisp(1), frel.Crisp(5)))
	s.Append(frel.NewTuple(1, frel.Crisp(2), frel.Crisp(10)))

	mj, err := NewMergeJoin(NewMemSource(r), NewMemSource(s), "R.X", "S.X", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(mj); err == nil {
		t.Errorf("unsorted outer: want error")
	}

	mj2, err := NewMergeJoin(NewMemSource(s), NewMemSource(r), "S.X", "R.X", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(mj2); err == nil {
		t.Errorf("unsorted inner: want error")
	}
}

func TestMergeJoinRejectsStringAttr(t *testing.T) {
	r := frel.NewRelation(frel.NewSchema("R", frel.Attribute{Name: "NAME", Kind: frel.KindString}))
	if _, err := NewMergeJoin(NewMemSource(r), NewMemSource(r.Clone()), "NAME", "NAME", nil, nil); err == nil {
		t.Errorf("string join attribute: want error")
	}
}

func TestMergeJoinCountsWork(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := randomRel("R", 50, 40, 2, rng)
	s := randomRel("S", 50, 40, 2, rng)
	var c Counters
	mj, err := NewMergeJoin(sortedSource(t, r, "X"), sortedSource(t, s, "X"), "R.X", "S.X", nil, &c)
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, mj)
	if c.DegreeEvals.Load() <= 0 || c.Comparisons.Load() < c.DegreeEvals.Load() {
		t.Errorf("counters: degreeEvals=%d comparisons=%d", c.DegreeEvals.Load(), c.Comparisons.Load())
	}
	if c.TuplesOut.Load() != int64(out.Len()) {
		t.Errorf("TuplesOut = %d, want %d", c.TuplesOut.Load(), out.Len())
	}
}

// TestMergeJoinExaminesOnlyRange: with narrow intervals the merge-join must
// perform far fewer pair examinations than the n*m of a nested loop.
func TestMergeJoinExaminesOnlyRange(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n = 400
	r := randomRel("R", n, 10000, 1, rng)
	s := randomRel("S", n, 10000, 1, rng)
	var c Counters
	mj, err := NewMergeJoin(sortedSource(t, r, "X"), sortedSource(t, s, "X"), "R.X", "S.X", nil, &c)
	if err != nil {
		t.Fatal(err)
	}
	drain(t, mj)
	if c.Comparisons.Load() > n*n/10 {
		t.Errorf("comparisons = %d, want far fewer than %d", c.Comparisons.Load(), n*n)
	}
}

func TestBlockNLJoinBlockCount(t *testing.T) {
	// The inner source must be re-opened once per outer block.
	r := relXY("R",
		frel.NewTuple(1, frel.Crisp(1), frel.Str("aaaaaaaaaaaaaaaaaaaaaaaaaaaaa")),
		frel.NewTuple(1, frel.Crisp(2), frel.Str("bbbbbbbbbbbbbbbbbbbbbbbbbbbbb")),
		frel.NewTuple(1, frel.Crisp(3), frel.Str("ccccccccccccccccccccccccccccc")),
	)
	s := relXY("S", frel.NewTuple(1, frel.Crisp(1), frel.Str("x")))
	inner := &countingSource{Source: NewMemSource(s)}
	j := NewBlockNLJoin(NewMemSource(r), inner, func(l, m frel.Tuple) float64 { return 1 }, 80, nil)
	out := drain(t, j)
	if out.Len() != 3 {
		t.Fatalf("len = %d", out.Len())
	}
	if inner.opens < 2 {
		t.Errorf("inner opened %d times, want one per block (>= 2)", inner.opens)
	}
}

type countingSource struct {
	Source
	opens int
}

func (c *countingSource) Open() (Iterator, error) {
	c.opens++
	return c.Source.Open()
}
