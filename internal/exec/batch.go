// Batch-at-a-time execution. Operators exchange slices of tuples instead
// of one tuple per virtual call, amortizing iterator overhead and letting
// producers reuse backing buffers.
//
// Buffer-reuse contract: the []frel.Tuple a NextBatch returns is only
// valid until the next NextBatch (or Close) call on the same iterator —
// producers may recycle the backing array. Consumers that retain tuples
// across calls must copy the tuple structs out first. The Values slices
// inside the tuples, however, are immutable and never recycled: operators
// that build new tuples (joins, projections) write into a fresh arena per
// output batch, so a retained tuple's values stay valid forever. Batches
// are read-only to consumers.
package exec

import (
	"repro/internal/frel"
	"repro/internal/storage"
)

// BatchSize is the target number of tuples per batch. Producers may return
// shorter (or, when replaying materialized results, longer) batches; only
// empty means exhausted.
const BatchSize = 1024

// BatchIterator yields tuples a batch at a time. After NextBatch returns
// ok == false the caller must check Err. See the package comment for the
// buffer-reuse contract.
type BatchIterator interface {
	NextBatch() ([]frel.Tuple, bool)
	Err() error
	Close()
}

// KeyedBatchIterator is a BatchIterator that can also serve the
// precomputed support-interval keys of its last batch (aligned index for
// index). Keys returns nil when no keys are available; like the batch, the
// returned slice is only valid until the next NextBatch call.
type KeyedBatchIterator interface {
	BatchIterator
	Keys() []frel.SupportKey
}

// BatchSource is a Source that can be opened in batch mode.
type BatchSource interface {
	Source
	OpenBatch() (BatchIterator, error)
}

// OpenBatches opens src in batch mode, adapting tuple-at-a-time sources
// with a buffering shim so every Source can feed a batched consumer.
func OpenBatches(src Source) (BatchIterator, error) {
	if bs, ok := src.(BatchSource); ok {
		return bs.OpenBatch()
	}
	it, err := src.Open()
	if err != nil {
		return nil, err
	}
	return &tupleBatchAdapter{it: it}, nil
}

// batchKeys returns the support keys of it's last batch, or nil when the
// iterator does not serve keys.
func batchKeys(it BatchIterator) []frel.SupportKey {
	if k, ok := it.(KeyedBatchIterator); ok {
		return k.Keys()
	}
	return nil
}

// tupleBatchAdapter re-batches a tuple iterator, reusing one buffer.
type tupleBatchAdapter struct {
	it  Iterator
	buf []frel.Tuple
}

func (a *tupleBatchAdapter) NextBatch() ([]frel.Tuple, bool) {
	if a.buf == nil {
		a.buf = make([]frel.Tuple, 0, BatchSize)
	}
	a.buf = a.buf[:0]
	for len(a.buf) < BatchSize {
		t, ok := a.it.Next()
		if !ok {
			break
		}
		a.buf = append(a.buf, t)
	}
	if len(a.buf) == 0 {
		return nil, false
	}
	return a.buf, true
}

func (a *tupleBatchAdapter) Err() error { return a.it.Err() }
func (a *tupleBatchAdapter) Close()     { a.it.Close() }

// CollectBatched drains a source into an in-memory relation through the
// batch interface (one bulk append per batch).
func CollectBatched(src Source) (*frel.Relation, error) {
	it, err := OpenBatches(src)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	out := frel.NewRelation(src.Schema())
	for {
		b, ok := it.NextBatch()
		if !ok {
			break
		}
		out.Append(b...)
	}
	return out, it.Err()
}

// SpillBatched drains a source into a new temporary heap file owned by
// the caller, through the batch interface.
func SpillBatched(mgr *storage.Manager, src Source) (*storage.HeapFile, error) {
	it, err := OpenBatches(src)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	h, err := mgr.CreateTemp(src.Schema())
	if err != nil {
		return nil, err
	}
	for {
		b, ok := it.NextBatch()
		if !ok {
			break
		}
		for _, t := range b {
			if err := h.Append(t); err != nil {
				return nil, err
			}
		}
	}
	return h, it.Err()
}

// memBatchIterator serves consecutive subslices of a tuple slice, with an
// optional aligned support-key column. Served batches alias the backing
// slice, which the iterator never recycles, so they outlive the
// reuse-contract minimum.
type memBatchIterator struct {
	tuples []frel.Tuple
	keys   []frel.SupportKey // optional, aligned with tuples
	pos    int

	lastKeys []frel.SupportKey
}

func (it *memBatchIterator) NextBatch() ([]frel.Tuple, bool) {
	if it.pos >= len(it.tuples) {
		it.lastKeys = nil
		return nil, false
	}
	end := it.pos + BatchSize
	if end > len(it.tuples) {
		end = len(it.tuples)
	}
	b := it.tuples[it.pos:end]
	if it.keys != nil {
		it.lastKeys = it.keys[it.pos:end]
	}
	it.pos = end
	return b, true
}

func (it *memBatchIterator) Keys() []frel.SupportKey { return it.lastKeys }
func (it *memBatchIterator) Err() error              { return nil }
func (it *memBatchIterator) Close()                  {}

// OpenBatch implements BatchSource.
func (m *MemSource) OpenBatch() (BatchIterator, error) {
	return &memBatchIterator{tuples: m.Rel.Tuples}, nil
}

// KeyedMemSource is a MemSource carrying the precomputed support-interval
// keys of its tuples on one attribute (the sort attribute). The engine's
// sort-order cache serves cached sorted relations through it, so the
// merge-join window reads interval endpoints from the flat key column
// instead of recomputing them per cursor step. SortKeys must be aligned
// with Rel.Tuples; nil degrades to an ordinary MemSource.
type KeyedMemSource struct {
	MemSource
	SortKeys []frel.SupportKey
}

// NewKeyedMemSource wraps a relation with its precomputed key column.
func NewKeyedMemSource(r *frel.Relation, keys []frel.SupportKey) *KeyedMemSource {
	return &KeyedMemSource{MemSource: MemSource{Rel: r}, SortKeys: keys}
}

// OpenBatch implements BatchSource, serving keys alongside tuples.
func (m *KeyedMemSource) OpenBatch() (BatchIterator, error) {
	return &memBatchIterator{tuples: m.Rel.Tuples, keys: m.SortKeys}, nil
}

// OpenBatch implements BatchSource: the scan decodes a page-sized batch at
// a time into a reused buffer.
func (h *HeapSource) OpenBatch() (BatchIterator, error) {
	return &heapBatchIterator{sc: h.scan()}, nil
}

type heapBatchIterator struct {
	sc     *storage.Scanner
	buf    []frel.Tuple
	closed bool
}

func (it *heapBatchIterator) NextBatch() ([]frel.Tuple, bool) {
	if it.closed {
		return nil, false
	}
	if it.buf == nil {
		it.buf = make([]frel.Tuple, 0, BatchSize)
	}
	it.buf = it.sc.NextBatch(it.buf)
	if len(it.buf) == 0 {
		return nil, false
	}
	return it.buf, true
}

func (it *heapBatchIterator) Err() error { return it.sc.Err() }

func (it *heapBatchIterator) Close() {
	if !it.closed {
		it.sc.Close()
		it.closed = true
	}
}

// OpenBatch implements BatchSource: selection filters each input batch in
// place into a reused output buffer.
func (f *Filter) OpenBatch() (BatchIterator, error) {
	in, err := OpenBatches(f.Src)
	if err != nil {
		return nil, err
	}
	return &filterBatchIterator{in: in, pred: f.Pred}, nil
}

type filterBatchIterator struct {
	in   BatchIterator
	pred Pred
	out  []frel.Tuple
}

func (it *filterBatchIterator) NextBatch() ([]frel.Tuple, bool) {
	for {
		b, ok := it.in.NextBatch()
		if !ok {
			return nil, false
		}
		// Pass-through fast path: while the predicate neither drops nor
		// re-grades tuples, serve the producer's batch as-is (no copy).
		// The predicate runs exactly once per tuple either way (predicates
		// may carry counters).
		copying := false
		for i, t := range b {
			d := t.D
			if g := it.pred(t); g < d {
				d = g
			}
			if !copying {
				if d == t.D && d > 0 {
					continue
				}
				copying = true
				it.out = append(it.out[:0], b[:i]...)
			}
			if d <= 0 {
				continue
			}
			t.D = d
			it.out = append(it.out, t)
		}
		if !copying {
			return b, true
		}
		if len(it.out) > 0 {
			return it.out, true
		}
	}
}

func (it *filterBatchIterator) Err() error { return it.in.Err() }
func (it *filterBatchIterator) Close()     { it.in.Close() }

// OpenBatch implements BatchSource for the WITH D >= z filter.
func (th *Threshold) OpenBatch() (BatchIterator, error) {
	in, err := OpenBatches(th.Src)
	if err != nil {
		return nil, err
	}
	return &thresholdBatchIterator{in: in, z: th.Z}, nil
}

type thresholdBatchIterator struct {
	in  BatchIterator
	z   float64
	out []frel.Tuple
}

func (it *thresholdBatchIterator) NextBatch() ([]frel.Tuple, bool) {
	for {
		b, ok := it.in.NextBatch()
		if !ok {
			return nil, false
		}
		// Pass-through fast path: a batch with nothing to drop is served
		// as-is (no copy).
		i := 0
		for ; i < len(b); i++ {
			if b[i].D <= 0 || b[i].D < it.z {
				break
			}
		}
		if i == len(b) {
			return b, true
		}
		it.out = append(it.out[:0], b[:i]...)
		for ; i < len(b); i++ {
			t := b[i]
			if t.D <= 0 || t.D < it.z {
				continue
			}
			it.out = append(it.out, t)
		}
		if len(it.out) > 0 {
			return it.out, true
		}
	}
}

func (it *thresholdBatchIterator) Err() error { return it.in.Err() }
func (it *thresholdBatchIterator) Close()     { it.in.Close() }

// OpenBatch implements BatchSource. The non-dedup projection writes the
// projected values of each batch into one fresh arena (a single allocation
// per batch instead of one per tuple); the dedup form materializes like
// the tuple path and replays the distinct tuples.
func (p *Project) OpenBatch() (BatchIterator, error) {
	// Projection pushdown: a projection directly over a merge join
	// materializes only the projected values in the join's emit arena,
	// skipping the full concatenated row. The dedup form additionally
	// deduplicates the join's already-projected rows in place of the
	// per-tuple Project allocation. Wrapped joins (e.g. under an EXPLAIN
	// ANALYZE stats shim) are left alone so per-node row counts stay
	// observable.
	projected := false
	var in BatchIterator
	var err error
	switch src := p.Src.(type) {
	case *MergeJoin:
		if !p.Dedup {
			return src.openBatchProjected(p.idx)
		}
	case *KernelMergeJoin:
		in, err = src.openBatchProjected(p.idx)
		if err != nil {
			return nil, err
		}
		if !p.Dedup {
			return in, nil
		}
		projected = true
	}
	if in == nil {
		in, err = OpenBatches(p.Src)
		if err != nil {
			return nil, err
		}
	}
	if !p.Dedup {
		return &projectBatchIterator{in: in, idx: p.idx}, nil
	}
	defer in.Close()
	rel := frel.NewRelation(p.schema)
	seen := make(map[string]int)
	for {
		b, ok := in.NextBatch()
		if !ok {
			break
		}
		for _, t := range b {
			pt := t
			if !projected {
				pt = t.Project(p.idx)
			}
			k := pt.Key()
			if i, ok := seen[k]; ok {
				if pt.D > rel.Tuples[i].D {
					rel.Tuples[i].D = pt.D
				}
				continue
			}
			seen[k] = rel.Len()
			rel.Append(pt)
		}
	}
	if err := in.Err(); err != nil {
		return nil, err
	}
	return &memBatchIterator{tuples: rel.Tuples}, nil
}

type projectBatchIterator struct {
	in  BatchIterator
	idx []int
	out []frel.Tuple
}

func (it *projectBatchIterator) NextBatch() ([]frel.Tuple, bool) {
	b, ok := it.in.NextBatch()
	if !ok {
		return nil, false
	}
	it.out = it.out[:0]
	arena := make([]frel.Value, 0, len(b)*len(it.idx))
	for _, t := range b {
		off := len(arena)
		for _, i := range it.idx {
			arena = append(arena, t.Values[i])
		}
		it.out = append(it.out, frel.Tuple{Values: arena[off:len(arena):len(arena)], D: t.D})
	}
	return it.out, true
}

func (it *projectBatchIterator) Err() error { return it.in.Err() }
func (it *projectBatchIterator) Close()     { it.in.Close() }
