// Per-operator runtime statistics for EXPLAIN ANALYZE.
//
// Every operator that participates in an analyzed query gets an OpStats
// node; the nodes form a tree mirroring the operator tree. Counters that
// an operator maintains internally (comparisons, degree evaluations,
// Rng(r) scan lengths, sort runs, …) are written through an optional
// *OpStats field on the operator; rows out and wall time are measured
// from the outside by wrapping the operator in a Stated source, so a
// node shared by several partition-local sub-operators (the parallel
// merge-join case) never double-counts its output.
//
// All counters are atomics: parallel partitions of one logical operator
// write to the same node concurrently. The counters an analyzed plan
// reports are partition-invariant — Comparisons counts only pairs whose
// supports intersect, a set no partition cut of ParallelMergeJoin can
// split — so serial and parallel runs of the same query report identical
// totals, which the property tests use as a correctness oracle. (The
// global Counters.Comparisons kept by Env deliberately retains its
// historical "window tuples examined" meaning and is NOT
// partition-invariant; see the parallel package comment.)
package exec

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/frel"
)

// OpStats is one node of the statistics tree of an analyzed query.
type OpStats struct {
	Op    string // operator name, e.g. "merge-join"
	Label string // operator detail, e.g. "R.B = S.B"

	RowsOut     atomic.Int64 // tuples produced (counted by the Stated wrapper)
	Comparisons atomic.Int64 // support-intersecting pairs examined
	DegreeEvals atomic.Int64 // membership degree evaluations
	Pruned      atomic.Int64 // tuples dropped by a WITH D >= threshold

	// Rng(r) scan lengths: for each outer tuple of a merge join, the
	// number of inner tuples whose supports intersect it (the paper's
	// Rng(r), Section 3). Min/max are maintained with CAS loops.
	RngCount atomic.Int64
	RngSum   atomic.Int64
	rngMin   atomic.Int64
	rngMax   atomic.Int64

	SortRuns    atomic.Int64 // initial runs written by an external sort
	MergePasses atomic.Int64 // merge passes over the runs
	SpillBytes  atomic.Int64 // bytes written to temporary sort files

	CacheHits   atomic.Int64 // sort-order cache hits (sort skipped entirely)
	CacheMisses atomic.Int64 // sort-order cache misses (order built and stored)
	IndexHits   atomic.Int64 // sorted inputs served from a persistent order index

	PoolHits   atomic.Int64 // buffer-pool page hits
	PoolMisses atomic.Int64 // buffer-pool page misses (physical reads)

	// Compiled-kernel observability (display-only, never part of the
	// Totals() invariance oracle): tuples evaluated by fused kernels and
	// morsels dispatched by the pull-queue join scheduler.
	KernelTuples atomic.Int64
	Morsels      atomic.Int64

	WallNanos atomic.Int64 // inclusive wall time spent inside the operator

	mu       sync.Mutex
	children []*OpStats
}

// NewOpStats creates a named statistics node.
func NewOpStats(op, label string) *OpStats {
	s := &OpStats{Op: op, Label: label}
	s.rngMin.Store(math.MaxInt64)
	return s
}

// AddChild links an input operator's node under this one.
func (s *OpStats) AddChild(c *OpStats) {
	if c == nil {
		return
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// ObserveRng records the Rng(r) scan length of one outer tuple.
func (s *OpStats) ObserveRng(n int64) {
	s.RngCount.Add(1)
	s.RngSum.Add(n)
	for {
		cur := s.rngMin.Load()
		if n >= cur || s.rngMin.CompareAndSwap(cur, n) {
			break
		}
	}
	for {
		cur := s.rngMax.Load()
		if n <= cur || s.rngMax.CompareAndSwap(cur, n) {
			break
		}
	}
}

// ObserveRngBulk records count Rng(r) observations at once: their sum and
// the min/max among them. It is equivalent to count individual ObserveRng
// calls and lets batched operators flush one accumulated observation set
// per batch. count <= 0 records nothing.
func (s *OpStats) ObserveRngBulk(count, sum, min, max int64) {
	if count <= 0 {
		return
	}
	s.RngCount.Add(count)
	s.RngSum.Add(sum)
	for {
		cur := s.rngMin.Load()
		if min >= cur || s.rngMin.CompareAndSwap(cur, min) {
			break
		}
	}
	for {
		cur := s.rngMax.Load()
		if max <= cur || s.rngMax.CompareAndSwap(cur, max) {
			break
		}
	}
}

// StatsSnapshot is a plain, JSON-serializable copy of a statistics tree.
type StatsSnapshot struct {
	Op           string           `json:"op"`
	Label        string           `json:"label,omitempty"`
	RowsOut      int64            `json:"rows_out"`
	Comparisons  int64            `json:"comparisons,omitempty"`
	DegreeEvals  int64            `json:"degree_evals,omitempty"`
	Pruned       int64            `json:"pruned,omitempty"`
	RngCount     int64            `json:"rng_count,omitempty"`
	RngMin       int64            `json:"rng_min,omitempty"`
	RngAvg       float64          `json:"rng_avg,omitempty"`
	RngMax       int64            `json:"rng_max,omitempty"`
	SortRuns     int64            `json:"sort_runs,omitempty"`
	MergePasses  int64            `json:"merge_passes,omitempty"`
	SpillBytes   int64            `json:"spill_bytes,omitempty"`
	CacheHits    int64            `json:"cache_hits,omitempty"`
	CacheMisses  int64            `json:"cache_misses,omitempty"`
	IndexHits    int64            `json:"index_hits,omitempty"`
	PoolHits     int64            `json:"pool_hits,omitempty"`
	PoolMisses   int64            `json:"pool_misses,omitempty"`
	KernelTuples int64            `json:"kernel_tuples,omitempty"`
	Morsels      int64            `json:"morsels,omitempty"`
	WallNanos    int64            `json:"wall_ns"`
	Children     []*StatsSnapshot `json:"children,omitempty"`
}

// Snapshot copies the tree rooted at s into plain values.
func (s *OpStats) Snapshot() *StatsSnapshot {
	snap := &StatsSnapshot{
		Op:           s.Op,
		Label:        s.Label,
		RowsOut:      s.RowsOut.Load(),
		Comparisons:  s.Comparisons.Load(),
		DegreeEvals:  s.DegreeEvals.Load(),
		Pruned:       s.Pruned.Load(),
		SortRuns:     s.SortRuns.Load(),
		MergePasses:  s.MergePasses.Load(),
		SpillBytes:   s.SpillBytes.Load(),
		CacheHits:    s.CacheHits.Load(),
		CacheMisses:  s.CacheMisses.Load(),
		IndexHits:    s.IndexHits.Load(),
		PoolHits:     s.PoolHits.Load(),
		PoolMisses:   s.PoolMisses.Load(),
		KernelTuples: s.KernelTuples.Load(),
		Morsels:      s.Morsels.Load(),
		WallNanos:    s.WallNanos.Load(),
	}
	if n := s.RngCount.Load(); n > 0 {
		snap.RngCount = n
		snap.RngMin = s.rngMin.Load()
		snap.RngMax = s.rngMax.Load()
		snap.RngAvg = float64(s.RngSum.Load()) / float64(n)
	}
	s.mu.Lock()
	children := append([]*OpStats(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		snap.Children = append(snap.Children, c.Snapshot())
	}
	return snap
}

// Totals sums the work counters over the whole tree; the property tests
// use them as parallelism-invariance oracles.
func (s *StatsSnapshot) Totals() (rows, comparisons, degreeEvals int64) {
	rows = s.RowsOut
	comparisons = s.Comparisons
	degreeEvals = s.DegreeEvals
	for _, c := range s.Children {
		r, cmp, d := c.Totals()
		rows += r
		comparisons += cmp
		degreeEvals += d
	}
	return rows, comparisons, degreeEvals
}

// Find returns the first node (pre-order) whose Op equals op, or nil.
func (s *StatsSnapshot) Find(op string) *StatsSnapshot {
	if s.Op == op {
		return s
	}
	for _, c := range s.Children {
		if m := c.Find(op); m != nil {
			return m
		}
	}
	return nil
}

// Render formats the tree as indented text, one operator per line.
func (s *StatsSnapshot) Render() string {
	var b strings.Builder
	s.render(&b, 0)
	return b.String()
}

func (s *StatsSnapshot) render(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	b.WriteString(s.Op)
	if s.Label != "" {
		fmt.Fprintf(b, " [%s]", s.Label)
	}
	fmt.Fprintf(b, "  rows=%d", s.RowsOut)
	if s.Comparisons > 0 {
		fmt.Fprintf(b, " cmp=%d", s.Comparisons)
	}
	if s.DegreeEvals > 0 {
		fmt.Fprintf(b, " deg=%d", s.DegreeEvals)
	}
	if s.Pruned > 0 {
		fmt.Fprintf(b, " pruned=%d", s.Pruned)
	}
	if s.RngCount > 0 {
		fmt.Fprintf(b, " rng=%d/%.1f/%d", s.RngMin, s.RngAvg, s.RngMax)
	}
	if s.SortRuns > 0 || s.MergePasses > 0 || s.SpillBytes > 0 {
		fmt.Fprintf(b, " sort(runs=%d passes=%d spill=%dB)", s.SortRuns, s.MergePasses, s.SpillBytes)
	}
	if s.CacheHits > 0 || s.CacheMisses > 0 {
		fmt.Fprintf(b, " cache(hit=%d miss=%d)", s.CacheHits, s.CacheMisses)
	}
	if s.IndexHits > 0 {
		fmt.Fprintf(b, " index(hit=%d)", s.IndexHits)
	}
	if s.PoolHits > 0 || s.PoolMisses > 0 {
		fmt.Fprintf(b, " pool(hit=%d miss=%d)", s.PoolHits, s.PoolMisses)
	}
	if s.KernelTuples > 0 {
		fmt.Fprintf(b, " kernel(tuples=%d)", s.KernelTuples)
	}
	if s.Morsels > 0 {
		fmt.Fprintf(b, " morsels=%d", s.Morsels)
	}
	fmt.Fprintf(b, " time=%s", time.Duration(s.WallNanos).Round(time.Microsecond))
	b.WriteByte('\n')
	for _, c := range s.Children {
		c.render(b, depth+1)
	}
}

// Stated wraps a source, counting the tuples it produces and the wall
// time spent inside it (Open plus every Next) into Node. A source opened
// several times (the inner of a block nested-loop join) accumulates
// across opens.
type Stated struct {
	Src  Source
	Node *OpStats
}

// NewStated wraps src with a statistics node.
func NewStated(src Source, node *OpStats) *Stated {
	return &Stated{Src: src, Node: node}
}

// Schema returns the wrapped source's schema.
func (s *Stated) Schema() *frel.Schema { return s.Src.Schema() }

// Open opens the wrapped source; the time it takes (a parallel join does
// all of its work in Open) counts toward the node.
func (s *Stated) Open() (Iterator, error) {
	start := time.Now()
	it, err := s.Src.Open()
	s.Node.WallNanos.Add(time.Since(start).Nanoseconds())
	if err != nil {
		return nil, err
	}
	return &statedIterator{in: it, node: s.Node}, nil
}

// OpenBatch implements BatchSource: the wrapped source is opened in batch
// mode and rows/wall time are accounted once per batch.
func (s *Stated) OpenBatch() (BatchIterator, error) {
	start := time.Now()
	it, err := OpenBatches(s.Src)
	s.Node.WallNanos.Add(time.Since(start).Nanoseconds())
	if err != nil {
		return nil, err
	}
	return &statedBatchIterator{in: it, node: s.Node}, nil
}

type statedBatchIterator struct {
	in   BatchIterator
	node *OpStats
}

func (it *statedBatchIterator) NextBatch() ([]frel.Tuple, bool) {
	start := time.Now()
	b, ok := it.in.NextBatch()
	it.node.WallNanos.Add(time.Since(start).Nanoseconds())
	if ok {
		it.node.RowsOut.Add(int64(len(b)))
	}
	return b, ok
}

func (it *statedBatchIterator) Keys() []frel.SupportKey { return batchKeys(it.in) }
func (it *statedBatchIterator) Err() error              { return it.in.Err() }
func (it *statedBatchIterator) Close()                  { it.in.Close() }

type statedIterator struct {
	in   Iterator
	node *OpStats
}

func (it *statedIterator) Next() (frel.Tuple, bool) {
	start := time.Now()
	t, ok := it.in.Next()
	it.node.WallNanos.Add(time.Since(start).Nanoseconds())
	if ok {
		it.node.RowsOut.Add(1)
	}
	return t, ok
}

func (it *statedIterator) Err() error { return it.in.Err() }

func (it *statedIterator) Close() { it.in.Close() }

// Unwrap strips any Stated and context-cancellation wrappers, returning
// the underlying source. Planner heuristics that sniff concrete source
// types (sampling, size estimates, the sort-order cache) use it so
// analyzed, cancellable, and plain runs pick identical plans.
func Unwrap(src Source) Source {
	for {
		switch s := src.(type) {
		case *Stated:
			src = s.Src
		case *cancelSource:
			src = s.src
		default:
			return src
		}
	}
}
