package exec

import (
	"fmt"

	"repro/internal/frel"
)

// Pred evaluates the satisfaction degree of a condition on one tuple
// (Section 2.2 of the paper). Implementations return a value in [0, 1].
type Pred func(frel.Tuple) float64

// JoinPred evaluates the satisfaction degree of a condition across a pair
// of tuples.
type JoinPred func(left, right frel.Tuple) float64

// TruePred is the always-satisfied predicate.
func TruePred(frel.Tuple) float64 { return 1 }

// And combines predicates with fuzzy AND (minimum), short-circuiting at 0.
func And(ps ...Pred) Pred {
	if len(ps) == 0 {
		return TruePred
	}
	if len(ps) == 1 {
		return ps[0]
	}
	return func(t frel.Tuple) float64 {
		d := 1.0
		for _, p := range ps {
			if g := p(t); g < d {
				d = g
				if d == 0 {
					return 0
				}
			}
		}
		return d
	}
}

// Filter passes through tuples with degree min(t.D, pred(t)), dropping
// those whose degree is 0 — a fuzzy selection.
type Filter struct {
	Src  Source
	Pred Pred
}

// NewFilter builds a fuzzy selection.
func NewFilter(src Source, pred Pred) *Filter { return &Filter{Src: src, Pred: pred} }

// Schema implements Source.
func (f *Filter) Schema() *frel.Schema { return f.Src.Schema() }

// Open implements Source.
func (f *Filter) Open() (Iterator, error) {
	it, err := f.Src.Open()
	if err != nil {
		return nil, err
	}
	return &filterIterator{in: it, pred: f.Pred}, nil
}

type filterIterator struct {
	in   Iterator
	pred Pred
}

func (it *filterIterator) Next() (frel.Tuple, bool) {
	for {
		t, ok := it.in.Next()
		if !ok {
			return frel.Tuple{}, false
		}
		d := t.D
		if g := it.pred(t); g < d {
			d = g
		}
		if d <= 0 {
			continue
		}
		t.D = d
		return t, true
	}
}

func (it *filterIterator) Err() error { return it.in.Err() }
func (it *filterIterator) Close()     { it.in.Close() }

// Project projects tuples onto a subset of attributes and, when Dedup is
// set, eliminates duplicates keeping the maximum membership degree (fuzzy
// OR), the paper's answer-construction rule. Deduplication materializes
// the distinct tuples before emitting them.
type Project struct {
	Src   Source
	Refs  []string
	Dedup bool

	schema *frel.Schema
	idx    []int
}

// NewProject builds a projection onto the given attribute references.
func NewProject(src Source, refs []string, dedup bool) (*Project, error) {
	schema, idx, err := src.Schema().Project(refs)
	if err != nil {
		return nil, err
	}
	return &Project{Src: src, Refs: refs, Dedup: dedup, schema: schema, idx: idx}, nil
}

// Schema implements Source.
func (p *Project) Schema() *frel.Schema { return p.schema }

// Open implements Source.
func (p *Project) Open() (Iterator, error) {
	it, err := p.Src.Open()
	if err != nil {
		return nil, err
	}
	if !p.Dedup {
		return &projectIterator{in: it, idx: p.idx}, nil
	}
	// Materialize with max-degree dedup, then emit.
	defer it.Close()
	rel := frel.NewRelation(p.schema)
	seen := make(map[string]int)
	for {
		t, ok := it.Next()
		if !ok {
			break
		}
		pt := t.Project(p.idx)
		k := pt.Key()
		if i, ok := seen[k]; ok {
			if pt.D > rel.Tuples[i].D {
				rel.Tuples[i].D = pt.D
			}
			continue
		}
		seen[k] = rel.Len()
		rel.Append(pt)
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	return &memIterator{tuples: rel.Tuples}, nil
}

type projectIterator struct {
	in  Iterator
	idx []int
}

func (it *projectIterator) Next() (frel.Tuple, bool) {
	t, ok := it.in.Next()
	if !ok {
		return frel.Tuple{}, false
	}
	return t.Project(it.idx), true
}

func (it *projectIterator) Err() error { return it.in.Err() }
func (it *projectIterator) Close()     { it.in.Close() }

// Threshold drops tuples whose degree is below z (and always those with
// degree 0) — the WITH D >= z clause.
type Threshold struct {
	Src Source
	Z   float64
}

// NewThreshold builds a WITH-clause filter.
func NewThreshold(src Source, z float64) *Threshold { return &Threshold{Src: src, Z: z} }

// Schema implements Source.
func (th *Threshold) Schema() *frel.Schema { return th.Src.Schema() }

// Open implements Source.
func (th *Threshold) Open() (Iterator, error) {
	it, err := th.Src.Open()
	if err != nil {
		return nil, err
	}
	return &thresholdIterator{in: it, z: th.Z}, nil
}

type thresholdIterator struct {
	in Iterator
	z  float64
}

func (it *thresholdIterator) Next() (frel.Tuple, bool) {
	for {
		t, ok := it.in.Next()
		if !ok {
			return frel.Tuple{}, false
		}
		if t.D <= 0 || t.D < it.z {
			continue
		}
		return t, true
	}
}

func (it *thresholdIterator) Err() error { return it.in.Err() }
func (it *thresholdIterator) Close()     { it.in.Close() }

// RefDegree builds a Pred computing d(attr op value) for a fixed
// right-hand value.
func RefDegree(schema *frel.Schema, ref string, op OpFunc) (Pred, error) {
	i, err := schema.Resolve(ref)
	if err != nil {
		return nil, err
	}
	return func(t frel.Tuple) float64 { return op(t.Values[i]) }, nil
}

// OpFunc computes a degree from a single value; used to build predicates
// against constants.
type OpFunc func(frel.Value) float64

// errSource is a Source that fails on Open; used by operators that detect
// configuration errors lazily.
type errSource struct{ err error }

func (e errSource) Schema() *frel.Schema    { return &frel.Schema{} }
func (e errSource) Open() (Iterator, error) { return nil, e.err }

// Errf builds a Source that fails with a formatted error.
func Errf(format string, args ...interface{}) Source {
	return errSource{fmt.Errorf(format, args...)}
}
