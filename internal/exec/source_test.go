package exec

import (
	"testing"

	"repro/internal/frel"
	"repro/internal/fuzzy"
	"repro/internal/storage"
)

func heapWith(t *testing.T, n int) (*storage.Manager, *storage.HeapFile) {
	t.Helper()
	m := storage.NewManager(t.TempDir(), 8)
	schema := frel.NewSchema("R",
		frel.Attribute{Name: "ID", Kind: frel.KindNumber},
		frel.Attribute{Name: "X", Kind: frel.KindNumber},
	)
	h, err := m.CreateHeap("r", schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := h.Append(frel.NewTuple(1, frel.Crisp(float64(i)), frel.Crisp(float64(i%10)))); err != nil {
			t.Fatal(err)
		}
	}
	return m, h
}

func TestHeapSourceScan(t *testing.T) {
	m, h := heapWith(t, 500)
	src := NewHeapSource(h)
	if src.Schema() != h.Schema {
		t.Errorf("Schema mismatch")
	}
	rel, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 500 {
		t.Errorf("Len = %d", rel.Len())
	}
	if m.Pool().PinnedPages() != 0 {
		t.Errorf("pinned pages leaked")
	}
}

func TestHeapSourceEarlyClose(t *testing.T) {
	m, h := heapWith(t, 500)
	it, err := NewHeapSource(h).Open()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.Next(); !ok {
		t.Fatal("no first tuple")
	}
	it.Close()
	it.Close() // idempotent
	if _, ok := it.Next(); ok {
		t.Errorf("Next after Close should fail")
	}
	if m.Pool().PinnedPages() != 0 {
		t.Errorf("pinned pages leaked after early close")
	}
}

func TestMergeJoinOverHeapSources(t *testing.T) {
	m, h := heapWith(t, 300)
	_, h2 := heapWith(t, 300)
	mj, err := NewMergeJoin(NewHeapSource(h), NewHeapSource(h2), "X", "X", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The heap was written in ID order, which is also non-decreasing in X
	// begin? It is not (X = i%10); the join must detect the disorder.
	if _, err := Collect(mj); err == nil {
		t.Errorf("unsorted heap input: want error")
	}
	_ = m
}

func TestMergeJoinHeapSortedInputs(t *testing.T) {
	m := storage.NewManager(t.TempDir(), 8)
	schema := frel.NewSchema("R", frel.Attribute{Name: "X", Kind: frel.KindNumber})
	mk := func(name string) *storage.HeapFile {
		h, err := m.CreateHeap(name, schema)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 400; i++ {
			if err := h.Append(frel.NewTuple(1, frel.Num(fuzzy.Tri(float64(i)-0.4, float64(i), float64(i)+0.4)))); err != nil {
				t.Fatal(err)
			}
		}
		return h
	}
	r, s := mk("r"), mk("s")
	mj, err := NewMergeJoin(NewHeapSource(r), NewHeapSource(s), "X", "X", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := Collect(mj)
	if err != nil {
		t.Fatal(err)
	}
	// Each value overlaps only its twin (width 0.4 < spacing 1).
	if rel.Len() != 400 {
		t.Errorf("Len = %d, want 400", rel.Len())
	}
	if m.Pool().PinnedPages() != 0 {
		t.Errorf("pinned pages leaked")
	}
}

func TestEarlyCloseJoins(t *testing.T) {
	m := storage.NewManager(t.TempDir(), 8)
	schema := frel.NewSchema("R", frel.Attribute{Name: "X", Kind: frel.KindNumber})
	mk := func(name string) *storage.HeapFile {
		h, err := m.CreateHeap(name, schema)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			if err := h.Append(frel.NewTuple(1, frel.Crisp(float64(i)))); err != nil {
				t.Fatal(err)
			}
		}
		return h
	}
	r, s := mk("r"), mk("s")

	mj, err := NewMergeJoin(NewHeapSource(r), NewHeapSource(s), "X", "X", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	it, err := mj.Open()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.Next(); !ok {
		t.Fatal("no tuple")
	}
	it.Close()

	nl := NewBlockNLJoin(NewHeapSource(r), NewHeapSource(s), func(l, m frel.Tuple) float64 { return 1 }, 0, nil)
	it2, err := nl.Open()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it2.Next(); !ok {
		t.Fatal("no tuple")
	}
	it2.Close()

	am, err := NewMergeAntiMin(NewHeapSource(r), NewHeapSource(s), "X", "X",
		func(l, m frel.Tuple) float64 { return 1 }, nil)
	if err != nil {
		t.Fatal(err)
	}
	it3, err := am.Open()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it3.Next(); !ok {
		t.Fatal("no tuple")
	}
	it3.Close()

	if m.Pool().PinnedPages() != 0 {
		t.Errorf("pinned pages leaked after early closes")
	}
}

func TestCountersAdd(t *testing.T) {
	var a, b Counters
	a.DegreeEvals.Store(1)
	a.Comparisons.Store(2)
	a.TuplesOut.Store(3)
	b.DegreeEvals.Store(10)
	b.Comparisons.Store(20)
	b.TuplesOut.Store(30)
	a.Add(&b)
	if a.DegreeEvals.Load() != 11 || a.Comparisons.Load() != 22 || a.TuplesOut.Load() != 33 {
		t.Errorf("Add = %d/%d/%d", a.DegreeEvals.Load(), a.Comparisons.Load(), a.TuplesOut.Load())
	}
	a.Reset()
	if a.DegreeEvals.Load() != 0 || a.Comparisons.Load() != 0 || a.TuplesOut.Load() != 0 {
		t.Errorf("Reset left counters nonzero")
	}
}

func TestSpillRoundTrip(t *testing.T) {
	m := storage.NewManager(t.TempDir(), 8)
	rel := frel.NewRelation(frel.NewSchema("R", frel.Attribute{Name: "X", Kind: frel.KindNumber}))
	for i := 0; i < 100; i++ {
		rel.Append(frel.NewTuple(0.5, frel.Crisp(float64(i))))
	}
	h, err := Spill(m, NewMemSource(rel))
	if err != nil {
		t.Fatal(err)
	}
	back, err := h.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(rel, 0) {
		t.Errorf("spill round trip mismatch")
	}
	if err := h.Drop(); err != nil {
		t.Errorf("Drop: %v", err)
	}
}
