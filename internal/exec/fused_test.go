package exec

import (
	"math/rand"
	"testing"

	"repro/internal/frel"
	"repro/internal/fuzzy"
	"repro/internal/kernel"
)

// fusedProgram compiles the two-step chain the fused-filter tests run:
// X > "around 20" fused with X NEAR 30 WITHIN tol.
func fusedProgram(t testing.TB) *kernel.Program {
	t.Helper()
	prog, err := kernel.Compile([]kernel.Step{
		{Kind: kernel.StepCompare, Op: fuzzy.OpGt,
			Left: kernel.Column(1), Right: kernel.Constant(frel.Num(fuzzy.Tri(10, 20, 30)))},
		{Kind: kernel.StepNear, Tol: fuzzy.Tri(-25, 0, 25),
			Left: kernel.Column(1), Right: kernel.Constant(frel.Num(fuzzy.Crisp(30)))},
	})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// interpretedChain is the closure-evaluator equivalent of fusedProgram
// over the same source, charging DegreeEvals exactly like the compiled
// predicate closures do (once per predicate call).
func interpretedChain(src Source, z float64, c *Counters) Source {
	konst1 := frel.Num(fuzzy.Tri(10, 20, 30))
	konst2 := fuzzy.Crisp(30)
	tol := fuzzy.Tri(-25, 0, 25)
	p1 := func(t frel.Tuple) float64 {
		c.DegreeEvals.Add(1)
		return frel.Degree(fuzzy.OpGt, t.Values[1], konst1)
	}
	p2 := func(t frel.Tuple) float64 {
		c.DegreeEvals.Add(1)
		return fuzzy.ApproxEq(t.Values[1].Num, konst2, tol)
	}
	return NewThreshold(NewFilter(NewFilter(src, p1), p2), z)
}

// TestFusedFilterMatchesInterpreted cross-checks the fused filter chain
// against the equivalent stack of interpreted Filter operators followed
// by a Threshold: identical output sequences (both drains) and identical
// degree-evaluation counts — the kernel evaluates later predicates only
// on tuples earlier ones kept, exactly like the chain.
func TestFusedFilterMatchesInterpreted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, z := range []float64{0, 0.35, 0.8} {
		for trial := 0; trial < 8; trial++ {
			r := randomRel("R", 200+rng.Intn(300), 60, 6, rng)

			var ck Counters
			ff := NewFusedFilter(NewMemSource(r), fusedProgram(t), z, &ck)
			gotBatch := batchDrain(t, ff)
			kernelEvals := ck.DegreeEvals.Load()
			ck.Reset()
			gotTuple := tupleDrain(t, NewFusedFilter(NewMemSource(r), fusedProgram(t), z, &ck))
			if e := ck.DegreeEvals.Load(); e != kernelEvals {
				t.Fatalf("z=%g: fused tuple drain made %d evals, batch drain %d", z, e, kernelEvals)
			}

			var ci Counters
			want := batchDrain(t, interpretedChain(NewMemSource(r), z, &ci))
			sameSequence(t, "fused batch", gotBatch, want)
			sameSequence(t, "fused tuple", gotTuple, want)
			if kernelEvals != ci.DegreeEvals.Load() {
				t.Fatalf("z=%g: kernel made %d degree evals, interpreted chain %d",
					z, kernelEvals, ci.DegreeEvals.Load())
			}
			if ck.KernelTuples.Load() != int64(r.Len()) {
				t.Fatalf("z=%g: KernelTuples %d, want %d", z, ck.KernelTuples.Load(), r.Len())
			}
		}
	}
}

// TestFusedFilterStats checks that a stats node attached to the fused
// filter receives the kernel observability counter.
func TestFusedFilterStats(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := randomRel("R", 120, 60, 6, rng)
	var c Counters
	ff := NewFusedFilter(NewMemSource(r), fusedProgram(t), 0, &c)
	st := NewOpStats("kernel(fused)", "R")
	ff.Stats = st
	batchDrain(t, ff)
	snap := st.Snapshot()
	if snap.KernelTuples != int64(r.Len()) {
		t.Fatalf("stats KernelTuples = %d, want %d", snap.KernelTuples, r.Len())
	}
	if snap.DegreeEvals != 0 {
		t.Fatalf("stats DegreeEvals = %d, want 0 (filter nodes do not report degree evals)", snap.DegreeEvals)
	}
}

// TestKernelPipelineAllocs is the allocation gate of the compiled path:
// the fused scan -> filter -> threshold -> project chain must run at
// arena-level allocation cost, at most 0.01 allocations per tuple.
// Skipped under -race, which inflates allocation counts.
func TestKernelPipelineAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	rng := rand.New(rand.NewSource(23))
	r := randomRel("R", 40000, 200, 3, rng)
	// High-selectivity steps: every tuple is evaluated and re-graded by
	// both, so the gate measures the full per-tuple kernel cost.
	prog, err := kernel.Compile([]kernel.Step{
		{Kind: kernel.StepCompare, Op: fuzzy.OpGt,
			Left: kernel.Column(1), Right: kernel.Constant(frel.Num(fuzzy.Tri(-20, -10, 0)))},
		{Kind: kernel.StepNear, Tol: fuzzy.Tri(-250, 0, 250),
			Left: kernel.Column(1), Right: kernel.Constant(frel.Num(fuzzy.Crisp(100)))},
	})
	if err != nil {
		t.Fatal(err)
	}
	var c Counters

	var rows int
	allocs := testing.AllocsPerRun(5, func() {
		ff := NewFusedFilter(NewMemSource(r), prog, 0.01, &c)
		proj, err := NewProject(ff, []string{"R.ID"}, false)
		if err != nil {
			t.Fatal(err)
		}
		it, err := OpenBatches(proj)
		if err != nil {
			t.Fatal(err)
		}
		rows = 0
		for {
			b, ok := it.NextBatch()
			if !ok {
				break
			}
			rows += len(b)
		}
		it.Close()
	})
	if rows == 0 {
		t.Fatal("fused pipeline produced no tuples")
	}
	perTuple := allocs / float64(rows)
	if perTuple > 0.01 {
		t.Errorf("fused pipeline allocates %.4f allocs/tuple (%.0f allocs for %d tuples), want <= 0.01",
			perTuple, allocs, rows)
	}
}
