package exec

import (
	"math/rand"
	"testing"

	"repro/internal/frel"
	"repro/internal/fuzzy"
)

// bruteBandJoin is the all-pairs reference of the band merge-join.
func bruteBandJoin(r, s *frel.Relation, tol fuzzy.Trapezoid) *frel.Relation {
	out := frel.NewRelation(r.Schema.Join(s.Schema))
	ri, _ := r.Schema.Resolve("X")
	si, _ := s.Schema.Resolve("X")
	for _, l := range r.Tuples {
		for _, m := range s.Tuples {
			d := fuzzy.Min(l.D, m.D, fuzzy.ApproxEq(l.Values[ri].Num, m.Values[si].Num, tol))
			if d > 0 {
				out.Append(l.Concat(m, d))
			}
		}
	}
	return out
}

func TestBandMergeJoinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	tols := []fuzzy.Trapezoid{
		fuzzy.Crisp(0),
		fuzzy.Tolerance(0, 2),
		fuzzy.Tolerance(1, 4),
		fuzzy.Interval(-10, 10),
	}
	for trial := 0; trial < 10; trial++ {
		r := randomRel("R", 30, 50, 3, rng)
		s := randomRel("S", 40, 50, 3, rng)
		for _, tol := range tols {
			want := bruteBandJoin(r, s, tol)
			mj, err := NewBandMergeJoin(sortedSource(t, r, "X"), sortedSource(t, s, "X"), "R.X", "S.X", tol, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			got := drain(t, mj)
			if !got.Equal(want, 1e-12) {
				t.Fatalf("trial %d tol %v: band join mismatch: got %d, want %d", trial, tol, got.Len(), want.Len())
			}
		}
	}
}

// TestBandMergeJoinCrispBand: the classic crisp band join |x - y| <= w.
func TestBandMergeJoinCrispBand(t *testing.T) {
	r := frel.NewRelation(xSchema("R"))
	s := frel.NewRelation(xSchema("S"))
	for i := 0; i < 20; i++ {
		r.Append(frel.NewTuple(1, frel.Crisp(float64(i)), frel.Crisp(float64(i*10))))
		s.Append(frel.NewTuple(1, frel.Crisp(float64(i)), frel.Crisp(float64(i*10+4))))
	}
	// Band 5: each r matches exactly the s shifted by +4 (and the one 6
	// below? i*10 vs (i-1)*10+4 = i*10-6: |diff| = 6 > 5, no).
	band := fuzzy.Interval(-5, 5)
	mj, err := NewBandMergeJoin(sortedSource(t, r, "X"), sortedSource(t, s, "X"), "R.X", "S.X", band, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, mj)
	if got.Len() != 20 {
		t.Fatalf("band join matched %d pairs, want 20", got.Len())
	}
	for _, tup := range got.Tuples {
		if tup.D != 1 {
			t.Errorf("crisp band match degree = %g, want 1", tup.D)
		}
	}
}

func TestBandMergeJoinInvalidTolerance(t *testing.T) {
	r := frel.NewRelation(xSchema("R"))
	if _, err := NewBandMergeJoin(NewMemSource(r), NewMemSource(r.Clone()), "X", "X",
		fuzzy.Trapezoid{A: 2, B: 1, C: 0, D: -1}, nil, nil); err == nil {
		t.Errorf("invalid tolerance: want error")
	}
}

// TestBandMergeJoinWidensOnlyWindow: the tolerance must not break the
// single-pass property — the inner side is still consumed once.
func TestBandMergeJoinSinglePass(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	r := randomRel("R", 200, 2000, 1, rng)
	s := randomRel("S", 200, 2000, 1, rng)
	inner := &countingSource{Source: sortedSource(t, s, "X")}
	mj, err := NewBandMergeJoin(sortedSource(t, r, "X"), inner, "R.X", "S.X", fuzzy.Tolerance(0, 50), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	drain(t, mj)
	if inner.opens != 1 {
		t.Errorf("inner opened %d times, want 1", inner.opens)
	}
}
