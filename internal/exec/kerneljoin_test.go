package exec

import (
	"math/rand"
	"testing"

	"repro/internal/frel"
	"repro/internal/fuzzy"
	"repro/internal/kernel"
)

// pairExtras builds the residual-conjunct pair for the kernel-join parity
// tests in both forms: a compiled PairProgram and the equivalent
// interpreted JoinPred with the andJoinPreds evaluation order, charging
// DegreeEvals per conjunct call exactly like the compiled join-predicate
// closures do.
func pairExtras(t testing.TB, c *Counters) (*kernel.PairProgram, JoinPred) {
	t.Helper()
	konst := frel.Num(fuzzy.Tri(10, 30, 50))
	pp, err := kernel.CompilePair([]kernel.PairStep{
		{Kind: kernel.StepCompare, Op: fuzzy.OpLe,
			Left: kernel.LeftColumn(0), Right: kernel.RightColumn(0)},
		{Kind: kernel.StepCompare, Op: fuzzy.OpGt,
			Left: kernel.LeftColumn(1), Right: kernel.PairConstant(konst)},
	})
	if err != nil {
		t.Fatal(err)
	}
	preds := []JoinPred{
		func(l, r frel.Tuple) float64 {
			c.DegreeEvals.Add(1)
			return frel.Degree(fuzzy.OpLe, l.Values[0], r.Values[0])
		},
		func(l, r frel.Tuple) float64 {
			c.DegreeEvals.Add(1)
			return frel.Degree(fuzzy.OpGt, l.Values[1], konst)
		},
	}
	interp := func(l, r frel.Tuple) float64 {
		d := 1.0
		for _, p := range preds {
			if g := p(l, r); g < d {
				d = g
				if d == 0 {
					return 0
				}
			}
		}
		return d
	}
	return pp, interp
}

// TestKernelMergeJoinMatchesInterpreted cross-checks the morsel-scheduled
// kernel merge-join against the interpreted band merge-join on random
// inputs: identical output sequences, work counters and EXPLAIN ANALYZE
// stats at every worker count, with and without residual conjuncts.
// Morsels subdivide only at atomic-cut boundaries where the inner window
// is empty, so every counter — including Comparisons — is scheduling-
// invariant here.
func TestKernelMergeJoinMatchesInterpreted(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	tols := []fuzzy.Trapezoid{fuzzy.Crisp(0), fuzzy.Tri(-3, 0, 3), fuzzy.Trap(-5, -2, 2, 5)}
	for _, workers := range []int{1, 2, 4} {
		for _, withExtra := range []bool{false, true} {
			for trial := 0; trial < 6; trial++ {
				r := randomRel("R", 80+rng.Intn(120), 80, 6, rng)
				s := randomRel("S", 80+rng.Intn(120), 80, 6, rng)
				tol := tols[trial%len(tols)]

				var ck Counters
				sk := NewOpStats("merge-join", "")
				var pp *kernel.PairProgram
				if withExtra {
					pp, _ = pairExtras(t, &ck)
				}
				kj, err := NewKernelMergeJoin(sortedSource(t, r, "X"), sortedSource(t, s, "X"),
					"R.X", "S.X", tol, pp, &ck, workers)
				if err != nil {
					t.Fatal(err)
				}
				kj.Stats = sk
				got := batchDrain(t, kj)

				var ci Counters
				si := NewOpStats("merge-join", "")
				var extra JoinPred
				if withExtra {
					_, extra = pairExtras(t, &ci)
				}
				mj, err := NewBandMergeJoin(sortedSource(t, r, "X"), sortedSource(t, s, "X"),
					"R.X", "S.X", tol, extra, &ci)
				if err != nil {
					t.Fatal(err)
				}
				mj.Stats = si
				want := batchDrain(t, mj)

				name := "kernel merge-join"
				sameSequence(t, name, got, want)
				sameCounters(t, name, &ck, &ci)
				sameStats(t, name, sk, si)
				if workers > 1 && ck.Morsels.Load() <= 1 && len(got) > 0 {
					// Small inputs may coalesce into few morsels, but the
					// count must at least be recorded.
					if ck.Morsels.Load() == 0 {
						t.Errorf("%s: no morsels recorded", name)
					}
				}
				if ck.KernelTuples.Load() != int64(r.Len()) {
					t.Errorf("%s: KernelTuples %d, want %d", name, ck.KernelTuples.Load(), r.Len())
				}
			}
		}
	}
}

// TestKernelMergeJoinTupleDrain checks the tuple-at-a-time adapter serves
// the same sequence as the batched form.
func TestKernelMergeJoinTupleDrain(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	r := randomRel("R", 150, 70, 5, rng)
	s := randomRel("S", 150, 70, 5, rng)
	build := func(c *Counters) *KernelMergeJoin {
		kj, err := NewKernelMergeJoin(sortedSource(t, r, "X"), sortedSource(t, s, "X"),
			"R.X", "S.X", fuzzy.Tri(-2, 0, 2), nil, c, 2)
		if err != nil {
			t.Fatal(err)
		}
		return kj
	}
	var cb, ct Counters
	sameSequence(t, "kernel join tuple drain",
		tupleDrain(t, build(&ct)), batchDrain(t, build(&cb)))
	sameCounters(t, "kernel join tuple drain", &cb, &ct)
}

// TestKernelMergeJoinProjected checks the projection-pushdown emit of the
// kernel join, with and without duplicate elimination, against the
// interpreted join-then-project pipeline.
func TestKernelMergeJoinProjected(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, dedup := range []bool{false, true} {
		for trial := 0; trial < 6; trial++ {
			r := randomRel("R", 100+rng.Intn(100), 60, 5, rng)
			s := randomRel("S", 100+rng.Intn(100), 60, 5, rng)

			var ck Counters
			kj, err := NewKernelMergeJoin(sortedSource(t, r, "X"), sortedSource(t, s, "X"),
				"R.X", "S.X", fuzzy.Crisp(0), nil, &ck, 3)
			if err != nil {
				t.Fatal(err)
			}
			kproj, err := NewProject(kj, []string{"R.ID", "S.ID"}, dedup)
			if err != nil {
				t.Fatal(err)
			}
			got := batchDrain(t, kproj)

			mj, err := NewMergeJoin(sortedSource(t, r, "X"), sortedSource(t, s, "X"),
				"R.X", "S.X", nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			iproj, err := NewProject(mj, []string{"R.ID", "S.ID"}, dedup)
			if err != nil {
				t.Fatal(err)
			}
			want := tupleDrain(t, iproj)
			sameSequence(t, "kernel projected join", got, want)
		}
	}
}

// TestKernelMergeJoinEmptySides covers empty inputs: the join must not
// emit, and the per-outer empty Rng(r) observations must match the
// interpreted operator's.
func TestKernelMergeJoinEmptySides(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	r := randomRel("R", 40, 30, 3, rng)
	empty := frel.NewRelation(xSchema("S"))
	for _, flip := range []bool{false, true} {
		outer, inner := r, empty
		if flip {
			outer, inner = empty, r
		}
		var ck, ci Counters
		sk, si := NewOpStats("merge-join", ""), NewOpStats("merge-join", "")
		kj, err := NewKernelMergeJoin(sortedSource(t, outer, "X"), sortedSource(t, inner, "X"),
			"R.X", "S.X", fuzzy.Crisp(0), nil, &ck, 2)
		if flip {
			kj, err = NewKernelMergeJoin(sortedSource(t, outer, "X"), sortedSource(t, inner, "X"),
				"S.X", "R.X", fuzzy.Crisp(0), nil, &ck, 2)
		}
		if err != nil {
			t.Fatal(err)
		}
		kj.Stats = sk
		got := batchDrain(t, kj)
		if len(got) != 0 {
			t.Fatalf("flip=%v: empty-side join emitted %d tuples", flip, len(got))
		}

		var mj *MergeJoin
		if flip {
			mj, err = NewBandMergeJoin(sortedSource(t, outer, "X"), sortedSource(t, inner, "X"),
				"S.X", "R.X", fuzzy.Crisp(0), nil, &ci)
		} else {
			mj, err = NewBandMergeJoin(sortedSource(t, outer, "X"), sortedSource(t, inner, "X"),
				"R.X", "S.X", fuzzy.Crisp(0), nil, &ci)
		}
		if err != nil {
			t.Fatal(err)
		}
		mj.Stats = si
		batchDrain(t, mj)
		sameStats(t, "empty-side kernel join", sk, si)
		sameCounters(t, "empty-side kernel join", &ck, &ci)
	}
}

// TestMorselGrain pins the grain policy: serial runs get one morsel,
// parallel runs a bounded number of small ones.
func TestMorselGrain(t *testing.T) {
	if g := morselGrain(10000, 1); g <= 10000 {
		t.Errorf("serial grain %d must exceed the total weight", g)
	}
	if g := morselGrain(10000, 0); g <= 10000 {
		t.Errorf("grain for workers=0 is %d, want one morsel", g)
	}
	if g := morselGrain(100000, 4); g != 100000/(4*16) {
		t.Errorf("parallel grain = %d, want %d", g, 100000/(4*16))
	}
	if g := morselGrain(100, 4); g != 256 {
		t.Errorf("small-input grain = %d, want the 256 floor", g)
	}
}
