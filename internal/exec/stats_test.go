package exec

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/frel"
)

func TestObserveRng(t *testing.T) {
	s := NewOpStats("merge-join", "R.B = S.B")
	for _, n := range []int64{3, 0, 7, 2} {
		s.ObserveRng(n)
	}
	snap := s.Snapshot()
	if snap.RngCount != 4 || snap.RngMin != 0 || snap.RngMax != 7 {
		t.Fatalf("rng stats = n%d min%d max%d, want n4 min0 max7", snap.RngCount, snap.RngMin, snap.RngMax)
	}
	if snap.RngAvg != 3 {
		t.Fatalf("RngAvg = %g, want 3", snap.RngAvg)
	}
}

func TestSnapshotTree(t *testing.T) {
	root := NewOpStats("project", "")
	child := NewOpStats("scan", "R")
	root.AddChild(child)
	root.AddChild(nil) // ignored
	root.RowsOut.Add(2)
	root.Comparisons.Add(5)
	child.RowsOut.Add(10)
	child.DegreeEvals.Add(4)

	snap := root.Snapshot()
	rows, cmp, deg := snap.Totals()
	if rows != 12 || cmp != 5 || deg != 4 {
		t.Fatalf("Totals = (%d, %d, %d), want (12, 5, 4)", rows, cmp, deg)
	}
	if got := snap.Find("scan"); got == nil || got.Label != "R" {
		t.Fatalf("Find(scan) = %+v", got)
	}
	if snap.Find("sort") != nil {
		t.Fatal("Find(sort) found a node that does not exist")
	}
	r := snap.Render()
	if !strings.Contains(r, "project") || !strings.Contains(r, "scan [R]") {
		t.Fatalf("Render missing operators:\n%s", r)
	}
	// The snapshot is the wire format of fuzzybench -json; it must be
	// JSON-serializable with the documented field names.
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"op"`, `"rows_out"`, `"degree_evals"`, `"children"`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("JSON missing %s: %s", key, b)
		}
	}
}

func TestStatedCountsRows(t *testing.T) {
	sch := frel.NewSchema("R", frel.Attribute{Name: "X", Kind: frel.KindNumber})
	rel := frel.NewRelation(sch)
	for i := 0; i < 5; i++ {
		rel.Append(frel.NewTuple(1, frel.Crisp(float64(i))))
	}
	node := NewOpStats("scan", "R")
	st := NewStated(NewMemSource(rel), node)
	if st.Schema() != sch {
		t.Fatal("Schema not forwarded")
	}
	out, err := Collect(st)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 5 {
		t.Fatalf("collected %d tuples, want 5", out.Len())
	}
	if got := node.RowsOut.Load(); got != 5 {
		t.Fatalf("RowsOut = %d, want 5", got)
	}
	if node.WallNanos.Load() < 0 {
		t.Fatal("negative wall time")
	}
}

func TestUnwrap(t *testing.T) {
	sch := frel.NewSchema("R", frel.Attribute{Name: "X", Kind: frel.KindNumber})
	src := Source(NewMemSource(frel.NewRelation(sch)))
	wrapped := NewStated(NewStated(src, NewOpStats("a", "")), NewOpStats("b", ""))
	if got := Unwrap(wrapped); got != src {
		t.Fatalf("Unwrap = %T, want the underlying MemSource", got)
	}
	if got := Unwrap(src); got != src {
		t.Fatal("Unwrap changed an unwrapped source")
	}
}
