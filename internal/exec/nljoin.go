package exec

import (
	"repro/internal/frel"
	"repro/internal/storage"
)

// BlockNLJoin is the naive (block) nested-loop join the paper's nested
// queries must be evaluated with (Sections 1 and 3). Following the
// experimental setup of Section 9, one buffer page is allocated to the
// inner relation and the rest of the memory budget to the outer relation:
// the outer source is consumed in blocks of up to BlockBytes, and for each
// block the inner source is scanned once, joining every inner tuple with
// every buffered outer tuple. CPU cost is O(n_R × n_S); I/O cost is
// b_R + ceil(b_R / (M-1)) × b_S.
//
// The emitted tuple is outer ++ inner with degree
// min(outer.D, inner.D, On(outer, inner)).
type BlockNLJoin struct {
	Outer, Inner Source
	On           JoinPred
	BlockBytes   int // outer block budget; default one page
	Counters     *Counters

	// Stats, when non-nil, receives the per-operator EXPLAIN ANALYZE
	// measures; every outer×inner pair counts as one comparison and one
	// degree evaluation.
	Stats *OpStats

	schema *frel.Schema
}

// NewBlockNLJoin builds a block nested-loop join with the given outer
// block budget in bytes (values < 1 default to one page).
func NewBlockNLJoin(outer, inner Source, on JoinPred, blockBytes int, counters *Counters) *BlockNLJoin {
	if blockBytes < 1 {
		blockBytes = storage.PageSize
	}
	if counters == nil {
		counters = &Counters{}
	}
	return &BlockNLJoin{
		Outer:      outer,
		Inner:      inner,
		On:         on,
		BlockBytes: blockBytes,
		Counters:   counters,
		schema:     outer.Schema().Join(inner.Schema()),
	}
}

// Schema implements Source.
func (j *BlockNLJoin) Schema() *frel.Schema { return j.schema }

// Open implements Source.
func (j *BlockNLJoin) Open() (Iterator, error) {
	outerIt, err := j.Outer.Open()
	if err != nil {
		return nil, err
	}
	return &nlIterator{join: j, outer: outerIt}, nil
}

type nlIterator struct {
	join  *BlockNLJoin
	outer Iterator

	block     []frel.Tuple
	outerDone bool

	inner    Iterator
	innerCur frel.Tuple
	innerOK  bool
	blockPos int

	err error
}

// fillBlock buffers the next block of outer tuples within the byte budget.
func (it *nlIterator) fillBlock() bool {
	it.block = it.block[:0]
	if it.outerDone {
		return false
	}
	schema := it.join.Outer.Schema()
	used := 0
	for used < it.join.BlockBytes {
		t, ok := it.outer.Next()
		if !ok {
			it.outerDone = true
			break
		}
		it.block = append(it.block, t)
		used += frel.EncodedSize(schema, t)
	}
	return len(it.block) > 0
}

func (it *nlIterator) Next() (frel.Tuple, bool) {
	for {
		if it.err != nil {
			return frel.Tuple{}, false
		}
		if it.inner == nil {
			if !it.fillBlock() {
				if e := it.outer.Err(); e != nil {
					it.err = e
				}
				return frel.Tuple{}, false
			}
			in, err := it.join.Inner.Open()
			if err != nil {
				it.err = err
				return frel.Tuple{}, false
			}
			it.inner = in
			it.innerOK = false
			it.blockPos = 0
		}
		if !it.innerOK {
			t, ok := it.inner.Next()
			if !ok {
				if e := it.inner.Err(); e != nil {
					it.err = e
					return frel.Tuple{}, false
				}
				it.inner.Close()
				it.inner = nil
				continue // next outer block
			}
			it.innerCur = t
			it.innerOK = true
			it.blockPos = 0
		}
		for it.blockPos < len(it.block) {
			l := it.block[it.blockPos]
			r := it.innerCur
			it.blockPos++
			it.join.Counters.DegreeEvals.Add(1)
			if st := it.join.Stats; st != nil {
				st.Comparisons.Add(1)
				st.DegreeEvals.Add(1)
			}
			d := it.join.On(l, r)
			if l.D < d {
				d = l.D
			}
			if r.D < d {
				d = r.D
			}
			if d > 0 {
				it.join.Counters.TuplesOut.Add(1)
				return l.Concat(r, d), true
			}
		}
		it.innerOK = false // advance to next inner tuple
	}
}

func (it *nlIterator) Err() error { return it.err }

func (it *nlIterator) Close() {
	if it.inner != nil {
		it.inner.Close()
		it.inner = nil
	}
	it.outer.Close()
}
