package exec

import (
	"fmt"

	"repro/internal/frel"
	"repro/internal/fuzzy"
)

// The extended merge-join of Section 3: both inputs are sorted on the join
// attribute by the Definition 3.1 interval order ≼; for each outer tuple r
// only the inner tuples in Rng(r) — those whose join-value supports
// intersect r's — are examined. A start cursor advances past inner tuples
// whose support ends before r's begins (they precede every later range
// too), and the scan of the inner relation stops at the first tuple whose
// support begins after r's ends. Inner tuples between the cursor and the
// stop point are kept buffered, mirroring the pinned pages of the paper's
// algorithm, so the inner relation is read exactly once.

// window maintains the buffered slice of inner tuples that may still
// intersect current or future outer tuples.
type window struct {
	it  Iterator
	idx int // inner join attribute index

	buf   []frel.Tuple
	start int

	pending    frel.Tuple
	hasPending bool
	done       bool

	prevBegin float64
	seenAny   bool

	counters *Counters
	err      error
}

func newWindow(it Iterator, idx int, counters *Counters) *window {
	return &window{it: it, idx: idx, counters: counters}
}

func (w *window) supportOf(t frel.Tuple) (lo, hi float64) {
	return t.Values[w.idx].Num.Support()
}

// pull fetches the next inner tuple into pending, verifying sortedness.
func (w *window) pull() bool {
	if w.hasPending {
		return true
	}
	if w.done {
		return false
	}
	t, ok := w.it.Next()
	if !ok {
		if e := w.it.Err(); e != nil {
			w.err = e
		}
		w.done = true
		return false
	}
	lo, _ := w.supportOf(t)
	if w.seenAny && lo < w.prevBegin {
		w.err = fmt.Errorf("exec: merge-join inner input is not sorted by the Definition 3.1 order")
		w.done = true
		return false
	}
	w.prevBegin, w.seenAny = lo, true
	w.pending, w.hasPending = t, true
	return true
}

// advance drops the leading buffered tuples whose supports end before
// outerLo; they cannot intersect this or any later outer tuple.
func (w *window) advance(outerLo float64) {
	for w.start < len(w.buf) {
		if _, hi := w.supportOf(w.buf[w.start]); hi >= outerLo {
			break
		}
		w.start++
	}
	// Compact occasionally so dropped tuples are reclaimed.
	if w.start > 256 && w.start*2 > len(w.buf) {
		n := copy(w.buf, w.buf[w.start:])
		w.buf = w.buf[:n]
		w.start = 0
	}
}

// extend pulls inner tuples into the buffer while their supports begin at
// or before outerHi (i.e. they may belong to Rng of the current outer
// tuple).
func (w *window) extend(outerHi float64) {
	for w.pull() {
		lo, _ := w.supportOf(w.pending)
		if lo > outerHi {
			return
		}
		w.buf = append(w.buf, w.pending)
		w.hasPending = false
	}
}

// active returns the buffered tuples of the current range.
func (w *window) active() []frel.Tuple { return w.buf[w.start:] }

func (w *window) close() { w.it.Close() }

// checkJoinAttrs validates that both join attributes resolve to numeric
// attributes and returns their indexes.
func checkJoinAttrs(outer, inner Source, outerAttr, innerAttr string) (oi, ii int, err error) {
	oi, err = outer.Schema().Resolve(outerAttr)
	if err != nil {
		return 0, 0, err
	}
	ii, err = inner.Schema().Resolve(innerAttr)
	if err != nil {
		return 0, 0, err
	}
	if outer.Schema().Attrs[oi].Kind != frel.KindNumber || inner.Schema().Attrs[ii].Kind != frel.KindNumber {
		return 0, 0, fmt.Errorf("exec: merge-join attributes %s/%s must be numeric (the order ≼ requires continuous possibility distributions)", outerAttr, innerAttr)
	}
	return oi, ii, nil
}

// MergeJoin is the extended merge-join on the fuzzy equi-join condition
// outer.OuterAttr = inner.InnerAttr. Both inputs must already be sorted on
// their join attribute by the Definition 3.1 order (use extsort.ByAttr).
// Extra, if non-nil, contributes additional conjunctive predicate degrees
// (e.g. the second join predicate of an unnested type J query).
//
// The emitted tuple is outer ++ inner with degree
// min(outer.D, inner.D, d(outer.X = inner.X), Extra(outer, inner)).
type MergeJoin struct {
	Outer, Inner         Source
	OuterAttr, InnerAttr string
	Extra                JoinPred
	Counters             *Counters

	// Tol generalizes the equi-join to a band join (Section 3 relates the
	// fuzzy equi-join to band joins): the join degree becomes the
	// similarity d(outer.X ≈ inner.X) under the tolerance distribution of
	// acceptable differences, and the Rng(r) cursor widens accordingly.
	// The zero value is Crisp(0): exact fuzzy equality.
	Tol fuzzy.Trapezoid

	// Stats, when non-nil, receives the per-operator EXPLAIN ANALYZE
	// measures. Unlike Counters.Comparisons (which counts every window
	// tuple examined, including dangling tuples, and so differs between
	// serial and partitioned execution), Stats.Comparisons counts only
	// support-intersecting pairs — a partition-invariant quantity — and
	// the Rng(r) scan length of each outer tuple is reported through
	// Stats.ObserveRng.
	Stats *OpStats

	schema *frel.Schema
	oi, ii int
}

// NewMergeJoin builds an extended merge-join on exact fuzzy equality.
func NewMergeJoin(outer, inner Source, outerAttr, innerAttr string, extra JoinPred, counters *Counters) (*MergeJoin, error) {
	return NewBandMergeJoin(outer, inner, outerAttr, innerAttr, fuzzy.Crisp(0), extra, counters)
}

// NewBandMergeJoin builds an extended merge-join with a band tolerance:
// tuples join to the degree their values are approximately equal under
// tol (see fuzzy.ApproxEq). With crisp values and a crisp symmetric tol
// this is exactly the band join of the related work the paper cites.
func NewBandMergeJoin(outer, inner Source, outerAttr, innerAttr string, tol fuzzy.Trapezoid, extra JoinPred, counters *Counters) (*MergeJoin, error) {
	oi, ii, err := checkJoinAttrs(outer, inner, outerAttr, innerAttr)
	if err != nil {
		return nil, err
	}
	if !tol.Valid() {
		return nil, fmt.Errorf("exec: invalid band tolerance %v", tol)
	}
	if counters == nil {
		counters = &Counters{}
	}
	return &MergeJoin{
		Outer: outer, Inner: inner,
		OuterAttr: outerAttr, InnerAttr: innerAttr,
		Extra: extra, Counters: counters, Tol: tol,
		schema: outer.Schema().Join(inner.Schema()),
		oi:     oi, ii: ii,
	}, nil
}

// Schema implements Source.
func (j *MergeJoin) Schema() *frel.Schema { return j.schema }

// Open implements Source.
func (j *MergeJoin) Open() (Iterator, error) {
	outerIt, err := j.Outer.Open()
	if err != nil {
		return nil, err
	}
	innerIt, err := j.Inner.Open()
	if err != nil {
		outerIt.Close()
		return nil, err
	}
	return &mergeJoinIterator{
		j:     j,
		outer: outerIt,
		win:   newWindow(innerIt, j.ii, j.Counters),
	}, nil
}

type mergeJoinIterator struct {
	j     *MergeJoin
	outer Iterator
	win   *window

	cur       frel.Tuple
	curActive []frel.Tuple
	curPos    int
	haveCur   bool
	curRng    int64 // intersecting inner tuples seen for cur (Rng(r))

	prevBegin float64
	seenAny   bool
	err       error
}

func (it *mergeJoinIterator) Next() (frel.Tuple, bool) {
	for {
		if it.err != nil {
			return frel.Tuple{}, false
		}
		if !it.haveCur {
			l, ok := it.outer.Next()
			if !ok {
				if e := it.outer.Err(); e != nil {
					it.err = e
				}
				return frel.Tuple{}, false
			}
			lo, hi := l.Values[it.j.oi].Num.Support()
			if it.seenAny && lo < it.prevBegin {
				it.err = fmt.Errorf("exec: merge-join outer input is not sorted by the Definition 3.1 order")
				return frel.Tuple{}, false
			}
			it.prevBegin, it.seenAny = lo, true
			// A band tolerance widens the range: an inner value s may join
			// when support(s ⊕ tol) intersects support(r).
			it.win.advance(lo - it.j.Tol.D)
			it.win.extend(hi - it.j.Tol.A)
			if it.win.err != nil {
				it.err = it.win.err
				return frel.Tuple{}, false
			}
			it.cur = l
			it.curActive = it.win.active()
			it.curPos = 0
			it.haveCur = true
			it.curRng = 0
		}
		lX := it.cur.Values[it.j.oi].Num
		for it.curPos < len(it.curActive) {
			s := it.curActive[it.curPos]
			it.curPos++
			it.j.Counters.Comparisons.Add(1)
			sX := fuzzy.Add(s.Values[it.j.ii].Num, it.j.Tol)
			if !lX.Intersects(sX) {
				continue // dangling tuple inside the range
			}
			it.curRng++
			if st := it.j.Stats; st != nil {
				st.Comparisons.Add(1)
				st.DegreeEvals.Add(1)
			}
			it.j.Counters.DegreeEvals.Add(1)
			d := fuzzy.Eq(lX, sX)
			if it.cur.D < d {
				d = it.cur.D
			}
			if s.D < d {
				d = s.D
			}
			if d > 0 && it.j.Extra != nil {
				it.j.Counters.DegreeEvals.Add(1)
				if st := it.j.Stats; st != nil {
					st.DegreeEvals.Add(1)
				}
				if g := it.j.Extra(it.cur, s); g < d {
					d = g
				}
			}
			if d > 0 {
				it.j.Counters.TuplesOut.Add(1)
				return it.cur.Concat(s, d), true
			}
		}
		if st := it.j.Stats; st != nil {
			st.ObserveRng(it.curRng)
		}
		it.haveCur = false
	}
}

func (it *mergeJoinIterator) Err() error { return it.err }

func (it *mergeJoinIterator) Close() {
	it.win.close()
	it.outer.Close()
}

// MergeAntiMin evaluates the group-minimum anti-join pattern produced by
// unnesting the set-exclusion (JX, Section 5) and universally quantified
// (JALL, Section 7) queries: for each outer tuple r it emits r with degree
//
//	d′_r = min( r.D, min over s in Rng(r) of Penalty(r, s) ),
//
// where Penalty returns 1 − min(µ_S(s), …) per the rewrite. Inner tuples
// outside Rng(r) satisfy Penalty = 1 by construction — their equi-join
// degree is 0 — so scanning only Rng(r) with the merge cursor computes the
// same minimum the GROUPBY R.K / MIN(D) query computes over all of S.
// Outer tuples whose final degree is 0 are dropped.
type MergeAntiMin struct {
	Outer, Inner         Source
	OuterAttr, InnerAttr string
	Penalty              JoinPred
	Counters             *Counters

	// Stats, when non-nil, receives the per-operator EXPLAIN ANALYZE
	// measures (see MergeJoin.Stats for the counting conventions).
	Stats *OpStats

	oi, ii int
}

// NewMergeAntiMin builds the operator; inputs must be sorted like for
// MergeJoin, and Penalty must evaluate to 1 for pairs whose join-attribute
// supports do not intersect.
func NewMergeAntiMin(outer, inner Source, outerAttr, innerAttr string, penalty JoinPred, counters *Counters) (*MergeAntiMin, error) {
	oi, ii, err := checkJoinAttrs(outer, inner, outerAttr, innerAttr)
	if err != nil {
		return nil, err
	}
	if counters == nil {
		counters = &Counters{}
	}
	return &MergeAntiMin{
		Outer: outer, Inner: inner,
		OuterAttr: outerAttr, InnerAttr: innerAttr,
		Penalty: penalty, Counters: counters,
		oi: oi, ii: ii,
	}, nil
}

// Schema implements Source: the output carries the outer tuples.
func (j *MergeAntiMin) Schema() *frel.Schema { return j.Outer.Schema() }

// Open implements Source.
func (j *MergeAntiMin) Open() (Iterator, error) {
	outerIt, err := j.Outer.Open()
	if err != nil {
		return nil, err
	}
	innerIt, err := j.Inner.Open()
	if err != nil {
		outerIt.Close()
		return nil, err
	}
	return &antiMinIterator{
		j:     j,
		outer: outerIt,
		win:   newWindow(innerIt, j.ii, j.Counters),
	}, nil
}

type antiMinIterator struct {
	j     *MergeAntiMin
	outer Iterator
	win   *window

	prevBegin float64
	seenAny   bool
	err       error
}

func (it *antiMinIterator) Next() (frel.Tuple, bool) {
	for {
		if it.err != nil {
			return frel.Tuple{}, false
		}
		l, ok := it.outer.Next()
		if !ok {
			if e := it.outer.Err(); e != nil {
				it.err = e
			}
			return frel.Tuple{}, false
		}
		lo, hi := l.Values[it.j.oi].Num.Support()
		if it.seenAny && lo < it.prevBegin {
			it.err = fmt.Errorf("exec: merge anti-join outer input is not sorted by the Definition 3.1 order")
			return frel.Tuple{}, false
		}
		it.prevBegin, it.seenAny = lo, true
		it.win.advance(lo)
		it.win.extend(hi)
		if it.win.err != nil {
			it.err = it.win.err
			return frel.Tuple{}, false
		}
		d := l.D
		lX := l.Values[it.j.oi].Num
		var rng int64
		for _, s := range it.win.active() {
			it.j.Counters.Comparisons.Add(1)
			if !lX.Intersects(s.Values[it.j.ii].Num) {
				continue // Penalty would be 1
			}
			rng++
			if st := it.j.Stats; st != nil {
				st.Comparisons.Add(1)
				st.DegreeEvals.Add(1)
			}
			it.j.Counters.DegreeEvals.Add(1)
			if g := it.j.Penalty(l, s); g < d {
				d = g
				if d == 0 {
					break
				}
			}
		}
		if st := it.j.Stats; st != nil {
			st.ObserveRng(rng)
		}
		if d > 0 {
			out := l
			out.D = d
			it.j.Counters.TuplesOut.Add(1)
			return out, true
		}
	}
}

func (it *antiMinIterator) Err() error { return it.err }

func (it *antiMinIterator) Close() {
	it.win.close()
	it.outer.Close()
}
