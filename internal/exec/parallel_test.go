package exec

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/frel"
	"repro/internal/fuzzy"
)

// vagueRel mixes the narrow values of randomRel with a fraction of very
// wide supports (the paper's closing caveat: temporal-database-sized
// intervals), which keep dangling tuples inside Rng(r) and force the
// partitioner to widen its cuts past long runs of overlapping intervals.
func vagueRel(name string, n int, span float64, vagueEvery int, rng *rand.Rand) *frel.Relation {
	r := randomRel(name, n, span, 4, rng)
	if vagueEvery <= 0 {
		return r
	}
	xi, _ := r.Schema.Resolve("X")
	for i := range r.Tuples {
		if i%vagueEvery == 0 {
			c := r.Tuples[i].Values[xi].Num.Centroid()
			w := span * (0.05 + rng.Float64()*0.3)
			r.Tuples[i].Values[xi] = frel.Num(fuzzy.Tri(c-w, c, c+w))
		}
	}
	return r
}

// identicalSequences requires the two relations to hold the same tuples in
// the same order with degrees equal to within tol.
func identicalSequences(t *testing.T, serial, parallel *frel.Relation, tol float64) {
	t.Helper()
	if serial.Len() != parallel.Len() {
		t.Fatalf("serial emitted %d tuples, parallel %d", serial.Len(), parallel.Len())
	}
	for i := range serial.Tuples {
		st, pt := serial.Tuples[i], parallel.Tuples[i]
		if st.Key() != pt.Key() {
			t.Fatalf("tuple %d: serial %v, parallel %v", i, st, pt)
		}
		if math.Abs(st.D-pt.D) > tol {
			t.Fatalf("tuple %d: serial degree %g, parallel %g", i, st.D, pt.D)
		}
	}
}

// TestParallelMergeJoinEquivalence is the randomized property test: over
// workloads with narrow, wide-interval, and dangling tuples, the parallel
// partitioned merge-join must return the identical fuzzy relation — same
// tuples, same emission order, degrees equal to 1e-9 — as the serial
// operator, at every worker count, with identical work counters.
func TestParallelMergeJoinEquivalence(t *testing.T) {
	cases := []struct {
		name       string
		n          int
		span       float64
		vagueEvery int // 0 = narrow values only
	}{
		{"narrow", 300, 2000, 0},
		{"clustered", 250, 200, 0}, // heavy overlap, few partitions
		{"vague10", 300, 2000, 10},
		{"vague3", 200, 1000, 3}, // wide intervals dominate
		{"tiny", 7, 50, 2},
	}
	for _, tc := range cases {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", tc.name, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				r := vagueRel("R", tc.n, tc.span, tc.vagueEvery, rng)
				s := vagueRel("S", tc.n+rng.Intn(100), tc.span, tc.vagueEvery, rng)
				var sc Counters
				mj, err := NewMergeJoin(sortedSource(t, r, "X"), sortedSource(t, s, "X"), "R.X", "S.X", nil, &sc)
				if err != nil {
					t.Fatal(err)
				}
				serial := drain(t, mj)
				for _, workers := range []int{1, 2, 3, 8} {
					var pc Counters
					pj, err := NewParallelMergeJoin(sortedSource(t, r, "X"), sortedSource(t, s, "X"),
						"R.X", "S.X", fuzzy.Crisp(0), nil, &pc, workers)
					if err != nil {
						t.Fatal(err)
					}
					identicalSequences(t, serial, drain(t, pj), 1e-9)
					// Degree evaluations and output tuples must match the
					// serial operator exactly. Pair examinations may only
					// shrink: a partition boundary pre-drops dangling
					// tuples the serial window examines when they arrive
					// in the same extend batch as the range's real
					// members.
					if pc.DegreeEvals.Load() != sc.DegreeEvals.Load() ||
						pc.TuplesOut.Load() != sc.TuplesOut.Load() {
						t.Errorf("workers=%d: work diverges: serial evals/out %d/%d, parallel %d/%d",
							workers,
							sc.DegreeEvals.Load(), sc.TuplesOut.Load(),
							pc.DegreeEvals.Load(), pc.TuplesOut.Load())
					}
					if pc.Comparisons.Load() > sc.Comparisons.Load() {
						t.Errorf("workers=%d: parallel examined %d pairs, serial only %d",
							workers, pc.Comparisons.Load(), sc.Comparisons.Load())
					}
					if pc.Comparisons.Load() < pc.DegreeEvals.Load() {
						t.Errorf("workers=%d: comparisons %d below degree evals %d",
							workers, pc.Comparisons.Load(), pc.DegreeEvals.Load())
					}
				}
			})
		}
	}
}

// TestParallelBandMergeJoinEquivalence repeats the property under an
// asymmetric band tolerance, which shifts the inner intervals the
// partitioner must widen cuts around.
func TestParallelBandMergeJoinEquivalence(t *testing.T) {
	tols := []fuzzy.Trapezoid{
		fuzzy.Tri(-5, 0, 5),
		fuzzy.Trap(-8, -2, 1, 12), // asymmetric: shifts Rng(r) off-centre
	}
	for ti, tol := range tols {
		for seed := int64(10); seed <= 12; seed++ {
			t.Run(fmt.Sprintf("tol=%d/seed=%d", ti, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				r := vagueRel("R", 200, 800, 8, rng)
				s := vagueRel("S", 230, 800, 8, rng)
				mj, err := NewBandMergeJoin(sortedSource(t, r, "X"), sortedSource(t, s, "X"),
					"R.X", "S.X", tol, nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				serial := drain(t, mj)
				for _, workers := range []int{2, 5} {
					pj, err := NewParallelMergeJoin(sortedSource(t, r, "X"), sortedSource(t, s, "X"),
						"R.X", "S.X", tol, nil, nil, workers)
					if err != nil {
						t.Fatal(err)
					}
					identicalSequences(t, serial, drain(t, pj), 1e-9)
				}
			})
		}
	}
}

// TestParallelMergeJoinExtraPred checks that extra conjunctive predicates
// (the second predicate of an unnested type J query) survive partitioning.
func TestParallelMergeJoinExtraPred(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	r := vagueRel("R", 150, 500, 6, rng)
	s := vagueRel("S", 150, 500, 6, rng)
	ri, _ := r.Schema.Resolve("ID")
	si, _ := s.Schema.Resolve("ID")
	extra := func(l, m frel.Tuple) float64 {
		// An arbitrary deterministic degree depending on both sides.
		return fuzzy.Eq(l.Values[ri].Num, m.Values[si].Num)/2 + 0.5
	}
	mj, err := NewMergeJoin(sortedSource(t, r, "X"), sortedSource(t, s, "X"), "R.X", "S.X", extra, nil)
	if err != nil {
		t.Fatal(err)
	}
	serial := drain(t, mj)
	pj, err := NewParallelMergeJoin(sortedSource(t, r, "X"), sortedSource(t, s, "X"),
		"R.X", "S.X", fuzzy.Crisp(0), extra, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	identicalSequences(t, serial, drain(t, pj), 1e-9)
}

// TestAtomicCutsIndependence verifies the partition invariant directly:
// no (outer, inner) pair whose supports intersect (after band widening)
// may straddle a cut.
func TestAtomicCutsIndependence(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		r := vagueRel("R", 120, 600, 7, rng)
		s := vagueRel("S", 140, 600, 7, rng)
		tol := fuzzy.Trap(-4, -1, 2, 6)
		rs := sortedSource(t, r, "X").(*MemSource).Rel
		ss := sortedSource(t, s, "X").(*MemSource).Rel
		oi, _ := rs.Schema.Resolve("X")
		ii, _ := ss.Schema.Resolve("X")
		ranges := atomicCuts(rs.Tuples, ss.Tuples, oi, ii, tol)
		// Ranges must tile both inputs in order.
		po, pi := 0, 0
		for _, p := range ranges {
			if p.oLo != po || p.iLo != pi {
				t.Fatalf("ranges do not tile: %+v after (%d,%d)", p, po, pi)
			}
			po, pi = p.oHi, p.iHi
		}
		if po != rs.Len() || pi != ss.Len() {
			t.Fatalf("ranges end at (%d,%d), want (%d,%d)", po, pi, rs.Len(), ss.Len())
		}
		outerPart := make([]int, rs.Len())
		innerPart := make([]int, ss.Len())
		for pn, p := range ranges {
			for i := p.oLo; i < p.oHi; i++ {
				outerPart[i] = pn
			}
			for i := p.iLo; i < p.iHi; i++ {
				innerPart[i] = pn
			}
		}
		for i, l := range rs.Tuples {
			for j, m := range ss.Tuples {
				shifted := fuzzy.Add(m.Values[ii].Num, tol)
				if l.Values[oi].Num.Intersects(shifted) && outerPart[i] != innerPart[j] {
					t.Fatalf("seed %d: intersecting pair (%d,%d) split across partitions %d/%d",
						seed, i, j, outerPart[i], innerPart[j])
				}
			}
		}
	}
}

// TestBalanceParts checks coalescing respects bounds and order.
func TestBalanceParts(t *testing.T) {
	ranges := make([]partRange, 10)
	o := 0
	for i := range ranges {
		w := 1 + i%3
		ranges[i] = partRange{o, o + w, o, o + w}
		o += w
	}
	for _, maxParts := range []int{1, 2, 3, 10, 50} {
		got := balanceParts(ranges, maxParts)
		want := maxParts
		if want > len(ranges) {
			want = len(ranges)
		}
		if len(got) > want {
			t.Errorf("maxParts=%d: got %d parts", maxParts, len(got))
		}
		if got[0].oLo != 0 || got[len(got)-1].oHi != o {
			t.Errorf("maxParts=%d: parts do not span input", maxParts)
		}
		for i := 1; i < len(got); i++ {
			if got[i].oLo != got[i-1].oHi {
				t.Errorf("maxParts=%d: gap between parts %d and %d", maxParts, i-1, i)
			}
		}
	}
}

// TestParallelMergeJoinUnsortedInput: the materializing open must reject
// inputs that violate the Definition 3.1 order, like the serial operator.
func TestParallelMergeJoinUnsortedInput(t *testing.T) {
	r := frel.NewRelation(xSchema("R"))
	r.Append(frel.NewTuple(1, frel.Crisp(1), frel.Crisp(10)))
	r.Append(frel.NewTuple(1, frel.Crisp(2), frel.Crisp(5)))
	s := frel.NewRelation(xSchema("S"))
	s.Append(frel.NewTuple(1, frel.Crisp(1), frel.Crisp(7)))
	pj, err := NewParallelMergeJoin(NewMemSource(r), NewMemSource(s), "R.X", "S.X",
		fuzzy.Crisp(0), nil, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pj.Open(); err == nil {
		t.Fatal("unsorted outer input: want error")
	}
}
