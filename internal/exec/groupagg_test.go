package exec

import (
	"math/rand"
	"testing"

	"repro/internal/extsort"
	"repro/internal/frel"
	"repro/internal/fuzzy"
)

// uvzSchema: U is the correlation attribute, Y the compared attribute.
func outerSchema() *frel.Schema {
	return frel.NewSchema("R",
		frel.Attribute{Name: "U", Kind: frel.KindNumber},
		frel.Attribute{Name: "Y", Kind: frel.KindNumber},
	)
}

func innerSchema() *frel.Schema {
	return frel.NewSchema("S",
		frel.Attribute{Name: "V", Kind: frel.KindNumber},
		frel.Attribute{Name: "Z", Kind: frel.KindNumber},
	)
}

// bruteJA evaluates the nested JA semantics directly (Section 6): for each
// outer tuple r build T(r) over all of S, aggregate, compare.
func bruteJA(r, s *frel.Relation, agg fuzzy.AggFunc, op1, op2 fuzzy.Op) *frel.Relation {
	out := frel.NewRelation(r.Schema)
	ui, _ := r.Schema.Resolve("U")
	yi, _ := r.Schema.Resolve("Y")
	vi, _ := s.Schema.Resolve("V")
	zi, _ := s.Schema.Resolve("Z")
	for _, l := range r.Tuples {
		byKey := make(map[string]*fuzzy.Member)
		order := []string{}
		for _, m := range s.Tuples {
			d := fuzzy.Min(m.D, fuzzy.Degree(op2, m.Values[vi].Num, l.Values[ui].Num))
			if d <= 0 {
				continue
			}
			k := m.Values[zi].Key()
			if e, ok := byKey[k]; ok {
				if d > e.Mu {
					e.Mu = d
				}
			} else {
				byKey[k] = &fuzzy.Member{Value: m.Values[zi].Num, Mu: d}
				order = append(order, k)
			}
		}
		var members []fuzzy.Member
		for _, k := range order {
			members = append(members, *byKey[k])
		}
		a, ok := fuzzy.Aggregate(agg, members)
		if !ok {
			continue // NULL aggregate: r does not qualify
		}
		d := fuzzy.Min(l.D, fuzzy.Degree(op1, l.Values[yi].Num, a))
		if d > 0 {
			tup := l
			tup.D = d
			out.Append(tup)
		}
	}
	return out
}

func randomCorrelated(rng *rand.Rand, nOut, nIn int) (*frel.Relation, *frel.Relation) {
	r := frel.NewRelation(outerSchema())
	s := frel.NewRelation(innerSchema())
	val := func(center float64) fuzzy.Trapezoid {
		switch rng.Intn(3) {
		case 0:
			return fuzzy.Crisp(center)
		case 1:
			return fuzzy.Tri(center-1, center, center+1)
		default:
			return fuzzy.Trap(center-2, center-1, center+1, center+2)
		}
	}
	for i := 0; i < nOut; i++ {
		u := float64(rng.Intn(8)) * 10
		r.Append(frel.NewTuple(rng.Float64()*0.9+0.1, frel.Num(val(u)), frel.Crisp(rng.Float64()*100)))
	}
	for i := 0; i < nIn; i++ {
		v := float64(rng.Intn(8)) * 10
		s.Append(frel.NewTuple(rng.Float64()*0.9+0.1, frel.Num(val(v)), frel.Crisp(rng.Float64()*100)))
	}
	return r, s
}

func totalSortedSource(t *testing.T, r *frel.Relation, attr string) Source {
	t.Helper()
	c := r.Clone()
	less, err := extsort.ByAttrTotal(c.Schema, attr)
	if err != nil {
		t.Fatal(err)
	}
	extsort.SortRelation(c, less)
	return NewMemSource(c)
}

func TestGroupAggJoinMatchesBruteForceAllAggs(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	aggs := []fuzzy.AggFunc{fuzzy.AggCount, fuzzy.AggSum, fuzzy.AggAvg, fuzzy.AggMin, fuzzy.AggMax}
	ops := []fuzzy.Op{fuzzy.OpGt, fuzzy.OpLe, fuzzy.OpEq}
	for trial := 0; trial < 10; trial++ {
		r, s := randomCorrelated(rng, 25, 40)
		for _, agg := range aggs {
			for _, op1 := range ops {
				want := bruteJA(r, s, agg, op1, fuzzy.OpEq)
				j, err := NewGroupAggJoin(
					totalSortedSource(t, r, "U"), sortedSource(t, s, "V"),
					"R.U", "S.V", fuzzy.OpEq, "S.Z", agg, "R.Y", op1, nil)
				if err != nil {
					t.Fatal(err)
				}
				got := drain(t, j)
				if !got.Equal(want, 1e-12) {
					t.Fatalf("trial %d agg %v op %v: mismatch got %d want %d", trial, agg, op1, got.Len(), want.Len())
				}
			}
		}
	}
}

// TestGroupAggJoinCountEmptyGroup: the COUNT outer-join arm — an outer
// tuple with no matching inner tuples compares against 0 (Query COUNT').
func TestGroupAggJoinCountEmptyGroup(t *testing.T) {
	r := frel.NewRelation(outerSchema())
	r.Append(frel.NewTuple(1, frel.Crisp(999), frel.Crisp(0))) // no S.V matches 999; Y = 0
	s := frel.NewRelation(innerSchema())
	s.Append(frel.NewTuple(1, frel.Crisp(1), frel.Crisp(5)))

	// R.Y = COUNT(...): 0 = 0 holds with degree 1.
	j, err := NewGroupAggJoin(totalSortedSource(t, r, "U"), sortedSource(t, s, "V"),
		"R.U", "S.V", fuzzy.OpEq, "S.Z", fuzzy.AggCount, "R.Y", fuzzy.OpEq, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, j)
	if got.Len() != 1 || got.Tuples[0].D != 1 {
		t.Fatalf("COUNT empty group = %v, want one tuple with degree 1", got.Tuples)
	}

	// Non-COUNT aggregate: NULL, the tuple is dropped.
	j2, err := NewGroupAggJoin(totalSortedSource(t, r, "U"), sortedSource(t, s, "V"),
		"R.U", "S.V", fuzzy.OpEq, "S.Z", fuzzy.AggMax, "R.Y", fuzzy.OpEq, nil)
	if err != nil {
		t.Fatal(err)
	}
	got2 := drain(t, j2)
	if got2.Len() != 0 {
		t.Fatalf("MAX empty group = %v, want empty", got2.Tuples)
	}
}

// TestGroupAggJoinCountDistinctValues: COUNT counts the values in the
// fuzzy set T'(u), i.e. after duplicate elimination.
func TestGroupAggJoinCountDistinctValues(t *testing.T) {
	r := frel.NewRelation(outerSchema())
	r.Append(frel.NewTuple(1, frel.Crisp(1), frel.Crisp(2))) // expects COUNT = 2
	s := frel.NewRelation(innerSchema())
	s.Append(frel.NewTuple(1, frel.Crisp(1), frel.Crisp(7)))
	s.Append(frel.NewTuple(0.5, frel.Crisp(1), frel.Crisp(7))) // duplicate Z value
	s.Append(frel.NewTuple(1, frel.Crisp(1), frel.Crisp(9)))

	j, err := NewGroupAggJoin(totalSortedSource(t, r, "U"), sortedSource(t, s, "V"),
		"R.U", "S.V", fuzzy.OpEq, "S.Z", fuzzy.AggCount, "R.Y", fuzzy.OpEq, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, j)
	if got.Len() != 1 || got.Tuples[0].D != 1 {
		t.Fatalf("got %v, want COUNT = 2 matching Y = 2", got.Tuples)
	}
}

func TestGroupAggJoinNonEqualityCorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	r, s := randomCorrelated(rng, 15, 25)
	want := bruteJA(r, s, fuzzy.AggMax, fuzzy.OpGt, fuzzy.OpLe)
	j, err := NewGroupAggJoin(totalSortedSource(t, r, "U"), NewMemSource(s),
		"R.U", "S.V", fuzzy.OpLe, "S.Z", fuzzy.AggMax, "R.Y", fuzzy.OpGt, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, j)
	if !got.Equal(want, 1e-12) {
		t.Fatalf("non-equality correlation mismatch: got %d, want %d", got.Len(), want.Len())
	}
}

func TestGroupAggJoinValidation(t *testing.T) {
	r := frel.NewRelation(outerSchema())
	strS := frel.NewRelation(frel.NewSchema("S",
		frel.Attribute{Name: "V", Kind: frel.KindNumber},
		frel.Attribute{Name: "Z", Kind: frel.KindString},
	))
	// SUM over a string attribute is rejected; COUNT is fine.
	if _, err := NewGroupAggJoin(NewMemSource(r), NewMemSource(strS),
		"R.U", "S.V", fuzzy.OpEq, "S.Z", fuzzy.AggSum, "R.Y", fuzzy.OpGt, nil); err == nil {
		t.Errorf("SUM over strings: want error")
	}
	if _, err := NewGroupAggJoin(NewMemSource(r), NewMemSource(strS),
		"R.U", "S.V", fuzzy.OpEq, "S.Z", fuzzy.AggCount, "R.Y", fuzzy.OpGt, nil); err != nil {
		t.Errorf("COUNT over strings: %v", err)
	}
}

func TestGroupAggTopLevel(t *testing.T) {
	rel := frel.NewRelation(frel.NewSchema("R",
		frel.Attribute{Name: "DEPT", Kind: frel.KindString},
		frel.Attribute{Name: "SAL", Kind: frel.KindNumber},
	))
	rel.Append(
		frel.NewTuple(1.0, frel.Str("eng"), frel.Crisp(10)),
		frel.NewTuple(0.8, frel.Str("eng"), frel.Crisp(20)),
		frel.NewTuple(0.5, frel.Str("ops"), frel.Crisp(30)),
	)
	g, err := NewGroupAgg(NewMemSource(rel), []string{"DEPT"}, []AggItem{
		{Agg: fuzzy.AggCount, Ref: "SAL"},
		{Agg: fuzzy.AggSum, Ref: "SAL"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, g)
	if out.Len() != 2 {
		t.Fatalf("groups = %d", out.Len())
	}
	eng := out.Tuples[0]
	if eng.Values[0].Str != "eng" || eng.Values[1].Num != fuzzy.Crisp(2) || eng.Values[2].Num != fuzzy.Crisp(30) {
		t.Errorf("eng group = %v", eng)
	}
	if eng.D != 1.0 {
		t.Errorf("eng degree = %g, want max 1.0", eng.D)
	}
	ops := out.Tuples[1]
	if ops.Values[1].Num != fuzzy.Crisp(1) || ops.D != 0.5 {
		t.Errorf("ops group = %v", ops)
	}
	if got := g.Schema().Attrs[1].Name; got != "COUNT(R.SAL)" {
		t.Errorf("agg column name = %q", got)
	}
}

func TestGroupAggValidation(t *testing.T) {
	rel := frel.NewRelation(frel.NewSchema("R",
		frel.Attribute{Name: "NAME", Kind: frel.KindString},
	))
	if _, err := NewGroupAgg(NewMemSource(rel), []string{"NOPE"}, nil); err == nil {
		t.Errorf("unknown group ref: want error")
	}
	if _, err := NewGroupAgg(NewMemSource(rel), []string{"NAME"}, []AggItem{{Agg: fuzzy.AggAvg, Ref: "NAME"}}); err == nil {
		t.Errorf("AVG over strings: want error")
	}
}
