package exec

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/frel"
	"repro/internal/fuzzy"
)

// bruteNotIn computes, for each outer tuple r, the JX degree
// d'_r = min(µR(r), min over ALL s of (1 − min(µS(s), d(r.X = s.X)))),
// the reference for MergeAntiMin with a NOT IN penalty.
func bruteNotIn(r, s *frel.Relation) *frel.Relation {
	out := frel.NewRelation(r.Schema)
	ri, _ := r.Schema.Resolve("X")
	si, _ := s.Schema.Resolve("X")
	for _, l := range r.Tuples {
		d := l.D
		for _, m := range s.Tuples {
			pen := 1 - fuzzy.Min(m.D, fuzzy.Eq(l.Values[ri].Num, m.Values[si].Num))
			if pen < d {
				d = pen
			}
		}
		if d > 0 {
			t := l
			t.D = d
			out.Append(t)
		}
	}
	return out
}

func TestMergeAntiMinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		r := randomRel("R", 30, 40, 3, rng)
		s := randomRel("S", 40, 40, 3, rng)
		want := bruteNotIn(r, s)

		ri, _ := r.Schema.Resolve("X")
		si, _ := s.Schema.Resolve("X")
		penalty := func(l, m frel.Tuple) float64 {
			return 1 - fuzzy.Min(m.D, fuzzy.Eq(l.Values[ri].Num, m.Values[si].Num))
		}
		op, err := NewMergeAntiMin(sortedSource(t, r, "X"), sortedSource(t, s, "X"), "R.X", "S.X", penalty, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := drain(t, op)
		if !got.Equal(want, 1e-12) {
			t.Fatalf("trial %d: anti-min mismatch: got %d tuples, want %d", trial, got.Len(), want.Len())
		}
	}
}

func TestMergeAntiMinEmptyInner(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := randomRel("R", 10, 40, 2, rng)
	s := frel.NewRelation(xSchema("S"))
	penalty := func(l, m frel.Tuple) float64 { return 0 }
	op, err := NewMergeAntiMin(sortedSource(t, r, "X"), NewMemSource(s), "R.X", "S.X", penalty, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, op)
	// With an empty inner relation every outer tuple keeps its own degree
	// (Case 1 of Theorem 5.1).
	if got.Len() != r.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), r.Len())
	}
	sortedR := drain(t, sortedSource(t, r, "X"))
	for i := range got.Tuples {
		if got.Tuples[i].D != sortedR.Tuples[i].D {
			t.Errorf("tuple %d degree = %g, want %g", i, got.Tuples[i].D, sortedR.Tuples[i].D)
		}
	}
}

func TestMergeAntiMinDropsZeroDegree(t *testing.T) {
	// A crisp exact match with full degrees drives the penalty to 0.
	r := frel.NewRelation(xSchema("R"))
	r.Append(frel.NewTuple(1, frel.Crisp(1), frel.Crisp(5)))
	s := frel.NewRelation(xSchema("S"))
	s.Append(frel.NewTuple(1, frel.Crisp(9), frel.Crisp(5)))
	ri, _ := r.Schema.Resolve("X")
	si, _ := s.Schema.Resolve("X")
	penalty := func(l, m frel.Tuple) float64 {
		return 1 - fuzzy.Min(m.D, fuzzy.Eq(l.Values[ri].Num, m.Values[si].Num))
	}
	op, err := NewMergeAntiMin(NewMemSource(r), NewMemSource(s), "R.X", "S.X", penalty, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, op)
	if got.Len() != 0 {
		t.Errorf("len = %d, want 0", got.Len())
	}
}

func TestMergeAntiMinRejectsUnsorted(t *testing.T) {
	r := frel.NewRelation(xSchema("R"))
	r.Append(frel.NewTuple(1, frel.Crisp(1), frel.Crisp(10)))
	r.Append(frel.NewTuple(1, frel.Crisp(2), frel.Crisp(5)))
	s := frel.NewRelation(xSchema("S"))
	s.Append(frel.NewTuple(1, frel.Crisp(1), frel.Crisp(7)))
	op, err := NewMergeAntiMin(NewMemSource(r), NewMemSource(s), "R.X", "S.X", func(l, m frel.Tuple) float64 { return 1 }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(op); err == nil {
		t.Errorf("unsorted outer: want error")
	}
}

// bruteAll computes the JALL degree for R.X < ALL (inner X values):
// d_r = min(µR(r), min over s of (1 − min(µS(s), 1 − d(r.X < s.X)))).
// Note the range attribute used by the operator must come from an
// equality predicate; here we use a separate correlation attribute ID.
func TestMergeAntiMinQuantifiedAllStyle(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	// R and S correlated on crisp ID (equality), compared on X with <.
	mk := func(name string, n int) *frel.Relation {
		r := frel.NewRelation(xSchema(name))
		for i := 0; i < n; i++ {
			id := float64(rng.Intn(6))
			c := rng.Float64() * 30
			r.Append(frel.NewTuple(rng.Float64()*0.9+0.1, frel.Crisp(id), frel.Num(fuzzy.Tri(c-1, c, c+1))))
		}
		return r
	}
	r := mk("R", 25)
	s := mk("S", 35)

	rid, _ := r.Schema.Resolve("ID")
	sid, _ := s.Schema.Resolve("ID")
	rx, _ := r.Schema.Resolve("X")
	sx, _ := s.Schema.Resolve("X")
	penalty := func(l, m frel.Tuple) float64 {
		return 1 - fuzzy.Min(
			m.D,
			fuzzy.Eq(l.Values[rid].Num, m.Values[sid].Num),
			1-fuzzy.Lt(l.Values[rx].Num, m.Values[sx].Num),
		)
	}

	want := frel.NewRelation(r.Schema)
	for _, l := range r.Tuples {
		d := l.D
		for _, m := range s.Tuples {
			if p := penalty(l, m); p < d {
				d = p
			}
		}
		if d > 0 {
			tup := l
			tup.D = d
			want.Append(tup)
		}
	}

	// Range on the equality attribute ID.
	op, err := NewMergeAntiMin(sortedSource(t, r, "ID"), sortedSource(t, s, "ID"), "R.ID", "S.ID", penalty, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, op)
	if !got.Equal(want, 1e-12) {
		t.Fatalf("JALL-style anti-min mismatch: got %d, want %d", got.Len(), want.Len())
	}
	_ = math.Abs
}
