package exec

import (
	"testing"

	"repro/internal/frel"
	"repro/internal/fuzzy"
)

func relXY(name string, tuples ...frel.Tuple) *frel.Relation {
	r := frel.NewRelation(frel.NewSchema(name,
		frel.Attribute{Name: "X", Kind: frel.KindNumber},
		frel.Attribute{Name: "NAME", Kind: frel.KindString},
	))
	r.Append(tuples...)
	return r
}

func drain(t *testing.T, src Source) *frel.Relation {
	t.Helper()
	rel, err := Collect(src)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	return rel
}

func TestFilterCombinesDegrees(t *testing.T) {
	rel := relXY("R",
		frel.NewTuple(0.9, frel.Crisp(24), frel.Str("a")),
		frel.NewTuple(0.5, frel.Crisp(27), frel.Str("b")),
		frel.NewTuple(1.0, frel.Crisp(99), frel.Str("c")),
	)
	mediumYoung := fuzzy.Trap(20, 25, 30, 35)
	pred, err := RefDegree(rel.Schema, "X", func(v frel.Value) float64 {
		return fuzzy.Eq(v.Num, mediumYoung)
	})
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, NewFilter(NewMemSource(rel), pred))
	// (0.9, 24): min(0.9, 0.8) = 0.8; (0.5, 27): min(0.5, 1) = 0.5; 99 dropped.
	if out.Len() != 2 {
		t.Fatalf("len = %d: %v", out.Len(), out.Tuples)
	}
	if out.Tuples[0].D != 0.8 {
		t.Errorf("tuple 0 degree = %g, want 0.8", out.Tuples[0].D)
	}
	if out.Tuples[1].D != 0.5 {
		t.Errorf("tuple 1 degree = %g, want 0.5", out.Tuples[1].D)
	}
}

func TestAndShortCircuits(t *testing.T) {
	calls := 0
	p := And(
		func(frel.Tuple) float64 { calls++; return 0 },
		func(frel.Tuple) float64 { calls++; return 1 },
	)
	if got := p(frel.Tuple{}); got != 0 {
		t.Errorf("And = %g", got)
	}
	if calls != 1 {
		t.Errorf("calls = %d, want short-circuit after 0", calls)
	}
	if got := And()(frel.Tuple{}); got != 1 {
		t.Errorf("And() = %g, want 1", got)
	}
}

func TestProjectDedupMax(t *testing.T) {
	rel := relXY("R",
		frel.NewTuple(0.3, frel.Crisp(1), frel.Str("Ann")),
		frel.NewTuple(0.7, frel.Crisp(2), frel.Str("Ann")),
		frel.NewTuple(0.7, frel.Crisp(3), frel.Str("Betty")),
	)
	p, err := NewProject(NewMemSource(rel), []string{"NAME"}, true)
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, p)
	if out.Len() != 2 {
		t.Fatalf("len = %d", out.Len())
	}
	if out.Tuples[0].Values[0].Str != "Ann" || out.Tuples[0].D != 0.7 {
		t.Errorf("tuple 0 = %v", out.Tuples[0])
	}
	if out.Schema.Attrs[0].Name != "R.NAME" {
		t.Errorf("schema = %v", out.Schema)
	}
}

func TestProjectNoDedupStreams(t *testing.T) {
	rel := relXY("R",
		frel.NewTuple(0.3, frel.Crisp(1), frel.Str("Ann")),
		frel.NewTuple(0.7, frel.Crisp(2), frel.Str("Ann")),
	)
	p, err := NewProject(NewMemSource(rel), []string{"NAME"}, false)
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, p)
	if out.Len() != 2 {
		t.Errorf("len = %d, want duplicates kept", out.Len())
	}
}

func TestProjectUnknownRef(t *testing.T) {
	rel := relXY("R")
	if _, err := NewProject(NewMemSource(rel), []string{"NOPE"}, true); err == nil {
		t.Errorf("want error")
	}
}

func TestThreshold(t *testing.T) {
	rel := relXY("R",
		frel.NewTuple(0.2, frel.Crisp(1), frel.Str("a")),
		frel.NewTuple(0.5, frel.Crisp(2), frel.Str("b")),
		frel.NewTuple(0.8, frel.Crisp(3), frel.Str("c")),
	)
	out := drain(t, NewThreshold(NewMemSource(rel), 0.5))
	if out.Len() != 2 {
		t.Fatalf("len = %d", out.Len())
	}
	if out.Tuples[0].D != 0.5 {
		t.Errorf("threshold is inclusive: %v", out.Tuples[0])
	}
}

func TestErrfSource(t *testing.T) {
	src := Errf("boom %d", 42)
	if _, err := src.Open(); err == nil {
		t.Errorf("want error")
	}
}

func TestCollectAndSpillRoundTrip(t *testing.T) {
	rel := relXY("R",
		frel.NewTuple(0.5, frel.Crisp(1), frel.Str("a")),
		frel.NewTuple(0.9, frel.Crisp(2), frel.Str("b")),
	)
	got := drain(t, NewMemSource(rel))
	if !got.Equal(rel, 0) {
		t.Errorf("Collect mismatch")
	}
}
