package exec

import (
	"context"
	"testing"

	"repro/internal/frel"
)

func bigRel(n int) *frel.Relation {
	r := frel.NewRelation(frel.NewSchema("R", frel.Attribute{Name: "X", Kind: frel.KindNumber}))
	for i := 0; i < n; i++ {
		r.Append(frel.NewTuple(1, frel.Crisp(float64(i))))
	}
	return r
}

func TestWithContextPassthrough(t *testing.T) {
	src := NewMemSource(bigRel(3))
	if got := WithContext(nil, src); got != Source(src) {
		t.Errorf("nil context should return the source unchanged")
	}
	if got := WithContext(context.Background(), src); got != Source(src) {
		t.Errorf("non-cancellable context should return the source unchanged")
	}
}

func TestWithContextCancelledOpen(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src := WithContext(ctx, NewMemSource(bigRel(3)))
	if _, err := src.Open(); err != context.Canceled {
		t.Errorf("Open under cancelled context: err = %v, want context.Canceled", err)
	}
}

func TestWithContextCancelMidScan(t *testing.T) {
	const n = 100000
	ctx, cancel := context.WithCancel(context.Background())
	src := WithContext(ctx, NewMemSource(bigRel(n)))
	it, err := src.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	read := 0
	for i := 0; i < 10; i++ {
		if _, ok := it.Next(); !ok {
			t.Fatal("scan ended prematurely")
		}
		read++
	}
	cancel()
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		read++
	}
	if it.Err() != context.Canceled {
		t.Errorf("Err = %v, want context.Canceled", it.Err())
	}
	if read >= n {
		t.Errorf("scan read all %d tuples despite cancellation", read)
	}
}
