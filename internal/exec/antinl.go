package exec

import (
	"repro/internal/frel"
)

// NLAntiMin is the nested-loop fallback of the group-minimum anti-join
// (Queries JX′ and JALL′ when no merge range attribute is available, e.g.
// string link attributes): the inner relation is materialized once, and
// every outer tuple takes the minimum penalty over all inner tuples.
// Still an unnested evaluation — the inner block is not re-evaluated per
// outer tuple.
type NLAntiMin struct {
	Outer    Source
	Inner    []frel.Tuple
	Penalty  JoinPred
	Counters *Counters

	// Stats, when non-nil, receives the per-operator EXPLAIN ANALYZE
	// measures; every outer×inner pair counts as one comparison and one
	// degree evaluation.
	Stats *OpStats
}

// NewNLAntiMin builds the operator over a materialized inner relation.
func NewNLAntiMin(outer Source, inner []frel.Tuple, penalty JoinPred, counters *Counters) *NLAntiMin {
	if counters == nil {
		counters = &Counters{}
	}
	return &NLAntiMin{Outer: outer, Inner: inner, Penalty: penalty, Counters: counters}
}

// Schema implements Source; the output carries the outer schema.
func (j *NLAntiMin) Schema() *frel.Schema { return j.Outer.Schema() }

// Open implements Source.
func (j *NLAntiMin) Open() (Iterator, error) {
	it, err := j.Outer.Open()
	if err != nil {
		return nil, err
	}
	return &nlAntiIterator{j: j, outer: it}, nil
}

type nlAntiIterator struct {
	j     *NLAntiMin
	outer Iterator
}

func (it *nlAntiIterator) Next() (frel.Tuple, bool) {
	for {
		l, ok := it.outer.Next()
		if !ok {
			return frel.Tuple{}, false
		}
		d := l.D
		for _, r := range it.j.Inner {
			it.j.Counters.DegreeEvals.Add(1)
			if st := it.j.Stats; st != nil {
				st.Comparisons.Add(1)
				st.DegreeEvals.Add(1)
			}
			if g := it.j.Penalty(l, r); g < d {
				d = g
				if d == 0 {
					break
				}
			}
		}
		if d > 0 {
			l.D = d
			it.j.Counters.TuplesOut.Add(1)
			return l, true
		}
	}
}

func (it *nlAntiIterator) Err() error { return it.outer.Err() }
func (it *nlAntiIterator) Close()     { it.outer.Close() }
