// Package exec implements the physical query operators of the fuzzy
// database engine in the iterator (Volcano) style: scans, fuzzy selection,
// projection with max-degree duplicate elimination, the naive block
// nested-loop join, the paper's extended merge-join (Section 3), and the
// specialized operators the unnesting rewrites of Sections 5-7 compile to
// (merge anti-join with group-minimum degrees, sorted group-aggregate
// join with the COUNT outer-join arm).
//
// Operators exchange frel.Tuple values whose D field carries the running
// membership degree; every operator combines degrees with fuzzy AND (min)
// and drops tuples whose degree reaches 0, per the execution semantics of
// Section 2.2.
package exec

import (
	"sync/atomic"

	"repro/internal/frel"
	"repro/internal/storage"
)

// Iterator yields tuples one at a time. After Next returns ok == false the
// caller must check Err. Close releases resources and is idempotent.
type Iterator interface {
	Next() (t frel.Tuple, ok bool)
	Err() error
	Close()
}

// Source is an openable stream of tuples with a known schema. A Source may
// be opened multiple times (the nested-loop join re-opens its inner
// source once per outer block).
type Source interface {
	Schema() *frel.Schema
	Open() (Iterator, error)
}

// Counters accumulates the CPU-side work measures reported by the
// experiments: fuzzy degree evaluations (the dominant cost the paper
// attributes to "calls to the fuzzy library functions") and tuple
// comparisons made by merges. The fields are atomic so one Counters may be
// shared by the partition workers of a parallel merge-join; Counters must
// not be copied after first use.
type Counters struct {
	DegreeEvals atomic.Int64
	Comparisons atomic.Int64
	TuplesOut   atomic.Int64

	// Sort-order cache traffic: a hit means a query reused a previously
	// built sorted permutation (no re-sort), a miss means the order was
	// built and stored.
	SortCacheHits   atomic.Int64
	SortCacheMisses atomic.Int64

	// IndexHits counts sorted inputs served from a persistent order index
	// (no sort at all, neither cached nor fresh).
	IndexHits atomic.Int64

	// KernelTuples counts tuples whose degrees were computed by compiled
	// kernels (the fused filter and kernel merge-join hot loops) instead of
	// the interpreted evaluator; Morsels counts the work units the morsel
	// scheduler dispatched. Both are observability-only ablation measures:
	// they do not participate in any invariance oracle.
	KernelTuples atomic.Int64
	Morsels      atomic.Int64
}

// Add accumulates other into c.
func (c *Counters) Add(other *Counters) {
	c.DegreeEvals.Add(other.DegreeEvals.Load())
	c.Comparisons.Add(other.Comparisons.Load())
	c.TuplesOut.Add(other.TuplesOut.Load())
	c.SortCacheHits.Add(other.SortCacheHits.Load())
	c.SortCacheMisses.Add(other.SortCacheMisses.Load())
	c.IndexHits.Add(other.IndexHits.Load())
	c.KernelTuples.Add(other.KernelTuples.Load())
	c.Morsels.Add(other.Morsels.Load())
}

// Reset zeroes all counters.
func (c *Counters) Reset() {
	c.DegreeEvals.Store(0)
	c.Comparisons.Store(0)
	c.TuplesOut.Store(0)
	c.SortCacheHits.Store(0)
	c.SortCacheMisses.Store(0)
	c.IndexHits.Store(0)
	c.KernelTuples.Store(0)
	c.Morsels.Store(0)
}

// MemSource serves tuples from an in-memory relation.
type MemSource struct {
	Rel *frel.Relation
}

// NewMemSource wraps an in-memory relation.
func NewMemSource(r *frel.Relation) *MemSource { return &MemSource{Rel: r} }

// Schema implements Source.
func (m *MemSource) Schema() *frel.Schema { return m.Rel.Schema }

// Open implements Source.
func (m *MemSource) Open() (Iterator, error) {
	return &memIterator{tuples: m.Rel.Tuples}, nil
}

type memIterator struct {
	tuples []frel.Tuple
	pos    int
}

func (it *memIterator) Next() (frel.Tuple, bool) {
	if it.pos >= len(it.tuples) {
		return frel.Tuple{}, false
	}
	t := it.tuples[it.pos]
	it.pos++
	return t, true
}

func (it *memIterator) Err() error { return nil }
func (it *memIterator) Close()     {}

// HeapSource serves tuples from an on-disk heap file through its buffer
// pool, so scans are charged page I/O. Limit, when non-negative, bounds
// the scan to the first Limit tuples — the snapshot-visibility bound of
// MVCC reads (heaps are append-only, so a committed prefix is a
// consistent state).
type HeapSource struct {
	Heap  *storage.HeapFile
	Limit int64
}

// NewHeapSource wraps a heap file for a full (unbounded) scan.
func NewHeapSource(h *storage.HeapFile) *HeapSource { return &HeapSource{Heap: h, Limit: -1} }

// NewHeapSourceAt wraps a heap file for a scan of its first limit tuples
// only, the snapshot-read entry point.
func NewHeapSourceAt(h *storage.HeapFile, limit int64) *HeapSource {
	return &HeapSource{Heap: h, Limit: limit}
}

// Schema implements Source.
func (h *HeapSource) Schema() *frel.Schema { return h.Heap.Schema }

func (h *HeapSource) scan() *storage.Scanner {
	if h.Limit >= 0 {
		return h.Heap.ScanAt(h.Limit)
	}
	return h.Heap.Scan()
}

// Open implements Source.
func (h *HeapSource) Open() (Iterator, error) {
	return &heapIterator{sc: h.scan()}, nil
}

type heapIterator struct {
	sc     *storage.Scanner
	closed bool
}

func (it *heapIterator) Next() (frel.Tuple, bool) {
	if it.closed {
		return frel.Tuple{}, false
	}
	return it.sc.Next()
}

func (it *heapIterator) Err() error { return it.sc.Err() }

func (it *heapIterator) Close() {
	if !it.closed {
		it.sc.Close()
		it.closed = true
	}
}

// Collect drains a source into an in-memory relation.
func Collect(src Source) (*frel.Relation, error) {
	it, err := src.Open()
	if err != nil {
		return nil, err
	}
	defer it.Close()
	out := frel.NewRelation(src.Schema())
	for {
		t, ok := it.Next()
		if !ok {
			break
		}
		out.Append(t)
	}
	return out, it.Err()
}

// Spill drains a source into a new temporary heap file owned by the
// caller.
func Spill(mgr *storage.Manager, src Source) (*storage.HeapFile, error) {
	it, err := src.Open()
	if err != nil {
		return nil, err
	}
	defer it.Close()
	h, err := mgr.CreateTemp(src.Schema())
	if err != nil {
		return nil, err
	}
	for {
		t, ok := it.Next()
		if !ok {
			break
		}
		if err := h.Append(t); err != nil {
			return nil, err
		}
	}
	return h, it.Err()
}
