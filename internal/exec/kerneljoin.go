// The kernel merge-join: the compiled, morsel-scheduled form of the
// extended merge-join. Both sorted inputs are materialized into flat tuple
// and support-key columns, the atomic-cut partitioner splits them into
// join-independent ranges exactly like ParallelMergeJoin, and the ranges
// are coalesced into small morsels that a pool of workers pulls from a
// shared queue. Each morsel runs a fused two-cursor loop directly over the
// flat columns — no window staging, no per-pair virtual calls, counters in
// locals — computing the identical degrees (same closed-form functions) in
// the identical order, so concatenating the morsel outputs reproduces the
// serial operator's answer tuple for tuple.
//
// Morsels vs static partitions: balanceParts makes Workers*4 partitions
// up front, so one straggler partition (a skew range with a huge Rng) can
// idle every other worker for its whole duration. Morsels are much
// smaller, and a worker that finishes one immediately pulls the next, so
// the tail of a skewed join shrinks from "largest partition" to "largest
// single atomic range". Serial runs (Workers <= 1) use one morsel: the
// scheduler adds nothing when there is nobody to share with.
package exec

import (
	"fmt"

	"repro/internal/frel"
	"repro/internal/fuzzy"
	"repro/internal/kernel"
)

// kernelArenaChunk caps the value-arena growth unit of morsel emitters.
// Chunks start small and double up to this cap, so a low-fanout join
// allocates near its actual output size while a high-fanout join still
// amortizes to one allocation per 4*BatchSize values.
const kernelArenaChunk = 4 * BatchSize

// KernelMergeJoin is the compiled extended merge-join on the fuzzy band
// condition outer.OuterAttr ≈ inner.InnerAttr, with residual conjuncts
// compiled into a kernel.PairProgram instead of interpreted closures.
// Inputs must be sorted by the Definition 3.1 order, like for MergeJoin.
type KernelMergeJoin struct {
	Outer, Inner         Source
	OuterAttr, InnerAttr string
	Extra                *kernel.PairProgram // nil or empty: no residual conjuncts
	Counters             *Counters
	Tol                  fuzzy.Trapezoid
	Workers              int

	// Stats, when non-nil, receives the EXPLAIN ANALYZE measures under the
	// same conventions as MergeJoin.Stats: Comparisons and DegreeEvals
	// count support-intersecting pairs (morsel-invariant), Rng(r) lengths
	// are observed per outer tuple, and the kernel counters
	// (KernelTuples, Morsels) are display-only.
	Stats *OpStats

	schema *frel.Schema
	oi, ii int
}

// NewKernelMergeJoin builds a compiled band merge-join with the given
// worker count (0 = GOMAXPROCS).
func NewKernelMergeJoin(outer, inner Source, outerAttr, innerAttr string, tol fuzzy.Trapezoid, extra *kernel.PairProgram, counters *Counters, workers int) (*KernelMergeJoin, error) {
	oi, ii, err := checkJoinAttrs(outer, inner, outerAttr, innerAttr)
	if err != nil {
		return nil, err
	}
	if !tol.Valid() {
		return nil, fmt.Errorf("exec: invalid band tolerance %v", tol)
	}
	if counters == nil {
		counters = &Counters{}
	}
	if workers <= 0 {
		workers = DefaultParallelism()
	}
	return &KernelMergeJoin{
		Outer: outer, Inner: inner,
		OuterAttr: outerAttr, InnerAttr: innerAttr,
		Extra: extra, Counters: counters, Tol: tol, Workers: workers,
		schema: outer.Schema().Join(inner.Schema()),
		oi:     oi, ii: ii,
	}, nil
}

// Schema implements Source.
func (j *KernelMergeJoin) Schema() *frel.Schema { return j.schema }

// Open implements Source by draining the batched form.
func (j *KernelMergeJoin) Open() (Iterator, error) {
	bit, err := j.OpenBatch()
	if err != nil {
		return nil, err
	}
	return &batchTupleAdapter{it: bit}, nil
}

// batchTupleAdapter serves a BatchIterator one tuple at a time.
type batchTupleAdapter struct {
	it  BatchIterator
	buf []frel.Tuple
	pos int
}

func (a *batchTupleAdapter) Next() (frel.Tuple, bool) {
	for a.pos >= len(a.buf) {
		b, ok := a.it.NextBatch()
		if !ok {
			return frel.Tuple{}, false
		}
		a.buf, a.pos = b, 0
	}
	t := a.buf[a.pos]
	a.pos++
	return t, true
}

func (a *batchTupleAdapter) Err() error { return a.it.Err() }
func (a *batchTupleAdapter) Close()     { a.it.Close() }

// OpenBatch implements BatchSource.
func (j *KernelMergeJoin) OpenBatch() (BatchIterator, error) {
	return j.openBatchProjected(nil)
}

// morselGrain picks the morsel weight target: serial runs get one morsel
// (no scheduling overhead), parallel runs get roughly 16 morsels per
// worker with a floor that keeps per-morsel bookkeeping negligible.
func morselGrain(total, workers int) int {
	if workers <= 1 {
		return total + 1
	}
	g := total / (workers * 16)
	if g < 256 {
		g = 256
	}
	return g
}

// openBatchProjected opens the join with an optional pushed-down emit mask
// (indices into the concatenated outer ++ inner row); see
// MergeJoin.openBatchProjected. The whole join runs eagerly: morsels are
// pulled off the shared queue by the worker pool and their outputs are
// replayed in morsel order, which is the serial emission order.
func (j *KernelMergeJoin) openBatchProjected(emitIdx []int) (BatchIterator, error) {
	outer, oKeys, err := collectSortedBatched(j.Outer, j.oi, "outer")
	if err != nil {
		return nil, err
	}
	inner, iKeys, err := collectSortedBatched(j.Inner, j.ii, "inner")
	if err != nil {
		return nil, err
	}
	ranges := atomicCutsKeyed(oKeys, iKeys, j.Tol)
	grain := morselGrain(len(outer)+len(inner), j.Workers)
	morsels := kernel.Coalesce(len(ranges), func(i int) int { return ranges[i].weight() }, grain)
	j.Counters.Morsels.Add(int64(len(morsels)))
	j.Counters.KernelTuples.Add(int64(len(outer)))
	if st := j.Stats; st != nil {
		st.Morsels.Add(int64(len(morsels)))
		st.KernelTuples.Add(int64(len(outer)))
	}
	results := make([][]frel.Tuple, len(morsels))
	tolZero := j.Tol == (fuzzy.Trapezoid{})
	extra := j.Extra
	if extra != nil && extra.Len() == 0 {
		extra = nil
	}
	err = runParallel(j.Workers, len(morsels), func(m int) error {
		// A morsel spans consecutive atomic ranges, so its outer and inner
		// spans are contiguous and one two-cursor sweep covers them all:
		// the window empties at every cut by construction.
		oLo, oHi := ranges[morsels[m].Lo].oLo, ranges[morsels[m].Hi-1].oHi
		iLo, iHi := ranges[morsels[m].Lo].iLo, ranges[morsels[m].Hi-1].iHi
		loc := newBatchLocals()
		var out []frel.Tuple
		var arena []frel.Value
		emitW := len(j.schema.Attrs)
		if emitIdx != nil {
			emitW = len(emitIdx)
		}
		nOuter := len(j.Outer.Schema().Attrs)
		start, end := iLo, iLo
		for o := oLo; o < oHi; o++ {
			lo, hi := oKeys[o].Lo, oKeys[o].Hi
			// Advance past buffered inner tuples whose widened supports end
			// before this outer begins; admit those beginning at or before
			// its end. Identical to batchWindow.advance/extend with the
			// band shift applied on the outer side.
			for start < end && iKeys[start].Hi+j.Tol.D < lo {
				start++
			}
			for end < iHi && iKeys[end].Lo+j.Tol.A <= hi {
				end++
			}
			lX := outer[o].Values[j.oi].Num
			oD := oKeys[o].D
			var rng int64
			for k := start; k < end; k++ {
				loc.cmp++
				// Support pretest on the flat key column, bit-identical to
				// lX.Intersects(Add(s, Tol)).
				if !(lo <= iKeys[k].Hi+j.Tol.D && iKeys[k].Lo+j.Tol.A <= hi) {
					continue // dangling tuple inside the range
				}
				rng++
				loc.stCmp++
				loc.stDeg++
				loc.deg++
				sX := inner[k].Values[j.ii].Num
				if !tolZero {
					sX = fuzzy.Add(sX, j.Tol)
				}
				d := fuzzy.Eq(lX, sX)
				if oD < d {
					d = oD
				}
				if iKeys[k].D < d {
					d = iKeys[k].D
				}
				if d > 0 && extra != nil {
					loc.deg++
					loc.stDeg++
					g, ev := extra.EvalAnd(outer[o].Values, inner[k].Values)
					loc.deg += ev
					if g < d {
						d = g
					}
				}
				if d <= 0 {
					continue
				}
				loc.tout++
				if len(arena)+emitW > cap(arena) {
					n := 2 * cap(arena)
					if n > kernelArenaChunk {
						n = kernelArenaChunk
					}
					if n < 16*emitW {
						n = 16 * emitW
					}
					arena = make([]frel.Value, 0, n)
				}
				off := len(arena)
				if emitIdx != nil {
					for _, i := range emitIdx {
						if i < nOuter {
							arena = append(arena, outer[o].Values[i])
						} else {
							arena = append(arena, inner[k].Values[i-nOuter])
						}
					}
				} else {
					arena = append(arena, outer[o].Values...)
					arena = append(arena, inner[k].Values...)
				}
				out = append(out, frel.Tuple{Values: arena[off:len(arena):len(arena)], D: d})
			}
			loc.observeRng(rng)
		}
		loc.flush(j.Counters, j.Stats)
		results[m] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &partsBatchIterator{parts: results}, nil
}
