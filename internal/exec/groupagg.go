package exec

import (
	"fmt"

	"repro/internal/frel"
	"repro/internal/fuzzy"
)

// GroupAggJoin is the pipelined evaluation of the unnested type JA query
// (Query JA′ / Query COUNT′, Section 6): the outer relation, sorted on the
// correlation attribute U, is merged with the inner relation, sorted on V.
// For each distinct outer value u the operator builds the fuzzy value set
//
//	T′(u) = { z : µ(z) = max over s with s.Z = z of min(µ_S(s), d(s.V op2 u)) > 0 },
//
// applies the aggregate to it (the tuple (u, A′(u)) of the paper's T2),
// and emits every outer tuple r with that u at degree
//
//	min(r.D, D(A′(u)), d(r.Y op1 A′(u))),     with D(A′(u)) = 1,
//
// or, when T′(u) is empty: at degree min(r.D, d(r.Y op1 0)) if the
// aggregate is COUNT (the left outer join IF-THEN-ELSE arm of Query
// COUNT′), and not at all otherwise (A′(u) is NULL).
//
// When Op2 is equality the inner is consumed in one merged pass using the
// Rng(u) cursor; identical outer values must be adjacent, so sort the
// outer input with extsort.ByAttrTotal. For other correlation operators
// the inner is materialized once and scanned per distinct u.
type GroupAggJoin struct {
	Outer, Inner Source

	OuterUAttr string // R.U, the correlated attribute of the outer block
	InnerVAttr string // S.V, the correlated attribute of the inner block
	Op2        fuzzy.Op

	InnerZAttr string // S.Z, the aggregated attribute
	Agg        fuzzy.AggFunc

	OuterYAttr string // R.Y, compared against the aggregate
	Op1        fuzzy.Op

	Counters *Counters

	// Stats, when non-nil, receives the per-operator EXPLAIN ANALYZE
	// measures (see MergeJoin.Stats for the counting conventions); the
	// Rng observations are the per-group candidate scan lengths.
	Stats *OpStats

	ui, vi, zi, yi int
}

// NewGroupAggJoin validates attribute references and kinds.
func NewGroupAggJoin(outer, inner Source, outerU, innerV string, op2 fuzzy.Op, innerZ string, agg fuzzy.AggFunc, outerY string, op1 fuzzy.Op, counters *Counters) (*GroupAggJoin, error) {
	ui, vi, err := checkJoinAttrs(outer, inner, outerU, innerV)
	if err != nil {
		return nil, err
	}
	zi, err := inner.Schema().Resolve(innerZ)
	if err != nil {
		return nil, err
	}
	if agg != fuzzy.AggCount && inner.Schema().Attrs[zi].Kind != frel.KindNumber {
		return nil, fmt.Errorf("exec: aggregate %v requires a numeric attribute, %s is %v", agg, innerZ, inner.Schema().Attrs[zi].Kind)
	}
	yi, err := outer.Schema().Resolve(outerY)
	if err != nil {
		return nil, err
	}
	if outer.Schema().Attrs[yi].Kind != frel.KindNumber {
		return nil, fmt.Errorf("exec: compared attribute %s must be numeric", outerY)
	}
	if counters == nil {
		counters = &Counters{}
	}
	return &GroupAggJoin{
		Outer: outer, Inner: inner,
		OuterUAttr: outerU, InnerVAttr: innerV, Op2: op2,
		InnerZAttr: innerZ, Agg: agg,
		OuterYAttr: outerY, Op1: op1,
		Counters: counters,
		ui:       ui, vi: vi, zi: zi, yi: yi,
	}, nil
}

// Schema implements Source: the output carries the outer tuples with
// adjusted degrees.
func (j *GroupAggJoin) Schema() *frel.Schema { return j.Outer.Schema() }

// Open implements Source.
func (j *GroupAggJoin) Open() (Iterator, error) {
	outerIt, err := j.Outer.Open()
	if err != nil {
		return nil, err
	}
	it := &groupAggIterator{j: j, outer: outerIt}
	if j.Op2 == fuzzy.OpEq {
		innerIt, err := j.Inner.Open()
		if err != nil {
			outerIt.Close()
			return nil, err
		}
		it.win = newWindow(innerIt, j.vi, j.Counters)
	} else {
		// Non-equality correlation: materialize the inner once.
		rel, err := Collect(j.Inner)
		if err != nil {
			outerIt.Close()
			return nil, err
		}
		it.innerAll = rel.Tuples
	}
	return it, nil
}

type groupAggIterator struct {
	j     *GroupAggJoin
	outer Iterator

	win      *window      // Op2 == OpEq path
	innerAll []frel.Tuple // other correlation operators

	haveGroup bool
	groupVal  frel.Value
	aggVal    fuzzy.Trapezoid
	aggOK     bool

	prevBegin float64
	seenAny   bool
	err       error
}

// memberSet accumulates a fuzzy value set deduplicated by value identity,
// keeping the maximum degree per value (Section 4's temporary-relation
// rule), in first-seen order. Insertion order matters: fuzzy aggregates
// sum floating-point values in set order, so building the set by map
// iteration would make repeated evaluations of the same query differ in
// the last bits of the result.
type memberSet struct {
	idx     map[string]int
	members []fuzzy.Member
}

func newMemberSet() *memberSet { return &memberSet{idx: make(map[string]int)} }

func (ms *memberSet) add(v frel.Value, mu float64) {
	k := v.Key()
	if i, ok := ms.idx[k]; ok {
		if mu > ms.members[i].Mu {
			ms.members[i].Mu = mu
		}
		return
	}
	ms.idx[k] = len(ms.members)
	ms.members = append(ms.members, fuzzy.Member{Value: v.Num, Mu: mu})
}

func (ms *memberSet) len() int { return len(ms.members) }

// computeGroup builds T′(u) and its aggregate for the given outer value.
func (it *groupAggIterator) computeGroup(u frel.Value) {
	j := it.j
	var candidates []frel.Tuple
	if it.win != nil {
		lo, hi := u.Num.Support()
		it.win.advance(lo)
		it.win.extend(hi)
		if it.win.err != nil {
			it.err = it.win.err
			return
		}
		candidates = it.win.active()
	} else {
		candidates = it.innerAll
	}
	set := newMemberSet()
	var rng int64
	for _, s := range candidates {
		j.Counters.Comparisons.Add(1)
		sv := s.Values[j.vi]
		if it.win != nil && !u.Num.Intersects(sv.Num) {
			continue // dangling tuple in the range
		}
		rng++
		if j.Stats != nil {
			j.Stats.Comparisons.Add(1)
			j.Stats.DegreeEvals.Add(1)
		}
		j.Counters.DegreeEvals.Add(1)
		d := frel.Degree(j.Op2, sv, u)
		if s.D < d {
			d = s.D
		}
		if d <= 0 {
			continue
		}
		set.add(s.Values[j.zi], d)
	}
	if j.Stats != nil {
		j.Stats.ObserveRng(rng)
	}
	if j.Agg == fuzzy.AggCount {
		// COUNT of an empty T′(u) is 0: comparing r.Y against Crisp(0) is
		// exactly the ELSE arm of Query COUNT′'s IF-THEN-ELSE.
		it.aggVal, it.aggOK = fuzzy.Crisp(float64(set.len())), true
		return
	}
	it.aggVal, it.aggOK = fuzzy.Aggregate(j.Agg, set.members)
}

func (it *groupAggIterator) Next() (frel.Tuple, bool) {
	for {
		if it.err != nil {
			return frel.Tuple{}, false
		}
		r, ok := it.outer.Next()
		if !ok {
			if e := it.outer.Err(); e != nil {
				it.err = e
			}
			return frel.Tuple{}, false
		}
		u := r.Values[it.j.ui]
		if it.win != nil {
			lo, _ := u.Num.Support()
			if it.seenAny && lo < it.prevBegin {
				it.err = fmt.Errorf("exec: group-aggregate join outer input is not sorted by the Definition 3.1 order")
				return frel.Tuple{}, false
			}
			it.prevBegin, it.seenAny = lo, true
		}
		if !it.haveGroup || !it.groupVal.Identical(u) {
			it.computeGroup(u)
			if it.err != nil {
				return frel.Tuple{}, false
			}
			it.groupVal = u
			it.haveGroup = true
		}
		if !it.aggOK {
			continue // A′(u) is NULL and the aggregate is not COUNT
		}
		if st := it.j.Stats; st != nil {
			st.DegreeEvals.Add(1)
		}
		it.j.Counters.DegreeEvals.Add(1)
		d := fuzzy.Degree(it.j.Op1, r.Values[it.j.yi].Num, it.aggVal)
		if r.D < d {
			d = r.D
		}
		if d > 0 {
			out := r
			out.D = d
			it.j.Counters.TuplesOut.Add(1)
			return out, true
		}
	}
}

func (it *groupAggIterator) Err() error { return it.err }

func (it *groupAggIterator) Close() {
	if it.win != nil {
		it.win.close()
	}
	it.outer.Close()
}

// AggItem is one aggregate column of a GroupAgg.
type AggItem struct {
	Agg fuzzy.AggFunc
	Ref string
}

// GroupAgg is a hash group-by with fuzzy aggregates, used for top-level
// GROUPBY/HAVING clauses. Groups are keyed by value identity of the
// grouping attributes. Within a group, each distinct value of an
// aggregated attribute belongs to the group's fuzzy value set with the
// maximum degree of the tuples carrying it, and the Section 6 aggregate
// semantics apply to that set. The output tuple is (group values,
// aggregate results) with degree max over the group's tuple degrees
// (fuzzy OR).
type GroupAgg struct {
	Src       Source
	GroupRefs []string
	Items     []AggItem

	schema   *frel.Schema
	groupIdx []int
	itemIdx  []int
}

// NewGroupAgg builds a group-by; the output schema is the grouping
// attributes followed by one numeric column per aggregate item, named
// "AGG(ref)".
func NewGroupAgg(src Source, groupRefs []string, items []AggItem) (*GroupAgg, error) {
	gschema, gidx, err := src.Schema().Project(groupRefs)
	if err != nil {
		return nil, err
	}
	out := gschema.Clone()
	out.Name = ""
	itemIdx := make([]int, len(items))
	for i, item := range items {
		zi, err := src.Schema().Resolve(item.Ref)
		if err != nil {
			return nil, err
		}
		if item.Agg != fuzzy.AggCount && src.Schema().Attrs[zi].Kind != frel.KindNumber {
			return nil, fmt.Errorf("exec: aggregate %v requires a numeric attribute, %s is %v", item.Agg, item.Ref, src.Schema().Attrs[zi].Kind)
		}
		itemIdx[i] = zi
		out.Attrs = append(out.Attrs, frel.Attribute{
			Name: fmt.Sprintf("%s(%s)", item.Agg, src.Schema().Qualified(zi)),
			Kind: frel.KindNumber,
		})
	}
	return &GroupAgg{Src: src, GroupRefs: groupRefs, Items: items, schema: out, groupIdx: gidx, itemIdx: itemIdx}, nil
}

// Schema implements Source.
func (g *GroupAgg) Schema() *frel.Schema { return g.schema }

// Open implements Source.
func (g *GroupAgg) Open() (Iterator, error) {
	it, err := g.Src.Open()
	if err != nil {
		return nil, err
	}
	defer it.Close()

	type group struct {
		key     frel.Tuple
		degree  float64
		members []*memberSet // one value set per agg item
	}
	groups := make(map[string]*group)
	var order []string
	for {
		t, ok := it.Next()
		if !ok {
			break
		}
		kt := t.Project(g.groupIdx)
		k := kt.Key()
		grp, ok := groups[k]
		if !ok {
			grp = &group{key: kt, members: make([]*memberSet, len(g.Items))}
			for i := range grp.members {
				grp.members[i] = newMemberSet()
			}
			groups[k] = grp
			order = append(order, k)
		}
		if t.D > grp.degree {
			grp.degree = t.D
		}
		for i, zi := range g.itemIdx {
			grp.members[i].add(t.Values[zi], t.D)
		}
	}
	if err := it.Err(); err != nil {
		return nil, err
	}

	out := make([]frel.Tuple, 0, len(order))
	for _, k := range order {
		grp := groups[k]
		vals := append([]frel.Value(nil), grp.key.Values...)
		skip := false
		for i, item := range g.Items {
			a, ok := fuzzy.Aggregate(item.Agg, grp.members[i].members)
			if !ok {
				skip = true
				break
			}
			vals = append(vals, frel.Num(a))
		}
		if skip {
			continue
		}
		out = append(out, frel.Tuple{Values: vals, D: grp.degree})
	}
	return &memIterator{tuples: out}, nil
}
