// Batched forms of the merge-based join operators. Each one replicates
// its tuple-at-a-time counterpart exactly — same output tuples in the same
// order, same counter and statistics totals — while amortizing the
// per-tuple costs: window entries carry precomputed support endpoints (or
// read them from a cached key column), counters accumulate in locals and
// flush once per batch instead of one atomic add per pair, and join
// outputs are written into a single fresh value arena per output batch
// instead of one allocation per tuple.
package exec

import (
	"fmt"
	"math"

	"repro/internal/frel"
	"repro/internal/fuzzy"
)

// batchLocals accumulates the per-pair work counters of one NextBatch call
// so the shared atomics are touched once per batch. The cmp/deg/tout
// fields mirror Counters, stCmp/stDeg and the rng fields mirror OpStats
// (see MergeJoin.Stats for the two counting conventions).
type batchLocals struct {
	cmp, deg, tout int64
	stCmp, stDeg   int64
	rngN, rngSum   int64
	rngMin, rngMax int64
}

func newBatchLocals() batchLocals { return batchLocals{rngMin: math.MaxInt64} }

func (l *batchLocals) observeRng(n int64) {
	l.rngN++
	l.rngSum += n
	if n < l.rngMin {
		l.rngMin = n
	}
	if n > l.rngMax {
		l.rngMax = n
	}
}

func (l *batchLocals) flush(c *Counters, st *OpStats) {
	if l.cmp != 0 {
		c.Comparisons.Add(l.cmp)
	}
	if l.deg != 0 {
		c.DegreeEvals.Add(l.deg)
	}
	if l.tout != 0 {
		c.TuplesOut.Add(l.tout)
	}
	if st != nil {
		if l.stCmp != 0 {
			st.Comparisons.Add(l.stCmp)
		}
		if l.stDeg != 0 {
			st.DegreeEvals.Add(l.stDeg)
		}
		st.ObserveRngBulk(l.rngN, l.rngSum, l.rngMin, l.rngMax)
	}
	*l = newBatchLocals()
}

// winEntry is one buffered inner tuple with its precomputed raw support
// interval on the join attribute.
type winEntry struct {
	t      frel.Tuple
	lo, hi float64
}

// batchWindow is the batched form of window: the Rng(r) buffer of inner
// tuples, fed from a BatchIterator, with support endpoints computed once
// per tuple at pull time (or copied from the producer's key column).
type batchWindow struct {
	it  BatchIterator
	idx int

	buf   []winEntry
	start int

	cur     []frel.Tuple
	curKeys []frel.SupportKey
	pos     int

	pending    winEntry
	hasPending bool
	done       bool

	prevBegin float64
	seenAny   bool
	err       error
}

func newBatchWindow(it BatchIterator, idx int) *batchWindow {
	return &batchWindow{it: it, idx: idx}
}

// pull stages the next inner tuple, verifying sortedness, exactly like
// window.pull.
func (w *batchWindow) pull() bool {
	if w.hasPending {
		return true
	}
	if w.done {
		return false
	}
	for w.pos >= len(w.cur) {
		b, ok := w.it.NextBatch()
		if !ok {
			if e := w.it.Err(); e != nil {
				w.err = e
			}
			w.done = true
			return false
		}
		w.cur, w.curKeys, w.pos = b, batchKeys(w.it), 0
	}
	t := w.cur[w.pos]
	var lo, hi float64
	if w.curKeys != nil {
		k := w.curKeys[w.pos]
		lo, hi = k.Lo, k.Hi
	} else {
		lo, hi = t.Values[w.idx].Num.Support()
	}
	w.pos++
	if w.seenAny && lo < w.prevBegin {
		w.err = fmt.Errorf("exec: merge-join inner input is not sorted by the Definition 3.1 order")
		w.done = true
		return false
	}
	w.prevBegin, w.seenAny = lo, true
	w.pending, w.hasPending = winEntry{t: t, lo: lo, hi: hi}, true
	return true
}

func (w *batchWindow) advance(outerLo float64) {
	for w.start < len(w.buf) {
		if w.buf[w.start].hi >= outerLo {
			break
		}
		w.start++
	}
	if w.start > 256 && w.start*2 > len(w.buf) {
		n := copy(w.buf, w.buf[w.start:])
		w.buf = w.buf[:n]
		w.start = 0
	}
}

func (w *batchWindow) extend(outerHi float64) {
	for w.pull() {
		if w.pending.lo > outerHi {
			return
		}
		w.buf = append(w.buf, w.pending)
		w.hasPending = false
	}
}

func (w *batchWindow) active() []winEntry { return w.buf[w.start:] }

func (w *batchWindow) close() { w.it.Close() }

// OpenBatch implements BatchSource for the extended merge-join.
func (j *MergeJoin) OpenBatch() (BatchIterator, error) {
	return j.openBatchProjected(nil)
}

// openBatchProjected opens the batched join with an optional emit mask of
// indices into the concatenated output schema (projection pushdown: only
// the projected values are written to the output arena). A nil mask emits
// the full concatenated row. Outputs and counters are identical either
// way; only the materialized bytes differ.
func (j *MergeJoin) openBatchProjected(emitIdx []int) (BatchIterator, error) {
	outerIt, err := OpenBatches(j.Outer)
	if err != nil {
		return nil, err
	}
	innerIt, err := OpenBatches(j.Inner)
	if err != nil {
		outerIt.Close()
		return nil, err
	}
	return &mergeJoinBatchIterator{
		j:       j,
		outer:   outerIt,
		win:     newBatchWindow(innerIt, j.ii),
		loc:     newBatchLocals(),
		tolZero: j.Tol == (fuzzy.Trapezoid{}),
		emitIdx: emitIdx,
	}, nil
}

type mergeJoinBatchIterator struct {
	j     *MergeJoin
	outer BatchIterator
	win   *batchWindow

	obatch []frel.Tuple
	okeys  []frel.SupportKey
	opos   int

	// The outer tuple under the cursor. It persists across NextBatch calls
	// when the output batch fills mid-window; the Rng(r) observation is
	// recorded only once its window scan completes.
	cur          frel.Tuple
	curLo, curHi float64
	curActive    []winEntry
	curPos       int
	haveCur      bool
	curRng       int64

	prevBegin float64
	seenAny   bool

	// tolZero short-circuits the per-pair tolerance shift: adding the zero
	// trapezoid is the identity, and OpEq joins (the common case) have a
	// zero tolerance.
	tolZero bool

	// emitIdx, when non-nil, is the pushed-down projection: indices into
	// the concatenated (outer ++ inner) row to materialize per output.
	emitIdx []int

	out   []frel.Tuple
	arena []frel.Value

	loc  batchLocals
	err  error
	done bool
}

func (it *mergeJoinBatchIterator) NextBatch() ([]frel.Tuple, bool) {
	if it.err != nil || it.done {
		return nil, false
	}
	j := it.j
	if it.out == nil {
		it.out = make([]frel.Tuple, 0, BatchSize)
	}
	it.out = it.out[:0]
	// A fresh arena per output batch: emitted Values slices are never
	// recycled, so retained tuples stay valid (see the batch contract).
	it.arena = nil
	for len(it.out) < BatchSize {
		if !it.haveCur {
			for it.opos >= len(it.obatch) {
				b, ok := it.outer.NextBatch()
				if !ok {
					if e := it.outer.Err(); e != nil {
						it.err = e
					}
					it.done = true
					return it.finish()
				}
				it.obatch, it.okeys, it.opos = b, batchKeys(it.outer), 0
			}
			l := it.obatch[it.opos]
			var lo, hi float64
			if it.okeys != nil {
				k := it.okeys[it.opos]
				lo, hi = k.Lo, k.Hi
			} else {
				lo, hi = l.Values[j.oi].Num.Support()
			}
			it.opos++
			if it.seenAny && lo < it.prevBegin {
				it.err = fmt.Errorf("exec: merge-join outer input is not sorted by the Definition 3.1 order")
				return it.finish()
			}
			it.prevBegin, it.seenAny = lo, true
			it.win.advance(lo - j.Tol.D)
			it.win.extend(hi - j.Tol.A)
			if it.win.err != nil {
				it.err = it.win.err
				return it.finish()
			}
			it.cur, it.curLo, it.curHi = l, lo, hi
			it.curActive = it.win.active()
			it.curPos, it.curRng, it.haveCur = 0, 0, true
		}
		lX := it.cur.Values[j.oi].Num
		for it.curPos < len(it.curActive) && len(it.out) < BatchSize {
			e := &it.curActive[it.curPos]
			it.curPos++
			it.loc.cmp++
			// Support pretest on the precomputed endpoints, bit-identical
			// to lX.Intersects(Add(s, Tol)) because Add shifts the support
			// corners by (Tol.A, Tol.D).
			if !(it.curLo <= e.hi+j.Tol.D && e.lo+j.Tol.A <= it.curHi) {
				continue // dangling tuple inside the range
			}
			it.curRng++
			it.loc.stCmp++
			it.loc.stDeg++
			it.loc.deg++
			sX := e.t.Values[j.ii].Num
			if !it.tolZero {
				sX = fuzzy.Add(sX, j.Tol)
			}
			d := fuzzy.Eq(lX, sX)
			if it.cur.D < d {
				d = it.cur.D
			}
			if e.t.D < d {
				d = e.t.D
			}
			if d > 0 && j.Extra != nil {
				it.loc.deg++
				it.loc.stDeg++
				if g := j.Extra(it.cur, e.t); g < d {
					d = g
				}
			}
			if d > 0 {
				it.loc.tout++
				it.emit(e.t, d)
			}
		}
		if it.curPos >= len(it.curActive) {
			it.loc.observeRng(it.curRng)
			it.haveCur = false
		}
	}
	it.loc.flush(j.Counters, j.Stats)
	return it.out, true
}

// finish flushes the counter locals and returns any accumulated output;
// a pending error is reported by Err after the following NextBatch.
func (it *mergeJoinBatchIterator) finish() ([]frel.Tuple, bool) {
	it.loc.flush(it.j.Counters, it.j.Stats)
	if len(it.out) > 0 {
		return it.out, true
	}
	return nil, false
}

func (it *mergeJoinBatchIterator) emit(s frel.Tuple, d float64) {
	nOuter := len(it.cur.Values)
	w := nOuter + len(s.Values)
	if it.emitIdx != nil {
		w = len(it.emitIdx)
	}
	if it.arena == nil {
		it.arena = make([]frel.Value, 0, BatchSize*w)
	}
	off := len(it.arena)
	if it.emitIdx != nil {
		for _, i := range it.emitIdx {
			if i < nOuter {
				it.arena = append(it.arena, it.cur.Values[i])
			} else {
				it.arena = append(it.arena, s.Values[i-nOuter])
			}
		}
	} else {
		it.arena = append(it.arena, it.cur.Values...)
		it.arena = append(it.arena, s.Values...)
	}
	it.out = append(it.out, frel.Tuple{Values: it.arena[off:len(it.arena):len(it.arena)], D: d})
}

func (it *mergeJoinBatchIterator) Err() error { return it.err }

func (it *mergeJoinBatchIterator) Close() {
	it.win.close()
	it.outer.Close()
}

// OpenBatch implements BatchSource for the group-minimum anti-join.
func (j *MergeAntiMin) OpenBatch() (BatchIterator, error) {
	outerIt, err := OpenBatches(j.Outer)
	if err != nil {
		return nil, err
	}
	innerIt, err := OpenBatches(j.Inner)
	if err != nil {
		outerIt.Close()
		return nil, err
	}
	return &antiMinBatchIterator{
		j:     j,
		outer: outerIt,
		win:   newBatchWindow(innerIt, j.ii),
		loc:   newBatchLocals(),
	}, nil
}

type antiMinBatchIterator struct {
	j     *MergeAntiMin
	outer BatchIterator
	win   *batchWindow

	obatch []frel.Tuple
	okeys  []frel.SupportKey
	opos   int

	prevBegin float64
	seenAny   bool

	out []frel.Tuple
	loc batchLocals

	err  error
	done bool
}

func (it *antiMinBatchIterator) NextBatch() ([]frel.Tuple, bool) {
	if it.err != nil || it.done {
		return nil, false
	}
	j := it.j
	if it.out == nil {
		it.out = make([]frel.Tuple, 0, BatchSize)
	}
	it.out = it.out[:0]
	for len(it.out) < BatchSize {
		for it.opos >= len(it.obatch) {
			b, ok := it.outer.NextBatch()
			if !ok {
				if e := it.outer.Err(); e != nil {
					it.err = e
				}
				it.done = true
				return it.finish()
			}
			it.obatch, it.okeys, it.opos = b, batchKeys(it.outer), 0
		}
		l := it.obatch[it.opos]
		var lo, hi float64
		if it.okeys != nil {
			k := it.okeys[it.opos]
			lo, hi = k.Lo, k.Hi
		} else {
			lo, hi = l.Values[j.oi].Num.Support()
		}
		it.opos++
		if it.seenAny && lo < it.prevBegin {
			it.err = fmt.Errorf("exec: merge anti-join outer input is not sorted by the Definition 3.1 order")
			return it.finish()
		}
		it.prevBegin, it.seenAny = lo, true
		it.win.advance(lo)
		it.win.extend(hi)
		if it.win.err != nil {
			it.err = it.win.err
			return it.finish()
		}
		d := l.D
		var rng int64
		active := it.win.active()
		for i := range active {
			e := &active[i]
			it.loc.cmp++
			if !(lo <= e.hi && e.lo <= hi) {
				continue // Penalty would be 1
			}
			rng++
			it.loc.stCmp++
			it.loc.stDeg++
			it.loc.deg++
			if g := j.Penalty(l, e.t); g < d {
				d = g
				if d == 0 {
					break
				}
			}
		}
		it.loc.observeRng(rng)
		if d > 0 {
			it.loc.tout++
			l.D = d
			it.out = append(it.out, l)
		}
	}
	it.loc.flush(j.Counters, j.Stats)
	return it.out, true
}

func (it *antiMinBatchIterator) finish() ([]frel.Tuple, bool) {
	it.loc.flush(it.j.Counters, it.j.Stats)
	if len(it.out) > 0 {
		return it.out, true
	}
	return nil, false
}

func (it *antiMinBatchIterator) Err() error { return it.err }

func (it *antiMinBatchIterator) Close() {
	it.win.close()
	it.outer.Close()
}

// OpenBatch implements BatchSource for the group-aggregate join.
func (j *GroupAggJoin) OpenBatch() (BatchIterator, error) {
	outerIt, err := OpenBatches(j.Outer)
	if err != nil {
		return nil, err
	}
	it := &groupAggBatchIterator{j: j, outer: outerIt, loc: newBatchLocals()}
	if j.Op2 == fuzzy.OpEq {
		innerIt, err := OpenBatches(j.Inner)
		if err != nil {
			outerIt.Close()
			return nil, err
		}
		it.win = newBatchWindow(innerIt, j.vi)
	} else {
		rel, err := CollectBatched(j.Inner)
		if err != nil {
			outerIt.Close()
			return nil, err
		}
		it.innerAll = rel.Tuples
	}
	return it, nil
}

type groupAggBatchIterator struct {
	j     *GroupAggJoin
	outer BatchIterator

	win      *batchWindow
	innerAll []frel.Tuple

	obatch []frel.Tuple
	opos   int

	haveGroup bool
	groupVal  frel.Value
	aggVal    fuzzy.Trapezoid
	aggOK     bool

	prevBegin float64
	seenAny   bool

	out []frel.Tuple
	loc batchLocals

	err  error
	done bool
}

// computeGroup builds T′(u) and its aggregate, mirroring
// groupAggIterator.computeGroup with batch-local counters.
func (it *groupAggBatchIterator) computeGroup(u frel.Value) {
	j := it.j
	set := newMemberSet()
	var rng int64
	acc := func(s frel.Tuple) {
		rng++
		it.loc.stCmp++
		it.loc.stDeg++
		it.loc.deg++
		sv := s.Values[j.vi]
		d := frel.Degree(j.Op2, sv, u)
		if s.D < d {
			d = s.D
		}
		if d <= 0 {
			return
		}
		set.add(s.Values[j.zi], d)
	}
	if it.win != nil {
		uLo, uHi := u.Num.Support()
		it.win.advance(uLo)
		it.win.extend(uHi)
		if it.win.err != nil {
			it.err = it.win.err
			return
		}
		active := it.win.active()
		for i := range active {
			e := &active[i]
			it.loc.cmp++
			if !(uLo <= e.hi && e.lo <= uHi) {
				continue // dangling tuple in the range
			}
			acc(e.t)
		}
	} else {
		for _, s := range it.innerAll {
			it.loc.cmp++
			acc(s)
		}
	}
	it.loc.observeRng(rng)
	if j.Agg == fuzzy.AggCount {
		it.aggVal, it.aggOK = fuzzy.Crisp(float64(set.len())), true
		return
	}
	it.aggVal, it.aggOK = fuzzy.Aggregate(j.Agg, set.members)
}

func (it *groupAggBatchIterator) NextBatch() ([]frel.Tuple, bool) {
	if it.err != nil || it.done {
		return nil, false
	}
	j := it.j
	if it.out == nil {
		it.out = make([]frel.Tuple, 0, BatchSize)
	}
	it.out = it.out[:0]
	for len(it.out) < BatchSize {
		for it.opos >= len(it.obatch) {
			b, ok := it.outer.NextBatch()
			if !ok {
				if e := it.outer.Err(); e != nil {
					it.err = e
				}
				it.done = true
				return it.finish()
			}
			it.obatch, it.opos = b, 0
		}
		r := it.obatch[it.opos]
		it.opos++
		u := r.Values[j.ui]
		if it.win != nil {
			lo, _ := u.Num.Support()
			if it.seenAny && lo < it.prevBegin {
				it.err = fmt.Errorf("exec: group-aggregate join outer input is not sorted by the Definition 3.1 order")
				return it.finish()
			}
			it.prevBegin, it.seenAny = lo, true
		}
		if !it.haveGroup || !it.groupVal.Identical(u) {
			it.computeGroup(u)
			if it.err != nil {
				return it.finish()
			}
			it.groupVal = u
			it.haveGroup = true
		}
		if !it.aggOK {
			continue // A′(u) is NULL and the aggregate is not COUNT
		}
		it.loc.stDeg++
		it.loc.deg++
		d := fuzzy.Degree(j.Op1, r.Values[j.yi].Num, it.aggVal)
		if r.D < d {
			d = r.D
		}
		if d > 0 {
			it.loc.tout++
			r.D = d
			it.out = append(it.out, r)
		}
	}
	it.loc.flush(j.Counters, j.Stats)
	return it.out, true
}

func (it *groupAggBatchIterator) finish() ([]frel.Tuple, bool) {
	it.loc.flush(it.j.Counters, it.j.Stats)
	if len(it.out) > 0 {
		return it.out, true
	}
	return nil, false
}

func (it *groupAggBatchIterator) Err() error { return it.err }

func (it *groupAggBatchIterator) Close() {
	if it.win != nil {
		it.win.close()
	}
	it.outer.Close()
}

// collectSortedBatched drains src through the batch interface, verifying
// the Definition 3.1 sort order and building the flat support-key column
// the partitioner and the partition-local joins run on. Keys are copied
// from the producer when it serves them and computed otherwise.
func collectSortedBatched(src Source, idx int, side string) ([]frel.Tuple, []frel.SupportKey, error) {
	it, err := OpenBatches(src)
	if err != nil {
		return nil, nil, err
	}
	defer it.Close()
	var tuples []frel.Tuple
	var keys []frel.SupportKey
	prevBegin := math.Inf(-1)
	for {
		b, ok := it.NextBatch()
		if !ok {
			break
		}
		bk := batchKeys(it)
		for i, t := range b {
			var lo, hi float64
			if bk != nil {
				lo, hi = bk[i].Lo, bk[i].Hi
			} else {
				lo, hi = t.Values[idx].Num.Support()
			}
			if lo < prevBegin {
				return nil, nil, fmt.Errorf("exec: merge-join %s input is not sorted by the Definition 3.1 order", side)
			}
			prevBegin = lo
			tuples = append(tuples, t)
			keys = append(keys, frel.SupportKey{Lo: lo, Hi: hi, D: t.D})
		}
	}
	return tuples, keys, it.Err()
}

// atomicCutsKeyed is atomicCuts over precomputed support-key columns; the
// cut points are identical.
func atomicCutsKeyed(outer, inner []frel.SupportKey, tol fuzzy.Trapezoid) []partRange {
	var cuts [][2]int
	maxHi := math.Inf(-1)
	o, i := 0, 0
	for o < len(outer) || i < len(inner) {
		var lo, hi float64
		takeOuter := false
		if o < len(outer) {
			if i < len(inner) {
				takeOuter = outer[o].Lo <= inner[i].Lo+tol.A
			} else {
				takeOuter = true
			}
		}
		if takeOuter {
			lo, hi = outer[o].Lo, outer[o].Hi
		} else {
			lo, hi = inner[i].Lo+tol.A, inner[i].Hi+tol.D
		}
		if (o > 0 || i > 0) && lo > maxHi {
			cuts = append(cuts, [2]int{o, i})
		}
		if hi > maxHi {
			maxHi = hi
		}
		if takeOuter {
			o++
		} else {
			i++
		}
	}
	ranges := make([]partRange, 0, len(cuts)+1)
	po, pi := 0, 0
	for _, c := range cuts {
		ranges = append(ranges, partRange{po, c[0], pi, c[1]})
		po, pi = c[0], c[1]
	}
	ranges = append(ranges, partRange{po, len(outer), pi, len(inner)})
	return ranges
}

// OpenBatch implements BatchSource: partitions are joined by batched
// sub-joins over keyed partition slices, and the concatenated outputs are
// replayed in partition order (identical to the serial sequence).
func (j *ParallelMergeJoin) OpenBatch() (BatchIterator, error) {
	outer, oKeys, err := collectSortedBatched(j.Outer, j.oi, "outer")
	if err != nil {
		return nil, err
	}
	inner, iKeys, err := collectSortedBatched(j.Inner, j.ii, "inner")
	if err != nil {
		return nil, err
	}
	parts := balanceParts(atomicCutsKeyed(oKeys, iKeys, j.Tol), j.Workers*4)
	results := make([][]frel.Tuple, len(parts))
	err = runParallel(j.Workers, len(parts), func(i int) error {
		p := parts[i]
		if p.oHi == p.oLo || p.iHi == p.iLo {
			// A side is empty: nothing joins in this range, but a serial
			// run still observes an empty Rng(r) scan per outer tuple.
			if j.Stats != nil && p.oHi > p.oLo {
				j.Stats.ObserveRngBulk(int64(p.oHi-p.oLo), 0, 0, 0)
			}
			return nil
		}
		mj, err := NewBandMergeJoin(
			NewKeyedMemSource(&frel.Relation{Schema: j.Outer.Schema(), Tuples: outer[p.oLo:p.oHi]}, oKeys[p.oLo:p.oHi]),
			NewKeyedMemSource(&frel.Relation{Schema: j.Inner.Schema(), Tuples: inner[p.iLo:p.iHi]}, iKeys[p.iLo:p.iHi]),
			j.OuterAttr, j.InnerAttr, j.Tol, j.Extra, j.Counters)
		if err != nil {
			return err
		}
		mj.Stats = j.Stats
		bit, err := mj.OpenBatch()
		if err != nil {
			return err
		}
		defer bit.Close()
		for {
			b, ok := bit.NextBatch()
			if !ok {
				break
			}
			results[i] = append(results[i], b...)
		}
		return bit.Err()
	})
	if err != nil {
		return nil, err
	}
	return &partsBatchIterator{parts: results}, nil
}

// partsBatchIterator replays per-partition result slices in partition
// order, a BatchSize subslice at a time.
type partsBatchIterator struct {
	parts [][]frel.Tuple
	p, i  int
}

func (it *partsBatchIterator) NextBatch() ([]frel.Tuple, bool) {
	for it.p < len(it.parts) {
		part := it.parts[it.p]
		if it.i < len(part) {
			end := it.i + BatchSize
			if end > len(part) {
				end = len(part)
			}
			b := part[it.i:end]
			it.i = end
			return b, true
		}
		it.p++
		it.i = 0
	}
	return nil, false
}

func (it *partsBatchIterator) Err() error { return nil }
func (it *partsBatchIterator) Close()     {}
