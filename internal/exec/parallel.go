package exec

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/frel"
	"repro/internal/fuzzy"
)

// The parallel partitioned merge-join. After both inputs are sorted on the
// Definition 3.1 interval order ≼, the sorted runs split into independent
// support-interval ranges: wherever every interval seen so far ends before
// the next interval begins, no join pair can cross, and the two sides of
// the cut join independently. The partitioner below finds these cuts —
// widening past overlapping intervals exactly like the Rng(r) window of
// the serial merge-join keeps a tuple buffered while anything still
// intersects it — and a bounded worker pool runs one serial merge-join per
// partition. Concatenating the partition outputs in order reproduces the
// serial operator's output sequence tuple for tuple, so degrees, duplicate
// multiplicity, and even the emission order are preserved. The only
// observable difference is that Counters.Comparisons may come out slightly
// lower: a partition boundary pre-drops dangling tuples that the serial
// window examines when they enter the buffer in the same extend batch as a
// range's real members. The EXPLAIN ANALYZE counters (OpStats) do not
// share this caveat — they count only support-intersecting pairs, which
// no join-independent cut can split, so analyzed totals are identical at
// any worker count.

// DefaultParallelism is the worker count used when a caller passes 0.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// partRange is one partition: outer[oLo:oHi] can only join inner[iLo:iHi].
type partRange struct {
	oLo, oHi int
	iLo, iHi int
}

// weight is the partition's work proxy for balancing.
func (p partRange) weight() int { return (p.oHi - p.oLo) + (p.iHi - p.iLo) }

// atomicCuts scans both begin-sorted inputs and returns the cut points
// (o, i) at which outer[:o] ∪ inner[:i] is join-independent from the rest:
// every support interval consumed before the cut ends strictly before
// every interval after it begins. The inner intervals are widened by the
// band tolerance (an inner value s joins outer r when support(s ⊕ tol)
// intersects support(r)), so no band-join pair crosses a cut either.
func atomicCuts(outer, inner []frel.Tuple, oi, ii int, tol fuzzy.Trapezoid) []partRange {
	var cuts [][2]int
	maxHi := math.Inf(-1)
	o, i := 0, 0
	for o < len(outer) || i < len(inner) {
		var lo, hi float64
		takeOuter := false
		if o < len(outer) {
			olo, _ := outer[o].Values[oi].Num.Support()
			if i < len(inner) {
				slo, _ := inner[i].Values[ii].Num.Support()
				takeOuter = olo <= slo+tol.A
			} else {
				takeOuter = true
			}
		}
		if takeOuter {
			lo, hi = outer[o].Values[oi].Num.Support()
		} else {
			lo, hi = inner[i].Values[ii].Num.Support()
			lo += tol.A
			hi += tol.D
		}
		// Everything consumed so far ends before this interval begins:
		// the ranges on either side cannot produce a joining pair.
		if (o > 0 || i > 0) && lo > maxHi {
			cuts = append(cuts, [2]int{o, i})
		}
		if hi > maxHi {
			maxHi = hi
		}
		if takeOuter {
			o++
		} else {
			i++
		}
	}
	ranges := make([]partRange, 0, len(cuts)+1)
	po, pi := 0, 0
	for _, c := range cuts {
		ranges = append(ranges, partRange{po, c[0], pi, c[1]})
		po, pi = c[0], c[1]
	}
	ranges = append(ranges, partRange{po, len(outer), pi, len(inner)})
	return ranges
}

// balanceParts greedily coalesces consecutive atomic ranges into at most
// maxParts partitions of roughly equal tuple weight. Atomic ranges are
// never split, so partition boundaries stay join-independent.
func balanceParts(ranges []partRange, maxParts int) []partRange {
	if maxParts < 1 {
		maxParts = 1
	}
	if len(ranges) <= maxParts {
		return ranges
	}
	total := 0
	for _, r := range ranges {
		total += r.weight()
	}
	target := (total + maxParts - 1) / maxParts
	out := make([]partRange, 0, maxParts)
	cur := ranges[0]
	curWeight := cur.weight()
	for _, r := range ranges[1:] {
		// Close the current partition when it reached its share, unless
		// the remaining ranges must all fit in the remaining slots.
		if curWeight >= target && len(out)+1 < maxParts {
			out = append(out, cur)
			cur, curWeight = r, r.weight()
			continue
		}
		cur.oHi, cur.iHi = r.oHi, r.iHi
		curWeight += r.weight()
	}
	return append(out, cur)
}

// runParallel executes fn(0..n-1) on at most workers goroutines and
// returns the first error.
func runParallel(workers, n int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
		firstEr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errOnce.Do(func() { firstEr = err })
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstEr
}

// ParallelMergeJoin is the partitioned, multi-worker form of the extended
// merge-join. Inputs must be sorted like for MergeJoin; the answer is the
// identical fuzzy relation, in the identical order. Workers <= 1 degrades
// to the serial operator; 0 means DefaultParallelism.
type ParallelMergeJoin struct {
	Outer, Inner         Source
	OuterAttr, InnerAttr string
	Extra                JoinPred
	Counters             *Counters
	Tol                  fuzzy.Trapezoid
	Workers              int

	// Stats, when non-nil, is shared by every partition-local sub-join:
	// the partitions accumulate into the same node, and because the node's
	// counters only measure partition-invariant quantities (intersecting
	// pairs, per-outer-tuple Rng(r) lengths), the aggregated totals equal
	// a serial run's exactly. See MergeJoin.Stats.
	Stats *OpStats

	schema *frel.Schema
	oi, ii int
}

// NewParallelMergeJoin builds a parallel band merge-join with the given
// worker count (0 = GOMAXPROCS).
func NewParallelMergeJoin(outer, inner Source, outerAttr, innerAttr string, tol fuzzy.Trapezoid, extra JoinPred, counters *Counters, workers int) (*ParallelMergeJoin, error) {
	oi, ii, err := checkJoinAttrs(outer, inner, outerAttr, innerAttr)
	if err != nil {
		return nil, err
	}
	if !tol.Valid() {
		return nil, fmt.Errorf("exec: invalid band tolerance %v", tol)
	}
	if counters == nil {
		counters = &Counters{}
	}
	if workers <= 0 {
		workers = DefaultParallelism()
	}
	return &ParallelMergeJoin{
		Outer: outer, Inner: inner,
		OuterAttr: outerAttr, InnerAttr: innerAttr,
		Extra: extra, Counters: counters, Tol: tol, Workers: workers,
		schema: outer.Schema().Join(inner.Schema()),
		oi:     oi, ii: ii,
	}, nil
}

// Schema implements Source.
func (j *ParallelMergeJoin) Schema() *frel.Schema { return j.schema }

// collectSorted drains src, verifying the Definition 3.1 sort order the
// partitioner relies on.
func collectSorted(src Source, idx int, side string) ([]frel.Tuple, error) {
	it, err := src.Open()
	if err != nil {
		return nil, err
	}
	defer it.Close()
	var tuples []frel.Tuple
	prevBegin := math.Inf(-1)
	for {
		t, ok := it.Next()
		if !ok {
			break
		}
		lo, _ := t.Values[idx].Num.Support()
		if lo < prevBegin {
			return nil, fmt.Errorf("exec: merge-join %s input is not sorted by the Definition 3.1 order", side)
		}
		prevBegin = lo
		tuples = append(tuples, t)
	}
	return tuples, it.Err()
}

// Open implements Source: it partitions both (materialized) inputs, joins
// the partitions on the worker pool, and returns an iterator replaying the
// concatenated partition outputs in order.
func (j *ParallelMergeJoin) Open() (Iterator, error) {
	outer, err := collectSorted(j.Outer, j.oi, "outer")
	if err != nil {
		return nil, err
	}
	inner, err := collectSorted(j.Inner, j.ii, "inner")
	if err != nil {
		return nil, err
	}
	// Over-partition a little so stragglers (ranges with skewed fanout)
	// can be balanced across workers.
	parts := balanceParts(atomicCuts(outer, inner, j.oi, j.ii, j.Tol), j.Workers*4)
	results := make([][]frel.Tuple, len(parts))
	err = runParallel(j.Workers, len(parts), func(i int) error {
		p := parts[i]
		if p.oHi == p.oLo || p.iHi == p.iLo {
			// A side is empty: nothing joins in this range. A serial run
			// still observes an empty Rng(r) scan for each outer tuple.
			if j.Stats != nil {
				for k := p.oLo; k < p.oHi; k++ {
					j.Stats.ObserveRng(0)
				}
			}
			return nil
		}
		mj, err := NewBandMergeJoin(
			NewMemSource(&frel.Relation{Schema: j.Outer.Schema(), Tuples: outer[p.oLo:p.oHi]}),
			NewMemSource(&frel.Relation{Schema: j.Inner.Schema(), Tuples: inner[p.iLo:p.iHi]}),
			j.OuterAttr, j.InnerAttr, j.Tol, j.Extra, j.Counters)
		if err != nil {
			return err
		}
		mj.Stats = j.Stats
		it, err := mj.Open()
		if err != nil {
			return err
		}
		defer it.Close()
		for {
			t, ok := it.Next()
			if !ok {
				break
			}
			results[i] = append(results[i], t)
		}
		return it.Err()
	})
	if err != nil {
		return nil, err
	}
	return &partsIterator{parts: results}, nil
}

// partsIterator replays per-partition result slices in partition order.
type partsIterator struct {
	parts [][]frel.Tuple
	p, i  int
}

func (it *partsIterator) Next() (frel.Tuple, bool) {
	for it.p < len(it.parts) {
		if it.i < len(it.parts[it.p]) {
			t := it.parts[it.p][it.i]
			it.i++
			return t, true
		}
		it.p++
		it.i = 0
	}
	return frel.Tuple{}, false
}

func (it *partsIterator) Err() error { return nil }
func (it *partsIterator) Close()     {}
