// Package kernel is the compile-to-closures stage between the planner and
// the batch executor. It specializes a physical plan's predicate and
// trapezoid-degree evaluation into fused, capture-free closures: each
// compiled step captures only the values fixed at compile time (the degree
// function chosen for its operator, resolved column indexes, constant
// operands), so the hot loop runs with no per-tuple interface dispatch and
// no per-tuple allocation. A Program fuses a whole filter→threshold chain
// into a single loop over the batch; a PairProgram (pair.go) does the same
// for the residual conjuncts of a join; Coalesce (morsel.go) packs atomic
// join ranges into morsels for the pull-queue scheduler.
//
// Every step calls the same closed-form degree functions as the
// interpreted evaluator (fuzzy.Eq, fuzzy.Le, frel.Degree, ...), so compiled
// degrees are bit-identical to interpreted ones by construction — the
// kernel-differential CI matrix holds both paths to zero tolerance.
package kernel

import (
	"fmt"

	"repro/internal/frel"
	"repro/internal/fuzzy"
)

// Operand is one side of a compiled predicate step: either a column of the
// input tuple (Col >= 0) or a constant resolved at compile time (Col < 0).
type Operand struct {
	Col   int
	Const frel.Value
}

// Column returns the operand reading column i.
func Column(i int) Operand { return Operand{Col: i} }

// Constant returns the operand yielding the fixed value v.
func Constant(v frel.Value) Operand { return Operand{Col: -1, Const: v} }

// StepKind distinguishes the predicate families a step can compile.
type StepKind int

// The step kinds: an order comparison (=, <>, <, <=, >, >=) and the NEAR
// similarity predicate with a tolerance trapezoid.
const (
	StepCompare StepKind = iota
	StepNear
)

// Step is one predicate of a filter chain in kernel-consumable form.
type Step struct {
	Kind        StepKind
	Op          fuzzy.Op        // StepCompare only
	Tol         fuzzy.Trapezoid // StepNear only
	Left, Right Operand
}

// stepFn evaluates one compiled step against a tuple's value row.
type stepFn func(vals []frel.Value) float64

// Program is a compiled filter chain: the fused form of a sequence of
// predicates evaluated as one loop with min-combination.
type Program struct {
	steps []stepFn
}

// Len returns the number of compiled steps.
func (p *Program) Len() int { return len(p.steps) }

// degreeFunc maps an operator to its closed-form trapezoid degree
// function — the identical function the interpreted path dispatches to
// through frel.Degree's switch, bound once at compile time instead.
func degreeFunc(op fuzzy.Op) (func(u, v fuzzy.Trapezoid) float64, error) {
	switch op {
	case fuzzy.OpEq:
		return fuzzy.Eq, nil
	case fuzzy.OpNe:
		return fuzzy.Ne, nil
	case fuzzy.OpLt:
		return fuzzy.Lt, nil
	case fuzzy.OpLe:
		return fuzzy.Le, nil
	case fuzzy.OpGt:
		return fuzzy.Gt, nil
	case fuzzy.OpGe:
		return fuzzy.Ge, nil
	default:
		return nil, fmt.Errorf("kernel: unknown operator %v", op)
	}
}

// load builds the value getter of an operand.
func (o Operand) load() func(vals []frel.Value) frel.Value {
	if o.Col >= 0 {
		i := o.Col
		return func(vals []frel.Value) frel.Value { return vals[i] }
	}
	v := o.Const
	return func([]frel.Value) frel.Value { return v }
}

// compileStep specializes one step into its closure.
func compileStep(s Step) (stepFn, error) {
	left, right := s.Left.load(), s.Right.load()
	switch s.Kind {
	case StepCompare:
		deg, err := degreeFunc(s.Op)
		if err != nil {
			return nil, err
		}
		op := s.Op
		return func(vals []frel.Value) float64 {
			a, b := left(vals), right(vals)
			if a.Kind == frel.KindNumber && b.Kind == frel.KindNumber {
				return deg(a.Num, b.Num)
			}
			// Mixed or string kinds: fall back to the generic value rule
			// (crisp string comparison; kind mismatch is degree 0).
			return frel.Degree(op, a, b)
		}, nil
	case StepNear:
		tol := s.Tol
		if !tol.Valid() {
			return nil, fmt.Errorf("kernel: invalid NEAR tolerance %v", tol)
		}
		return func(vals []frel.Value) float64 {
			a, b := left(vals), right(vals)
			if a.Kind != frel.KindNumber || b.Kind != frel.KindNumber {
				return 0
			}
			return fuzzy.ApproxEq(a.Num, b.Num, tol)
		}, nil
	default:
		return nil, fmt.Errorf("kernel: unknown step kind %d", s.Kind)
	}
}

// Compile specializes the steps of a filter chain into a fused Program.
func Compile(steps []Step) (*Program, error) {
	p := &Program{steps: make([]stepFn, 0, len(steps))}
	for _, s := range steps {
		fn, err := compileStep(s)
		if err != nil {
			return nil, err
		}
		p.steps = append(p.steps, fn)
	}
	return p, nil
}

// RunBatch evaluates the fused chain over a batch, writing each tuple's
// combined degree min(D, d₁, d₂, ...) into degs[i], and returns the number
// of degree evaluations performed. The first step is evaluated on every
// tuple; later steps only on tuples still above zero — exactly the tuples
// an interpreted filter chain would hand to its next operator, so the
// evaluation count matches the interpreted path's DegreeEvals.
func (p *Program) RunBatch(batch []frel.Tuple, degs []float64) int64 {
	if len(p.steps) == 0 {
		for i := range batch {
			degs[i] = batch[i].D
		}
		return 0
	}
	var evals int64
	first := p.steps[0]
	for i := range batch {
		d := batch[i].D
		if g := first(batch[i].Values); g < d {
			d = g
		}
		degs[i] = d
	}
	evals += int64(len(batch))
	for _, step := range p.steps[1:] {
		for i := range batch {
			d := degs[i]
			if d <= 0 {
				continue
			}
			evals++
			if g := step(batch[i].Values); g < d {
				degs[i] = g
			}
		}
	}
	return evals
}

// EvalTuple is the tuple-at-a-time form of RunBatch for the fallback
// iterator path: it returns the tuple's combined degree and the number of
// evaluations, stopping after the step that drops the degree to zero.
func (p *Program) EvalTuple(t frel.Tuple) (float64, int64) {
	d := t.D
	var evals int64
	for _, step := range p.steps {
		evals++
		if g := step(t.Values); g < d {
			d = g
		}
		if d <= 0 {
			break
		}
	}
	return d, evals
}
