package kernel

import (
	"testing"

	"repro/internal/frel"
	"repro/internal/fuzzy"
)

// boundaryTraps is the boundary-case menagerie every degree test walks:
// crisp points, point-core triangles, rectangles, proper trapezoids, and
// shapes that touch exactly at a knee.
var boundaryTraps = []fuzzy.Trapezoid{
	fuzzy.Crisp(0),
	fuzzy.Crisp(5),
	fuzzy.Tri(0, 5, 10),
	fuzzy.Tri(4, 5, 6),
	fuzzy.Interval(2, 8),
	fuzzy.Trap(0, 2, 4, 6),
	fuzzy.Trap(4, 6, 8, 10),
	fuzzy.Trap(6, 6, 6, 10),  // degenerate rising edge
	fuzzy.Trap(0, 4, 4, 4),   // degenerate falling edge
	fuzzy.Trap(-3, -1, 1, 3), // spans zero
	fuzzy.Trap(10, 11, 12, 13),
}

var allOps = []fuzzy.Op{fuzzy.OpEq, fuzzy.OpNe, fuzzy.OpLt, fuzzy.OpLe, fuzzy.OpGt, fuzzy.OpGe}

// TestCompareBitIdentical asserts the compiled numeric fast path returns
// bit-for-bit the degree the interpreted frel.Degree computes, for every
// operator over every pair of boundary shapes.
func TestCompareBitIdentical(t *testing.T) {
	for _, op := range allOps {
		prog, err := Compile([]Step{{Kind: StepCompare, Op: op, Left: Column(0), Right: Column(1)}})
		if err != nil {
			t.Fatalf("Compile(%v): %v", op, err)
		}
		for _, u := range boundaryTraps {
			for _, v := range boundaryTraps {
				tup := frel.NewTuple(1, frel.Num(u), frel.Num(v))
				got, evals := prog.EvalTuple(tup)
				want := frel.Degree(op, frel.Num(u), frel.Num(v))
				if want > 1 {
					want = 1
				}
				if evals != 1 {
					t.Fatalf("%v %v %v: evals = %d, want 1", u, op, v, evals)
				}
				wantD := want
				if wantD > tup.D {
					wantD = tup.D
				}
				if got != wantD {
					t.Errorf("%v %v %v: compiled %v, interpreted %v", u, op, v, got, wantD)
				}
			}
		}
	}
}

// TestCompareStringsAndMixedKinds covers the fallback path: crisp string
// comparison, and the degree-0 rule for kind mismatches — the value shape
// for which frel.SupportKeys returns a NULL (nil) key column.
func TestCompareStringsAndMixedKinds(t *testing.T) {
	vals := []frel.Value{frel.Str("ann"), frel.Str("bob"), frel.Str("ann"), frel.Crisp(3)}
	for _, op := range allOps {
		prog, err := Compile([]Step{{Kind: StepCompare, Op: op, Left: Column(0), Right: Column(1)}})
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range vals {
			for _, b := range vals {
				tup := frel.NewTuple(1, a, b)
				got, _ := prog.EvalTuple(tup)
				want := frel.Degree(op, a, b)
				if got != want {
					t.Errorf("%v %v %v: compiled %v, interpreted %v", a, op, b, got, want)
				}
			}
		}
	}
}

// TestNearBitIdentical asserts the compiled NEAR step matches
// fuzzy.ApproxEq, including its kind guard.
func TestNearBitIdentical(t *testing.T) {
	tol := fuzzy.Tolerance(1, 3)
	prog, err := Compile([]Step{{Kind: StepNear, Tol: tol, Left: Column(0), Right: Constant(frel.Crisp(5))}})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range boundaryTraps {
		tup := frel.NewTuple(1, frel.Num(u))
		got, _ := prog.EvalTuple(tup)
		want := fuzzy.ApproxEq(u, fuzzy.Crisp(5), tol)
		if want > tup.D {
			want = tup.D
		}
		if got != want {
			t.Errorf("%v NEAR 5: compiled %v, interpreted %v", u, got, want)
		}
	}
	// Kind guard: NEAR against a string is degree 0.
	if d, _ := prog.EvalTuple(frel.NewTuple(1, frel.Str("x"))); d != 0 {
		t.Errorf("NEAR on string = %v, want 0", d)
	}
}

// TestThresholdAtKnee pins the degrees at the exact knee abscissae of a
// trapezoid: a crisp probe at B yields exactly 1, at A exactly 0, and the
// compiled degree agrees bit-for-bit so a threshold sitting exactly on a
// knee value keeps or drops the same tuples under both evaluators.
func TestThresholdAtKnee(t *testing.T) {
	tr := fuzzy.Trap(0, 2, 4, 8)
	for _, probe := range []float64{0, 2, 4, 8, 1, 6} {
		prog, err := Compile([]Step{{Kind: StepCompare, Op: fuzzy.OpEq, Left: Column(0), Right: Constant(frel.Num(tr))}})
		if err != nil {
			t.Fatal(err)
		}
		got, _ := prog.EvalTuple(frel.NewTuple(1, frel.Crisp(probe)))
		want := fuzzy.Eq(fuzzy.Crisp(probe), tr)
		if got != want {
			t.Errorf("crisp %g vs %v: compiled %v, interpreted %v", probe, tr, got, want)
		}
	}
}

// TestRunBatchEmptyAndNoSteps covers the empty-batch and empty-program
// edges.
func TestRunBatchEmptyAndNoSteps(t *testing.T) {
	prog, err := Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := prog.RunBatch(nil, nil); n != 0 {
		t.Fatalf("empty program on empty batch: %d evals", n)
	}
	tup := frel.NewTuple(0.7, frel.Crisp(1))
	degs := make([]float64, 1)
	if n := prog.RunBatch([]frel.Tuple{tup}, degs); n != 0 || degs[0] != 0.7 {
		t.Fatalf("empty program: evals=%d degs=%v, want 0 evals and the tuple's D", n, degs)
	}
	one, err := Compile([]Step{{Kind: StepCompare, Op: fuzzy.OpEq, Left: Column(0), Right: Column(0)}})
	if err != nil {
		t.Fatal(err)
	}
	if n := one.RunBatch(nil, nil); n != 0 {
		t.Fatalf("one-step program on empty batch: %d evals", n)
	}
	if prog.Len() != 0 || one.Len() != 1 {
		t.Fatalf("Len: %d, %d", prog.Len(), one.Len())
	}
}

// TestRunBatchFusionCounts asserts the fused loop evaluates later steps
// only on tuples the first step kept — the same counts an interpreted
// filter chain produces — and combines degrees by min with the tuple D.
func TestRunBatchFusionCounts(t *testing.T) {
	// Step 1: X = 5 (crisp); step 2: Y >= 3.
	prog, err := Compile([]Step{
		{Kind: StepCompare, Op: fuzzy.OpEq, Left: Column(0), Right: Constant(frel.Crisp(5))},
		{Kind: StepCompare, Op: fuzzy.OpGe, Left: Column(1), Right: Constant(frel.Crisp(3))},
	})
	if err != nil {
		t.Fatal(err)
	}
	batch := []frel.Tuple{
		frel.NewTuple(1, frel.Crisp(5), frel.Crisp(4)),                  // survives both
		frel.NewTuple(1, frel.Crisp(7), frel.Crisp(4)),                  // dies at step 1
		frel.NewTuple(0.5, frel.Num(fuzzy.Tri(3, 5, 7)), frel.Crisp(0)), // step 1 = 1, D = 0.5, dies at step 2
	}
	degs := make([]float64, len(batch))
	evals := prog.RunBatch(batch, degs)
	if want := int64(3 + 2); evals != want {
		t.Fatalf("evals = %d, want %d (3 first-step + 2 survivors)", evals, want)
	}
	if degs[0] != 1 || degs[1] != 0 || degs[2] != 0 {
		t.Fatalf("degs = %v, want [1 0 0]", degs)
	}
	// The tuple-at-a-time form agrees and short-circuits after the zero.
	for i, tup := range batch {
		d, _ := prog.EvalTuple(tup)
		if d != degs[i] {
			t.Errorf("EvalTuple(%d) = %v, RunBatch %v", i, d, degs[i])
		}
	}
	if _, n := prog.EvalTuple(batch[1]); n != 1 {
		t.Errorf("EvalTuple short-circuit: %d evals, want 1", n)
	}
}

// TestCompileErrors exercises the compile-time rejections.
func TestCompileErrors(t *testing.T) {
	if _, err := Compile([]Step{{Kind: StepCompare, Op: fuzzy.Op(99)}}); err == nil {
		t.Error("unknown operator accepted")
	}
	if _, err := Compile([]Step{{Kind: StepKind(99)}}); err == nil {
		t.Error("unknown step kind accepted")
	}
	bad := fuzzy.Trapezoid{A: 3, B: 2, C: 1, D: 0}
	if _, err := Compile([]Step{{Kind: StepNear, Tol: bad}}); err == nil {
		t.Error("invalid NEAR tolerance accepted")
	}
}
