package kernel

import (
	"fmt"

	"repro/internal/frel"
	"repro/internal/fuzzy"
)

// PairOperand is one side of a compiled two-input (join) predicate step:
// a column of the left tuple (Side 0), of the right tuple (Side 1), or a
// constant (Side -1).
type PairOperand struct {
	Side  int
	Col   int
	Const frel.Value
}

// LeftColumn returns the operand reading column i of the left input.
func LeftColumn(i int) PairOperand { return PairOperand{Side: 0, Col: i} }

// RightColumn returns the operand reading column i of the right input.
func RightColumn(i int) PairOperand { return PairOperand{Side: 1, Col: i} }

// PairConstant returns the operand yielding the fixed value v.
func PairConstant(v frel.Value) PairOperand { return PairOperand{Side: -1, Const: v} }

// PairStep is one conjunct of a join's residual predicate in
// kernel-consumable form. Neg compiles the complemented degree 1-d, the
// form the > ALL anti-join uses for its inverted link term.
type PairStep struct {
	Kind        StepKind
	Op          fuzzy.Op
	Tol         fuzzy.Trapezoid
	Neg         bool
	Left, Right PairOperand
}

// pairFn evaluates one compiled conjunct against a pair of value rows.
type pairFn func(l, r []frel.Value) float64

// PairProgram is a compiled conjunction of join predicates.
type PairProgram struct {
	steps []pairFn
}

// Len returns the number of compiled conjuncts.
func (p *PairProgram) Len() int { return len(p.steps) }

// load builds the value getter of a pair operand.
func (o PairOperand) load() (func(l, r []frel.Value) frel.Value, error) {
	switch o.Side {
	case 0:
		i := o.Col
		return func(l, _ []frel.Value) frel.Value { return l[i] }, nil
	case 1:
		i := o.Col
		return func(_, r []frel.Value) frel.Value { return r[i] }, nil
	case -1:
		v := o.Const
		return func(_, _ []frel.Value) frel.Value { return v }, nil
	default:
		return nil, fmt.Errorf("kernel: unknown operand side %d", o.Side)
	}
}

// compilePairStep specializes one conjunct into its closure.
func compilePairStep(s PairStep) (pairFn, error) {
	left, err := s.Left.load()
	if err != nil {
		return nil, err
	}
	right, err := s.Right.load()
	if err != nil {
		return nil, err
	}
	var eval pairFn
	switch s.Kind {
	case StepCompare:
		deg, err := degreeFunc(s.Op)
		if err != nil {
			return nil, err
		}
		op := s.Op
		eval = func(l, r []frel.Value) float64 {
			a, b := left(l, r), right(l, r)
			if a.Kind == frel.KindNumber && b.Kind == frel.KindNumber {
				return deg(a.Num, b.Num)
			}
			return frel.Degree(op, a, b)
		}
	case StepNear:
		tol := s.Tol
		if !tol.Valid() {
			return nil, fmt.Errorf("kernel: invalid NEAR tolerance %v", tol)
		}
		eval = func(l, r []frel.Value) float64 {
			a, b := left(l, r), right(l, r)
			if a.Kind != frel.KindNumber || b.Kind != frel.KindNumber {
				return 0
			}
			return fuzzy.ApproxEq(a.Num, b.Num, tol)
		}
	default:
		return nil, fmt.Errorf("kernel: unknown step kind %d", s.Kind)
	}
	if s.Neg {
		inner := eval
		eval = func(l, r []frel.Value) float64 { return 1 - inner(l, r) }
	}
	return eval, nil
}

// CompilePair specializes the conjuncts of a join's residual predicate.
func CompilePair(steps []PairStep) (*PairProgram, error) {
	p := &PairProgram{steps: make([]pairFn, 0, len(steps))}
	for _, s := range steps {
		fn, err := compilePairStep(s)
		if err != nil {
			return nil, err
		}
		p.steps = append(p.steps, fn)
	}
	return p, nil
}

// EvalAnd returns the min-combined conjunction degree over a pair of value
// rows and the number of conjuncts evaluated. Like the interpreted
// conjunction it short-circuits after (not before) the conjunct that drops
// the degree to zero, so the evaluation count matches the interpreted
// path's DegreeEvals exactly.
func (p *PairProgram) EvalAnd(l, r []frel.Value) (float64, int64) {
	d := 1.0
	var evals int64
	for _, step := range p.steps {
		evals++
		if g := step(l, r); g < d {
			d = g
			if d <= 0 {
				break
			}
		}
	}
	return d, evals
}
