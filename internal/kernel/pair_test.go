package kernel

import (
	"testing"

	"repro/internal/frel"
	"repro/internal/fuzzy"
)

// TestPairBitIdentical asserts compiled join conjuncts match the
// interpreted value-level degrees for every operator and side shape.
func TestPairBitIdentical(t *testing.T) {
	l := []frel.Value{frel.Num(fuzzy.Tri(0, 5, 10)), frel.Str("ann")}
	r := []frel.Value{frel.Crisp(4), frel.Str("bob")}
	for _, op := range allOps {
		prog, err := CompilePair([]PairStep{{Kind: StepCompare, Op: op, Left: LeftColumn(0), Right: RightColumn(0)}})
		if err != nil {
			t.Fatal(err)
		}
		got, evals := prog.EvalAnd(l, r)
		want := frel.Degree(op, l[0], r[0])
		if got != want || evals != 1 {
			t.Errorf("%v: compiled (%v, %d evals), interpreted %v", op, got, evals, want)
		}
	}
	// String columns ride the fallback path.
	sp, err := CompilePair([]PairStep{{Kind: StepCompare, Op: fuzzy.OpNe, Left: LeftColumn(1), Right: RightColumn(1)}})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := sp.EvalAnd(l, r); got != 1 {
		t.Errorf("ann <> bob: %v, want 1", got)
	}
	// Constants and the right-side NEAR form.
	np, err := CompilePair([]PairStep{{Kind: StepNear, Tol: fuzzy.Tolerance(1, 2), Left: RightColumn(0), Right: PairConstant(frel.Crisp(4))}})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := np.EvalAnd(l, r)
	if want := fuzzy.ApproxEq(fuzzy.Crisp(4), fuzzy.Crisp(4), fuzzy.Tolerance(1, 2)); got != want {
		t.Errorf("NEAR const: %v, want %v", got, want)
	}
}

// TestPairNeg covers the complemented (1-d) form the > ALL anti-join
// uses.
func TestPairNeg(t *testing.T) {
	prog, err := CompilePair([]PairStep{{Kind: StepCompare, Op: fuzzy.OpGt, Neg: true, Left: LeftColumn(0), Right: RightColumn(0)}})
	if err != nil {
		t.Fatal(err)
	}
	l := []frel.Value{frel.Crisp(7)}
	r := []frel.Value{frel.Crisp(3)}
	if got, _ := prog.EvalAnd(l, r); got != 1-fuzzy.Gt(fuzzy.Crisp(7), fuzzy.Crisp(3)) {
		t.Errorf("Neg: %v", got)
	}
	// NEAR with Neg, string guard included.
	np, err := CompilePair([]PairStep{{Kind: StepNear, Tol: fuzzy.Tolerance(0, 1), Neg: true, Left: LeftColumn(0), Right: RightColumn(0)}})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := np.EvalAnd([]frel.Value{frel.Str("x")}, r); got != 1 {
		t.Errorf("Neg NEAR on string: %v, want 1", got)
	}
}

// TestEvalAndShortCircuit asserts the conjunction evaluates each conjunct
// once, min-combines, and stops after — not before — the conjunct that
// reaches zero, matching the interpreted conjunction's DegreeEvals.
func TestEvalAndShortCircuit(t *testing.T) {
	steps := []PairStep{
		{Kind: StepCompare, Op: fuzzy.OpEq, Left: LeftColumn(0), Right: RightColumn(0)}, // 0 for disjoint
		{Kind: StepCompare, Op: fuzzy.OpEq, Left: LeftColumn(0), Right: LeftColumn(0)},  // would be 1
		{Kind: StepCompare, Op: fuzzy.OpEq, Left: LeftColumn(0), Right: LeftColumn(0)},
	}
	prog, err := CompilePair(steps)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Len() != 3 {
		t.Fatalf("Len = %d", prog.Len())
	}
	l := []frel.Value{frel.Crisp(0)}
	r := []frel.Value{frel.Crisp(100)}
	d, evals := prog.EvalAnd(l, r)
	if d != 0 || evals != 1 {
		t.Fatalf("short-circuit: d=%v evals=%d, want 0 after 1", d, evals)
	}
	// All conjuncts positive: every one evaluated, min combined.
	d, evals = prog.EvalAnd(l, []frel.Value{frel.Crisp(0)})
	if d != 1 || evals != 3 {
		t.Fatalf("full conjunction: d=%v evals=%d, want 1 after 3", d, evals)
	}
}

// TestCompilePairErrors exercises the compile-time rejections.
func TestCompilePairErrors(t *testing.T) {
	if _, err := CompilePair([]PairStep{{Kind: StepCompare, Op: fuzzy.Op(99), Left: LeftColumn(0), Right: RightColumn(0)}}); err == nil {
		t.Error("unknown operator accepted")
	}
	if _, err := CompilePair([]PairStep{{Kind: StepKind(99), Left: LeftColumn(0), Right: RightColumn(0)}}); err == nil {
		t.Error("unknown step kind accepted")
	}
	if _, err := CompilePair([]PairStep{{Kind: StepCompare, Op: fuzzy.OpEq, Left: PairOperand{Side: 7}, Right: RightColumn(0)}}); err == nil {
		t.Error("unknown left side accepted")
	}
	if _, err := CompilePair([]PairStep{{Kind: StepCompare, Op: fuzzy.OpEq, Left: LeftColumn(0), Right: PairOperand{Side: 7}}}); err == nil {
		t.Error("unknown right side accepted")
	}
	bad := fuzzy.Trapezoid{A: 3, B: 2, C: 1, D: 0}
	if _, err := CompilePair([]PairStep{{Kind: StepNear, Tol: bad, Left: LeftColumn(0), Right: RightColumn(0)}}); err == nil {
		t.Error("invalid NEAR tolerance accepted")
	}
}

// TestCoalesce covers the morsel packer: grain respected, boundaries
// preserved, degenerate inputs.
func TestCoalesce(t *testing.T) {
	if m := Coalesce(0, func(int) int { return 1 }, 4); m != nil {
		t.Fatalf("n=0: %v", m)
	}
	// Ten unit-weight items at grain 4: morsels of 4, 4, 2.
	ms := Coalesce(10, func(int) int { return 1 }, 4)
	want := []Morsel{{0, 4}, {4, 8}, {8, 10}}
	if len(ms) != len(want) {
		t.Fatalf("morsels = %v, want %v", ms, want)
	}
	for i := range ms {
		if ms[i] != want[i] {
			t.Fatalf("morsels = %v, want %v", ms, want)
		}
	}
	// Morsels tile [0, n) exactly.
	prev := 0
	for _, m := range ms {
		if m.Lo != prev || m.Hi <= m.Lo {
			t.Fatalf("bad tiling: %v", ms)
		}
		prev = m.Hi
	}
	// A heavy item closes its morsel immediately; zero/negative weights
	// count as 1 so progress is guaranteed.
	ms = Coalesce(3, func(i int) int { return []int{100, 0, -5}[i] }, 4)
	if len(ms) != 2 || ms[0] != (Morsel{0, 1}) || ms[1] != (Morsel{1, 3}) {
		t.Fatalf("heavy item: %v", ms)
	}
	// Non-positive grain: one item per morsel.
	if ms := Coalesce(3, func(int) int { return 1 }, 0); len(ms) != 3 {
		t.Fatalf("grain 0: %v", ms)
	}
}
