package kernel

// Morsel is one unit of the pull-queue join scheduler: the half-open range
// [Lo, Hi) of consecutive atomic work items (join-independent ranges) a
// worker claims in one pull. Morsels are small — many more than there are
// workers — so a straggler morsel delays only itself, not a quarter of the
// input like a static range partition would.
type Morsel struct {
	Lo, Hi int
}

// Coalesce packs n consecutive work items into morsels of at least grain
// total weight (the last morsel may be lighter). Item boundaries are never
// split, so any invariant that holds per item (join independence of atomic
// ranges) holds per morsel. A non-positive grain yields one item per
// morsel; n <= 0 yields no morsels.
func Coalesce(n int, weight func(i int) int, grain int) []Morsel {
	if n <= 0 {
		return nil
	}
	if grain <= 0 {
		grain = 1
	}
	var out []Morsel
	lo, acc := 0, 0
	for i := 0; i < n; i++ {
		w := weight(i)
		if w < 1 {
			w = 1
		}
		acc += w
		if acc >= grain {
			out = append(out, Morsel{Lo: lo, Hi: i + 1})
			lo, acc = i+1, 0
		}
	}
	if lo < n {
		out = append(out, Morsel{Lo: lo, Hi: n})
	}
	return out
}
