package server_test

import (
	"context"
	"net"
	"sort"
	"testing"
	"time"

	"repro/internal/server"
	"repro/pkg/client"
	"repro/pkg/fuzzydb"
)

// columnValues runs a one-column query and returns the sorted values.
func columnValues(t *testing.T, conn *client.Conn, query string) []string {
	t.Helper()
	rows, err := conn.Query(context.Background(), query)
	if err != nil {
		t.Fatalf("Query(%q): %v", query, err)
	}
	vals, _, err := rows.All()
	if err != nil {
		t.Fatalf("rows(%q): %v", query, err)
	}
	out := make([]string, 0, len(vals))
	for _, row := range vals {
		out = append(out, row[0])
	}
	sort.Strings(out)
	return out
}

// TestLoopbackTxnConflictKeepsConnectionAlive drives a write-write
// conflict over the wire: the losing transaction gets CodeTxnConflict
// and is rolled back server-side, but the connection (and its session)
// stays usable — including an immediate retry of the same transaction.
func TestLoopbackTxnConflictKeepsConnectionAlive(t *testing.T) {
	addr, _ := startServer(t, server.Config{})
	a := dial(t, addr)
	b := dial(t, addr)
	ctx := context.Background()

	if err := a.Exec(ctx, `CREATE TABLE C (X NUMBER)`); err != nil {
		t.Fatalf("Exec: %v", err)
	}

	// a's snapshot predates b's committed write, so a's own write must
	// conflict (first-writer-wins validation against the snapshot).
	if err := a.Begin(ctx); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := b.Exec(ctx, `INSERT INTO C VALUES (1)`); err != nil {
		t.Fatalf("concurrent insert: %v", err)
	}
	err := a.Exec(ctx, `INSERT INTO C VALUES (2)`)
	fe, ok := fuzzydb.AsError(err)
	if !ok || fe.Code != fuzzydb.CodeTxnConflict {
		t.Fatalf("conflicting insert error = %v, want code %v", err, fuzzydb.CodeTxnConflict)
	}

	// The transaction is gone (rolled back server-side), the connection is
	// not: plain statements run and see b's committed row.
	if got := columnValues(t, a, `SELECT C.X FROM C`); len(got) != 1 || got[0] != "1" {
		t.Fatalf("after conflict: table = %v, want [1]", got)
	}

	// Retrying from BEGIN on the same connection succeeds.
	if err := a.Begin(ctx); err != nil {
		t.Fatalf("retry Begin: %v", err)
	}
	if err := a.Exec(ctx, `INSERT INTO C VALUES (2)`); err != nil {
		t.Fatalf("retry insert: %v", err)
	}
	if err := a.Commit(ctx); err != nil {
		t.Fatalf("retry Commit: %v", err)
	}
	if got := columnValues(t, b, `SELECT C.X FROM C`); len(got) != 2 {
		t.Fatalf("after retry: table = %v, want two rows", got)
	}
}

// TestLoopbackIndexDDLBarrier drives the index DDL barrier over the wire:
// CREATE INDEX and DROP INDEX inside an open transaction fail without
// killing the transaction or the connection, and both run fine between
// transactions on the same connection afterwards.
func TestLoopbackIndexDDLBarrier(t *testing.T) {
	addr, _ := startServer(t, server.Config{})
	conn := dial(t, addr)
	ctx := context.Background()

	if err := conn.Exec(ctx, `
		CREATE TABLE R (K NUMBER, B NUMBER);
		INSERT INTO R VALUES (1, 10);
		CREATE INDEX r_b ON R (B);
	`); err != nil {
		t.Fatalf("setup: %v", err)
	}

	if err := conn.Begin(ctx); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := conn.Exec(ctx, `CREATE INDEX r_k ON R (K)`); err == nil {
		t.Fatal("CREATE INDEX inside txn succeeded, want barrier rejection")
	}
	if err := conn.Exec(ctx, `DROP INDEX r_b`); err == nil {
		t.Fatal("DROP INDEX inside txn succeeded, want barrier rejection")
	}
	// The rejections left the transaction intact: its write commits.
	if err := conn.Exec(ctx, `INSERT INTO R VALUES (2, 20)`); err != nil {
		t.Fatalf("insert after rejected DDL: %v", err)
	}
	if err := conn.Commit(ctx); err != nil {
		t.Fatalf("Commit after rejected DDL: %v", err)
	}

	// At the barrier both statements work, and queries still answer.
	if err := conn.Exec(ctx, `DROP INDEX r_b; CREATE INDEX r_k ON R (K)`); err != nil {
		t.Fatalf("index DDL at barrier: %v", err)
	}
	if got := columnValues(t, conn, `SELECT R.K FROM R`); len(got) != 2 {
		t.Fatalf("table after barrier DDL = %v, want two rows", got)
	}
}

// TestLoopbackDisconnectRollsBackTxn kills a client mid-transaction and
// checks the server rolls the transaction back: its writes vanish and
// the writer mutex is released, so other sessions can write again.
func TestLoopbackDisconnectRollsBackTxn(t *testing.T) {
	addr, _ := startServer(t, server.Config{})
	setup := dial(t, addr)
	ctx := context.Background()
	if err := setup.Exec(ctx, `CREATE TABLE D (X NUMBER); INSERT INTO D VALUES (1)`); err != nil {
		t.Fatalf("Exec: %v", err)
	}

	a, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if err := a.Begin(ctx); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := a.Exec(ctx, `INSERT INTO D VALUES (2); INSERT INTO D VALUES (3)`); err != nil {
		t.Fatalf("insert in txn: %v", err)
	}
	// Drop the connection with the transaction open. The server-side
	// session close rolls it back and releases the writer mutex.
	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// This write blocks on the writer mutex until the server finishes
	// tearing down a's session — its success proves the rollback ran.
	if err := setup.Exec(ctx, `INSERT INTO D VALUES (4)`); err != nil {
		t.Fatalf("insert after disconnect: %v", err)
	}
	got := columnValues(t, setup, `SELECT D.X FROM D`)
	want := []string{"1", "4"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("after disconnect: table = %v, want %v (mid-txn writes rolled back)", got, want)
	}
}

// TestLoopbackShutdownDrainsOpenTxn shuts the server down while a client
// holds an open transaction with unflushed writes. The drain must resolve
// the transaction (roll it back) before the final checkpoint — otherwise
// the checkpoint would deadlock on the writer mutex — and a reopen of the
// same directory must show the committed state only.
func TestLoopbackShutdownDrainsOpenTxn(t *testing.T) {
	dir := t.TempDir()
	db, err := fuzzydb.Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	srv := server.New(db, server.Config{Logf: t.Logf})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()

	conn, err := client.Dial(lis.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	ctx := context.Background()
	if err := conn.Exec(ctx, `CREATE TABLE G (X NUMBER); INSERT INTO G VALUES (1)`); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if err := conn.Begin(ctx); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := conn.Exec(ctx, `INSERT INTO G VALUES (2)`); err != nil {
		t.Fatalf("insert in txn: %v", err)
	}

	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown with open txn: %v", err)
	}
	select {
	case err := <-done:
		if err != server.ErrServerClosed {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return")
	}

	// Reopen the directory: the auto-committed row recovered, the open
	// transaction's write did not.
	re, err := fuzzydb.Open(dir)
	if err != nil {
		t.Fatalf("reopen after shutdown: %v", err)
	}
	defer re.Close()
	rows, err := re.QueryRows(ctx, `SELECT G.X FROM G`)
	if err != nil {
		t.Fatalf("query after reopen: %v", err)
	}
	defer rows.Close()
	var vals []string
	for rows.Next() {
		var x string
		if err := rows.Scan(&x); err != nil {
			t.Fatalf("Scan: %v", err)
		}
		vals = append(vals, x)
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("rows: %v", err)
	}
	if len(vals) != 1 || vals[0] != "1" {
		t.Fatalf("recovered table = %v, want [1] (open txn rolled back by drain)", vals)
	}
}
