// Package server implements fuzzydbd, the fuzzy database's network
// server: a TCP listener speaking the internal/wire protocol, one
// fuzzydb.Session per connection, prepared statements and cursors held
// per session, and graceful shutdown that drains connections and
// checkpoints before closing the write-ahead log.
//
// Concurrency model: connection handlers run one goroutine each (cheap —
// they mostly block on the socket), but statement execution passes
// through a bounded worker semaphore, so a thousand idle connections cost
// a thousand blocked reads while at most MaxWorkers statements run. The
// engine underneath lets read-only statements of different sessions run
// concurrently against committed snapshots; writes — including each
// connection's BEGIN/COMMIT transactions — serialize behind the database
// writer mutex (the engine is single-writer, see DESIGN.md §13). A
// connection that drops mid-transaction rolls it back when its session
// closes, and Shutdown's drain does the same before checkpointing.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
	"repro/pkg/fuzzydb"
)

// Config configures a Server.
type Config struct {
	// MaxConns bounds concurrently served connections; further accepts
	// wait. 0 means 4096.
	MaxConns int
	// MaxWorkers bounds concurrently executing statements across all
	// connections. 0 means 64.
	MaxWorkers int
	// BatchRows is how many rows a RowBatch frame carries. 0 means 256.
	BatchRows int
	// Logf sinks server logs; nil uses log.Printf.
	Logf func(format string, args ...any)
}

// Server serves the wire protocol over a fuzzydb.DB.
type Server struct {
	db   *fuzzydb.DB
	cfg  Config
	logf func(string, ...any)

	connSem chan struct{} // bounds live connections
	workSem chan struct{} // bounds executing statements

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	done      chan struct{} // closed once Shutdown starts
	closed    bool

	wg sync.WaitGroup // live connection handlers
}

// New builds a server over an open database.
func New(db *fuzzydb.DB, cfg Config) *Server {
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 4096
	}
	if cfg.MaxWorkers <= 0 {
		cfg.MaxWorkers = 64
	}
	if cfg.BatchRows <= 0 {
		cfg.BatchRows = 256
	}
	logf := cfg.Logf
	if logf == nil {
		logf = log.Printf
	}
	return &Server{
		db:        db,
		cfg:       cfg,
		logf:      logf,
		connSem:   make(chan struct{}, cfg.MaxConns),
		workSem:   make(chan struct{}, cfg.MaxWorkers),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
		done:      make(chan struct{}),
	}
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(lis)
}

// Serve accepts connections on lis until Shutdown closes it. It always
// returns a non-nil error; after Shutdown the error is ErrServerClosed.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		lis.Close()
		return ErrServerClosed
	}
	s.listeners[lis] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, lis)
		s.mu.Unlock()
	}()

	for {
		conn, err := lis.Accept()
		if err != nil {
			select {
			case <-s.done:
				return ErrServerClosed
			default:
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return err
		}
		select {
		case s.connSem <- struct{}{}:
		case <-s.done:
			conn.Close()
			return ErrServerClosed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			<-s.connSem
			return ErrServerClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				<-s.connSem
				s.wg.Done()
			}()
			s.serveConn(conn)
		}()
	}
}

// ErrServerClosed is returned by Serve after Shutdown.
var ErrServerClosed = errors.New("server: closed")

// Shutdown gracefully stops the server: it stops accepting, interrupts
// connections blocked in socket reads, waits for in-flight handlers to
// drain (until ctx expires, then force-closes), checkpoints the database
// and closes it (flushing heaps, truncating and closing the WAL).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.done)
	for lis := range s.listeners {
		lis.Close()
	}
	// Unblock handlers parked in ReadFrame; their next read fails and the
	// handler winds down. In-flight statements still run to completion.
	for conn := range s.conns {
		conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() { s.wg.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-ctx.Done():
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-drained
	}

	if err := s.db.Checkpoint(); err != nil {
		s.db.Close()
		return fmt.Errorf("server: shutdown checkpoint: %w", err)
	}
	return s.db.Close()
}

// conn is one served connection's state.
type conn struct {
	srv  *Server
	c    net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	sess *fuzzydb.Session

	nextID  uint32
	stmts   map[uint32]*fuzzydb.Stmt
	cursors map[uint32]*cursor
}

// cursor is a suspended answer: rows handed out batch by batch.
type cursor struct {
	rows *fuzzydb.Rows
}

func (s *Server) serveConn(nc net.Conn) {
	sess, err := s.db.Session()
	if err != nil {
		nc.Close()
		return
	}
	c := &conn{
		srv:     s,
		c:       nc,
		r:       bufio.NewReader(nc),
		w:       bufio.NewWriter(nc),
		sess:    sess,
		stmts:   make(map[uint32]*fuzzydb.Stmt),
		cursors: make(map[uint32]*cursor),
	}
	defer func() {
		for _, cur := range c.cursors {
			cur.rows.Close()
		}
		sess.Close()
		nc.Close()
	}()
	if err := c.handshake(); err != nil {
		return
	}
	for {
		msg, err := wire.ReadMessage(c.r)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) && !isTimeout(err) {
				s.logf("fuzzydbd: %s: read: %v", nc.RemoteAddr(), err)
			}
			return
		}
		quit, err := c.handle(msg)
		if err != nil {
			s.logf("fuzzydbd: %s: %v", nc.RemoteAddr(), err)
			return
		}
		if quit {
			return
		}
	}
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// handshake performs the Hello/HelloOK exchange.
func (c *conn) handshake() error {
	msg, err := wire.ReadMessage(c.r)
	if err != nil {
		return err
	}
	hello, ok := msg.(*wire.Hello)
	if !ok {
		c.sendError(fuzzydb.NewError(fuzzydb.CodeProtocol, fmt.Sprintf("expected Hello, got %s", msg.Type())))
		return errors.New("handshake: no Hello")
	}
	if hello.Version != wire.Version {
		c.sendError(fuzzydb.NewError(fuzzydb.CodeProtocol, fmt.Sprintf("protocol version %d unsupported (server speaks %d)", hello.Version, wire.Version)))
		return errors.New("handshake: version mismatch")
	}
	return c.send(&wire.HelloOK{Version: wire.Version, Server: "fuzzydbd"})
}

// handle dispatches one request. The returned error is fatal for the
// connection (write failures); request-level failures go back to the
// client as Error frames and keep the connection alive.
func (c *conn) handle(msg wire.Message) (quit bool, err error) {
	switch m := msg.(type) {
	case *wire.Quit:
		return true, nil

	case *wire.Exec:
		c.acquireWorker()
		execErr := c.sess.ExecContext(context.Background(), m.SQL)
		c.releaseWorker()
		if execErr != nil {
			return false, c.sendError(execErr)
		}
		return false, c.send(&wire.Done{})

	case *wire.Query:
		c.acquireWorker()
		rows, qerr := c.sess.QueryRows(context.Background(), m.SQL)
		c.releaseWorker()
		if qerr != nil {
			return false, c.sendError(qerr)
		}
		return false, c.sendRows(rows, m.FetchSize)

	case *wire.Parse:
		stmt, perr := c.sess.Prepare(m.SQL)
		if perr != nil {
			return false, c.sendError(perr)
		}
		c.nextID++
		id := c.nextID
		c.stmts[id] = stmt
		return false, c.send(&wire.ParseOK{Stmt: id, NumParams: uint32(stmt.NumParams()), IsQuery: stmt.IsQuery()})

	case *wire.BindExec:
		stmt, ok := c.stmts[m.Stmt]
		if !ok {
			return false, c.sendError(fuzzydb.NewError(fuzzydb.CodeProtocol, fmt.Sprintf("unknown statement handle %d", m.Stmt)))
		}
		args := make([]any, len(m.Args))
		for i, a := range m.Args {
			if a.IsNum {
				args[i] = a.Num
			} else {
				args[i] = a.Str
			}
		}
		if !stmt.IsQuery() {
			c.acquireWorker()
			execErr := stmt.Exec(context.Background(), args...)
			c.releaseWorker()
			if execErr != nil {
				return false, c.sendError(execErr)
			}
			return false, c.send(&wire.Done{Statements: 1})
		}
		c.acquireWorker()
		rows, qerr := stmt.QueryRows(context.Background(), args...)
		c.releaseWorker()
		if qerr != nil {
			return false, c.sendError(qerr)
		}
		return false, c.sendRows(rows, m.FetchSize)

	case *wire.Fetch:
		cur, ok := c.cursors[m.Cursor]
		if !ok {
			return false, c.sendError(fuzzydb.NewError(fuzzydb.CodeProtocol, fmt.Sprintf("unknown cursor %d", m.Cursor)))
		}
		max := int(m.MaxRows)
		if max == 0 {
			max = -1 // drain
		}
		return false, c.sendBatches(m.Cursor, cur, max)

	case *wire.CloseStmt:
		if stmt, ok := c.stmts[m.Stmt]; ok {
			stmt.Close()
			delete(c.stmts, m.Stmt)
		}
		return false, c.send(&wire.Done{})

	case *wire.Checkpoint:
		c.acquireWorker()
		cpErr := c.srv.db.Checkpoint()
		c.releaseWorker()
		if cpErr != nil {
			return false, c.sendError(cpErr)
		}
		return false, c.send(&wire.Done{})

	default:
		return false, c.sendError(fuzzydb.NewError(fuzzydb.CodeProtocol, fmt.Sprintf("unexpected message %s", msg.Type())))
	}
}

func (c *conn) acquireWorker() { c.srv.workSem <- struct{}{} }
func (c *conn) releaseWorker() { <-c.srv.workSem }

// sendRows streams an answer: RowHeader, then batches. fetchSize 0
// streams everything; otherwise the cursor suspends after fetchSize rows
// and the client continues with Fetch.
func (c *conn) sendRows(rows *fuzzydb.Rows, fetchSize uint32) error {
	c.nextID++
	id := c.nextID
	cur := &cursor{rows: rows}
	if err := c.send(&wire.RowHeader{Cursor: id, Columns: rows.Columns()}); err != nil {
		rows.Close()
		return err
	}
	max := -1
	if fetchSize > 0 {
		max = int(fetchSize)
	}
	c.cursors[id] = cur // sendBatches deletes it when the stream ends
	return c.sendBatches(id, cur, max)
}

// sendBatches sends up to max rows (max < 0: all) in BatchRows-sized
// RowBatch frames. An exhausted stream ends with a frame whose More is
// false (possibly empty) and drops the cursor; a cursor suspended at its
// fetch quota ends with More true after exactly max rows — the client
// counts rows against its quota to know the server stopped.
func (c *conn) sendBatches(id uint32, cur *cursor, max int) error {
	ncols := len(cur.rows.Columns())
	batch := make([]wire.Row, 0, c.srv.cfg.BatchRows)
	sent := 0
	for {
		// Fill one batch.
		for len(batch) < c.srv.cfg.BatchRows && (max < 0 || sent < max) {
			if !cur.rows.Next() {
				if err := cur.rows.Err(); err != nil {
					c.closeCursor(id, cur)
					return c.sendError(err)
				}
				c.closeCursor(id, cur)
				return c.send(&wire.RowBatch{Cursor: id, Rows: batch, More: false})
			}
			vals := make([]string, ncols)
			targets := make([]any, ncols)
			for i := range vals {
				targets[i] = &vals[i]
			}
			if err := cur.rows.Scan(targets...); err != nil {
				c.closeCursor(id, cur)
				return c.sendError(err)
			}
			batch = append(batch, wire.Row{Degree: cur.rows.Degree(), Values: vals})
			sent++
		}
		if max >= 0 && sent >= max {
			// Quota reached: suspend the cursor, keep it for Fetch.
			return c.send(&wire.RowBatch{Cursor: id, Rows: batch, More: true})
		}
		// Full mid-stream batch.
		if err := c.send(&wire.RowBatch{Cursor: id, Rows: batch, More: true}); err != nil {
			return err
		}
		batch = batch[:0]
	}
}

func (c *conn) closeCursor(id uint32, cur *cursor) {
	cur.rows.Close()
	delete(c.cursors, id)
}

// send writes one message and flushes.
func (c *conn) send(m wire.Message) error {
	if err := wire.Write(c.w, m); err != nil {
		return err
	}
	return c.w.Flush()
}

// sendError maps err onto an Error frame, preserving its code.
func (c *conn) sendError(err error) error {
	code := fuzzydb.CodeInternal
	msg := err.Error()
	if fe, ok := fuzzydb.AsError(err); ok {
		code = fe.Code
		msg = fe.Msg
	}
	return c.send(&wire.Error{Code: byte(code), Msg: msg})
}
