package server_test

import (
	"bufio"
	"context"
	"fmt"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/frel"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/internal/workload"
	"repro/pkg/client"
	"repro/pkg/fuzzydb"
)

// startServer opens a throwaway database, serves it on a loopback
// listener, and tears everything down (graceful shutdown, which closes
// the database) when the test ends.
func startServer(t *testing.T, cfg server.Config) (addr string, srv *server.Server) {
	t.Helper()
	db, err := fuzzydb.Open("")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	srv = server.New(db, cfg)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		db.Close()
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		select {
		case err := <-done:
			if err != server.ErrServerClosed {
				t.Errorf("Serve returned %v, want ErrServerClosed", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("Serve did not return after Shutdown")
		}
	})
	return lis.Addr().String(), srv
}

func dial(t *testing.T, addr string) *client.Conn {
	t.Helper()
	conn, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

const datingSchema = `
	CREATE TABLE F (ID NUMBER, NAME STRING, AGE NUMBER, INCOME NUMBER);
	INSERT INTO F VALUES (101, 'Ann',   'about 35',     'about 60K');
	INSERT INTO F VALUES (102, 'Ann',   'medium young', 'medium high');
	INSERT INTO F VALUES (103, 'Betty', 'middle age',   'high');
	INSERT INTO F VALUES (104, 'Cathy', 'about 50',     'low');
`

func TestLoopbackExecQuery(t *testing.T) {
	addr, _ := startServer(t, server.Config{})
	conn := dial(t, addr)
	ctx := context.Background()

	if err := conn.Exec(ctx, datingSchema); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	rows, err := conn.Query(ctx, `SELECT F.NAME, F.ID FROM F WHERE F.ID > 101`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if got, want := rows.Columns(), []string{"F.NAME", "F.ID"}; !equalStrings(got, want) {
		t.Errorf("Columns = %v, want %v", got, want)
	}
	var names []string
	for rows.Next() {
		var name string
		var id float64
		if err := rows.Scan(&name, &id); err != nil {
			t.Fatalf("Scan: %v", err)
		}
		if d := rows.Degree(); d != 1 {
			t.Errorf("row %s degree %g, want 1 (crisp predicate, full-degree tuples)", name, d)
		}
		names = append(names, fmt.Sprintf("%s/%g", name, id))
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("rows: %v", err)
	}
	rows.Close()
	if want := []string{"Ann/102", "Betty/103", "Cathy/104"}; !equalStrings(names, want) {
		t.Errorf("answer = %v, want %v", names, want)
	}

	// Checkpoint over the wire.
	if err := conn.Checkpoint(ctx); err != nil {
		t.Errorf("Checkpoint: %v", err)
	}
}

func TestLoopbackErrorsKeepConnectionAlive(t *testing.T) {
	addr, _ := startServer(t, server.Config{})
	conn := dial(t, addr)
	ctx := context.Background()

	if err := conn.Exec(ctx, datingSchema); err != nil {
		t.Fatalf("Exec: %v", err)
	}

	checks := []struct {
		sql  string
		code fuzzydb.ErrorCode
	}{
		{`SELEKT broken`, fuzzydb.CodeParse},
		{`SELECT F.NAME FROM F WHERE F.AGE = 'no such term'`, fuzzydb.CodeTermUndefined},
		{`SELECT F.NAME FROM NOWHERE`, fuzzydb.CodeExec},
	}
	for _, c := range checks {
		_, err := conn.Query(ctx, c.sql)
		fe, ok := fuzzydb.AsError(err)
		if !ok || fe.Code != c.code {
			t.Errorf("Query(%q) error = %v, want code %v", c.sql, err, c.code)
		}
	}

	// The connection survives every request-level error.
	rows, err := conn.Query(ctx, `SELECT F.NAME FROM F WHERE F.NAME = 'Cathy'`)
	if err != nil {
		t.Fatalf("Query after errors: %v", err)
	}
	got, _, err := rows.All()
	if err != nil || len(got) != 1 || got[0][0] != "Cathy" {
		t.Fatalf("answer after errors = %v (err %v), want [[Cathy]]", got, err)
	}
}

func TestLoopbackPreparedStatements(t *testing.T) {
	addr, _ := startServer(t, server.Config{})
	conn := dial(t, addr)
	ctx := context.Background()

	if err := conn.Exec(ctx, `CREATE TABLE P (ID NUMBER, NAME STRING, AGE NUMBER)`); err != nil {
		t.Fatalf("Exec: %v", err)
	}

	ins, err := conn.Prepare(ctx, `INSERT INTO P VALUES (?, ?, ?)`)
	if err != nil {
		t.Fatalf("Prepare insert: %v", err)
	}
	if ins.NumParams() != 3 || ins.IsQuery() {
		t.Fatalf("insert stmt: NumParams %d IsQuery %v, want 3 false", ins.NumParams(), ins.IsQuery())
	}
	for i := 0; i < 5; i++ {
		if err := ins.Exec(ctx, i, fmt.Sprintf("P%d", i), 20+10*i); err != nil {
			t.Fatalf("Exec(%d): %v", i, err)
		}
	}

	sel, err := conn.Prepare(ctx, `SELECT P.NAME FROM P WHERE P.AGE > ?`)
	if err != nil {
		t.Fatalf("Prepare select: %v", err)
	}
	if sel.NumParams() != 1 || !sel.IsQuery() {
		t.Fatalf("select stmt: NumParams %d IsQuery %v, want 1 true", sel.NumParams(), sel.IsQuery())
	}
	rows, err := sel.Query(ctx, 45)
	if err != nil {
		t.Fatalf("Query(45): %v", err)
	}
	got, _, err := rows.All()
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	if len(got) != 2 { // ages 50 and 60
		t.Fatalf("Query(45) returned %d rows, want 2: %v", len(got), got)
	}

	// Re-execution with a different argument reuses the server-side parse.
	rows, err = sel.Query(ctx, 55.0)
	if err != nil {
		t.Fatalf("Query(55): %v", err)
	}
	if got, _, _ := rows.All(); len(got) != 1 || got[0][0] != "P4" {
		t.Fatalf("Query(55) = %v, want [[P4]]", got)
	}

	// Wrong arity is a request-level error; the statement stays usable.
	if _, err := sel.Query(ctx); err == nil {
		t.Error("Query with no args: want arity error")
	}
	if rows, err = sel.Query(ctx, 45); err != nil {
		t.Fatalf("Query after arity error: %v", err)
	}
	rows.Close()

	if err := sel.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := sel.Query(ctx, 45); err == nil {
		t.Error("Query on closed statement: want error")
	}
	if err := ins.Close(); err != nil {
		t.Fatalf("Close insert: %v", err)
	}
}

func TestLoopbackCursorFetch(t *testing.T) {
	addr, _ := startServer(t, server.Config{BatchRows: 7})
	conn := dial(t, addr)
	ctx := context.Background()

	var sb strings.Builder
	sb.WriteString("CREATE TABLE BIG (ID NUMBER);\n")
	const n = 40
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "INSERT INTO BIG VALUES (%d);\n", i)
	}
	if err := conn.Exec(ctx, sb.String()); err != nil {
		t.Fatalf("Exec: %v", err)
	}

	// Every fetch size must deliver the same 40 rows, whether windows
	// align with server batches (7 rows) or not.
	for _, fetch := range []int{0, 1, 3, 7, 9, 40, 100} {
		rows, err := conn.QueryFetch(ctx, `SELECT BIG.ID FROM BIG`, fetch)
		if err != nil {
			t.Fatalf("QueryFetch(%d): %v", fetch, err)
		}
		seen := make(map[float64]bool)
		for rows.Next() {
			var id float64
			if err := rows.Scan(&id); err != nil {
				t.Fatalf("fetch %d: Scan: %v", fetch, err)
			}
			if seen[id] {
				t.Fatalf("fetch %d: duplicate row %g", fetch, id)
			}
			seen[id] = true
		}
		if err := rows.Err(); err != nil {
			t.Fatalf("fetch %d: rows: %v", fetch, err)
		}
		if len(seen) != n {
			t.Fatalf("fetch %d: got %d rows, want %d", fetch, len(seen), n)
		}
	}

	// Closing a half-read cursor drains it and the connection stays usable.
	rows, err := conn.QueryFetch(ctx, `SELECT BIG.ID FROM BIG`, 5)
	if err != nil {
		t.Fatalf("QueryFetch: %v", err)
	}
	for i := 0; i < 3; i++ {
		if !rows.Next() {
			t.Fatalf("Next %d returned false", i)
		}
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("Close half-read cursor: %v", err)
	}
	rows, err = conn.Query(ctx, `SELECT BIG.ID FROM BIG WHERE BIG.ID = 7`)
	if err != nil {
		t.Fatalf("Query after cursor close: %v", err)
	}
	if got, _, _ := rows.All(); len(got) != 1 {
		t.Fatalf("answer after cursor close = %v, want one row", got)
	}
}

func TestLoopbackSessionTermScope(t *testing.T) {
	addr, _ := startServer(t, server.Config{})
	ctx := context.Background()
	conn1 := dial(t, addr)
	conn2 := dial(t, addr)

	if err := conn1.Exec(ctx, `
		CREATE TABLE T (X NUMBER);
		INSERT INTO T VALUES (10);
		INSERT INTO T VALUES (90);
	`); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	// A term defined on one connection is private to its session.
	if err := conn1.Exec(ctx, `DEFINE TERM 'smallish' AS TRAP(0, 0, 20, 30)`); err != nil {
		t.Fatalf("DEFINE TERM: %v", err)
	}
	rows, err := conn1.Query(ctx, `SELECT T.X FROM T WHERE T.X = 'smallish'`)
	if err != nil {
		t.Fatalf("conn1 query: %v", err)
	}
	if got, _, _ := rows.All(); len(got) != 1 || got[0][0] != "10" {
		t.Fatalf("conn1 answer = %v, want [[10]]", got)
	}

	_, err = conn2.Query(ctx, `SELECT T.X FROM T WHERE T.X = 'smallish'`)
	fe, ok := fuzzydb.AsError(err)
	if !ok || fe.Code != fuzzydb.CodeTermUndefined {
		t.Errorf("conn2 sees conn1's term: err = %v, want CodeTermUndefined", err)
	}
}

// TestWireProtocolErrors drives the server with raw frames: handshake
// violations, unknown handles, and unexpected message types must come
// back as typed Error frames without killing the server.
func TestWireProtocolErrors(t *testing.T) {
	addr, _ := startServer(t, server.Config{})

	rawDial := func() (net.Conn, *bufio.Reader, *bufio.Writer) {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		t.Cleanup(func() { nc.Close() })
		return nc, bufio.NewReader(nc), bufio.NewWriter(nc)
	}
	send := func(w *bufio.Writer, m wire.Message) {
		t.Helper()
		if err := wire.Write(w, m); err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
	}
	expectError := func(r *bufio.Reader, code fuzzydb.ErrorCode) {
		t.Helper()
		msg, err := wire.ReadMessage(r)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		e, ok := msg.(*wire.Error)
		if !ok || fuzzydb.ErrorCode(e.Code) != code {
			t.Fatalf("got %#v, want Error with code %v", msg, code)
		}
	}

	// Version mismatch.
	_, r, w := rawDial()
	send(w, &wire.Hello{Version: 99, Client: "test"})
	expectError(r, fuzzydb.CodeProtocol)

	// First message is not Hello.
	_, r, w = rawDial()
	send(w, &wire.Query{SQL: "SELECT 1"})
	expectError(r, fuzzydb.CodeProtocol)

	// Unknown statement handle, unknown cursor, and an unexpected message
	// type, all on one surviving connection.
	_, r, w = rawDial()
	send(w, &wire.Hello{Version: wire.Version, Client: "test"})
	if msg, err := wire.ReadMessage(r); err != nil {
		t.Fatalf("handshake: %v", err)
	} else if _, ok := msg.(*wire.HelloOK); !ok {
		t.Fatalf("handshake reply %#v, want HelloOK", msg)
	}
	send(w, &wire.BindExec{Stmt: 999})
	expectError(r, fuzzydb.CodeProtocol)
	send(w, &wire.Fetch{Cursor: 999})
	expectError(r, fuzzydb.CodeProtocol)
	send(w, &wire.HelloOK{Version: wire.Version}) // server-to-client type
	expectError(r, fuzzydb.CodeProtocol)
	// Still alive: a real request succeeds.
	send(w, &wire.Exec{SQL: `CREATE TABLE W (X NUMBER)`})
	if msg, err := wire.ReadMessage(r); err != nil {
		t.Fatalf("exec after protocol errors: %v", err)
	} else if _, ok := msg.(*wire.Done); !ok {
		t.Fatalf("exec reply %#v, want Done", msg)
	}
}

func TestGracefulShutdown(t *testing.T) {
	db, err := fuzzydb.Open("")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	srv := server.New(db, server.Config{Logf: t.Logf})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()

	addr := lis.Addr().String()
	conn, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	ctx := context.Background()
	if err := conn.Exec(ctx, `CREATE TABLE G (X NUMBER); INSERT INTO G VALUES (1)`); err != nil {
		t.Fatalf("Exec: %v", err)
	}

	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case err := <-done:
		if err != server.ErrServerClosed {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return")
	}

	// The listener is gone and the drained connection is dead.
	if _, err := client.Dial(addr); err == nil {
		t.Error("Dial after shutdown succeeded")
	}
	if err := conn.Exec(ctx, `INSERT INTO G VALUES (2)`); err == nil {
		t.Error("Exec on drained connection succeeded")
	}
	// Shutdown is idempotent.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}
}

// TestConcurrentDifferential is the loopback differential test: the
// differential harness's query set, loaded into one shared server, is
// queried by several client goroutines concurrently (mixing stream and
// cursor mode) and every answer must be identical — values and degrees —
// to the embedded pkg/fuzzydb API evaluating the same case.
func TestConcurrentDifferential(t *testing.T) {
	addr, _ := startServer(t, server.Config{BatchRows: 8})
	ctx := context.Background()
	setup := dial(t, addr)

	type diffCase struct {
		class string
		query string
		want  map[string]float64
	}
	var cases []diffCase
	for i, class := range workload.Classes {
		dc, err := workload.NewDiffCase(class, 1995)
		if err != nil {
			t.Fatalf("NewDiffCase(%s): %v", class, err)
		}
		prefix := fmt.Sprintf("T%d", i)
		script := renderRelationSQL(prefix+"R", dc.R) + renderRelationSQL(prefix+"S", dc.S)
		query := rewriteTables(dc.Query, prefix)

		// The embedded reference answer, from the same SQL.
		edb, err := fuzzydb.Open("")
		if err != nil {
			t.Fatalf("Open embedded: %v", err)
		}
		if err := edb.Exec(script); err != nil {
			edb.Close()
			t.Fatalf("%s: load embedded: %v", class, err)
		}
		want, err := answerMap(ctx, edb, query)
		edb.Close()
		if err != nil {
			t.Fatalf("%s: embedded query: %v", class, err)
		}

		// The same tables in the one shared server database.
		if err := setup.Exec(ctx, script); err != nil {
			t.Fatalf("%s: load server: %v", class, err)
		}
		cases = append(cases, diffCase{class: class, query: query, want: want})
	}

	const (
		goroutines = 6
		iterations = 3
	)
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			conn, err := client.Dial(addr)
			if err != nil {
				errc <- fmt.Errorf("worker %d: dial: %w", g, err)
				return
			}
			defer conn.Close()
			for it := 0; it < iterations; it++ {
				for ci, c := range cases {
					// Vary the transfer mode across workers and rounds.
					fetch := 0
					if (g+it+ci)%2 == 1 {
						fetch = 3
					}
					rows, err := conn.QueryFetch(ctx, c.query, fetch)
					if err != nil {
						errc <- fmt.Errorf("worker %d: %s: %w", g, c.class, err)
						return
					}
					got := make(map[string]float64)
					for rows.Next() {
						key := strings.Join(rowValues(t, rows), "\x00")
						if d := rows.Degree(); d > got[key] {
							got[key] = d
						}
					}
					if err := rows.Err(); err != nil {
						errc <- fmt.Errorf("worker %d: %s: rows: %w", g, c.class, err)
						return
					}
					rows.Close()
					if err := compareAnswers(got, c.want); err != nil {
						errc <- fmt.Errorf("worker %d: %s diverged from embedded API: %w", g, c.class, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// renderRelationSQL renders a generated fuzzy relation as a Fuzzy SQL
// script (CREATE TABLE plus one INSERT ... DEGREE per tuple), relying on
// Trapezoid.String re-parsing exactly (crisp numbers as bare literals,
// ill-known values as TRAP(a,b,c,d)).
func renderRelationSQL(name string, rel *frel.Relation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE TABLE %s (", name)
	for i, a := range rel.Schema.Attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", a.Name, a.Kind)
	}
	b.WriteString(");\n")
	for _, tp := range rel.Tuples {
		fmt.Fprintf(&b, "INSERT INTO %s VALUES (", name)
		for i, v := range tp.Values {
			if i > 0 {
				b.WriteString(", ")
			}
			if v.Kind == frel.KindString {
				fmt.Fprintf(&b, "'%s'", v.Str)
			} else {
				b.WriteString(v.Num.String())
			}
		}
		fmt.Fprintf(&b, ") DEGREE %g;\n", tp.D)
	}
	return b.String()
}

// rewriteTables renames the differential harness's R and S tables so
// several cases can share one catalog. "R." must be rewritten before
// "FROM R": the prefixed names still end in R/S.
func rewriteTables(query, prefix string) string {
	query = strings.ReplaceAll(query, "R.", prefix+"R.")
	query = strings.ReplaceAll(query, "FROM R", "FROM "+prefix+"R")
	query = strings.ReplaceAll(query, "S.", prefix+"S.")
	query = strings.ReplaceAll(query, "FROM S", "FROM "+prefix+"S")
	return query
}

// answerMap evaluates a query on the embedded API, collapsing the answer
// to value-key -> max degree (the identity duplicate elimination uses).
func answerMap(ctx context.Context, db *fuzzydb.DB, query string) (map[string]float64, error) {
	rows, err := db.QueryRows(ctx, query)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	ncols := len(rows.Columns())
	out := make(map[string]float64)
	for rows.Next() {
		vals := make([]string, ncols)
		targets := make([]any, ncols)
		for i := range vals {
			targets[i] = &vals[i]
		}
		if err := rows.Scan(targets...); err != nil {
			return nil, err
		}
		key := strings.Join(vals, "\x00")
		if d := rows.Degree(); d > out[key] {
			out[key] = d
		}
	}
	return out, rows.Err()
}

func rowValues(t *testing.T, rows *client.Rows) []string {
	t.Helper()
	vals := make([]string, len(rows.Columns()))
	targets := make([]any, len(vals))
	for i := range vals {
		targets[i] = &vals[i]
	}
	if err := rows.Scan(targets...); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	return vals
}

// compareAnswers requires identical value sets and degrees equal to a
// hair (the two paths run the same engine code; the tolerance only
// absorbs float formatting at the boundary, not semantic drift).
func compareAnswers(got, want map[string]float64) error {
	if len(got) != len(want) {
		return fmt.Errorf("got %d distinct rows, want %d", len(got), len(want))
	}
	for key, d := range want {
		gd, ok := got[key]
		if !ok {
			return fmt.Errorf("missing row %q", strings.ReplaceAll(key, "\x00", "|"))
		}
		if math.Abs(gd-d) > 1e-9 {
			return fmt.Errorf("row %q degree %g, want %g", strings.ReplaceAll(key, "\x00", "|"), gd, d)
		}
	}
	return nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
