package bench

import (
	"fmt"
	"time"
)

// EngineRun is one merge-join measurement of the batch-vs-tuple
// comparison: a given engine (batched or tuple-at-a-time) at a given
// worker count, running the type J query twice in the same environment so
// the warm run exercises the sort-order cache.
type EngineRun struct {
	Engine  string `json:"engine"`            // "batch" or "tuple"
	Workers int    `json:"workers"`           // merge-join worker count
	Indexed bool   `json:"indexed,omitempty"` // persistent order indexes pre-built

	ColdWallNanos int64 `json:"cold_wall_ns"` // first run: cache empty
	WarmWallNanos int64 `json:"warm_wall_ns"` // best of three cache-hit runs

	Answer      int   `json:"answer_rows"`
	IOs         int64 `json:"page_ios"`
	Comparisons int64 `json:"comparisons"`
	DegreeEvals int64 `json:"degree_evals"`

	SortCacheHits   int64 `json:"sort_cache_hits"`
	SortCacheMisses int64 `json:"sort_cache_misses"`
	IndexHits       int64 `json:"index_hits,omitempty"`
}

// ExperimentRuns is the comparison grid of one experiment's
// representative workload: engines x worker counts.
type ExperimentRuns struct {
	Name       string      `json:"name"`
	Outer      int         `json:"outer_tuples"`
	Inner      int         `json:"inner_tuples"`
	Fanout     int         `json:"fanout"`
	TupleBytes int         `json:"tuple_bytes"`
	Runs       []EngineRun `json:"runs"`

	// ColdIndexedSpeedup is the serial batched cold wall time without
	// indexes divided by the same run with pre-built indexes — how much
	// the persistent order indexes shorten a cold start.
	ColdIndexedSpeedup float64 `json:"cold_indexed_speedup,omitempty"`
}

// BenchReport is the machine-readable batch-vs-tuple comparison
// fuzzybench -compare emits (committed as BENCH_N.json): the merge-join
// method on a representative workload of each paper experiment, run by
// both engines serially and with 4 workers.
type BenchReport struct {
	Query       string           `json:"query"`
	ScaleDiv    int              `json:"scalediv"`
	Seed        int64            `json:"seed"`
	Experiments []ExperimentRuns `json:"experiments"`
}

// reportWorkloads lists the representative cell of each paper experiment:
// Table 1's 8000x8000 pair, Table 2/3's fixed-outer growing-inner pair,
// and Table 4's wide-tuple C=1 pair.
var reportWorkloads = []struct {
	name                string
	outerPaper, inPaper int
	fanout, tupleBytes  int
}{
	{"table1", 8000, 8000, 7, 128},
	{"table2", table2OuterTuples, 64000, 7, 128},
	{"table3", table2OuterTuples, 128000, 7, 128},
	{"table4", table4Tuples, table4Tuples, 1, 1024},
}

// Report measures every report workload under both engines at 1 and 4
// workers and returns the combined comparison.
func (c Config) Report() (*BenchReport, error) {
	return c.ReportFor()
}

// ReportFor is Report restricted to the named experiments (for the CI
// regression smoke, which measures only the cheap ones); no names means
// all of them. Unknown names are an error.
func (c Config) ReportFor(names ...string) (*BenchReport, error) {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	for n := range want {
		known := false
		for _, w := range reportWorkloads {
			if w.name == n {
				known = true
			}
		}
		if !known {
			return nil, fmt.Errorf("bench: unknown experiment %q", n)
		}
	}
	cfg := c.withDefaults()
	rep := &BenchReport{Query: TypeJQuery, ScaleDiv: cfg.ScaleDiv, Seed: cfg.Seed}
	for _, w := range reportWorkloads {
		if len(want) > 0 && !want[w.name] {
			continue
		}
		ex := ExperimentRuns{
			Name:       w.name,
			Outer:      cfg.scale(w.outerPaper),
			Inner:      cfg.scale(w.inPaper),
			Fanout:     w.fanout,
			TupleBytes: w.tupleBytes,
		}
		for _, engine := range []bool{false, true} { // disableBatch
			for _, workers := range []int{1, 4} {
				run, err := cfg.runEngine(w.name, ex.Outer, ex.Inner, w.fanout, w.tupleBytes, engine, workers, false)
				if err != nil {
					return nil, err
				}
				ex.Runs = append(ex.Runs, run)
			}
		}
		if cfg.Indexes {
			// The ablation leg: the batched engine again, with the order
			// indexes pre-built, so the cold run reads them instead of
			// sorting.
			for _, workers := range []int{1, 4} {
				run, err := cfg.runEngine(w.name, ex.Outer, ex.Inner, w.fanout, w.tupleBytes, false, workers, true)
				if err != nil {
					return nil, err
				}
				ex.Runs = append(ex.Runs, run)
			}
			var plain, indexed int64
			for _, run := range ex.Runs {
				if run.Engine == "batch" && run.Workers == 1 {
					if run.Indexed {
						indexed = run.ColdWallNanos
					} else {
						plain = run.ColdWallNanos
					}
				}
			}
			if plain > 0 && indexed > 0 {
				ex.ColdIndexedSpeedup = float64(plain) / float64(indexed)
			}
		}
		rep.Experiments = append(rep.Experiments, ex)
	}
	return rep, nil
}

// runEngine runs the merge-join method twice in one environment (cold
// then warm sort cache) and records wall times and counters.
func (c Config) runEngine(name string, nOuter, nInner, fanout, tupleBytes int, disableBatch bool, workers int, indexed bool) (EngineRun, error) {
	cfg := c
	cfg.Fanout = fanout
	cfg.TupleBytes = tupleBytes
	cfg.Parallelism = workers
	cfg.DisableBatch = disableBatch
	cfg.Indexes = indexed

	env, mgr, q, cleanup, err := cfg.setupWorkload(nOuter, nInner)
	if err != nil {
		return EngineRun{}, err
	}
	defer cleanup()

	env.ResetStats()
	mgr.Stats().Reset()
	start := time.Now()
	cold, err := env.EvalUnnested(q)
	coldWall := time.Since(start)
	if err != nil {
		return EngineRun{}, err
	}
	// Warm runs hit the sort cache; take the best of three so one-shot GC
	// pauses don't masquerade as engine cost.
	var warmWall time.Duration
	for i := 0; i < 3; i++ {
		start = time.Now()
		warm, err := env.EvalUnnested(q)
		d := time.Since(start)
		if err != nil {
			return EngineRun{}, err
		}
		if !cold.Equal(warm, 1e-9) {
			return EngineRun{}, fmt.Errorf("bench: %s: warm run disagrees with cold run (%d vs %d tuples)", name, cold.Len(), warm.Len())
		}
		if i == 0 || d < warmWall {
			warmWall = d
		}
	}

	engine := "batch"
	if disableBatch {
		engine = "tuple"
	}
	return EngineRun{
		Engine:          engine,
		Workers:         workers,
		Indexed:         indexed,
		ColdWallNanos:   coldWall.Nanoseconds(),
		WarmWallNanos:   warmWall.Nanoseconds(),
		Answer:          cold.Len(),
		IOs:             mgr.Stats().IO(),
		Comparisons:     env.Counters.Comparisons.Load(),
		DegreeEvals:     env.Counters.DegreeEvals.Load(),
		SortCacheHits:   env.Counters.SortCacheHits.Load(),
		SortCacheMisses: env.Counters.SortCacheMisses.Load(),
		IndexHits:       env.Counters.IndexHits.Load(),
	}, nil
}
