package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/frel"
)

// EngineRun is one merge-join measurement of the batch-vs-tuple
// comparison: a given engine (batched or tuple-at-a-time) at a given
// worker count, running the type J query twice in the same environment so
// the warm run exercises the sort-order cache.
type EngineRun struct {
	Engine  string `json:"engine"`            // "batch" or "tuple"
	Kernels bool   `json:"kernels,omitempty"` // fused degree kernels enabled (batch only)
	Workers int    `json:"workers"`           // merge-join worker count
	Indexed bool   `json:"indexed,omitempty"` // persistent order indexes pre-built

	ColdWallNanos int64 `json:"cold_wall_ns"` // first run: cache empty
	WarmWallNanos int64 `json:"warm_wall_ns"` // best of three cache-hit runs

	Answer      int   `json:"answer_rows"`
	IOs         int64 `json:"page_ios"`
	Comparisons int64 `json:"comparisons"`
	DegreeEvals int64 `json:"degree_evals"`

	SortCacheHits   int64 `json:"sort_cache_hits"`
	SortCacheMisses int64 `json:"sort_cache_misses"`
	IndexHits       int64 `json:"index_hits,omitempty"`
	Morsels         int64 `json:"morsels,omitempty"` // kernel-join work units dispatched
}

// ExperimentRuns is the comparison grid of one experiment's
// representative workload: engines x worker counts.
type ExperimentRuns struct {
	Name       string      `json:"name"`
	Outer      int         `json:"outer_tuples"`
	Inner      int         `json:"inner_tuples"`
	Fanout     int         `json:"fanout"`
	TupleBytes int         `json:"tuple_bytes"`
	Runs       []EngineRun `json:"runs"`

	// ColdIndexedSpeedup is the serial batched cold wall time without
	// indexes divided by the same run with pre-built indexes — how much
	// the persistent order indexes shorten a cold start.
	ColdIndexedSpeedup float64 `json:"cold_indexed_speedup,omitempty"`
}

// BenchReport is the machine-readable batch-vs-tuple comparison
// fuzzybench -compare emits (committed as BENCH_N.json): the merge-join
// method on a representative workload of each paper experiment, run by
// both engines serially and with 4 workers.
type BenchReport struct {
	Query       string           `json:"query"`
	ScaleDiv    int              `json:"scalediv"`
	Seed        int64            `json:"seed"`
	Experiments []ExperimentRuns `json:"experiments"`
}

// reportWorkloads lists the representative cell of each paper experiment:
// Table 1's 8000x8000 pair, Table 2/3's fixed-outer growing-inner pair,
// and Table 4's wide-tuple C=1 pair.
var reportWorkloads = []struct {
	name                string
	outerPaper, inPaper int
	fanout, tupleBytes  int
}{
	{"table1", 8000, 8000, 7, 128},
	{"table2", table2OuterTuples, 64000, 7, 128},
	{"table3", table2OuterTuples, 128000, 7, 128},
	{"table4", table4Tuples, table4Tuples, 1, 1024},
}

// Report measures every report workload under both engines at 1 and 4
// workers and returns the combined comparison.
func (c Config) Report() (*BenchReport, error) {
	return c.ReportFor()
}

// ReportFor is Report restricted to the named experiments (for the CI
// regression smoke, which measures only the cheap ones); no names means
// all of them. Unknown names are an error.
func (c Config) ReportFor(names ...string) (*BenchReport, error) {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	for n := range want {
		known := false
		for _, w := range reportWorkloads {
			if w.name == n {
				known = true
			}
		}
		if !known {
			return nil, fmt.Errorf("bench: unknown experiment %q", n)
		}
	}
	cfg := c.withDefaults()
	rep := &BenchReport{Query: TypeJQuery, ScaleDiv: cfg.ScaleDiv, Seed: cfg.Seed}
	for _, w := range reportWorkloads {
		if len(want) > 0 && !want[w.name] {
			continue
		}
		ex := ExperimentRuns{
			Name:       w.name,
			Outer:      cfg.scale(w.outerPaper),
			Inner:      cfg.scale(w.inPaper),
			Fanout:     w.fanout,
			TupleBytes: w.tupleBytes,
		}
		// One unmeasured throwaway cell before the grid: the first measured
		// cell in a fresh experiment would otherwise absorb the remaining
		// process warmup (Go heap growth to this workload's footprint, OS
		// page-cache population) that the per-cell warmup eval inside
		// runEngine is too short to complete on its own.
		if _, err := cfg.runEngine(w.name, ex.Outer, ex.Inner, w.fanout, w.tupleBytes, false, false, 1, false); err != nil {
			return nil, err
		}
		// The three engine modes: batch with fused kernels (the default
		// engine), batch interpreted (kernels ablation), tuple-at-a-time.
		modes := []struct {
			disableBatch, disableKernels bool
		}{{false, false}, {false, true}, {true, true}}
		for _, m := range modes {
			for _, workers := range []int{1, 4} {
				run, err := cfg.runEngine(w.name, ex.Outer, ex.Inner, w.fanout, w.tupleBytes, m.disableBatch, m.disableKernels, workers, false)
				if err != nil {
					return nil, err
				}
				ex.Runs = append(ex.Runs, run)
			}
		}
		if cfg.Indexes {
			// The ablation leg: the default engine again, with the order
			// indexes pre-built, so the cold run reads them instead of
			// sorting.
			for _, workers := range []int{1, 4} {
				run, err := cfg.runEngine(w.name, ex.Outer, ex.Inner, w.fanout, w.tupleBytes, false, false, workers, true)
				if err != nil {
					return nil, err
				}
				ex.Runs = append(ex.Runs, run)
			}
			var plain, indexed int64
			for _, run := range ex.Runs {
				if run.Engine == "batch" && run.Kernels && run.Workers == 1 {
					if run.Indexed {
						indexed = run.ColdWallNanos
					} else {
						plain = run.ColdWallNanos
					}
				}
			}
			if plain > 0 && indexed > 0 {
				ex.ColdIndexedSpeedup = float64(plain) / float64(indexed)
			}
		}
		rep.Experiments = append(rep.Experiments, ex)
	}
	return rep, nil
}

// runEngine runs the merge-join method twice in one environment (cold
// then warm sort cache) and records wall times and counters.
func (c Config) runEngine(name string, nOuter, nInner, fanout, tupleBytes int, disableBatch, disableKernels bool, workers int, indexed bool) (EngineRun, error) {
	cfg := c
	cfg.Fanout = fanout
	cfg.TupleBytes = tupleBytes
	cfg.Parallelism = workers
	cfg.DisableBatch = disableBatch
	cfg.DisableKernels = disableKernels
	cfg.Indexes = indexed

	env, mgr, q, cleanup, err := cfg.setupWorkload(nOuter, nInner)
	if err != nil {
		return EngineRun{}, err
	}
	defer cleanup()

	// One unmeasured eval before anything is timed: it pulls the freshly
	// written heap files through the OS page cache and grows the Go heap
	// to working size, so every grid cell starts its measured runs from
	// the same process state. Without it, cells measured later in the grid
	// inherit a warmer process than the first, which biases the comparison
	// toward whichever engine happens to run last.
	if _, err := env.EvalUnnested(q); err != nil {
		return EngineRun{}, err
	}
	env.ReleaseSortCache()

	env.ResetStats()
	mgr.Stats().Reset()
	// Cold runs re-sort from scratch; dropping the sort cache between them
	// makes each one cold again, and the best of five keeps one-shot GC
	// pauses and scheduler hiccups from masquerading as engine cost (same
	// rationale as the warm loop below). Cold evals are dominated by file
	// I/O and syscalls, so their noise floor is wider than the warm
	// loop's: five samples instead of three tightens the floor estimate.
	var cold *frel.Relation
	var coldWall time.Duration
	for i := 0; i < 5; i++ {
		if i > 0 {
			env.ReleaseSortCache()
		}
		start := time.Now()
		res, err := env.EvalUnnested(q)
		d := time.Since(start)
		if err != nil {
			return EngineRun{}, err
		}
		if cold != nil && !cold.Equal(res, 1e-9) {
			return EngineRun{}, fmt.Errorf("bench: %s: cold runs disagree (%d vs %d tuples)", name, cold.Len(), res.Len())
		}
		cold = res
		if i == 0 || d < coldWall {
			coldWall = d
		}
	}
	// Warm runs hit the sort cache; take the best of three so one-shot GC
	// pauses don't masquerade as engine cost.
	var warmWall time.Duration
	for i := 0; i < 3; i++ {
		start := time.Now()
		warm, err := env.EvalUnnested(q)
		d := time.Since(start)
		if err != nil {
			return EngineRun{}, err
		}
		if !cold.Equal(warm, 1e-9) {
			return EngineRun{}, fmt.Errorf("bench: %s: warm run disagrees with cold run (%d vs %d tuples)", name, cold.Len(), warm.Len())
		}
		if i == 0 || d < warmWall {
			warmWall = d
		}
	}

	engine := "batch"
	if disableBatch {
		engine = "tuple"
	}
	return EngineRun{
		Engine:          engine,
		Kernels:         !disableBatch && !disableKernels,
		Workers:         workers,
		Indexed:         indexed,
		ColdWallNanos:   coldWall.Nanoseconds(),
		WarmWallNanos:   warmWall.Nanoseconds(),
		Answer:          cold.Len(),
		IOs:             mgr.Stats().IO(),
		Comparisons:     env.Counters.Comparisons.Load(),
		DegreeEvals:     env.Counters.DegreeEvals.Load(),
		SortCacheHits:   env.Counters.SortCacheHits.Load(),
		SortCacheMisses: env.Counters.SortCacheMisses.Load(),
		IndexHits:       env.Counters.IndexHits.Load(),
		Morsels:         env.Counters.Morsels.Load(),
	}, nil
}

// RenderGrid renders the comparison as a human-readable table: one legend
// line per experiment (not one per run) naming the engine/flag columns,
// then one row per run with wall times and the morsel count of the
// kernel-scheduled joins.
func (r *BenchReport) RenderGrid() string {
	var b strings.Builder
	fmt.Fprintf(&b, "batch-vs-tuple comparison  query=%q scalediv=%d seed=%d\n",
		r.Query, r.ScaleDiv, r.Seed)
	for _, ex := range r.Experiments {
		fmt.Fprintf(&b, "\n%s  (outer=%d inner=%d fanout=%d tuplebytes=%d)\n",
			ex.Name, ex.Outer, ex.Inner, ex.Fanout, ex.TupleBytes)
		// The legend appears once per experiment.
		fmt.Fprintf(&b, "  %-18s %7s %12s %12s %10s %8s\n",
			"engine", "workers", "cold", "warm", "answer", "morsels")
		for _, run := range ex.Runs {
			label := run.Engine
			if run.Engine == "batch" {
				if run.Kernels {
					label += "+kernels"
				} else {
					label += "+interp"
				}
			}
			if run.Indexed {
				label += "+idx"
			}
			fmt.Fprintf(&b, "  %-18s %7d %12s %12s %10d %8d\n",
				label, run.Workers,
				time.Duration(run.ColdWallNanos).Round(time.Microsecond),
				time.Duration(run.WarmWallNanos).Round(time.Microsecond),
				run.Answer, run.Morsels)
		}
		if ex.ColdIndexedSpeedup > 0 {
			fmt.Fprintf(&b, "  cold indexed speedup: %.2fx\n", ex.ColdIndexedSpeedup)
		}
	}
	return b.String()
}
