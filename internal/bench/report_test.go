package bench

import (
	"strings"
	"testing"
)

// TestReportComparesEngines runs the batch-vs-tuple comparison at a tiny
// scale and checks its invariants: every experiment carries the full
// engine x workers grid, both engines agree on the answer, and the warm
// runs hit the sort cache.
func TestReportComparesEngines(t *testing.T) {
	cfg := Config{Dir: t.TempDir(), ScaleDiv: 512, Seed: 3}
	rep, err := cfg.Report()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Experiments) != 4 {
		t.Fatalf("report has %d experiments, want 4", len(rep.Experiments))
	}
	for _, ex := range rep.Experiments {
		if len(ex.Runs) != 6 {
			t.Fatalf("%s: %d runs, want (batch+kernels / batch / tuple) x 1/4 workers", ex.Name, len(ex.Runs))
		}
		engines := map[string]int{}
		kernelRuns := 0
		for _, run := range ex.Runs {
			engines[run.Engine]++
			if run.Kernels {
				kernelRuns++
				if run.Engine != "batch" {
					t.Errorf("%s: kernels flagged on %s run", ex.Name, run.Engine)
				}
				if run.Morsels == 0 {
					t.Errorf("%s: kernels w=%d dispatched no morsels", ex.Name, run.Workers)
				}
			} else if run.Morsels != 0 {
				t.Errorf("%s: %s w=%d reports %d morsels with kernels off",
					ex.Name, run.Engine, run.Workers, run.Morsels)
			}
			if run.Answer != ex.Runs[0].Answer {
				t.Errorf("%s: %s w=%d answer %d differs from %d",
					ex.Name, run.Engine, run.Workers, run.Answer, ex.Runs[0].Answer)
			}
			if run.SortCacheHits == 0 || run.SortCacheMisses == 0 {
				t.Errorf("%s: %s w=%d cache hits=%d misses=%d, want both nonzero",
					ex.Name, run.Engine, run.Workers, run.SortCacheHits, run.SortCacheMisses)
			}
			if run.ColdWallNanos <= 0 || run.WarmWallNanos <= 0 {
				t.Errorf("%s: %s w=%d non-positive wall times", ex.Name, run.Engine, run.Workers)
			}
		}
		if engines["batch"] != 4 || engines["tuple"] != 2 {
			t.Errorf("%s: engine mix %v", ex.Name, engines)
		}
		if kernelRuns != 2 {
			t.Errorf("%s: %d kernel runs, want 2", ex.Name, kernelRuns)
		}
	}
	grid := rep.RenderGrid()
	for _, label := range []string{"batch+kernels", "batch+interp", "tuple", "morsels"} {
		if !strings.Contains(grid, label) {
			t.Errorf("grid is missing %q:\n%s", label, grid)
		}
	}
	// The legend line appears once per experiment, not once per run.
	if n := strings.Count(grid, "engine"); n != len(rep.Experiments) {
		t.Errorf("grid prints %d legend lines, want %d (one per experiment)", n, len(rep.Experiments))
	}
}
