// Package bench is the experiment harness regenerating every table and
// figure of the paper's evaluation (Section 9). Each experiment runs the
// type J query the paper uses —
//
//	SELECT R.K FROM R
//	WHERE R.B IN (SELECT S.B FROM S WHERE S.A = R.A)
//
// — once with the naive nested-loop evaluation of the nested form and once
// with the extended merge-join evaluation of the unnested form, over
// synthetic relations from the workload generator.
//
// Substitution for the 1995 testbed (see DESIGN.md): tuple counts and the
// buffer pool scale down by ScaleDiv (keeping the paper's 2 MB-buffer to
// relation-size ratios), and the reported response time models the era's
// disk as measured-compute-time + physical-page-I/Os × IOLatency. Raw wall
// times and I/O counts are reported alongside.
package bench

import (
	"fmt"
	"os"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/frel"
	"repro/internal/fsql"
	"repro/internal/storage"
	"repro/internal/workload"
)

// TypeJQuery is the query every experiment measures (Section 9 uses type J
// queries to illustrate the results).
const TypeJQuery = `SELECT R.K FROM R WHERE R.B IN (SELECT S.B FROM S WHERE S.A = R.A)`

// Config controls an experiment run.
type Config struct {
	// Dir is the scratch directory for heap files; each measurement uses a
	// fresh subdirectory.
	Dir string
	// ScaleDiv divides the paper's tuple counts and buffer size (default
	// 32: the paper's 8 000-tuple relation becomes 250 tuples).
	ScaleDiv int
	// IOLatency is the simulated per-page-I/O latency of the response-time
	// model (default 10 ms, a 1995-era disk).
	IOLatency time.Duration
	// Fanout is the average number of join partners C (default 7, the
	// value of Tables 1 and 2).
	Fanout int
	// TupleBytes is the serialized tuple size (default 128).
	TupleBytes int
	// Width is the half-width of the fuzzy value supports (default 5:
	// imprecise but not very vague).
	Width float64
	// CPUFactor scales measured compute time in the response model,
	// representing how much slower the paper's 1995 SPARC/IPC executed the
	// same work than this machine (default 1: raw measurements; the
	// recorded experiments use 100, see EXPERIMENTS.md).
	CPUFactor float64
	// Parallelism is the worker count for the merge-join method's
	// partitioned joins and sort run generation: 0 uses the engine default
	// (all CPUs), 1 forces fully serial execution (the paper's setting).
	Parallelism int
	// DisableBatch runs the engine tuple-at-a-time instead of the default
	// batched execution (the before/after switch of the batch comparison).
	DisableBatch bool
	// DisableKernels keeps the batch engine on its interpreted closure
	// evaluators instead of the default fused degree kernels (the kernels
	// ablation switch; implied by DisableBatch).
	DisableKernels bool
	// Indexes builds persistent order indexes on the join attributes of
	// both relations after loading them, so the merge-join method's cold
	// run is served from the indexes instead of external-sorting (the
	// indexed-vs-sort cold-start ablation).
	Indexes bool
	// Verify cross-checks that both methods return identical answers.
	Verify bool
	// Seed randomizes the workload.
	Seed int64
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.ScaleDiv <= 0 {
		c.ScaleDiv = 32
	}
	if c.IOLatency == 0 {
		c.IOLatency = 10 * time.Millisecond
	}
	if c.Fanout <= 0 {
		c.Fanout = 7
	}
	if c.TupleBytes <= 0 {
		c.TupleBytes = 128
	}
	if c.Width <= 0 {
		c.Width = 5
	}
	if c.CPUFactor <= 0 {
		c.CPUFactor = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// scale converts a paper-scale tuple count to this run's count.
func (c Config) scale(paperTuples int) int {
	n := paperTuples / c.ScaleDiv
	if n < 50 {
		n = 50
	}
	return n
}

// bufferPages returns the scaled buffer pool size: the paper's 2 MB buffer
// (256 pages of 8 KiB), divided by ScaleDiv, with a floor of 4 pages.
func (c Config) bufferPages() int {
	p := 256 / c.ScaleDiv
	if p < 4 {
		p = 4
	}
	return p
}

// Measurement records one method's run.
type Measurement struct {
	Wall        time.Duration // measured compute time
	IOs         int64         // physical page I/Os
	DegreeEvals int64
	Comparisons int64
	SortWall    time.Duration // merge-join only: time spent sorting
	SortIOs     int64
	IOLatency   time.Duration
	CPUFactor   float64
	Answer      int // answer cardinality
}

// Response returns the modeled response time:
// compute time × CPU factor + I/Os × simulated latency.
func (m Measurement) Response() time.Duration {
	return m.CPU() + time.Duration(m.IOs)*m.IOLatency
}

// CPU returns the modeled compute time (measured wall time scaled by the
// CPU factor).
func (m Measurement) CPU() time.Duration {
	f := m.CPUFactor
	if f <= 0 {
		f = 1
	}
	return time.Duration(float64(m.Wall) * f)
}

// CPUFraction returns the share of the response time spent computing.
func (m Measurement) CPUFraction() float64 {
	r := m.Response()
	if r == 0 {
		return 0
	}
	return float64(m.CPU()) / float64(r)
}

// SortFraction returns the share of the response time spent sorting
// (compute + modeled sort I/O), the paper's Table 3 second row.
func (m Measurement) SortFraction() float64 {
	r := m.Response()
	if r == 0 {
		return 0
	}
	f := m.CPUFactor
	if f <= 0 {
		f = 1
	}
	sort := time.Duration(float64(m.SortWall)*f) + time.Duration(m.SortIOs)*m.IOLatency
	return float64(sort) / float64(r)
}

// Method selects an evaluation strategy.
type Method int

// The two methods the paper compares.
const (
	NestedLoop Method = iota // naive evaluation of the nested query
	MergeJoin                // extended merge-join on the unnested query
)

// String names the method.
func (m Method) String() string {
	if m == NestedLoop {
		return "nested-loop"
	}
	return "merge-join"
}

// MeasurePair runs both methods on a freshly generated R (nOuter tuples) /
// S (nInner tuples) pair and returns the two measurements.
func (c Config) MeasurePair(nOuter, nInner int) (nested, merged Measurement, err error) {
	cfg := c.withDefaults()
	nested, ansN, err := cfg.measure(NestedLoop, nOuter, nInner)
	if err != nil {
		return nested, merged, err
	}
	merged, ansM, err := cfg.measure(MergeJoin, nOuter, nInner)
	if err != nil {
		return nested, merged, err
	}
	if cfg.Verify && !ansN.Equal(ansM, 1e-9) {
		return nested, merged, fmt.Errorf("bench: methods disagree (%d vs %d tuples)", ansN.Len(), ansM.Len())
	}
	return nested, merged, nil
}

// MeasureOne runs a single method.
func (c Config) MeasureOne(m Method, nOuter, nInner int) (Measurement, error) {
	cfg := c.withDefaults()
	meas, _, err := cfg.measure(m, nOuter, nInner)
	return meas, err
}

// setupWorkload builds a fresh environment with generated R/S relations
// and the parsed type J query; cleanup removes the scratch directory.
func (c Config) setupWorkload(nOuter, nInner int) (env *core.Env, mgr *storage.Manager, q *fsql.Select, cleanup func(), err error) {
	dir, err := os.MkdirTemp(c.Dir, "bench-*")
	if err != nil {
		return nil, nil, nil, nil, err
	}
	cleanup = func() { os.RemoveAll(dir) }

	mgr = storage.NewManager(dir, c.bufferPages())
	cat := catalog.New(mgr)
	env = core.NewEnv(cat)
	env.SortMemPages = c.bufferPages()
	env.NLBlockBytes = (c.bufferPages() - 1) * storage.PageSize
	env.Parallelism = c.Parallelism
	env.DisableBatch = c.DisableBatch
	env.DisableKernels = c.DisableKernels

	if _, err := workload.Load(cat, workload.Params{
		Name: "R", Tuples: nOuter, TupleBytes: c.TupleBytes,
		Fanout: c.Fanout, Width: c.Width, Jitter: 0.5, Seed: c.Seed,
	}); err != nil {
		cleanup()
		return nil, nil, nil, nil, err
	}
	if _, err := workload.Load(cat, workload.Params{
		Name: "S", Tuples: nInner, TupleBytes: c.TupleBytes,
		Fanout: c.Fanout, Width: c.Width, Jitter: 0.5, Seed: c.Seed + 1,
	}); err != nil {
		cleanup()
		return nil, nil, nil, nil, err
	}
	if c.Indexes {
		for _, ix := range []struct{ name, rel, attr string }{
			{"r_a", "R", "A"}, {"r_b", "R", "B"},
			{"s_a", "S", "A"}, {"s_b", "S", "B"},
		} {
			if _, err := cat.CreateIndex(ix.name, ix.rel, ix.attr); err != nil {
				cleanup()
				return nil, nil, nil, nil, err
			}
		}
	}

	q, err = fsql.ParseQuery(TypeJQuery)
	if err != nil {
		cleanup()
		return nil, nil, nil, nil, err
	}
	return env, mgr, q, cleanup, nil
}

func (c Config) measure(method Method, nOuter, nInner int) (Measurement, *frel.Relation, error) {
	env, mgr, q, cleanup, err := c.setupWorkload(nOuter, nInner)
	if err != nil {
		return Measurement{}, nil, err
	}
	defer cleanup()

	env.ResetStats()
	mgr.Stats().Reset()
	start := time.Now()
	var rel *frel.Relation
	if method == NestedLoop {
		rel, err = env.EvalNaive(q)
	} else {
		rel, err = env.EvalUnnested(q)
	}
	wall := time.Since(start)
	if err != nil {
		return Measurement{}, nil, err
	}
	meas := Measurement{
		Wall:        wall,
		IOs:         mgr.Stats().IO(),
		DegreeEvals: env.Counters.DegreeEvals.Load(),
		Comparisons: env.Counters.Comparisons.Load(),
		SortWall:    env.Phases.SortWall,
		SortIOs:     env.Phases.SortIOs,
		IOLatency:   c.IOLatency,
		CPUFactor:   c.CPUFactor,
		Answer:      rel.Len(),
	}
	return meas, rel, nil
}
