package bench

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/frel"
)

// MethodStats is the machine-readable EXPLAIN ANALYZE result of one
// method's run — the JSON shape fuzzybench -json emits (see DESIGN.md).
type MethodStats struct {
	Strategy   string              `json:"strategy"`
	Note       string              `json:"note,omitempty"`
	WallNanos  int64               `json:"wall_ns"`
	Answer     int                 `json:"answer_rows"`
	Pruned     int64               `json:"pruned_by_with"`
	PoolHits   int64               `json:"pool_hits"`
	PoolMisses int64               `json:"pool_misses"`
	Plan       *exec.StatsSnapshot `json:"plan"`
}

func methodStats(es *core.ExecStats) *MethodStats {
	return &MethodStats{
		Strategy:   es.Strategy.String(),
		Note:       es.Note,
		WallNanos:  es.Wall.Nanoseconds(),
		Answer:     es.Answer,
		Pruned:     es.Pruned,
		PoolHits:   es.PoolHits,
		PoolMisses: es.PoolMisses,
		Plan:       es.Plan(),
	}
}

// AnalyzeReport is the EXPLAIN ANALYZE comparison of both methods on one
// generated workload pair.
type AnalyzeReport struct {
	Query       string                  `json:"query"`
	Outer       int                     `json:"outer_tuples"`
	Inner       int                     `json:"inner_tuples"`
	ScaleDiv    int                     `json:"scalediv"`
	Parallelism int                     `json:"parallelism"`
	Seed        int64                   `json:"seed"`
	Methods     map[string]*MethodStats `json:"methods"`
}

// AnalyzePair runs both methods on a freshly generated R/S pair with
// per-operator statistics collection and returns the combined report.
func (c Config) AnalyzePair(nOuter, nInner int) (*AnalyzeReport, error) {
	cfg := c.withDefaults()
	rep := &AnalyzeReport{
		Query:       TypeJQuery,
		Outer:       nOuter,
		Inner:       nInner,
		ScaleDiv:    cfg.ScaleDiv,
		Parallelism: cfg.Parallelism,
		Seed:        cfg.Seed,
		Methods:     make(map[string]*MethodStats),
	}
	var answers [2]*frel.Relation
	for i, m := range []Method{NestedLoop, MergeJoin} {
		es, rel, err := cfg.analyze(m, nOuter, nInner)
		if err != nil {
			return nil, err
		}
		rep.Methods[m.String()] = methodStats(es)
		answers[i] = rel
	}
	if cfg.Verify && !answers[0].Equal(answers[1], 1e-9) {
		return nil, fmt.Errorf("bench: methods disagree (%d vs %d tuples)", answers[0].Len(), answers[1].Len())
	}
	return rep, nil
}

func (c Config) analyze(method Method, nOuter, nInner int) (*core.ExecStats, *frel.Relation, error) {
	env, mgr, q, cleanup, err := c.setupWorkload(nOuter, nInner)
	if err != nil {
		return nil, nil, err
	}
	defer cleanup()

	env.ResetStats()
	mgr.Stats().Reset()
	ctx := context.Background()
	if method == NestedLoop {
		rel, es, err := env.EvalNaiveAnalyze(ctx, q)
		return es, rel, err
	}
	rel, es, err := env.EvalUnnestedAnalyze(ctx, q)
	return es, rel, err
}
