package bench

import (
	"testing"
)

// TestAnalyzePairRngBound reproduces the paper's central efficiency claim
// (Section 3) as a regression test on the EXPERIMENTS.md workload: the
// extended merge-join touches, per outer tuple, only the inner tuples
// whose supports intersect — so the Rng(r) scan lengths reported by
// EXPLAIN ANALYZE must be strictly smaller than the inner relation's
// cardinality, while the naive nested-loop method rescans all of it.
func TestAnalyzePairRngBound(t *testing.T) {
	const nOuter, nInner = 250, 250
	cfg := Config{ScaleDiv: 32, Verify: true, Seed: 1}
	rep, err := cfg.AnalyzePair(nOuter, nInner)
	if err != nil {
		t.Fatal(err)
	}

	merged := rep.Methods[MergeJoin.String()]
	if merged == nil || merged.Plan == nil {
		t.Fatalf("no merge-join method stats in report: %+v", rep.Methods)
	}
	mj := merged.Plan.Find("merge-join")
	if mj == nil {
		t.Fatalf("no merge-join node in plan:\n%s", merged.Plan.Render())
	}
	if mj.RngCount != nOuter {
		t.Errorf("RngCount = %d, want one Rng(r) observation per outer tuple (%d)", mj.RngCount, nOuter)
	}
	if mj.RngMax <= 0 || mj.RngMax >= nInner {
		t.Errorf("RngMax = %d, want 0 < RngMax < inner cardinality %d", mj.RngMax, nInner)
	}
	if mj.RngAvg <= 0 || mj.RngAvg >= float64(nInner) {
		t.Errorf("RngAvg = %g, want 0 < RngAvg < inner cardinality %d", mj.RngAvg, nInner)
	}
	// For the extended merge-join, comparisons are exactly the summed
	// Rng(r) window lengths.
	if sum := int64(mj.RngAvg*float64(mj.RngCount) + 0.5); mj.Comparisons != sum {
		t.Errorf("Comparisons = %d, want sum of Rng lengths %d", mj.Comparisons, sum)
	}

	naive := rep.Methods[NestedLoop.String()]
	if naive == nil || naive.Plan == nil {
		t.Fatalf("no nested-loop method stats in report: %+v", rep.Methods)
	}
	if naive.Answer != merged.Answer {
		t.Errorf("methods disagree on answer size: naive %d vs merged %d", naive.Answer, merged.Answer)
	}
	// The efficiency gap itself: the naive method evaluates a membership
	// degree for every outer × inner pair, far above the merge-join's
	// Rng-bounded total across its whole plan.
	_, _, mergedDeg := merged.Plan.Totals()
	if naive.Plan.DegreeEvals <= mergedDeg {
		t.Errorf("naive degree evaluations %d not above merge-join total %d",
			naive.Plan.DegreeEvals, mergedDeg)
	}
}
