package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func regressReport(cold int64, answer int) *BenchReport {
	return &BenchReport{
		ScaleDiv: 8,
		Seed:     1,
		Experiments: []ExperimentRuns{{
			Name: "table1",
			Runs: []EngineRun{
				{Engine: "batch", Workers: 1, ColdWallNanos: cold, Answer: answer},
				{Engine: "tuple", Workers: 4, ColdWallNanos: 2 * cold, Answer: answer},
			},
		}},
	}
}

func TestFindRegressions(t *testing.T) {
	base := regressReport(1_000_000, 100)

	// Within threshold: no findings.
	regs, err := FindRegressions(base, regressReport(1_200_000, 100), 1.25)
	if err != nil || len(regs) != 0 {
		t.Errorf("within threshold: regs=%v err=%v", regs, err)
	}
	// Past threshold: both matched runs regress.
	regs, err = FindRegressions(base, regressReport(1_300_000, 100), 1.25)
	if err != nil || len(regs) != 2 {
		t.Fatalf("past threshold: regs=%v err=%v", regs, err)
	}
	if regs[0].Experiment != "table1" || regs[0].Ratio < 1.29 || regs[0].Ratio > 1.31 {
		t.Errorf("regression = %+v", regs[0])
	}
	if !strings.Contains(regs[0].String(), "table1 batch workers=1") {
		t.Errorf("String = %q", regs[0].String())
	}
	// A changed answer cardinality is a hard error, not a slowdown.
	if _, err := FindRegressions(base, regressReport(1_000_000, 99), 1.25); err == nil {
		t.Errorf("changed answer: want error")
	}
	// Mismatched workloads cannot be compared.
	cur := regressReport(1_000_000, 100)
	cur.ScaleDiv = 16
	if _, err := FindRegressions(base, cur, 1.25); err == nil {
		t.Errorf("mismatched scalediv: want error")
	}
	if _, err := FindRegressions(base, base, 1.0); err == nil {
		t.Errorf("ratio <= 1: want error")
	}
	// Runs missing on either side are skipped silently.
	cur = regressReport(5_000_000, 100)
	cur.Experiments[0].Runs = cur.Experiments[0].Runs[:1]
	cur.Experiments[0].Runs[0].Engine = "other"
	regs, err = FindRegressions(base, cur, 1.25)
	if err != nil || len(regs) != 0 {
		t.Errorf("unmatched runs: regs=%v err=%v", regs, err)
	}
}

// TestFindRegressionsKernelsKey checks runs are matched on the kernels
// flag: a kernels-on run never gates against a kernels-off baseline.
func TestFindRegressionsKernelsKey(t *testing.T) {
	mk := func(kernels bool, cold int64) *BenchReport {
		return &BenchReport{
			ScaleDiv: 8, Seed: 1,
			Experiments: []ExperimentRuns{{
				Name: "table1",
				Runs: []EngineRun{{Engine: "batch", Kernels: kernels, Workers: 1,
					ColdWallNanos: cold, Answer: 10}},
			}},
		}
	}
	// Different kernels flags never match, so a huge slowdown is skipped.
	regs, err := FindRegressions(mk(true, 1_000_000), mk(false, 9_000_000), 1.25)
	if err != nil || len(regs) != 0 {
		t.Errorf("kernels-flag mismatch: regs=%v err=%v", regs, err)
	}
	// Same flag matches and gates.
	regs, err = FindRegressions(mk(true, 1_000_000), mk(true, 9_000_000), 1.25)
	if err != nil || len(regs) != 1 {
		t.Fatalf("kernels-flag match: regs=%v err=%v", regs, err)
	}
	if !strings.Contains(regs[0].String(), "batch kernels workers=1") {
		t.Errorf("String = %q", regs[0].String())
	}
}

func TestLoadBaseline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(path, []byte(`{"scalediv":8,"seed":1,"experiments":[{"name":"table1","runs":[{"engine":"batch","workers":1,"cold_wall_ns":5,"answer_rows":2}]}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ScaleDiv != 8 || len(rep.Experiments) != 1 || rep.Experiments[0].Runs[0].Answer != 2 {
		t.Errorf("loaded %+v", rep)
	}
	if _, err := LoadBaseline(filepath.Join(dir, "absent.json")); err == nil {
		t.Errorf("missing file: want error")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if _, err := LoadBaseline(bad); err == nil {
		t.Errorf("bad json: want error")
	}
	// The committed baseline at the repository root stays loadable.
	rep, err = LoadBaseline("../../BENCH_9.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Experiments) == 0 || rep.Experiments[0].Name != "table1" {
		t.Errorf("committed baseline: %+v", rep)
	}
}
