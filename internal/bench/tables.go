package bench

import (
	"fmt"
	"strings"
	"time"
)

// Table is a regenerated experiment: a title, column headers, and rows of
// rendered cells. Paper reference values are embedded next to measured
// ones so the shape comparison is immediate.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	b.WriteString(t.Title + "\n")
	if t.Note != "" {
		b.WriteString(t.Note + "\n")
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	for i := range widths {
		b.WriteString(strings.Repeat("-", widths[i]))
		if i < len(widths)-1 {
			b.WriteString("--")
		}
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

func secs(d time.Duration) string {
	return fmt.Sprintf("%.2fs", d.Seconds())
}

func speedup(nl, mj Measurement) string {
	if mj.Response() == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", float64(nl.Response())/float64(mj.Response()))
}

// paperTable1 holds the published rows of Table 1 ("—" where the nested
// loop took too long to terminate).
var paperTable1 = []struct {
	mb             int
	tuples         int
	nested, merged string
	speedup        string
}{
	{1, 8000, "501", "40", "12.5"},
	{2, 16000, "1965", "84", "23.4"},
	{4, 32000, "7754", "223", "34.8"},
	{8, 64000, "30879", "852", "36.2"},
	{16, 128000, "-", "1897", "-"},
	{32, 256000, "-", "3733", "-"},
}

// Table1 regenerates Table 1: response time vs relation size, both
// relations n × 128-byte tuples, C = 7.
func Table1(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title: "Table 1: response time of the nested-loop and merge-join methods (both relations n tuples, 128 B, C = 7)",
		Note: fmt.Sprintf("paper columns: SPARC/IPC seconds; measured columns: modeled response = compute + IOs x %v, at 1/%d scale",
			cfg.IOLatency, cfg.ScaleDiv),
		Header: []string{"size", "tuples", "paper NL", "paper MJ", "paper speedup",
			"NL response", "MJ response", "speedup", "NL IOs", "MJ IOs"},
	}
	for _, row := range paperTable1 {
		n := cfg.scale(row.tuples)
		nl, mj, err := cfg.MeasurePair(n, n)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dMB", row.mb), fmt.Sprintf("%d", n),
			row.nested, row.merged, row.speedup,
			secs(nl.Response()), secs(mj.Response()), speedup(nl, mj),
			fmt.Sprintf("%d", nl.IOs), fmt.Sprintf("%d", mj.IOs),
		})
	}
	return t, nil
}

// paperTable2 holds the published rows of Table 2 (outer fixed at 4 MB).
var paperTable2 = []struct {
	innerMB        int
	innerTuples    int
	nested, merged string
	speedup        string
}{
	{2, 16000, "3912", "156", "25.1"},
	{4, 32000, "7790", "205", "38"},
	{8, 64000, "15489", "476", "32.5"},
	{16, 128000, "31049", "2152", "14.4"},
}

const table2OuterTuples = 32000 // 4 MB of 128-byte tuples

// Table2 regenerates Table 2: response time while the inner relation
// grows from 2 to 16 MB with the outer fixed at 4 MB.
func Table2(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title: "Table 2: response time while the inner relation size changes (outer fixed 4 MB, 128 B tuples, C = 7)",
		Note:  fmt.Sprintf("measured at 1/%d scale with %v simulated I/O latency", cfg.ScaleDiv, cfg.IOLatency),
		Header: []string{"inner", "tuples", "paper NL", "paper MJ", "paper speedup",
			"NL response", "MJ response", "speedup"},
	}
	nOuter := cfg.scale(table2OuterTuples)
	for _, row := range paperTable2 {
		n := cfg.scale(row.innerTuples)
		nl, mj, err := cfg.MeasurePair(nOuter, n)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dMB", row.innerMB), fmt.Sprintf("%d", n),
			row.nested, row.merged, row.speedup,
			secs(nl.Response()), secs(mj.Response()), speedup(nl, mj),
		})
	}
	return t, nil
}

// paperTable3 holds the published Table 3 rows (merge-join breakdown on
// the Table 2 runs).
var paperTable3 = []struct {
	innerMB     int
	innerTuples int
	cpuPct      string
	sortPct     string
}{
	{2, 16000, "76", "38.7"},
	{4, 32000, "63", "52.5"},
	{8, 64000, "51", "61.9"},
	{16, 128000, "24", "84.1"},
}

// Table3 regenerates Table 3: the merge-join time breakdown (CPU share of
// the response, and sorting share of the response) over the Table 2
// configurations.
func Table3(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title: "Table 3: time breakdown of the merge-join method (Table 2 configurations)",
		Note:  fmt.Sprintf("measured at 1/%d scale with %v simulated I/O latency", cfg.ScaleDiv, cfg.IOLatency),
		Header: []string{"inner", "tuples", "paper CPU %", "paper sort %",
			"CPU %", "sort %"},
	}
	nOuter := cfg.scale(table2OuterTuples)
	for _, row := range paperTable3 {
		n := cfg.scale(row.innerTuples)
		mj, err := cfg.MeasureOne(MergeJoin, nOuter, n)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dMB", row.innerMB), fmt.Sprintf("%d", n),
			row.cpuPct, row.sortPct,
			fmt.Sprintf("%.0f", mj.CPUFraction()*100),
			fmt.Sprintf("%.1f", mj.SortFraction()*100),
		})
	}
	return t, nil
}

// paperTable4 holds the published Table 4 rows (tuple-size sweep).
var paperTable4 = []struct {
	tupleBytes     int
	nested, merged string
}{
	{128, "485", "20"},
	{256, "514", "37"},
	{512, "584", "94"},
	{1024, "729", "487"},
	{2048, "1077", "896"},
}

const table4Tuples = 8000

// Table4 regenerates Table 4: response time while the tuple size grows
// from 128 to 2048 bytes, with 8 000 tuples per relation and C = 1.
func Table4(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	cfg.Fanout = 1
	t := &Table{
		Title: "Table 4: response time while the tuple size changes (8 000 tuples each at paper scale, C = 1)",
		Note:  fmt.Sprintf("measured at 1/%d scale with %v simulated I/O latency", cfg.ScaleDiv, cfg.IOLatency),
		Header: []string{"tuple size", "paper NL", "paper MJ",
			"NL response", "MJ response", "NL IOs", "MJ IOs"},
	}
	n := cfg.scale(table4Tuples)
	for _, row := range paperTable4 {
		c := cfg
		c.TupleBytes = row.tupleBytes
		nl, mj, err := c.MeasurePair(n, n)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dB", row.tupleBytes), row.nested, row.merged,
			secs(nl.Response()), secs(mj.Response()),
			fmt.Sprintf("%d", nl.IOs), fmt.Sprintf("%d", mj.IOs),
		})
	}
	return t, nil
}

// fig3Fanouts are the C values of Fig. 3's x axis.
var fig3Fanouts = []int{1, 2, 4, 8, 16, 32, 64, 128}

const fig3Tuples = 64000 // 8 MB of 128-byte tuples per relation

// Fig3 regenerates Fig. 3: the merge-join's response time, CPU time and
// number of I/Os as the average join fanout C grows from 1 to 128 with
// both relations fixed at 8 MB. The paper's qualitative finding: the I/O
// count stays near-constant while CPU time grows with C.
func Fig3(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Fig. 3: merge-join response time, CPU time and number of I/Os vs join fanout C (both relations 8 MB at paper scale)",
		Note:   fmt.Sprintf("measured at 1/%d scale with %v simulated I/O latency; paper shape: IOs flat, CPU and response rising with C", cfg.ScaleDiv, cfg.IOLatency),
		Header: []string{"C", "response", "CPU time", "IOs", "degree evals"},
	}
	n := cfg.scale(fig3Tuples)
	for _, c := range fig3Fanouts {
		conf := cfg
		conf.Fanout = c
		mj, err := conf.MeasureOne(MergeJoin, n, n)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", c),
			secs(mj.Response()), secs(mj.CPU()),
			fmt.Sprintf("%d", mj.IOs),
			fmt.Sprintf("%d", mj.DegreeEvals),
		})
	}
	return t, nil
}

// Experiments maps experiment names to their runners.
var Experiments = map[string]func(Config) (*Table, error){
	"table1": Table1,
	"table2": Table2,
	"table3": Table3,
	"table4": Table4,
	"fig3":   Fig3,
}

// Names lists the experiment names in presentation order.
var Names = []string{"table1", "table2", "table3", "table4", "fig3"}
