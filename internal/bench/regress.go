package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// Regression is one run of the comparison grid whose cold wall time grew
// past the allowed ratio over the committed baseline.
type Regression struct {
	Experiment string
	Engine     string
	Kernels    bool
	Workers    int
	Indexed    bool
	Baseline   int64 // baseline cold wall, nanoseconds
	Current    int64 // current cold wall, nanoseconds
	Ratio      float64
}

// String renders the regression for CI logs.
func (r Regression) String() string {
	idx := ""
	if r.Indexed {
		idx = " indexed"
	}
	k := ""
	if r.Kernels {
		k = " kernels"
	}
	return fmt.Sprintf("%s %s%s workers=%d%s: cold wall %.2fms -> %.2fms (%.2fx)",
		r.Experiment, r.Engine, k, r.Workers, idx,
		float64(r.Baseline)/1e6, float64(r.Current)/1e6, r.Ratio)
}

// LoadBaseline reads a committed BenchReport (BENCH_N.json).
func LoadBaseline(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: baseline: %w", err)
	}
	var rep BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("bench: baseline %s: %w", path, err)
	}
	return &rep, nil
}

// FindRegressions compares current against baseline run by run (matched on
// experiment name, engine, kernels flag, and worker count) and returns every run whose
// cold wall time exceeds baseline*maxRatio. Runs present on only one side
// are skipped — the grids may legitimately differ across revisions — but a
// differing answer cardinality on a matched run is a hard error: that is a
// correctness change masquerading as a performance number.
func FindRegressions(baseline, current *BenchReport, maxRatio float64) ([]Regression, error) {
	if maxRatio <= 1 {
		return nil, fmt.Errorf("bench: max ratio %g must exceed 1", maxRatio)
	}
	if baseline.ScaleDiv != current.ScaleDiv || baseline.Seed != current.Seed {
		return nil, fmt.Errorf("bench: baseline (scalediv %d, seed %d) and current (scalediv %d, seed %d) measure different workloads",
			baseline.ScaleDiv, baseline.Seed, current.ScaleDiv, current.Seed)
	}
	type key struct {
		exp, engine string
		kernels     bool
		workers     int
		indexed     bool
	}
	base := make(map[key]EngineRun)
	for _, ex := range baseline.Experiments {
		for _, run := range ex.Runs {
			base[key{ex.Name, run.Engine, run.Kernels, run.Workers, run.Indexed}] = run
		}
	}
	var regs []Regression
	for _, ex := range current.Experiments {
		for _, run := range ex.Runs {
			b, ok := base[key{ex.Name, run.Engine, run.Kernels, run.Workers, run.Indexed}]
			if !ok {
				continue
			}
			if b.Answer != run.Answer {
				return nil, fmt.Errorf("bench: %s %s kernels=%v workers=%d indexed=%v: answer changed from %d to %d rows",
					ex.Name, run.Engine, run.Kernels, run.Workers, run.Indexed, b.Answer, run.Answer)
			}
			if b.ColdWallNanos <= 0 {
				continue
			}
			ratio := float64(run.ColdWallNanos) / float64(b.ColdWallNanos)
			if ratio > maxRatio {
				regs = append(regs, Regression{
					Experiment: ex.Name,
					Engine:     run.Engine,
					Kernels:    run.Kernels,
					Workers:    run.Workers,
					Indexed:    run.Indexed,
					Baseline:   b.ColdWallNanos,
					Current:    run.ColdWallNanos,
					Ratio:      ratio,
				})
			}
		}
	}
	return regs, nil
}
