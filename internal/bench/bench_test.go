package bench

import (
	"strings"
	"testing"
	"time"
)

// tinyConfig keeps the harness tests fast: very small relations, verified
// answers.
func tinyConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Dir:      t.TempDir(),
		ScaleDiv: 256, // paper's 8k tuples -> 50 (the floor)
		Verify:   true,
	}
}

func TestMeasurePairShape(t *testing.T) {
	cfg := tinyConfig(t)
	nl, mj, err := cfg.MeasurePair(100, 400)
	if err != nil {
		t.Fatal(err)
	}
	if nl.Answer != mj.Answer {
		t.Errorf("answers differ: %d vs %d", nl.Answer, mj.Answer)
	}
	if nl.DegreeEvals <= mj.DegreeEvals {
		t.Errorf("nested loop should evaluate more degrees: %d vs %d", nl.DegreeEvals, mj.DegreeEvals)
	}
	if mj.SortWall <= 0 {
		t.Errorf("merge-join should report sorting time")
	}
	if nl.SortWall != 0 {
		t.Errorf("nested loop should not sort, got %v", nl.SortWall)
	}
}

func TestMeasurementModel(t *testing.T) {
	m := Measurement{Wall: time.Second, IOs: 100, IOLatency: 10 * time.Millisecond,
		SortWall: 500 * time.Millisecond, SortIOs: 50}
	if got := m.Response(); got != 2*time.Second {
		t.Errorf("Response = %v, want 2s", got)
	}
	if got := m.CPUFraction(); got != 0.5 {
		t.Errorf("CPUFraction = %g, want 0.5", got)
	}
	if got := m.SortFraction(); got != 0.5 {
		t.Errorf("SortFraction = %g, want 0.5", got)
	}
	var zero Measurement
	if zero.CPUFraction() != 0 || zero.SortFraction() != 0 {
		t.Errorf("zero measurement fractions should be 0")
	}
}

func TestMethodString(t *testing.T) {
	if NestedLoop.String() != "nested-loop" || MergeJoin.String() != "merge-join" {
		t.Errorf("method names wrong")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.ScaleDiv != 32 || c.Fanout != 7 || c.TupleBytes != 128 || c.IOLatency != 10*time.Millisecond {
		t.Errorf("defaults = %+v", c)
	}
	if got := c.scale(8000); got != 250 {
		t.Errorf("scale(8000) = %d", got)
	}
	if got := c.scale(100); got != 50 {
		t.Errorf("scale floor = %d", got)
	}
	if got := c.bufferPages(); got != 8 {
		t.Errorf("bufferPages = %d", got)
	}
	big := Config{ScaleDiv: 1000}.withDefaults()
	if got := big.bufferPages(); got != 4 {
		t.Errorf("bufferPages floor = %d", got)
	}
}

// TestTablesRunTiny executes every experiment at minimal scale and checks
// the rendered output contains the paper's reference numbers.
func TestTablesRunTiny(t *testing.T) {
	cfg := tinyConfig(t)
	for _, name := range Names {
		name := name
		t.Run(name, func(t *testing.T) {
			tbl, err := Experiments[name](cfg)
			if err != nil {
				t.Fatal(err)
			}
			out := tbl.Render()
			if len(tbl.Rows) == 0 {
				t.Fatalf("no rows")
			}
			switch name {
			case "table1":
				if !strings.Contains(out, "30879") {
					t.Errorf("missing paper reference value:\n%s", out)
				}
			case "table3":
				if !strings.Contains(out, "84.1") {
					t.Errorf("missing paper reference value:\n%s", out)
				}
			case "fig3":
				if len(tbl.Rows) != len(fig3Fanouts) {
					t.Errorf("rows = %d", len(tbl.Rows))
				}
			}
		})
	}
}

// TestSpeedupShape: at a modest scale the merge-join must beat the nested
// loop on the modeled response time, and the gap must grow with size —
// the headline shape of Table 1.
func TestSpeedupShape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test is moderately expensive")
	}
	cfg := Config{Dir: t.TempDir(), ScaleDiv: 64, Verify: true}
	small := 400
	large := 1600
	nlS, mjS, err := cfg.MeasurePair(small, small)
	if err != nil {
		t.Fatal(err)
	}
	nlL, mjL, err := cfg.MeasurePair(large, large)
	if err != nil {
		t.Fatal(err)
	}
	spSmall := float64(nlS.Response()) / float64(mjS.Response())
	spLarge := float64(nlL.Response()) / float64(mjL.Response())
	if spSmall <= 1 {
		t.Errorf("small speedup = %.2f, want > 1", spSmall)
	}
	if spLarge <= spSmall {
		t.Errorf("speedup should grow with size: %.2f (n=%d) vs %.2f (n=%d)", spSmall, small, spLarge, large)
	}
}
