package core

import (
	"errors"

	"repro/internal/storage"
)

// Snapshot reads (MVCC-lite). Heap files are append-only, so a consistent
// committed database state is fully described by one committed tuple
// count per relation, captured as an atomic cut under the storage
// manager's commit-publication lock. A read-only statement — or every
// statement of an explicit transaction — evaluates against such a cut:
// its heap scans are bounded to the snapshot's counts, so it never sees a
// torn transaction, never blocks behind the writer, and never observes a
// rollback. Relations the transaction itself has written are flipped to
// "live" visibility: the writer serializes against other writers (and
// validated its snapshot at first write), so live = snapshot + own
// writes.

// ErrTxnConflict reports a write-write transaction conflict: the relation
// was modified by a committed transaction after this transaction's
// snapshot was taken. The failed transaction is rolled back; the public
// API maps the error to a typed code so clients can retry.
var ErrTxnConflict = errors.New("transaction conflict")

// Snapshot is one consistent committed cut of the database's heap
// relations, plus the set of relations whose visibility has been upgraded
// to live (relations written by the owning transaction).
type Snapshot struct {
	heaps map[*storage.HeapFile]storage.HeapSnap
	live  map[*storage.HeapFile]bool
}

// takeSnapshot captures a fresh committed cut, or nil when the
// environment has no write-ahead-logged storage (in-memory environments
// and NoWAL ablation runs read live, as before — their writes are
// serialized against readers by the caller).
func (e *Env) takeSnapshot() *Snapshot {
	if e.cat == nil {
		return nil
	}
	m := e.cat.Manager().Snapshot()
	if m == nil {
		return nil
	}
	return &Snapshot{heaps: m}
}

// Lookup returns h's visibility horizon inside the snapshot.
func (s *Snapshot) Lookup(h *storage.HeapFile) (storage.HeapSnap, bool) {
	sn, ok := s.heaps[h]
	return sn, ok
}

// Live reports whether h's visibility was upgraded to live (the owning
// transaction wrote it).
func (s *Snapshot) Live(h *storage.HeapFile) bool { return s.live[h] }

// SetLive upgrades h to live visibility.
func (s *Snapshot) SetLive(h *storage.HeapFile) {
	if s.live == nil {
		s.live = make(map[*storage.HeapFile]bool)
	}
	s.live[h] = true
}

// setSnapshot installs snap as the environment's read visibility for the
// duration of one evaluation and returns the restore function for the
// caller to defer. A nil snap means live reads.
func (e *Env) setSnapshot(snap *Snapshot) func() {
	prev := e.snap
	e.snap = snap
	return func() { e.snap = prev }
}

// heapVersion returns the version of h the current evaluation sees: the
// snapshot's committed version under snapshot visibility, the live
// mutation counter otherwise. Sort-cache entries are keyed and validated
// by this, so an entry built from a bounded snapshot scan is only ever
// served to readers of that same committed state.
func (e *Env) heapVersion(h *storage.HeapFile) uint64 {
	if e.snap != nil && !e.snap.Live(h) {
		if sn, ok := e.snap.Lookup(h); ok {
			return sn.Version
		}
	}
	return h.Version()
}
