package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/frel"
	"repro/internal/fsql"
)

// cacheRel builds a small relation with the R(K, A, B) shape the analyze
// query joins on.
func cacheRel(name string, n int, seed int64) *frel.Relation {
	rng := rand.New(rand.NewSource(seed))
	r := frel.NewRelation(frel.NewSchema(name,
		frel.Attribute{Name: "K", Kind: frel.KindNumber},
		frel.Attribute{Name: "A", Kind: frel.KindNumber},
		frel.Attribute{Name: "B", Kind: frel.KindNumber}))
	for i := 0; i < n; i++ {
		r.Append(frel.NewTuple(1,
			frel.Crisp(float64(i)),
			frel.Crisp(float64(rng.Intn(20))),
			frel.Crisp(float64(rng.Intn(20)))))
	}
	return r
}

// freshAnswer evaluates q on a brand-new environment over clones of the
// given relations — the ground truth a cached evaluation must match.
func freshAnswer(t *testing.T, q *fsql.Select, r, s *frel.Relation) *frel.Relation {
	t.Helper()
	env := NewMemEnv()
	env.RegisterRelation("R", r.Clone())
	env.RegisterRelation("S", s.Clone())
	rel, err := env.EvalUnnested(q)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

// TestSortCacheRepeatedQueryHits is the headline property: re-running a
// query on unmodified relations re-sorts nothing — the EXPLAIN ANALYZE
// sort nodes report cache hits with zero comparisons and zero runs.
func TestSortCacheRepeatedQueryHits(t *testing.T) {
	env := analyzeEnv(t, 400, 1)
	q, err := fsql.ParseQuery(analyzeQuery)
	if err != nil {
		t.Fatal(err)
	}
	first, es1, err := env.EvalUnnestedAnalyze(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if hits := env.Counters.SortCacheHits.Load(); hits != 0 {
		t.Fatalf("first run reported %d cache hits, want 0", hits)
	}
	misses := env.Counters.SortCacheMisses.Load()
	if misses == 0 {
		t.Fatal("first run stored no sort orders")
	}

	second, es2, err := env.EvalUnnestedAnalyze(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Equal(second, 1e-9) {
		t.Fatalf("cached evaluation changed the answer:\nfirst:\n%v\nsecond:\n%v", first, second)
	}
	if got := env.Counters.SortCacheMisses.Load(); got != misses {
		t.Fatalf("second run missed the cache: misses %d -> %d", misses, got)
	}
	if hits := env.Counters.SortCacheHits.Load(); hits != misses {
		t.Fatalf("second run hits = %d, want one per first-run miss (%d)", hits, misses)
	}
	// The second run's sort nodes must show a hit and no sorting work.
	snap := es2.Plan()
	sortNode := snap.Find("sort")
	if sortNode == nil {
		t.Fatalf("no sort node in:\n%s", snap.Render())
	}
	if sortNode.CacheHits != 1 {
		t.Fatalf("sort node CacheHits = %d, want 1:\n%s", sortNode.CacheHits, snap.Render())
	}
	if sortNode.Comparisons != 0 || sortNode.SortRuns != 0 || sortNode.SpillBytes != 0 {
		t.Fatalf("cached sort still did work: %+v", sortNode)
	}
	// And the first run's were misses that did sort.
	if n := es1.Plan().Find("sort"); n.CacheMisses != 1 || n.SortRuns == 0 {
		t.Fatalf("first-run sort node not a building miss: %+v", n)
	}
}

// TestSortCacheAppendInvalidates checks the version-counter contract for
// in-memory relations: INSERT-style appends between queries invalidate
// the cached order and the re-run sees the new tuples.
func TestSortCacheAppendInvalidates(t *testing.T) {
	q, err := fsql.ParseQuery(analyzeQuery)
	if err != nil {
		t.Fatal(err)
	}
	r, s := cacheRel("R", 60, 1), cacheRel("S", 60, 2)
	env := NewMemEnv()
	env.RegisterRelation("R", r)
	env.RegisterRelation("S", s)
	if _, err := env.EvalUnnested(q); err != nil {
		t.Fatal(err)
	}
	if _, err := env.EvalUnnested(q); err != nil {
		t.Fatal(err)
	}
	hits := env.Counters.SortCacheHits.Load()
	if hits == 0 {
		t.Fatal("repeat query did not hit the cache")
	}
	misses := env.Counters.SortCacheMisses.Load()

	// Mutate S: every S.B joins after this append.
	s.Append(frel.NewTuple(1, frel.Crisp(999), frel.Crisp(5), frel.Crisp(5)))
	got, err := env.EvalUnnested(q)
	if err != nil {
		t.Fatal(err)
	}
	if env.Counters.SortCacheMisses.Load() == misses {
		t.Fatal("append did not invalidate the cached order for S")
	}
	if want := freshAnswer(t, q, r, s); !got.Equal(want, 1e-9) {
		t.Fatalf("stale answer after append:\ngot:\n%v\nwant:\n%v", got, want)
	}
}

// TestSortCacheThresholdInvalidates checks that in-place Threshold
// pruning bumps the version and refreshes the cached order.
func TestSortCacheThresholdInvalidates(t *testing.T) {
	q, err := fsql.ParseQuery(analyzeQuery)
	if err != nil {
		t.Fatal(err)
	}
	r, s := cacheRel("R", 60, 3), cacheRel("S", 60, 4)
	for i := range s.Tuples {
		if i%2 == 1 {
			s.Tuples[i].D = 0.3
		}
	}
	s.Bump()
	env := NewMemEnv()
	env.RegisterRelation("R", r)
	env.RegisterRelation("S", s)
	if _, err := env.EvalUnnested(q); err != nil {
		t.Fatal(err)
	}
	misses := env.Counters.SortCacheMisses.Load()

	s.Threshold(0.5) // drops the D = 0.3 half
	got, err := env.EvalUnnested(q)
	if err != nil {
		t.Fatal(err)
	}
	if env.Counters.SortCacheMisses.Load() == misses {
		t.Fatal("Threshold did not invalidate the cached order for S")
	}
	if want := freshAnswer(t, q, r, s); !got.Equal(want, 1e-9) {
		t.Fatalf("stale answer after Threshold:\ngot:\n%v\nwant:\n%v", got, want)
	}
}

// TestSortCacheAliasSelfJoin exercises the alias-wrapper memo: a self-join
// through a FROM alias must reuse one stable wrapper per (name, alias)
// pair so its sorted orders cache across runs, and an append to the base
// relation must refresh the wrapper and defeat the cache.
func TestSortCacheAliasSelfJoin(t *testing.T) {
	const aliasQuery = `SELECT R.K FROM R WHERE R.B IN (SELECT T.B FROM R T WHERE T.A = R.A)`
	q, err := fsql.ParseQuery(aliasQuery)
	if err != nil {
		t.Fatal(err)
	}
	r := cacheRel("R", 60, 7)
	env := NewMemEnv()
	env.RegisterRelation("R", r)
	first, err := env.EvalUnnested(q)
	if err != nil {
		t.Fatal(err)
	}
	// Every tuple satisfies the self-membership, so the answer is R itself.
	if first.Len() != r.Len() {
		t.Fatalf("self-join answer has %d tuples, want %d", first.Len(), r.Len())
	}
	misses := env.Counters.SortCacheMisses.Load()
	second, err := env.EvalUnnested(q)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Equal(second, 1e-9) {
		t.Fatal("aliased repeat run changed the answer")
	}
	if env.Counters.SortCacheHits.Load() == 0 {
		t.Fatal("aliased repeat run did not hit the cache")
	}
	if got := env.Counters.SortCacheMisses.Load(); got != misses {
		t.Fatalf("aliased repeat run missed the cache: misses %d -> %d", misses, got)
	}

	r.Append(frel.NewTuple(1, frel.Crisp(999), frel.Crisp(3), frel.Crisp(3)))
	got, err := env.EvalUnnested(q)
	if err != nil {
		t.Fatal(err)
	}
	if env.Counters.SortCacheMisses.Load() == misses {
		t.Fatal("append did not invalidate the aliased orders")
	}
	if got.Len() != r.Len() {
		t.Fatalf("answer after append has %d tuples, want %d", got.Len(), r.Len())
	}
}

// TestSortCacheSessionInsertAndDelete drives invalidation through the
// statement layer on a disk-backed session: INSERT appends to the heap
// file (version bump), DELETE rewrites the relation through the catalog
// (fresh heap-file identity). Both must defeat the cache.
func TestSortCacheSessionInsertAndDelete(t *testing.T) {
	sess, err := OpenSession(t.TempDir(), 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ExecScript(`
		CREATE TABLE R (K NUMBER, A NUMBER, B NUMBER);
		CREATE TABLE S (K NUMBER, A NUMBER, B NUMBER);
		INSERT INTO R VALUES (1, 1, 10);
		INSERT INTO R VALUES (2, 2, 20);
		INSERT INTO R VALUES (3, 3, 30);
		INSERT INTO S VALUES (1, 1, 10);
		INSERT INTO S VALUES (2, 2, 25);
	`); err != nil {
		t.Fatal(err)
	}
	query := func() *frel.Relation {
		t.Helper()
		answers, err := sess.ExecScript(analyzeQuery)
		if err != nil {
			t.Fatal(err)
		}
		return answers[0]
	}
	if got := query(); got.Len() != 1 {
		t.Fatalf("seed answer = %v", got.Tuples)
	}
	query()
	if sess.Env.Counters.SortCacheHits.Load() == 0 {
		t.Fatal("repeat query did not hit the cache")
	}

	// INSERT a matching S row: R.K = 2 now joins.
	if _, err := sess.ExecScript(`INSERT INTO S VALUES (9, 2, 20)`); err != nil {
		t.Fatal(err)
	}
	if got := query(); got.Len() != 2 {
		t.Fatalf("answer after INSERT = %v, want R.K 1 and 2", got.Tuples)
	}

	// DELETE it again: the catalog swaps in a rewritten heap file.
	if _, err := sess.ExecScript(`DELETE FROM S WHERE S.K = 9`); err != nil {
		t.Fatal(err)
	}
	if got := query(); got.Len() != 1 {
		t.Fatalf("answer after DELETE = %v, want only R.K 1", got.Tuples)
	}
}

// TestSortCacheCatalogReload reopens a database directory and checks the
// new session sees the stored data (a reload starts with a cold cache and
// fresh heap-file identities).
func TestSortCacheCatalogReload(t *testing.T) {
	dir := t.TempDir()
	sess, err := OpenSession(dir, 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ExecScript(`
		CREATE TABLE R (K NUMBER, A NUMBER, B NUMBER);
		CREATE TABLE S (K NUMBER, A NUMBER, B NUMBER);
		INSERT INTO R VALUES (1, 1, 10);
		INSERT INTO S VALUES (1, 1, 10);
	`); err != nil {
		t.Fatal(err)
	}
	if answers, err := sess.ExecScript(analyzeQuery); err != nil || answers[0].Len() != 1 {
		t.Fatalf("answers=%v err=%v", answers, err)
	}

	reopened, err := OpenSession(dir, 32)
	if err != nil {
		t.Fatal(err)
	}
	if hits := reopened.Env.Counters.SortCacheHits.Load(); hits != 0 {
		t.Fatalf("reopened session starts with %d cache hits", hits)
	}
	answers, err := reopened.ExecScript(analyzeQuery)
	if err != nil {
		t.Fatal(err)
	}
	if answers[0].Len() != 1 {
		t.Fatalf("reloaded answer = %v", answers[0].Tuples)
	}
	if reopened.Env.Counters.SortCacheMisses.Load() == 0 {
		t.Fatal("reloaded query should rebuild (miss) its sort orders")
	}
}
