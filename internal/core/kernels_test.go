package core

import (
	"context"
	"testing"

	"repro/internal/frel"
	"repro/internal/fsql"
	"repro/internal/fuzzy"
)

// kernelTestEnv builds an in-memory environment with a relation whose
// local predicates are kernel-eligible and a linguistic term for the
// string-literal settlement path.
func kernelTestEnv(t *testing.T) *Env {
	t.Helper()
	env := NewMemEnv()
	r := frel.NewRelation(frel.NewSchema("R",
		frel.Attribute{Name: "K", Kind: frel.KindNumber},
		frel.Attribute{Name: "A", Kind: frel.KindNumber},
		frel.Attribute{Name: "B", Kind: frel.KindNumber}))
	for i := 0; i < 200; i++ {
		r.Append(frel.NewTuple(1,
			frel.Crisp(float64(i)),
			frel.Num(fuzzy.Tri(float64(i%37)-2, float64(i%37), float64(i%37)+2)),
			frel.Crisp(float64(i%11))))
	}
	env.RegisterRelation("R", r)
	s := frel.NewRelation(frel.NewSchema("S",
		frel.Attribute{Name: "K", Kind: frel.KindNumber},
		frel.Attribute{Name: "A", Kind: frel.KindNumber}))
	for i := 0; i < 150; i++ {
		s.Append(frel.NewTuple(1,
			frel.Crisp(float64(i)),
			frel.Num(fuzzy.Tri(float64(i%41)-3, float64(i%41), float64(i%41)+3))))
	}
	env.RegisterRelation("S", s)
	if err := env.DefineTerm("medium", fuzzy.Trap(10, 15, 22, 27)); err != nil {
		t.Fatal(err)
	}
	return env
}

// kernelQueries are queries whose leaves carry kernel-eligible local
// predicates (comparison, NEAR, linguistic term).
var kernelQueries = []string{
	`SELECT R.K FROM R WHERE R.A > 12 AND R.B <= 7`,
	`SELECT R.K FROM R WHERE R.A NEAR 18 WITHIN 6`,
	`SELECT R.K FROM R WHERE R.A = "medium"`,
	`SELECT R.K FROM R, S WHERE R.A = S.A AND R.B > 3`,
	`SELECT R.K FROM R WHERE R.B IN (SELECT S.K FROM S WHERE S.A = R.A)`,
}

// TestKernelCompilationMatchesInterpreted checks every kernel-eligible
// query returns the same answer with kernels on and off, and that the
// kernel legs actually ran compiled kernels.
func TestKernelCompilationMatchesInterpreted(t *testing.T) {
	for _, qs := range kernelQueries {
		q, err := fsql.ParseQuery(qs)
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		on := kernelTestEnv(t)
		got, err := on.EvalUnnested(q)
		if err != nil {
			t.Fatalf("%s: kernels on: %v", qs, err)
		}
		if on.Counters.KernelTuples.Load() == 0 {
			t.Errorf("%s: compiled kernels did not fire", qs)
		}
		off := kernelTestEnv(t)
		off.DisableKernels = true
		want, err := off.EvalUnnested(q)
		if err != nil {
			t.Fatalf("%s: kernels off: %v", qs, err)
		}
		if off.Counters.KernelTuples.Load() != 0 {
			t.Errorf("%s: kernels fired with DisableKernels set", qs)
		}
		if !got.Equal(want, 0) {
			t.Errorf("%s: answers differ at zero tolerance: %d vs %d tuples",
				qs, got.Len(), want.Len())
		}
		if on.Counters.DegreeEvals.Load() != off.Counters.DegreeEvals.Load() {
			t.Errorf("%s: DegreeEvals %d (kernels) vs %d (interpreted)",
				qs, on.Counters.DegreeEvals.Load(), off.Counters.DegreeEvals.Load())
		}
	}
}

// TestKernelFusedNodeInAnalyze checks EXPLAIN ANALYZE reports the fused
// filter chain as a kernel(fused) node with its tuple counter, and falls
// back to a plain filter node when kernels are off.
func TestKernelFusedNodeInAnalyze(t *testing.T) {
	q, err := fsql.ParseQuery(`SELECT R.K FROM R WHERE R.A > 12 AND R.B <= 7`)
	if err != nil {
		t.Fatal(err)
	}
	env := kernelTestEnv(t)
	_, es, err := env.EvalUnnestedAnalyze(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	snap := es.Plan()
	kf := snap.Find("kernel(fused)")
	if kf == nil {
		t.Fatalf("no kernel(fused) node in:\n%s", snap.Render())
	}
	if kf.KernelTuples == 0 {
		t.Fatalf("kernel(fused) node reports no kernel tuples: %+v", kf)
	}
	if snap.Find("filter") != nil {
		t.Fatalf("interpreted filter node alongside fused kernel in:\n%s", snap.Render())
	}

	off := kernelTestEnv(t)
	off.DisableKernels = true
	_, es, err = off.EvalUnnestedAnalyze(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	snap = es.Plan()
	if snap.Find("kernel(fused)") != nil {
		t.Fatalf("kernel(fused) node with kernels off in:\n%s", snap.Render())
	}
	if snap.Find("filter") == nil {
		t.Fatalf("no filter node with kernels off in:\n%s", snap.Render())
	}
}

// TestKernelIneligiblePredicates checks queries with operand forms the
// kernel cannot express (prepared-statement parameters) stay on the
// interpreted path and still answer correctly.
func TestKernelIneligibleFallback(t *testing.T) {
	env := kernelTestEnv(t)
	q, err := fsql.ParseQuery(`SELECT R.K FROM R WHERE R.A > 12`)
	if err != nil {
		t.Fatal(err)
	}
	// Force the fallback arm by marking the filter fused but making term
	// resolution fail inside the kernel bridge only is not possible from
	// the outside; instead exercise the public contract: an unknown
	// linguistic term errors identically on both paths.
	bad, err := fsql.ParseQuery(`SELECT R.K FROM R WHERE R.A = "nosuchterm"`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.EvalUnnested(bad); err == nil {
		t.Fatal("unknown term did not error with kernels on")
	}
	off := kernelTestEnv(t)
	off.DisableKernels = true
	if _, err := off.EvalUnnested(bad); err == nil {
		t.Fatal("unknown term did not error with kernels off")
	}
	if _, err := env.EvalUnnested(q); err != nil {
		t.Fatal(err)
	}
}
