package core

import (
	"time"

	"repro/internal/exec"
	"repro/internal/extsort"
	"repro/internal/frel"
	"repro/internal/storage"
)

// The sort-order cache. Every merge-join (and group-aggregate join) input
// must be sorted by the Definition 3.1 interval order, and the paper's
// workloads sort the same base relations on the same attributes query
// after query. The environment therefore caches, per (base relation,
// attribute, order), the sorted permutation together with the flat
// support-interval key column the batched merge-join window reads, and
// reuses it as long as the base relation has not been mutated.
//
// Keying and invalidation contract:
//
//   - A cache entry is keyed by the identity (pointer) of the base
//     relation — the registered *frel.Relation or the catalog's
//     *storage.HeapFile — plus the resolved attribute index and the
//     total-order flag. Alias bindings resolve to the same base, so
//     FROM R and FROM R X share entries.
//   - Each entry records the base's version counter at build time. Every
//     mutating operation (Append, SortBy, DedupMax, Threshold on
//     relations; Append on heap files) bumps the counter, so a lookup
//     whose stored version disagrees with the live one is a miss and the
//     entry is rebuilt. Catalog reloads create a new heap-file pointer,
//     which simply never matches again.
//   - Only plain scans are cacheable: the source must unwrap to the base
//     itself (no filters or joins in between), since a filtered stream's
//     sorted order is not the base relation's.
//
// Entry counts are bounded by wholesale eviction (sortCacheMaxEntries);
// sorted heap files belonging to evicted entries are dropped best-effort.

const (
	// sortCacheMaxEntries bounds each of the two entry maps; exceeding it
	// wipes the map (simple, and workloads touch few distinct orders).
	sortCacheMaxEntries = 64
	// baseMapMaxEntries bounds the bookkeeping maps that track cacheable
	// base pointers and memoized alias wrappers.
	baseMapMaxEntries = 256
)

// sortKey identifies one cached sort order: the base relation (exactly one
// of mem/heap set), the resolved attribute index, and whether the
// tie-broken total order was requested.
type sortKey struct {
	mem   *frel.Relation
	heap  *storage.HeapFile
	attr  int
	total bool
}

// memSortEntry is a cached in-memory sort: the sorted tuple slice and its
// precomputed support-interval key column.
type memSortEntry struct {
	version uint64
	tuples  []frel.Tuple
	keys    []frel.SupportKey
}

// heapSortEntry is a cached external sort: the sorted temporary heap file,
// kept (not dropped) while fresh.
type heapSortEntry struct {
	version uint64
	sorted  *storage.HeapFile
}

// aliasEntry memoizes the alias wrapper built around a registered base
// relation, so repeated FROM R X queries resolve to one stable pointer
// (the sort cache keys on the base, but the wrapper must also stay
// current with the base's tuples).
type aliasEntry struct {
	base    *frel.Relation
	wrapper *frel.Relation
	version uint64
}

// noteMemBase records that rel (possibly an alias wrapper) reads the
// registered base relation base.
func (e *Env) noteMemBase(rel, base *frel.Relation) {
	if e.memBase == nil {
		e.memBase = make(map[*frel.Relation]*frel.Relation)
	} else if len(e.memBase) >= baseMapMaxEntries {
		e.memBase = make(map[*frel.Relation]*frel.Relation)
	}
	e.memBase[rel] = base
}

// noteHeap records that h is a catalog base relation — cacheable, as
// opposed to a temporary spill file.
func (e *Env) noteHeap(h *storage.HeapFile) {
	if e.heapSeen == nil {
		e.heapSeen = make(map[*storage.HeapFile]bool)
	} else if len(e.heapSeen) >= baseMapMaxEntries {
		e.heapSeen = make(map[*storage.HeapFile]bool)
	}
	e.heapSeen[h] = true
}

// aliasRel returns the memoized alias wrapper for base under aliasKey,
// refreshing its tuple slice when the base has been mutated since the
// wrapper was built.
func (e *Env) aliasRel(nameKey, aliasKey string, base *frel.Relation) *frel.Relation {
	if e.aliasMemo == nil {
		e.aliasMemo = make(map[string]*aliasEntry)
	}
	k := nameKey + "\x00" + aliasKey
	if ent, ok := e.aliasMemo[k]; ok && ent.base == base {
		if ent.version != base.Version() {
			ent.wrapper.Tuples = base.Tuples
			ent.wrapper.Bump()
			ent.version = base.Version()
		}
		return ent.wrapper
	}
	if len(e.aliasMemo) >= baseMapMaxEntries {
		e.aliasMemo = make(map[string]*aliasEntry)
	}
	w := &frel.Relation{Schema: base.Schema.WithName(aliasKey), Tuples: base.Tuples}
	e.aliasMemo[k] = &aliasEntry{base: base, wrapper: w, version: base.Version()}
	return w
}

// cacheableBase resolves src to a cacheable base relation: a plain scan of
// a registered in-memory relation or of a catalog heap file. Exactly one
// of the returns is non-nil on success.
func (e *Env) cacheableBase(src exec.Source) (memSrc *exec.MemSource, memBase *frel.Relation, heap *storage.HeapFile) {
	switch s := exec.Unwrap(src).(type) {
	case *exec.MemSource:
		if b, ok := e.memBase[s.Rel]; ok {
			return s, b, nil
		}
	case *exec.HeapSource:
		if e.heapSeen[s.Heap] {
			return nil, nil, s.Heap
		}
	case *renameSource:
		if hs, ok := exec.Unwrap(s.Source).(*exec.HeapSource); ok && e.heapSeen[hs.Heap] {
			return nil, nil, hs.Heap
		}
	}
	return nil, nil, nil
}

// heapScanLimit returns the snapshot bound of the plain heap scan src
// resolves to (-1 when the scan is unbounded), mirroring cacheableBase's
// unwrapping. Callers pass it to SortPrefix so sorting a base heap
// directly still sees only the snapshot's committed prefix.
func heapScanLimit(src exec.Source) int64 {
	switch s := exec.Unwrap(src).(type) {
	case *exec.HeapSource:
		return s.Limit
	case *renameSource:
		if hs, ok := exec.Unwrap(s.Source).(*exec.HeapSource); ok {
			return hs.Limit
		}
	}
	return -1
}

func (e *Env) storeMemSort(k sortKey, ent *memSortEntry) {
	if e.sortMem == nil || len(e.sortMem) >= sortCacheMaxEntries {
		e.sortMem = make(map[sortKey]*memSortEntry)
	}
	e.sortMem[k] = ent
}

func (e *Env) storeHeapSort(k sortKey, ent *heapSortEntry) {
	if e.sortHeap == nil {
		e.sortHeap = make(map[sortKey]*heapSortEntry)
	}
	if old, ok := e.sortHeap[k]; ok {
		_ = old.sorted.Drop() // stale sorted copy, best-effort cleanup
	} else if len(e.sortHeap) >= sortCacheMaxEntries {
		for _, o := range e.sortHeap {
			_ = o.sorted.Drop()
		}
		e.sortHeap = make(map[sortKey]*heapSortEntry)
	}
	e.sortHeap[k] = ent
}

// memSort serves src sorted on attr through the in-memory side of the
// sort cache: a hit replays the cached permutation (with its key column)
// without re-sorting; a miss sorts a shallow copy of the base's tuples,
// computes the keys, and stores both.
func (e *Env) memSort(src exec.Source, ms *exec.MemSource, base *frel.Relation, attr string, attrIdx int, total bool, less extsort.Less) (exec.Source, error) {
	key := sortKey{mem: base, attr: attrIdx, total: total}
	if ent, ok := e.sortMem[key]; ok && ent.version == base.Version() {
		e.Counters.SortCacheHits.Add(1)
		rel := &frel.Relation{Schema: src.Schema(), Tuples: ent.tuples}
		out := exec.WithContext(e.ctx, exec.NewKeyedMemSource(rel, ent.keys))
		if node := e.newNode("sort", attr); node != nil {
			node.CacheHits.Store(1)
			out = e.attach(node, out, src)
		}
		return out, nil
	}
	tuples := append([]frel.Tuple(nil), ms.Rel.Tuples...)
	rel := &frel.Relation{Schema: src.Schema(), Tuples: tuples}
	start := time.Now()
	cmp := extsort.SortRelation(rel, less)
	elapsed := time.Since(start)
	e.Counters.Comparisons.Add(cmp)
	e.Phases.SortWall += elapsed
	keys := frel.SupportKeys(tuples, attrIdx)
	e.storeMemSort(key, &memSortEntry{version: base.Version(), tuples: tuples, keys: keys})
	e.Counters.SortCacheMisses.Add(1)
	out := exec.WithContext(e.ctx, exec.NewKeyedMemSource(rel, keys))
	if node := e.newNode("sort", attr); node != nil {
		node.Comparisons.Store(cmp)
		node.WallNanos.Store(elapsed.Nanoseconds())
		node.CacheMisses.Store(1)
		out = e.attach(node, out, src)
	}
	return out, nil
}
