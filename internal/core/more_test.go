package core

import (
	"math/rand"
	"testing"

	"repro/internal/fsql"
)

func mustParse(t *testing.T, src string) *fsql.Select {
	t.Helper()
	q, err := fsql.ParseQuery(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return q
}

// TestJANonEqualityCorrelation: the JA rewrite with a non-equality
// correlation operator takes the materialized-inner path of the
// group-aggregate join.
func TestJANonEqualityCorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		e := envRS(rng, 15, 20, 0)
		checkEquivalence(t, e, `
			SELECT R.TAG FROM R
			WHERE R.Y > (SELECT MAX(S.Z) FROM S WHERE S.V <= R.U)`,
			StrategyGroupAgg)
	}
}

// TestJAFlippedCorrelation: the correlation written outer-first
// (R.U = S.V) is normalized to S.V = R.U.
func TestJAFlippedCorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		e := envRS(rng, 15, 20, 0)
		checkEquivalence(t, e, `
			SELECT R.TAG FROM R
			WHERE R.Y < (SELECT MIN(S.Z) FROM S WHERE R.U = S.V)`,
			StrategyGroupAgg)
	}
}

// TestJALLMultipleCorrelations: an extra non-equality correlation joins
// the penalty while the equality correlation provides the merge range.
func TestJALLMultipleCorrelations(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 10; trial++ {
		e := envRS(rng, 15, 20, 0)
		checkEquivalence(t, e, `
			SELECT R.TAG FROM R
			WHERE R.Y < ALL (SELECT S.Z FROM S WHERE S.V = R.U AND S.Z >= R.U)`,
			StrategyAllAnti)
	}
}

// TestJXMultipleCorrelations: JX with two correlation predicates.
func TestJXMultipleCorrelations(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 10; trial++ {
		e := envRS(rng, 15, 20, 0)
		checkEquivalence(t, e, `
			SELECT R.TAG FROM R
			WHERE R.Y NOT IN (SELECT S.Z FROM S WHERE S.V = R.U AND S.Z < R.Y)`,
			StrategyAntiJoin)
	}
}

// TestChainMultiRelationInnerBlock: an inner block with two relations in
// its FROM clause still flattens.
func TestChainMultiRelationInnerBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 10; trial++ {
		e := envRS(rng, 12, 14, 10)
		checkEquivalence(t, e, `
			SELECT R.TAG FROM R
			WHERE R.Y IN (SELECT S.Z FROM S, T WHERE S.V = T.W AND T.P = R.U)`,
			StrategyChain)
	}
}

// TestFlatGroupByEquivalence: GROUPBY/HAVING queries agree between the
// naive cross-product path and the planned join path.
func TestFlatGroupByEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 10; trial++ {
		e := envRS(rng, 15, 20, 0)
		checkEquivalence(t, e, `
			SELECT R.TAG, COUNT(S.Z), MAX(S.Z) FROM R, S
			WHERE R.Y = S.Z
			GROUPBY R.TAG`,
			StrategyFlat)
		checkEquivalence(t, e, `
			SELECT R.TAG, SUM(S.Z) FROM R, S
			WHERE R.Y = S.Z
			GROUPBY R.TAG
			HAVING R.TAG <> 't0'`,
			StrategyFlat)
	}
}

// TestFlatCrossProduct: a flat query with no join predicate runs as a
// cross product through the nested-loop operator.
func TestFlatCrossProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 5; trial++ {
		e := envRS(rng, 8, 9, 0)
		checkEquivalence(t, e, `
			SELECT R.TAG, S.TAG FROM R, S WHERE R.U > 10`,
			StrategyFlat)
	}
}

// TestFlatNonEquiJoinOnly: a flat query whose only cross-relation
// predicate is a non-equality comparison (no merge order available).
func TestFlatNonEquiJoinOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	for trial := 0; trial < 5; trial++ {
		e := envRS(rng, 10, 12, 0)
		checkEquivalence(t, e, `
			SELECT R.TAG FROM R, S WHERE R.Y < S.Z AND S.V > 12`,
			StrategyFlat)
	}
}

// TestConstantPredicate: a predicate with no attribute references scales
// every answer degree.
func TestConstantPredicate(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	e := envRS(rng, 10, 10, 0)
	checkEquivalence(t, e, `
		SELECT R.TAG FROM R WHERE 3 < 5 AND R.U > 2`,
		StrategyFlat)
	// An unsatisfiable constant empties the answer.
	checkEquivalence(t, e, `
		SELECT R.TAG FROM R WHERE 5 < 3 AND R.U > 2`,
		StrategyFlat)
}

// TestDeepChainFourLevels: a 4-level chain through R, S, T and back into
// a fourth alias of R.
func TestDeepChainFourLevels(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for trial := 0; trial < 5; trial++ {
		e := envRS(rng, 10, 12, 10)
		e.RegisterRelation("Q", randRelation("Q", 8, rng, "M", "N"))
		checkEquivalence(t, e, `
			SELECT R.TAG FROM R
			WHERE R.Y IN
			  (SELECT S.Z FROM S WHERE S.V = R.U AND S.Z IN
			    (SELECT T.P FROM T WHERE T.W = S.V AND T.P IN
			      (SELECT Q.N FROM Q WHERE Q.M = T.W)))`,
			StrategyChain)
	}
}

// TestMultipleChainSubqueries: several chain-compatible subquery
// predicates in one WHERE flatten together.
func TestMultipleChainSubqueries(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 10; trial++ {
		e := envRS(rng, 12, 15, 12)
		checkEquivalence(t, e, `
			SELECT R.TAG FROM R
			WHERE R.Y IN (SELECT S.Z FROM S WHERE S.V = R.U)
			  AND EXISTS (SELECT T.P FROM T WHERE T.W = R.U)`,
			StrategyChain)
		checkEquivalence(t, e, `
			SELECT R.TAG FROM R
			WHERE R.Y IN (SELECT S.Z FROM S)
			  AND R.U < ANY (SELECT T.P FROM T WHERE T.W = R.Y)`,
			StrategyChain)
	}
}

// TestEmptyOuterRelation: every strategy copes with empty inputs.
func TestEmptyOuterRelation(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	e := envRS(rng, 0, 10, 0)
	for _, src := range []string{
		`SELECT R.TAG FROM R WHERE R.Y IN (SELECT S.Z FROM S WHERE S.V = R.U)`,
		`SELECT R.TAG FROM R WHERE R.Y NOT IN (SELECT S.Z FROM S WHERE S.V = R.U)`,
		`SELECT R.TAG FROM R WHERE R.Y > (SELECT MAX(S.Z) FROM S WHERE S.V = R.U)`,
		`SELECT R.TAG FROM R WHERE R.Y < ALL (SELECT S.Z FROM S WHERE S.V = R.U)`,
	} {
		q := mustParse(t, src)
		rel, err := e.EvalUnnested(q)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if rel.Len() != 0 {
			t.Errorf("%q over empty outer = %v", src, rel.Tuples)
		}
	}
}

// TestEmptyInnerRelation: the JX/JALL Case 1 (empty T(r)) and the JA
// COUNT arm against an empty inner relation.
func TestEmptyInnerRelation(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	e := envRS(rng, 10, 0, 0)
	for _, tc := range []struct {
		src  string
		want Strategy
	}{
		{`SELECT R.TAG FROM R WHERE R.Y IN (SELECT S.Z FROM S WHERE S.V = R.U)`, StrategyChain},
		{`SELECT R.TAG FROM R WHERE R.Y NOT IN (SELECT S.Z FROM S WHERE S.V = R.U)`, StrategyAntiJoin},
		{`SELECT R.TAG FROM R WHERE R.Y = (SELECT COUNT(S.Z) FROM S WHERE S.V = R.U)`, StrategyGroupAgg},
		{`SELECT R.TAG FROM R WHERE R.Y < ALL (SELECT S.Z FROM S WHERE S.V = R.U)`, StrategyAllAnti},
	} {
		checkEquivalence(t, e, tc.src, tc.want)
	}
}
