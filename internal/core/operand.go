package core

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/frel"
	"repro/internal/fsql"
	"repro/internal/fuzzy"
)

// getter extracts an operand's value from an evaluation tuple.
type getter func(frel.Tuple) frel.Value

// operandInfo is a resolved operand: where its value comes from and, when
// known, its kind. Side is 0 or 1 for the two inputs of a join predicate,
// or -1 for literals and single-input predicates.
type operandInfo struct {
	get       getter
	side      int
	kind      frel.Kind
	kindKnown bool
	// rawString is set for string literals pending linguistic-term
	// resolution (their final kind depends on the opposite operand).
	rawString string
	isRawStr  bool
	// col (for references) and constVal (for settled literals) carry the
	// kernel-consumable flat form of the operand: a column index in its
	// side's schema, or the resolved constant value.
	col      int
	constVal frel.Value
	isConst  bool
}

// resolveOperand resolves opd against the given schemas in order. String
// literals are left pending (isRawStr) until finish decides whether they
// are crisp strings or linguistic terms.
func resolveOperand(opd fsql.Operand, schemas ...*frel.Schema) (operandInfo, error) {
	switch opd.Kind {
	case fsql.OpdRef:
		for side, s := range schemas {
			if s == nil {
				continue
			}
			if i, err := s.Resolve(opd.Ref); err == nil {
				side := side
				i := i
				return operandInfo{
					get:       func(t frel.Tuple) frel.Value { return t.Values[i] },
					side:      side,
					kind:      s.Attrs[i].Kind,
					kindKnown: true,
					col:       i,
				}, nil
			}
		}
		return operandInfo{}, fmt.Errorf("core: cannot resolve attribute reference %q", opd.Ref)
	case fsql.OpdNumber:
		v := frel.Num(opd.Num)
		return operandInfo{
			get:       func(frel.Tuple) frel.Value { return v },
			side:      -1,
			kind:      frel.KindNumber,
			kindKnown: true,
			constVal:  v,
			isConst:   true,
		}, nil
	case fsql.OpdString:
		return operandInfo{side: -1, rawString: opd.Str, isRawStr: true}, nil
	case fsql.OpdParam:
		return operandInfo{}, fmt.Errorf("core: unbound parameter '?' (bind arguments through a prepared statement)")
	default:
		return operandInfo{}, fmt.Errorf("core: unknown operand kind %d", opd.Kind)
	}
}

// finishOperand resolves a pending string literal given the kind of the
// opposite operand: against a numeric attribute it must be a linguistic
// term; otherwise it is a crisp string.
func (e *Env) finishOperand(info operandInfo, otherKind frel.Kind, otherKnown bool) (operandInfo, error) {
	if !info.isRawStr {
		return info, nil
	}
	if otherKnown && otherKind == frel.KindNumber {
		t, ok := e.term(info.rawString)
		if !ok {
			return operandInfo{}, fmt.Errorf("core: %w %q (compared against a numeric attribute)", ErrUnknownTerm, info.rawString)
		}
		v := frel.Num(t)
		return operandInfo{get: func(frel.Tuple) frel.Value { return v }, side: -1, kind: frel.KindNumber, kindKnown: true, constVal: v, isConst: true}, nil
	}
	v := frel.Str(info.rawString)
	return operandInfo{get: func(frel.Tuple) frel.Value { return v }, side: -1, kind: frel.KindString, kindKnown: true, constVal: v, isConst: true}, nil
}

// resolvePair resolves both operands of a comparison, settling pending
// linguistic terms against each other's kinds.
func (e *Env) resolvePair(left, right fsql.Operand, schemas ...*frel.Schema) (l, r operandInfo, err error) {
	l, err = resolveOperand(left, schemas...)
	if err != nil {
		return operandInfo{}, operandInfo{}, err
	}
	r, err = resolveOperand(right, schemas...)
	if err != nil {
		return operandInfo{}, operandInfo{}, err
	}
	l2, err := e.finishOperand(l, r.kind, r.kindKnown)
	if err != nil {
		return operandInfo{}, operandInfo{}, err
	}
	r2, err := e.finishOperand(r, l.kind, l.kindKnown)
	if err != nil {
		return operandInfo{}, operandInfo{}, err
	}
	return l2, r2, nil
}

// compilePred compiles a PredCompare or PredNear whose operands are both
// resolvable in one schema into an exec.Pred.
func (e *Env) compilePred(schema *frel.Schema, p fsql.Predicate) (exec.Pred, error) {
	deg, err := e.pairDegreeFunc(p)
	if err != nil {
		return nil, err
	}
	l, r, err := e.resolvePair(p.Left, p.Right, schema)
	if err != nil {
		return nil, err
	}
	counters := &e.Counters
	return func(t frel.Tuple) float64 {
		counters.DegreeEvals.Add(1)
		return deg(l.get(t), r.get(t))
	}, nil
}

// pairDegreeFunc returns the value-level degree function of a comparison
// or similarity predicate.
func (e *Env) pairDegreeFunc(p fsql.Predicate) (func(a, b frel.Value) float64, error) {
	switch p.Kind {
	case fsql.PredCompare:
		op := p.Op
		return func(a, b frel.Value) float64 { return frel.Degree(op, a, b) }, nil
	case fsql.PredNear:
		tol := p.Tol
		return func(a, b frel.Value) float64 {
			if a.Kind != frel.KindNumber || b.Kind != frel.KindNumber {
				return 0
			}
			return fuzzy.ApproxEq(a.Num, b.Num, tol)
		}, nil
	default:
		return nil, fmt.Errorf("core: expected a comparison or NEAR predicate, got %v", p)
	}
}

// compileJoinPred compiles a PredCompare or PredNear across two inputs
// into an exec.JoinPred. Each operand may resolve in either input (the
// left input is tried first) or be a literal.
func (e *Env) compileJoinPred(left, right *frel.Schema, p fsql.Predicate) (exec.JoinPred, error) {
	deg, err := e.pairDegreeFunc(p)
	if err != nil {
		return nil, err
	}
	l, r, err := e.resolvePair(p.Left, p.Right, left, right)
	if err != nil {
		return nil, err
	}
	counters := &e.Counters
	pick := func(info operandInfo, lt, rt frel.Tuple) frel.Value {
		switch info.side {
		case 0:
			return info.get(lt)
		case 1:
			return info.get(rt)
		default:
			return info.get(frel.Tuple{})
		}
	}
	return func(lt, rt frel.Tuple) float64 {
		counters.DegreeEvals.Add(1)
		return deg(pick(l, lt, rt), pick(r, lt, rt))
	}, nil
}

// valueDegree computes d(v op z) between generic values.
func valueDegree(op fuzzy.Op, v, z frel.Value) float64 {
	return frel.Degree(op, v, z)
}

// setMember is one element of a fuzzy set of generic values (the
// temporary relation T(r) of the execution semantics).
type setMember struct {
	val frel.Value
	mu  float64
}

// inDegree computes d(v in T) over generic values (Section 4).
func inDegree(v frel.Value, set []setMember) float64 {
	d := 0.0
	for _, m := range set {
		if g := fuzzy.Min(m.mu, valueDegree(fuzzy.OpEq, v, m.val)); g > d {
			d = g
			if d == 1 {
				break
			}
		}
	}
	return d
}

// allDegree computes d(v op ALL T) over generic values (Section 7).
func allDegree(op fuzzy.Op, v frel.Value, set []setMember) float64 {
	worst := 0.0
	for _, m := range set {
		if g := fuzzy.Min(m.mu, 1-valueDegree(op, v, m.val)); g > worst {
			worst = g
			if worst == 1 {
				break
			}
		}
	}
	return 1 - worst
}

// anyDegree computes d(v op ANY T) over generic values.
func anyDegree(op fuzzy.Op, v frel.Value, set []setMember) float64 {
	d := 0.0
	for _, m := range set {
		if g := fuzzy.Min(m.mu, valueDegree(op, v, m.val)); g > d {
			d = g
			if d == 1 {
				break
			}
		}
	}
	return d
}
