package core

import (
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/frel"
	"repro/internal/fsql"
	"repro/internal/fuzzy"
)

// datingEnv builds the Example 4.1 database: relations F and M of the
// dating service with the paper's linguistic terms.
func datingEnv() *Env {
	e := NewMemEnv()
	for name, t := range catalog.PaperTerms() {
		if err := e.DefineTerm(name, t); err != nil {
			panic(err)
		}
	}
	terms := catalog.PaperTerms()
	schema := func(name string) *frel.Schema {
		return frel.NewSchema(name,
			frel.Attribute{Name: "ID", Kind: frel.KindNumber},
			frel.Attribute{Name: "NAME", Kind: frel.KindString},
			frel.Attribute{Name: "AGE", Kind: frel.KindNumber},
			frel.Attribute{Name: "INCOME", Kind: frel.KindNumber},
		)
	}
	f := frel.NewRelation(schema("F"))
	f.Append(
		frel.NewTuple(1, frel.Crisp(101), frel.Str("Ann"), frel.Num(terms["about 35"]), frel.Num(terms["about 60k"])),
		frel.NewTuple(1, frel.Crisp(102), frel.Str("Ann"), frel.Num(terms["medium young"]), frel.Num(terms["medium high"])),
		frel.NewTuple(1, frel.Crisp(103), frel.Str("Betty"), frel.Num(terms["middle age"]), frel.Num(terms["high"])),
		frel.NewTuple(1, frel.Crisp(104), frel.Str("Cathy"), frel.Num(terms["about 50"]), frel.Num(terms["low"])),
	)
	m := frel.NewRelation(schema("M"))
	m.Append(
		frel.NewTuple(1, frel.Crisp(201), frel.Str("Allen"), frel.Crisp(24), frel.Num(terms["about 25k"])),
		frel.NewTuple(1, frel.Crisp(202), frel.Str("Allen"), frel.Num(terms["about 50"]), frel.Num(terms["about 40k"])),
		frel.NewTuple(1, frel.Crisp(203), frel.Str("Bill"), frel.Num(terms["middle age"]), frel.Num(terms["high"])),
		frel.NewTuple(1, frel.Crisp(204), frel.Str("Carl"), frel.Num(terms["about 29"]), frel.Num(terms["medium low"])),
	)
	e.RegisterRelation("F", f)
	e.RegisterRelation("M", m)
	return e
}

const query2 = `
	SELECT F.NAME
	FROM F
	WHERE F.AGE = 'medium young' AND
	      F.INCOME IN
	      (SELECT M.INCOME
	       FROM M
	       WHERE M.AGE = 'middle age')`

// wantAnswer checks a one-string-column relation against expected
// name → degree pairs.
func wantAnswer(t *testing.T, got *frel.Relation, want map[string]float64) {
	t.Helper()
	if got.Len() != len(want) {
		t.Fatalf("answer has %d tuples, want %d: %v", got.Len(), len(want), got.Tuples)
	}
	for _, tup := range got.Tuples {
		name := tup.Values[0].Str
		w, ok := want[name]
		if !ok {
			t.Errorf("unexpected tuple %v", tup)
			continue
		}
		if math.Abs(tup.D-w) > 1e-9 {
			t.Errorf("%s degree = %g, want %g", name, tup.D, w)
		}
	}
}

// TestNaiveExample41 reproduces the paper's Example 4.1: the answer to
// Query 2 is {Ann: 0.7, Betty: 0.7}.
func TestNaiveExample41(t *testing.T) {
	e := datingEnv()
	q, err := fsql.ParseQuery(query2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.EvalNaive(q)
	if err != nil {
		t.Fatal(err)
	}
	wantAnswer(t, got, map[string]float64{"Ann": 0.7, "Betty": 0.7})
}

// TestNaiveExample41InnerBlock checks the temporary relation T of
// Example 4.1: {about 40K: 0.4, high: 1}.
func TestNaiveExample41InnerBlock(t *testing.T) {
	e := datingEnv()
	q, err := fsql.ParseQuery(`SELECT M.INCOME FROM M WHERE M.AGE = 'middle age'`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.EvalNaive(q)
	if err != nil {
		t.Fatal(err)
	}
	terms := catalog.PaperTerms()
	if got.Len() != 2 {
		t.Fatalf("T has %d tuples, want 2: %v", got.Len(), got.Tuples)
	}
	for _, tup := range got.Tuples {
		switch tup.Values[0].Num {
		case terms["about 40k"]:
			if math.Abs(tup.D-0.4) > 1e-9 {
				t.Errorf("about 40K degree = %g, want 0.4", tup.D)
			}
		case terms["high"]:
			if tup.D != 1 {
				t.Errorf("high degree = %g, want 1", tup.D)
			}
		default:
			t.Errorf("unexpected value %v", tup)
		}
	}
}

// TestNaiveQuery1 evaluates the flat Query 1 of Section 2.2 and checks the
// degree formula d = min(µF, µM, d(AGE=AGE), d(INCOME > medium high)).
func TestNaiveQuery1(t *testing.T) {
	e := datingEnv()
	q, err := fsql.ParseQuery(`
		SELECT F.NAME, M.NAME
		FROM F, M
		WHERE F.AGE = M.AGE AND M.INCOME > 'medium high'`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.EvalNaive(q)
	if err != nil {
		t.Fatal(err)
	}
	terms := catalog.PaperTerms()
	// Only Bill (INCOME high) passes INCOME > medium high with degree 1.
	// Pairs: degrees are d(F.AGE = middle age).
	want := map[string]float64{
		"Ann":   fuzzy.Eq(terms["medium young"], terms["middle age"]), // via F.102 (0.7); F.101 about35 ∩ middle age smaller? both dedup to max
		"Betty": 1,
		"Cathy": fuzzy.Eq(terms["about 50"], terms["middle age"]),
	}
	// Ann appears via both 101 (about 35) and 102 (medium young); dedup
	// keeps the max.
	if d := fuzzy.Eq(terms["about 35"], terms["middle age"]); d > want["Ann"] {
		want["Ann"] = d
	}
	if got.Len() != len(want) {
		t.Fatalf("answer = %v", got.Tuples)
	}
	for _, tup := range got.Tuples {
		name := tup.Values[0].Str
		if tup.Values[1].Str != "Bill" {
			t.Errorf("male of %v should be Bill", tup)
		}
		if math.Abs(tup.D-want[name]) > 1e-9 {
			t.Errorf("%s degree = %g, want %g", name, tup.D, want[name])
		}
	}
}

func TestNaiveWithThreshold(t *testing.T) {
	e := datingEnv()
	q, err := fsql.ParseQuery(query2 + " WITH D >= 0.71")
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.EvalNaive(q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("thresholded answer = %v, want empty", got.Tuples)
	}
}

func TestNaiveErrors(t *testing.T) {
	e := datingEnv()
	bad := []string{
		`SELECT F.NAME FROM NOPE`,
		`SELECT F.NOPE FROM F`,
		`SELECT F.NAME FROM F WHERE F.AGE = 'no such term'`,
		`SELECT F.NAME FROM F WHERE F.INCOME IN (SELECT M.INCOME, M.AGE FROM M)`,
		`SELECT F.NAME FROM F WHERE F.INCOME > (SELECT M.INCOME FROM M)`,
		`SELECT F.NAME FROM F HAVING F.NAME = 'Ann'`,
		`SELECT F.NAME, COUNT(F.ID) FROM F`,
	}
	for _, src := range bad {
		q, err := fsql.ParseQuery(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := e.EvalNaive(q); err == nil {
			t.Errorf("EvalNaive(%q): want error", src)
		}
	}
}

func TestNaiveGroupBy(t *testing.T) {
	e := datingEnv()
	q, err := fsql.ParseQuery(`SELECT F.NAME, COUNT(F.ID) FROM F GROUPBY F.NAME`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.EvalNaive(q)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"Ann": 2, "Betty": 1, "Cathy": 1}
	if got.Len() != len(want) {
		t.Fatalf("groups = %v", got.Tuples)
	}
	for _, tup := range got.Tuples {
		if c := tup.Values[1].Num.A; c != want[tup.Values[0].Str] {
			t.Errorf("COUNT(%s) = %g, want %g", tup.Values[0].Str, c, want[tup.Values[0].Str])
		}
	}
}

func TestNaiveStringIn(t *testing.T) {
	// IN over a string attribute (names), exercising generic value sets.
	e := datingEnv()
	q, err := fsql.ParseQuery(`SELECT F.ID FROM F WHERE F.NAME IN (SELECT M.NAME FROM M)`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.EvalNaive(q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("no female name matches a male name; got %v", got.Tuples)
	}
}
