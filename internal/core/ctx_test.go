package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/frel"
	"repro/internal/fsql"
)

// TestEvalContextCancelled: a cancelled context refuses evaluation up
// front, for both evaluators and for Session.ExecContext.
func TestEvalContextCancelled(t *testing.T) {
	e := NewMemEnv()
	r := frel.NewRelation(frel.NewSchema("R", frel.Attribute{Name: "X", Kind: frel.KindNumber}))
	r.Append(frel.NewTuple(1, frel.Crisp(1)))
	e.RegisterRelation("R", r)
	q, err := fsql.ParseQuery("SELECT R.X FROM R")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.EvalUnnestedContext(ctx, q); !errors.Is(err, context.Canceled) {
		t.Errorf("EvalUnnestedContext: err = %v, want context.Canceled", err)
	}
	if _, err := e.EvalNaiveContext(ctx, q); !errors.Is(err, context.Canceled) {
		t.Errorf("EvalNaiveContext: err = %v, want context.Canceled", err)
	}

	sess, err := OpenSession(t.TempDir(), 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ExecContext(ctx, q); !errors.Is(err, context.Canceled) {
		t.Errorf("ExecContext: err = %v, want context.Canceled", err)
	}
	if _, err := sess.ExecScriptContext(ctx, "SELECT R.X FROM R;"); !errors.Is(err, context.Canceled) {
		t.Errorf("ExecScriptContext: err = %v, want context.Canceled", err)
	}
}

// TestEvalContextMidQueryCancel: cancelling during evaluation surfaces the
// context error through the leaf scans (exercised with a nested query the
// naive evaluator re-scans per outer tuple).
func TestEvalContextMidQueryCancel(t *testing.T) {
	e := NewMemEnv()
	mk := func(name string, n int) *frel.Relation {
		r := frel.NewRelation(frel.NewSchema(name, frel.Attribute{Name: "X", Kind: frel.KindNumber}))
		for i := 0; i < n; i++ {
			r.Append(frel.NewTuple(1, frel.Crisp(float64(i))))
		}
		return r
	}
	e.RegisterRelation("R", mk("R", 2000))
	e.RegisterRelation("S", mk("S", 2000))
	q, err := fsql.ParseQuery("SELECT R.X FROM R WHERE R.X IN (SELECT S.X FROM S)")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Let the evaluation start, then pull the plug.
		for i := 0; i < 1000; i++ {
		}
		cancel()
	}()
	_, evalErr := e.EvalNaiveContext(ctx, q)
	<-done
	if evalErr != nil && !errors.Is(evalErr, context.Canceled) {
		t.Errorf("mid-query cancel: err = %v, want nil or context.Canceled", evalErr)
	}
}
