package core

import (
	"context"
	"testing"

	"repro/internal/fsql"
)

func mustParseQuery(t *testing.T, src string) *fsql.Select {
	t.Helper()
	q, err := fsql.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestForkTermScope checks the session → database term resolution order:
// a DEFINE TERM through a forked session lands in its private scope,
// shadows the shared definition for that fork only, and disappears when
// the fork is closed.
func TestForkTermScope(t *testing.T) {
	base, err := OpenSession(t.TempDir(), 64)
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	if _, err := base.ExecScript(`
		CREATE TABLE F (NAME STRING, AGE NUMBER);
		INSERT INTO F VALUES ('Ann', 25);
		INSERT INTO F VALUES ('Old Joe', 70);
	`); err != nil {
		t.Fatal(err)
	}

	f1 := base.Fork()
	defer f1.Close()
	f2 := base.Fork()
	defer f2.Close()

	// f1 redefines "young" privately to cover age 70.
	if _, err := f1.ExecScript(`DEFINE TERM 'young' AS TRAP(0, 0, 80, 90)`); err != nil {
		t.Fatal(err)
	}
	q := `SELECT F.NAME FROM F WHERE F.AGE = 'young'`
	count := func(s *Session) int {
		rels, err := s.ExecScript(q)
		if err != nil {
			t.Fatal(err)
		}
		return rels[0].Len()
	}
	if got := count(f1); got != 2 {
		t.Errorf("fork with private 'young': %d answers, want 2", got)
	}
	// f2 and the base still see the paper's "young" (Ann only).
	if got := count(f2); got != 1 {
		t.Errorf("sibling fork: %d answers, want 1", got)
	}
	if got := count(base); got != 1 {
		t.Errorf("base session: %d answers, want 1", got)
	}

	// A term unknown everywhere reports ErrUnknownTerm.
	if _, err := f2.ExecScript(`SELECT F.NAME FROM F WHERE F.AGE = 'no such term'`); err == nil {
		t.Error("want unknown-term error")
	}

	// A shared term defined through the base session is visible to forks
	// unless shadowed.
	if _, err := base.ExecScript(`DEFINE TERM 'ancient' AS TRAP(60, 65, 120, 120)`); err != nil {
		t.Fatal(err)
	}
	if _, err := f2.ExecScript(`SELECT F.NAME FROM F WHERE F.AGE = 'ancient'`); err != nil {
		t.Errorf("fork cannot see shared term: %v", err)
	}
}

// TestEvalPlanReuse executes one cached plan repeatedly while the base
// relation changes; re-execution must observe the new contents.
func TestEvalPlanReuse(t *testing.T) {
	sess, err := OpenSession(t.TempDir(), 64)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.ExecScript(`
		CREATE TABLE R (K NUMBER, B NUMBER);
		CREATE TABLE S (B NUMBER);
		INSERT INTO R VALUES (1, 10);
		INSERT INTO S VALUES (10);
	`); err != nil {
		t.Fatal(err)
	}
	q := mustParseQuery(t, `SELECT R.K FROM R WHERE R.B IN (SELECT S.B FROM S)`)
	p, err := sess.Env.PlanQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rel, err := sess.Env.EvalPlanContext(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 {
		t.Fatalf("first execution: %d answers, want 1", rel.Len())
	}
	if _, err := sess.ExecScript(`INSERT INTO R VALUES (2, 10)`); err != nil {
		t.Fatal(err)
	}
	rel, err = sess.Env.EvalPlanContext(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("re-execution after insert: %d answers, want 2", rel.Len())
	}
}
