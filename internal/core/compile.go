package core

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/frel"
	"repro/internal/fsql"
	"repro/internal/fuzzy"
	"repro/internal/plan"
)

// This file is the physical compilation stage of the planner: it turns a
// planned query (internal/plan) into the existing exec operators and runs
// it. The plan records every decision — join order, merge vs nested-loop
// steps, predicate assignments — so compilation replays them without
// re-deciding; only physical concerns (sources, linguistic terms, the
// sort-order cache, parallelism, EXPLAIN ANALYZE instrumentation) live
// here.

// execPlan compiles and runs a planned query.
func (e *Env) execPlan(p *plan.Plan) (*frel.Relation, error) {
	if p.Strategy == StrategyNaive {
		return e.EvalNaive(p.Query)
	}
	switch body := p.Proj().Input.(type) {
	case *plan.Join:
		return e.execJoinPlan(p, body)
	case *plan.AntiJoin:
		return e.execAntiPlan(p, body)
	case *plan.GroupAgg:
		return e.execGroupAggPlan(p, body)
	case *plan.UncorrSub:
		return e.execUncorrPlan(p, body)
	default:
		return e.EvalNaive(p.Query)
	}
}

// compileLeaf compiles a plan leaf (Scan or Filter-over-Scan) into a
// stated source.
func (e *Env) compileLeaf(nd plan.Node) (exec.Source, error) {
	switch n := nd.(type) {
	case *plan.Scan:
		s, err := e.source(n.Table)
		if err != nil {
			return nil, err
		}
		return e.stated("scan", n.Table.Binding(), s), nil
	case *plan.Filter:
		sc, ok := n.Input.(*plan.Scan)
		if !ok {
			return nil, fmt.Errorf("core: cannot compile plan filter over %T", n.Input)
		}
		s, err := e.source(sc.Table)
		if err != nil {
			return nil, err
		}
		base := e.stated("scan", sc.Table.Binding(), s)
		if n.Fused && e.kernelsOn() {
			// Specialize the whole chain into one fused kernel loop. A
			// bridge error (an operand form the kernel cannot express)
			// falls through to the interpreted chain, which re-raises any
			// genuine resolution error itself.
			if prog, kerr := e.compileKernelProgram(base.Schema(), n.Preds); kerr == nil {
				ff := exec.NewFusedFilter(base, prog, 0, &e.Counters)
				node := e.newNode("kernel(fused)", n.Label)
				ff.Stats = node
				return e.attach(node, ff, base), nil
			}
		}
		src := base
		for _, pr := range n.Preds {
			pred, err := e.compilePred(src.Schema(), pr)
			if err != nil {
				return nil, err
			}
			src = exec.NewFilter(src, pred)
		}
		return e.stated("filter", n.Label, src, base), nil
	}
	return nil, fmt.Errorf("core: cannot compile plan leaf %T", nd)
}

// execJoinPlan runs a flat join plan (strategies flat and chain-join):
// the leaves are compiled with their pushed-down filters, the recorded
// left-deep steps replayed — extended merge-join or block nested-loop as
// the cost model chose — and the answer projected with max-degree
// duplicate elimination and thresholded.
func (e *Env) execJoinPlan(p *plan.Plan, j *plan.Join) (*frel.Relation, error) {
	if j.Err != nil {
		return nil, j.Err
	}
	proj := p.Proj()
	filtered := make([]exec.Source, len(j.Inputs))
	for i, in := range j.Inputs {
		src, err := e.compileLeaf(in)
		if err != nil {
			return nil, err
		}
		filtered[i] = src
	}

	cur := filtered[j.Order[0]]
	for _, step := range j.Steps {
		next := filtered[step.Next]
		extraPreds := make([]fsql.Predicate, 0, len(step.Extras))
		for _, pi := range step.Extras {
			extraPreds = append(extraPreds, j.JoinPreds[pi].Pred)
		}
		compileExtras := func() (exec.JoinPred, error) {
			var extras []exec.JoinPred
			for _, pr := range extraPreds {
				jp, err := e.compileJoinPred(cur.Schema(), next.Schema(), pr)
				if err != nil {
					return nil, err
				}
				extras = append(extras, jp)
			}
			return andJoinPreds(extras), nil
		}

		if step.Merge {
			sortedCur, err := e.sortSource(cur, step.LeftAttr, false)
			if err != nil {
				return nil, err
			}
			sortedNext, err := e.sortSource(next, step.RightAttr, false)
			if err != nil {
				return nil, err
			}
			node := e.newNode("merge-join", step.LeftAttr+" = "+step.RightAttr)
			// Compiled path: residual conjuncts become a pair program and
			// the join runs as the morsel-scheduled kernel merge-join (one
			// morsel when serial). A bridge error falls back to the
			// interpreted operators below.
			if e.kernelsOn() && plan.KernelEligible(extraPreds) {
				if pp, kerr := e.compilePairProgram(cur.Schema(), next.Schema(), extraPreds); kerr == nil {
					kj, err := exec.NewKernelMergeJoin(sortedCur, sortedNext, step.LeftAttr, step.RightAttr, step.Tol, pp, &e.Counters, e.workers())
					if err != nil {
						return nil, err
					}
					kj.Stats = node
					cur = e.attach(node, kj, sortedCur, sortedNext)
					continue
				}
			}
			extra, err := compileExtras()
			if err != nil {
				return nil, err
			}
			if w := e.workers(); w > 1 {
				pj, err := exec.NewParallelMergeJoin(sortedCur, sortedNext, step.LeftAttr, step.RightAttr, step.Tol, extra, &e.Counters, w)
				if err != nil {
					return nil, err
				}
				pj.Stats = node
				cur = e.attach(node, pj, sortedCur, sortedNext)
			} else {
				mj, err := exec.NewBandMergeJoin(sortedCur, sortedNext, step.LeftAttr, step.RightAttr, step.Tol, extra, &e.Counters)
				if err != nil {
					return nil, err
				}
				mj.Stats = node
				cur = e.attach(node, mj, sortedCur, sortedNext)
			}
		} else {
			extra, err := compileExtras()
			if err != nil {
				return nil, err
			}
			on := extra
			if on == nil {
				on = func(l, r frel.Tuple) float64 { return 1 }
			}
			node := e.newNode("nl-join", "")
			nl := exec.NewBlockNLJoin(cur, next, on, e.NLBlockBytes, &e.Counters)
			nl.Stats = node
			cur = e.attach(node, nl, cur, next)
		}
	}

	var out exec.Source = cur
	for _, pr := range j.Const {
		pred, err := e.compilePred(cur.Schema(), pr)
		if err != nil {
			return nil, err
		}
		out = exec.NewFilter(out, pred)
	}
	if out != cur {
		out = e.stated("filter", "constant predicates", out, cur)
	}

	// Final projection / grouping.
	if hasAggItems(proj.Items) || len(proj.GroupBy) > 0 {
		rel, err := e.groupProject(proj.Items, proj.GroupBy, proj.Having, out)
		if err != nil {
			return nil, err
		}
		pruned, err := finalizeAnswer(rel, p.Root.Shape)
		if err != nil {
			return nil, err
		}
		e.notePruned(pruned)
		return rel, nil
	}
	if len(proj.Having) > 0 {
		return nil, fmt.Errorf("core: HAVING requires GROUPBY or aggregates")
	}
	return e.finishProject(out, proj.Items, p.Root.Shape)
}

// execAntiPlan runs the group-minimum anti-join of Queries JX′ and JALL′:
//
//	JX:   1 − min(µS(s), d(corr…), d(r.Y = s.Z))
//	JALL: 1 − min(µS(s), d(corr…), 1 − d(r.Y op s.Z))
//
// µS(s) and the inner block's local predicates arrive via the
// pre-filtered inner tuple degree.
func (e *Env) execAntiPlan(p *plan.Plan, a *plan.AntiJoin) (*frel.Relation, error) {
	outer, err := e.compileLeaf(a.Outer)
	if err != nil {
		return nil, err
	}
	inner, err := e.compileLeaf(a.Inner)
	if err != nil {
		return nil, err
	}
	var terms []exec.JoinPred
	for _, pr := range a.Corr {
		jp, err := e.compileJoinPred(outer.Schema(), inner.Schema(), pr)
		if err != nil {
			return nil, err
		}
		terms = append(terms, jp)
	}
	if a.HasLink {
		linkJP, err := e.compileJoinPred(outer.Schema(), inner.Schema(), a.Link)
		if err != nil {
			return nil, err
		}
		if a.Mode == plan.AntiAll {
			orig := linkJP
			linkJP = func(l, r frel.Tuple) float64 { return 1 - orig(l, r) }
		}
		terms = append(terms, linkJP)
	}
	penalty := func(l, r frel.Tuple) float64 {
		d := r.D
		for _, t := range terms {
			if g := t(l, r); g < d {
				d = g
				if d == 0 {
					break
				}
			}
		}
		return 1 - d
	}

	var result exec.Source
	if a.RangeFound {
		sortedOuter, err := e.sortSource(outer, a.RangeOuter, false)
		if err != nil {
			return nil, err
		}
		sortedInner, err := e.sortSource(inner, a.RangeInner, false)
		if err != nil {
			return nil, err
		}
		am, err := exec.NewMergeAntiMin(sortedOuter, sortedInner, a.RangeOuter, a.RangeInner, penalty, &e.Counters)
		if err != nil {
			return nil, err
		}
		node := e.newNode("merge-anti-join", a.RangeOuter+" = "+a.RangeInner)
		am.Stats = node
		result = e.attach(node, am, sortedOuter, sortedInner)
	} else {
		// No usable merge order (e.g. string attributes): unnested
		// anti-join by materializing the inner once.
		innerRel, err := e.collect(inner)
		if err != nil {
			return nil, err
		}
		node := e.newNode("nl-anti-join", "")
		nas := exec.NewNLAntiMin(outer, innerRel.Tuples, penalty, &e.Counters)
		nas.Stats = node
		result = e.attach(node, nas, outer)
	}
	return e.finishProject(result, p.Proj().Items, p.Root.Shape)
}

// execGroupAggPlan runs the pipelined group-aggregate join of Queries JA′
// and COUNT′ (Theorem 6.1).
func (e *Env) execGroupAggPlan(p *plan.Plan, g *plan.GroupAgg) (*frel.Relation, error) {
	outer, err := e.compileLeaf(g.Outer)
	if err != nil {
		return nil, err
	}
	inner, err := e.compileLeaf(g.Inner)
	if err != nil {
		return nil, err
	}
	if g.IsNear {
		inner, err = newShiftSource(inner, g.VRef, g.NearShift)
		if err != nil {
			return nil, err
		}
	}
	sortedOuter, err := e.sortSource(outer, g.URef, true)
	if err != nil {
		return nil, err
	}
	if g.Op2 == fuzzy.OpEq {
		inner, err = e.sortSource(inner, g.VRef, false)
		if err != nil {
			return nil, err
		}
	}
	ga, err := exec.NewGroupAggJoin(sortedOuter, inner, g.URef, g.VRef, g.Op2, g.ZRef, g.Agg, g.YRef, g.CmpOp, &e.Counters)
	if err != nil {
		return nil, err
	}
	node := e.newNode("group-agg-join", fmt.Sprintf("%v(%s) by %s", g.Agg, g.ZRef, g.URef))
	ga.Stats = node
	return e.finishProject(e.attach(node, ga, sortedOuter, inner), p.Proj().Items, p.Root.Shape)
}

// execUncorrPlan folds an uncorrelated aggregate subquery: the subquery
// is evaluated once, aggregated to a constant, and applied as a filter
// over the outer block (Section 6 notes no unnesting is needed).
func (e *Env) execUncorrPlan(p *plan.Plan, u *plan.UncorrSub) (*frel.Relation, error) {
	set, err := e.constantSubquerySet(u.Sub)
	if err != nil {
		return nil, err
	}
	members := make([]fuzzy.Member, 0, len(set))
	for _, m := range set {
		if m.val.Kind != frel.KindNumber && u.Agg != fuzzy.AggCount {
			return nil, fmt.Errorf("core: aggregate %v over non-numeric values", u.Agg)
		}
		members = append(members, fuzzy.Member{Value: m.val.Num, Mu: m.mu})
	}
	a, ok := fuzzy.Aggregate(u.Agg, members)
	outer, err := e.compileLeaf(u.Outer)
	if err != nil {
		return nil, err
	}
	var result exec.Source
	if !ok {
		result = exec.NewFilter(outer, func(frel.Tuple) float64 { return 0 })
	} else {
		yi, err := outer.Schema().Resolve(u.YRef)
		if err != nil {
			return nil, err
		}
		op := u.CmpOp
		counters := &e.Counters
		node := e.newNode("filter", "uncorrelated subquery")
		result = exec.NewFilter(outer, func(t frel.Tuple) float64 {
			counters.DegreeEvals.Add(1)
			if node != nil {
				node.DegreeEvals.Add(1)
			}
			return frel.Degree(op, t.Values[yi], frel.Num(a))
		})
		result = e.attach(node, result, outer)
	}
	return e.finishProject(result, p.Proj().Items, p.Root.Shape)
}

// finishProject projects, deduplicates and applies the answer shape
// (threshold, order, limit).
func (e *Env) finishProject(src exec.Source, items []fsql.SelectItem, shape plan.Shape) (*frel.Relation, error) {
	proj, err := exec.NewProject(src, itemRefs(items), true)
	if err != nil {
		return nil, err
	}
	rel, err := e.collect(e.stated("project", "", proj, src))
	if err != nil {
		return nil, err
	}
	pruned, err := finalizeAnswer(rel, shape)
	if err != nil {
		return nil, err
	}
	e.notePruned(pruned)
	return rel, nil
}

// constantSubquerySet evaluates an uncorrelated subquery once and returns
// its answer as a fuzzy value set.
func (e *Env) constantSubquerySet(sub *fsql.Select) ([]setMember, error) {
	rel, err := e.evalBlock(sub, nil)
	if err != nil {
		return nil, err
	}
	set := make([]setMember, 0, rel.Len())
	for _, t := range rel.Tuples {
		if t.D > 0 {
			set = append(set, setMember{val: t.Values[0], mu: t.D})
		}
	}
	return set, nil
}

func hasAggItems(items []fsql.SelectItem) bool {
	for _, it := range items {
		if it.HasAgg {
			return true
		}
	}
	return false
}

func andJoinPreds(ps []exec.JoinPred) exec.JoinPred {
	switch len(ps) {
	case 0:
		return nil
	case 1:
		return ps[0]
	default:
		return func(l, r frel.Tuple) float64 {
			d := 1.0
			for _, p := range ps {
				if g := p(l, r); g < d {
					d = g
					if d == 0 {
						return 0
					}
				}
			}
			return d
		}
	}
}
