package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/exec"
	"repro/internal/frel"
	"repro/internal/fsql"
	"repro/internal/fuzzy"
)

// Strategy identifies how EvalUnnested decided to execute a query.
type Strategy int

// Strategies, in the paper's vocabulary.
const (
	// StrategyFlat: the query was already flat; evaluated as a join plan.
	StrategyFlat Strategy = iota
	// StrategyChain: a type N, type J, or K-level chain query (or an
	// ANY-quantified variant), flattened per Theorems 4.1, 4.2 and 8.1 and
	// evaluated as a join plan.
	StrategyChain
	// StrategyAntiJoin: a type JX query (NOT IN), evaluated with the
	// group-minimum merge anti-join of Query JX′ (Theorem 5.1).
	StrategyAntiJoin
	// StrategyGroupAgg: a type JA query (scalar aggregate subquery),
	// evaluated with the pipelined group-aggregate join of Query JA′ /
	// COUNT′ (Theorem 6.1).
	StrategyGroupAgg
	// StrategyAllAnti: a type JALL query (op ALL), evaluated with the
	// group-minimum merge anti-join of Query JALL′ (Theorem 7.1).
	StrategyAllAnti
	// StrategyUncorrelated: the subquery has no correlation; it is
	// evaluated once and folded into a constant set or scalar.
	StrategyUncorrelated
	// StrategyNaive: the query shape is outside the paper's unnesting
	// classes; the naive nested evaluation is used.
	StrategyNaive
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyFlat:
		return "flat"
	case StrategyChain:
		return "chain-join"
	case StrategyAntiJoin:
		return "jx-anti-join"
	case StrategyGroupAgg:
		return "ja-group-aggregate-join"
	case StrategyAllAnti:
		return "jall-anti-join"
	case StrategyUncorrelated:
		return "uncorrelated-subquery"
	case StrategyNaive:
		return "naive-nested-loop"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Plan records the strategy chosen for a query; Explain makes the
// rewriting observable and testable.
type Plan struct {
	Strategy Strategy
	Note     string
}

// Explain classifies the query and reports the strategy EvalUnnested will
// use, without executing it. Classification errors (unknown relations,
// malformed subqueries) are reported in the Note.
func (e *Env) Explain(q *fsql.Select) Plan {
	plan, _, err := e.classify(q)
	if err != nil {
		return Plan{StrategyNaive, "cannot plan: " + err.Error()}
	}
	return plan
}

// EvalUnnested evaluates the query via the paper's unnesting rewrites
// (Sections 4-8), falling back to the naive nested evaluation for shapes
// outside the supported classes. The answer is always equivalent to
// EvalNaive's (Theorems 4.1-8.1).
func (e *Env) EvalUnnested(q *fsql.Select) (*frel.Relation, error) {
	plan, run, err := e.classify(q)
	if err != nil {
		return nil, err
	}
	_ = plan
	return run()
}

// EvalUnnestedContext is EvalUnnested observing ctx: the evaluation's leaf
// scans periodically check for cancellation, so a cancelled context aborts
// long joins and sorts with the context's error.
func (e *Env) EvalUnnestedContext(ctx context.Context, q *fsql.Select) (*frel.Relation, error) {
	defer e.withContext(ctx)()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.EvalUnnested(q)
}

// EvalNaiveContext is EvalNaive observing ctx like EvalUnnestedContext.
func (e *Env) EvalNaiveContext(ctx context.Context, q *fsql.Select) (*frel.Relation, error) {
	defer e.withContext(ctx)()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.EvalNaive(q)
}

// classify picks the strategy and returns a closure executing it.
func (e *Env) classify(q *fsql.Select) (Plan, func() (*frel.Relation, error), error) {
	naive := func(note string) (Plan, func() (*frel.Relation, error), error) {
		return Plan{StrategyNaive, note}, func() (*frel.Relation, error) { return e.EvalNaive(q) }, nil
	}

	var compares []fsql.Predicate
	var subs []fsql.Predicate
	for _, p := range q.Where {
		if p.Kind == fsql.PredCompare || p.Kind == fsql.PredNear {
			compares = append(compares, p)
		} else {
			subs = append(subs, p)
		}
	}

	if len(subs) == 0 {
		fq := &flatQuery{items: q.Items, from: q.From, preds: compares,
			groupBy: q.GroupBy, having: q.Having}
		fq.shapeOf(q)
		return Plan{StrategyFlat, "no nesting"}, func() (*frel.Relation, error) { return e.evalFlat(fq) }, nil
	}
	if len(subs) > 1 {
		// Several subquery predicates flatten together when every one of
		// them is chain-compatible (IN, ANY/SOME, EXISTS): the flattening
		// of Theorem 8.1 applies conjunct by conjunct.
		allChain := true
		for _, p := range subs {
			switch {
			case p.Kind == fsql.PredIn, p.Kind == fsql.PredExists:
			case p.Kind == fsql.PredQuant && p.Quant != fsql.QuantAll:
			default:
				allChain = false
			}
		}
		if !allChain || len(q.GroupBy) > 0 || len(q.Having) > 0 || hasAggItems(q.Items) {
			return naive("multiple subquery predicates")
		}
		fq, err := e.flattenChain(q)
		if err != nil {
			return naive("cannot flatten: " + err.Error())
		}
		return Plan{StrategyChain, "multi-subquery flattening"},
			func() (*frel.Relation, error) { return e.evalFlat(fq) }, nil
	}
	sub := subs[0]
	if len(q.GroupBy) > 0 || len(q.Having) > 0 || hasAggItems(q.Items) {
		return naive("outer block uses GROUPBY/aggregates")
	}

	switch sub.Kind {
	case fsql.PredIn:
		fq, err := e.flattenChain(q)
		if err != nil {
			return naive("cannot flatten: " + err.Error())
		}
		return Plan{StrategyChain, "Theorem 4.1/4.2/8.1 flattening"},
			func() (*frel.Relation, error) { return e.evalFlat(fq) }, nil

	case fsql.PredQuant:
		if sub.Quant == fsql.QuantAll {
			return e.classifyAnti(q, compares, sub, antiAll)
		}
		// ANY/SOME: flatten like IN but linking with the predicate's op.
		fq, err := e.flattenChain(q)
		if err != nil {
			return naive("cannot flatten: " + err.Error())
		}
		return Plan{StrategyChain, "ANY-quantifier flattening"},
			func() (*frel.Relation, error) { return e.evalFlat(fq) }, nil

	case fsql.PredNotIn:
		return e.classifyAnti(q, compares, sub, antiNotIn)

	case fsql.PredScalarSub:
		return e.classifyJA(q, compares, sub)

	case fsql.PredExists:
		fq, err := e.flattenChain(q)
		if err != nil {
			return naive("cannot flatten: " + err.Error())
		}
		return Plan{StrategyChain, "EXISTS flattening (semi-join)"},
			func() (*frel.Relation, error) { return e.evalFlat(fq) }, nil

	case fsql.PredNotExists:
		return e.classifyAnti(q, compares, sub, antiNotExists)

	default:
		return naive("unknown predicate kind")
	}
}

func hasAggItems(items []fsql.SelectItem) bool {
	for _, it := range items {
		if it.HasAgg {
			return true
		}
	}
	return false
}

// subqueryIsSimple reports whether a subquery block can take part in a
// rewrite: plain projection of one attribute, conjunctive WHERE, no
// grouping, no threshold of its own, and — when rec is false — no further
// nesting.
func subqueryIsSimple(sub *fsql.Select, allowNested bool) error {
	if sub == nil {
		return fmt.Errorf("missing subquery")
	}
	if len(sub.Items) != 1 || sub.Items[0].HasAgg {
		return fmt.Errorf("subquery must select exactly one plain attribute")
	}
	if len(sub.GroupBy) > 0 || len(sub.Having) > 0 {
		return fmt.Errorf("subquery uses GROUPBY/HAVING")
	}
	if sub.HasWith {
		return fmt.Errorf("subquery has its own WITH threshold")
	}
	if sub.OrderBy != "" || sub.HasLimit {
		return fmt.Errorf("subquery uses ORDER BY/LIMIT")
	}
	for _, p := range sub.Where {
		if p.Kind == fsql.PredCompare || p.Kind == fsql.PredNear {
			continue
		}
		if !allowNested {
			return fmt.Errorf("subquery is itself nested")
		}
		if p.Kind != fsql.PredIn && p.Kind != fsql.PredExists {
			return fmt.Errorf("nested subquery is not an IN/EXISTS chain")
		}
		if err := subqueryIsSimple(p.Sub, true); err != nil {
			return err
		}
	}
	return nil
}

// flattenChain rewrites a chain query (Theorem 8.1; types N and J are the
// K = 2 case) into a single flat query: all FROM clauses are concatenated,
// all comparison predicates kept, and each nesting link X in (SELECT Y …)
// becomes the linking predicate X = Y (or X op Y for ANY). Binding names
// must be distinct across blocks.
func (e *Env) flattenChain(q *fsql.Select) (*flatQuery, error) {
	fq := &flatQuery{items: q.Items, groupBy: q.GroupBy, having: q.Having}
	fq.shapeOf(q)
	seen := map[string]bool{}
	var addBlock func(block *fsql.Select) error
	addBlock = func(block *fsql.Select) error {
		for _, tr := range block.From {
			b := strings.ToUpper(tr.Binding())
			if seen[b] {
				return fmt.Errorf("binding %q is reused across nesting levels", tr.Binding())
			}
			seen[b] = true
			fq.from = append(fq.from, tr)
		}
		for _, p := range block.Where {
			switch p.Kind {
			case fsql.PredCompare, fsql.PredNear:
				fq.preds = append(fq.preds, p)
			case fsql.PredIn, fsql.PredQuant:
				if p.Kind == fsql.PredQuant && p.Quant == fsql.QuantAll {
					return fmt.Errorf("ALL quantifier inside a chain")
				}
				if err := subqueryIsSimple(p.Sub, true); err != nil {
					return err
				}
				op := fuzzy.OpEq
				if p.Kind == fsql.PredQuant {
					op = p.Op
				}
				link := fsql.Predicate{
					Kind:  fsql.PredCompare,
					Left:  p.Left,
					Op:    op,
					Right: fsql.RefOperand(p.Sub.Items[0].Ref),
				}
				fq.preds = append(fq.preds, link)
				if err := addBlock(p.Sub); err != nil {
					return err
				}
			case fsql.PredExists:
				// A semi-join block: the correlation predicates alone carry
				// the connection; max-degree duplicate elimination of the
				// final projection realizes the EXISTS maximum.
				if err := subqueryIsSimple(p.Sub, true); err != nil {
					return err
				}
				if err := addBlock(p.Sub); err != nil {
					return err
				}
			default:
				return fmt.Errorf("chain blocks allow only comparisons, IN, and EXISTS")
			}
		}
		return nil
	}
	if err := addBlock(q); err != nil {
		return nil, err
	}
	return fq, nil
}

// splitInnerPreds separates the inner block's WHERE into predicates local
// to the inner relations (p2) and correlation predicates referencing the
// outer schema.
func splitInnerPreds(inner *frel.Schema, preds []fsql.Predicate) (local, corr []fsql.Predicate) {
	for _, p := range preds {
		if resolvableIn(inner, p) {
			local = append(local, p)
		} else {
			corr = append(corr, p)
		}
	}
	return local, corr
}

// eqAttrPair extracts, from an equality predicate, the attribute of the
// outer schema and the attribute of the inner schema it links, both
// numeric; ok reports success.
func eqAttrPair(outer, inner *frel.Schema, p fsql.Predicate) (outerRef, innerRef string, ok bool) {
	if p.Kind != fsql.PredCompare || p.Op != fuzzy.OpEq ||
		p.Left.Kind != fsql.OpdRef || p.Right.Kind != fsql.OpdRef {
		return "", "", false
	}
	var oRef, iRef string
	switch {
	case outer.Has(p.Left.Ref) && inner.Has(p.Right.Ref):
		oRef, iRef = p.Left.Ref, p.Right.Ref
	case inner.Has(p.Left.Ref) && outer.Has(p.Right.Ref):
		oRef, iRef = p.Right.Ref, p.Left.Ref
	default:
		return "", "", false
	}
	oi, _ := outer.Resolve(oRef)
	ii, _ := inner.Resolve(iRef)
	if outer.Attrs[oi].Kind != frel.KindNumber || inner.Attrs[ii].Kind != frel.KindNumber {
		return "", "", false
	}
	return oRef, iRef, true
}

// prepareSingleBlock builds the filtered source of a one-relation block.
func (e *Env) prepareSingleBlock(from fsql.TableRef, schemaOnly bool, preds []fsql.Predicate) (exec.Source, error) {
	src, err := e.source(from)
	if err != nil {
		return nil, err
	}
	if schemaOnly {
		return src, nil
	}
	base := e.stated("scan", from.Binding(), src)
	src = base
	for _, p := range preds {
		pred, err := e.compilePred(src.Schema(), p)
		if err != nil {
			return nil, err
		}
		src = exec.NewFilter(src, pred)
	}
	if src != base {
		src = e.stated("filter", from.Binding(), src, base)
	}
	return src, nil
}

// finishProject projects, deduplicates and applies the answer-shaping
// clauses (threshold, order, limit).
func (e *Env) finishProject(src exec.Source, q *fsql.Select) (*frel.Relation, error) {
	proj, err := exec.NewProject(src, itemRefs(q.Items), true)
	if err != nil {
		return nil, err
	}
	rel, err := e.collect(e.stated("project", "", proj, src))
	if err != nil {
		return nil, err
	}
	pruned, err := finalizeAnswer(rel, q)
	if err != nil {
		return nil, err
	}
	e.notePruned(pruned)
	return rel, nil
}

// antiMode selects the penalty shape of the group-minimum anti-join.
type antiMode int

const (
	antiNotIn     antiMode = iota // type JX: NOT IN
	antiAll                       // type JALL: op ALL
	antiNotExists                 // NOT EXISTS: correlations only
)

// classifyAnti handles type JX (NOT IN), type JALL (op ALL) and NOT
// EXISTS queries, rewriting them to the group-minimum anti-join of
// Queries JX′ and JALL′ (NOT EXISTS is the degenerate case without a
// linking predicate).
func (e *Env) classifyAnti(q *fsql.Select, compares []fsql.Predicate, sub fsql.Predicate, mode antiMode) (Plan, func() (*frel.Relation, error), error) {
	naive := func(note string) (Plan, func() (*frel.Relation, error), error) {
		return Plan{StrategyNaive, note}, func() (*frel.Relation, error) { return e.EvalNaive(q) }, nil
	}
	if len(q.From) != 1 || len(sub.Sub.From) != 1 {
		return naive("anti-join rewrite needs single-relation blocks")
	}
	if err := subqueryIsSimple(sub.Sub, false); err != nil {
		return naive(err.Error())
	}
	outerSrc, err := e.source(q.From[0])
	if err != nil {
		return Plan{}, nil, err
	}
	innerSrc, err := e.source(sub.Sub.From[0])
	if err != nil {
		return Plan{}, nil, err
	}
	outerSchema, innerSchema := outerSrc.Schema(), innerSrc.Schema()

	p2, corr := splitInnerPreds(innerSchema, sub.Sub.Where)

	// The linking predicate: outer.Y (=|op) inner.Z. NOT EXISTS has none.
	var link fsql.Predicate
	hasLink := mode != antiNotExists
	if hasLink {
		innerItem := sub.Sub.Items[0].Ref
		linkOp := fuzzy.OpEq
		if mode == antiAll {
			linkOp = sub.Op
		}
		link = fsql.Predicate{Kind: fsql.PredCompare, Left: sub.Left, Op: linkOp, Right: fsql.RefOperand(innerItem)}
	}

	// Choose the merge range attribute among numeric equality predicates.
	// For JX the linking equality itself qualifies; for JALL and NOT
	// EXISTS only an equality correlation does.
	var rangeOuter, rangeInner string
	var rangeFound bool
	candidates := corr
	if mode == antiNotIn {
		candidates = append([]fsql.Predicate{link}, corr...)
	}
	for _, p := range candidates {
		if oRef, iRef, ok := eqAttrPair(outerSchema, innerSchema, p); ok {
			rangeOuter, rangeInner, rangeFound = oRef, iRef, true
			break
		}
	}

	// The penalty of Queries JX′/JALL′:
	//   JX:   1 − min(µS(s), d(corr…), d(r.Y = s.Z))
	//   JALL: 1 − min(µS(s), d(corr…), 1 − d(r.Y op s.Z))
	// µS(s) and d(p2) arrive via the pre-filtered inner tuple degree.
	var terms []exec.JoinPred
	for _, p := range corr {
		jp, err := e.compileJoinPred(outerSchema, innerSchema, p)
		if err != nil {
			return naive(err.Error())
		}
		terms = append(terms, jp)
	}
	if hasLink {
		linkJP, err := e.compileJoinPred(outerSchema, innerSchema, link)
		if err != nil {
			return naive(err.Error())
		}
		if mode == antiAll {
			orig := linkJP
			linkJP = func(l, r frel.Tuple) float64 { return 1 - orig(l, r) }
		}
		terms = append(terms, linkJP)
	}
	penalty := func(l, r frel.Tuple) float64 {
		d := r.D
		for _, t := range terms {
			if g := t(l, r); g < d {
				d = g
				if d == 0 {
					break
				}
			}
		}
		return 1 - d
	}

	strategy := StrategyAntiJoin
	note := "Query JX' (Theorem 5.1)"
	switch mode {
	case antiAll:
		strategy = StrategyAllAnti
		note = "Query JALL' (Theorem 7.1)"
	case antiNotExists:
		note = "NOT EXISTS anti-join"
	}

	run := func() (*frel.Relation, error) {
		outer, err := e.prepareSingleBlock(q.From[0], false, compares)
		if err != nil {
			return nil, err
		}
		inner, err := e.prepareSingleBlock(sub.Sub.From[0], false, p2)
		if err != nil {
			return nil, err
		}
		var result exec.Source
		if rangeFound {
			sortedOuter, err := e.sortSource(outer, rangeOuter, false)
			if err != nil {
				return nil, err
			}
			sortedInner, err := e.sortSource(inner, rangeInner, false)
			if err != nil {
				return nil, err
			}
			am, err := exec.NewMergeAntiMin(sortedOuter, sortedInner, rangeOuter, rangeInner, penalty, &e.Counters)
			if err != nil {
				return nil, err
			}
			node := e.newNode("merge-anti-join", rangeOuter+" = "+rangeInner)
			am.Stats = node
			result = e.attach(node, am, sortedOuter, sortedInner)
		} else {
			// No usable merge order (e.g. string attributes): unnested
			// anti-join by materializing the inner once.
			innerRel, err := e.collect(inner)
			if err != nil {
				return nil, err
			}
			node := e.newNode("nl-anti-join", "")
			nas := &nlAntiSource{outer: outer, inner: innerRel.Tuples, penalty: penalty, counters: &e.Counters, stats: node}
			result = e.attach(node, nas, outer)
		}
		return e.finishProject(result, q)
	}
	return Plan{strategy, note}, run, nil
}

// nlAntiSource is the nested-loop fallback of the group-minimum anti-join:
// the inner relation is materialized once, and every outer tuple takes the
// minimum penalty over all inner tuples. Still an unnested evaluation —
// the inner block is not re-evaluated per outer tuple.
type nlAntiSource struct {
	outer    exec.Source
	inner    []frel.Tuple
	penalty  exec.JoinPred
	counters *exec.Counters
	stats    *exec.OpStats
}

func (s *nlAntiSource) Schema() *frel.Schema { return s.outer.Schema() }

func (s *nlAntiSource) Open() (exec.Iterator, error) {
	it, err := s.outer.Open()
	if err != nil {
		return nil, err
	}
	return &nlAntiIterator{src: s, outer: it}, nil
}

type nlAntiIterator struct {
	src   *nlAntiSource
	outer exec.Iterator
}

func (it *nlAntiIterator) Next() (frel.Tuple, bool) {
	for {
		l, ok := it.outer.Next()
		if !ok {
			return frel.Tuple{}, false
		}
		d := l.D
		for _, r := range it.src.inner {
			it.src.counters.DegreeEvals.Add(1)
			if st := it.src.stats; st != nil {
				st.Comparisons.Add(1)
				st.DegreeEvals.Add(1)
			}
			if g := it.src.penalty(l, r); g < d {
				d = g
				if d == 0 {
					break
				}
			}
		}
		if d > 0 {
			l.D = d
			it.src.counters.TuplesOut.Add(1)
			return l, true
		}
	}
}

func (it *nlAntiIterator) Err() error { return it.outer.Err() }
func (it *nlAntiIterator) Close()     { it.outer.Close() }

// classifyJA handles type JA queries (scalar aggregate subqueries,
// Section 6), rewriting to the pipelined group-aggregate join of Queries
// JA′ and COUNT′, or folding an uncorrelated subquery into a constant.
func (e *Env) classifyJA(q *fsql.Select, compares []fsql.Predicate, sub fsql.Predicate) (Plan, func() (*frel.Relation, error), error) {
	naive := func(note string) (Plan, func() (*frel.Relation, error), error) {
		return Plan{StrategyNaive, note}, func() (*frel.Relation, error) { return e.EvalNaive(q) }, nil
	}
	if err := checkScalarSubquery(sub.Sub); err != nil {
		return Plan{}, nil, err
	}
	if len(q.From) != 1 || len(sub.Sub.From) != 1 {
		return naive("group-aggregate rewrite needs single-relation blocks")
	}
	if len(sub.Sub.GroupBy) > 0 || len(sub.Sub.Having) > 0 || sub.Sub.HasWith ||
		sub.Sub.OrderBy != "" || sub.Sub.HasLimit {
		return naive("aggregate subquery uses GROUPBY/HAVING/WITH/ORDER/LIMIT")
	}
	for _, p := range sub.Sub.Where {
		if p.Kind != fsql.PredCompare && p.Kind != fsql.PredNear {
			return naive("aggregate subquery is itself nested")
		}
	}
	outerSrc, err := e.source(q.From[0])
	if err != nil {
		return Plan{}, nil, err
	}
	innerSrc, err := e.source(sub.Sub.From[0])
	if err != nil {
		return Plan{}, nil, err
	}
	outerSchema, innerSchema := outerSrc.Schema(), innerSrc.Schema()
	p2, corr := splitInnerPreds(innerSchema, sub.Sub.Where)

	agg := sub.Sub.Items[0].Agg
	zRef := sub.Sub.Items[0].Ref
	if sub.Left.Kind != fsql.OpdRef || !outerSchema.Has(sub.Left.Ref) {
		return naive("compared value is not an outer attribute")
	}
	yRef := sub.Left.Ref

	if len(corr) == 0 {
		// No correlation: the inner block produces the same single value
		// for every outer tuple (Section 6 notes no unnesting is needed).
		stripped := *sub.Sub
		stripped.Items = []fsql.SelectItem{{Ref: zRef}}
		op := sub.Op
		run := func() (*frel.Relation, error) {
			set, err := e.constantSubquerySet(&stripped)
			if err != nil {
				return nil, err
			}
			members := make([]fuzzy.Member, 0, len(set))
			for _, m := range set {
				if m.val.Kind != frel.KindNumber && agg != fuzzy.AggCount {
					return nil, fmt.Errorf("core: aggregate %v over non-numeric values", agg)
				}
				members = append(members, fuzzy.Member{Value: m.val.Num, Mu: m.mu})
			}
			a, ok := fuzzy.Aggregate(agg, members)
			outer, err := e.prepareSingleBlock(q.From[0], false, compares)
			if err != nil {
				return nil, err
			}
			var result exec.Source
			if !ok {
				result = exec.NewFilter(outer, func(frel.Tuple) float64 { return 0 })
			} else {
				yi, err := outer.Schema().Resolve(yRef)
				if err != nil {
					return nil, err
				}
				counters := &e.Counters
				node := e.newNode("filter", "uncorrelated subquery")
				result = exec.NewFilter(outer, func(t frel.Tuple) float64 {
					counters.DegreeEvals.Add(1)
					if node != nil {
						node.DegreeEvals.Add(1)
					}
					return frel.Degree(op, t.Values[yi], frel.Num(a))
				})
				result = e.attach(node, result, outer)
			}
			return e.finishProject(result, q)
		}
		return Plan{StrategyUncorrelated, "uncorrelated aggregate subquery"}, run, nil
	}

	if len(corr) != 1 {
		return naive("group-aggregate rewrite needs exactly one correlation predicate")
	}
	// Normalize the correlation to S.V op2 R.U.
	cp := corr[0]
	if cp.Left.Kind != fsql.OpdRef || cp.Right.Kind != fsql.OpdRef {
		return naive("correlation predicate must compare two attributes")
	}
	var vRef, uRef string
	op2 := cp.Op
	// A NEAR correlation folds into exact equality by the sup-min
	// convolution identity: d(V ≈ U | tol) = d((V ⊕ tol') = U), so the
	// inner attribute is shifted by the tolerance and the pipeline below
	// proceeds as an equi-correlation.
	var nearShift fuzzy.Trapezoid
	isNear := cp.Kind == fsql.PredNear
	switch {
	case innerSchema.Has(cp.Left.Ref) && outerSchema.Has(cp.Right.Ref):
		vRef, uRef = cp.Left.Ref, cp.Right.Ref
		if isNear {
			op2 = fuzzy.OpEq
			nearShift = fuzzy.Neg(cp.Tol)
		}
	case outerSchema.Has(cp.Left.Ref) && innerSchema.Has(cp.Right.Ref):
		vRef, uRef = cp.Right.Ref, cp.Left.Ref
		if isNear {
			op2 = fuzzy.OpEq
			nearShift = cp.Tol
		} else {
			op2 = op2.Flip()
		}
	default:
		return naive("correlation predicate does not link inner and outer")
	}
	vi, err := innerSchema.Resolve(vRef)
	if err != nil {
		return Plan{}, nil, err
	}
	ui, err := outerSchema.Resolve(uRef)
	if err != nil {
		return Plan{}, nil, err
	}
	if innerSchema.Attrs[vi].Kind != frel.KindNumber || outerSchema.Attrs[ui].Kind != frel.KindNumber {
		return naive("correlation attributes must be numeric")
	}
	if isNear {
		// The tolerance folds into the correlation attribute by shifting
		// it; when that attribute is also the aggregated one, the shift
		// would corrupt the aggregate inputs.
		zi, err := innerSchema.Resolve(zRef)
		if err != nil {
			return Plan{}, nil, err
		}
		if zi == vi {
			return naive("NEAR correlation on the aggregated attribute")
		}
	}

	note := "Query JA' (Theorem 6.1)"
	if agg == fuzzy.AggCount {
		note = "Query COUNT' (Theorem 6.1)"
	}
	run := func() (*frel.Relation, error) {
		outer, err := e.prepareSingleBlock(q.From[0], false, compares)
		if err != nil {
			return nil, err
		}
		inner, err := e.prepareSingleBlock(sub.Sub.From[0], false, p2)
		if err != nil {
			return nil, err
		}
		if isNear {
			inner, err = newShiftSource(inner, vRef, nearShift)
			if err != nil {
				return nil, err
			}
		}
		sortedOuter, err := e.sortSource(outer, uRef, true)
		if err != nil {
			return nil, err
		}
		if op2 == fuzzy.OpEq {
			inner, err = e.sortSource(inner, vRef, false)
			if err != nil {
				return nil, err
			}
		}
		ga, err := exec.NewGroupAggJoin(sortedOuter, inner, uRef, vRef, op2, zRef, agg, yRef, sub.Op, &e.Counters)
		if err != nil {
			return nil, err
		}
		node := e.newNode("group-agg-join", fmt.Sprintf("%v(%s) by %s", agg, zRef, uRef))
		ga.Stats = node
		return e.finishProject(e.attach(node, ga, sortedOuter, inner), q)
	}
	return Plan{StrategyGroupAgg, note}, run, nil
}

// constantSubquerySet evaluates an uncorrelated subquery once and returns
// its answer as a fuzzy value set.
func (e *Env) constantSubquerySet(sub *fsql.Select) ([]setMember, error) {
	rel, err := e.evalBlock(sub, nil)
	if err != nil {
		return nil, err
	}
	set := make([]setMember, 0, rel.Len())
	for _, t := range rel.Tuples {
		if t.D > 0 {
			set = append(set, setMember{val: t.Values[0], mu: t.D})
		}
	}
	return set, nil
}
