package core

import (
	"context"

	"repro/internal/frel"
	"repro/internal/fsql"
	"repro/internal/plan"
)

// The nesting classification, unnesting rewrites (Sections 4-8) and join
// planning that used to live in this file moved to the three-stage
// planner in internal/plan (Build -> Rewrite -> Estimate); physical
// compilation to exec operators is in compile.go. This file keeps the
// thin public evaluation surface of Env.

// Strategy is the evaluation strategy the planner picks for a query,
// re-exported from internal/plan.
type Strategy = plan.Strategy

// Strategy constants, re-exported for callers of Explain.
const (
	StrategyFlat         = plan.StrategyFlat
	StrategyChain        = plan.StrategyChain
	StrategyAntiJoin     = plan.StrategyAntiJoin
	StrategyGroupAgg     = plan.StrategyGroupAgg
	StrategyAllAnti      = plan.StrategyAllAnti
	StrategyUncorrelated = plan.StrategyUncorrelated
	StrategyNaive        = plan.StrategyNaive
)

// Plan is the one-line EXPLAIN summary of a planning decision. The full
// logical plan (rules, estimates, operator tree) is available from
// Env.PlanQuery.
type Plan struct {
	Strategy Strategy
	Note     string
}

// Explain reports which strategy the planner would use for q, without
// evaluating it.
func (e *Env) Explain(q *fsql.Select) Plan {
	p, err := e.PlanQuery(q)
	if err != nil {
		return Plan{StrategyNaive, "cannot plan: " + err.Error()}
	}
	return Plan{p.Strategy, p.Note}
}

// EvalUnnested evaluates the query via the paper's unnesting rewrites
// (Sections 4-8), falling back to the naive nested evaluation for shapes
// outside the supported classes. The answer is always equivalent to
// EvalNaive's (Theorems 4.1-8.1).
func (e *Env) EvalUnnested(q *fsql.Select) (*frel.Relation, error) {
	p, err := e.PlanQuery(q)
	if err != nil {
		return nil, err
	}
	return e.execPlan(p)
}

// EvalUnnestedContext is EvalUnnested observing ctx: the evaluation's leaf
// scans periodically check for cancellation, so a cancelled context aborts
// long joins and sorts with the context's error.
func (e *Env) EvalUnnestedContext(ctx context.Context, q *fsql.Select) (*frel.Relation, error) {
	defer e.withContext(ctx)()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.EvalUnnested(q)
}

// EvalPlanContext executes a previously planned query: prepared
// statements parse and plan once, then re-execute the recorded plan many
// times. The plan replays its decisions (join order, merge vs nested
// loop, predicate placement); sources and linguistic terms re-resolve
// against the current catalog and term scope on every execution, so a
// cached plan stays correct across inserts (its cost choices may merely
// grow stale).
func (e *Env) EvalPlanContext(ctx context.Context, p *plan.Plan) (*frel.Relation, error) {
	defer e.withContext(ctx)()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.execPlan(p)
}

// EvalNaiveContext is EvalNaive observing ctx like EvalUnnestedContext.
func (e *Env) EvalNaiveContext(ctx context.Context, q *fsql.Select) (*frel.Relation, error) {
	defer e.withContext(ctx)()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.EvalNaive(q)
}
