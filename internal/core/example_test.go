package core_test

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/frel"
	"repro/internal/fsql"
)

// A complete session: schema, ill-known data, and the paper's nested
// Query 2 evaluated through the unnesting rewriter.
func Example() {
	dir, err := os.MkdirTemp("", "core-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sess, err := core.OpenSession(dir, 256)
	if err != nil {
		log.Fatal(err)
	}
	answers, err := sess.ExecScript(`
		CREATE TABLE F (NAME STRING, AGE NUMBER, INCOME NUMBER);
		CREATE TABLE M (NAME STRING, AGE NUMBER, INCOME NUMBER);
		INSERT INTO F VALUES ('Ann',   'medium young', 'medium high');
		INSERT INTO F VALUES ('Betty', 'middle age',   'high');
		INSERT INTO M VALUES ('Bill',  'middle age',   'high');

		SELECT F.NAME FROM F
		WHERE F.AGE = 'medium young' AND
		      F.INCOME IN (SELECT M.INCOME FROM M WHERE M.AGE = 'middle age')
		ORDER BY D DESC;
	`)
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range answers[0].Tuples {
		fmt.Printf("%s %.1f\n", t.Values[0].Str, t.D)
	}
	// Output:
	// Ann 0.7
	// Betty 0.7
}

// Explain reports which of the paper's rewrites a nested query takes.
func ExampleEnv_Explain() {
	env := core.NewMemEnv()
	mk := func(name string, attrs ...string) {
		var as []frel.Attribute
		for _, a := range attrs {
			as = append(as, frel.Attribute{Name: a, Kind: frel.KindNumber})
		}
		env.RegisterRelation(name, frel.NewRelation(frel.NewSchema(name, as...)))
	}
	mk("R", "X", "Y", "U")
	mk("S", "Z", "V")
	q, err := fsql.ParseQuery(`
		SELECT R.X FROM R
		WHERE R.Y NOT IN (SELECT S.Z FROM S WHERE S.V = R.U)`)
	if err != nil {
		log.Fatal(err)
	}
	plan := env.Explain(q)
	fmt.Println(plan.Strategy)
	// Output:
	// jx-anti-join
}
