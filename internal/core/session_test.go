package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/fsql"
)

func TestSessionScriptEndToEnd(t *testing.T) {
	sess, err := OpenSession(t.TempDir(), 32)
	if err != nil {
		t.Fatal(err)
	}
	answers, err := sess.ExecScript(`
		CREATE TABLE W (ID NUMBER, NAME STRING, AGE NUMBER);
		INSERT INTO W VALUES (1, 'Ann', 24);
		INSERT INTO W VALUES (2, 'Bea', 'about 35');
		INSERT INTO W VALUES (3, 'Cal', 60) DEGREE 0.5;
		SELECT W.NAME FROM W WHERE W.AGE = 'medium young';
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 {
		t.Fatalf("answers = %d", len(answers))
	}
	got := answers[0]
	want := map[string]float64{"Ann": 0.8, "Bea": 0.5}
	if got.Len() != len(want) {
		t.Fatalf("answer = %v", got.Tuples)
	}
	for _, tup := range got.Tuples {
		if math.Abs(tup.D-want[tup.Values[0].Str]) > 1e-9 {
			t.Errorf("%s degree = %g, want %g", tup.Values[0].Str, tup.D, want[tup.Values[0].Str])
		}
	}
}

func TestSessionDefineTermOverrides(t *testing.T) {
	sess, err := OpenSession(t.TempDir(), 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ExecScript(`
		DEFINE TERM 'nearly fifty' AS TRI(45, 50, 55);
		CREATE TABLE W (AGE NUMBER);
		INSERT INTO W VALUES ('nearly fifty');
	`); err != nil {
		t.Fatal(err)
	}
	answers, err := sess.ExecScript(`SELECT W.AGE FROM W WHERE W.AGE = 50`)
	if err != nil {
		t.Fatal(err)
	}
	if answers[0].Len() != 1 || answers[0].Tuples[0].D != 1 {
		t.Errorf("answer = %v", answers[0].Tuples)
	}
}

func TestSessionDropTable(t *testing.T) {
	sess, err := OpenSession(t.TempDir(), 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ExecScript(`CREATE TABLE W (X NUMBER); DROP TABLE W;`); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ExecScript(`SELECT W.X FROM W`); err == nil {
		t.Errorf("query after drop: want error")
	}
	// Name reusable after drop.
	if _, err := sess.ExecScript(`CREATE TABLE W (X NUMBER)`); err != nil {
		t.Errorf("recreate: %v", err)
	}
}

func TestSessionInsertErrors(t *testing.T) {
	sess, err := OpenSession(t.TempDir(), 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ExecScript(`CREATE TABLE W (X NUMBER, NAME STRING)`); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		src  string
		frag string
	}{
		{`INSERT INTO W VALUES (1)`, "supplies 1 values"},
		{`INSERT INTO W VALUES ('no such term', 'a')`, "unknown linguistic term"},
		{`INSERT INTO W VALUES (1, 2)`, "numeric value for string attribute"},
		{`INSERT INTO NOPE VALUES (1)`, "unknown relation"},
	}
	for _, tc := range cases {
		_, err := sess.ExecScript(tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%q: err = %v, want fragment %q", tc.src, err, tc.frag)
		}
	}
}

func TestSessionUnsupportedStatement(t *testing.T) {
	sess, err := OpenSession(t.TempDir(), 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(nil); err == nil {
		t.Errorf("nil statement: want error")
	}
}

func TestSessionPaperTermsPreloaded(t *testing.T) {
	sess, err := OpenSession(t.TempDir(), 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sess.Catalog().Term("medium young"); !ok {
		t.Errorf("paper terms not preloaded")
	}
}

// TestSessionPersistenceAcrossReopen: a database created by one session
// is fully usable by a later session over the same directory.
func TestSessionPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	sess1, err := OpenSession(dir, 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess1.ExecScript(`
		DEFINE TERM 'fortyish' AS TRI(35, 40, 45);
		CREATE TABLE W (ID NUMBER, AGE NUMBER);
		INSERT INTO W VALUES (1, 'fortyish');
		INSERT INTO W VALUES (2, 24);
	`); err != nil {
		t.Fatal(err)
	}

	sess2, err := OpenSession(dir, 32)
	if err != nil {
		t.Fatal(err)
	}
	// The custom term and the data both survived.
	answers, err := sess2.ExecScript(`SELECT W.ID FROM W WHERE W.AGE = 'fortyish'`)
	if err != nil {
		t.Fatal(err)
	}
	if answers[0].Len() != 1 || answers[0].Tuples[0].Values[0].Num.A != 1 {
		t.Errorf("answer after reopen = %v", answers[0].Tuples)
	}
	// New inserts extend the reopened relation.
	if _, err := sess2.ExecScript(`INSERT INTO W VALUES (3, 39)`); err != nil {
		t.Fatal(err)
	}
	answers, err = sess2.ExecScript(`SELECT W.ID FROM W WHERE W.AGE = 'fortyish'`)
	if err != nil {
		t.Fatal(err)
	}
	if answers[0].Len() != 2 {
		t.Errorf("answer after insert = %v", answers[0].Tuples)
	}
}

func TestSessionExplainThroughEnv(t *testing.T) {
	sess, err := OpenSession(t.TempDir(), 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ExecScript(`CREATE TABLE R (U NUMBER, Y NUMBER); CREATE TABLE S (V NUMBER, Z NUMBER);`); err != nil {
		t.Fatal(err)
	}
	q, err := fsql.ParseQuery(`SELECT R.Y FROM R WHERE R.Y IN (SELECT S.Z FROM S WHERE S.V = R.U)`)
	if err != nil {
		t.Fatal(err)
	}
	if plan := sess.Env.Explain(q); plan.Strategy != StrategyChain {
		t.Errorf("strategy = %v", plan.Strategy)
	}
}

// TestSessionExplain checks EXPLAIN and EXPLAIN ANALYZE through the
// statement interface: both return a single-column PLAN relation, the
// ANALYZE form with the populated per-operator tree.
func TestSessionExplain(t *testing.T) {
	sess, err := OpenSession(t.TempDir(), 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ExecScript(`
		CREATE TABLE R (K NUMBER, A NUMBER, B NUMBER);
		CREATE TABLE S (A NUMBER, B NUMBER);
		INSERT INTO R VALUES (1, 1, 10);
		INSERT INTO R VALUES (2, 2, 20);
		INSERT INTO S VALUES (1, 10);
		INSERT INTO S VALUES (2, 99);
	`); err != nil {
		t.Fatal(err)
	}

	run := func(src string) string {
		t.Helper()
		st, err := fsql.ParseStatement(src)
		if err != nil {
			t.Fatal(err)
		}
		rel, err := sess.Exec(st)
		if err != nil {
			t.Fatal(err)
		}
		if got := rel.Schema.Attrs[0].Name; got != "PLAN" {
			t.Fatalf("column = %q, want PLAN", got)
		}
		var b strings.Builder
		for _, tup := range rel.Tuples {
			b.WriteString(tup.Values[0].Str)
			b.WriteByte('\n')
		}
		return b.String()
	}

	const q = `SELECT R.K FROM R WHERE R.B IN (SELECT S.B FROM S WHERE S.A = R.A)`
	plain := run(`EXPLAIN ` + q)
	if !strings.Contains(plain, "strategy: chain-join") {
		t.Errorf("EXPLAIN output:\n%s", plain)
	}
	if strings.Contains(plain, "wall:") {
		t.Errorf("plain EXPLAIN must not execute the query:\n%s", plain)
	}

	analyzed := run(`EXPLAIN ANALYZE ` + q)
	for _, want := range []string{"strategy: chain-join", "wall:", "answer: 1 tuples", "merge-join", "scan [S]"} {
		if !strings.Contains(analyzed, want) {
			t.Errorf("EXPLAIN ANALYZE missing %q:\n%s", want, analyzed)
		}
	}
}
