package core

import (
	"math/rand"
	"testing"

	"repro/internal/frel"
)

// TestNearFlatJoin: a flat query whose only cross-relation predicate is a
// NEAR similarity runs as a band merge-join and matches the naive
// cross-product evaluation.
func TestNearFlatJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 10; trial++ {
		e := envRS(rng, 20, 25, 0)
		checkEquivalence(t, e, `
			SELECT R.TAG, S.TAG FROM R, S
			WHERE R.Y NEAR S.Z WITHIN 3`,
			StrategyFlat)
	}
}

func TestNearFuzzyTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 10; trial++ {
		e := envRS(rng, 20, 25, 0)
		checkEquivalence(t, e, `
			SELECT R.TAG FROM R, S
			WHERE R.Y NEAR S.Z WITHIN TRAP(-4, -1, 1, 4) AND S.V > 6`,
			StrategyFlat)
	}
}

// TestNearLocalPredicate: NEAR against a literal acts as a fuzzy
// selection.
func TestNearLocalPredicate(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 10; trial++ {
		e := envRS(rng, 20, 0, 0)
		checkEquivalence(t, e, `
			SELECT R.TAG FROM R WHERE R.Y NEAR 10 WITHIN 4`,
			StrategyFlat)
	}
}

// TestNearInsideChain: NEAR as the correlation predicate of an IN chain.
func TestNearInsideChain(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for trial := 0; trial < 10; trial++ {
		e := envRS(rng, 15, 20, 0)
		checkEquivalence(t, e, `
			SELECT R.TAG FROM R
			WHERE R.Y IN (SELECT S.Z FROM S WHERE S.V NEAR R.U WITHIN 2)`,
			StrategyChain)
	}
}

// TestNearInAntiJoin: NEAR correlation inside a NOT IN block joins the
// anti-join penalty.
func TestNearInAntiJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	for trial := 0; trial < 10; trial++ {
		e := envRS(rng, 15, 20, 0)
		checkEquivalence(t, e, `
			SELECT R.TAG FROM R
			WHERE R.Y NOT IN (SELECT S.Z FROM S WHERE S.V NEAR R.U WITHIN 2)`,
			StrategyAntiJoin)
	}
}

// TestNearCrispBandSemantics: exact band-join behavior on crisp data.
func TestNearCrispBandSemantics(t *testing.T) {
	e := NewMemEnv()
	e.RegisterRelation("R", relOf("R", []float64{10, 20, 30}))
	e.RegisterRelation("S", relOf("S", []float64{12, 26, 300}))
	q := mustParse(t, `SELECT R.Y, S.Z FROM R, S WHERE R.Y NEAR S.Z WITHIN 5`)
	rel, err := e.EvalUnnested(q)
	if err != nil {
		t.Fatal(err)
	}
	// Matches: (10,12) diff 2; (30,26) diff 4. Not (20,26) diff 6.
	if rel.Len() != 2 {
		t.Fatalf("band matches = %v", rel.Tuples)
	}
	for _, tup := range rel.Tuples {
		if tup.D != 1 {
			t.Errorf("crisp band degree = %g, want 1", tup.D)
		}
	}
}

// relOf builds a one-numeric-column relation named after its role: the
// column is Y for R and Z for S (so NEAR tests can reference both).
func relOf(name string, vals []float64) *frel.Relation {
	col := "Y"
	if name == "S" {
		col = "Z"
	}
	r := frel.NewRelation(frel.NewSchema(name, frel.Attribute{Name: col, Kind: frel.KindNumber}))
	for _, v := range vals {
		r.Append(frel.NewTuple(1, frel.Crisp(v)))
	}
	return r
}

// TestSampledSelectivityImprovesOrder: two equal-sized equality edges with
// very different selectivities — the sampled estimates must steer the DP
// order toward the selective edge, doing less work than the syntactic
// order.
func TestSampledSelectivityImprovesOrder(t *testing.T) {
	mk := func(name, col string, n, distinct int) *frel.Relation {
		r := frel.NewRelation(frel.NewSchema(name, frel.Attribute{Name: col, Kind: frel.KindNumber}))
		for i := 0; i < n; i++ {
			r.Append(frel.NewTuple(1, frel.Crisp(float64(i%distinct))))
		}
		return r
	}
	const n = 400
	// R.A joins S.A with huge fanout (4 distinct values); S joins T on B
	// with tiny fanout (distinct values ≈ n).
	rRel := mk("R", "A", n, 4)
	sRel := frel.NewRelation(frel.NewSchema("S",
		frel.Attribute{Name: "A", Kind: frel.KindNumber},
		frel.Attribute{Name: "B", Kind: frel.KindNumber},
	))
	for i := 0; i < n; i++ {
		sRel.Append(frel.NewTuple(1, frel.Crisp(float64(i%4)), frel.Crisp(float64(i))))
	}
	tRel := mk("T", "B", n, n)

	query := `SELECT R.A FROM R, S, T WHERE R.A = S.A AND S.B = T.B`
	run := func(disable bool) int64 {
		e := NewMemEnv()
		e.DisableJoinReorder = disable
		e.RegisterRelation("R", rRel)
		e.RegisterRelation("S", sRel)
		e.RegisterRelation("T", tRel)
		q := mustParse(t, query)
		if _, err := e.EvalUnnested(q); err != nil {
			t.Fatal(err)
		}
		return e.Counters.DegreeEvals.Load()
	}
	dp := run(false)
	syntactic := run(true)
	if dp >= syntactic {
		t.Errorf("sampled DP order did %d degree evals, syntactic %d; want fewer", dp, syntactic)
	}
}
