package core
