package core

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/frel"
	"repro/internal/fsql"
	"repro/internal/storage"
)

// openIndexSession opens a session over a shared in-memory file system and
// loads the two-relation workload used by the index tests: R(K, A, B) and
// S(A, B) with a mix of crisp and trapezoidal values on the join
// attribute B.
func openIndexSession(t *testing.T, fs storage.FS) *Session {
	t.Helper()
	s, err := OpenSessionOptions("db", SessionOptions{BufferPages: 32, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func loadIndexWorkload(t *testing.T, sess *Session) {
	t.Helper()
	stmts := []string{
		`CREATE TABLE R (K NUMBER, A NUMBER, B NUMBER)`,
		`CREATE TABLE S (A NUMBER, B NUMBER)`,
	}
	for i := 0; i < 25; i++ {
		stmts = append(stmts,
			fmt.Sprintf(`INSERT INTO R VALUES (%d, %d, TRAP(%d, %d, %d, %d))`,
				i, i%5, i%7, i%7+1, i%7+2, i%7+3))
		stmts = append(stmts,
			fmt.Sprintf(`INSERT INTO S VALUES (%d, %d)`, i%5, i%7+1))
	}
	if _, err := sess.ExecScript(strings.Join(stmts, ";\n")); err != nil {
		t.Fatal(err)
	}
}

func mustSelect(t *testing.T, src string) *fsql.Select {
	t.Helper()
	st, err := fsql.ParseStatement(src)
	if err != nil {
		t.Fatal(err)
	}
	return st.(*fsql.Select)
}

// TestIndexServesColdQuery is the tentpole acceptance check: with indexes
// on the join attribute, a cold Open + nested query executes with zero
// external-sort work — no sort operator in EXPLAIN ANALYZE, no sort-cache
// misses, the inputs served from the persistent indexes — and the answer
// is bit-identical to the naive evaluation.
func TestIndexServesColdQuery(t *testing.T) {
	fs := storage.NewMemFS()
	sess := openIndexSession(t, fs)
	loadIndexWorkload(t, sess)
	if _, err := sess.ExecScript(`
		CREATE INDEX r_b ON R (B);
		CREATE INDEX s_b ON S (B);
	`); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	// Cold: a fresh process image — new buffer pool, empty sort caches.
	sess = openIndexSession(t, fs)
	defer sess.Close()
	q := mustSelect(t, `SELECT R.K FROM R WHERE R.B IN (SELECT S.B FROM S)`)
	sess.Env.ResetStats()
	got, stats, err := sess.EvalAnalyze(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	plan := stats.Plan()
	if plan == nil {
		t.Fatal("no stats tree")
	}
	if n := plan.Find("sort"); n != nil {
		t.Fatalf("cold indexed query ran a sort:\n%s", plan.Render())
	}
	if n := plan.Find("index"); n == nil || n.IndexHits == 0 {
		t.Fatalf("no index operator in the plan:\n%s", plan.Render())
	}
	if misses := sess.Env.Counters.SortCacheMisses.Load(); misses != 0 {
		t.Fatalf("sort_cache_misses = %d, want 0", misses)
	}
	if hits := sess.Env.Counters.IndexHits.Load(); hits < 2 {
		t.Fatalf("index hits = %d, want both merge inputs served", hits)
	}

	naive, err := sess.EvalNaive(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !naive.Equal(got, 0) {
		t.Fatalf("indexed answer differs from naive:\nindexed: %v\nnaive:   %v", got.Tuples, naive.Tuples)
	}

	// Warm repeat: the loaded order replays from the sort cache.
	sess.Env.ResetStats()
	if _, _, err := sess.EvalAnalyze(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	if hits := sess.Env.Counters.SortCacheHits.Load(); hits < 2 {
		t.Fatalf("warm repeat cache hits = %d, want >= 2", hits)
	}
}

// TestIndexMaintainedByInserts: entries appended by autocommit inserts and
// by explicit transactions keep the index serving, with answers identical
// to the naive evaluation.
func TestIndexMaintainedByInserts(t *testing.T) {
	fs := storage.NewMemFS()
	sess := openIndexSession(t, fs)
	defer sess.Close()
	loadIndexWorkload(t, sess)
	if _, err := sess.ExecScript(`CREATE INDEX r_b ON R (B)`); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ExecScript(`
		INSERT INTO R VALUES (100, 1, TRAP(0, 1, 2, 3));
		BEGIN;
		INSERT INTO R VALUES (101, 2, 5);
		INSERT INTO R VALUES (102, 3, TRAP(2, 3, 4, 5)) DEGREE 0.5;
		COMMIT;
	`); err != nil {
		t.Fatal(err)
	}

	h, err := sess.Catalog().Relation("R")
	if err != nil {
		t.Fatal(err)
	}
	ix, ok := sess.Catalog().LookupIndex("r_b")
	if !ok {
		t.Fatal("index lost")
	}
	if ih, hh := ix.Heap().NumTuples(), h.NumTuples(); ih != hh {
		t.Fatalf("index has %d entries, heap %d tuples", ih, hh)
	}

	q := mustSelect(t, `SELECT R.K FROM R WHERE R.B IN (SELECT S.B FROM S)`)
	sess.Env.ResetStats()
	got, err := sess.EvalSelect(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if hits := sess.Env.Counters.IndexHits.Load(); hits < 1 {
		t.Fatalf("index hits = %d after maintained inserts, want >= 1", hits)
	}
	naive, err := sess.EvalNaive(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !naive.Equal(got, 0) {
		t.Fatalf("answers differ after maintained inserts")
	}
}

// TestIndexDDLBarrier: CREATE INDEX and DROP INDEX are transaction
// barriers; inside an open transaction they fail and leave the
// transaction intact.
func TestIndexDDLBarrier(t *testing.T) {
	fs := storage.NewMemFS()
	sess := openIndexSession(t, fs)
	defer sess.Close()
	loadIndexWorkload(t, sess)
	if _, err := sess.ExecScript(`CREATE INDEX s_b ON S (B)`); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ExecScript(`BEGIN`); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ExecScript(`CREATE INDEX r_b ON R (B)`); err == nil ||
		!strings.Contains(err.Error(), "cannot run inside a transaction") {
		t.Fatalf("CREATE INDEX inside txn: err = %v", err)
	}
	if _, err := sess.ExecScript(`DROP INDEX s_b`); err == nil ||
		!strings.Contains(err.Error(), "cannot run inside a transaction") {
		t.Fatalf("DROP INDEX inside txn: err = %v", err)
	}
	if !sess.InTxn() {
		t.Fatal("rejected index DDL aborted the transaction")
	}
	if _, err := sess.ExecScript(`INSERT INTO R VALUES (200, 0, 1); COMMIT`); err != nil {
		t.Fatalf("transaction unusable after rejected DDL: %v", err)
	}
	if _, err := sess.ExecScript(`DROP INDEX s_b`); err != nil {
		t.Fatalf("DROP INDEX at barrier: %v", err)
	}
}

// TestIndexStaleFallsBack: a bulk append behind the index's back leaves
// the counts unequal; queries fall back to sorting (still correct), and a
// reopen rebuilds the index so it serves again.
func TestIndexStaleFallsBack(t *testing.T) {
	fs := storage.NewMemFS()
	sess := openIndexSession(t, fs)
	loadIndexWorkload(t, sess)
	if _, err := sess.ExecScript(`CREATE INDEX r_b ON R (B)`); err != nil {
		t.Fatal(err)
	}
	h, err := sess.Catalog().Relation("R")
	if err != nil {
		t.Fatal(err)
	}
	// Bulk load bypassing index maintenance.
	extra := frel.NewRelation(h.Schema)
	extra.Append(frel.NewTuple(1, frel.Crisp(300), frel.Crisp(1), frel.Crisp(2)))
	extra.Append(frel.NewTuple(1, frel.Crisp(301), frel.Crisp(2), frel.Crisp(3)))
	if err := h.AppendAll(extra); err != nil {
		t.Fatal(err)
	}

	q := mustSelect(t, `SELECT R.K FROM R WHERE R.B IN (SELECT S.B FROM S)`)
	sess.Env.ResetStats()
	got, err := sess.EvalSelect(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if hits := sess.Env.Counters.IndexHits.Load(); hits != 0 {
		t.Fatalf("stale index served a query (hits = %d)", hits)
	}
	if misses := sess.Env.Counters.SortCacheMisses.Load(); misses == 0 {
		t.Fatal("stale index should fall back to sorting")
	}
	naive, err := sess.EvalNaive(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !naive.Equal(got, 0) {
		t.Fatal("fallback answer differs from naive")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen rebuilds the stale index from scratch; it serves again.
	sess = openIndexSession(t, fs)
	defer sess.Close()
	sess.Env.ResetStats()
	got2, err := sess.EvalSelect(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if hits := sess.Env.Counters.IndexHits.Load(); hits < 1 {
		t.Fatal("rebuilt index does not serve after reopen")
	}
	if !got.Equal(got2, 0) {
		t.Fatal("answers differ across reopen")
	}
}

// TestIndexDeleteRebuild: DELETE's contents swap rebuilds the indexes, so
// they keep serving with correct answers.
func TestIndexDeleteRebuild(t *testing.T) {
	fs := storage.NewMemFS()
	sess := openIndexSession(t, fs)
	defer sess.Close()
	loadIndexWorkload(t, sess)
	if _, err := sess.ExecScript(`
		CREATE INDEX r_b ON R (B);
		DELETE FROM R WHERE R.K >= 20;
	`); err != nil {
		t.Fatal(err)
	}
	q := mustSelect(t, `SELECT R.K FROM R WHERE R.B IN (SELECT S.B FROM S)`)
	sess.Env.ResetStats()
	got, err := sess.EvalSelect(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if hits := sess.Env.Counters.IndexHits.Load(); hits < 1 {
		t.Fatal("rebuilt index does not serve after DELETE")
	}
	naive, err := sess.EvalNaive(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !naive.Equal(got, 0) {
		t.Fatal("answer differs from naive after DELETE rebuild")
	}
}

// TestExplainShowsIndexedMerge: the planner annotates merge steps whose
// inputs it expects to be index-served.
func TestExplainShowsIndexedMerge(t *testing.T) {
	fs := storage.NewMemFS()
	sess := openIndexSession(t, fs)
	defer sess.Close()
	loadIndexWorkload(t, sess)
	if _, err := sess.ExecScript(`
		CREATE INDEX r_b ON R (B);
		CREATE INDEX s_b ON S (B);
	`); err != nil {
		t.Fatal(err)
	}
	p, err := sess.Env.PlanQuery(mustSelect(t, `SELECT R.K FROM R WHERE R.B IN (SELECT S.B FROM S)`))
	if err != nil {
		t.Fatal(err)
	}
	text := strings.Join(p.Lines(), "\n")
	if !strings.Contains(text, "index(both)") {
		t.Fatalf("EXPLAIN does not mark the indexed merge:\n%s", text)
	}
}
