package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/frel"
	"repro/internal/fsql"
	"repro/internal/storage"
)

// diskEnv builds a catalog-backed environment with random on-disk
// relations, a small buffer pool, and a small sort budget, exercising heap
// scans, spills and external sorts through the whole unnesting stack.
func diskEnv(t *testing.T, rng *rand.Rand, nR, nS int) *Env {
	t.Helper()
	mgr := storage.NewManager(t.TempDir(), 16)
	cat := catalog.New(mgr)
	e := NewEnv(cat)
	e.SortMemPages = 2 // force multi-run external sorts
	e.NLBlockBytes = storage.PageSize

	for _, spec := range []struct {
		name string
		n    int
		a, b string
	}{{"R", nR, "U", "Y"}, {"S", nS, "V", "Z"}} {
		rel := randRelation(spec.name, spec.n, rng, spec.a, spec.b)
		h, err := cat.CreateRelation(spec.name, rel.Schema)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.AppendAll(rel); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// TestDiskEquivalence runs every nesting type against disk-backed
// relations and compares the two evaluators.
func TestDiskEquivalence(t *testing.T) {
	queries := []struct {
		src  string
		want Strategy
	}{
		{`SELECT R.TAG FROM R WHERE R.Y IN (SELECT S.Z FROM S WHERE S.V = R.U)`, StrategyChain},
		{`SELECT R.TAG FROM R WHERE R.Y NOT IN (SELECT S.Z FROM S WHERE S.V = R.U)`, StrategyAntiJoin},
		{`SELECT R.TAG FROM R WHERE R.Y > (SELECT MIN(S.Z) FROM S WHERE S.V = R.U)`, StrategyGroupAgg},
		{`SELECT R.TAG FROM R WHERE R.Y = (SELECT COUNT(S.Z) FROM S WHERE S.V = R.U)`, StrategyGroupAgg},
		{`SELECT R.TAG FROM R WHERE R.Y < ALL (SELECT S.Z FROM S WHERE S.V = R.U)`, StrategyAllAnti},
		{`SELECT R.TAG, S.TAG FROM R, S WHERE R.Y = S.Z`, StrategyFlat},
	}
	rng := rand.New(rand.NewSource(42))
	for i, tc := range queries {
		t.Run(fmt.Sprintf("q%d", i), func(t *testing.T) {
			e := diskEnv(t, rng, 60, 80)
			q, err := fsql.ParseQuery(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			if plan := e.Explain(q); plan.Strategy != tc.want {
				t.Errorf("strategy = %v (%s), want %v", plan.Strategy, plan.Note, tc.want)
			}
			naive, err := e.EvalNaive(q)
			if err != nil {
				t.Fatalf("naive: %v", err)
			}
			unnested, err := e.EvalUnnested(q)
			if err != nil {
				t.Fatalf("unnested: %v", err)
			}
			if !naive.Equal(unnested, 1e-9) {
				t.Fatalf("disk equivalence violated:\nnaive: %v\nunnested: %v", naive.Tuples, unnested.Tuples)
			}
			if pins := e.cat.Manager().Pool().PinnedPages(); pins != 0 {
				t.Errorf("leaked %d pinned pages", pins)
			}
		})
	}
}

// TestDiskIOAdvantage: on disk, with a buffer far smaller than the inner
// relation, the unnested merge-join evaluation must perform dramatically
// fewer page reads than the naive nested evaluation — the core claim of
// the paper.
func TestDiskIOAdvantage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// An inner relation much larger than the 16-page buffer pool, as in
	// the paper's setup (2 MB buffer vs up to 32 MB relations): every
	// naive rescan of the inner relation misses the cache.
	e := diskEnv(t, rng, 300, 5000)
	q, err := fsql.ParseQuery(`SELECT R.TAG FROM R WHERE R.Y IN (SELECT S.Z FROM S WHERE S.V = R.U)`)
	if err != nil {
		t.Fatal(err)
	}
	stats := e.cat.Manager().Stats()

	stats.Reset()
	if _, err := e.EvalNaive(q); err != nil {
		t.Fatal(err)
	}
	naiveReads, _, _, _ := stats.Snapshot()

	stats.Reset()
	if _, err := e.EvalUnnested(q); err != nil {
		t.Fatal(err)
	}
	unnestedIO := stats.IO()

	if naiveReads < 3*unnestedIO {
		t.Errorf("naive reads = %d, unnested I/O = %d; want naive >> unnested", naiveReads, unnestedIO)
	}
}

// TestDiskInsertThroughCatalogRoundTrip writes through the catalog and
// reads back through a query.
func TestDiskInsertThroughCatalogRoundTrip(t *testing.T) {
	mgr := storage.NewManager(t.TempDir(), 8)
	cat := catalog.New(mgr)
	cat.DefinePaperTerms()
	e := NewEnv(cat)
	schema := frel.NewSchema("W",
		frel.Attribute{Name: "ID", Kind: frel.KindNumber},
		frel.Attribute{Name: "AGE", Kind: frel.KindNumber},
	)
	h, err := cat.CreateRelation("W", schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := h.Append(frel.NewTuple(1, frel.Crisp(float64(i)), frel.Crisp(float64(20+i)))); err != nil {
			t.Fatal(err)
		}
	}
	q, err := fsql.ParseQuery(`SELECT W.ID FROM W WHERE W.AGE = 'medium young'`)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := e.EvalUnnested(q)
	if err != nil {
		t.Fatal(err)
	}
	// Ages 21..29 are members of medium young (TRAP 20,25,30,35) to
	// positive degree; age 20 has degree 0.
	if rel.Len() != 9 {
		t.Errorf("answer = %v", rel.Tuples)
	}
}
