package core

import (
	"math/rand"
	"testing"
)

// TestExistsCorrelated: correlated EXISTS unnests as a semi-join
// flattening (Section 7 notes EXIST unnests like SOME).
func TestExistsCorrelated(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 15; trial++ {
		e := envRS(rng, 20, 30, 0)
		checkEquivalence(t, e, `
			SELECT R.TAG FROM R
			WHERE EXISTS (SELECT S.Z FROM S WHERE S.V = R.U)`,
			StrategyChain)
	}
}

// TestExistsWithPredicates: p1 and p2 alongside the EXISTS.
func TestExistsWithPredicates(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 15; trial++ {
		e := envRS(rng, 20, 30, 0)
		checkEquivalence(t, e, `
			SELECT R.TAG FROM R
			WHERE R.Y > 4 AND EXISTS (SELECT S.Z FROM S WHERE S.V = R.U AND S.Z < 18)`,
			StrategyChain)
	}
}

// TestNotExistsCorrelated: correlated NOT EXISTS runs as the
// group-minimum anti-join without a linking predicate.
func TestNotExistsCorrelated(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		e := envRS(rng, 20, 30, 0)
		checkEquivalence(t, e, `
			SELECT R.TAG FROM R
			WHERE NOT EXISTS (SELECT S.Z FROM S WHERE S.V = R.U)`,
			StrategyAntiJoin)
	}
}

// TestNotExistsWithInnerPredicate: the inner filter participates in the
// penalty.
func TestNotExistsWithInnerPredicate(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 15; trial++ {
		e := envRS(rng, 20, 30, 0)
		checkEquivalence(t, e, `
			SELECT R.TAG FROM R
			WHERE R.U < 16 AND NOT EXISTS
			  (SELECT S.Z FROM S WHERE S.V = R.U AND S.Z > 10)`,
			StrategyAntiJoin)
	}
}

// TestNotExistsUncorrelated: without correlation the anti-join degenerates
// to a constant penalty over the whole inner relation.
func TestNotExistsUncorrelated(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for trial := 0; trial < 10; trial++ {
		e := envRS(rng, 15, 20, 0)
		checkEquivalence(t, e, `
			SELECT R.TAG FROM R
			WHERE NOT EXISTS (SELECT S.Z FROM S WHERE S.V > 14)`,
			StrategyAntiJoin)
	}
}

// TestExistsInsideChain: EXISTS nested inside an IN chain.
func TestExistsInsideChain(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for trial := 0; trial < 10; trial++ {
		e := envRS(rng, 15, 20, 25)
		checkEquivalence(t, e, `
			SELECT R.TAG FROM R
			WHERE R.Y IN
			  (SELECT S.Z FROM S
			   WHERE S.V = R.U AND EXISTS
			     (SELECT T.P FROM T WHERE T.W = S.V))`,
			StrategyChain)
	}
}

// TestExistsEmptyInner: EXISTS over an always-empty subquery removes all
// outer tuples; NOT EXISTS keeps them at their own degree.
func TestExistsEmptyInner(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	e := envRS(rng, 10, 10, 0)
	checkEquivalence(t, e, `
		SELECT R.TAG FROM R
		WHERE EXISTS (SELECT S.Z FROM S WHERE S.V > 1000)`,
		StrategyChain)
	checkEquivalence(t, e, `
		SELECT R.TAG FROM R
		WHERE NOT EXISTS (SELECT S.Z FROM S WHERE S.V > 1000)`,
		StrategyAntiJoin)
}
