package core

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fsql"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite the golden EXPLAIN plans under testdata/golden")

// goldenQueries holds one representative query per nesting class of the
// paper's taxonomy, plus a flat three-way join exercising the cost-based
// join ordering and a three-level chain exercising the K-level
// flattening (Theorem 8.1).
var goldenQueries = []struct {
	name  string
	query string
}{
	{"n", `SELECT R.K FROM R WHERE R.B IN (SELECT S.B FROM S)`},
	{"j", `SELECT R.K FROM R WHERE R.B IN (SELECT S.B FROM S WHERE S.A = R.A)`},
	{"jx", `SELECT R.K FROM R WHERE R.B NOT IN (SELECT S.B FROM S WHERE S.A = R.A)`},
	{"ja", `SELECT R.K FROM R WHERE R.B >= (SELECT AVG(S.B) FROM S WHERE S.A = R.A)`},
	{"ja-count", `SELECT R.K FROM R WHERE R.K >= (SELECT COUNT(S.B) FROM S WHERE S.A = R.A)`},
	{"jall", `SELECT R.K FROM R WHERE R.B > ALL (SELECT S.B FROM S WHERE S.A = R.A)`},
	{"chain3", `SELECT R.K FROM R WHERE R.B IN (SELECT S.B FROM S WHERE S.A = R.A AND S.B IN (SELECT T.B FROM T WHERE T.C = S.A))`},
	{"flat-join", `SELECT R.K FROM R, T, S WHERE R.A = S.A AND T.B = S.B`},
}

// goldenSession builds a deterministic on-disk database: fixed relations
// R(K, A, B), S(A, B), T(B, C) whose statistics — and therefore every
// cost and cardinality estimate in the plans — are reproducible.
func goldenSession(t *testing.T) *Session {
	t.Helper()
	sess, err := OpenSession(t.TempDir(), 32)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString(`
		CREATE TABLE R (K NUMBER, A NUMBER, B NUMBER);
		CREATE TABLE S (A NUMBER, B NUMBER);
		CREATE TABLE T (B NUMBER, C NUMBER);
	`)
	for i := 0; i < 12; i++ {
		fmt.Fprintf(&b, "INSERT INTO R VALUES (%d, %d, %d);\n", i, i%4, i%6)
	}
	for i := 0; i < 9; i++ {
		fmt.Fprintf(&b, "INSERT INTO S VALUES (%d, %d);\n", i%4, i%6)
	}
	for i := 0; i < 6; i++ {
		fmt.Fprintf(&b, "INSERT INTO T VALUES (%d, %d);\n", i%6, i%2)
	}
	if _, err := sess.ExecScript(b.String()); err != nil {
		t.Fatal(err)
	}
	return sess
}

// TestGoldenPlans snapshots the EXPLAIN output — strategy, applied
// rewrite rules, and the logical plan tree with cost/cardinality
// estimates — for every nesting class. Planner changes surface as
// reviewable diffs of testdata/golden; regenerate with `make golden`.
func TestGoldenPlans(t *testing.T) {
	sess := goldenSession(t)
	for _, gq := range goldenQueries {
		gq := gq
		t.Run(gq.name, func(t *testing.T) {
			st, err := fsql.ParseStatement("EXPLAIN " + gq.query)
			if err != nil {
				t.Fatal(err)
			}
			rel, err := sess.Exec(st)
			if err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			b.WriteString("-- EXPLAIN " + gq.query + "\n")
			for _, tup := range rel.Tuples {
				b.WriteString(tup.Values[0].Str)
				b.WriteByte('\n')
			}
			got := b.String()

			path := filepath.Join("testdata", "golden", gq.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden plan (run `make golden` to regenerate): %v", err)
			}
			if got != string(want) {
				t.Errorf("plan for %s changed (run `make golden` if intended)\n--- got ---\n%s--- want ---\n%s",
					gq.name, got, want)
			}
		})
	}
}
