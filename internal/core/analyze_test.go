package core

import (
	"context"
	"fmt"
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/frel"
	"repro/internal/fsql"
	"repro/internal/storage"
	"repro/internal/workload"
)

// analyzeEnv builds a disk-backed environment with generated R/S
// relations (the bench workload shape) at the given parallelism.
func analyzeEnv(t *testing.T, tuples, workers int) *Env {
	t.Helper()
	mgr := storage.NewManager(t.TempDir(), 16)
	cat := catalog.New(mgr)
	env := NewEnv(cat)
	env.SortMemPages = 8
	env.NLBlockBytes = 7 * storage.PageSize
	env.Parallelism = workers
	for i, name := range []string{"R", "S"} {
		if _, err := workload.Load(cat, workload.Params{
			Name: name, Tuples: tuples, TupleBytes: 128,
			Fanout: 7, Width: 5, Jitter: 0.5, Seed: int64(1 + i),
		}); err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
	}
	return env
}

const analyzeQuery = `SELECT R.K FROM R WHERE R.B IN (SELECT S.B FROM S WHERE S.A = R.A)`

// TestExplainAnalyzeCollectsStats checks that an analyzed run attaches a
// populated operator tree: nonzero rows, comparisons and wall time, a
// merge-join node with Rng(r) observations for every outer tuple, and
// sort nodes carrying run/spill statistics.
func TestExplainAnalyzeCollectsStats(t *testing.T) {
	env := analyzeEnv(t, 400, 1)
	q, err := fsql.ParseQuery(analyzeQuery)
	if err != nil {
		t.Fatal(err)
	}
	rel, es, err := env.EvalUnnestedAnalyze(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if es.Strategy != StrategyChain {
		t.Fatalf("strategy = %v, want %v", es.Strategy, StrategyChain)
	}
	if es.Root == nil {
		t.Fatal("no stats tree collected")
	}
	if es.Answer != rel.Len() {
		t.Fatalf("Answer = %d, want %d", es.Answer, rel.Len())
	}
	snap := es.Plan()
	rows, cmp, deg := snap.Totals()
	if rows == 0 || cmp == 0 || deg == 0 {
		t.Fatalf("zero work counters: rows=%d cmp=%d deg=%d", rows, cmp, deg)
	}
	if es.Wall <= 0 {
		t.Fatalf("non-positive wall time %v", es.Wall)
	}
	mj := snap.Find("merge-join")
	if mj == nil {
		t.Fatalf("no merge-join node in:\n%s", snap.Render())
	}
	if mj.RngCount != 400 {
		t.Fatalf("merge-join RngCount = %d, want one observation per outer tuple (400)", mj.RngCount)
	}
	if mj.Comparisons == 0 || mj.RngMax == 0 {
		t.Fatalf("empty merge-join stats: %+v", mj)
	}
	sortNode := snap.Find("sort")
	if sortNode == nil {
		t.Fatalf("no sort node in:\n%s", snap.Render())
	}
	if sortNode.SortRuns == 0 || sortNode.SpillBytes == 0 {
		t.Fatalf("external sort reported no runs/spill: %+v", sortNode)
	}
	if snap.Find("scan") == nil || snap.Find("project") == nil {
		t.Fatalf("missing scan/project nodes in:\n%s", snap.Render())
	}
}

// TestAnalyzeNaiveRootSynthesis checks that the naive evaluator (which
// has no operator pipeline) still reports a stats root built from the
// global counter deltas.
func TestAnalyzeNaiveRootSynthesis(t *testing.T) {
	env := analyzeEnv(t, 100, 1)
	q, err := fsql.ParseQuery(analyzeQuery)
	if err != nil {
		t.Fatal(err)
	}
	rel, es, err := env.EvalNaiveAnalyze(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if es.Strategy != StrategyNaive {
		t.Fatalf("strategy = %v, want %v", es.Strategy, StrategyNaive)
	}
	if es.Root == nil {
		t.Fatal("no synthesized root")
	}
	snap := es.Plan()
	if snap.RowsOut != int64(rel.Len()) {
		t.Fatalf("RowsOut = %d, want %d", snap.RowsOut, rel.Len())
	}
	if snap.DegreeEvals == 0 {
		t.Fatal("synthesized root has no degree evaluations")
	}
}

// TestAnalyzePrunedCount checks WITH D >= thresholding is accounted.
func TestAnalyzePrunedCount(t *testing.T) {
	env := NewMemEnv()
	r := frel.NewRelation(frel.NewSchema("R",
		frel.Attribute{Name: "K", Kind: frel.KindNumber},
		frel.Attribute{Name: "B", Kind: frel.KindNumber}))
	r.Append(frel.NewTuple(1, frel.Crisp(1), frel.Crisp(10)))
	r.Append(frel.NewTuple(0.4, frel.Crisp(2), frel.Crisp(20)))
	r.Append(frel.NewTuple(0.2, frel.Crisp(3), frel.Crisp(30)))
	env.RegisterRelation("R", r)
	q, err := fsql.ParseQuery(`SELECT R.K FROM R WHERE R.B >= 0 WITH D >= 0.3`)
	if err != nil {
		t.Fatal(err)
	}
	rel, es, err := env.EvalUnnestedAnalyze(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("answer = %d tuples, want 2", rel.Len())
	}
	if es.Pruned != 1 {
		t.Fatalf("Pruned = %d, want 1", es.Pruned)
	}
}

// TestAnalyzeParallelInvariance is the property test of the stats
// contract: serial and parallel executions of the same query must return
// identical answers AND identical aggregated work counters (rows,
// comparisons, degree evaluations, and the full Rng(r) distribution).
func TestAnalyzeParallelInvariance(t *testing.T) {
	q, err := fsql.ParseQuery(analyzeQuery)
	if err != nil {
		t.Fatal(err)
	}
	type run struct {
		label                string
		rel                  *frel.Relation
		rows, cmp, deg       int64
		rngN, rngMin, rngMax int64
		rngSum               float64
	}
	// The stats contract holds across worker counts AND across the three
	// engine modes — batch with compiled kernels (morsel-scheduled), batch
	// interpreted, and tuple-at-a-time: all twelve runs must agree on the
	// answer and on every aggregated work counter.
	var runs []run
	modes := []struct {
		disableBatch, disableKernels bool
	}{{false, false}, {false, true}, {true, true}}
	for _, mode := range modes {
		for _, workers := range []int{1, 2, 4, 8} {
			label := fmt.Sprintf("batch=%v kernels=%v workers=%d",
				!mode.disableBatch, !mode.disableKernels && !mode.disableBatch, workers)
			env := analyzeEnv(t, 600, workers)
			env.DisableBatch = mode.disableBatch
			env.DisableKernels = mode.disableKernels
			rel, es, err := env.EvalUnnestedAnalyze(context.Background(), q)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			snap := es.Plan()
			rows, cmp, deg := snap.Totals()
			mj := snap.Find("merge-join")
			if mj == nil {
				t.Fatalf("%s: no merge-join node in:\n%s", label, snap.Render())
			}
			// Non-vacuity: the kernel legs must actually run compiled
			// kernels, and the other legs must not.
			kt := env.Counters.KernelTuples.Load()
			if kernelsOn := !mode.disableBatch && !mode.disableKernels; kernelsOn && kt == 0 {
				t.Fatalf("%s: compiled kernels did not fire", label)
			} else if !kernelsOn && kt != 0 {
				t.Fatalf("%s: compiled kernels fired (%d tuples) with kernels off", label, kt)
			}
			runs = append(runs, run{
				label: label, rel: rel,
				rows: rows, cmp: cmp, deg: deg,
				rngN: mj.RngCount, rngMin: mj.RngMin, rngMax: mj.RngMax,
				rngSum: mj.RngAvg * float64(mj.RngCount),
			})
		}
	}
	base := runs[0]
	for _, r := range runs[1:] {
		if !base.rel.Equal(r.rel, 1e-9) {
			t.Errorf("%s: answer differs from %s (%d vs %d tuples)",
				r.label, base.label, r.rel.Len(), base.rel.Len())
		}
		if r.rows != base.rows || r.cmp != base.cmp || r.deg != base.deg {
			t.Errorf("%s: work totals differ from %s: rows %d/%d cmp %d/%d deg %d/%d",
				r.label, base.label, r.rows, base.rows, r.cmp, base.cmp, r.deg, base.deg)
		}
		if r.rngN != base.rngN || r.rngMin != base.rngMin || r.rngMax != base.rngMax ||
			math.Abs(r.rngSum-base.rngSum) > 1e-6 {
			t.Errorf("%s: Rng distribution differs from %s: n %d/%d min %d/%d max %d/%d sum %.1f/%.1f",
				r.label, base.label, r.rngN, base.rngN, r.rngMin, base.rngMin, r.rngMax, base.rngMax, r.rngSum, base.rngSum)
		}
	}
}
