package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/fsql"
	"repro/internal/storage"
)

func openTxnSession(t *testing.T) *Session {
	t.Helper()
	sess, err := OpenSessionOptions("db", SessionOptions{BufferPages: 8, FS: storage.NewMemFS()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sess.Close() })
	return sess
}

func countT(t *testing.T, s *Session) int {
	t.Helper()
	answers, err := s.ExecScript(`SELECT T.ID FROM T`)
	if err != nil {
		t.Fatal(err)
	}
	return answers[0].Len()
}

// TestSessionTransactionLifecycle drives BEGIN/COMMIT/ROLLBACK through
// the statement layer: snapshot reads, own-writes visibility, barrier
// rejection, and the control-statement error cases.
func TestSessionTransactionLifecycle(t *testing.T) {
	sess := openTxnSession(t)
	if _, err := sess.ExecScript(`CREATE TABLE T (ID NUMBER); INSERT INTO T VALUES (1) DEGREE 0.5`); err != nil {
		t.Fatal(err)
	}

	// Control statements outside a transaction fail.
	if _, err := sess.ExecScript(`COMMIT`); err == nil {
		t.Error("COMMIT outside a transaction succeeded")
	}
	if _, err := sess.ExecScript(`ROLLBACK`); err == nil {
		t.Error("ROLLBACK outside a transaction succeeded")
	}

	if sess.InTxn() {
		t.Fatal("InTxn before BEGIN")
	}
	if _, err := sess.ExecScript(`BEGIN`); err != nil {
		t.Fatal(err)
	}
	if !sess.InTxn() {
		t.Fatal("InTxn false after BEGIN")
	}
	if _, err := sess.ExecScript(`BEGIN`); err == nil {
		t.Error("nested BEGIN succeeded")
	}

	// Writes are visible to the transaction, not to a forked reader.
	if _, err := sess.ExecScript(`INSERT INTO T VALUES (2)`); err != nil {
		t.Fatal(err)
	}
	if got := countT(t, sess); got != 2 {
		t.Errorf("transaction sees %d rows of its own table, want 2", got)
	}
	reader := sess.Fork()
	if got := countT(t, reader); got != 1 {
		t.Errorf("reader sees %d rows while the transaction is open, want 1", got)
	}

	// Barrier statements are rejected and leave the transaction open.
	for _, barrier := range []string{
		`CREATE TABLE X (A NUMBER)`,
		`DROP TABLE T`,
		`DELETE FROM T WHERE T.ID = 1`,
		`CHECKPOINT`,
	} {
		_, err := sess.ExecScript(barrier)
		if err == nil || !strings.Contains(err.Error(), "inside a transaction") {
			t.Errorf("barrier %q inside a transaction: err = %v", barrier, err)
		}
	}
	if !sess.InTxn() {
		t.Fatal("barrier rejection closed the transaction")
	}

	if _, err := sess.ExecScript(`ROLLBACK`); err != nil {
		t.Fatal(err)
	}
	if sess.InTxn() {
		t.Fatal("InTxn true after ROLLBACK")
	}
	if got := countT(t, sess); got != 1 {
		t.Errorf("%d rows after rollback, want 1", got)
	}

	// Commit publishes to other sessions.
	if _, err := sess.ExecScript(`BEGIN; INSERT INTO T VALUES (3); COMMIT`); err != nil {
		t.Fatal(err)
	}
	if got := countT(t, reader); got != 2 {
		t.Errorf("reader sees %d rows after commit, want 2", got)
	}

	// A read-only transaction commits without ever opening a storage
	// transaction.
	if _, err := sess.ExecScript(`BEGIN; SELECT T.ID FROM T; COMMIT`); err != nil {
		t.Fatal(err)
	}
}

// TestSessionTransactionConflict loses a first-writer-wins race: a
// transaction whose snapshot predates a concurrent commit to the same
// relation must fail its write with ErrTxnConflict and be rolled back.
func TestSessionTransactionConflict(t *testing.T) {
	sess := openTxnSession(t)
	if _, err := sess.ExecScript(`CREATE TABLE T (ID NUMBER)`); err != nil {
		t.Fatal(err)
	}
	loser := sess.Fork()
	if !loser.Forked() {
		t.Fatal("fork not marked as forked")
	}
	if _, err := loser.ExecScript(`BEGIN`); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ExecScript(`INSERT INTO T VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	_, err := loser.ExecScript(`INSERT INTO T VALUES (2)`)
	if !errors.Is(err, ErrTxnConflict) {
		t.Fatalf("conflicting write error = %v, want ErrTxnConflict", err)
	}
	if loser.InTxn() {
		t.Error("conflict left the transaction open")
	}
	// The loser session survives and can retry.
	if _, err := loser.ExecScript(`BEGIN; INSERT INTO T VALUES (2); COMMIT`); err != nil {
		t.Fatalf("retry after conflict: %v", err)
	}
	if got := countT(t, sess); got != 2 {
		t.Errorf("%d rows after retry, want 2", got)
	}
}

// TestSessionTransactionRequiresWAL: explicit transactions have no
// durability story without the log, so BEGIN must refuse.
func TestSessionTransactionRequiresWAL(t *testing.T) {
	sess, err := OpenSessionOptions("db", SessionOptions{BufferPages: 8, FS: storage.NewMemFS(), NoWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.ExecScript(`BEGIN`); err == nil {
		t.Fatal("BEGIN succeeded without a WAL")
	}
}

// TestSessionEvalWrappers pins the snapshot-installing eval wrappers:
// EvalPlan and EvalNaive agree with EvalSelect on the same query, inside
// and outside a transaction.
func TestSessionEvalWrappers(t *testing.T) {
	sess := openTxnSession(t)
	if _, err := sess.ExecScript(`
		CREATE TABLE T (ID NUMBER);
		INSERT INTO T VALUES (1) DEGREE 0.5;
		INSERT INTO T VALUES (2)`); err != nil {
		t.Fatal(err)
	}
	q, err := fsql.ParseQuery(`SELECT T.ID FROM T WHERE T.ID > 1`)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	check := func(when string) {
		t.Helper()
		want, err := sess.EvalSelect(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		p, err := sess.Env.PlanQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		planned, err := sess.EvalPlan(ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		if !want.Equal(planned, 0) {
			t.Errorf("%s: EvalPlan diverges from EvalSelect", when)
		}
		naive, err := sess.EvalNaive(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if !want.Equal(naive, 0) {
			t.Errorf("%s: EvalNaive diverges from EvalSelect", when)
		}
	}

	check("auto-commit")
	if _, err := sess.ExecScript(`BEGIN; INSERT INTO T VALUES (3)`); err != nil {
		t.Fatal(err)
	}
	check("inside a transaction")
	if _, err := sess.ExecScript(`ROLLBACK`); err != nil {
		t.Fatal(err)
	}
}
