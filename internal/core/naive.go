package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/exec"
	"repro/internal/frel"
	"repro/internal/fsql"
	"repro/internal/fuzzy"
	"repro/internal/plan"
)

// EvalNaive evaluates a (possibly nested) Fuzzy SQL query directly by its
// execution semantics (Sections 2.3 and 4-8 of the paper): the inner block
// of every subquery predicate is re-evaluated — re-scanning its relations —
// once for every tuple of the enclosing block. This is the nested-loop
// baseline of the experiments and the semantic reference the unnesting
// rewrites are tested against.
func (e *Env) EvalNaive(q *fsql.Select) (*frel.Relation, error) {
	return e.evalBlock(q, nil)
}

// outerCtx carries the enclosing blocks' (qualified) attributes and the
// current values bound to them, for correlation predicates.
type outerCtx struct {
	schema *frel.Schema
	tuple  frel.Tuple
}

// blockPred evaluates one WHERE conjunct over the block's full evaluation
// tuple (own FROM attributes followed by the enclosing bindings).
type blockPred func(frel.Tuple) (float64, error)

func (e *Env) evalBlock(q *fsql.Select, outer *outerCtx) (*frel.Relation, error) {
	if len(q.From) == 0 {
		return nil, fmt.Errorf("core: query block has no FROM clause")
	}
	if len(q.Items) == 0 {
		return nil, fmt.Errorf("core: query block has no SELECT items")
	}
	srcs := make([]exec.Source, len(q.From))
	for i, tr := range q.From {
		s, err := e.source(tr)
		if err != nil {
			return nil, err
		}
		srcs[i] = s
	}
	// The block schema holds the qualified attributes of the FROM
	// relations; the full schema appends the enclosing bindings.
	blockSchema := &frel.Schema{}
	for _, s := range srcs {
		blockSchema = blockSchema.Join(s.Schema())
	}
	fullSchema := blockSchema.Clone()
	if outer != nil {
		fullSchema.Attrs = append(fullSchema.Attrs, outer.schema.Attrs...)
	}

	preds := make([]blockPred, 0, len(q.Where))
	for _, p := range q.Where {
		bp, err := e.compileBlockPred(fullSchema, p)
		if err != nil {
			return nil, err
		}
		preds = append(preds, bp)
	}

	// Decide between plain projection and the aggregate/GROUPBY path.
	hasAgg := false
	for _, it := range q.Items {
		if it.HasAgg {
			hasAgg = true
		}
	}
	useGroup := hasAgg || len(q.GroupBy) > 0
	if len(q.Having) > 0 && !useGroup {
		return nil, fmt.Errorf("core: HAVING requires GROUPBY or aggregates")
	}

	var satisfied *frel.Relation // aggregate path: all qualifying block tuples
	var out *frel.Relation       // plain path: projected answer
	var projIdx []int
	if useGroup {
		satisfied = frel.NewRelation(blockSchema)
	} else {
		schema, idx, err := fullSchema.Project(itemRefs(q.Items))
		if err != nil {
			return nil, err
		}
		out = frel.NewRelation(schema)
		projIdx = idx
	}

	err := e.forEachCross(srcs, func(vals []frel.Value, d float64) error {
		full := frel.Tuple{Values: vals, D: d}
		if outer != nil {
			full.Values = append(append([]frel.Value{}, vals...), outer.tuple.Values...)
		}
		for _, p := range preds {
			g, err := p(full)
			if err != nil {
				return err
			}
			if g < full.D {
				full.D = g
			}
			if full.D <= 0 {
				return nil
			}
		}
		if useGroup {
			satisfied.Append(frel.Tuple{Values: append([]frel.Value{}, vals...), D: full.D})
		} else {
			out.Append(full.Project(projIdx))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	if useGroup {
		grouped, err := e.groupProject(q.Items, q.GroupBy, q.Having, exec.NewMemSource(satisfied))
		if err != nil {
			return nil, err
		}
		out = grouped
	} else {
		out.DedupMax()
	}
	pruned, err := finalizeAnswer(out, plan.ShapeOf(q))
	if err != nil {
		return nil, err
	}
	if outer == nil {
		e.notePruned(pruned)
	}
	return out, nil
}

// finalizeAnswer applies the answer-shaping clauses captured by the
// plan.Shape IR node: the WITH threshold, ORDER BY (by degree or by an
// attribute under the Definition 3.1 order, with a deterministic
// tie-break on the tuple values), and LIMIT. It returns the number of
// tuples the threshold dropped.
func finalizeAnswer(rel *frel.Relation, q plan.Shape) (int, error) {
	before := rel.Len()
	rel.Threshold(q.With)
	pruned := before - rel.Len()
	if q.OrderBy != "" {
		if strings.EqualFold(q.OrderBy, "D") {
			sortTuples(rel, func(a, b frel.Tuple) int {
				switch {
				case a.D < b.D:
					return -1
				case a.D > b.D:
					return 1
				default:
					return 0
				}
			}, q.OrderDesc)
		} else {
			i, err := rel.Schema.Resolve(q.OrderBy)
			if err != nil {
				return pruned, err
			}
			sortTuples(rel, func(a, b frel.Tuple) int {
				return frel.CompareTotal(a.Values[i], b.Values[i])
			}, q.OrderDesc)
		}
	}
	if q.HasLimit && rel.Len() > q.Limit {
		rel.Tuples = rel.Tuples[:q.Limit]
	}
	return pruned, nil
}

// sortTuples sorts by cmp (optionally reversed), breaking ties by the
// canonical tuple key so LIMIT is deterministic across evaluators.
func sortTuples(rel *frel.Relation, cmp func(a, b frel.Tuple) int, desc bool) {
	sort.SliceStable(rel.Tuples, func(x, y int) bool {
		c := cmp(rel.Tuples[x], rel.Tuples[y])
		if desc {
			c = -c
		}
		if c != 0 {
			return c < 0
		}
		return rel.Tuples[x].Key() < rel.Tuples[y].Key()
	})
}

func itemRefs(items []fsql.SelectItem) []string {
	refs := make([]string, len(items))
	for i, it := range items {
		refs[i] = it.Ref
	}
	return refs
}

// forEachCross enumerates the cross product of the sources, re-opening
// every source after the first once per prefix combination (the naive
// access pattern). The callback receives the concatenated values and the
// fuzzy AND of the participating tuple degrees.
func (e *Env) forEachCross(srcs []exec.Source, fn func(vals []frel.Value, d float64) error) error {
	var rec func(i int, vals []frel.Value, d float64) error
	rec = func(i int, vals []frel.Value, d float64) error {
		if i == len(srcs) {
			return fn(vals, d)
		}
		it, err := srcs[i].Open()
		if err != nil {
			return err
		}
		defer it.Close()
		for {
			t, ok := it.Next()
			if !ok {
				break
			}
			dd := d
			if t.D < dd {
				dd = t.D
			}
			if dd <= 0 {
				continue
			}
			// Full slice expression: each extension owns fresh storage, so
			// sibling iterations cannot clobber one another.
			next := append(vals[:len(vals):len(vals)], t.Values...)
			if err := rec(i+1, next, dd); err != nil {
				return err
			}
		}
		return it.Err()
	}
	return rec(0, nil, 1)
}

// compileBlockPred compiles one WHERE conjunct, including subquery
// predicates, against the full evaluation schema.
func (e *Env) compileBlockPred(fullSchema *frel.Schema, p fsql.Predicate) (blockPred, error) {
	switch p.Kind {
	case fsql.PredCompare, fsql.PredNear:
		pred, err := e.compilePred(fullSchema, p)
		if err != nil {
			return nil, err
		}
		return func(t frel.Tuple) (float64, error) { return pred(t), nil }, nil

	case fsql.PredIn, fsql.PredNotIn, fsql.PredQuant:
		if err := checkSetSubquery(p.Sub); err != nil {
			return nil, err
		}
		leftGet, err := e.subqueryLeft(fullSchema, p)
		if err != nil {
			return nil, err
		}
		sub := p.Sub
		kind := p.Kind
		op := p.Op
		quant := p.Quant
		return func(t frel.Tuple) (float64, error) {
			set, err := e.evalSubquerySet(sub, fullSchema, t)
			if err != nil {
				return 0, err
			}
			e.Counters.DegreeEvals.Add(int64(len(set)))
			v := leftGet(t)
			switch kind {
			case fsql.PredIn:
				return inDegree(v, set), nil
			case fsql.PredNotIn:
				return 1 - inDegree(v, set), nil
			default:
				if quant == fsql.QuantAll {
					return allDegree(op, v, set), nil
				}
				return anyDegree(op, v, set), nil
			}
		}, nil

	case fsql.PredExists, fsql.PredNotExists:
		if err := checkSetSubquery(p.Sub); err != nil {
			return nil, err
		}
		sub := p.Sub
		neg := p.Kind == fsql.PredNotExists
		return func(t frel.Tuple) (float64, error) {
			set, err := e.evalSubquerySet(sub, fullSchema, t)
			if err != nil {
				return 0, err
			}
			// d(EXISTS T) is the possibility that T is non-empty: the
			// maximum membership degree of its values.
			d := 0.0
			for _, m := range set {
				if m.mu > d {
					d = m.mu
				}
			}
			if neg {
				return 1 - d, nil
			}
			return d, nil
		}, nil

	case fsql.PredScalarSub:
		if err := checkScalarSubquery(p.Sub); err != nil {
			return nil, err
		}
		leftGet, err := e.subqueryLeft(fullSchema, p)
		if err != nil {
			return nil, err
		}
		agg := p.Sub.Items[0].Agg
		// Evaluate the stripped subquery (without the aggregate) to obtain
		// the fuzzy value set T(r), then aggregate it (Section 6).
		stripped := *p.Sub
		stripped.Items = []fsql.SelectItem{{Ref: p.Sub.Items[0].Ref}}
		op := p.Op
		return func(t frel.Tuple) (float64, error) {
			set, err := e.evalSubquerySet(&stripped, fullSchema, t)
			if err != nil {
				return 0, err
			}
			members := make([]fuzzy.Member, 0, len(set))
			for _, m := range set {
				if m.val.Kind != frel.KindNumber && agg != fuzzy.AggCount {
					return 0, fmt.Errorf("core: aggregate %v over non-numeric values", agg)
				}
				members = append(members, fuzzy.Member{Value: m.val.Num, Mu: m.mu})
			}
			a, ok := fuzzy.Aggregate(agg, members)
			if !ok {
				return 0, nil // NULL aggregate satisfies nothing
			}
			e.Counters.DegreeEvals.Add(1)
			return frel.Degree(op, leftGet(t), frel.Num(a)), nil
		}, nil

	default:
		return nil, fmt.Errorf("core: unsupported predicate %v", p)
	}
}

// subqueryLeft resolves the left operand of a subquery predicate.
func (e *Env) subqueryLeft(fullSchema *frel.Schema, p fsql.Predicate) (getter, error) {
	info, err := resolveOperand(p.Left, fullSchema)
	if err != nil {
		return nil, err
	}
	// A pending string literal on the left of IN/ALL has no opposite
	// attribute; treat it as a crisp string.
	info, err = e.finishOperand(info, frel.KindString, false)
	if err != nil {
		return nil, err
	}
	return info.get, nil
}

func checkSetSubquery(sub *fsql.Select) error {
	if sub == nil {
		return fmt.Errorf("core: missing subquery")
	}
	if len(sub.Items) != 1 || sub.Items[0].HasAgg {
		return fmt.Errorf("core: IN/quantifier subquery must select exactly one plain attribute")
	}
	return nil
}

func checkScalarSubquery(sub *fsql.Select) error {
	if sub == nil {
		return fmt.Errorf("core: missing subquery")
	}
	if len(sub.Items) != 1 || !sub.Items[0].HasAgg {
		return fmt.Errorf("core: scalar subquery must select exactly one aggregate")
	}
	return nil
}

// evalSubquerySet evaluates the subquery with the current outer binding
// and returns its answer as a fuzzy set of values.
func (e *Env) evalSubquerySet(sub *fsql.Select, fullSchema *frel.Schema, full frel.Tuple) ([]setMember, error) {
	rel, err := e.evalBlock(sub, &outerCtx{schema: fullSchema, tuple: full})
	if err != nil {
		return nil, err
	}
	set := make([]setMember, 0, rel.Len())
	for _, t := range rel.Tuples {
		if t.D <= 0 {
			continue
		}
		set = append(set, setMember{val: t.Values[0], mu: t.D})
	}
	return set, nil
}

// groupProject applies the GROUPBY/aggregate path of a block: group the
// source tuples, compute aggregates, apply HAVING, project the items in
// SELECT order.
func (e *Env) groupProject(items []fsql.SelectItem, groupRefs []string, having []fsql.Predicate, in exec.Source) (*frel.Relation, error) {
	var aggItems []exec.AggItem
	for _, it := range items {
		if it.HasAgg {
			aggItems = append(aggItems, exec.AggItem{Agg: it.Agg, Ref: it.Ref})
		} else {
			found := false
			for _, g := range groupRefs {
				if g == it.Ref {
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("core: non-aggregated item %q must appear in GROUPBY", it.Ref)
			}
		}
	}
	ga, err := exec.NewGroupAgg(in, groupRefs, aggItems)
	if err != nil {
		return nil, err
	}
	var src exec.Source = ga
	for _, h := range having {
		pred, err := e.compilePred(ga.Schema(), h)
		if err != nil {
			return nil, err
		}
		src = exec.NewFilter(src, pred)
	}
	// Reorder output columns to SELECT order.
	idx := make([]int, len(items))
	aggPos := 0
	for i, it := range items {
		if it.HasAgg {
			idx[i] = len(groupRefs) + aggPos
			aggPos++
		} else {
			for j, g := range groupRefs {
				if g == it.Ref {
					idx[i] = j
					break
				}
			}
		}
	}
	rel, err := e.collect(src)
	if err != nil {
		return nil, err
	}
	outSchema := &frel.Schema{}
	for _, j := range idx {
		outSchema.Attrs = append(outSchema.Attrs, rel.Schema.Attrs[j])
	}
	out := frel.NewRelation(outSchema)
	for _, t := range rel.Tuples {
		out.Append(t.Project(idx))
	}
	out.DedupMax()
	return out, nil
}
