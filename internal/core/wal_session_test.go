package core

import (
	"testing"

	"repro/internal/storage"
)

// TestSessionDurability drives the whole WAL stack through the statement
// layer: inserts, CHECKPOINT, a predicate DELETE, and DROP survive a
// close/reopen cycle — and inserts acknowledged after the last checkpoint
// replay from the log alone.
func TestSessionDurability(t *testing.T) {
	fs := storage.NewMemFS()
	open := func() *Session {
		t.Helper()
		s, err := OpenSessionOptions("db", SessionOptions{BufferPages: 8, FS: fs})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	sess := open()
	if !sess.Catalog().Manager().WALEnabled() {
		t.Fatal("WAL should be on by default")
	}
	if _, err := sess.ExecScript(`
		CREATE TABLE W (ID NUMBER, NAME STRING);
		INSERT INTO W VALUES (1, 'a') DEGREE 0.5;
		INSERT INTO W VALUES (2, 'b');
		CREATE TABLE G (ID NUMBER);
		INSERT INTO G VALUES (7);
		CHECKPOINT;
		DELETE FROM W WHERE W.ID = 1;
		DROP TABLE G;
		INSERT INTO W VALUES (3, 'c') DEGREE 0.25;
	`); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	sess2 := open()
	defer sess2.Close()
	if names := sess2.Catalog().Relations(); len(names) != 1 || names[0] != "W" {
		t.Fatalf("relations after reopen: %v", names)
	}
	answers, err := sess2.ExecScript(`SELECT W.NAME FROM W`)
	if err != nil {
		t.Fatal(err)
	}
	got := answers[0]
	if got.Len() != 2 {
		t.Fatalf("answer = %v", got.Tuples)
	}
	degrees := map[string]float64{}
	for _, tup := range got.Tuples {
		degrees[tup.Values[0].Str] = tup.D
	}
	if degrees["b"] != 1 || degrees["c"] != 0.25 {
		t.Errorf("degrees after replay = %v", degrees)
	}
}

// TestSessionNoWAL: the ablation switch falls back to flush-on-insert.
func TestSessionNoWAL(t *testing.T) {
	fs := storage.NewMemFS()
	sess, err := OpenSessionOptions("db", SessionOptions{BufferPages: 8, FS: fs, NoWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if sess.Catalog().Manager().WALEnabled() {
		t.Fatal("NoWAL ignored")
	}
	if _, err := sess.ExecScript(`
		CREATE TABLE W (ID NUMBER);
		INSERT INTO W VALUES (1);
		CHECKPOINT;
	`); err != nil {
		t.Fatal(err)
	}
	h, err := sess.Catalog().Relation("W")
	if err != nil {
		t.Fatal(err)
	}
	if h.NumTuples() != 1 {
		t.Errorf("NumTuples = %d", h.NumTuples())
	}
}
