package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/exec"
	"repro/internal/frel"
	"repro/internal/fsql"
)

// ExecStats is the result of an EXPLAIN ANALYZE evaluation: the chosen
// strategy plus a per-operator tree of runtime measures. The per-operator
// counters are deterministic for serial execution and aggregate exactly
// across parallel partitions — the same query reports identical row and
// comparison totals at any Parallelism setting — so they double as
// correctness oracles for the partitioned operators.
type ExecStats struct {
	Strategy Strategy
	Note     string
	Rules    []string      // planner rewrite rules applied, in order
	Wall     time.Duration // total evaluation wall time
	Answer   int           // answer cardinality (after thresholding)
	Pruned   int64         // rows dropped by WITH D >= thresholding
	PoolHits int64         // buffer-pool page hits during the evaluation
	// PoolMisses counts buffer-pool misses (each one is a physical page
	// read).
	PoolMisses int64
	Root       *exec.OpStats // root of the operator tree (never nil on success)
}

// Plan snapshots the operator tree into plain serializable values.
func (s *ExecStats) Plan() *exec.StatsSnapshot {
	if s.Root == nil {
		return nil
	}
	return s.Root.Snapshot()
}

// Lines renders the stats as text lines: a strategy header, a summary
// line, and one indented line per operator.
func (s *ExecStats) Lines() []string {
	lines := []string{
		fmt.Sprintf("strategy: %s (%s)", s.Strategy, s.Note),
	}
	if len(s.Rules) > 0 {
		lines = append(lines, "rules: "+strings.Join(s.Rules, ", "))
	}
	lines = append(lines,
		fmt.Sprintf("wall: %s  answer: %d tuples  pruned by WITH: %d  pool: %d hits / %d misses",
			s.Wall.Round(time.Microsecond), s.Answer, s.Pruned, s.PoolHits, s.PoolMisses))
	if snap := s.Plan(); snap != nil {
		lines = append(lines, strings.Split(strings.TrimRight(snap.Render(), "\n"), "\n")...)
	}
	return lines
}

// Render returns the Lines joined with newlines.
func (s *ExecStats) Render() string {
	return strings.Join(s.Lines(), "\n") + "\n"
}

// withAnalyze installs es as the active stats collection and returns the
// restore function for the caller to defer.
func (e *Env) withAnalyze(es *ExecStats) func() {
	prev := e.analyze
	e.analyze = es
	return func() { e.analyze = prev }
}

// newNode creates a stats node when an EXPLAIN ANALYZE collection is
// active, nil otherwise (operators treat a nil node as "don't measure").
func (e *Env) newNode(op, label string) *exec.OpStats {
	if e.analyze == nil {
		return nil
	}
	return exec.NewOpStats(op, label)
}

// attach wires node into the stats tree: the nodes of already-wrapped
// inputs become its children, node becomes the current root candidate
// (the outermost operator wrapped last wins), and src is wrapped so its
// rows out and wall time are measured. Identity when node is nil.
func (e *Env) attach(node *exec.OpStats, src exec.Source, inputs ...exec.Source) exec.Source {
	if node == nil {
		return src
	}
	for _, in := range inputs {
		if st, ok := in.(*exec.Stated); ok {
			node.AddChild(st.Node)
		}
	}
	e.analyze.Root = node
	return exec.NewStated(src, node)
}

// stated creates a node and attaches it in one step.
func (e *Env) stated(op, label string, src exec.Source, inputs ...exec.Source) exec.Source {
	return e.attach(e.newNode(op, label), src, inputs...)
}

// notePruned accounts rows dropped by the answer threshold.
func (e *Env) notePruned(n int) {
	if e.analyze != nil && n > 0 {
		e.analyze.Pruned += int64(n)
		if e.analyze.Root != nil {
			e.analyze.Root.Pruned.Add(int64(n))
		}
	}
}

// runAnalyzed executes run with stats collection active, filling es.
func (e *Env) runAnalyzed(es *ExecStats, run func() (*frel.Relation, error)) (*frel.Relation, error) {
	defer e.withAnalyze(es)()
	var reads0, hits0 int64
	if e.cat != nil {
		reads0, _, hits0, _ = e.cat.Manager().Stats().Snapshot()
	}
	cmp0 := e.Counters.Comparisons.Load()
	deg0 := e.Counters.DegreeEvals.Load()
	start := time.Now()
	rel, err := run()
	es.Wall = time.Since(start)
	if err != nil {
		return nil, err
	}
	es.Answer = rel.Len()
	if es.Root == nil {
		// The naive evaluator has no per-operator pipeline to hook; its
		// work is reported as one node from the global counter deltas.
		root := exec.NewOpStats(StrategyNaive.String(), "")
		root.RowsOut.Store(int64(rel.Len()))
		root.Comparisons.Store(e.Counters.Comparisons.Load() - cmp0)
		root.DegreeEvals.Store(e.Counters.DegreeEvals.Load() - deg0)
		root.Pruned.Store(es.Pruned)
		root.WallNanos.Store(es.Wall.Nanoseconds())
		es.Root = root
	}
	if e.cat != nil {
		reads1, _, hits1, _ := e.cat.Manager().Stats().Snapshot()
		es.PoolHits, es.PoolMisses = hits1-hits0, reads1-reads0
		es.Root.PoolHits.Store(es.PoolHits)
		es.Root.PoolMisses.Store(es.PoolMisses)
	}
	return rel, nil
}

// EvalUnnestedAnalyze is EvalUnnestedContext with per-operator statistics
// collection: it evaluates the query via the unnesting rewrites and
// returns the answer together with the populated stats tree.
func (e *Env) EvalUnnestedAnalyze(ctx context.Context, q *fsql.Select) (*frel.Relation, *ExecStats, error) {
	defer e.withContext(ctx)()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	p, err := e.PlanQuery(q)
	if err != nil {
		return nil, nil, err
	}
	es := &ExecStats{Strategy: p.Strategy, Note: p.Note, Rules: p.Rules}
	rel, err := e.runAnalyzed(es, func() (*frel.Relation, error) { return e.execPlan(p) })
	if err != nil {
		return nil, nil, err
	}
	return rel, es, nil
}

// EvalNaiveAnalyze is EvalNaiveContext with statistics collection; the
// naive evaluator reports its work as a single root node.
func (e *Env) EvalNaiveAnalyze(ctx context.Context, q *fsql.Select) (*frel.Relation, *ExecStats, error) {
	defer e.withContext(ctx)()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	es := &ExecStats{Strategy: StrategyNaive, Note: "nested-loop evaluation of the nested form"}
	rel, err := e.runAnalyzed(es, func() (*frel.Relation, error) { return e.EvalNaive(q) })
	if err != nil {
		return nil, nil, err
	}
	return rel, es, nil
}
