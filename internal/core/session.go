package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/frel"
	"repro/internal/fsql"
	"repro/internal/plan"
	"repro/internal/storage"
)

// Session executes Fuzzy SQL statements against a catalog: DDL, inserts,
// term definitions, and queries (evaluated with the unnesting rewrites).
// It is the backend of the fuzzydb shell and of script-driven examples.
type Session struct {
	Env *Env
	cat *catalog.Catalog
	// forked marks a session created by Fork: it shares the catalog and
	// storage with its parent, owns only its evaluation environment, and
	// its Close releases the environment instead of the storage manager.
	forked bool

	// txn is the session's open explicit transaction, if any: the
	// snapshot every statement of the transaction reads under, and the
	// storage transaction opened lazily at the first write.
	txn *sessTxn
}

// sessTxn is the session-level state of one explicit transaction.
type sessTxn struct {
	snap *Snapshot
	stx  *storage.Tx // nil until the first write
}

// NewSession opens a session over the catalog.
func NewSession(cat *catalog.Catalog) *Session {
	return &Session{Env: NewEnv(cat), cat: cat}
}

// Catalog returns the session's catalog.
func (s *Session) Catalog() *catalog.Catalog { return s.cat }

// Fork returns a new session over the same catalog and storage with its
// own evaluation environment (sort caches, counters, knobs copied from
// the parent) and a fresh session-local term scope resolved before the
// shared catalog. Forked sessions are how the server gives each
// connection an isolated session: read-only statements of different forks
// may run concurrently, and DEFINE TERM through a fork stays private to
// it. Closing a fork releases its cached sort temporaries but leaves the
// shared storage open.
func (s *Session) Fork() *Session {
	ns := NewSession(s.cat)
	ns.Env.SortMemPages = s.Env.SortMemPages
	ns.Env.NLBlockBytes = s.Env.NLBlockBytes
	ns.Env.Parallelism = s.Env.Parallelism
	ns.Env.DisableBatch = s.Env.DisableBatch
	ns.Env.DisableJoinReorder = s.Env.DisableJoinReorder
	ns.Env.EnableTermScope()
	ns.forked = true
	return ns
}

// Forked reports whether the session was created by Fork.
func (s *Session) Forked() bool { return s.forked }

// Exec executes one statement. Queries return their answer relation;
// other statements return nil. Statements that change the catalog (DDL
// and term definitions) persist it, so the database survives reopening.
func (s *Session) Exec(stmt fsql.Statement) (*frel.Relation, error) {
	return s.ExecContext(context.Background(), stmt)
}

// ExecContext is Exec observing ctx: cancelling the context aborts a
// running query (its leaf scans check for cancellation periodically) and
// refuses to start further work.
func (s *Session) ExecContext(ctx context.Context, stmt fsql.Statement) (*frel.Relation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	switch st := stmt.(type) {
	case *fsql.Select:
		return s.EvalSelect(ctx, st)

	case *fsql.Explain:
		if st.Analyze {
			_, stats, err := s.EvalAnalyze(ctx, st.Query)
			if err != nil {
				return nil, err
			}
			return planRelation(stats.Lines()), nil
		}
		p, err := s.Env.PlanQuery(st.Query)
		if err != nil {
			return planRelation([]string{fmt.Sprintf("strategy: %s (cannot plan: %s)", StrategyNaive, err)}), nil
		}
		lines := []string{fmt.Sprintf("strategy: %s (%s)", p.Strategy, p.Note)}
		return planRelation(append(lines, p.Lines()...)), nil

	case *fsql.Begin:
		return nil, s.beginTxn()

	case *fsql.Commit:
		return nil, s.commitTxn()

	case *fsql.Rollback:
		return nil, s.rollbackTxn()

	case *fsql.CreateTable:
		if err := s.barrier("CREATE TABLE"); err != nil {
			return nil, err
		}
		schema := frel.NewSchema(st.Name, st.Attrs...)
		if _, err := s.cat.CreateRelation(st.Name, schema); err != nil {
			return nil, err
		}
		return nil, s.cat.Save()

	case *fsql.DropTable:
		if err := s.barrier("DROP TABLE"); err != nil {
			return nil, err
		}
		if err := s.cat.DropRelation(st.Name); err != nil {
			return nil, err
		}
		return nil, s.cat.Save()

	case *fsql.CreateIndex:
		if err := s.barrier("CREATE INDEX"); err != nil {
			return nil, err
		}
		if _, err := s.cat.CreateIndex(st.Name, st.Table, st.Attr); err != nil {
			return nil, err
		}
		return nil, s.cat.Save()

	case *fsql.DropIndex:
		if err := s.barrier("DROP INDEX"); err != nil {
			return nil, err
		}
		if err := s.cat.DropIndex(st.Name); err != nil {
			return nil, err
		}
		return nil, s.cat.Save()

	case *fsql.Insert:
		return nil, s.insert(st)

	case *fsql.Delete:
		if err := s.barrier("DELETE"); err != nil {
			return nil, err
		}
		return nil, s.delete(st)

	case *fsql.Checkpoint:
		if err := s.barrier("CHECKPOINT"); err != nil {
			return nil, err
		}
		return nil, s.cat.Manager().Checkpoint()

	case *fsql.DefineTerm:
		// A forked session defines into its private term scope (the
		// per-connection vocabulary); only the base session writes the
		// shared, persisted dictionary.
		if s.Env.HasTermScope() {
			return nil, s.Env.DefineScopedTerm(st.Name, st.Value)
		}
		if err := s.barrier("DEFINE TERM"); err != nil {
			return nil, err
		}
		if err := s.cat.DefineTerm(st.Name, st.Value); err != nil {
			return nil, err
		}
		return nil, s.cat.Save()

	default:
		return nil, fmt.Errorf("core: unsupported statement %T", stmt)
	}
}

// barrier rejects statements that cannot run inside an explicit
// transaction: they mutate shared structures in place (DDL, DELETE's
// rewrite, the shared term dictionary) or flush state a transaction may
// still roll back (CHECKPOINT). The caller runs them as barrier
// operations between transactions instead.
func (s *Session) barrier(what string) error {
	if s.txn != nil {
		return fmt.Errorf("core: %s cannot run inside a transaction", what)
	}
	return nil
}

// InTxn reports whether the session has an open explicit transaction.
func (s *Session) InTxn() bool { return s.txn != nil }

// beginTxn opens an explicit transaction: every following statement reads
// under the snapshot taken here, until COMMIT or ROLLBACK.
func (s *Session) beginTxn() error {
	if s.txn != nil {
		return fmt.Errorf("core: BEGIN inside an open transaction")
	}
	if !s.cat.Manager().WALEnabled() {
		return fmt.Errorf("core: explicit transactions require the write-ahead log")
	}
	snap := s.Env.takeSnapshot()
	if snap == nil {
		return fmt.Errorf("core: explicit transactions require the write-ahead log")
	}
	s.txn = &sessTxn{snap: snap}
	return nil
}

// commitTxn makes the open transaction's writes durable and visible. A
// read-only transaction (no writes) just releases its snapshot.
func (s *Session) commitTxn() error {
	if s.txn == nil {
		return fmt.Errorf("core: COMMIT outside a transaction")
	}
	t := s.txn
	s.txn = nil
	if t.stx == nil {
		return nil
	}
	return t.stx.Commit()
}

// rollbackTxn discards the open transaction's writes.
func (s *Session) rollbackTxn() error {
	if s.txn == nil {
		return fmt.Errorf("core: ROLLBACK outside a transaction")
	}
	t := s.txn
	s.txn = nil
	if t.stx == nil {
		return nil
	}
	return t.stx.Rollback()
}

// abortTxn rolls back the open transaction after a failed write,
// preserving the original error.
func (s *Session) abortTxn(cause error) error {
	t := s.txn
	s.txn = nil
	if t != nil && t.stx != nil {
		if rbErr := t.stx.Rollback(); rbErr != nil {
			return fmt.Errorf("%w (rollback also failed: %v)", cause, rbErr)
		}
	}
	return cause
}

// readSnapshot returns the snapshot the next read-only evaluation runs
// under: the open transaction's BEGIN-time snapshot, or a fresh committed
// cut per statement in auto-commit mode. Nil (live reads) without
// write-ahead-logged storage.
func (s *Session) readSnapshot() *Snapshot {
	if s.txn != nil {
		return s.txn.snap
	}
	return s.Env.takeSnapshot()
}

// EvalSelect evaluates q under the session's read snapshot (see
// readSnapshot): the scan of every heap relation is bounded to one
// consistent committed cut, so the query never blocks behind a concurrent
// writer and never observes a torn or rolled-back transaction.
func (s *Session) EvalSelect(ctx context.Context, q *fsql.Select) (*frel.Relation, error) {
	defer s.Env.setSnapshot(s.readSnapshot())()
	return s.Env.EvalUnnestedContext(ctx, q)
}

// EvalAnalyze is EvalSelect returning the executor's plan statistics
// (EXPLAIN ANALYZE).
func (s *Session) EvalAnalyze(ctx context.Context, q *fsql.Select) (*frel.Relation, *ExecStats, error) {
	defer s.Env.setSnapshot(s.readSnapshot())()
	return s.Env.EvalUnnestedAnalyze(ctx, q)
}

// EvalPlan executes a previously built plan under the session's read
// snapshot (prepared-statement path).
func (s *Session) EvalPlan(ctx context.Context, p *plan.Plan) (*frel.Relation, error) {
	defer s.Env.setSnapshot(s.readSnapshot())()
	return s.Env.EvalPlanContext(ctx, p)
}

// EvalNaive evaluates q with the naive nested-loop strategy under the
// session's read snapshot (the ablation baseline).
func (s *Session) EvalNaive(ctx context.Context, q *fsql.Select) (*frel.Relation, error) {
	defer s.Env.setSnapshot(s.readSnapshot())()
	return s.Env.EvalNaiveContext(ctx, q)
}

// planRelation packs text lines into a single-column crisp relation, the
// shape EXPLAIN output flows through the shell's relation printer with.
func planRelation(lines []string) *frel.Relation {
	rel := frel.NewRelation(frel.NewSchema("", frel.Attribute{Name: "PLAN", Kind: frel.KindString}))
	for _, ln := range lines {
		rel.Append(frel.NewTuple(1, frel.Str(ln)))
	}
	return rel
}

// ExecScript parses and executes a semicolon-separated script, returning
// the answer of each SELECT in order.
func (s *Session) ExecScript(src string) ([]*frel.Relation, error) {
	return s.ExecScriptContext(context.Background(), src)
}

// ExecScriptContext is ExecScript observing ctx between and during
// statements.
func (s *Session) ExecScriptContext(ctx context.Context, src string) ([]*frel.Relation, error) {
	stmts, err := fsql.ParseScript(src)
	if err != nil {
		return nil, err
	}
	var answers []*frel.Relation
	for _, st := range stmts {
		rel, err := s.ExecContext(ctx, st)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", st, err)
		}
		if rel != nil {
			answers = append(answers, rel)
		}
	}
	return answers, nil
}

func (s *Session) insert(st *fsql.Insert) error {
	h, err := s.cat.Relation(st.Table)
	if err != nil {
		return err
	}
	schema := h.Schema
	if len(st.Values) != len(schema.Attrs) {
		return fmt.Errorf("core: INSERT into %s supplies %d values, schema has %d attributes", st.Table, len(st.Values), len(schema.Attrs))
	}
	vals := make([]frel.Value, len(st.Values))
	for i, opd := range st.Values {
		attr := schema.Attrs[i]
		switch opd.Kind {
		case fsql.OpdNumber:
			if attr.Kind != frel.KindNumber {
				return fmt.Errorf("core: numeric value for string attribute %s", attr.Name)
			}
			vals[i] = frel.Num(opd.Num)
		case fsql.OpdString:
			if attr.Kind == frel.KindString {
				vals[i] = frel.Str(opd.Str)
				break
			}
			term, ok := s.Env.term(opd.Str)
			if !ok {
				return fmt.Errorf("core: %w %q for numeric attribute %s", ErrUnknownTerm, opd.Str, attr.Name)
			}
			vals[i] = frel.Num(term)
		default:
			return fmt.Errorf("core: INSERT values must be literals")
		}
	}
	tuple := frel.NewTuple(st.Degree, vals...)
	idxs := s.cat.IndexesForHeap(h)
	if s.txn != nil {
		return s.txnWrite(st.Table, h, tuple, idxs)
	}
	mgr := s.cat.Manager()
	if mgr.WALEnabled() {
		if len(idxs) == 0 {
			// The append is already durable through the log; pages reach
			// the heap file on eviction or at the next checkpoint.
			return h.Append(tuple)
		}
		// Base tuple and index entries commit as one transaction, so the
		// committed counts of the base heap and every index move together
		// (the consistency indexSorted relies on) and recovery never
		// replays one without the others.
		tx, err := mgr.BeginTxn()
		if err != nil {
			return err
		}
		if err := appendWithIndexes(h, tuple, idxs); err != nil {
			if rbErr := tx.Rollback(); rbErr != nil {
				return fmt.Errorf("%w (rollback also failed: %v)", err, rbErr)
			}
			return err
		}
		return tx.Commit()
	}
	if err := appendWithIndexes(h, tuple, idxs); err != nil {
		return err
	}
	if err := h.Flush(); err != nil {
		return err
	}
	for _, ix := range idxs {
		if err := ix.Heap().Flush(); err != nil {
			return err
		}
	}
	return nil
}

// appendWithIndexes appends a tuple to its relation heap and one entry per
// persistent order index of the relation. Entries record the tuple's
// base-heap position, captured before the append.
func appendWithIndexes(h *storage.HeapFile, tuple frel.Tuple, idxs []*catalog.Index) error {
	tid := uint64(h.NumTuples())
	if err := h.Append(tuple); err != nil {
		return err
	}
	for _, ix := range idxs {
		entry, ok := storage.IndexEntryFor(tuple, ix.Pos(), tid)
		if !ok {
			return fmt.Errorf("core: INSERT: no numeric value for indexed attribute %s", ix.Attr)
		}
		if err := ix.Heap().AppendIndexEntry(entry); err != nil {
			return err
		}
	}
	return nil
}

// txnWrite appends a tuple on behalf of the open transaction. The first
// write to a relation validates the transaction's snapshot against the
// relation's committed state (first-writer-wins conflict detection: a
// concurrent transaction committed to the relation after this
// transaction's BEGIN aborts it) and upgrades the relation to live
// visibility, so later statements of the transaction read their own
// writes.
func (s *Session) txnWrite(name string, h *storage.HeapFile, tuple frel.Tuple, idxs []*catalog.Index) error {
	t := s.txn
	if !t.snap.Live(h) {
		sn, ok := t.snap.Lookup(h)
		if !ok || sn.Version != h.CommittedVersion() {
			return s.abortTxn(fmt.Errorf("core: %w: relation %q changed after the transaction began", ErrTxnConflict, name))
		}
	}
	if t.stx == nil {
		stx, err := s.cat.Manager().BeginTxn()
		if err != nil {
			s.txn = nil
			return err
		}
		t.stx = stx
	}
	// Appends ride the manager's open transaction (t.stx). Index entries
	// go in the same transaction, and the index heaps are upgraded to live
	// visibility alongside the base so the transaction's own sorted reads
	// see a consistent pair.
	if err := appendWithIndexes(h, tuple, idxs); err != nil {
		return s.abortTxn(err)
	}
	t.snap.SetLive(h)
	for _, ix := range idxs {
		t.snap.SetLive(ix.Heap())
	}
	return nil
}

// delete removes the tuples of a relation whose condition is satisfied
// to at least the statement's threshold degree (any positive degree by
// default). The surviving tuples are rewritten in place.
func (s *Session) delete(st *fsql.Delete) error {
	h, err := s.cat.Relation(st.Table)
	if err != nil {
		return err
	}
	var preds []exec.Pred
	for _, p := range st.Where {
		pred, err := s.Env.compilePred(h.Schema, p)
		if err != nil {
			return err
		}
		preds = append(preds, pred)
	}
	rel, err := h.ReadAll()
	if err != nil {
		return err
	}
	var kept []frel.Tuple
	for _, t := range rel.Tuples {
		d := 1.0
		for _, p := range preds {
			if g := p(t); g < d {
				d = g
			}
		}
		// Delete when the condition degree reaches the threshold; the
		// tuple's own membership degree is not part of the condition.
		remove := d > 0 && d >= st.Threshold
		if !remove {
			kept = append(kept, t)
		}
	}
	return s.cat.ReplaceRelationContents(st.Table, kept)
}

// SessionOptions configures OpenSessionOptions.
type SessionOptions struct {
	// BufferPages is the buffer pool capacity in 8 KiB pages.
	BufferPages int
	// NoWAL disables the write-ahead log: no recovery on open and no
	// durability guarantee beyond explicit flushes (the pre-WAL behavior,
	// kept as an ablation switch).
	NoWAL bool
	// GroupCommitWindow is how long a commit waits to share its fsync with
	// concurrent commits; 0 syncs immediately.
	GroupCommitWindow time.Duration
	// FS overrides the file system (fault-injection tests).
	FS storage.FS
}

// OpenSession opens (or creates) the database in dir: an existing
// catalog.json restores the saved relations and terms; a fresh directory
// starts empty with the paper's linguistic-term dictionary preloaded.
// The write-ahead log is enabled: any log left by a crash is replayed
// before the catalog opens.
func OpenSession(dir string, bufferPages int) (*Session, error) {
	return OpenSessionOptions(dir, SessionOptions{BufferPages: bufferPages})
}

// OpenSessionOptions is OpenSession with explicit options.
func OpenSessionOptions(dir string, opts SessionOptions) (*Session, error) {
	mgr, err := storage.NewManagerOptions(dir, storage.ManagerOptions{
		PoolPages:         opts.BufferPages,
		FS:                opts.FS,
		WAL:               !opts.NoWAL,
		GroupCommitWindow: opts.GroupCommitWindow,
	})
	if err != nil {
		return nil, err
	}
	cat, fresh, err := catalog.Open(mgr)
	if err != nil {
		mgr.Close()
		return nil, err
	}
	if fresh {
		cat.DefinePaperTerms()
	}
	return NewSession(cat), nil
}

// Close releases the session's resources. A base session closes the
// shared file handles (heap files and the write-ahead log) without
// checkpointing: committed work replays from the log on the next open. A
// forked session only drops its cached sort temporaries — the shared
// storage stays open for its parent and siblings.
// A session closed with a transaction still open rolls it back first
// (a client that disconnects mid-transaction must not leave its writes
// behind).
func (s *Session) Close() error {
	var first error
	if s.txn != nil {
		first = s.rollbackTxn()
	}
	if s.forked {
		s.Env.ReleaseSortCache()
		return first
	}
	if err := s.cat.Manager().Close(); err != nil && first == nil {
		first = err
	}
	return first
}
