package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/frel"
	"repro/internal/fsql"
	"repro/internal/fuzzy"
)

// randRelation builds a relation with fuzzy numeric attributes A1..Ak over
// small domains (to force collisions) and a string TAG attribute.
func randRelation(name string, n int, rng *rand.Rand, attrs ...string) *frel.Relation {
	var as []frel.Attribute
	for _, a := range attrs {
		as = append(as, frel.Attribute{Name: a, Kind: frel.KindNumber})
	}
	as = append(as, frel.Attribute{Name: "TAG", Kind: frel.KindString})
	r := frel.NewRelation(frel.NewSchema(name, as...))
	for i := 0; i < n; i++ {
		vals := make([]frel.Value, 0, len(as))
		for range attrs {
			c := float64(rng.Intn(12)) * 2
			switch rng.Intn(3) {
			case 0:
				vals = append(vals, frel.Crisp(c))
			case 1:
				vals = append(vals, frel.Num(fuzzy.Tri(c-1, c, c+1)))
			default:
				vals = append(vals, frel.Num(fuzzy.Trap(c-2, c-1, c+1, c+2)))
			}
		}
		vals = append(vals, frel.Str(fmt.Sprintf("t%d", rng.Intn(6))))
		r.Append(frel.NewTuple(rng.Float64()*0.95+0.05, vals...))
	}
	return r
}

// envRS builds an environment with random relations R(U, Y, TAG),
// S(V, Z, TAG) and T(W, P, TAG).
func envRS(rng *rand.Rand, nR, nS, nT int) *Env {
	e := NewMemEnv()
	e.RegisterRelation("R", randRelation("R", nR, rng, "U", "Y"))
	e.RegisterRelation("S", randRelation("S", nS, rng, "V", "Z"))
	e.RegisterRelation("T", randRelation("T", nT, rng, "W", "P"))
	return e
}

// checkEquivalence evaluates the query with both evaluators and requires
// identical fuzzy relations (Theorems 4.1-8.1: same tuples, same degrees).
func checkEquivalence(t *testing.T, e *Env, src string, wantStrategy Strategy) {
	t.Helper()
	q, err := fsql.ParseQuery(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	if plan := e.Explain(q); plan.Strategy != wantStrategy {
		t.Errorf("strategy for %q = %v (%s), want %v", src, plan.Strategy, plan.Note, wantStrategy)
	}
	naive, err := e.EvalNaive(q)
	if err != nil {
		t.Fatalf("EvalNaive(%q): %v", src, err)
	}
	unnested, err := e.EvalUnnested(q)
	if err != nil {
		t.Fatalf("EvalUnnested(%q): %v", src, err)
	}
	if !naive.Equal(unnested, 1e-9) {
		t.Fatalf("equivalence violated for %q:\nnaive (%d tuples): %v\nunnested (%d tuples): %v",
			src, naive.Len(), naive.Tuples, unnested.Len(), unnested.Tuples)
	}
}

// TestTheorem41TypeN: uncorrelated IN subqueries (Query N ≡ Query N′).
func TestTheorem41TypeN(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 15; trial++ {
		e := envRS(rng, 25, 35, 0)
		checkEquivalence(t, e, `
			SELECT R.TAG FROM R
			WHERE R.U > 4 AND R.Y IN (SELECT S.Z FROM S WHERE S.V < 18)`,
			StrategyChain)
	}
}

// TestTheorem42TypeJ: correlated IN subqueries (Query J ≡ Query J′).
func TestTheorem42TypeJ(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 15; trial++ {
		e := envRS(rng, 25, 35, 0)
		checkEquivalence(t, e, `
			SELECT R.TAG FROM R
			WHERE R.Y IN (SELECT S.Z FROM S WHERE S.V = R.U)`,
			StrategyChain)
	}
}

// TestTheorem51TypeJX: NOT IN with correlation (Query JX ≡ Query JX′).
func TestTheorem51TypeJX(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		e := envRS(rng, 20, 30, 0)
		checkEquivalence(t, e, `
			SELECT R.TAG FROM R
			WHERE R.Y NOT IN (SELECT S.Z FROM S WHERE S.V = R.U)`,
			StrategyAntiJoin)
	}
}

// TestTheorem51TypeNX: NOT IN without correlation.
func TestTheorem51TypeNX(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 15; trial++ {
		e := envRS(rng, 20, 30, 0)
		checkEquivalence(t, e, `
			SELECT R.TAG FROM R
			WHERE R.Y NOT IN (SELECT S.Z FROM S WHERE S.V > 8)`,
			StrategyAntiJoin)
	}
}

// TestTheorem51WithOuterAndInnerPredicates: the paper notes the JX result
// holds when p1 and p2 are present.
func TestTheorem51WithOuterAndInnerPredicates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		e := envRS(rng, 20, 30, 0)
		checkEquivalence(t, e, `
			SELECT R.TAG FROM R
			WHERE R.U < 16 AND R.Y NOT IN
			  (SELECT S.Z FROM S WHERE S.V = R.U AND S.Z > 2)`,
			StrategyAntiJoin)
	}
}

// TestTheorem61TypeJA: scalar aggregate subqueries with correlation
// (Query JA ≡ Query JA′), for every aggregate function and several
// comparison operators.
func TestTheorem61TypeJA(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, agg := range []string{"SUM", "AVG", "MIN", "MAX"} {
		for _, op := range []string{">", "<=", "="} {
			src := fmt.Sprintf(`
				SELECT R.TAG FROM R
				WHERE R.Y %s (SELECT %s(S.Z) FROM S WHERE S.V = R.U)`, op, agg)
			for trial := 0; trial < 5; trial++ {
				e := envRS(rng, 20, 30, 0)
				checkEquivalence(t, e, src, StrategyGroupAgg)
			}
		}
	}
}

// TestTheorem61Count: the COUNT case needs the left outer join arm
// (Query COUNT′): outer tuples with empty groups compare against 0.
func TestTheorem61Count(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, op := range []string{"=", ">", "<"} {
		src := fmt.Sprintf(`
			SELECT R.TAG FROM R
			WHERE R.Y %s (SELECT COUNT(S.Z) FROM S WHERE S.V = R.U)`, op)
		for trial := 0; trial < 5; trial++ {
			// Small inner relation: many outer tuples have empty groups.
			e := envRS(rng, 25, 6, 0)
			checkEquivalence(t, e, src, StrategyGroupAgg)
		}
	}
}

// TestTheorem61InnerPredicate: JA with p2 on the inner block.
func TestTheorem61InnerPredicate(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		e := envRS(rng, 20, 30, 0)
		checkEquivalence(t, e, `
			SELECT R.TAG FROM R
			WHERE R.U > 2 AND R.Y < (SELECT MAX(S.Z) FROM S WHERE S.V = R.U AND S.Z < 20)`,
			StrategyGroupAgg)
	}
}

// TestTheorem71TypeJALL: op ALL with correlation (Query JALL ≡ JALL′).
func TestTheorem71TypeJALL(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, op := range []string{"<", ">=", "="} {
		src := fmt.Sprintf(`
			SELECT R.TAG FROM R
			WHERE R.Y %s ALL (SELECT S.Z FROM S WHERE S.V = R.U)`, op)
		for trial := 0; trial < 5; trial++ {
			e := envRS(rng, 20, 30, 0)
			checkEquivalence(t, e, src, StrategyAllAnti)
		}
	}
}

// TestQuantifierAny: ANY/SOME unnest by flattening (Section 7 notes EXIST
// and SOME are unnested similarly).
func TestQuantifierAny(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, q := range []string{"ANY", "SOME"} {
		src := fmt.Sprintf(`
			SELECT R.TAG FROM R
			WHERE R.Y < %s (SELECT S.Z FROM S WHERE S.V = R.U)`, q)
		for trial := 0; trial < 5; trial++ {
			e := envRS(rng, 20, 30, 0)
			checkEquivalence(t, e, src, StrategyChain)
		}
	}
}

// TestTheorem81Chain: 3-level chain queries (Query Q_K ≡ Q′_K) with
// correlation predicates skipping levels, like Query 6 of the paper.
func TestTheorem81Chain(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		e := envRS(rng, 15, 20, 25)
		checkEquivalence(t, e, `
			SELECT R.TAG FROM R
			WHERE R.Y IN
			  (SELECT S.Z FROM S
			   WHERE S.V = R.U AND S.Z IN
			     (SELECT T.P FROM T
			      WHERE T.W = S.V AND T.P = R.Y))`,
			StrategyChain)
	}
}

// TestChainUncorrelatedLevels: a 3-level chain where the innermost block
// is uncorrelated.
func TestChainUncorrelatedLevels(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 10; trial++ {
		e := envRS(rng, 15, 20, 25)
		checkEquivalence(t, e, `
			SELECT R.TAG FROM R
			WHERE R.Y IN
			  (SELECT S.Z FROM S
			   WHERE S.Z IN (SELECT T.P FROM T WHERE T.W < 12))`,
			StrategyChain)
	}
}

// TestUncorrelatedScalar: an aggregate subquery without correlation is
// folded into a constant (Section 6: "no unnesting is needed").
func TestUncorrelatedScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, agg := range []string{"MAX", "COUNT", "AVG"} {
		src := fmt.Sprintf(`
			SELECT R.TAG FROM R
			WHERE R.Y >= (SELECT %s(S.Z) FROM S WHERE S.V < 10)`, agg)
		for trial := 0; trial < 5; trial++ {
			e := envRS(rng, 20, 25, 0)
			checkEquivalence(t, e, src, StrategyUncorrelated)
		}
	}
}

// TestFlatQueriesViaPlanner: already-flat multi-relation queries run
// through the DP join planner and must match the naive cross-product
// evaluation.
func TestFlatQueriesViaPlanner(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 10; trial++ {
		e := envRS(rng, 15, 20, 12)
		checkEquivalence(t, e, `
			SELECT R.TAG, S.TAG FROM R, S
			WHERE R.Y = S.Z AND R.U < 14`,
			StrategyFlat)
		checkEquivalence(t, e, `
			SELECT R.TAG FROM R, S, T
			WHERE R.Y = S.Z AND S.V = T.W AND T.P > 6`,
			StrategyFlat)
	}
}

// TestWithThresholdEquivalence: the WITH clause applies identically.
func TestWithThresholdEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 10; trial++ {
		e := envRS(rng, 20, 30, 0)
		checkEquivalence(t, e, `
			SELECT R.TAG FROM R
			WHERE R.Y IN (SELECT S.Z FROM S WHERE S.V = R.U)
			WITH D >= 0.4`,
			StrategyChain)
	}
}

// TestExample41Unnested: the unnested evaluation of Query 2 reproduces the
// paper's Example 4.1 answer.
func TestExample41Unnested(t *testing.T) {
	e := datingEnv()
	q, err := fsql.ParseQuery(query2)
	if err != nil {
		t.Fatal(err)
	}
	if plan := e.Explain(q); plan.Strategy != StrategyChain {
		t.Errorf("strategy = %v (%s)", plan.Strategy, plan.Note)
	}
	got, err := e.EvalUnnested(q)
	if err != nil {
		t.Fatal(err)
	}
	wantAnswer(t, got, map[string]float64{"Ann": 0.7, "Betty": 0.7})
}

// TestNaiveFallbacks: shapes outside the paper's classes fall back to the
// naive evaluator but still produce answers.
func TestNaiveFallbacks(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	e := envRS(rng, 10, 12, 0)
	cases := []string{
		// Two subquery predicates where one is not chain-compatible.
		`SELECT R.TAG FROM R
		 WHERE R.Y IN (SELECT S.Z FROM S) AND R.U NOT IN (SELECT T.P FROM T)`,
		// ALL nested inside a chain.
		`SELECT R.TAG FROM R
		 WHERE R.Y IN (SELECT S.Z FROM S WHERE S.V < ALL (SELECT T.P FROM T))`,
	}
	e.RegisterRelation("T", randRelation("T", 8, rng, "W", "P"))
	for _, src := range cases {
		q, err := fsql.ParseQuery(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		plan := e.Explain(q)
		if plan.Strategy != StrategyNaive {
			t.Errorf("strategy for %q = %v, want naive fallback", src, plan.Strategy)
		}
		naive, err := e.EvalNaive(q)
		if err != nil {
			t.Fatal(err)
		}
		unnested, err := e.EvalUnnested(q)
		if err != nil {
			t.Fatal(err)
		}
		if !naive.Equal(unnested, 1e-9) {
			t.Errorf("fallback result differs for %q", src)
		}
	}
}

// TestAliasReuseFallsBack: chain flattening requires distinct bindings.
func TestAliasReuseFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	e := NewMemEnv()
	e.RegisterRelation("R", randRelation("R", 8, rng, "U", "Y"))
	q, err := fsql.ParseQuery(`
		SELECT A.TAG FROM R A
		WHERE A.Y IN (SELECT A.U FROM R A WHERE A.Y > 4)`)
	if err != nil {
		t.Fatal(err)
	}
	plan := e.Explain(q)
	if plan.Strategy != StrategyNaive {
		t.Errorf("strategy = %v, want naive (alias reuse)", plan.Strategy)
	}
}

// TestStringLinkFallsBackToNLAnti: NOT IN over string attributes cannot
// use the merge order but is still unnested via the materialized anti-join.
func TestStringLinkNotIn(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	for trial := 0; trial < 10; trial++ {
		e := envRS(rng, 15, 20, 0)
		checkEquivalence(t, e, `
			SELECT R.U FROM R
			WHERE R.TAG NOT IN (SELECT S.TAG FROM S WHERE S.V = R.U)`,
			StrategyAntiJoin)
	}
}

// TestSelectMultipleItems: projections of several attributes dedup as
// value combinations.
func TestSelectMultipleItems(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 10; trial++ {
		e := envRS(rng, 20, 25, 0)
		checkEquivalence(t, e, `
			SELECT R.TAG, R.U FROM R
			WHERE R.Y IN (SELECT S.Z FROM S WHERE S.V = R.U)`,
			StrategyChain)
	}
}

func TestStrategyString(t *testing.T) {
	for s := StrategyFlat; s <= StrategyNaive; s++ {
		if s.String() == "" {
			t.Errorf("empty name for strategy %d", s)
		}
	}
}
