package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/fsql"
)

// qgen generates random nested Fuzzy SQL queries from the supported
// grammar. Each nesting level uses its own relation (R at the top, then
// S, then T) so bindings stay distinct; correlation predicates reference
// any enclosing level.
type qgen struct {
	rng *rand.Rand
}

// relation metadata: name and its two numeric attributes.
var genRels = []struct {
	name string
	a, b string
}{
	{"R", "R.U", "R.Y"},
	{"S", "S.V", "S.Z"},
	{"T", "T.W", "T.P"},
}

func (g *qgen) numLit() string {
	switch g.rng.Intn(3) {
	case 0:
		return fmt.Sprintf("%d", g.rng.Intn(24))
	case 1:
		c := g.rng.Intn(20)
		return fmt.Sprintf("TRI(%d, %d, %d)", c, c+2, c+4)
	default:
		c := g.rng.Intn(18)
		return fmt.Sprintf("TRAP(%d, %d, %d, %d)", c, c+1, c+3, c+4)
	}
}

func (g *qgen) cmpOp() string {
	return []string{"=", "<", "<=", ">", ">=", "<>"}[g.rng.Intn(6)]
}

// numAttr picks a numeric attribute of the given level.
func (g *qgen) numAttr(level int) string {
	if g.rng.Intn(2) == 0 {
		return genRels[level].a
	}
	return genRels[level].b
}

// comparePred builds one comparison predicate for a block at the given
// level; it may correlate with any enclosing level.
func (g *qgen) comparePred(level int) string {
	left := g.numAttr(level)
	switch g.rng.Intn(5) {
	case 0: // against a literal
		return fmt.Sprintf("%s %s %s", left, g.cmpOp(), g.numLit())
	case 1: // against the block's other attribute
		return fmt.Sprintf("%s %s %s", genRels[level].a, g.cmpOp(), genRels[level].b)
	case 2: // string equality on TAG
		return fmt.Sprintf("%s.TAG = 't%d'", genRels[level].name, g.rng.Intn(6))
	case 3: // similarity predicate
		if level == 0 {
			return fmt.Sprintf("%s NEAR %s WITHIN %d", left, g.numLit(), 1+g.rng.Intn(5))
		}
		outer := g.rng.Intn(level)
		return fmt.Sprintf("%s NEAR %s WITHIN %d", left, g.numAttr(outer), 1+g.rng.Intn(5))
	default: // correlation with an enclosing level (or literal at top)
		if level == 0 {
			return fmt.Sprintf("%s %s %s", left, g.cmpOp(), g.numLit())
		}
		outer := g.rng.Intn(level)
		return fmt.Sprintf("%s = %s", left, g.numAttr(outer))
	}
}

// block builds the query block at the given level; maxDepth limits
// further nesting.
func (g *qgen) block(level, maxDepth int) string {
	rel := genRels[level]
	item := rel.b
	if level == 0 {
		item = rel.name + ".TAG"
	}

	var preds []string
	for i := g.rng.Intn(3); i > 0; i-- {
		preds = append(preds, g.comparePred(level))
	}
	if level < maxDepth && g.rng.Intn(10) < 7 {
		preds = append(preds, g.subqueryPred(level, maxDepth))
	}

	var b strings.Builder
	fmt.Fprintf(&b, "SELECT %s FROM %s", item, rel.name)
	if len(preds) > 0 {
		b.WriteString(" WHERE " + strings.Join(preds, " AND "))
	}
	return b.String()
}

// subqueryPred builds one nested predicate whose inner block lives at
// level+1.
func (g *qgen) subqueryPred(level, maxDepth int) string {
	inner := g.block(level+1, maxDepth)
	left := g.numAttr(level)
	switch g.rng.Intn(8) {
	case 0:
		return fmt.Sprintf("%s IN (%s)", left, inner)
	case 1:
		return fmt.Sprintf("%s NOT IN (%s)", left, inner)
	case 2:
		return fmt.Sprintf("%s %s ALL (%s)", left, g.cmpOp(), inner)
	case 3:
		quant := []string{"ANY", "SOME"}[g.rng.Intn(2)]
		return fmt.Sprintf("%s %s %s (%s)", left, g.cmpOp(), quant, inner)
	case 4:
		agg := []string{"COUNT", "SUM", "AVG", "MIN", "MAX"}[g.rng.Intn(5)]
		// Wrap the aggregate around the inner block's selected attribute.
		innerRel := genRels[level+1]
		aggInner := strings.Replace(inner, "SELECT "+innerRel.b, fmt.Sprintf("SELECT %s(%s)", agg, innerRel.b), 1)
		return fmt.Sprintf("%s %s (%s)", left, g.cmpOp(), aggInner)
	case 5:
		return fmt.Sprintf("EXISTS (%s)", inner)
	case 6:
		return fmt.Sprintf("NOT EXISTS (%s)", inner)
	default:
		return fmt.Sprintf("%s IN (%s)", left, inner)
	}
}

// TestFuzzEquivalence generates hundreds of random nested queries over
// random databases and checks that the naive nested evaluation and the
// unnested evaluation return identical fuzzy relations — the paper's
// equivalence criterion, across the whole grammar.
func TestFuzzEquivalence(t *testing.T) {
	iterations := 400
	if testing.Short() {
		iterations = 60
	}
	rng := rand.New(rand.NewSource(99))
	g := &qgen{rng: rng}
	counts := map[Strategy]int{}
	for i := 0; i < iterations; i++ {
		e := envRS(rng, 8+rng.Intn(10), 8+rng.Intn(10), 6+rng.Intn(8))
		src := g.block(0, 1+rng.Intn(2))
		if rng.Intn(5) == 0 {
			src += fmt.Sprintf(" WITH D >= 0.%d", 1+rng.Intn(8))
		}
		if rng.Intn(6) == 0 {
			src += " ORDER BY D DESC"
			if rng.Intn(2) == 0 {
				src += fmt.Sprintf(" LIMIT %d", 1+rng.Intn(6))
			}
		}
		q, err := fsql.ParseQuery(src)
		if err != nil {
			t.Fatalf("generated query does not parse: %q: %v", src, err)
		}
		plan := e.Explain(q)
		counts[plan.Strategy]++
		naive, err := e.EvalNaive(q)
		if err != nil {
			t.Fatalf("naive(%q): %v", src, err)
		}
		unnested, err := e.EvalUnnested(q)
		if err != nil {
			t.Fatalf("unnested(%q): %v", src, err)
		}
		if !naive.Equal(unnested, 1e-9) {
			t.Fatalf("equivalence violated (strategy %v) for\n%s\nnaive: %v\nunnested: %v",
				plan.Strategy, src, naive.Tuples, unnested.Tuples)
		}
	}
	// The generator must actually exercise the rewrites, not just the
	// naive fallback.
	for _, s := range []Strategy{StrategyChain, StrategyAntiJoin, StrategyGroupAgg, StrategyAllAnti} {
		if counts[s] == 0 {
			t.Errorf("fuzzer never produced strategy %v (distribution: %v)", s, counts)
		}
	}
	t.Logf("strategy distribution over %d queries: %v", iterations, counts)
}
