package core

import (
	"math/rand"
	"testing"
)

// TestOrderByDegree: ORDER BY D sorts the answer by membership degree.
func TestOrderByDegree(t *testing.T) {
	e := datingEnv()
	q := mustParse(t, `
		SELECT F.NAME FROM F
		WHERE F.AGE = 'middle age'
		ORDER BY D DESC`)
	rel, err := e.EvalUnnested(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < rel.Len(); i++ {
		if rel.Tuples[i-1].D < rel.Tuples[i].D {
			t.Fatalf("not descending: %v", rel.Tuples)
		}
	}
	q2 := mustParse(t, `
		SELECT F.NAME FROM F
		WHERE F.AGE = 'middle age'
		ORDER BY D`)
	rel2, err := e.EvalUnnested(q2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < rel2.Len(); i++ {
		if rel2.Tuples[i-1].D > rel2.Tuples[i].D {
			t.Fatalf("not ascending: %v", rel2.Tuples)
		}
	}
}

// TestOrderByAttribute: ORDER BY an attribute uses the Definition 3.1
// interval order.
func TestOrderByAttribute(t *testing.T) {
	e := datingEnv()
	q := mustParse(t, `SELECT M.ID, M.AGE FROM M ORDER BY M.AGE`)
	rel, err := e.EvalUnnested(q)
	if err != nil {
		t.Fatal(err)
	}
	ai, _ := rel.Schema.Resolve("AGE")
	for i := 1; i < rel.Len(); i++ {
		if rel.Tuples[i-1].Values[ai].Num.Compare(rel.Tuples[i].Values[ai].Num) > 0 {
			t.Fatalf("not in Definition 3.1 order: %v", rel.Tuples)
		}
	}
}

// TestLimitDeterministicEquivalence: LIMIT with ORDER BY D agrees between
// evaluators thanks to the deterministic tie-break.
func TestLimitDeterministicEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 10; trial++ {
		e := envRS(rng, 20, 25, 0)
		checkEquivalence(t, e, `
			SELECT R.TAG FROM R
			WHERE R.Y IN (SELECT S.Z FROM S WHERE S.V = R.U)
			ORDER BY D DESC LIMIT 3`,
			StrategyChain)
	}
}

func TestLimitTruncates(t *testing.T) {
	e := datingEnv()
	q := mustParse(t, `SELECT F.ID FROM F LIMIT 2`)
	rel, err := e.EvalUnnested(q)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Errorf("LIMIT 2 returned %d tuples", rel.Len())
	}
	q0 := mustParse(t, `SELECT F.ID FROM F LIMIT 0`)
	rel0, err := e.EvalUnnested(q0)
	if err != nil {
		t.Fatal(err)
	}
	if rel0.Len() != 0 {
		t.Errorf("LIMIT 0 returned %d tuples", rel0.Len())
	}
}

func TestOrderByUnknownAttr(t *testing.T) {
	e := datingEnv()
	q := mustParse(t, `SELECT F.ID FROM F ORDER BY F.NOPE`)
	if _, err := e.EvalUnnested(q); err == nil {
		t.Errorf("ORDER BY unknown attribute: want error")
	}
	if _, err := e.EvalNaive(q); err == nil {
		t.Errorf("naive ORDER BY unknown attribute: want error")
	}
}

// TestInnerLimitFallsBackToNaive: a subquery with LIMIT cannot be
// flattened (the limit changes the inner fuzzy set).
func TestInnerLimitFallsBackToNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	e := envRS(rng, 10, 12, 0)
	q := mustParse(t, `
		SELECT R.TAG FROM R
		WHERE R.Y IN (SELECT S.Z FROM S WHERE S.V = R.U ORDER BY D DESC LIMIT 2)`)
	if plan := e.Explain(q); plan.Strategy != StrategyNaive {
		t.Errorf("strategy = %v, want naive fallback", plan.Strategy)
	}
	// Both evaluators still agree (the fallback is the naive evaluation).
	naive, err := e.EvalNaive(q)
	if err != nil {
		t.Fatal(err)
	}
	un, err := e.EvalUnnested(q)
	if err != nil {
		t.Fatal(err)
	}
	if !naive.Equal(un, 1e-9) {
		t.Errorf("fallback mismatch")
	}
}

// TestDeleteStatement: DELETE removes tuples by fuzzy condition.
func TestDeleteStatement(t *testing.T) {
	sess, err := OpenSession(t.TempDir(), 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ExecScript(`
		CREATE TABLE W (ID NUMBER, AGE NUMBER);
		INSERT INTO W VALUES (1, 24);
		INSERT INTO W VALUES (2, 'about 35');
		INSERT INTO W VALUES (3, 61);
	`); err != nil {
		t.Fatal(err)
	}
	// Delete anyone possibly medium young (24 at 0.8, about 35 at 0.5).
	if _, err := sess.ExecScript(`DELETE FROM W WHERE W.AGE = 'medium young'`); err != nil {
		t.Fatal(err)
	}
	answers, err := sess.ExecScript(`SELECT W.ID FROM W`)
	if err != nil {
		t.Fatal(err)
	}
	if answers[0].Len() != 1 || answers[0].Tuples[0].Values[0].Num.A != 3 {
		t.Errorf("survivors = %v", answers[0].Tuples)
	}
}

// TestDeleteWithThreshold: the WITH clause raises the bar for deletion.
func TestDeleteWithThreshold(t *testing.T) {
	sess, err := OpenSession(t.TempDir(), 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ExecScript(`
		CREATE TABLE W (ID NUMBER, AGE NUMBER);
		INSERT INTO W VALUES (1, 24);
		INSERT INTO W VALUES (2, 'about 35');
	`); err != nil {
		t.Fatal(err)
	}
	// Only degree >= 0.7 deletions: 24 (0.8) goes, about 35 (0.5) stays.
	if _, err := sess.ExecScript(`DELETE FROM W WHERE W.AGE = 'medium young' WITH D >= 0.7`); err != nil {
		t.Fatal(err)
	}
	answers, err := sess.ExecScript(`SELECT W.ID FROM W`)
	if err != nil {
		t.Fatal(err)
	}
	if answers[0].Len() != 1 || answers[0].Tuples[0].Values[0].Num.A != 2 {
		t.Errorf("survivors = %v", answers[0].Tuples)
	}
}

// TestDeleteAllAndPersistence: an unconditional DELETE empties the
// relation, and the rewrite survives reopening the database.
func TestDeleteAllAndPersistence(t *testing.T) {
	dir := t.TempDir()
	sess, err := OpenSession(dir, 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ExecScript(`
		CREATE TABLE W (ID NUMBER);
		INSERT INTO W VALUES (1);
		INSERT INTO W VALUES (2);
		DELETE FROM W;
		INSERT INTO W VALUES (3);
	`); err != nil {
		t.Fatal(err)
	}
	sess2, err := OpenSession(dir, 32)
	if err != nil {
		t.Fatal(err)
	}
	answers, err := sess2.ExecScript(`SELECT W.ID FROM W`)
	if err != nil {
		t.Fatal(err)
	}
	if answers[0].Len() != 1 || answers[0].Tuples[0].Values[0].Num.A != 3 {
		t.Errorf("after delete+reopen = %v", answers[0].Tuples)
	}
}

func TestDeleteUnknownRelation(t *testing.T) {
	sess, err := OpenSession(t.TempDir(), 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ExecScript(`DELETE FROM NOPE`); err == nil {
		t.Errorf("want error")
	}
}
