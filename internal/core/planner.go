package core

import (
	"fmt"

	"repro/internal/frel"
	"repro/internal/fsql"
	"repro/internal/plan"
)

// Env implements plan.Catalog, feeding the planner schema and statistics
// resolution without touching the sort-order cache bookkeeping (planning
// must not register cache entries; only execution's source() does).

// BoundSchema resolves a FROM-clause relation reference to its schema
// with the binding (alias) applied as the schema name, mirroring
// source()'s schema derivation.
func (e *Env) BoundSchema(tr fsql.TableRef) (*frel.Schema, error) {
	name, alias := tr.Name, tr.Binding()
	if r, ok := e.mem[relKey(name)]; ok {
		if alias != "" && relKey(alias) != r.Schema.Name {
			return r.Schema.WithName(relKey(alias)), nil
		}
		return r.Schema, nil
	}
	if e.cat != nil {
		h, err := e.cat.Relation(name)
		if err != nil {
			return nil, err
		}
		if alias != "" && relKey(alias) != h.Schema.Name {
			return h.Schema.WithName(relKey(alias)), nil
		}
		return h.Schema, nil
	}
	return nil, fmt.Errorf("core: unknown relation %q", name)
}

// RelStats resolves the planner statistics of a referenced relation;
// in-memory relations maintain them incrementally, heap files build them
// with one scan and maintain them on append (see frel.Relation.Stats and
// storage.HeapFile.Stats). Heap statistics are returned as an independent
// snapshot: the plan holds them across the statement while the single
// writer may keep appending (estimates may include uncommitted rows,
// which only affects costing, never answers).
func (e *Env) RelStats(tr fsql.TableRef) (*frel.TableStats, error) {
	if r, ok := e.mem[relKey(tr.Name)]; ok {
		return r.Stats(), nil
	}
	if e.cat != nil {
		h, err := e.cat.Relation(tr.Name)
		if err != nil {
			return nil, err
		}
		return h.StatsSnapshot()
	}
	return nil, fmt.Errorf("core: unknown relation %q", tr.Name)
}

// HasOrderIndex implements plan.OrderIndexes: it reports whether the
// referenced relation carries a fresh persistent order index on attr, so
// the cost model can drop the sort term of a merge-join input the
// execution path will serve from the index. Freshness uses live counts —
// an index bypassed by a bulk load does not count.
func (e *Env) HasOrderIndex(tr fsql.TableRef, attr string) bool {
	if e.cat == nil {
		return false
	}
	if _, ok := e.mem[relKey(tr.Name)]; ok {
		// A registered in-memory relation shadows the catalog one.
		return false
	}
	sch, err := e.BoundSchema(tr)
	if err != nil {
		return false
	}
	pos, err := sch.Resolve(attr)
	if err != nil {
		return false
	}
	h, err := e.cat.Relation(tr.Name)
	if err != nil {
		return false
	}
	ix := e.cat.IndexForHeap(h, pos)
	return ix != nil && ix.Heap().NumTuples() == h.NumTuples()
}

// PlanQuery runs the three-stage planner over q: Build the logical IR
// from the AST, Rewrite it with the unnesting rules (Sections 4-8), and
// Estimate it with the statistics-fed cost model.
func (e *Env) PlanQuery(q *fsql.Select) (*plan.Plan, error) {
	p, err := plan.Build(q, e)
	if err != nil {
		return nil, err
	}
	if err := p.Rewrite(); err != nil {
		return nil, err
	}
	p.Estimate(plan.Options{DisableJoinReorder: e.DisableJoinReorder})
	return p, nil
}
