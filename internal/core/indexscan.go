package core

import (
	"sort"

	"repro/internal/exec"
	"repro/internal/frel"
	"repro/internal/storage"
)

// Serving sorted scans from persistent order indexes. When a relation
// carries an index on the requested attribute (see catalog.CreateIndex)
// and the index covers exactly the tuples the current evaluation may see,
// the sort order is read from the index instead of being built: one
// bounded scan of the base heap, one bounded scan of the entry file, and
// a permutation — no external sort, no run generation, no merge passes.
// The loaded order is stored in the in-memory side of the sort cache, so
// repeat queries replay it as ordinary cache hits.

// heapCount returns the number of tuples of h visible to the current
// evaluation: the snapshot's committed count under snapshot visibility,
// the live count otherwise. -1 means h is not visible at all (created
// after the snapshot was taken).
func (e *Env) heapCount(h *storage.HeapFile) int64 {
	if e.snap != nil && !e.snap.Live(h) {
		if sn, ok := e.snap.Lookup(h); ok {
			return sn.Tuples
		}
		return -1
	}
	return h.NumTuples()
}

// indexSorted tries to serve src — a plain scan of base heap — sorted on
// attr from a persistent order index. ok is false when no index applies:
// no index on the attribute, or the index does not cover the evaluation's
// visibility horizon (a bulk load bypassed maintenance, or the index was
// created after this transaction's snapshot). The caller then falls back
// to sorting.
//
// Consistency: base-tuple and index-entry appends commit in one storage
// transaction, so the committed counts of both files move together; equal
// counts at the same snapshot cut therefore mean the first n entries are
// exactly the permutation of the first n base tuples. Maintenance appends
// entries in base-heap position order, so the entry file is a sorted run
// followed by an unsorted tail of later inserts; a stable re-sort restores
// the global (support-begin, support-end, position) order because the
// tail's positions all exceed the run's.
func (e *Env) indexSorted(src exec.Source, base *storage.HeapFile, attr string, attrIdx int, total bool) (exec.Source, bool, error) {
	if e.cat == nil {
		return nil, false, nil
	}
	ix := e.cat.IndexForHeap(base, attrIdx)
	if ix == nil {
		return nil, false, nil
	}
	horizon := e.heapCount(base)
	if horizon < 0 || e.heapCount(ix.Heap()) != horizon {
		return nil, false, nil
	}
	entries, err := storage.ReadIndexEntries(ix.Heap(), horizon)
	if err != nil {
		return nil, false, err
	}
	rel, err := e.collect(exec.WithContext(e.ctx, exec.NewHeapSourceAt(base, horizon)))
	if err != nil {
		return nil, false, err
	}
	if int64(len(entries)) != horizon || int64(len(rel.Tuples)) != horizon {
		// A concurrent writer moved the files between the count check and
		// the reads; serve this query from the sort path instead.
		return nil, false, nil
	}
	sorted := true
	for i := 1; i < len(entries); i++ {
		if storage.CompareEntries(entries[i-1], entries[i]) > 0 {
			sorted = false
			break
		}
	}
	if !sorted {
		sort.SliceStable(entries, func(i, j int) bool {
			return storage.CompareEntries(entries[i], entries[j]) < 0
		})
	}
	if total {
		// The tie-broken total order: stable over the (A, D, position)
		// order, so remaining ties stay in base-heap position order —
		// exactly the engine's stable total sort of the relation.
		sort.SliceStable(entries, func(i, j int) bool {
			return storage.CompareEntriesTotal(entries[i], entries[j]) < 0
		})
	}
	tuples := make([]frel.Tuple, len(entries))
	for i, en := range entries {
		if en.Tid >= uint64(len(rel.Tuples)) {
			// Corrupt or foreign entry file: refuse to serve from it.
			return nil, false, nil
		}
		tuples[i] = rel.Tuples[en.Tid]
	}
	keys := frel.SupportKeys(tuples, attrIdx)
	key := sortKey{heap: base, attr: attrIdx, total: total}
	e.storeMemSort(key, &memSortEntry{version: e.heapVersion(base), tuples: tuples, keys: keys})
	e.Counters.IndexHits.Add(1)
	srel := &frel.Relation{Schema: src.Schema(), Tuples: tuples}
	out := exec.Source(exec.WithContext(e.ctx, exec.NewKeyedMemSource(srel, keys)))
	if node := e.newNode("index", attr); node != nil {
		node.IndexHits.Store(1)
		out = e.attach(node, out, src)
	}
	return out, true, nil
}
