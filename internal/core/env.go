// Package core implements the paper's primary contribution: the unnesting
// of nested Fuzzy SQL queries (Sections 4-8) and, as the baseline every
// experiment compares against, the naive nested-loop evaluation of the
// nested execution semantics (Section 2.3).
//
// Two evaluators share one environment:
//
//   - Env.EvalNaive executes a query exactly by its nested semantics: the
//     inner block is re-evaluated for every tuple of the outer block.
//   - Env.EvalUnnested classifies the query (type N, J, JX, JA, JALL, or a
//     K-level chain), rewrites it to the equivalent flat form of the
//     corresponding theorem, and evaluates the flat form with the extended
//     merge-join (falling back to nested-loop joins where the merge order
//     does not apply, and to the naive evaluator for shapes outside the
//     paper's classes).
//
// The equivalence theorems 4.1-8.1 are validated by randomized tests that
// compare the two evaluators tuple-for-tuple and degree-for-degree.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/extsort"
	"repro/internal/frel"
	"repro/internal/fsql"
	"repro/internal/fuzzy"
	"repro/internal/storage"
)

// Env is the evaluation environment: relation and term resolution plus the
// resource knobs (sort memory, nested-loop block size) and work counters.
// ErrUnknownTerm reports a linguistic term that resolves in neither the
// session's term scope nor the shared catalog. The public API maps it to
// a typed error code.
var ErrUnknownTerm = errors.New("unknown linguistic term")

type Env struct {
	cat      *catalog.Catalog
	mem      map[string]*frel.Relation
	memTerms map[string]fuzzy.Trapezoid

	// scopeTerms, when non-nil, is the session-local linguistic-term
	// scope: a per-connection vocabulary layered over the shared catalog,
	// consulted first by term resolution (scope → database). Forked
	// sessions get one; the database's base session resolves directly
	// against the catalog.
	scopeTerms map[string]fuzzy.Trapezoid

	// SortMemPages is the memory budget, in pages, for external sorts
	// (default 256 pages = the paper's 2 MB).
	SortMemPages int
	// NLBlockBytes is the outer block budget of the nested-loop join
	// (default all but one page of SortMemPages, per Section 9).
	NLBlockBytes int

	// DisableJoinReorder turns off the dynamic-programming join ordering
	// and keeps the syntactic relation order (ablation switch).
	DisableJoinReorder bool

	// Parallelism is the worker count for the partitioned merge-join and
	// for sort run generation: 0 means exec.DefaultParallelism()
	// (GOMAXPROCS), 1 forces fully serial execution.
	Parallelism int

	// DisableBatch switches materialization points back to strict
	// tuple-at-a-time iteration (ablation / comparison switch). The
	// default (false) drives plans through the batched operators.
	DisableBatch bool

	// DisableKernels keeps compilation on the interpreted closure
	// evaluators even where a fused degree kernel applies (ablation
	// switch). Kernels require the batch engine, so DisableBatch
	// implies them off.
	DisableKernels bool

	// Sort-order cache state; see sortcache.go for the keying and
	// invalidation contract. All maps are lazily initialized.
	sortMem   map[sortKey]*memSortEntry
	sortHeap  map[sortKey]*heapSortEntry
	memBase   map[*frel.Relation]*frel.Relation
	aliasMemo map[string]*aliasEntry
	heapSeen  map[*storage.HeapFile]bool

	// ctx, when non-nil, is observed by the leaf scans of every evaluation
	// (set for the duration of a *Context evaluation call).
	ctx context.Context

	// snap, when non-nil, is the snapshot the current evaluation reads
	// under: heap scans are bounded to the snapshot's committed tuple
	// counts (see snapshot.go). Set for the duration of one statement (or
	// one transaction's statements); nil means live reads.
	snap *Snapshot

	// analyze, when non-nil, is the EXPLAIN ANALYZE collection the run
	// path attaches per-operator stats nodes to (set for the duration of
	// an *Analyze evaluation call).
	analyze *ExecStats

	// Counters accumulates operator work across evaluations.
	Counters exec.Counters
	// Phases attributes evaluation work to phases; the experiments use it
	// for the paper's Table 3 time breakdown.
	Phases PhaseStats
}

// PhaseStats attributes evaluation work to phases.
type PhaseStats struct {
	SortWall time.Duration // wall time spent sorting (run generation + merging)
	SortIOs  int64         // physical page I/Os performed by sorts
}

// ResetStats clears the accumulated counters and phase statistics.
func (e *Env) ResetStats() {
	e.Counters.Reset()
	e.Phases = PhaseStats{}
}

// NewEnv builds an environment over a catalog (with on-disk relations and
// its linguistic terms).
func NewEnv(cat *catalog.Catalog) *Env {
	e := &Env{cat: cat, mem: make(map[string]*frel.Relation)}
	e.SortMemPages = 256
	e.NLBlockBytes = (e.SortMemPages - 1) * storage.PageSize
	return e
}

// NewMemEnv builds a purely in-memory environment; relations are
// registered with RegisterRelation and terms with DefineTerm.
func NewMemEnv() *Env {
	e := &Env{mem: make(map[string]*frel.Relation)}
	e.SortMemPages = 256
	e.NLBlockBytes = (e.SortMemPages - 1) * storage.PageSize
	return e
}

// RegisterRelation makes an in-memory relation visible to queries under
// the given name (shadowing any catalog relation of that name).
func (e *Env) RegisterRelation(name string, r *frel.Relation) {
	e.mem[relKey(name)] = r
}

// DefineTerm adds a linguistic term. With a catalog, the term is stored
// there; otherwise in the environment.
func (e *Env) DefineTerm(name string, t fuzzy.Trapezoid) error {
	if e.cat != nil {
		return e.cat.DefineTerm(name, t)
	}
	if e.memTerms == nil {
		e.memTerms = make(map[string]fuzzy.Trapezoid)
	}
	if !t.Valid() {
		return fmt.Errorf("core: term %q has invalid distribution %v", name, t)
	}
	e.memTerms[termKey(name)] = t
	return nil
}

func relKey(name string) string {
	out := make([]byte, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		out[i] = c
	}
	return string(out)
}

func termKey(name string) string {
	out := make([]byte, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		out[i] = c
	}
	return string(out)
}

// withContext installs ctx as the evaluation context and returns the
// restore function for the caller to defer.
func (e *Env) withContext(ctx context.Context) func() {
	prev := e.ctx
	e.ctx = ctx
	return func() { e.ctx = prev }
}

// workers resolves the Parallelism knob to an effective worker count.
func (e *Env) workers() int {
	if e.Parallelism == 0 {
		return exec.DefaultParallelism()
	}
	if e.Parallelism < 1 {
		return 1
	}
	return e.Parallelism
}

// kernelsOn reports whether compilation may specialize eligible operators
// into fused degree kernels. Kernels run inside the batch engine, so the
// tuple-at-a-time ablation mode implies them off.
func (e *Env) kernelsOn() bool {
	return !e.DisableKernels && !e.DisableBatch
}

// term resolves a linguistic term: the session-local scope first, then
// the shared catalog (or the in-memory dictionary without a catalog).
func (e *Env) term(name string) (fuzzy.Trapezoid, bool) {
	if e.scopeTerms != nil {
		if t, ok := e.scopeTerms[termKey(name)]; ok {
			return t, true
		}
	}
	if e.cat != nil {
		if t, ok := e.cat.Term(name); ok {
			return t, true
		}
	}
	t, ok := e.memTerms[termKey(name)]
	return t, ok
}

// EnableTermScope gives the environment a session-local term scope;
// subsequent DefineScopedTerm calls land there and shadow same-named
// catalog terms for this environment only.
func (e *Env) EnableTermScope() {
	if e.scopeTerms == nil {
		e.scopeTerms = make(map[string]fuzzy.Trapezoid)
	}
}

// HasTermScope reports whether the environment carries a session-local
// term scope.
func (e *Env) HasTermScope() bool { return e.scopeTerms != nil }

// DefineScopedTerm binds a linguistic term in the session-local scope.
func (e *Env) DefineScopedTerm(name string, t fuzzy.Trapezoid) error {
	if e.scopeTerms == nil {
		return fmt.Errorf("core: environment has no term scope")
	}
	if !t.Valid() {
		return fmt.Errorf("core: term %q has invalid distribution %v", name, t)
	}
	e.scopeTerms[termKey(name)] = t
	return nil
}

// ScopedTerms returns the names of the terms defined in the session-local
// scope (unsorted; nil without a scope).
func (e *Env) ScopedTerms() []string {
	names := make([]string, 0, len(e.scopeTerms))
	for n := range e.scopeTerms {
		names = append(names, n)
	}
	return names
}

// ReleaseSortCache drops the environment's cached sort orders, deleting
// the sorted temporary heap files held by the external side of the cache.
// Sessions forked off a long-running database call it on close so
// per-connection caches do not accumulate temporary files.
func (e *Env) ReleaseSortCache() {
	for _, ent := range e.sortHeap {
		_ = ent.sorted.Drop() // best-effort cleanup
	}
	e.sortHeap = nil
	e.sortMem = nil
	e.memBase = nil
	e.aliasMemo = nil
	e.heapSeen = nil
}

// source resolves a FROM-clause relation reference to an exec.Source
// whose schema carries the binding name (FROM alias). The resolved base
// relation is registered with the sort-order cache bookkeeping so later
// sorts of the scan can be served from cache.
func (e *Env) source(tr fsql.TableRef) (exec.Source, error) {
	name, alias := tr.Name, tr.Binding()
	if r, ok := e.mem[relKey(name)]; ok {
		use := r
		if alias != "" && relKey(alias) != r.Schema.Name {
			use = e.aliasRel(relKey(name), relKey(alias), r)
		}
		e.noteMemBase(use, r)
		return exec.WithContext(e.ctx, exec.NewMemSource(use)), nil
	}
	if e.cat != nil {
		h, err := e.cat.Relation(name)
		if err != nil {
			return nil, err
		}
		e.noteHeap(h)
		var src exec.Source
		if e.snap != nil && !e.snap.Live(h) {
			sn, ok := e.snap.Lookup(h)
			if !ok {
				// The name resolves to a heap created (or swapped in by a
				// DELETE rewrite) after the snapshot was taken: the
				// transaction cannot see a consistent state of it.
				return nil, fmt.Errorf("core: %w: relation %q changed after the transaction began", ErrTxnConflict, name)
			}
			src = exec.NewHeapSourceAt(h, sn.Tuples)
		} else {
			src = exec.NewHeapSource(h)
		}
		if alias != "" && relKey(alias) != h.Schema.Name {
			src = &renameSource{Source: src, schema: h.Schema.WithName(relKey(alias))}
		}
		return exec.WithContext(e.ctx, src), nil
	}
	return nil, fmt.Errorf("core: unknown relation %q", name)
}

// collect materializes src into an in-memory relation, batched unless the
// ablation switch forces tuple-at-a-time.
func (e *Env) collect(src exec.Source) (*frel.Relation, error) {
	if e.DisableBatch {
		return exec.Collect(src)
	}
	return exec.CollectBatched(src)
}

// spill materializes src into a temporary heap file, batched unless the
// ablation switch forces tuple-at-a-time.
func (e *Env) spill(mgr *storage.Manager, src exec.Source) (*storage.HeapFile, error) {
	if e.DisableBatch {
		return exec.Spill(mgr, src)
	}
	return exec.SpillBatched(mgr, src)
}

// shiftSource adds a constant distribution to one numeric attribute of
// every tuple — the tolerance-folding transform of NEAR correlations.
type shiftSource struct {
	src   exec.Source
	idx   int
	shift fuzzy.Trapezoid
}

func newShiftSource(src exec.Source, attr string, shift fuzzy.Trapezoid) (exec.Source, error) {
	i, err := src.Schema().Resolve(attr)
	if err != nil {
		return nil, err
	}
	if src.Schema().Attrs[i].Kind != frel.KindNumber {
		return nil, fmt.Errorf("core: cannot shift non-numeric attribute %s", attr)
	}
	return &shiftSource{src: src, idx: i, shift: shift}, nil
}

func (s *shiftSource) Schema() *frel.Schema { return s.src.Schema() }

func (s *shiftSource) Open() (exec.Iterator, error) {
	it, err := s.src.Open()
	if err != nil {
		return nil, err
	}
	return &shiftIterator{in: it, idx: s.idx, shift: s.shift}, nil
}

type shiftIterator struct {
	in    exec.Iterator
	idx   int
	shift fuzzy.Trapezoid
}

func (it *shiftIterator) Next() (frel.Tuple, bool) {
	t, ok := it.in.Next()
	if !ok {
		return frel.Tuple{}, false
	}
	vals := append([]frel.Value{}, t.Values...)
	vals[it.idx] = frel.Num(fuzzy.Add(vals[it.idx].Num, it.shift))
	return frel.Tuple{Values: vals, D: t.D}, true
}

func (it *shiftIterator) Err() error { return it.in.Err() }
func (it *shiftIterator) Close()     { it.in.Close() }

// OpenBatch implements exec.BatchSource: the shifted values of each batch
// are written into one fresh arena (a single allocation per batch instead
// of one per tuple).
func (s *shiftSource) OpenBatch() (exec.BatchIterator, error) {
	in, err := exec.OpenBatches(s.src)
	if err != nil {
		return nil, err
	}
	return &shiftBatchIterator{in: in, idx: s.idx, shift: s.shift}, nil
}

type shiftBatchIterator struct {
	in    exec.BatchIterator
	idx   int
	shift fuzzy.Trapezoid
	out   []frel.Tuple
}

func (it *shiftBatchIterator) NextBatch() ([]frel.Tuple, bool) {
	b, ok := it.in.NextBatch()
	if !ok {
		return nil, false
	}
	it.out = it.out[:0]
	arena := make([]frel.Value, 0, len(b)*len(b[0].Values))
	for _, t := range b {
		off := len(arena)
		arena = append(arena, t.Values...)
		vals := arena[off:len(arena):len(arena)]
		vals[it.idx] = frel.Num(fuzzy.Add(vals[it.idx].Num, it.shift))
		it.out = append(it.out, frel.Tuple{Values: vals, D: t.D})
	}
	return it.out, true
}

func (it *shiftBatchIterator) Err() error { return it.in.Err() }
func (it *shiftBatchIterator) Close()     { it.in.Close() }

// renameSource rebinds a source's schema name (FROM alias).
type renameSource struct {
	exec.Source
	schema *frel.Schema
}

func (r *renameSource) Schema() *frel.Schema { return r.schema }

// OpenBatch implements exec.BatchSource by forwarding to the wrapped
// source (renaming does not touch tuples, so keys pass through too).
func (r *renameSource) OpenBatch() (exec.BatchIterator, error) {
	return exec.OpenBatches(r.Source)
}

// external reports whether the environment has disk-backed storage for
// spills and external sorts.
func (e *Env) external() bool { return e.cat != nil }

// sortSource returns src sorted on attr: externally (through temp heap
// files, charging I/O) when a storage manager is available, in memory
// otherwise. total selects the CompareTotal tie-broken order needed by the
// group-aggregate join. Plain scans of base relations go through the
// sort-order cache (see sortcache.go): a repeat sort of an unmodified
// relation is served from the cached permutation without re-sorting, and a
// cold sort of a relation carrying a persistent order index on the
// attribute is served from the index (see indexscan.go) without sorting at
// all.
func (e *Env) sortSource(src exec.Source, attr string, total bool) (exec.Source, error) {
	var less extsort.Less
	var err error
	if total {
		less, err = extsort.ByAttrTotal(src.Schema(), attr)
	} else {
		less, err = extsort.ByAttr(src.Schema(), attr)
	}
	if err != nil {
		return nil, err
	}
	attrIdx, err := src.Schema().Resolve(attr)
	if err != nil {
		return nil, err
	}
	memSrc, memBase, heapBase := e.cacheableBase(src)
	if memBase != nil {
		return e.memSort(src, memSrc, memBase, attr, attrIdx, total, less)
	}
	if e.external() {
		if heapBase != nil {
			key := sortKey{heap: heapBase, attr: attrIdx, total: total}
			// An order loaded from a persistent index lives in the memory
			// side of the cache; repeat sorts of the unmodified heap replay
			// it without touching the index again.
			if ent, ok := e.sortMem[key]; ok && ent.version == e.heapVersion(heapBase) {
				e.Counters.SortCacheHits.Add(1)
				rel := &frel.Relation{Schema: src.Schema(), Tuples: ent.tuples}
				out := exec.WithContext(e.ctx, exec.NewKeyedMemSource(rel, ent.keys))
				if node := e.newNode("sort", attr); node != nil {
					node.CacheHits.Store(1)
					out = e.attach(node, out, src)
				}
				return out, nil
			}
			if ent, ok := e.sortHeap[key]; ok && ent.version == e.heapVersion(heapBase) {
				e.Counters.SortCacheHits.Add(1)
				var out exec.Source = &renameSource{Source: exec.NewHeapSource(ent.sorted), schema: src.Schema()}
				out = exec.WithContext(e.ctx, out)
				if node := e.newNode("sort", attr); node != nil {
					node.CacheHits.Store(1)
					out = e.attach(node, out, src)
				}
				return out, nil
			}
			if out, ok, err := e.indexSorted(src, heapBase, attr, attrIdx, total); err != nil {
				return nil, err
			} else if ok {
				return out, nil
			}
		}
		mgr := e.cat.Manager()
		sorter := extsort.NewSorter(mgr, e.SortMemPages).WithParallelism(e.workers())
		var sorted *storage.HeapFile
		var st extsort.Stats
		var elapsed time.Duration
		if heapBase != nil {
			// A plain base-heap scan needs no pre-sort spill — the spill
			// would be a verbatim copy of the heap — so the sorter reads the
			// base directly, bounded by the scan's snapshot limit. This
			// halves the write traffic of a cold sort.
			start := time.Now()
			iosBefore := mgr.Stats().IO()
			sorted, st, err = sorter.SortPrefix(heapBase, heapScanLimit(src), less)
			if err != nil {
				return nil, err
			}
			elapsed = time.Since(start)
			e.Phases.SortIOs += mgr.Stats().IO() - iosBefore
		} else {
			tmp, err := e.spill(mgr, src)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			iosBefore := mgr.Stats().IO()
			sorted, st, err = sorter.Sort(tmp, less)
			if err != nil {
				return nil, err
			}
			elapsed = time.Since(start)
			e.Phases.SortIOs += mgr.Stats().IO() - iosBefore
			if derr := tmp.Drop(); derr != nil {
				return nil, derr
			}
		}
		e.Phases.SortWall += elapsed
		e.Counters.Comparisons.Add(st.Comparisons)
		miss := heapBase != nil
		if miss {
			key := sortKey{heap: heapBase, attr: attrIdx, total: total}
			// Keyed by the version the evaluation saw: a bounded snapshot
			// scan's sorted copy must only serve readers of that snapshot
			// state, never the live (possibly further-appended) heap.
			e.storeHeapSort(key, &heapSortEntry{version: e.heapVersion(heapBase), sorted: sorted})
			e.Counters.SortCacheMisses.Add(1)
		}
		out := exec.Source(exec.NewHeapSource(sorted))
		if heapBase != nil {
			// The directly sorted heap carries the base schema; restore the
			// source's (possibly aliased) schema, as the cache-hit path does.
			out = &renameSource{Source: out, schema: src.Schema()}
		}
		if node := e.newNode("sort", attr); node != nil {
			node.SortRuns.Store(int64(st.Runs))
			node.MergePasses.Store(int64(st.MergePasses))
			node.SpillBytes.Store(st.SpillBytes)
			node.Comparisons.Store(st.Comparisons)
			node.WallNanos.Store(elapsed.Nanoseconds())
			if miss {
				node.CacheMisses.Store(1)
			}
			out = e.attach(node, out, src)
		}
		return out, nil
	}
	rel, err := e.collect(src)
	if err != nil {
		return nil, err
	}
	rel = rel.Clone()
	start := time.Now()
	cmp := extsort.SortRelation(rel, less)
	e.Counters.Comparisons.Add(cmp)
	elapsed := time.Since(start)
	e.Phases.SortWall += elapsed
	out := exec.Source(exec.NewMemSource(rel))
	if node := e.newNode("sort", attr); node != nil {
		node.Comparisons.Store(cmp)
		node.WallNanos.Store(elapsed.Nanoseconds())
		out = e.attach(node, out, src)
	}
	return out, nil
}
