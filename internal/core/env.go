// Package core implements the paper's primary contribution: the unnesting
// of nested Fuzzy SQL queries (Sections 4-8) and, as the baseline every
// experiment compares against, the naive nested-loop evaluation of the
// nested execution semantics (Section 2.3).
//
// Two evaluators share one environment:
//
//   - Env.EvalNaive executes a query exactly by its nested semantics: the
//     inner block is re-evaluated for every tuple of the outer block.
//   - Env.EvalUnnested classifies the query (type N, J, JX, JA, JALL, or a
//     K-level chain), rewrites it to the equivalent flat form of the
//     corresponding theorem, and evaluates the flat form with the extended
//     merge-join (falling back to nested-loop joins where the merge order
//     does not apply, and to the naive evaluator for shapes outside the
//     paper's classes).
//
// The equivalence theorems 4.1-8.1 are validated by randomized tests that
// compare the two evaluators tuple-for-tuple and degree-for-degree.
package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/extsort"
	"repro/internal/frel"
	"repro/internal/fsql"
	"repro/internal/fuzzy"
	"repro/internal/storage"
)

// Env is the evaluation environment: relation and term resolution plus the
// resource knobs (sort memory, nested-loop block size) and work counters.
type Env struct {
	cat      *catalog.Catalog
	mem      map[string]*frel.Relation
	memTerms map[string]fuzzy.Trapezoid

	// SortMemPages is the memory budget, in pages, for external sorts
	// (default 256 pages = the paper's 2 MB).
	SortMemPages int
	// NLBlockBytes is the outer block budget of the nested-loop join
	// (default all but one page of SortMemPages, per Section 9).
	NLBlockBytes int

	// DisableJoinReorder turns off the dynamic-programming join ordering
	// and keeps the syntactic relation order (ablation switch).
	DisableJoinReorder bool

	// Parallelism is the worker count for the partitioned merge-join and
	// for sort run generation: 0 means exec.DefaultParallelism()
	// (GOMAXPROCS), 1 forces fully serial execution.
	Parallelism int

	// ctx, when non-nil, is observed by the leaf scans of every evaluation
	// (set for the duration of a *Context evaluation call).
	ctx context.Context

	// analyze, when non-nil, is the EXPLAIN ANALYZE collection the run
	// path attaches per-operator stats nodes to (set for the duration of
	// an *Analyze evaluation call).
	analyze *ExecStats

	// Counters accumulates operator work across evaluations.
	Counters exec.Counters
	// Phases attributes evaluation work to phases; the experiments use it
	// for the paper's Table 3 time breakdown.
	Phases PhaseStats
}

// PhaseStats attributes evaluation work to phases.
type PhaseStats struct {
	SortWall time.Duration // wall time spent sorting (run generation + merging)
	SortIOs  int64         // physical page I/Os performed by sorts
}

// ResetStats clears the accumulated counters and phase statistics.
func (e *Env) ResetStats() {
	e.Counters.Reset()
	e.Phases = PhaseStats{}
}

// NewEnv builds an environment over a catalog (with on-disk relations and
// its linguistic terms).
func NewEnv(cat *catalog.Catalog) *Env {
	e := &Env{cat: cat, mem: make(map[string]*frel.Relation)}
	e.SortMemPages = 256
	e.NLBlockBytes = (e.SortMemPages - 1) * storage.PageSize
	return e
}

// NewMemEnv builds a purely in-memory environment; relations are
// registered with RegisterRelation and terms with DefineTerm.
func NewMemEnv() *Env {
	e := &Env{mem: make(map[string]*frel.Relation)}
	e.SortMemPages = 256
	e.NLBlockBytes = (e.SortMemPages - 1) * storage.PageSize
	return e
}

// RegisterRelation makes an in-memory relation visible to queries under
// the given name (shadowing any catalog relation of that name).
func (e *Env) RegisterRelation(name string, r *frel.Relation) {
	e.mem[relKey(name)] = r
}

// DefineTerm adds a linguistic term. With a catalog, the term is stored
// there; otherwise in the environment.
func (e *Env) DefineTerm(name string, t fuzzy.Trapezoid) error {
	if e.cat != nil {
		return e.cat.DefineTerm(name, t)
	}
	if e.memTerms == nil {
		e.memTerms = make(map[string]fuzzy.Trapezoid)
	}
	if !t.Valid() {
		return fmt.Errorf("core: term %q has invalid distribution %v", name, t)
	}
	e.memTerms[termKey(name)] = t
	return nil
}

func relKey(name string) string {
	out := make([]byte, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		out[i] = c
	}
	return string(out)
}

func termKey(name string) string {
	out := make([]byte, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		out[i] = c
	}
	return string(out)
}

// withContext installs ctx as the evaluation context and returns the
// restore function for the caller to defer.
func (e *Env) withContext(ctx context.Context) func() {
	prev := e.ctx
	e.ctx = ctx
	return func() { e.ctx = prev }
}

// workers resolves the Parallelism knob to an effective worker count.
func (e *Env) workers() int {
	if e.Parallelism == 0 {
		return exec.DefaultParallelism()
	}
	if e.Parallelism < 1 {
		return 1
	}
	return e.Parallelism
}

// term resolves a linguistic term.
func (e *Env) term(name string) (fuzzy.Trapezoid, bool) {
	if e.cat != nil {
		if t, ok := e.cat.Term(name); ok {
			return t, true
		}
	}
	t, ok := e.memTerms[termKey(name)]
	return t, ok
}

// source resolves a FROM-clause relation reference to an exec.Source
// whose schema carries the binding name (FROM alias).
func (e *Env) source(tr fsql.TableRef) (exec.Source, error) {
	name, alias := tr.Name, tr.Binding()
	if r, ok := e.mem[relKey(name)]; ok {
		if alias != "" && relKey(alias) != r.Schema.Name {
			aliased := &frel.Relation{Schema: r.Schema.WithName(relKey(alias)), Tuples: r.Tuples}
			return exec.WithContext(e.ctx, exec.NewMemSource(aliased)), nil
		}
		return exec.WithContext(e.ctx, exec.NewMemSource(r)), nil
	}
	if e.cat != nil {
		h, err := e.cat.Relation(name)
		if err != nil {
			return nil, err
		}
		var src exec.Source = exec.NewHeapSource(h)
		if alias != "" && relKey(alias) != h.Schema.Name {
			src = &renameSource{Source: src, schema: h.Schema.WithName(relKey(alias))}
		}
		return exec.WithContext(e.ctx, src), nil
	}
	return nil, fmt.Errorf("core: unknown relation %q", name)
}

// shiftSource adds a constant distribution to one numeric attribute of
// every tuple — the tolerance-folding transform of NEAR correlations.
type shiftSource struct {
	src   exec.Source
	idx   int
	shift fuzzy.Trapezoid
}

func newShiftSource(src exec.Source, attr string, shift fuzzy.Trapezoid) (exec.Source, error) {
	i, err := src.Schema().Resolve(attr)
	if err != nil {
		return nil, err
	}
	if src.Schema().Attrs[i].Kind != frel.KindNumber {
		return nil, fmt.Errorf("core: cannot shift non-numeric attribute %s", attr)
	}
	return &shiftSource{src: src, idx: i, shift: shift}, nil
}

func (s *shiftSource) Schema() *frel.Schema { return s.src.Schema() }

func (s *shiftSource) Open() (exec.Iterator, error) {
	it, err := s.src.Open()
	if err != nil {
		return nil, err
	}
	return &shiftIterator{in: it, idx: s.idx, shift: s.shift}, nil
}

type shiftIterator struct {
	in    exec.Iterator
	idx   int
	shift fuzzy.Trapezoid
}

func (it *shiftIterator) Next() (frel.Tuple, bool) {
	t, ok := it.in.Next()
	if !ok {
		return frel.Tuple{}, false
	}
	vals := append([]frel.Value{}, t.Values...)
	vals[it.idx] = frel.Num(fuzzy.Add(vals[it.idx].Num, it.shift))
	return frel.Tuple{Values: vals, D: t.D}, true
}

func (it *shiftIterator) Err() error { return it.in.Err() }
func (it *shiftIterator) Close()     { it.in.Close() }

// renameSource rebinds a source's schema name (FROM alias).
type renameSource struct {
	exec.Source
	schema *frel.Schema
}

func (r *renameSource) Schema() *frel.Schema { return r.schema }

// external reports whether the environment has disk-backed storage for
// spills and external sorts.
func (e *Env) external() bool { return e.cat != nil }

// sortSource returns src sorted on attr: externally (through temp heap
// files, charging I/O) when a storage manager is available, in memory
// otherwise. total selects the CompareTotal tie-broken order needed by the
// group-aggregate join.
func (e *Env) sortSource(src exec.Source, attr string, total bool) (exec.Source, error) {
	var less extsort.Less
	var err error
	if total {
		less, err = extsort.ByAttrTotal(src.Schema(), attr)
	} else {
		less, err = extsort.ByAttr(src.Schema(), attr)
	}
	if err != nil {
		return nil, err
	}
	if e.external() {
		mgr := e.cat.Manager()
		tmp, err := exec.Spill(mgr, src)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		iosBefore := mgr.Stats().IO()
		sorter := extsort.NewSorter(mgr, e.SortMemPages).WithParallelism(e.workers())
		sorted, st, err := sorter.Sort(tmp, less)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		e.Phases.SortWall += elapsed
		e.Phases.SortIOs += mgr.Stats().IO() - iosBefore
		e.Counters.Comparisons.Add(st.Comparisons)
		if derr := tmp.Drop(); derr != nil {
			return nil, derr
		}
		out := exec.Source(exec.NewHeapSource(sorted))
		if node := e.newNode("sort", attr); node != nil {
			node.SortRuns.Store(int64(st.Runs))
			node.MergePasses.Store(int64(st.MergePasses))
			node.SpillBytes.Store(st.SpillBytes)
			node.Comparisons.Store(st.Comparisons)
			node.WallNanos.Store(elapsed.Nanoseconds())
			out = e.attach(node, out, src)
		}
		return out, nil
	}
	rel, err := exec.Collect(src)
	if err != nil {
		return nil, err
	}
	rel = rel.Clone()
	start := time.Now()
	cmp := extsort.SortRelation(rel, less)
	e.Counters.Comparisons.Add(cmp)
	elapsed := time.Since(start)
	e.Phases.SortWall += elapsed
	out := exec.Source(exec.NewMemSource(rel))
	if node := e.newNode("sort", attr); node != nil {
		node.Comparisons.Store(cmp)
		node.WallNanos.Store(elapsed.Nanoseconds())
		out = e.attach(node, out, src)
	}
	return out, nil
}
