package core

import (
	"fmt"

	"repro/internal/frel"
	"repro/internal/fsql"
	"repro/internal/kernel"
)

// This file bridges the planner's predicate IR to the compiled degree
// kernels of internal/kernel: it resolves operands exactly like the
// interpreted compilers in operand.go (same schemas, same linguistic-term
// settlement, same errors) and then emits the flat column/constant step
// form the kernel compiler specializes. Any predicate the bridge cannot
// express makes the caller fall back to the interpreted closures, so
// kernels never change which queries are answerable — only how fast.

// kernelStep converts one resolved single-schema predicate into a kernel
// step.
func kernelStep(p fsql.Predicate, l, r operandInfo) (kernel.Step, error) {
	s := kernel.Step{}
	switch p.Kind {
	case fsql.PredCompare:
		s.Kind, s.Op = kernel.StepCompare, p.Op
	case fsql.PredNear:
		s.Kind, s.Tol = kernel.StepNear, p.Tol
	default:
		return kernel.Step{}, fmt.Errorf("core: predicate kind %v has no kernel form", p.Kind)
	}
	var err error
	if s.Left, err = kernelOperand(l); err != nil {
		return kernel.Step{}, err
	}
	if s.Right, err = kernelOperand(r); err != nil {
		return kernel.Step{}, err
	}
	return s, nil
}

func kernelOperand(info operandInfo) (kernel.Operand, error) {
	switch {
	case info.isConst:
		return kernel.Constant(info.constVal), nil
	case info.side >= 0:
		return kernel.Column(info.col), nil
	default:
		return kernel.Operand{}, fmt.Errorf("core: operand has no kernel form")
	}
}

// compileKernelProgram compiles a conjunction of single-relation
// predicates over schema into a fused kernel program. It reports an error
// for anything the kernel cannot express; the caller then stays on the
// interpreted path (where unresolvable operands re-raise the same
// resolution errors the interpreted compilers produce).
func (e *Env) compileKernelProgram(schema *frel.Schema, preds []fsql.Predicate) (*kernel.Program, error) {
	steps := make([]kernel.Step, 0, len(preds))
	for _, p := range preds {
		l, r, err := e.resolvePair(p.Left, p.Right, schema)
		if err != nil {
			return nil, err
		}
		s, err := kernelStep(p, l, r)
		if err != nil {
			return nil, err
		}
		steps = append(steps, s)
	}
	return kernel.Compile(steps)
}

func kernelPairOperand(info operandInfo) (kernel.PairOperand, error) {
	switch {
	case info.isConst:
		return kernel.PairConstant(info.constVal), nil
	case info.side == 0:
		return kernel.LeftColumn(info.col), nil
	case info.side == 1:
		return kernel.RightColumn(info.col), nil
	default:
		return kernel.PairOperand{}, fmt.Errorf("core: operand has no kernel form")
	}
}

// compilePairProgram compiles the residual join conjuncts of a merge step
// into a pair program for the kernel merge-join. Operand resolution (left
// input first, then right, literals settled against the opposite kind)
// mirrors compileJoinPred; evaluation order and short-circuiting mirror
// andJoinPreds, so degree-evaluation counts are identical.
func (e *Env) compilePairProgram(left, right *frel.Schema, preds []fsql.Predicate) (*kernel.PairProgram, error) {
	steps := make([]kernel.PairStep, 0, len(preds))
	for _, p := range preds {
		l, r, err := e.resolvePair(p.Left, p.Right, left, right)
		if err != nil {
			return nil, err
		}
		s := kernel.PairStep{}
		switch p.Kind {
		case fsql.PredCompare:
			s.Kind, s.Op = kernel.StepCompare, p.Op
		case fsql.PredNear:
			s.Kind, s.Tol = kernel.StepNear, p.Tol
		default:
			return nil, fmt.Errorf("core: predicate kind %v has no kernel form", p.Kind)
		}
		if s.Left, err = kernelPairOperand(l); err != nil {
			return nil, err
		}
		if s.Right, err = kernelPairOperand(r); err != nil {
			return nil, err
		}
		steps = append(steps, s)
	}
	return kernel.CompilePair(steps)
}
