package core

import (
	"fmt"
	"math"

	"repro/internal/exec"
	"repro/internal/frel"
	"repro/internal/fsql"
	"repro/internal/fuzzy"
)

// flatQuery is a normalized flat (unnested) query: a multi-way join with
// conjunctive comparison predicates, the shape every unnesting rewrite of
// the paper produces (Query N′, J′, Q′_K).
type flatQuery struct {
	items   []fsql.SelectItem
	from    []fsql.TableRef
	preds   []fsql.Predicate // all PredCompare / PredNear
	groupBy []string
	having  []fsql.Predicate
	with    float64

	orderBy   string
	orderDesc bool
	limit     int
	hasLimit  bool
}

// shape returns a Select carrying only the answer-shaping clauses, for
// finalizeAnswer.
func (fq *flatQuery) shape() *fsql.Select {
	return &fsql.Select{With: fq.with, OrderBy: fq.orderBy, OrderDesc: fq.orderDesc,
		Limit: fq.limit, HasLimit: fq.hasLimit}
}

// shapeOf copies the answer-shaping clauses of a query block.
func (fq *flatQuery) shapeOf(q *fsql.Select) {
	fq.with = q.With
	fq.orderBy = q.OrderBy
	fq.orderDesc = q.OrderDesc
	fq.limit = q.Limit
	fq.hasLimit = q.HasLimit
}

// assumedFanout is the planner's stand-in for join selectivity statistics:
// the paper's cost analysis assumes each tuple joins with a constant
// number of tuples of the other relation (Section 3).
const assumedFanout = 4

// evalFlat plans and executes a flat query: local predicates are pushed
// onto their relations, the join order is chosen by dynamic programming
// over the join graph (Section 8 suggests exactly this for Q′_K), each
// join runs as an extended merge-join when a numeric equality predicate is
// available (nested-loop otherwise), and the answer is projected with
// max-degree duplicate elimination and thresholded.
func (e *Env) evalFlat(fq *flatQuery) (*frel.Relation, error) {
	n := len(fq.from)
	if n == 0 {
		return nil, fmt.Errorf("core: flat query has no relations")
	}
	srcs := make([]exec.Source, n)
	schemas := make([]*frel.Schema, n)
	for i, tr := range fq.from {
		s, err := e.source(tr)
		if err != nil {
			return nil, err
		}
		srcs[i] = e.stated("scan", tr.Binding(), s)
		schemas[i] = s.Schema()
	}

	// Partition predicates by the set of relations they reference.
	var homes []predHome
	for _, p := range fq.preds {
		if p.Kind != fsql.PredCompare && p.Kind != fsql.PredNear {
			return nil, fmt.Errorf("core: flat query contains non-comparison predicate %v", p)
		}
		var rels []int
		seen := map[int]bool{}
		for _, opd := range []fsql.Operand{p.Left, p.Right} {
			if opd.Kind != fsql.OpdRef {
				continue
			}
			home := -1
			for i, s := range schemas {
				if s.Has(opd.Ref) {
					if home >= 0 {
						return nil, fmt.Errorf("core: ambiguous reference %q (resolves in %s and %s)", opd.Ref, schemas[home].Name, s.Name)
					}
					home = i
				}
			}
			if home < 0 {
				return nil, fmt.Errorf("core: cannot resolve reference %q", opd.Ref)
			}
			if !seen[home] {
				seen[home] = true
				rels = append(rels, home)
			}
		}
		homes = append(homes, predHome{p, rels})
	}

	// Push single-relation predicates onto their sources.
	filtered := make([]exec.Source, n)
	copy(filtered, srcs)
	var joinPreds []predHome
	var constPreds []fsql.Predicate
	for _, h := range homes {
		switch len(h.rels) {
		case 0:
			constPreds = append(constPreds, h.pred)
		case 1:
			i := h.rels[0]
			pred, err := e.compilePred(schemas[i], h.pred)
			if err != nil {
				return nil, err
			}
			filtered[i] = exec.NewFilter(filtered[i], pred)
		case 2:
			joinPreds = append(joinPreds, h)
		default:
			return nil, fmt.Errorf("core: predicate %v references more than two relations", h.pred)
		}
	}
	for i := range filtered {
		if filtered[i] != srcs[i] {
			filtered[i] = e.stated("filter", schemas[i].Name, filtered[i], srcs[i])
		}
	}

	order, err := e.joinOrder(srcs, joinPreds)
	if err != nil {
		return nil, err
	}

	// Execute the left-deep join in the chosen order.
	cur := filtered[order[0]]
	joined := map[int]bool{order[0]: true}
	used := make([]bool, len(joinPreds))
	for _, next := range order[1:] {
		// Predicates now evaluable: both endpoints in joined ∪ {next},
		// with at least one endpoint being next.
		var applicable []int
		for pi, h := range joinPreds {
			if used[pi] {
				continue
			}
			ok := true
			touchesNext := false
			for _, r := range h.rels {
				if r == next {
					touchesNext = true
				} else if !joined[r] {
					ok = false
				}
			}
			if ok && touchesNext {
				applicable = append(applicable, pi)
			}
		}
		cur, err = e.joinStep(cur, filtered[next], joinPreds, applicable, used)
		if err != nil {
			return nil, err
		}
		joined[next] = true
	}

	var out exec.Source = cur
	for _, p := range constPreds {
		pred, err := e.compilePred(cur.Schema(), p)
		if err != nil {
			return nil, err
		}
		out = exec.NewFilter(out, pred)
	}
	if out != cur {
		out = e.stated("filter", "constant predicates", out, cur)
	}

	// Final projection / grouping.
	hasAgg := false
	for _, it := range fq.items {
		if it.HasAgg {
			hasAgg = true
		}
	}
	var rel *frel.Relation
	if hasAgg || len(fq.groupBy) > 0 {
		rel, err = e.groupProject(fq.items, fq.groupBy, fq.having, out)
		if err != nil {
			return nil, err
		}
	} else {
		if len(fq.having) > 0 {
			return nil, fmt.Errorf("core: HAVING requires GROUPBY or aggregates")
		}
		proj, err := exec.NewProject(out, itemRefs(fq.items), true)
		if err != nil {
			return nil, err
		}
		rel, err = e.collect(e.stated("project", "", proj, out))
		if err != nil {
			return nil, err
		}
	}
	pruned, err := finalizeAnswer(rel, fq.shape())
	if err != nil {
		return nil, err
	}
	e.notePruned(pruned)
	return rel, nil
}

// joinStep joins cur with next using the applicable predicates: an
// extended merge-join on a numeric equality predicate when one exists,
// a block nested-loop join otherwise. Remaining applicable predicates
// become extra conjuncts. used is updated.
func (e *Env) joinStep(cur, next exec.Source, joinPreds []predHome, applicable []int, used []bool) (exec.Source, error) {
	// Find a numeric equality (or, failing that, NEAR) predicate usable
	// as the merge attribute; NEAR runs as a band merge-join.
	mergeIdx := -1
	var curAttr, nextAttr string
	var mergeTol fuzzy.Trapezoid
	for pass := 0; pass < 2 && mergeIdx < 0; pass++ {
		for _, pi := range applicable {
			p := joinPreds[pi].pred
			isEq := p.Kind == fsql.PredCompare && p.Op == fuzzy.OpEq
			isNear := p.Kind == fsql.PredNear
			if pass == 0 && !isEq || pass == 1 && !isNear {
				continue
			}
			if p.Left.Kind != fsql.OpdRef || p.Right.Kind != fsql.OpdRef {
				continue
			}
			var cRef, nRef string
			tol := p.Tol
			switch {
			case cur.Schema().Has(p.Left.Ref) && next.Schema().Has(p.Right.Ref):
				cRef, nRef = p.Left.Ref, p.Right.Ref
			case next.Schema().Has(p.Left.Ref) && cur.Schema().Has(p.Right.Ref):
				cRef, nRef = p.Right.Ref, p.Left.Ref
				// d(a ≈ b) under tol equals d(b ≈ a) under the negated
				// tolerance (differences flip sign).
				tol = fuzzy.Neg(tol)
			default:
				continue
			}
			ci, _ := cur.Schema().Resolve(cRef)
			ni, _ := next.Schema().Resolve(nRef)
			if cur.Schema().Attrs[ci].Kind != frel.KindNumber || next.Schema().Attrs[ni].Kind != frel.KindNumber {
				continue
			}
			mergeIdx, curAttr, nextAttr, mergeTol = pi, cRef, nRef, tol
			break
		}
	}

	// Compile the remaining applicable predicates as extra conjuncts.
	var extras []exec.JoinPred
	for _, pi := range applicable {
		if pi == mergeIdx {
			used[pi] = true
			continue
		}
		jp, err := e.compileJoinPred(cur.Schema(), next.Schema(), joinPreds[pi].pred)
		if err != nil {
			return nil, err
		}
		extras = append(extras, jp)
		used[pi] = true
	}
	extra := andJoinPreds(extras)

	if mergeIdx >= 0 {
		sortedCur, err := e.sortSource(cur, curAttr, false)
		if err != nil {
			return nil, err
		}
		sortedNext, err := e.sortSource(next, nextAttr, false)
		if err != nil {
			return nil, err
		}
		node := e.newNode("merge-join", curAttr+" = "+nextAttr)
		if w := e.workers(); w > 1 {
			pj, err := exec.NewParallelMergeJoin(sortedCur, sortedNext, curAttr, nextAttr, mergeTol, extra, &e.Counters, w)
			if err != nil {
				return nil, err
			}
			pj.Stats = node
			return e.attach(node, pj, sortedCur, sortedNext), nil
		}
		mj, err := exec.NewBandMergeJoin(sortedCur, sortedNext, curAttr, nextAttr, mergeTol, extra, &e.Counters)
		if err != nil {
			return nil, err
		}
		mj.Stats = node
		return e.attach(node, mj, sortedCur, sortedNext), nil
	}
	on := extra
	if on == nil {
		on = func(l, r frel.Tuple) float64 { return 1 }
	}
	node := e.newNode("nl-join", "")
	nl := exec.NewBlockNLJoin(cur, next, on, e.NLBlockBytes, &e.Counters)
	nl.Stats = node
	return e.attach(node, nl, cur, next), nil
}

// predHome is a predicate together with the relations it references
// (indexes into the flat query's FROM list; empty = constant predicate).
type predHome struct {
	pred fsql.Predicate
	rels []int
}

func andJoinPreds(ps []exec.JoinPred) exec.JoinPred {
	switch len(ps) {
	case 0:
		return nil
	case 1:
		return ps[0]
	default:
		return func(l, r frel.Tuple) float64 {
			d := 1.0
			for _, p := range ps {
				if g := p(l, r); g < d {
					d = g
					if d == 0 {
						return 0
					}
				}
			}
			return d
		}
	}
}

// joinOrder chooses a left-deep join order by dynamic programming over
// relation subsets, minimizing the sum of estimated intermediate sizes.
// Equality-edge fanouts are estimated by sampling in-memory sources (and
// fall back to the paper's constant-fanout assumption otherwise); absent
// any edge the join is a cross product.
func (e *Env) joinOrder(srcs []exec.Source, joinPreds []predHome) ([]int, error) {
	n := len(srcs)
	if n == 1 {
		return []int{0}, nil
	}
	sizes := make([]float64, n)
	for i, s := range srcs {
		sizes[i] = sourceSize(s)
	}
	// edges[i][j]: an equality predicate links i and j; fanout[i][j] is
	// its estimated per-tuple match count.
	edges := make([][]bool, n)
	fanout := make([][]float64, n)
	for i := range edges {
		edges[i] = make([]bool, n)
		fanout[i] = make([]float64, n)
	}
	for _, h := range joinPreds {
		eqish := h.pred.Kind == fsql.PredCompare && h.pred.Op == fuzzy.OpEq || h.pred.Kind == fsql.PredNear
		if len(h.rels) == 2 && eqish {
			a, b := h.rels[0], h.rels[1]
			f := e.sampleFanout(srcs[a], srcs[b], h.pred)
			if !edges[a][b] || f < fanout[a][b] {
				fanout[a][b], fanout[b][a] = f, f
			}
			edges[a][b], edges[b][a] = true, true
		}
	}

	if n > 12 || e.DisableJoinReorder {
		// Too many relations for subset DP (or reordering disabled): keep
		// the syntactic order.
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		return order, nil
	}

	// est[mask] is the estimated size of joining the subset.
	full := 1 << n
	est := make([]float64, full)
	for mask := 1; mask < full; mask++ {
		if mask&(mask-1) == 0 {
			for i := 0; i < n; i++ {
				if mask == 1<<i {
					est[mask] = sizes[i]
				}
			}
			continue
		}
		est[mask] = math.Inf(1)
	}
	cost := make([]float64, full)
	last := make([]int, full)
	for mask := range cost {
		cost[mask] = math.Inf(1)
		last[mask] = -1
	}
	for i := 0; i < n; i++ {
		cost[1<<i] = 0
	}
	for mask := 1; mask < full; mask++ {
		if mask&(mask-1) == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			if mask&(1<<j) == 0 {
				continue
			}
			rest := mask &^ (1 << j)
			if rest == 0 || math.IsInf(cost[rest], 1) {
				continue
			}
			// Estimate the size of rest ⋈ j.
			connected := false
			for k := 0; k < n; k++ {
				if rest&(1<<k) != 0 && edges[k][j] {
					connected = true
					break
				}
			}
			var sz float64
			if connected {
				f := bestFanout(rest, j, n, edges, fanout)
				sz = f * math.Min(est[rest], sizes[j])
			} else {
				sz = est[rest] * sizes[j]
			}
			c := cost[rest] + sz
			if c < cost[mask] {
				cost[mask] = c
				last[mask] = j
				est[mask] = sz
			}
		}
	}
	order := make([]int, 0, n)
	mask := full - 1
	for mask != 0 {
		j := last[mask]
		if j < 0 {
			// Single relation left.
			for i := 0; i < n; i++ {
				if mask == 1<<i {
					j = i
				}
			}
			if j < 0 {
				return nil, fmt.Errorf("core: join order reconstruction failed")
			}
		}
		order = append(order, j)
		mask &^= 1 << j
	}
	// Reverse: we reconstructed from last to first.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order, nil
}

// bestFanout returns the smallest estimated fanout among the equality
// edges connecting j to the subset.
func bestFanout(rest, j, n int, edges [][]bool, fanout [][]float64) float64 {
	best := math.Inf(1)
	for k := 0; k < n; k++ {
		if rest&(1<<k) != 0 && edges[k][j] && fanout[k][j] < best {
			best = fanout[k][j]
		}
	}
	if math.IsInf(best, 1) {
		return assumedFanout
	}
	return best
}

// sampleFanout estimates, for an equality/NEAR edge, how many tuples of
// the larger side an average tuple of the smaller side joins. It samples
// in-memory sources only (sampling a heap file would charge I/O to the
// measurement that follows); other sources keep the paper's
// constant-fanout assumption.
func (e *Env) sampleFanout(a, b exec.Source, p fsql.Predicate) float64 {
	ma, okA := exec.Unwrap(a).(*exec.MemSource)
	mb, okB := exec.Unwrap(b).(*exec.MemSource)
	if !okA || !okB || ma.Rel.Len() == 0 || mb.Rel.Len() == 0 {
		return assumedFanout
	}
	jp, err := e.compileJoinPred(a.Schema(), b.Schema(), p)
	if err != nil {
		return assumedFanout
	}
	const sampleCap = 64
	sa := sampleTuples(ma.Rel.Tuples, sampleCap)
	sb := sampleTuples(mb.Rel.Tuples, sampleCap)
	matches := 0
	for _, ta := range sa {
		for _, tb := range sb {
			if jp(ta, tb) > 0 {
				matches++
			}
		}
	}
	// Selectivity of the pair predicate, scaled to the smaller side's
	// per-tuple fanout against the larger side.
	sel := float64(matches) / float64(len(sa)*len(sb))
	larger := math.Max(float64(ma.Rel.Len()), float64(mb.Rel.Len()))
	f := sel * larger
	if f < 0.1 {
		f = 0.1 // keep estimates positive so chains still look connected
	}
	return f
}

// sampleTuples picks an evenly spaced sample of at most max tuples.
func sampleTuples(ts []frel.Tuple, max int) []frel.Tuple {
	if len(ts) <= max {
		return ts
	}
	step := len(ts) / max
	out := make([]frel.Tuple, 0, max)
	for i := 0; i < len(ts) && len(out) < max; i += step {
		out = append(out, ts[i])
	}
	return out
}

// sourceSize estimates a source's cardinality for the planner.
func sourceSize(s exec.Source) float64 {
	switch src := exec.Unwrap(s).(type) {
	case *exec.MemSource:
		return float64(src.Rel.Len())
	case *exec.HeapSource:
		return float64(src.Heap.NumTuples())
	default:
		return 1000
	}
}
