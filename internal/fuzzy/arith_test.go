package fuzzy

import (
	"testing"
	"testing/quick"
)

// TestAddPaperExample checks the Section 6 example: for x with 0-cut
// [x1, x4] and 1-cut [x2, x3] and y likewise, x + y has 0-cut
// [x1+y1, x4+y4] and 1-cut [x2+y2, x3+y3].
func TestAddPaperExample(t *testing.T) {
	x := Trap(1, 2, 3, 4)
	y := Trap(10, 20, 30, 40)
	got := Add(x, y)
	want := Trapezoid{11, 22, 33, 44}
	if got != want {
		t.Errorf("Add = %v, want %v", got, want)
	}
}

func TestAddCrisp(t *testing.T) {
	if got := Add(Crisp(2), Crisp(3)); got != Crisp(5) {
		t.Errorf("Add(2, 3) = %v, want 5", got)
	}
}

func TestSub(t *testing.T) {
	x := Trap(1, 2, 3, 4)
	y := Trap(10, 20, 30, 40)
	got := Sub(y, x)
	want := Trapezoid{6, 17, 28, 39}
	if got != want {
		t.Errorf("Sub = %v, want %v", got, want)
	}
	if !got.Valid() {
		t.Errorf("Sub result invalid: %v", got)
	}
}

func TestNeg(t *testing.T) {
	got := Neg(Trap(1, 2, 3, 4))
	want := Trapezoid{-4, -3, -2, -1}
	if got != want {
		t.Errorf("Neg = %v, want %v", got, want)
	}
}

func TestMul(t *testing.T) {
	tests := []struct {
		name string
		x, y Trapezoid
		want Trapezoid
	}{
		{"positive", Trap(1, 2, 3, 4), Trap(2, 3, 4, 5), Trapezoid{2, 6, 12, 20}},
		{"crisp", Crisp(3), Crisp(4), Crisp(12)},
		{"negative spans", Trap(-2, -1, 1, 2), Trap(3, 4, 5, 6), Trapezoid{-12, -5, 5, 12}},
	}
	for _, tc := range tests {
		got := Mul(tc.x, tc.y)
		if got != tc.want {
			t.Errorf("%s: Mul = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestScale(t *testing.T) {
	x := Trap(2, 4, 6, 8)
	if got := Scale(x, 0.5); got != (Trapezoid{1, 2, 3, 4}) {
		t.Errorf("Scale(0.5) = %v", got)
	}
	if got := Scale(x, -1); got != (Trapezoid{-8, -6, -4, -2}) {
		t.Errorf("Scale(-1) = %v", got)
	}
	if got := Scale(x, 0); got != Crisp(0) {
		t.Errorf("Scale(0) = %v", got)
	}
}

func TestQuickAddValidAndCommutative(t *testing.T) {
	f := func(vals [8]float64) bool {
		x := randomTrap(vals[0], vals[1], vals[2], vals[3])
		y := randomTrap(vals[4], vals[5], vals[6], vals[7])
		s := Add(x, y)
		return s.Valid() && s == Add(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSubAddInverseOnCrisp(t *testing.T) {
	f := func(a, b float64) bool {
		x, y := Crisp(float64(int(a)%1000)), Crisp(float64(int(b)%1000))
		return Add(Sub(x, y), y) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMulValidAndCommutative(t *testing.T) {
	f := func(vals [8]float64) bool {
		x := randomTrap(vals[0], vals[1], vals[2], vals[3])
		y := randomTrap(vals[4], vals[5], vals[6], vals[7])
		p := Mul(x, y)
		return p.Valid() && p == Mul(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCentroidAdditive(t *testing.T) {
	f := func(vals [8]float64) bool {
		x := randomTrap(vals[0], vals[1], vals[2], vals[3])
		y := randomTrap(vals[4], vals[5], vals[6], vals[7])
		return almostEq(Add(x, y).Centroid(), x.Centroid()+y.Centroid())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickScaleLinear(t *testing.T) {
	f := func(vals [4]float64, kRaw int8) bool {
		x := randomTrap(vals[0], vals[1], vals[2], vals[3])
		k := float64(kRaw) / 16
		s := Scale(x, k)
		return s.Valid() && almostEq(s.Centroid(), k*x.Centroid())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
