package fuzzy

import "fmt"

// AggFunc identifies one of the Fuzzy SQL aggregate functions (Section 6).
type AggFunc int

// The aggregate functions of Fuzzy SQL.
const (
	AggCount AggFunc = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String returns the SQL spelling of the aggregate function.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(f))
	}
}

// ParseAggFunc parses the SQL spelling of an aggregate function name,
// case-insensitively on ASCII letters.
func ParseAggFunc(s string) (AggFunc, error) {
	up := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		up[i] = c
	}
	switch string(up) {
	case "COUNT":
		return AggCount, nil
	case "SUM":
		return AggSum, nil
	case "AVG":
		return AggAvg, nil
	case "MIN":
		return AggMin, nil
	case "MAX":
		return AggMax, nil
	default:
		return 0, fmt.Errorf("fuzzy: unknown aggregate function %q", s)
	}
}

// Aggregate applies the aggregate function f to a fuzzy set of values,
// following the Fuzzy SQL semantics of Section 6:
//
//   - COUNT returns the (crisp) number of values in the set, including for
//     the empty set (0);
//   - SUM is defined by fuzzy addition, AVG by fuzzy addition and division
//     with the crisp cardinality;
//   - MIN and MAX use the defuzzification that orders fuzzy values by the
//     center of their 1-cuts;
//   - for an empty set, SUM, AVG, MIN and MAX produce NULL, reported by
//     ok == false.
//
// The accompanying result degree D(A(r)) is 1 in Fuzzy SQL; callers that
// want average-membership variants can compute them from the set.
func Aggregate(f AggFunc, set []Member) (result Trapezoid, ok bool) {
	if f == AggCount {
		return Crisp(float64(len(set))), true
	}
	if len(set) == 0 {
		return Trapezoid{}, false
	}
	switch f {
	case AggSum, AggAvg:
		sum := set[0].Value
		for _, m := range set[1:] {
			sum = Add(sum, m.Value)
		}
		if f == AggSum {
			return sum, true
		}
		return Scale(sum, 1/float64(len(set))), true
	case AggMin:
		best := set[0].Value
		for _, m := range set[1:] {
			if defuzzLess(m.Value, best) {
				best = m.Value
			}
		}
		return best, true
	case AggMax:
		best := set[0].Value
		for _, m := range set[1:] {
			if defuzzLess(best, m.Value) {
				best = m.Value
			}
		}
		return best, true
	default:
		panic(fmt.Sprintf("fuzzy: Aggregate of unknown function %d", int(f)))
	}
}

// defuzzLess is the total order MIN and MAX select by: the center of the
// 1-cut (the paper's defuzzification), with corner-wise tie-breaking so
// the selected value does not depend on input order.
func defuzzLess(a, b Trapezoid) bool {
	switch {
	case a.Centroid() != b.Centroid():
		return a.Centroid() < b.Centroid()
	case a.A != b.A:
		return a.A < b.A
	case a.B != b.B:
		return a.B < b.B
	case a.C != b.C:
		return a.C < b.C
	default:
		return a.D < b.D
	}
}
