package fuzzy

import (
	"math"
	"testing"
	"testing/quick"
)

// bruteDegree approximates d(U op V) = sup min(µU(x), µV(y), θ(x,y)) by
// searching a candidate set made of both trapezoids' corner points plus a
// grid over the union of both supports. It is the reference implementation
// the closed forms are checked against; the optimum of a min of piecewise
// linear functions is at a corner or an edge crossing, so corners plus a
// fine grid get within grid resolution of the true supremum.
func bruteDegree(op Op, u, v Trapezoid) float64 {
	lo := math.Min(u.A, v.A) - 1
	hi := math.Max(u.D, v.D) + 1
	const steps = 160
	step := (hi - lo) / steps
	if step == 0 {
		step = 1
	}
	pts := []float64{u.A, u.B, u.C, u.D, v.A, v.B, v.C, v.D}
	for i := 0; i <= steps; i++ {
		pts = append(pts, lo+float64(i)*step)
	}
	best := 0.0
	for _, x := range pts {
		mu := u.Mu(x)
		if mu <= best {
			continue
		}
		for _, y := range pts {
			if !crispHolds(op, x, y) {
				continue
			}
			if g := Min(mu, v.Mu(y)); g > best {
				best = g
			}
		}
	}
	return best
}

// TestEqPaperFig1 checks the worked example of Section 2.2: with
// "medium young" and "about 35" as in Fig. 1,
// d(24 = medium young) = 0.8 and d(about 35 = medium young) = 0.5.
func TestEqPaperFig1(t *testing.T) {
	mediumYoung := Trap(20, 25, 30, 35)
	about35 := Tri(30, 35, 40)
	if got := Eq(Crisp(24), mediumYoung); !almostEq(got, 0.8) {
		t.Errorf("d(24 = medium young) = %g, want 0.8", got)
	}
	if got := Eq(about35, mediumYoung); !almostEq(got, 0.5) {
		t.Errorf("d(about 35 = medium young) = %g, want 0.5", got)
	}
}

func TestEqCases(t *testing.T) {
	tests := []struct {
		name string
		u, v Trapezoid
		want float64
	}{
		{"identical", Trap(1, 2, 3, 4), Trap(1, 2, 3, 4), 1},
		{"crisp equal", Crisp(5), Crisp(5), 1},
		{"crisp unequal", Crisp(5), Crisp(6), 0},
		{"crisp in core", Crisp(2.5), Trap(1, 2, 3, 4), 1},
		{"crisp on rising edge", Crisp(1.5), Trap(1, 2, 3, 4), 0.5},
		{"crisp on falling edge", Crisp(3.5), Trap(1, 2, 3, 4), 0.5},
		{"disjoint", Trap(0, 1, 2, 3), Trap(5, 6, 7, 8), 0},
		{"touching supports", Trap(0, 1, 2, 3), Trap(3, 4, 5, 6), 0},
		{"overlapping cores", Trap(0, 1, 3, 4), Trap(2, 3, 5, 6), 1},
		{"symmetric cross at half", Tri(0, 1, 2), Tri(1, 2, 3), 0.5},
		{"contained", Crisp(2), Interval(0, 5), 1},
		{"rect vs rect overlap", Interval(0, 2), Interval(1, 3), 1},
		{"rect vs rect touch", Interval(0, 2), Interval(2, 3), 1},
	}
	for _, tc := range tests {
		if got := Eq(tc.u, tc.v); !almostEq(got, tc.want) {
			t.Errorf("%s: Eq(%v, %v) = %g, want %g", tc.name, tc.u, tc.v, got, tc.want)
		}
		if got := Eq(tc.v, tc.u); !almostEq(got, tc.want) {
			t.Errorf("%s: Eq symmetric = %g, want %g", tc.name, got, tc.want)
		}
	}
}

// TestEqRectTouchingCores exercises the vertical-edges corner: two
// rectangular distributions whose supports overlap in exactly one point
// that is in both cores.
func TestEqRectTouchingCores(t *testing.T) {
	u := Interval(0, 2)
	v := Interval(2, 4)
	if got := Eq(u, v); got != 1 {
		t.Errorf("Eq = %g, want 1 (2 is fully possible in both)", got)
	}
}

func TestLtCases(t *testing.T) {
	tests := []struct {
		name string
		u, v Trapezoid
		want float64
	}{
		{"crisp strict true", Crisp(1), Crisp(2), 1},
		{"crisp strict false eq", Crisp(2), Crisp(2), 0},
		{"crisp strict false gt", Crisp(3), Crisp(2), 0},
		{"cores allow", Trap(0, 1, 2, 3), Trap(2, 3, 4, 5), 1},
		{"fully left", Trap(0, 1, 2, 3), Trap(10, 11, 12, 13), 1},
		{"fully right", Trap(10, 11, 12, 13), Trap(0, 1, 2, 3), 0},
		{"same value", Trap(0, 1, 2, 3), Trap(0, 1, 2, 3), 1}, // some x < y possible
		{"partial", Tri(4, 6, 8), Tri(2, 4, 6), 0.5},          // u rising meets v falling
		{"crisp vs fuzzy", Crisp(5), Tri(2, 4, 6), 0.5},
	}
	for _, tc := range tests {
		if got := Lt(tc.u, tc.v); !almostEq(got, tc.want) {
			t.Errorf("%s: Lt(%v, %v) = %g, want %g", tc.name, tc.u, tc.v, got, tc.want)
		}
	}
}

func TestLeVsLtOnCrisp(t *testing.T) {
	if got := Le(Crisp(2), Crisp(2)); got != 1 {
		t.Errorf("Le(2,2) = %g, want 1", got)
	}
	if got := Lt(Crisp(2), Crisp(2)); got != 0 {
		t.Errorf("Lt(2,2) = %g, want 0", got)
	}
	if got := Ge(Crisp(2), Crisp(2)); got != 1 {
		t.Errorf("Ge(2,2) = %g, want 1", got)
	}
	if got := Gt(Crisp(2), Crisp(2)); got != 0 {
		t.Errorf("Gt(2,2) = %g, want 0", got)
	}
}

func TestNeCases(t *testing.T) {
	tests := []struct {
		u, v Trapezoid
		want float64
	}{
		{Crisp(1), Crisp(1), 0},
		{Crisp(1), Crisp(2), 1},
		{Crisp(1), Tri(0, 1, 2), 1},
		{Tri(0, 1, 2), Tri(0, 1, 2), 1},
	}
	for _, tc := range tests {
		if got := Ne(tc.u, tc.v); got != tc.want {
			t.Errorf("Ne(%v, %v) = %g, want %g", tc.u, tc.v, got, tc.want)
		}
	}
}

func TestDegreeDispatch(t *testing.T) {
	u, v := Tri(0, 2, 4), Tri(3, 5, 7)
	if Degree(OpEq, u, v) != Eq(u, v) {
		t.Errorf("Degree(OpEq) mismatch")
	}
	if Degree(OpLt, u, v) != Lt(u, v) {
		t.Errorf("Degree(OpLt) mismatch")
	}
	if Degree(OpLe, u, v) != Le(u, v) {
		t.Errorf("Degree(OpLe) mismatch")
	}
	if Degree(OpGt, u, v) != Gt(u, v) {
		t.Errorf("Degree(OpGt) mismatch")
	}
	if Degree(OpGe, u, v) != Ge(u, v) {
		t.Errorf("Degree(OpGe) mismatch")
	}
	if Degree(OpNe, u, v) != Ne(u, v) {
		t.Errorf("Degree(OpNe) mismatch")
	}
}

// TestDegreeAgainstBruteForce cross-checks every closed-form degree against
// a grid-search reference on a spread of shapes.
func TestDegreeAgainstBruteForce(t *testing.T) {
	shapes := []Trapezoid{
		Crisp(3),
		Tri(0, 2, 4),
		Tri(3, 5, 7),
		Trap(1, 2, 6, 9),
		Interval(2, 5),
		Trap(-3, -1, 0, 2),
		Tri(4.5, 5, 5.5),
		Trap(0, 0, 10, 10),
	}
	ops := []Op{OpEq, OpLe, OpGe}
	for _, u := range shapes {
		for _, v := range shapes {
			for _, op := range ops {
				got := Degree(op, u, v)
				want := bruteDegree(op, u, v)
				// Grid resolution limits the reference accuracy.
				if math.Abs(got-want) > 0.02 {
					t.Errorf("Degree(%v, %v, %v) = %g, brute force says %g", op, u, v, got, want)
				}
			}
		}
	}
}

func TestQuickEqSymmetric(t *testing.T) {
	f := func(vals [8]float64) bool {
		u := randomTrap(vals[0], vals[1], vals[2], vals[3])
		v := randomTrap(vals[4], vals[5], vals[6], vals[7])
		return almostEq(Eq(u, v), Eq(v, u))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickEqReflexive(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		u := randomTrap(a, b, c, d)
		return Eq(u, u) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickLtGtDual(t *testing.T) {
	f := func(vals [8]float64) bool {
		u := randomTrap(vals[0], vals[1], vals[2], vals[3])
		v := randomTrap(vals[4], vals[5], vals[6], vals[7])
		return Lt(u, v) == Gt(v, u) && Le(u, v) == Ge(v, u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDegreesBounded(t *testing.T) {
	f := func(vals [8]float64, opByte uint8) bool {
		u := randomTrap(vals[0], vals[1], vals[2], vals[3])
		v := randomTrap(vals[4], vals[5], vals[6], vals[7])
		op := Op(opByte % 6)
		d := Degree(op, u, v)
		return d >= 0 && d <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickEqZeroIffDisjoint: equality possibility is positive exactly when
// the supports overlap in more than a zero-membership touching point.
func TestQuickEqDisjointSupportsZero(t *testing.T) {
	f := func(vals [8]float64) bool {
		u := randomTrap(vals[0], vals[1], vals[2], vals[3])
		v := randomTrap(vals[4], vals[5], vals[6], vals[7])
		if !u.Intersects(v) {
			return Eq(u, v) == 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickLeAtLeastEq: if two values can be equal to degree d, then u ≤ v
// holds to at least d.
func TestQuickLeAtLeastEq(t *testing.T) {
	f := func(vals [8]float64) bool {
		u := randomTrap(vals[0], vals[1], vals[2], vals[3])
		v := randomTrap(vals[4], vals[5], vals[6], vals[7])
		return Le(u, v) >= Eq(u, v)-1e-9 && Ge(u, v) >= Eq(u, v)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMaxNot(t *testing.T) {
	if got := Min(); got != 1 {
		t.Errorf("Min() = %g, want 1", got)
	}
	if got := Max(); got != 0 {
		t.Errorf("Max() = %g, want 0", got)
	}
	if got := Min(0.7, 0.3, 0.9); got != 0.3 {
		t.Errorf("Min = %g, want 0.3", got)
	}
	if got := Max(0.7, 0.3, 0.9); got != 0.9 {
		t.Errorf("Max = %g, want 0.9", got)
	}
	if got := Not(0.3); !almostEq(got, 0.7) {
		t.Errorf("Not(0.3) = %g, want 0.7", got)
	}
}

func TestIn(t *testing.T) {
	set := []Member{
		{Tri(30, 40, 50), 0.4},        // about 40K with degree 0.4
		{Trap(64, 74, 120, 120), 1.0}, // high with degree 1
	}
	tests := []struct {
		name string
		v    Trapezoid
		want float64
	}{
		{"about 60K", Tri(50, 60, 70), 0.3},        // Example 4.1: Ann(101)
		{"medium high", Trap(50, 60, 68, 78), 0.7}, // Example 4.1: Ann(102)
		{"high", Trap(64, 74, 120, 120), 1.0},      // Example 4.1: Betty
		{"low", Trap(0, 0, 20, 35), 0.2},           // overlaps about 40K only; capped by set degree? no: min(0.4, Eq(low, about40K))
		{"far away", Crisp(-100), 0},
	}
	for _, tc := range tests {
		if got := In(tc.v, set); !almostEq(got, tc.want) {
			t.Errorf("%s: In = %g, want %g", tc.name, got, tc.want)
		}
	}
	if got := In(Crisp(70), nil); got != 0 {
		t.Errorf("In(empty) = %g, want 0", got)
	}
}

func TestNotIn(t *testing.T) {
	set := []Member{{Crisp(5), 1}}
	if got := NotIn(Crisp(5), set); got != 0 {
		t.Errorf("NotIn(5, {5}) = %g, want 0", got)
	}
	if got := NotIn(Crisp(6), set); got != 1 {
		t.Errorf("NotIn(6, {5}) = %g, want 1", got)
	}
	if got := NotIn(Crisp(6), nil); got != 1 {
		t.Errorf("NotIn(6, empty) = %g, want 1", got)
	}
}

func TestAll(t *testing.T) {
	set := []Member{
		{Crisp(10), 1},
		{Crisp(20), 0.5},
	}
	// d(5 < ALL {10, 20}) = 1.
	if got := All(OpLt, Crisp(5), set); got != 1 {
		t.Errorf("All(<, 5) = %g, want 1", got)
	}
	// d(15 < ALL): violated by 10 (degree 1), partially by 20.
	if got := All(OpLt, Crisp(15), set); got != 0 {
		t.Errorf("All(<, 15) = %g, want 0", got)
	}
	// d(25 < ALL) = 0 via the full member 10.
	if got := All(OpLt, Crisp(25), set); got != 0 {
		t.Errorf("All(<, 25) = %g, want 0", got)
	}
	// Empty set: vacuously 1.
	if got := All(OpLt, Crisp(25), nil); got != 1 {
		t.Errorf("All(<, empty) = %g, want 1", got)
	}
	// Violation only by a partial member: degree limited by its membership.
	halfSet := []Member{{Crisp(1), 0.4}}
	if got := All(OpLt, Crisp(5), halfSet); !almostEq(got, 0.6) {
		t.Errorf("All(<, 5, {1:0.4}) = %g, want 0.6", got)
	}
}

func TestAny(t *testing.T) {
	set := []Member{
		{Crisp(10), 1},
		{Crisp(20), 0.5},
	}
	if got := Any(OpGt, Crisp(15), set); got != 1 {
		t.Errorf("Any(>, 15) = %g, want 1", got)
	}
	if got := Any(OpGt, Crisp(12), set); got != 1 {
		t.Errorf("Any(>, 12) = %g, want 1", got)
	}
	if got := Any(OpGt, Crisp(5), set); got != 0 {
		t.Errorf("Any(>, 5) = %g, want 0", got)
	}
	if got := Any(OpGt, Crisp(25), set); got != 1 {
		t.Errorf("Any(>, 25) = %g, want 1", got)
	}
	if got := Any(OpGt, Crisp(25), nil); got != 0 {
		t.Errorf("Any(>, empty) = %g, want 0", got)
	}
}

// TestQuickAllAnyDuality: d(v op ALL F) = 1 - d(v ¬op ANY F) on any set.
func TestQuickAllAnyDuality(t *testing.T) {
	f := func(vals [4]float64, setVals [3]float64, mus [3]uint8, opByte uint8) bool {
		v := randomTrap(vals[0], vals[1], vals[2], vals[3])
		op := Op(opByte % 6)
		var set []Member
		for i := range setVals {
			set = append(set, Member{Crisp(math.Mod(setVals[i], 50)), float64(mus[i]%101) / 100})
		}
		all := All(op, v, set)
		anyNeg := Any(op.Negate(), v, set)
		// For crisp sets and crisp comparisons this duality is exact only
		// when v is crisp too; for fuzzy v, 1 - d(v ¬op z) need not equal
		// d(v op z). Restrict to the crisp-v case.
		if !v.IsCrisp() {
			return true
		}
		return almostEq(all, 1-anyNeg)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpString(t *testing.T) {
	tests := []struct {
		op   Op
		want string
	}{
		{OpEq, "="}, {OpNe, "<>"}, {OpLt, "<"}, {OpLe, "<="}, {OpGt, ">"}, {OpGe, ">="},
	}
	for _, tc := range tests {
		if got := tc.op.String(); got != tc.want {
			t.Errorf("%d.String() = %q, want %q", tc.op, got, tc.want)
		}
	}
}

func TestOpNegate(t *testing.T) {
	tests := []struct{ op, want Op }{
		{OpEq, OpNe}, {OpNe, OpEq}, {OpLt, OpGe}, {OpGe, OpLt}, {OpLe, OpGt}, {OpGt, OpLe},
	}
	for _, tc := range tests {
		if got := tc.op.Negate(); got != tc.want {
			t.Errorf("%v.Negate() = %v, want %v", tc.op, got, tc.want)
		}
		if got := tc.op.Negate().Negate(); got != tc.op {
			t.Errorf("double negation of %v = %v", tc.op, got)
		}
	}
}

func TestOpFlip(t *testing.T) {
	tests := []struct{ op, want Op }{
		{OpEq, OpEq}, {OpNe, OpNe}, {OpLt, OpGt}, {OpGt, OpLt}, {OpLe, OpGe}, {OpGe, OpLe},
	}
	for _, tc := range tests {
		if got := tc.op.Flip(); got != tc.want {
			t.Errorf("%v.Flip() = %v, want %v", tc.op, got, tc.want)
		}
	}
}

func TestParseOp(t *testing.T) {
	good := map[string]Op{
		"=": OpEq, "==": OpEq, "<>": OpNe, "!=": OpNe,
		"<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
	}
	for s, want := range good {
		got, err := ParseOp(s)
		if err != nil || got != want {
			t.Errorf("ParseOp(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseOp("~"); err == nil {
		t.Errorf("ParseOp(~): want error")
	}
}
