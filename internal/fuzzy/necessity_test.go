package fuzzy

import (
	"testing"
	"testing/quick"
)

func TestNecCrisp(t *testing.T) {
	// On crisp values necessity equals possibility (no uncertainty).
	tests := []struct {
		op   Op
		u, v float64
		want float64
	}{
		{OpEq, 5, 5, 1},
		{OpEq, 5, 6, 0},
		{OpLt, 5, 6, 1},
		{OpLt, 6, 5, 0},
		{OpLe, 5, 5, 1},
	}
	for _, tc := range tests {
		if got := Nec(tc.op, Crisp(tc.u), Crisp(tc.v)); got != tc.want {
			t.Errorf("Nec(%v, %g, %g) = %g, want %g", tc.op, tc.u, tc.v, got, tc.want)
		}
	}
}

func TestNecEqFuzzyIsZeroForOverlapping(t *testing.T) {
	// Two genuinely fuzzy values can always differ, so equality is never
	// necessary: Nec(U = V) = 1 − Poss(U <> V) = 0.
	u := Tri(0, 2, 4)
	v := Tri(1, 3, 5)
	if got := NecEq(u, v); got != 0 {
		t.Errorf("NecEq = %g, want 0", got)
	}
	// Possibility is positive nevertheless — the double measure brackets.
	if Eq(u, v) <= 0 {
		t.Errorf("Poss should be positive")
	}
}

func TestNecLtSeparatedSupports(t *testing.T) {
	// With u's support entirely below v's, u < v is necessary.
	u := Tri(0, 1, 2)
	v := Tri(5, 6, 7)
	if got := Nec(OpLt, u, v); got != 1 {
		t.Errorf("Nec(<) = %g, want 1", got)
	}
	if got := Nec(OpGt, u, v); got != 0 {
		t.Errorf("Nec(>) = %g, want 0", got)
	}
}

// TestQuickNecAtMostPoss: with convex normal distributions necessity is
// always no greater than possibility (Section 2.2 of the paper).
func TestQuickNecAtMostPoss(t *testing.T) {
	f := func(vals [8]float64, opByte uint8) bool {
		u := randomTrap(vals[0], vals[1], vals[2], vals[3])
		v := randomTrap(vals[4], vals[5], vals[6], vals[7])
		op := Op(opByte % 6)
		nec, poss := PossNecInterval(op, u, v)
		return nec <= poss+1e-9 && nec >= -1e-9 && poss <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNecIn(t *testing.T) {
	set := []Member{{Crisp(5), 1}}
	// v = 5 is necessarily in {5}: the only member is fully possible and
	// cannot differ.
	if got := NecIn(Crisp(5), set); got != 1 {
		t.Errorf("NecIn(5, {5}) = %g, want 1", got)
	}
	if got := NecIn(Crisp(6), set); got != 0 {
		t.Errorf("NecIn(6, {5}) = %g, want 0", got)
	}
	// A fuzzy v can always miss the set: necessity collapses to 0 even
	// though possibility is 1.
	v := Tri(4, 5, 6)
	if got := NecIn(v, set); got != 0 {
		t.Errorf("NecIn(fuzzy) = %g, want 0", got)
	}
	if got := In(v, set); got != 1 {
		t.Errorf("In(fuzzy) = %g, want 1", got)
	}
	// Empty set: membership is impossible, necessity 0.
	if got := NecIn(Crisp(5), nil); got != 0 {
		t.Errorf("NecIn(empty) = %g, want 0", got)
	}
}

// TestQuickNecInAtMostIn: the double measure brackets set membership too.
func TestQuickNecInAtMostIn(t *testing.T) {
	f := func(vals [4]float64, setVals [3]float64, mus [3]uint8) bool {
		v := randomTrap(vals[0], vals[1], vals[2], vals[3])
		var set []Member
		for i := range setVals {
			set = append(set, Member{Crisp(float64(int(setVals[i]) % 50)), float64(mus[i]%101) / 100})
		}
		return NecIn(v, set) <= In(v, set)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
