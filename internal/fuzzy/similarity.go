package fuzzy

// Similarity-relation comparisons. Section 2.2 of the paper defines the
// satisfaction degree for a possibly nonbinary comparison θ:
//
//	d(X θ Y) = sup_{x,y} min(µ_U(x), µ_V(y), µ_θ(x, y)).
//
// The most useful nonbinary θ in practice is approximate equality with a
// tolerance: µ_θ(x, y) = µ_T(x − y) for a tolerance distribution T around
// zero. For that shape the sup-min collapses by the standard sup-min
// convolution identity into an ordinary equality test against the
// tolerance-widened operand:
//
//	sup_{x,y} min(µ_U(x), µ_V(y), µ_T(x − y)) = d(U = V ⊕ T),
//
// where ⊕ is fuzzy addition. A crisp symmetric tolerance [−w, +w] makes
// this exactly the band join of DeWitt et al. that the paper compares the
// fuzzy equi-join against (Section 3); a fuzzy tolerance interpolates.

// Tolerance builds a symmetric triangular tolerance distribution around
// zero: fully acceptable differences up to ±core, decaying to zero at
// ±support. Tolerance(0, 0) is exact equality.
func Tolerance(core, support float64) Trapezoid {
	if core < 0 {
		core = -core
	}
	if support < core {
		support = core
	}
	// 0-x, not -x: unary negation of a zero width would produce IEEE
	// negative zero, which renders as "-0" and breaks parse/String
	// round-trips.
	return Trapezoid{0 - support, 0 - core, core, support}
}

// ApproxEq returns the satisfaction degree of the similarity comparison
// "U approximately equals V" under the tolerance distribution tol (a
// distribution of acceptable differences x − y, usually symmetric around
// zero).
func ApproxEq(u, v Trapezoid, tol Trapezoid) float64 {
	return Eq(u, Add(v, tol))
}

// SimilarityFunc is a user-defined similarity relation µ_θ(x, y).
type SimilarityFunc func(x, y float64) float64

// DegreeSimilarity computes d(U θ V) for an arbitrary similarity relation
// by numeric sup-min search over the two supports (closed forms exist only
// for special θ such as ApproxEq). steps controls the grid resolution per
// axis; the result is a lower bound converging from below.
func DegreeSimilarity(u, v Trapezoid, sim SimilarityFunc, steps int) float64 {
	if steps < 2 {
		steps = 2
	}
	uLo, uHi := u.Support()
	vLo, vHi := v.Support()
	du := (uHi - uLo) / float64(steps)
	dv := (vHi - vLo) / float64(steps)
	best := 0.0
	for i := 0; i <= steps; i++ {
		x := uLo + float64(i)*du
		mu := u.Mu(x)
		if mu <= best {
			continue
		}
		for j := 0; j <= steps; j++ {
			y := vLo + float64(j)*dv
			if g := Min(mu, v.Mu(y), sim(x, y)); g > best {
				best = g
			}
		}
	}
	return best
}
