package fuzzy

import (
	"fmt"
	"sort"
	"strings"
)

// Discrete is a discrete possibility distribution, written in the paper's
// Appendix as µ1/x1 + µ2/x2 + …: the value is possibly x_i with
// possibility µ_i. Points are kept sorted by X with distinct X values
// (duplicates merged by fuzzy OR, keeping the maximum possibility).
//
// Discrete distributions appear in the Appendix's interpretation examples
// (e.g. 1/y1 + .8/y2). As the paper notes at the end of Section 3, the
// extended merge-join requires continuous possibility distributions, so
// discrete values are supported by the fuzzy substrate and the nested-loop
// evaluation path only.
type Discrete struct {
	points []Point
}

// Point is one atom of a discrete possibility distribution.
type Point struct {
	X  float64 // the candidate value
	Mu float64 // its possibility, in (0, 1]
}

// NewDiscrete builds a discrete distribution from the given atoms. Atoms
// with non-positive possibility are dropped; duplicate X values are merged
// keeping the maximum possibility; possibilities are clamped to [0, 1].
func NewDiscrete(points ...Point) Discrete {
	byX := make(map[float64]float64, len(points))
	for _, p := range points {
		mu := clamp01(p.Mu)
		if mu <= 0 {
			continue
		}
		if mu > byX[p.X] {
			byX[p.X] = mu
		}
	}
	out := make([]Point, 0, len(byX))
	for x, mu := range byX {
		out = append(out, Point{x, mu})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].X < out[j].X })
	return Discrete{points: out}
}

// Points returns the atoms of the distribution in increasing X order. The
// returned slice must not be modified.
func (d Discrete) Points() []Point { return d.points }

// IsEmpty reports whether the distribution has no possible value.
func (d Discrete) IsEmpty() bool { return len(d.points) == 0 }

// Mu evaluates the membership function at x.
func (d Discrete) Mu(x float64) float64 {
	i := sort.Search(len(d.points), func(i int) bool { return d.points[i].X >= x })
	if i < len(d.points) && d.points[i].X == x {
		return d.points[i].Mu
	}
	return 0
}

// Support returns the least and greatest possible values. It panics on an
// empty distribution.
func (d Discrete) Support() (lo, hi float64) {
	if len(d.points) == 0 {
		panic("fuzzy: Support of empty discrete distribution")
	}
	return d.points[0].X, d.points[len(d.points)-1].X
}

// String renders the distribution in the paper's µ/x + µ/x notation.
func (d Discrete) String() string {
	if len(d.points) == 0 {
		return "<empty>"
	}
	var b strings.Builder
	for i, p := range d.points {
		if i > 0 {
			b.WriteString(" + ")
		}
		fmt.Fprintf(&b, "%g/%g", p.Mu, p.X)
	}
	return b.String()
}

// EqDD returns the satisfaction degree d(U = V) for two discrete
// distributions: max over common values of min(µ_U(x), µ_V(x)).
func EqDD(u, v Discrete) float64 {
	d := 0.0
	i, j := 0, 0
	for i < len(u.points) && j < len(v.points) {
		switch {
		case u.points[i].X < v.points[j].X:
			i++
		case u.points[i].X > v.points[j].X:
			j++
		default:
			if g := Min(u.points[i].Mu, v.points[j].Mu); g > d {
				d = g
			}
			i++
			j++
		}
	}
	return d
}

// EqDT returns the satisfaction degree d(U = V) between a discrete and a
// trapezoidal distribution: max over u's atoms of min(µ_U(x), µ_V(x)).
func EqDT(u Discrete, v Trapezoid) float64 {
	d := 0.0
	for _, p := range u.points {
		if g := Min(p.Mu, v.Mu(p.X)); g > d {
			d = g
		}
	}
	return d
}

// rightSup returns sup_{y ≥ x} µ_t(y) (strictness is immaterial on the
// continuous part; callers handle crisp trapezoids separately).
func (t Trapezoid) rightSup(x float64) float64 {
	switch {
	case x <= t.C:
		return 1
	case x > t.D:
		return 0
	default:
		return t.Mu(x)
	}
}

// leftSup returns sup_{y ≤ x} µ_t(y).
func (t Trapezoid) leftSup(x float64) float64 {
	switch {
	case x >= t.B:
		return 1
	case x < t.A:
		return 0
	default:
		return t.Mu(x)
	}
}

// DegreeDD returns the satisfaction degree d(U op V) for two discrete
// distributions: sup over pairs (x, y) with x op y of min(µ_U(x), µ_V(y)).
// Strict and non-strict inequalities differ here because the domains are
// atomic.
func DegreeDD(op Op, u, v Discrete) float64 {
	if op == OpEq {
		return EqDD(u, v)
	}
	d := 0.0
	for _, p := range u.points {
		for _, q := range v.points {
			if crispHolds(op, p.X, q.X) {
				if g := Min(p.Mu, q.Mu); g > d {
					d = g
				}
			}
		}
	}
	return d
}

func crispHolds(op Op, x, y float64) bool {
	switch op {
	case OpEq:
		return x == y
	case OpNe:
		return x != y
	case OpLt:
		return x < y
	case OpLe:
		return x <= y
	case OpGt:
		return x > y
	case OpGe:
		return x >= y
	default:
		panic(fmt.Sprintf("fuzzy: crispHolds of unknown operator %d", int(op)))
	}
}

// DegreeDT returns the satisfaction degree d(U op V) between a discrete
// distribution U and a trapezoidal distribution V.
func DegreeDT(op Op, u Discrete, v Trapezoid) float64 {
	if v.IsCrisp() {
		return DegreeDD(op, u, NewDiscrete(Point{v.A, 1}))
	}
	d := 0.0
	for _, p := range u.points {
		var s float64
		switch op {
		case OpEq:
			s = v.Mu(p.X)
		case OpNe:
			s = 1 // some y ≠ x with µ_V(y) arbitrarily close to 1 exists
		case OpLt, OpLe:
			s = v.rightSup(p.X)
		case OpGt, OpGe:
			s = v.leftSup(p.X)
		default:
			panic(fmt.Sprintf("fuzzy: DegreeDT of unknown operator %d", int(op)))
		}
		if g := Min(p.Mu, s); g > d {
			d = g
		}
	}
	return d
}

// DegreeTD returns the satisfaction degree d(U op V) between a trapezoidal
// distribution U and a discrete distribution V.
func DegreeTD(op Op, u Trapezoid, v Discrete) float64 {
	return DegreeDT(op.Flip(), v, u)
}
