package fuzzy

import (
	"testing"
	"testing/quick"
)

func members(vs ...Trapezoid) []Member {
	out := make([]Member, len(vs))
	for i, v := range vs {
		out[i] = Member{v, 1}
	}
	return out
}

func TestAggregateCount(t *testing.T) {
	got, ok := Aggregate(AggCount, members(Crisp(1), Crisp(2), Tri(0, 1, 2)))
	if !ok || got != Crisp(3) {
		t.Errorf("COUNT = %v, %v; want 3, true", got, ok)
	}
	// COUNT of the empty set is 0, not NULL (Section 6).
	got, ok = Aggregate(AggCount, nil)
	if !ok || got != Crisp(0) {
		t.Errorf("COUNT(empty) = %v, %v; want 0, true", got, ok)
	}
}

func TestAggregateEmptyIsNull(t *testing.T) {
	for _, f := range []AggFunc{AggSum, AggAvg, AggMin, AggMax} {
		if _, ok := Aggregate(f, nil); ok {
			t.Errorf("%v(empty): ok = true, want NULL", f)
		}
	}
}

func TestAggregateSum(t *testing.T) {
	got, ok := Aggregate(AggSum, members(Trap(1, 2, 3, 4), Trap(10, 20, 30, 40)))
	if !ok || got != (Trapezoid{11, 22, 33, 44}) {
		t.Errorf("SUM = %v, %v", got, ok)
	}
}

func TestAggregateAvg(t *testing.T) {
	got, ok := Aggregate(AggAvg, members(Crisp(10), Crisp(20), Crisp(30)))
	if !ok || got != Crisp(20) {
		t.Errorf("AVG = %v, %v; want 20", got, ok)
	}
	got, ok = Aggregate(AggAvg, members(Trap(0, 0, 2, 2), Trap(2, 2, 4, 4)))
	if !ok || got != (Trapezoid{1, 1, 3, 3}) {
		t.Errorf("AVG = %v, %v; want [1,1,3,3]", got, ok)
	}
}

// TestAggregateMinMaxDefuzzified: MIN and MAX order fuzzy values by the
// center of their 1-cuts (Section 6) and return the original distribution.
func TestAggregateMinMaxDefuzzified(t *testing.T) {
	a := Tri(0, 10, 30)   // centroid 10
	b := Trap(5, 6, 8, 9) // centroid 7
	c := Crisp(12)        // centroid 12
	set := members(a, b, c)
	if got, ok := Aggregate(AggMin, set); !ok || got != b {
		t.Errorf("MIN = %v, %v; want %v", got, ok, b)
	}
	if got, ok := Aggregate(AggMax, set); !ok || got != c {
		t.Errorf("MAX = %v, %v; want %v", got, ok, c)
	}
}

func TestAggregateSingleton(t *testing.T) {
	v := Tri(1, 2, 3)
	for _, f := range []AggFunc{AggSum, AggAvg, AggMin, AggMax} {
		got, ok := Aggregate(f, members(v))
		if !ok || got != v {
			t.Errorf("%v({v}) = %v, %v; want v", f, got, ok)
		}
	}
}

// TestAggregateMinMaxTieDeterministic: values with equal centroids (the
// defuzzification can tie) must select the same value regardless of input
// order.
func TestAggregateMinMaxTieDeterministic(t *testing.T) {
	a := Tri(3, 4, 5)     // centroid 4
	b := Trap(2, 3, 5, 6) // centroid 4
	c := Crisp(9)
	for _, f := range []AggFunc{AggMin, AggMax} {
		r1, _ := Aggregate(f, members(a, b, c))
		r2, _ := Aggregate(f, members(c, b, a))
		r3, _ := Aggregate(f, members(b, c, a))
		if r1 != r2 || r2 != r3 {
			t.Errorf("%v not order-independent: %v %v %v", f, r1, r2, r3)
		}
	}
	mn, _ := Aggregate(AggMin, members(a, b))
	if mn != b {
		t.Errorf("MIN tie = %v, want the corner-wise smaller %v", mn, b)
	}
}

func TestAggFuncString(t *testing.T) {
	tests := []struct {
		f    AggFunc
		want string
	}{
		{AggCount, "COUNT"}, {AggSum, "SUM"}, {AggAvg, "AVG"}, {AggMin, "MIN"}, {AggMax, "MAX"},
	}
	for _, tc := range tests {
		if got := tc.f.String(); got != tc.want {
			t.Errorf("String = %q, want %q", got, tc.want)
		}
	}
}

func TestParseAggFunc(t *testing.T) {
	for _, s := range []string{"count", "COUNT", "Count"} {
		if got, err := ParseAggFunc(s); err != nil || got != AggCount {
			t.Errorf("ParseAggFunc(%q) = %v, %v", s, got, err)
		}
	}
	for _, tc := range []struct {
		in   string
		want AggFunc
	}{{"sum", AggSum}, {"avg", AggAvg}, {"min", AggMin}, {"max", AggMax}} {
		if got, err := ParseAggFunc(tc.in); err != nil || got != tc.want {
			t.Errorf("ParseAggFunc(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseAggFunc("median"); err == nil {
		t.Errorf("ParseAggFunc(median): want error")
	}
}

func TestQuickSumCentroid(t *testing.T) {
	f := func(vals [12]float64) bool {
		set := members(
			randomTrap(vals[0], vals[1], vals[2], vals[3]),
			randomTrap(vals[4], vals[5], vals[6], vals[7]),
			randomTrap(vals[8], vals[9], vals[10], vals[11]),
		)
		sum, ok := Aggregate(AggSum, set)
		if !ok {
			return false
		}
		want := 0.0
		for _, m := range set {
			want += m.Value.Centroid()
		}
		return almostEq(sum.Centroid(), want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAvgBetweenMinMax(t *testing.T) {
	f := func(vals [12]float64) bool {
		set := members(
			randomTrap(vals[0], vals[1], vals[2], vals[3]),
			randomTrap(vals[4], vals[5], vals[6], vals[7]),
			randomTrap(vals[8], vals[9], vals[10], vals[11]),
		)
		avg, _ := Aggregate(AggAvg, set)
		mn, _ := Aggregate(AggMin, set)
		mx, _ := Aggregate(AggMax, set)
		return mn.Centroid()-1e-9 <= avg.Centroid() && avg.Centroid() <= mx.Centroid()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMinMaxReturnElement(t *testing.T) {
	f := func(vals [8]float64) bool {
		a := randomTrap(vals[0], vals[1], vals[2], vals[3])
		b := randomTrap(vals[4], vals[5], vals[6], vals[7])
		set := members(a, b)
		mn, _ := Aggregate(AggMin, set)
		mx, _ := Aggregate(AggMax, set)
		isElem := func(v Trapezoid) bool { return v == a || v == b }
		return isElem(mn) && isElem(mx)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
