package fuzzy

import "math"

// Fuzzy arithmetic (Section 6 of the paper). With trapezoidal membership
// functions, a fuzzy value induces two intervals: the 0-cut [A, D] of all
// values with membership greater than 0 and the 1-cut [B, C] of all values
// with membership 1. An arithmetic operation takes two values and
// determines the two intervals of the result by interval arithmetic on the
// corresponding cuts; e.g. for x + y the 0-cut is [x.A + y.A, x.D + y.D]
// and the 1-cut is [x.B + y.B, x.C + y.C].

// Add returns the fuzzy sum t + u.
func Add(t, u Trapezoid) Trapezoid {
	return Trapezoid{t.A + u.A, t.B + u.B, t.C + u.C, t.D + u.D}
}

// Sub returns the fuzzy difference t − u.
func Sub(t, u Trapezoid) Trapezoid {
	return Trapezoid{t.A - u.D, t.B - u.C, t.C - u.B, t.D - u.A}
}

// Neg returns the fuzzy negation −t.
func Neg(t Trapezoid) Trapezoid {
	return Trapezoid{-t.D, -t.C, -t.B, -t.A}
}

// Mul returns the fuzzy product t × u, computed by interval multiplication
// of the 0-cuts and 1-cuts. (For trapezoids this is the standard linear
// approximation of the extension-principle product.)
func Mul(t, u Trapezoid) Trapezoid {
	a, d := intervalMul(t.A, t.D, u.A, u.D)
	b, c := intervalMul(t.B, t.C, u.B, u.C)
	// Guard against float rounding breaking the nesting of the cuts.
	if b < a {
		b = a
	}
	if c > d {
		c = d
	}
	if c < b {
		c = b
	}
	return Trapezoid{a, b, c, d}
}

func intervalMul(lo1, hi1, lo2, hi2 float64) (lo, hi float64) {
	p1, p2, p3, p4 := lo1*lo2, lo1*hi2, hi1*lo2, hi1*hi2
	lo = math.Min(math.Min(p1, p2), math.Min(p3, p4))
	hi = math.Max(math.Max(p1, p2), math.Max(p3, p4))
	return lo, hi
}

// Scale returns the fuzzy value t scaled by the crisp factor k. AVG is
// defined by fuzzy addition followed by division with the crisp group
// cardinality, i.e. Scale(sum, 1/n) (Section 6).
func Scale(t Trapezoid, k float64) Trapezoid {
	if k >= 0 {
		return Trapezoid{t.A * k, t.B * k, t.C * k, t.D * k}
	}
	return Trapezoid{t.D * k, t.C * k, t.B * k, t.A * k}
}
