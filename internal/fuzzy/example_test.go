package fuzzy_test

import (
	"fmt"

	"repro/internal/fuzzy"
)

// The paper's Fig. 1: "medium young" is fully possible between 25 and 30;
// 24 belongs to it with degree 0.8, and "about 35" matches it with 0.5.
func ExampleEq() {
	mediumYoung := fuzzy.Trap(20, 25, 30, 35)
	about35 := fuzzy.Tri(30, 35, 40)

	fmt.Println(fuzzy.Eq(fuzzy.Crisp(24), mediumYoung))
	fmt.Println(fuzzy.Eq(about35, mediumYoung))
	// Output:
	// 0.8
	// 0.5
}

func ExampleTrapezoid_Mu() {
	mediumYoung := fuzzy.Trap(20, 25, 30, 35)
	fmt.Println(mediumYoung.Mu(27))
	fmt.Println(mediumYoung.Mu(24))
	fmt.Println(mediumYoung.Mu(19))
	// Output:
	// 1
	// 0.8
	// 0
}

// Fuzzy values sort by the Definition 3.1 interval order: first by the
// begin of the support, then by its end (Example 3.1 of the paper).
func ExampleTrapezoid_Compare() {
	r1 := fuzzy.Interval(30, 35)
	r2 := fuzzy.Interval(20, 28)
	r3 := fuzzy.Interval(20, 35)
	fmt.Println(r2.Less(r3), r3.Less(r1))
	// Output:
	// true true
}

func ExampleAggregate() {
	set := []fuzzy.Member{
		{Value: fuzzy.Tri(30, 40, 50), Mu: 0.4}, // about 40K
		{Value: fuzzy.Trap(64, 74, 120, 120), Mu: 1},
	}
	max, _ := fuzzy.Aggregate(fuzzy.AggMax, set)
	count, _ := fuzzy.Aggregate(fuzzy.AggCount, set)
	fmt.Println(max)
	fmt.Println(count)
	// Output:
	// TRAP(64,74,120,120)
	// 2
}

// Approximate equality under a crisp band is the classic band join.
func ExampleApproxEq() {
	band := fuzzy.Interval(-5, 5)
	fmt.Println(fuzzy.ApproxEq(fuzzy.Crisp(10), fuzzy.Crisp(13), band))
	fmt.Println(fuzzy.ApproxEq(fuzzy.Crisp(10), fuzzy.Crisp(16), band))
	// Output:
	// 1
	// 0
}
