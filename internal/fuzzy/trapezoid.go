// Package fuzzy implements the possibility-distribution substrate of the
// fuzzy relational database described in Yang et al., "Efficient Processing
// of Nested Fuzzy SQL Queries in a Fuzzy Database" (TKDE 13(6), 2001; ICDE
// 1995).
//
// Ill-known data values are represented by possibility distributions with
// trapezoidal membership functions (Section 2.1 of the paper; triangular and
// rectangular shapes are special cases). The package provides:
//
//   - Trapezoid, the distribution type, with membership evaluation and
//     α-cuts;
//   - satisfaction degrees d(X θ Y) for θ in {=, ≠, <, ≤, >, ≥}
//     (Section 2.2), computed in closed form;
//   - the interval order ≼ of Definition 3.1 used by the extended
//     merge-join;
//   - fuzzy arithmetic and the defuzzification used by aggregate functions
//     (Section 6);
//   - set-membership and quantified degrees d(v in F), d(v θ ALL F)
//     (Sections 4 and 7);
//   - discrete possibility distributions (Appendix).
//
// All degrees are float64 values in [0, 1].
package fuzzy

import (
	"fmt"
	"math"
)

// Trapezoid is a possibility distribution with a trapezoidal membership
// function. Its support (0-cut) is the interval [A, D] and its core (1-cut)
// is [B, C]; membership rises linearly on [A, B] and falls linearly on
// [C, D]. The invariant A ≤ B ≤ C ≤ D must hold; use Valid to check it.
//
// A crisp value v is the degenerate trapezoid (v, v, v, v); a triangular
// distribution has B == C; a rectangular (interval) distribution has
// A == B and C == D.
type Trapezoid struct {
	A, B, C, D float64
}

// Crisp returns the degenerate distribution of a precisely known value v,
// i.e. µ(x) = 1 iff x == v (Section 2.2 of the paper).
func Crisp(v float64) Trapezoid {
	return Trapezoid{v, v, v, v}
}

// Tri returns a triangular distribution peaking at peak with the given
// support endpoints.
func Tri(lo, peak, hi float64) Trapezoid {
	return Trapezoid{lo, peak, peak, hi}
}

// About returns the triangular distribution "about v": full membership at v,
// falling to zero at v±spread. It models linguistic values such as
// "about 35" (Fig. 1 of the paper).
func About(v, spread float64) Trapezoid {
	return Tri(v-spread, v, v+spread)
}

// Interval returns the rectangular distribution that is fully possible on
// [lo, hi] and impossible elsewhere.
func Interval(lo, hi float64) Trapezoid {
	return Trapezoid{lo, lo, hi, hi}
}

// Trap returns the trapezoid (a, b, c, d). It panics if the shape invariant
// a ≤ b ≤ c ≤ d is violated; use NewTrap for a checked constructor.
func Trap(a, b, c, d float64) Trapezoid {
	t := Trapezoid{a, b, c, d}
	if !t.Valid() {
		panic(fmt.Sprintf("fuzzy: invalid trapezoid (%g, %g, %g, %g)", a, b, c, d))
	}
	return t
}

// NewTrap returns the trapezoid (a, b, c, d), or an error if the shape
// invariant a ≤ b ≤ c ≤ d is violated.
func NewTrap(a, b, c, d float64) (Trapezoid, error) {
	t := Trapezoid{a, b, c, d}
	if !t.Valid() {
		return Trapezoid{}, fmt.Errorf("fuzzy: invalid trapezoid (%g, %g, %g, %g): want a <= b <= c <= d", a, b, c, d)
	}
	return t, nil
}

// Valid reports whether the shape invariant A ≤ B ≤ C ≤ D holds and all
// corners are finite.
func (t Trapezoid) Valid() bool {
	if math.IsNaN(t.A) || math.IsNaN(t.B) || math.IsNaN(t.C) || math.IsNaN(t.D) {
		return false
	}
	if math.IsInf(t.A, 0) || math.IsInf(t.B, 0) || math.IsInf(t.C, 0) || math.IsInf(t.D, 0) {
		return false
	}
	return t.A <= t.B && t.B <= t.C && t.C <= t.D
}

// IsCrisp reports whether t is a degenerate single-point distribution.
func (t Trapezoid) IsCrisp() bool {
	return t.A == t.D
}

// Mu evaluates the membership function at x.
func (t Trapezoid) Mu(x float64) float64 {
	switch {
	case x < t.A || x > t.D:
		return 0
	case x >= t.B && x <= t.C:
		return 1
	case x < t.B:
		// Rising edge; t.B > t.A here because x ∈ [A, B) is non-empty.
		return (x - t.A) / (t.B - t.A)
	default:
		// Falling edge; t.D > t.C here.
		return (t.D - x) / (t.D - t.C)
	}
}

// Support returns the endpoints [b(v), e(v)] of the interval outside of
// which membership is zero. For a crisp value both endpoints equal the
// value itself (Section 3 of the paper).
func (t Trapezoid) Support() (lo, hi float64) {
	return t.A, t.D
}

// Params returns the four corner abscissae (a, b, c, d) of the membership
// function as plain float64s, the kernel-consumable flat form compiled
// degree kernels load into column slices.
func (t Trapezoid) Params() (a, b, c, d float64) {
	return t.A, t.B, t.C, t.D
}

// Core returns the endpoints of the 1-cut, the interval of fully possible
// values.
func (t Trapezoid) Core() (lo, hi float64) {
	return t.B, t.C
}

// AlphaCut returns the interval of values whose membership is at least
// alpha, for alpha in (0, 1]. For alpha <= 0 it returns the support.
func (t Trapezoid) AlphaCut(alpha float64) (lo, hi float64) {
	if alpha <= 0 {
		return t.A, t.D
	}
	if alpha > 1 {
		alpha = 1
	}
	return t.A + alpha*(t.B-t.A), t.D - alpha*(t.D-t.C)
}

// Centroid returns the center of the 1-cut, the defuzzification used by the
// MIN and MAX aggregate functions of Fuzzy SQL (Section 6 of the paper).
func (t Trapezoid) Centroid() float64 {
	return (t.B + t.C) / 2
}

// Width returns the length of the support interval; 0 for crisp values.
func (t Trapezoid) Width() float64 {
	return t.D - t.A
}

// Intersects reports whether the supports of t and u overlap. Tuples whose
// join-attribute supports do not intersect cannot join (Section 3).
func (t Trapezoid) Intersects(u Trapezoid) bool {
	return t.A <= u.D && u.A <= t.D
}

// Equal reports whether t and u are the same distribution (corner-wise
// equality). This is the identity used by duplicate elimination, not the
// fuzzy possibility of equality — see Eq for the latter.
func (t Trapezoid) Equal(u Trapezoid) bool {
	return t == u
}

// String renders the distribution compactly: crisp values as the number,
// others as TRAP(a,b,c,d).
func (t Trapezoid) String() string {
	if t.IsCrisp() {
		return fmt.Sprintf("%g", t.A)
	}
	return fmt.Sprintf("TRAP(%g,%g,%g,%g)", t.A, t.B, t.C, t.D)
}

// Compare orders t against u by the linear order ≼ of Definition 3.1:
// first by the begin of the support interval, then by its end. It returns
// -1, 0, or +1. The extended merge-join sorts both relations by this order.
func (t Trapezoid) Compare(u Trapezoid) int {
	switch {
	case t.A < u.A:
		return -1
	case t.A > u.A:
		return 1
	case t.D < u.D:
		return -1
	case t.D > u.D:
		return 1
	default:
		return 0
	}
}

// Less reports t ≺ u under the Definition 3.1 order.
func (t Trapezoid) Less(u Trapezoid) bool {
	return t.Compare(u) < 0
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
