package fuzzy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestToleranceShape(t *testing.T) {
	tol := Tolerance(1, 3)
	if tol != (Trapezoid{-3, -1, 1, 3}) {
		t.Errorf("Tolerance = %v", tol)
	}
	if Tolerance(0, 0) != Crisp(0) {
		t.Errorf("zero tolerance should be crisp zero")
	}
	// Negative core is normalized; support below core is clamped.
	if Tolerance(-2, 1) != (Trapezoid{-2, -2, 2, 2}) {
		t.Errorf("Tolerance(-2,1) = %v", Tolerance(-2, 1))
	}
}

func TestApproxEqExactTolIsEq(t *testing.T) {
	u := Trap(20, 25, 30, 35)
	v := Tri(30, 35, 40)
	if got, want := ApproxEq(u, v, Crisp(0)), Eq(u, v); !almostEq(got, want) {
		t.Errorf("ApproxEq with zero tolerance = %g, want Eq = %g", got, want)
	}
}

func TestApproxEqCrispBandJoin(t *testing.T) {
	// Crisp values with a crisp band [-w, +w]: the band join predicate
	// |x - y| <= w.
	band := Interval(-5, 5)
	tests := []struct {
		x, y float64
		want float64
	}{
		{10, 13, 1}, // |diff| = 3 <= 5
		{10, 15, 1}, // boundary
		{10, 16, 0},
		{16, 10, 0},
	}
	for _, tc := range tests {
		if got := ApproxEq(Crisp(tc.x), Crisp(tc.y), band); got != tc.want {
			t.Errorf("ApproxEq(%g, %g, band 5) = %g, want %g", tc.x, tc.y, got, tc.want)
		}
	}
}

func TestApproxEqWidensMatches(t *testing.T) {
	u := Tri(0, 1, 2)
	v := Tri(4, 5, 6) // disjoint from u
	if Eq(u, v) != 0 {
		t.Fatalf("setup: expected disjoint")
	}
	if got := ApproxEq(u, v, Tolerance(0, 1)); got != 0 {
		t.Errorf("small tolerance should not connect them: %g", got)
	}
	if got := ApproxEq(u, v, Tolerance(4, 6)); got != 1 {
		t.Errorf("wide tolerance should fully connect them: %g", got)
	}
	mid := ApproxEq(u, v, Tolerance(1, 4))
	if mid <= 0 || mid >= 1 {
		t.Errorf("intermediate tolerance should partially connect: %g", mid)
	}
}

// TestApproxEqMatchesSupMin: the convolution identity against the numeric
// sup-min with µ_θ(x, y) = µ_tol(x − y).
func TestApproxEqMatchesSupMin(t *testing.T) {
	shapes := []Trapezoid{Crisp(3), Tri(0, 2, 4), Trap(1, 2, 6, 9), Interval(2, 5)}
	tols := []Trapezoid{Crisp(0), Tolerance(0, 2), Tolerance(1, 3)}
	for _, u := range shapes {
		for _, v := range shapes {
			for _, tol := range tols {
				want := DegreeSimilarity(u, v, func(x, y float64) float64 {
					return tol.Mu(x - y)
				}, 300)
				got := ApproxEq(u, v, tol)
				if math.Abs(got-want) > 0.03 {
					t.Errorf("ApproxEq(%v, %v, %v) = %g, sup-min says %g", u, v, tol, got, want)
				}
			}
		}
	}
}

func TestQuickApproxEqAtLeastEq(t *testing.T) {
	f := func(vals [8]float64, w uint8) bool {
		u := randomTrap(vals[0], vals[1], vals[2], vals[3])
		v := randomTrap(vals[4], vals[5], vals[6], vals[7])
		tol := Tolerance(0, float64(w%10))
		// Widening can only increase the degree.
		return ApproxEq(u, v, tol) >= Eq(u, v)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickApproxEqSymmetricTolerance(t *testing.T) {
	f := func(vals [8]float64, c, w uint8) bool {
		u := randomTrap(vals[0], vals[1], vals[2], vals[3])
		v := randomTrap(vals[4], vals[5], vals[6], vals[7])
		tol := Tolerance(float64(c%5), float64(c%5)+float64(w%5))
		// A symmetric tolerance keeps approximate equality symmetric.
		return almostEq(ApproxEq(u, v, tol), ApproxEq(v, u, tol))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDegreeSimilarityCustom(t *testing.T) {
	// A custom similarity: x and y similar when y ≈ 2x.
	sim := func(x, y float64) float64 {
		d := math.Abs(y - 2*x)
		if d >= 2 {
			return 0
		}
		return 1 - d/2
	}
	u := Crisp(3)
	v := Crisp(6)
	if got := DegreeSimilarity(u, v, sim, 100); !almostEq(got, 1) {
		t.Errorf("d(3 θ 6) = %g, want 1", got)
	}
	v2 := Crisp(7)
	if got := DegreeSimilarity(u, v2, sim, 100); math.Abs(got-0.5) > 0.05 {
		t.Errorf("d(3 θ 7) = %g, want ≈ 0.5", got)
	}
	if got := DegreeSimilarity(u, Crisp(20), sim, 100); got != 0 {
		t.Errorf("d(3 θ 20) = %g, want 0", got)
	}
}
