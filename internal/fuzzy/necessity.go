package fuzzy

// The necessity measure of the double-measure framework the paper
// discusses (and deliberately does not adopt) in Section 2.2:
//
//	Nec(X θ F) = 1 − Poss(X ¬θ F)
//
// Intuitively, possibility measures the "best possibility" for the
// comparison to succeed; necessity measures the "impossibility" for the
// opposite comparison to succeed. With convex normal distributions (our
// trapezoids), necessity never exceeds possibility.
//
// The query engine uses possibility only — the paper's Section 2.2
// explains that double-measure answers split into possibly/necessarily
// relations, the algebraic operations stop composing, and unnesting
// becomes impossible. These functions exist so applications can compute
// the necessity of an answer after the fact, and so the Nec ≤ Poss
// relationship is testable.

// Nec returns the necessity degree Nec(U op V) = 1 − Poss(U ¬op V).
func Nec(op Op, u, v Trapezoid) float64 {
	return 1 - Degree(op.Negate(), u, v)
}

// NecEq returns the necessity of equality, Nec(U = V).
func NecEq(u, v Trapezoid) float64 { return Nec(OpEq, u, v) }

// NecIn returns the necessity that v equals some value of the fuzzy set T:
// 1 − the possibility that v differs from every value of T. Following the
// same dual construction as Section 7's ALL quantifier:
//
//	Nec(v in T) = 1 − d(v <> ALL T).
func NecIn(v Trapezoid, set []Member) float64 {
	return 1 - All(OpNe, v, set)
}

// PossNecInterval returns the [necessity, possibility] pair for one
// comparison — the double measure of Prade and Testemale that the paper
// contrasts with its single-measure design.
func PossNecInterval(op Op, u, v Trapezoid) (nec, poss float64) {
	return Nec(op, u, v), Degree(op, u, v)
}
