package fuzzy

import "fmt"

// Op is a fuzzy comparison operator appearing in Fuzzy SQL predicates
// X θ Y (Section 2.2 of the paper).
type Op int

// The comparison operators of Fuzzy SQL.
const (
	OpEq Op = iota // =
	OpNe           // <>
	OpLt           // <
	OpLe           // <=
	OpGt           // >
	OpGe           // >=
)

// String returns the SQL spelling of the operator.
func (op Op) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("Op(%d)", int(op))
	}
}

// Negate returns the operator θ' such that x θ' y ⇔ ¬(x θ y) on crisp
// values. It is used when unnesting JALL queries, whose temporary relation
// predicate contains ¬(R.Y op S.Z) (Section 7).
func (op Op) Negate() Op {
	switch op {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpLt:
		return OpGe
	case OpLe:
		return OpGt
	case OpGt:
		return OpLe
	case OpGe:
		return OpLt
	default:
		panic(fmt.Sprintf("fuzzy: Negate of unknown operator %d", int(op)))
	}
}

// Flip returns the operator θ' such that x θ y ⇔ y θ' x.
func (op Op) Flip() Op {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	default:
		return op
	}
}

// ParseOp parses the SQL spelling of a comparison operator. It accepts
// both "<>" and "!=" for OpNe.
func ParseOp(s string) (Op, error) {
	switch s {
	case "=", "==":
		return OpEq, nil
	case "<>", "!=":
		return OpNe, nil
	case "<":
		return OpLt, nil
	case "<=":
		return OpLe, nil
	case ">":
		return OpGt, nil
	case ">=":
		return OpGe, nil
	default:
		return 0, fmt.Errorf("fuzzy: unknown comparison operator %q", s)
	}
}

// Eq returns the satisfaction degree d(U = V) =
// sup_x min(µ_U(x), µ_V(x)): the height of the highest intersection point
// of the two possibility distributions (Section 2.2).
//
// For example, with "medium young" = TRAP(20,25,30,35) and "about 35" =
// TRAP(30,35,35,40) as in Fig. 1 of the paper, Eq returns 0.5.
func Eq(u, v Trapezoid) float64 {
	// Cores overlap: a common fully-possible value exists.
	if u.B <= v.C && v.B <= u.C {
		return 1
	}
	if u.C < v.B {
		// u lies to the left: u's falling edge meets v's rising edge.
		return edgeIntersection(u.C, u.D, v.A, v.B)
	}
	// v lies to the left.
	return edgeIntersection(v.C, v.D, u.A, u.B)
}

// edgeIntersection returns the height at which the falling edge from
// (fallHi, 1) to (fallLo, 0) meets the rising edge from (riseLo, 0) to
// (riseHi, 1), where fallHi < riseHi (the left core ends before the right
// core begins). fallLo is the support end of the left distribution and
// riseLo the support begin of the right one.
func edgeIntersection(fallHi, fallLo, riseLo, riseHi float64) float64 {
	if fallLo <= riseLo {
		// Supports touch at most at a single zero-membership point.
		return 0
	}
	den := (fallLo - fallHi) + (riseHi - riseLo)
	if den <= 0 {
		// Both edges vertical; supports overlap (fallLo > riseLo) so some
		// point carries membership 1 in both — but then the cores would
		// overlap, which the caller has excluded. Degenerate float input;
		// be conservative.
		return 1
	}
	return clamp01((fallLo - riseLo) / den)
}

// Lt returns the satisfaction degree d(U < V) =
// sup { min(µ_U(x), µ_V(y)) : x < y }. On continuous distributions strict
// and non-strict inequality coincide except when both operands are crisp,
// where the crisp comparison is used.
func Lt(u, v Trapezoid) float64 {
	if u.IsCrisp() && v.IsCrisp() {
		if u.A < v.A {
			return 1
		}
		return 0
	}
	return leDegree(u, v)
}

// Le returns the satisfaction degree d(U <= V).
func Le(u, v Trapezoid) float64 {
	if u.IsCrisp() && v.IsCrisp() {
		if u.A <= v.A {
			return 1
		}
		return 0
	}
	return leDegree(u, v)
}

// leDegree computes sup { min(µ_U(x), µ_V(y)) : x ≤ y } for distributions
// that are not both crisp. The optimum is the largest α whose α-cuts allow
// the leftmost U-value to be at most the rightmost V-value:
// L_U(α) ≤ R_V(α) with L_U(α) = u.A + α(u.B−u.A), R_V(α) = v.D − α(v.D−v.C).
func leDegree(u, v Trapezoid) float64 {
	if u.B <= v.C {
		return 1
	}
	if u.A > v.D {
		return 0
	}
	den := (u.B - u.A) + (v.D - v.C)
	if den <= 0 {
		// Both relevant edges vertical with u.B > v.C and u.A ≤ v.D, which
		// forces u.A = u.B and v.C = v.D, i.e. u.A > v.D: unreachable; be
		// conservative.
		return 0
	}
	return clamp01((v.D - u.A) / den)
}

// Gt returns the satisfaction degree d(U > V).
func Gt(u, v Trapezoid) float64 { return Lt(v, u) }

// Ge returns the satisfaction degree d(U >= V).
func Ge(u, v Trapezoid) float64 { return Le(v, u) }

// Ne returns the satisfaction degree d(U <> V) =
// sup { min(µ_U(x), µ_V(y)) : x ≠ y }. Unless both operands are crisp
// (where it is the crisp comparison), some fully possible pair of distinct
// values exists and the degree is 1.
func Ne(u, v Trapezoid) float64 {
	if u.IsCrisp() && v.IsCrisp() {
		if u.A != v.A {
			return 1
		}
		return 0
	}
	return 1
}

// Degree returns the satisfaction degree d(U op V) for any comparison
// operator (Section 2.2).
func Degree(op Op, u, v Trapezoid) float64 {
	switch op {
	case OpEq:
		return Eq(u, v)
	case OpNe:
		return Ne(u, v)
	case OpLt:
		return Lt(u, v)
	case OpLe:
		return Le(u, v)
	case OpGt:
		return Gt(u, v)
	case OpGe:
		return Ge(u, v)
	default:
		panic(fmt.Sprintf("fuzzy: Degree of unknown operator %d", int(op)))
	}
}

// Min returns the fuzzy AND (minimum) of the given degrees; 1 for no
// arguments, matching the neutral element of conjunction.
func Min(ds ...float64) float64 {
	m := 1.0
	for _, d := range ds {
		if d < m {
			m = d
		}
	}
	return m
}

// Max returns the fuzzy OR (maximum) of the given degrees; 0 for no
// arguments, matching the neutral element of disjunction.
func Max(ds ...float64) float64 {
	m := 0.0
	for _, d := range ds {
		if d > m {
			m = d
		}
	}
	return m
}

// Not returns the fuzzy negation 1 − d.
func Not(d float64) float64 { return 1 - d }

// Member is one element of a fuzzy set of values: a possibility
// distribution together with the element's membership degree in the set.
// Temporary relations produced by inner query blocks are fuzzy sets of
// values of this kind (Section 4).
type Member struct {
	Value Trapezoid
	Mu    float64
}

// In returns the satisfaction degree d(v in T) =
// max_{z ∈ T} min(µ_T(z), d(v = z)), the possibility for v to equal any
// value in the fuzzy set T; 0 for empty T (Section 4).
func In(v Trapezoid, set []Member) float64 {
	d := 0.0
	for _, m := range set {
		if g := Min(m.Mu, Eq(v, m.Value)); g > d {
			d = g
		}
		if d == 1 {
			break
		}
	}
	return d
}

// NotIn returns the satisfaction degree d(v not in T) = 1 − d(v in T)
// (Section 5).
func NotIn(v Trapezoid, set []Member) float64 {
	return 1 - In(v, set)
}

// All returns the quantified satisfaction degree d(v op ALL F) =
// 1 − max_{z ∈ F} min(µ_F(z), 1 − d(v op z)); 1 for empty F (Section 7).
func All(op Op, v Trapezoid, set []Member) float64 {
	worst := 0.0
	for _, m := range set {
		if g := Min(m.Mu, 1-Degree(op, v, m.Value)); g > worst {
			worst = g
		}
		if worst == 1 {
			break
		}
	}
	return 1 - worst
}

// Any returns the quantified satisfaction degree d(v op ANY F) =
// max_{z ∈ F} min(µ_F(z), d(v op z)); 0 for empty F. SOME is a synonym of
// ANY in Fuzzy SQL.
func Any(op Op, v Trapezoid, set []Member) float64 {
	d := 0.0
	for _, m := range set {
		if g := Min(m.Mu, Degree(op, v, m.Value)); g > d {
			d = g
		}
		if d == 1 {
			break
		}
	}
	return d
}
