package fuzzy

import (
	"testing"
	"testing/quick"
)

func TestNewDiscreteNormalizes(t *testing.T) {
	d := NewDiscrete(Point{2, 0.5}, Point{1, 1}, Point{2, 0.3}, Point{3, 0}, Point{4, -1}, Point{5, 1.5})
	pts := d.Points()
	want := []Point{{1, 1}, {2, 0.5}, {5, 1}}
	if len(pts) != len(want) {
		t.Fatalf("Points = %v, want %v", pts, want)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Errorf("Points[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
}

func TestDiscreteMu(t *testing.T) {
	d := NewDiscrete(Point{1, 1}, Point{2, 0.8})
	if got := d.Mu(1); got != 1 {
		t.Errorf("Mu(1) = %g", got)
	}
	if got := d.Mu(2); got != 0.8 {
		t.Errorf("Mu(2) = %g", got)
	}
	if got := d.Mu(1.5); got != 0 {
		t.Errorf("Mu(1.5) = %g", got)
	}
}

func TestDiscreteSupport(t *testing.T) {
	d := NewDiscrete(Point{3, 0.2}, Point{-1, 0.9})
	lo, hi := d.Support()
	if lo != -1 || hi != 3 {
		t.Errorf("Support = [%g, %g], want [-1, 3]", lo, hi)
	}
}

func TestDiscreteSupportPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Support of empty distribution did not panic")
		}
	}()
	NewDiscrete().Support()
}

func TestDiscreteString(t *testing.T) {
	d := NewDiscrete(Point{1, 1}, Point{2, 0.8})
	if got := d.String(); got != "1/1 + 0.8/2" {
		t.Errorf("String = %q", got)
	}
	if got := NewDiscrete().String(); got != "<empty>" {
		t.Errorf("String(empty) = %q", got)
	}
}

// TestEqDDAppendix reproduces the Appendix example: joining on
// 1/y1 + 0.8/y2 yields possibilities 1 for y1 and 0.8 for y2.
func TestEqDDAppendix(t *testing.T) {
	s := NewDiscrete(Point{1, 1}, Point{2, 0.8}) // 1/y1 + .8/y2 with y1=1, y2=2
	y1 := NewDiscrete(Point{1, 1})
	y2 := NewDiscrete(Point{2, 1})
	if got := EqDD(y1, s); got != 1 {
		t.Errorf("d(y1 = S.Y) = %g, want 1", got)
	}
	if got := EqDD(y2, s); got != 0.8 {
		t.Errorf("d(y2 = S.Y) = %g, want 0.8", got)
	}
	if got := EqDD(NewDiscrete(Point{3, 1}), s); got != 0 {
		t.Errorf("d(y3 = S.Y) = %g, want 0", got)
	}
}

// TestAppendixSecondExample reproduces the Appendix's four-tuple example:
// R joins S whose Y values are 1/y1+.8/y2 and .9/y3+.7/y4. The paper's
// single-relation interpretation yields the answer
// {x1: 1, x2: 0.8, x3: 0.9, x4: 0.7} — instead of the four second-order
// answer sets {1/x1, .9/x3}, {1/x1, .7/x4}, {.8/x2, .9/x3}, {.8/x2, .7/x4}
// the rejected enumeration interpretation would produce.
func TestAppendixSecondExample(t *testing.T) {
	// Crisp codes for y1..y4.
	y := []float64{1, 2, 3, 4}
	s1 := NewDiscrete(Point{y[0], 1}, Point{y[1], 0.8})
	s2 := NewDiscrete(Point{y[2], 0.9}, Point{y[3], 0.7})
	want := []float64{1, 0.8, 0.9, 0.7}
	for i, yi := range y {
		// d(r_i joins) = max over S tuples of d(y_i = S.Y).
		ri := NewDiscrete(Point{yi, 1})
		d := Max(EqDD(ri, s1), EqDD(ri, s2))
		if !almostEq(d, want[i]) {
			t.Errorf("x%d possibility = %g, want %g", i+1, d, want[i])
		}
	}
}

func TestEqDT(t *testing.T) {
	d := NewDiscrete(Point{24, 1}, Point{50, 0.6})
	my := Trap(20, 25, 30, 35)
	// Best atom is 24 with µ_my(24) = 0.8.
	if got := EqDT(d, my); !almostEq(got, 0.8) {
		t.Errorf("EqDT = %g, want 0.8", got)
	}
}

func TestDegreeDD(t *testing.T) {
	u := NewDiscrete(Point{1, 1}, Point{5, 0.5})
	v := NewDiscrete(Point{3, 1})
	tests := []struct {
		op   Op
		want float64
	}{
		{OpLt, 1},   // 1 < 3 fully possible
		{OpGt, 0.5}, // only 5 > 3, possibility 0.5
		{OpEq, 0},
		{OpNe, 1},
		{OpLe, 1},
		{OpGe, 0.5},
	}
	for _, tc := range tests {
		if got := DegreeDD(tc.op, u, v); got != tc.want {
			t.Errorf("DegreeDD(%v) = %g, want %g", tc.op, got, tc.want)
		}
	}
}

func TestDegreeDDStrictVsNonStrict(t *testing.T) {
	u := NewDiscrete(Point{3, 1})
	v := NewDiscrete(Point{3, 1})
	if got := DegreeDD(OpLt, u, v); got != 0 {
		t.Errorf("DegreeDD(<) = %g, want 0", got)
	}
	if got := DegreeDD(OpLe, u, v); got != 1 {
		t.Errorf("DegreeDD(<=) = %g, want 1", got)
	}
}

func TestDegreeDT(t *testing.T) {
	u := NewDiscrete(Point{5, 1}, Point{9, 0.4})
	v := Trap(0, 2, 4, 6)
	tests := []struct {
		op   Op
		want float64
	}{
		{OpEq, 0.5}, // µ_v(5) = 0.5
		{OpLt, 0.5}, // best: x=5, sup_{y>=5} µ_v = 0.5
		{OpGt, 1},   // x=5 with all of v's core below
		{OpNe, 1},
	}
	for _, tc := range tests {
		if got := DegreeDT(tc.op, u, v); !almostEq(got, tc.want) {
			t.Errorf("DegreeDT(%v) = %g, want %g", tc.op, got, tc.want)
		}
	}
}

func TestDegreeDTCrispTrap(t *testing.T) {
	u := NewDiscrete(Point{3, 1})
	// A crisp trapezoid behaves like a singleton discrete value, so strict
	// comparison against an equal point is 0.
	if got := DegreeDT(OpLt, u, Crisp(3)); got != 0 {
		t.Errorf("DegreeDT(<, {3}, 3) = %g, want 0", got)
	}
	if got := DegreeDT(OpLe, u, Crisp(3)); got != 1 {
		t.Errorf("DegreeDT(<=, {3}, 3) = %g, want 1", got)
	}
}

func TestDegreeTD(t *testing.T) {
	v := NewDiscrete(Point{5, 1})
	u := Trap(0, 2, 4, 6)
	// d(U < V): v=5 and leftSup of u below 5 is 1.
	if got := DegreeTD(OpLt, u, v); got != 1 {
		t.Errorf("DegreeTD(<) = %g, want 1", got)
	}
	// d(U > V): sup_{x>=5} µ_u(x) = 0.5.
	if got := DegreeTD(OpGt, u, v); !almostEq(got, 0.5) {
		t.Errorf("DegreeTD(>) = %g, want 0.5", got)
	}
}

func TestQuickDiscreteDegreesBounded(t *testing.T) {
	f := func(xs [3]float64, mus [3]uint8, vals [4]float64, opByte uint8) bool {
		var pts []Point
		for i := range xs {
			pts = append(pts, Point{float64(int(xs[i]) % 50), float64(mus[i]%101) / 100})
		}
		d := NewDiscrete(pts...)
		tr := randomTrap(vals[0], vals[1], vals[2], vals[3])
		op := Op(opByte % 6)
		g1 := DegreeDT(op, d, tr)
		g2 := DegreeTD(op, tr, d)
		return g1 >= 0 && g1 <= 1 && g2 >= 0 && g2 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickDTFlipConsistency: DegreeTD(op, t, d) must equal
// DegreeDT(op.Flip(), d, t) by construction; check against DegreeDD when
// the trapezoid is crisp.
func TestQuickDTCrispMatchesDD(t *testing.T) {
	f := func(xs [3]float64, mus [3]uint8, c int8, opByte uint8) bool {
		var pts []Point
		for i := range xs {
			pts = append(pts, Point{float64(int(xs[i]) % 20), float64(mus[i]%101) / 100})
		}
		d := NewDiscrete(pts...)
		cv := float64(c % 20)
		op := Op(opByte % 6)
		viaDT := DegreeDT(op, d, Crisp(cv))
		viaDD := DegreeDD(op, d, NewDiscrete(Point{cv, 1}))
		return almostEq(viaDT, viaDD)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
