package fuzzy

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9
}

func TestCrisp(t *testing.T) {
	c := Crisp(28)
	if !c.IsCrisp() {
		t.Fatalf("Crisp(28).IsCrisp() = false")
	}
	if got := c.Mu(28); got != 1 {
		t.Errorf("Mu(28) = %g, want 1", got)
	}
	if got := c.Mu(27.999); got != 0 {
		t.Errorf("Mu(27.999) = %g, want 0", got)
	}
	lo, hi := c.Support()
	if lo != 28 || hi != 28 {
		t.Errorf("Support() = [%g, %g], want [28, 28]", lo, hi)
	}
}

func TestTrapConstructors(t *testing.T) {
	tests := []struct {
		name string
		got  Trapezoid
		want Trapezoid
	}{
		{"Tri", Tri(30, 35, 40), Trapezoid{30, 35, 35, 40}},
		{"About", About(35, 5), Trapezoid{30, 35, 35, 40}},
		{"Interval", Interval(20, 35), Trapezoid{20, 20, 35, 35}},
		{"Trap", Trap(20, 25, 30, 35), Trapezoid{20, 25, 30, 35}},
	}
	for _, tc := range tests {
		if tc.got != tc.want {
			t.Errorf("%s = %v, want %v", tc.name, tc.got, tc.want)
		}
	}
}

func TestTrapPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Trap(35,25,30,20) did not panic")
		}
	}()
	Trap(35, 25, 30, 20)
}

func TestNewTrap(t *testing.T) {
	if _, err := NewTrap(1, 2, 3, 4); err != nil {
		t.Errorf("NewTrap(1,2,3,4) error: %v", err)
	}
	if _, err := NewTrap(1, 0, 3, 4); err == nil {
		t.Errorf("NewTrap(1,0,3,4): want error, got nil")
	}
	if _, err := NewTrap(math.NaN(), 0, 3, 4); err == nil {
		t.Errorf("NewTrap(NaN,...): want error, got nil")
	}
	if _, err := NewTrap(math.Inf(-1), 0, 3, 4); err == nil {
		t.Errorf("NewTrap(-Inf,...): want error, got nil")
	}
}

// TestMuMediumYoung checks the membership values the paper reads off Fig. 1
// for "medium young" = TRAP(20, 25, 30, 35): ages 25..30 are full members,
// 24 and 31 have degree 0.8, 23 and 32 have 0.6, and anything outside
// (20, 35) has 0.
func TestMuMediumYoung(t *testing.T) {
	my := Trap(20, 25, 30, 35)
	tests := []struct {
		x    float64
		want float64
	}{
		{25, 1}, {27, 1}, {30, 1},
		{24, 0.8}, {31, 0.8},
		{23, 0.6}, {32, 0.6},
		{20, 0}, {35, 0},
		{19, 0}, {36, 0}, {-5, 0}, {100, 0},
		{22.5, 0.5}, {32.5, 0.5},
	}
	for _, tc := range tests {
		if got := my.Mu(tc.x); !almostEq(got, tc.want) {
			t.Errorf("Mu(%g) = %g, want %g", tc.x, got, tc.want)
		}
	}
}

func TestAlphaCut(t *testing.T) {
	tr := Trap(20, 25, 30, 35)
	tests := []struct {
		alpha  float64
		lo, hi float64
	}{
		{0, 20, 35},
		{-1, 20, 35},
		{0.5, 22.5, 32.5},
		{1, 25, 30},
		{2, 25, 30}, // clamped
	}
	for _, tc := range tests {
		lo, hi := tr.AlphaCut(tc.alpha)
		if !almostEq(lo, tc.lo) || !almostEq(hi, tc.hi) {
			t.Errorf("AlphaCut(%g) = [%g, %g], want [%g, %g]", tc.alpha, lo, hi, tc.lo, tc.hi)
		}
	}
}

func TestCentroid(t *testing.T) {
	if got := Trap(20, 25, 30, 35).Centroid(); !almostEq(got, 27.5) {
		t.Errorf("Centroid = %g, want 27.5", got)
	}
	if got := Crisp(7).Centroid(); got != 7 {
		t.Errorf("Crisp(7).Centroid = %g, want 7", got)
	}
	if got := Tri(0, 4, 20).Centroid(); got != 4 {
		t.Errorf("Tri(0,4,20).Centroid = %g, want 4", got)
	}
}

func TestWidth(t *testing.T) {
	if got := Crisp(3).Width(); got != 0 {
		t.Errorf("Crisp width = %g, want 0", got)
	}
	if got := Trap(20, 25, 30, 35).Width(); got != 15 {
		t.Errorf("Trap width = %g, want 15", got)
	}
}

func TestIntersects(t *testing.T) {
	tests := []struct {
		a, b Trapezoid
		want bool
	}{
		{Trap(0, 1, 2, 3), Trap(2, 2, 2, 2), true},
		{Trap(0, 1, 2, 3), Trap(3, 4, 5, 6), true}, // touch at endpoint
		{Trap(0, 1, 2, 3), Trap(4, 5, 6, 7), false},
		{Crisp(5), Crisp(5), true},
		{Crisp(5), Crisp(6), false},
	}
	for _, tc := range tests {
		if got := tc.a.Intersects(tc.b); got != tc.want {
			t.Errorf("%v.Intersects(%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if got := tc.b.Intersects(tc.a); got != tc.want {
			t.Errorf("%v.Intersects(%v) = %v, want %v (symmetry)", tc.b, tc.a, got, tc.want)
		}
	}
}

// TestCompareDefinition31 checks the ordering example of the paper
// (Example 3.1): [20,28] ≺ [20,35] ≺ [30,35], and for S-values
// [20,25] ≺ [30,40] ≺ [32,34].
func TestCompareDefinition31(t *testing.T) {
	r1 := Interval(30, 35)
	r2 := Interval(20, 28)
	r3 := Interval(20, 35)
	if !(r2.Less(r3) && r3.Less(r1)) {
		t.Errorf("want r2 < r3 < r1 under Definition 3.1")
	}
	s1 := Interval(32, 34)
	s2 := Interval(20, 25)
	s3 := Interval(30, 40)
	if !(s2.Less(s3) && s3.Less(s1)) {
		t.Errorf("want s2 < s3 < s1 under Definition 3.1")
	}
}

func TestCompare(t *testing.T) {
	tests := []struct {
		a, b Trapezoid
		want int
	}{
		{Crisp(1), Crisp(2), -1},
		{Crisp(2), Crisp(1), 1},
		{Crisp(1), Crisp(1), 0},
		{Interval(1, 5), Interval(1, 6), -1}, // same begin, shorter end first
		{Interval(1, 6), Interval(1, 5), 1},
		{Trap(1, 2, 3, 4), Trap(1, 3, 3, 4), 0}, // order looks at support only
	}
	for _, tc := range tests {
		if got := tc.a.Compare(tc.b); got != tc.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestString(t *testing.T) {
	if got := Crisp(28).String(); got != "28" {
		t.Errorf("String = %q, want \"28\"", got)
	}
	if got := Trap(20, 25, 30, 35).String(); got != "TRAP(20,25,30,35)" {
		t.Errorf("String = %q", got)
	}
}

// randomTrap derives a valid trapezoid from four arbitrary floats.
func randomTrap(a, b, c, d float64) Trapezoid {
	norm := func(x float64) float64 {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0
		}
		return math.Mod(x, 100)
	}
	xs := []float64{norm(a), norm(b), norm(c), norm(d)}
	for i := 0; i < len(xs); i++ {
		for j := i + 1; j < len(xs); j++ {
			if xs[j] < xs[i] {
				xs[i], xs[j] = xs[j], xs[i]
			}
		}
	}
	return Trapezoid{xs[0], xs[1], xs[2], xs[3]}
}

func TestQuickMuRange(t *testing.T) {
	f := func(a, b, c, d, x float64) bool {
		tr := randomTrap(a, b, c, d)
		m := tr.Mu(math.Mod(x, 200))
		return m >= 0 && m <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAlphaCutNesting(t *testing.T) {
	f := func(a, b, c, d float64, a1, a2 uint8) bool {
		tr := randomTrap(a, b, c, d)
		x, y := float64(a1%101)/100, float64(a2%101)/100
		if x > y {
			x, y = y, x
		}
		lo1, hi1 := tr.AlphaCut(x)
		lo2, hi2 := tr.AlphaCut(y)
		// Higher alpha yields a nested (smaller) cut.
		return lo1 <= lo2+1e-9 && hi2 <= hi1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareTotalOrder(t *testing.T) {
	f := func(a1, b1, c1, d1, a2, b2, c2, d2 float64) bool {
		u := randomTrap(a1, b1, c1, d1)
		v := randomTrap(a2, b2, c2, d2)
		// Antisymmetry of Compare.
		return u.Compare(v) == -v.Compare(u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareTransitive(t *testing.T) {
	f := func(vals [12]float64) bool {
		u := randomTrap(vals[0], vals[1], vals[2], vals[3])
		v := randomTrap(vals[4], vals[5], vals[6], vals[7])
		w := randomTrap(vals[8], vals[9], vals[10], vals[11])
		trs := []Trapezoid{u, v, w}
		// Sort the three by Compare and verify pairwise order.
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				if trs[j].Compare(trs[i]) < 0 {
					trs[i], trs[j] = trs[j], trs[i]
				}
			}
		}
		return trs[0].Compare(trs[1]) <= 0 && trs[1].Compare(trs[2]) <= 0 && trs[0].Compare(trs[2]) <= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValid(t *testing.T) {
	valid := []Trapezoid{Crisp(0), Trap(1, 1, 1, 2), Interval(-4, -1)}
	for _, tr := range valid {
		if !tr.Valid() {
			t.Errorf("%v.Valid() = false, want true", tr)
		}
	}
	invalid := []Trapezoid{
		{2, 1, 3, 4},
		{1, 2, 4, 3},
		{math.NaN(), 1, 2, 3},
		{1, 2, 3, math.Inf(1)},
	}
	for _, tr := range invalid {
		if tr.Valid() {
			t.Errorf("%+v.Valid() = true, want false", tr)
		}
	}
}
