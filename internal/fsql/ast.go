// Package fsql implements the Fuzzy SQL front end: a lexer, a
// recursive-descent parser, and the abstract syntax tree consumed by the
// unnesting rewriter and the evaluators.
//
// The dialect covers the language the paper uses (Sections 2-8):
//
//	SELECT [DISTINCT] item, ...          item: attr or AGG(attr)
//	FROM rel [alias], ...
//	[WHERE p1 AND p2 AND ...]            conjunctive fuzzy predicates
//	[GROUPBY attr, ...] [HAVING ...]     (also spelled GROUP BY)
//	[WITH D >= z]                        answer-degree threshold
//
// Predicates: X op Y; X [NOT] IN (subquery); X op ALL|ANY|SOME (subquery);
// X op (SELECT AGG(Y) ...). Operands are attribute references, numbers,
// fuzzy literals TRAP(a,b,c,d) / TRI(a,b,c) / ABOUT(x[,spread]) /
// INTERVAL(lo,hi), or quoted strings; a quoted string compared against a
// numeric attribute is resolved through the linguistic-term dictionary.
//
// DDL: CREATE TABLE, DROP TABLE, CREATE INDEX ... ON rel (attr),
// DROP INDEX, INSERT INTO ... VALUES (...) [DEGREE d],
// DEFINE TERM 'name' AS <fuzzy literal>.
package fsql

import (
	"fmt"
	"strings"

	"repro/internal/frel"
	"repro/internal/fuzzy"
)

// Statement is any parsed Fuzzy SQL statement.
type Statement interface {
	stmt()
	String() string
}

// Select is a (possibly nested) Fuzzy SQL query block.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    []Predicate // conjunction
	GroupBy  []string
	Having   []Predicate // conjunction
	With     float64     // answer threshold z of WITH D >= z; 0 if absent
	HasWith  bool

	// ORDER BY: either the membership degree "D" or an attribute
	// reference (ordered by the Definition 3.1 interval order). Empty
	// means unordered. OrderDesc selects descending order.
	OrderBy   string
	OrderDesc bool
	// LIMIT n caps the answer after ordering and thresholding.
	Limit    int
	HasLimit bool
}

func (*Select) stmt() {}

// SelectItem is one projection item: an attribute reference, optionally
// wrapped in an aggregate function.
type SelectItem struct {
	HasAgg bool
	Agg    fuzzy.AggFunc
	Ref    string
}

// String renders the item.
func (it SelectItem) String() string {
	if it.HasAgg {
		return fmt.Sprintf("%s(%s)", it.Agg, it.Ref)
	}
	return it.Ref
}

// TableRef names a relation in a FROM clause, optionally aliased.
type TableRef struct {
	Name  string
	Alias string
}

// Binding returns the name the relation is referenced by in the query.
func (tr TableRef) Binding() string {
	if tr.Alias != "" {
		return tr.Alias
	}
	return tr.Name
}

// String renders the table reference.
func (tr TableRef) String() string {
	if tr.Alias != "" && tr.Alias != tr.Name {
		return tr.Name + " " + tr.Alias
	}
	return tr.Name
}

// OperandKind discriminates Operand.
type OperandKind int

// Operand kinds.
const (
	OpdRef    OperandKind = iota // attribute reference
	OpdNumber                    // numeric or fuzzy literal
	OpdString                    // quoted string (crisp string or linguistic term)
	OpdParam                     // '?' placeholder of a prepared statement
)

// Operand is one side of a predicate or one inserted value.
type Operand struct {
	Kind OperandKind
	Ref  string          // OpdRef
	Num  fuzzy.Trapezoid // OpdNumber
	Str  string          // OpdString
	Ord  int             // OpdParam: zero-based ordinal in parse order
}

// RefOperand builds an attribute-reference operand.
func RefOperand(ref string) Operand { return Operand{Kind: OpdRef, Ref: ref} }

// NumOperand builds a numeric/fuzzy literal operand.
func NumOperand(t fuzzy.Trapezoid) Operand { return Operand{Kind: OpdNumber, Num: t} }

// StrOperand builds a string literal operand.
func StrOperand(s string) Operand { return Operand{Kind: OpdString, Str: s} }

// String renders the operand.
func (o Operand) String() string {
	switch o.Kind {
	case OpdRef:
		return o.Ref
	case OpdNumber:
		return o.Num.String()
	case OpdParam:
		return "?"
	default:
		return quoteStr(o.Str)
	}
}

// quoteStr renders a string literal, doubling embedded quotes so the
// rendering re-parses to the same value.
func quoteStr(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

// PredKind discriminates Predicate.
type PredKind int

// Predicate kinds.
const (
	PredCompare   PredKind = iota // X op Y
	PredIn                        // X IN (subquery)
	PredNotIn                     // X NOT IN (subquery)
	PredQuant                     // X op ALL|ANY|SOME (subquery)
	PredScalarSub                 // X op (SELECT AGG(..) ...)
	PredExists                    // EXISTS (subquery); no left operand
	PredNotExists                 // NOT EXISTS (subquery); no left operand
	PredNear                      // X NEAR Y WITHIN tol (similarity / band predicate)
)

// Quantifier is the quantifier of a PredQuant predicate.
type Quantifier int

// Quantifiers. SOME is a synonym of ANY.
const (
	QuantAll Quantifier = iota
	QuantAny
	QuantSome
)

// String renders the quantifier.
func (q Quantifier) String() string {
	switch q {
	case QuantAll:
		return "ALL"
	case QuantAny:
		return "ANY"
	case QuantSome:
		return "SOME"
	default:
		return fmt.Sprintf("Quantifier(%d)", int(q))
	}
}

// Predicate is one conjunct of a WHERE or HAVING clause.
type Predicate struct {
	Kind  PredKind
	Left  Operand
	Op    fuzzy.Op        // PredCompare, PredQuant, PredScalarSub
	Right Operand         // PredCompare, PredNear
	Quant Quantifier      // PredQuant
	Sub   *Select         // PredIn, PredNotIn, PredQuant, PredScalarSub
	Tol   fuzzy.Trapezoid // PredNear: the tolerance distribution of differences
}

// String renders the predicate.
func (p Predicate) String() string {
	switch p.Kind {
	case PredCompare:
		return fmt.Sprintf("%s %s %s", p.Left, p.Op, p.Right)
	case PredIn:
		return fmt.Sprintf("%s IN (%s)", p.Left, p.Sub)
	case PredNotIn:
		return fmt.Sprintf("%s NOT IN (%s)", p.Left, p.Sub)
	case PredQuant:
		return fmt.Sprintf("%s %s %s (%s)", p.Left, p.Op, p.Quant, p.Sub)
	case PredScalarSub:
		return fmt.Sprintf("%s %s (%s)", p.Left, p.Op, p.Sub)
	case PredExists:
		return fmt.Sprintf("EXISTS (%s)", p.Sub)
	case PredNotExists:
		return fmt.Sprintf("NOT EXISTS (%s)", p.Sub)
	case PredNear:
		return fmt.Sprintf("%s NEAR %s WITHIN TRAP(%g,%g,%g,%g)", p.Left, p.Right, p.Tol.A, p.Tol.B, p.Tol.C, p.Tol.D)
	default:
		return fmt.Sprintf("Predicate(%d)", int(p.Kind))
	}
}

// String renders the query block.
func (s *Select) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.String())
	}
	b.WriteString(" FROM ")
	for i, tr := range s.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(tr.String())
	}
	if len(s.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, p := range s.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(p.String())
		}
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUPBY " + strings.Join(s.GroupBy, ", "))
	}
	if len(s.Having) > 0 {
		b.WriteString(" HAVING ")
		for i, p := range s.Having {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(p.String())
		}
	}
	if s.HasWith {
		fmt.Fprintf(&b, " WITH D >= %g", s.With)
	}
	if s.OrderBy != "" {
		b.WriteString(" ORDER BY " + s.OrderBy)
		if s.OrderDesc {
			b.WriteString(" DESC")
		}
	}
	if s.HasLimit {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	return b.String()
}

// CreateTable is a CREATE TABLE statement.
type CreateTable struct {
	Name  string
	Attrs []frel.Attribute
}

func (*CreateTable) stmt() {}

// String renders the statement.
func (c *CreateTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE TABLE %s (", c.Name)
	for i, a := range c.Attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", a.Name, a.Kind)
	}
	b.WriteString(")")
	return b.String()
}

// DropTable is a DROP TABLE statement.
type DropTable struct {
	Name string
}

func (*DropTable) stmt() {}

// String renders the statement.
func (d *DropTable) String() string { return "DROP TABLE " + d.Name }

// CreateIndex is a CREATE INDEX statement: it builds a persistent
// secondary index on the Definition 3.1 order of one numeric attribute, so
// merge joins and range scans over the attribute read the sort order from
// disk instead of sorting.
type CreateIndex struct {
	Name  string // index name (bare identifier or quoted)
	Table string
	Attr  string
}

func (*CreateIndex) stmt() {}

// String renders the statement.
func (c *CreateIndex) String() string {
	return fmt.Sprintf("CREATE INDEX %s ON %s (%s)", renderName(c.Name), c.Table, c.Attr)
}

// DropIndex is a DROP INDEX statement.
type DropIndex struct {
	Name string
}

func (*DropIndex) stmt() {}

// String renders the statement.
func (d *DropIndex) String() string { return "DROP INDEX " + renderName(d.Name) }

// renderName renders an object name: bare when it lexes as a single
// identifier, quoted otherwise, so the rendering re-parses to the same
// name.
func renderName(s string) string {
	if identLike(s) {
		return s
	}
	return quoteStr(s)
}

// identLike reports whether s is shaped like a bare identifier.
func identLike(s string) bool {
	if s == "" || !isIdentStart(s[0]) {
		return false
	}
	for i := 1; i < len(s); i++ {
		if !isIdentPart(s[i]) {
			return false
		}
	}
	return true
}

// Checkpoint is a CHECKPOINT statement: flush all relations to their heap
// files and truncate the write-ahead log.
type Checkpoint struct{}

func (*Checkpoint) stmt() {}

// String renders the statement.
func (*Checkpoint) String() string { return "CHECKPOINT" }

// Begin is a BEGIN statement: open an explicit multi-statement
// transaction with snapshot reads and all-or-nothing commit.
type Begin struct{}

func (*Begin) stmt() {}

// String renders the statement.
func (*Begin) String() string { return "BEGIN" }

// Commit is a COMMIT statement: make the open transaction's writes
// durable and visible to new snapshots, atomically.
type Commit struct{}

func (*Commit) stmt() {}

// String renders the statement.
func (*Commit) String() string { return "COMMIT" }

// Rollback is a ROLLBACK statement: undo the open transaction, leaving
// every relation (tuples and degrees) as it was before BEGIN.
type Rollback struct{}

func (*Rollback) stmt() {}

// String renders the statement.
func (*Rollback) String() string { return "ROLLBACK" }

// Insert is an INSERT statement. Values are literal operands (references
// are not allowed); string literals inserted into numeric attributes are
// resolved via the linguistic-term dictionary at execution time. Degree is
// the tuple's membership degree (default 1).
type Insert struct {
	Table  string
	Values []Operand
	Degree float64
}

func (*Insert) stmt() {}

// String renders the statement.
func (ins *Insert) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "INSERT INTO %s VALUES (", ins.Table)
	for i, v := range ins.Values {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteString(")")
	if ins.Degree != 1 {
		fmt.Fprintf(&b, " DEGREE %g", ins.Degree)
	}
	return b.String()
}

// Delete is a DELETE statement: it removes the tuples of a relation whose
// condition is satisfied to at least the threshold degree (default: any
// positive degree). The tuple's own membership degree is not part of the
// condition.
type Delete struct {
	Table     string
	Where     []Predicate // conjunction; empty deletes everything
	Threshold float64     // WITH D >= z on the deletion condition
}

func (*Delete) stmt() {}

// String renders the statement.
func (d *Delete) String() string {
	var b strings.Builder
	b.WriteString("DELETE FROM " + d.Table)
	if len(d.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, p := range d.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(p.String())
		}
	}
	if d.Threshold > 0 {
		fmt.Fprintf(&b, " WITH D >= %g", d.Threshold)
	}
	return b.String()
}

// DefineTerm binds a linguistic term to a possibility distribution.
type DefineTerm struct {
	Name  string
	Value fuzzy.Trapezoid
}

func (*DefineTerm) stmt() {}

// String renders the statement.
func (d *DefineTerm) String() string {
	// Always the explicit TRAP form: Trapezoid.String collapses crisp
	// and triangular shapes to spellings DEFINE TERM does not accept.
	return fmt.Sprintf("DEFINE TERM %s AS TRAP(%g, %g, %g, %g)",
		quoteStr(d.Name), d.Value.A, d.Value.B, d.Value.C, d.Value.D)
}

// Explain is an EXPLAIN [ANALYZE] statement: EXPLAIN reports the strategy
// the unnesting rewriter picks for the query; EXPLAIN ANALYZE executes it
// and reports the per-operator runtime statistics.
type Explain struct {
	Analyze bool
	Query   *Select
}

func (*Explain) stmt() {}

// String renders the statement.
func (ex *Explain) String() string {
	if ex.Analyze {
		return "EXPLAIN ANALYZE " + ex.Query.String()
	}
	return "EXPLAIN " + ex.Query.String()
}
