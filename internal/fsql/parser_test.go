package fsql

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/frel"
	"repro/internal/fuzzy"
)

func mustQuery(t *testing.T, src string) *Select {
	t.Helper()
	q, err := ParseQuery(src)
	if err != nil {
		t.Fatalf("ParseQuery(%q): %v", src, err)
	}
	return q
}

func TestParseQuery1(t *testing.T) {
	// Query 1 of the paper (Section 2.2).
	q := mustQuery(t, `
		SELECT F.NAME, M.NAME
		FROM F, M
		WHERE F.AGE = M.AGE AND M.INCOME > 'medium high'`)
	if len(q.Items) != 2 || q.Items[0].Ref != "F.NAME" || q.Items[1].Ref != "M.NAME" {
		t.Errorf("items = %v", q.Items)
	}
	if len(q.From) != 2 || q.From[0].Name != "F" || q.From[1].Name != "M" {
		t.Errorf("from = %v", q.From)
	}
	if len(q.Where) != 2 {
		t.Fatalf("where = %v", q.Where)
	}
	p0 := q.Where[0]
	if p0.Kind != PredCompare || p0.Left.Ref != "F.AGE" || p0.Op != fuzzy.OpEq || p0.Right.Ref != "M.AGE" {
		t.Errorf("pred 0 = %v", p0)
	}
	p1 := q.Where[1]
	if p1.Kind != PredCompare || p1.Op != fuzzy.OpGt || p1.Right.Kind != OpdString || p1.Right.Str != "medium high" {
		t.Errorf("pred 1 = %v", p1)
	}
}

func TestParseQuery2Nested(t *testing.T) {
	// Query 2 of the paper (Section 2.3), a type N nested query.
	q := mustQuery(t, `
		SELECT F.NAME
		FROM F
		WHERE F.AGE = 'medium young' AND
		      F.INCOME IN
		      (SELECT M.INCOME
		       FROM M
		       WHERE M.AGE = 'middle age')`)
	if len(q.Where) != 2 {
		t.Fatalf("where = %v", q.Where)
	}
	in := q.Where[1]
	if in.Kind != PredIn || in.Left.Ref != "F.INCOME" || in.Sub == nil {
		t.Fatalf("IN pred = %v", in)
	}
	if in.Sub.Items[0].Ref != "M.INCOME" || in.Sub.From[0].Name != "M" {
		t.Errorf("subquery = %v", in.Sub)
	}
}

func TestParseIsInSpelling(t *testing.T) {
	// The paper writes "R.Y is in (...)".
	q := mustQuery(t, `SELECT R.X FROM R WHERE R.Y is in (SELECT S.Z FROM S)`)
	if q.Where[0].Kind != PredIn {
		t.Errorf("kind = %v", q.Where[0].Kind)
	}
	q = mustQuery(t, `SELECT R.X FROM R WHERE R.Y is not in (SELECT S.Z FROM S)`)
	if q.Where[0].Kind != PredNotIn {
		t.Errorf("kind = %v", q.Where[0].Kind)
	}
}

func TestParseQuery4NotIn(t *testing.T) {
	// Query 4 of the paper (Section 5), type JX.
	q := mustQuery(t, `
		SELECT R.NAME
		FROM EMP_SALES R
		WHERE R.INCOME NOT IN
		      (SELECT S.INCOME
		       FROM EMP_RESEARCH S
		       WHERE S.AGE = R.AGE)`)
	if q.From[0].Name != "EMP_SALES" || q.From[0].Alias != "R" {
		t.Errorf("from = %v", q.From)
	}
	p := q.Where[0]
	if p.Kind != PredNotIn || p.Sub.From[0].Alias != "S" {
		t.Errorf("pred = %v", p)
	}
	inner := p.Sub.Where[0]
	if inner.Kind != PredCompare || inner.Left.Ref != "S.AGE" || inner.Right.Ref != "R.AGE" {
		t.Errorf("inner pred = %v", inner)
	}
}

func TestParseQuery5Aggregate(t *testing.T) {
	// Query 5 of the paper (Section 6), type JA.
	q := mustQuery(t, `
		SELECT R.NAME
		FROM CITIES_REGION_A R
		WHERE R.AVE_HOME_INCOME >
		      (SELECT MAX(S.AVE_HOME_INCOME)
		       FROM CITIES_REGION_B S
		       WHERE S.POPULATION = R.POPULATION)`)
	p := q.Where[0]
	if p.Kind != PredScalarSub || p.Op != fuzzy.OpGt {
		t.Fatalf("pred = %v", p)
	}
	item := p.Sub.Items[0]
	if !item.HasAgg || item.Agg != fuzzy.AggMax || item.Ref != "S.AVE_HOME_INCOME" {
		t.Errorf("agg item = %v", item)
	}
}

func TestParseQuantifiers(t *testing.T) {
	for _, tc := range []struct {
		src  string
		want Quantifier
	}{
		{`SELECT R.X FROM R WHERE R.Y < ALL (SELECT S.Z FROM S WHERE S.V = R.U)`, QuantAll},
		{`SELECT R.X FROM R WHERE R.Y = ANY (SELECT S.Z FROM S)`, QuantAny},
		{`SELECT R.X FROM R WHERE R.Y >= SOME (SELECT S.Z FROM S)`, QuantSome},
	} {
		q := mustQuery(t, tc.src)
		p := q.Where[0]
		if p.Kind != PredQuant || p.Quant != tc.want {
			t.Errorf("%s: pred = %v", tc.src, p)
		}
	}
}

func TestParseExists(t *testing.T) {
	q := mustQuery(t, `SELECT R.X FROM R WHERE EXISTS (SELECT S.Z FROM S WHERE S.V = R.U)`)
	if q.Where[0].Kind != PredExists || q.Where[0].Sub == nil {
		t.Errorf("pred = %v", q.Where[0])
	}
	// The paper's singular spelling EXIST.
	q = mustQuery(t, `SELECT R.X FROM R WHERE EXIST (SELECT S.Z FROM S)`)
	if q.Where[0].Kind != PredExists {
		t.Errorf("pred = %v", q.Where[0])
	}
	q = mustQuery(t, `SELECT R.X FROM R WHERE NOT EXISTS (SELECT S.Z FROM S)`)
	if q.Where[0].Kind != PredNotExists {
		t.Errorf("pred = %v", q.Where[0])
	}
	// EXISTS combined with other conjuncts, and in String round trip.
	q = mustQuery(t, `SELECT R.X FROM R WHERE R.Y > 3 AND NOT EXISTS (SELECT S.Z FROM S) AND R.X < 9`)
	if len(q.Where) != 3 || q.Where[1].Kind != PredNotExists {
		t.Errorf("where = %v", q.Where)
	}
	q2 := mustQuery(t, q.String())
	if q.String() != q2.String() {
		t.Errorf("round trip mismatch: %s", q)
	}
}

// TestParseNotBacktrack: a NOT that is not followed by EXISTS must not
// consume input (it belongs to an operand-led predicate only as NOT IN).
func TestParseNotBacktrack(t *testing.T) {
	q := mustQuery(t, `SELECT R.X FROM R WHERE R.Y NOT IN (SELECT S.Z FROM S)`)
	if q.Where[0].Kind != PredNotIn {
		t.Errorf("pred = %v", q.Where[0])
	}
	if _, err := ParseQuery(`SELECT R.X FROM R WHERE NOT R.Y = 3`); err == nil {
		t.Errorf("general NOT is unsupported: want error")
	}
}

func TestParseWithClause(t *testing.T) {
	q := mustQuery(t, `SELECT R.X FROM R WITH D >= 0.5`)
	if !q.HasWith || q.With != 0.5 {
		t.Errorf("with = %v %v", q.HasWith, q.With)
	}
	q = mustQuery(t, `SELECT R.X FROM R WITH D > 0`)
	if !q.HasWith || q.With != 0 {
		t.Errorf("with = %v %v", q.HasWith, q.With)
	}
	if _, err := ParseQuery(`SELECT R.X FROM R WITH D >= 1.5`); err == nil {
		t.Errorf("threshold out of range: want error")
	}
}

func TestParseGroupBySpellings(t *testing.T) {
	q := mustQuery(t, `SELECT R.X, COUNT(R.Y) FROM R GROUPBY R.X`)
	if len(q.GroupBy) != 1 || q.GroupBy[0] != "R.X" {
		t.Errorf("GROUPBY = %v", q.GroupBy)
	}
	q = mustQuery(t, `SELECT R.X FROM R GROUP BY R.X, R.Y HAVING R.X > 3`)
	if len(q.GroupBy) != 2 || len(q.Having) != 1 {
		t.Errorf("GROUP BY = %v HAVING = %v", q.GroupBy, q.Having)
	}
}

func TestParseDistinct(t *testing.T) {
	q := mustQuery(t, `SELECT DISTINCT R.X FROM R`)
	if !q.Distinct {
		t.Errorf("Distinct = false")
	}
}

func TestParseFuzzyLiterals(t *testing.T) {
	q := mustQuery(t, `SELECT R.X FROM R WHERE R.Y = TRAP(20, 25, 30, 35) AND R.Z = TRI(1, 2, 3) AND R.W = ABOUT(35, 5) AND R.V = INTERVAL(10, 20)`)
	want := []fuzzy.Trapezoid{
		fuzzy.Trap(20, 25, 30, 35),
		fuzzy.Tri(1, 2, 3),
		fuzzy.About(35, 5),
		fuzzy.Interval(10, 20),
	}
	for i, w := range want {
		if got := q.Where[i].Right.Num; got != w {
			t.Errorf("literal %d = %v, want %v", i, got, w)
		}
	}
}

func TestParseAboutDefaultSpread(t *testing.T) {
	q := mustQuery(t, `SELECT R.X FROM R WHERE R.Y = ABOUT(50)`)
	if got := q.Where[0].Right.Num; got != fuzzy.About(50, 5) {
		t.Errorf("ABOUT(50) = %v, want spread 5 (10%%)", got)
	}
	q = mustQuery(t, `SELECT R.X FROM R WHERE R.Y = ABOUT(2)`)
	if got := q.Where[0].Right.Num; got != fuzzy.About(2, 1) {
		t.Errorf("ABOUT(2) = %v, want spread floor 1", got)
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	q := mustQuery(t, `SELECT R.X FROM R WHERE R.Y = -5 AND R.Z > TRAP(-4, -3, -2, -1)`)
	if got := q.Where[0].Right.Num; got != fuzzy.Crisp(-5) {
		t.Errorf("literal = %v", got)
	}
	if got := q.Where[1].Right.Num; got != fuzzy.Trap(-4, -3, -2, -1) {
		t.Errorf("literal = %v", got)
	}
}

func TestParseChainQuery(t *testing.T) {
	// Query 6 of the paper (Section 8): a 3-block chain query.
	q := mustQuery(t, `
		SELECT R1.X1
		FROM R1
		WHERE R1.A = 1 AND R1.Y1 IN
		      (SELECT R2.X2
		       FROM R2
		       WHERE R2.U2 = R1.U1 AND R2.X2 IN
		             (SELECT R3.X3
		              FROM R3
		              WHERE R3.V3 = R2.V2 AND R3.W3 = R1.W1))`)
	lvl2 := q.Where[1].Sub
	if lvl2 == nil {
		t.Fatalf("missing level-2 block")
	}
	lvl3 := lvl2.Where[1].Sub
	if lvl3 == nil {
		t.Fatalf("missing level-3 block")
	}
	if lvl3.Where[1].Right.Ref != "R1.W1" {
		t.Errorf("level-3 correlation = %v", lvl3.Where[1])
	}
}

func TestParseCreateTable(t *testing.T) {
	st, err := ParseStatement(`CREATE TABLE F (ID NUMBER, NAME STRING, AGE NUMBER, INCOME NUMBER)`)
	if err != nil {
		t.Fatal(err)
	}
	ct, ok := st.(*CreateTable)
	if !ok {
		t.Fatalf("statement = %T", st)
	}
	if ct.Name != "F" || len(ct.Attrs) != 4 {
		t.Errorf("create = %v", ct)
	}
	if ct.Attrs[1] != (frel.Attribute{Name: "NAME", Kind: frel.KindString}) {
		t.Errorf("attr 1 = %v", ct.Attrs[1])
	}
	if _, err := ParseStatement(`CREATE TABLE F (X BLOB)`); err == nil {
		t.Errorf("unknown type: want error")
	}
}

func TestParseDropTable(t *testing.T) {
	st, err := ParseStatement(`DROP TABLE F`)
	if err != nil {
		t.Fatal(err)
	}
	if dt, ok := st.(*DropTable); !ok || dt.Name != "F" {
		t.Errorf("statement = %v", st)
	}
}

func TestParseInsert(t *testing.T) {
	st, err := ParseStatement(`INSERT INTO M VALUES (201, 'Allen', 24, 'about 25K')`)
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*Insert)
	if ins.Table != "M" || len(ins.Values) != 4 || ins.Degree != 1 {
		t.Errorf("insert = %v", ins)
	}
	if ins.Values[0].Num != fuzzy.Crisp(201) || ins.Values[1].Str != "Allen" {
		t.Errorf("values = %v", ins.Values)
	}

	st, err = ParseStatement(`INSERT INTO M VALUES (1, TRAP(1,2,3,4)) DEGREE 0.6`)
	if err != nil {
		t.Fatal(err)
	}
	ins = st.(*Insert)
	if ins.Degree != 0.6 || ins.Values[1].Num != fuzzy.Trap(1, 2, 3, 4) {
		t.Errorf("insert = %v", ins)
	}

	if _, err := ParseStatement(`INSERT INTO M VALUES (R.X)`); err == nil {
		t.Errorf("reference in VALUES: want error")
	}
	if _, err := ParseStatement(`INSERT INTO M VALUES (1) DEGREE 0`); err == nil {
		t.Errorf("degree 0: want error")
	}
}

func TestParseDefineTerm(t *testing.T) {
	st, err := ParseStatement(`DEFINE TERM 'medium young' AS TRAP(20, 25, 30, 35)`)
	if err != nil {
		t.Fatal(err)
	}
	dt := st.(*DefineTerm)
	if dt.Name != "medium young" || dt.Value != fuzzy.Trap(20, 25, 30, 35) {
		t.Errorf("define = %v", dt)
	}
	if _, err := ParseStatement(`DEFINE TERM 'x' AS 5`); err == nil {
		t.Errorf("non-fuzzy-literal term: want error")
	}
}

func TestParseScript(t *testing.T) {
	stmts, err := ParseScript(`
		CREATE TABLE R (X NUMBER);
		INSERT INTO R VALUES (1);
		-- a comment
		SELECT R.X FROM R;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("statements = %d", len(stmts))
	}
	if _, ok := stmts[2].(*Select); !ok {
		t.Errorf("statement 2 = %T", stmts[2])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT FROM R`,
		`SELECT R.X`,
		`SELECT R.X FROM`,
		`SELECT R.X FROM R WHERE`,
		`SELECT R.X FROM R WHERE R.Y`,
		`SELECT R.X FROM R WHERE R.Y ~ 3`,
		`SELECT R.X FROM R WHERE R.Y IN R`,
		`SELECT R.X FROM R WITH D = 0.5`,
		`SELECT R.X FROM R trailing junk`,
		`SELECT R.X FROM R WHERE R.Y = TRAP(1,2)`,
		`SELECT R.X FROM R WHERE R.Y = TRAP(4,3,2,1)`,
		`SELECT R.X FROM R WHERE R.Y = 'unterminated`,
		`INSERT INTO`,
		`CREATE TABLE`,
	}
	for _, src := range bad {
		if _, err := ParseStatement(src); err == nil {
			t.Errorf("ParseStatement(%q): want error", src)
		}
	}
}

func TestParseQuotedStringEscapes(t *testing.T) {
	q := mustQuery(t, `SELECT R.X FROM R WHERE R.NAME = 'O''Brien'`)
	if got := q.Where[0].Right.Str; got != "O'Brien" {
		t.Errorf("string = %q", got)
	}
	q = mustQuery(t, `SELECT R.X FROM R WHERE R.NAME = "medium young"`)
	if got := q.Where[0].Right.Str; got != "medium young" {
		t.Errorf("string = %q", got)
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		`SELECT F.NAME FROM F WHERE F.AGE = 'medium young' AND F.INCOME IN (SELECT M.INCOME FROM M WHERE M.AGE = 'middle age')`,
		`SELECT R.X FROM R WHERE R.Y < ALL (SELECT S.Z FROM S WHERE S.V = R.U) WITH D >= 0.25`,
		`SELECT R.NAME FROM EMP_SALES R WHERE R.INCOME NOT IN (SELECT S.INCOME FROM EMP_RESEARCH S WHERE S.AGE = R.AGE)`,
	}
	for _, src := range srcs {
		q1 := mustQuery(t, src)
		q2 := mustQuery(t, q1.String())
		if q1.String() != q2.String() {
			t.Errorf("round trip mismatch:\n%s\n%s", q1, q2)
		}
	}
}

func TestAggNameAsPlainRef(t *testing.T) {
	// An identifier that happens to be an aggregate name but is not
	// followed by '(' is a plain reference.
	q := mustQuery(t, `SELECT COUNT FROM R`)
	if q.Items[0].HasAgg || q.Items[0].Ref != "COUNT" {
		t.Errorf("item = %v", q.Items[0])
	}
}

func TestStatementStrings(t *testing.T) {
	for _, src := range []string{
		`CREATE TABLE F (ID NUMBER, NAME STRING)`,
		`DROP TABLE F`,
		`INSERT INTO F VALUES (1, 'x') DEGREE 0.5`,
		`DEFINE TERM 'young' AS TRAP(0,0,22,30)`,
	} {
		st, err := ParseStatement(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		// Each statement's rendering must re-parse to the same rendering.
		st2, err := ParseStatement(st.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", st.String(), err)
		}
		if st.String() != st2.String() {
			t.Errorf("round trip: %q vs %q", st.String(), st2.String())
		}
	}
}

func TestParseCreateDropIndex(t *testing.T) {
	st, err := ParseStatement(`CREATE INDEX r_b ON R (B)`)
	if err != nil {
		t.Fatal(err)
	}
	ci := st.(*CreateIndex)
	if ci.Name != "r_b" || ci.Table != "R" || ci.Attr != "B" {
		t.Errorf("create index = %+v", ci)
	}
	if got := ci.String(); got != `CREATE INDEX r_b ON R (B)` {
		t.Errorf("String = %q", got)
	}

	// Quoted names survive (and stay quoted when not identifier-shaped).
	st, err = ParseStatement(`CREATE INDEX 'my index' ON S (A)`)
	if err != nil {
		t.Fatal(err)
	}
	ci = st.(*CreateIndex)
	if ci.Name != "my index" {
		t.Errorf("quoted name = %q", ci.Name)
	}
	if got := ci.String(); got != `CREATE INDEX 'my index' ON S (A)` {
		t.Errorf("String = %q", got)
	}
	// A quoted identifier-shaped name renders bare; the rendering is a
	// fixed point after one normalization.
	st, err = ParseStatement(`DROP INDEX "r_b"`)
	if err != nil {
		t.Fatal(err)
	}
	di := st.(*DropIndex)
	if di.Name != "r_b" {
		t.Errorf("name = %q", di.Name)
	}
	if got := di.String(); got != `DROP INDEX r_b` {
		t.Errorf("String = %q", got)
	}

	for _, bad := range []string{
		`CREATE INDEX`,
		`CREATE INDEX i1`,
		`CREATE INDEX i1 ON`,
		`CREATE INDEX i1 ON R`,
		`CREATE INDEX i1 ON R ()`,
		`CREATE INDEX i1 ON R (B`,
		`CREATE INDEX '' ON R (B)`,
		`CREATE VIEW v AS SELECT R.X FROM R`,
		`DROP INDEX`,
		`DROP SEQUENCE s`,
	} {
		if _, err := ParseStatement(bad); err == nil {
			t.Errorf("ParseStatement(%q): want error", bad)
		}
	}
}

func TestLexerComments(t *testing.T) {
	q := mustQuery(t, "SELECT R.X -- comment here\nFROM R")
	if len(q.Items) != 1 {
		t.Errorf("items = %v", q.Items)
	}
}

func TestParseQueryRejectsNonSelect(t *testing.T) {
	if _, err := ParseQuery(`CREATE TABLE R (X NUMBER)`); err == nil {
		t.Errorf("ParseQuery of DDL: want error")
	}
}

func TestParseSemicolonTolerance(t *testing.T) {
	if _, err := ParseQuery(`SELECT R.X FROM R;`); err != nil {
		t.Errorf("trailing semicolon: %v", err)
	}
	stmts, err := ParseScript(`;;SELECT R.X FROM R;;`)
	if err != nil || len(stmts) != 1 {
		t.Errorf("ParseScript = %v, %v", stmts, err)
	}
}

func TestBindingAndTableRefString(t *testing.T) {
	tr := TableRef{Name: "EMP", Alias: "R"}
	if tr.Binding() != "R" || tr.String() != "EMP R" {
		t.Errorf("tr = %q %q", tr.Binding(), tr.String())
	}
	tr = TableRef{Name: "EMP"}
	if tr.Binding() != "EMP" || tr.String() != "EMP" {
		t.Errorf("tr = %q %q", tr.Binding(), tr.String())
	}
}

func TestPredicateStrings(t *testing.T) {
	q := mustQuery(t, `SELECT R.X FROM R WHERE R.Y = ANY (SELECT S.Z FROM S)`)
	if !strings.Contains(q.String(), "ANY") {
		t.Errorf("String = %q", q.String())
	}
}

func TestParseNear(t *testing.T) {
	q := mustQuery(t, `SELECT R.X FROM R, S WHERE R.Y NEAR S.Z WITHIN 5`)
	p := q.Where[0]
	if p.Kind != PredNear || p.Left.Ref != "R.Y" || p.Right.Ref != "S.Z" {
		t.Fatalf("pred = %v", p)
	}
	if p.Tol != fuzzy.Tolerance(5, 5) {
		t.Errorf("tolerance = %v, want symmetric crisp band 5", p.Tol)
	}

	q = mustQuery(t, `SELECT R.X FROM R WHERE R.Y NEAR 10 WITHIN TRAP(-4, -1, 1, 4)`)
	p = q.Where[0]
	if p.Tol != fuzzy.Trap(-4, -1, 1, 4) {
		t.Errorf("tolerance = %v", p.Tol)
	}

	// Round trip through String.
	q2 := mustQuery(t, q.String())
	if q.String() != q2.String() {
		t.Errorf("round trip mismatch: %s vs %s", q, q2)
	}

	// Errors: missing WITHIN, non-literal tolerance.
	for _, bad := range []string{
		`SELECT R.X FROM R WHERE R.Y NEAR 10`,
		`SELECT R.X FROM R WHERE R.Y NEAR 10 WITHIN R.Z`,
		`SELECT R.X FROM R WHERE R.Y NEAR 10 WITHIN 'five'`,
	} {
		if _, err := ParseQuery(bad); err == nil {
			t.Errorf("%q: want error", bad)
		}
	}
}

func TestParseOrderByLimit(t *testing.T) {
	q := mustQuery(t, `SELECT R.X FROM R WHERE R.Y > 1 WITH D >= 0.2 ORDER BY D DESC LIMIT 10`)
	if q.OrderBy != "D" || !q.OrderDesc || !q.HasLimit || q.Limit != 10 {
		t.Errorf("shape = %+v", q)
	}
	q = mustQuery(t, `SELECT R.X FROM R ORDER BY R.X ASC`)
	if q.OrderBy != "R.X" || q.OrderDesc {
		t.Errorf("shape = %+v", q)
	}
	q = mustQuery(t, `SELECT R.X FROM R LIMIT 0`)
	if !q.HasLimit || q.Limit != 0 {
		t.Errorf("shape = %+v", q)
	}
	// Round trip.
	q = mustQuery(t, `SELECT R.X FROM R ORDER BY D DESC LIMIT 3`)
	q2 := mustQuery(t, q.String())
	if q.String() != q2.String() {
		t.Errorf("round trip: %s vs %s", q, q2)
	}
	for _, bad := range []string{
		`SELECT R.X FROM R LIMIT -1`,
		`SELECT R.X FROM R LIMIT 2.5`,
		`SELECT R.X FROM R ORDER BY`,
	} {
		if _, err := ParseQuery(bad); err == nil {
			t.Errorf("%q: want error", bad)
		}
	}
}

func TestParseDelete(t *testing.T) {
	st, err := ParseStatement(`DELETE FROM W WHERE W.AGE = 'medium young' WITH D >= 0.7`)
	if err != nil {
		t.Fatal(err)
	}
	del := st.(*Delete)
	if del.Table != "W" || len(del.Where) != 1 || del.Threshold != 0.7 {
		t.Errorf("delete = %+v", del)
	}
	st, err = ParseStatement(`DELETE FROM W`)
	if err != nil {
		t.Fatal(err)
	}
	del = st.(*Delete)
	if del.Table != "W" || len(del.Where) != 0 || del.Threshold != 0 {
		t.Errorf("delete = %+v", del)
	}
	// Round trip.
	st2, err := ParseStatement(st.String())
	if err != nil || st.String() != st2.String() {
		t.Errorf("round trip: %v / %v", st, err)
	}
	if _, err := ParseStatement(`DELETE W`); err == nil {
		t.Errorf("missing FROM: want error")
	}
}

func TestParseCheckpoint(t *testing.T) {
	st, err := ParseStatement(`CHECKPOINT`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.(*Checkpoint); !ok {
		t.Fatalf("parsed %T, want *Checkpoint", st)
	}
	if st.String() != "CHECKPOINT" {
		t.Errorf("String = %q", st.String())
	}
	// Round trip and script form.
	stmts, err := ParseScript(`INSERT INTO R VALUES (1); CHECKPOINT; CHECKPOINT;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("script parsed to %d statements", len(stmts))
	}
	if _, ok := stmts[1].(*Checkpoint); !ok {
		t.Errorf("statement 1 = %T", stmts[1])
	}
	if _, err := ParseStatement(`CHECKPOINT NOW`); err == nil {
		t.Errorf("trailing tokens: want error")
	}
}

func TestParseTransactionControl(t *testing.T) {
	cases := []struct {
		sql  string
		want Statement
	}{
		{"BEGIN", &Begin{}},
		{"begin", &Begin{}},
		{"COMMIT", &Commit{}},
		{"ROLLBACK", &Rollback{}},
	}
	for _, c := range cases {
		st, err := ParseStatement(c.sql)
		if err != nil {
			t.Fatalf("%s: %v", c.sql, err)
		}
		if fmt.Sprintf("%T", st) != fmt.Sprintf("%T", c.want) {
			t.Errorf("%s parsed to %T, want %T", c.sql, st, c.want)
		}
		if got := st.String(); got != strings.ToUpper(c.sql) {
			t.Errorf("%s String = %q", c.sql, got)
		}
	}
	// Script form: a whole transaction parses statement by statement.
	stmts, err := ParseScript(`BEGIN; INSERT INTO R VALUES (1); COMMIT; BEGIN; ROLLBACK;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 5 {
		t.Fatalf("script parsed to %d statements, want 5", len(stmts))
	}
	if _, ok := stmts[0].(*Begin); !ok {
		t.Errorf("statement 0 = %T, want *Begin", stmts[0])
	}
	if _, ok := stmts[2].(*Commit); !ok {
		t.Errorf("statement 2 = %T, want *Commit", stmts[2])
	}
	if _, ok := stmts[4].(*Rollback); !ok {
		t.Errorf("statement 4 = %T, want *Rollback", stmts[4])
	}
	if _, err := ParseStatement(`BEGIN TRANSACTION`); err == nil {
		t.Errorf("trailing tokens: want error")
	}
}
