package fsql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/frel"
	"repro/internal/fuzzy"
)

// parser is a recursive-descent parser with one token of lookahead.
type parser struct {
	lx  *lexer
	tok token
	// params counts '?' placeholders, assigning each its ordinal in
	// parse order.
	params int
}

func newParser(src string) (*parser, error) {
	p := &parser{lx: newLexer(src)}
	return p, p.advance()
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// kw reports whether the current token is the given keyword
// (case-insensitive identifier).
func (p *parser) kw(word string) bool {
	return p.tok.kind == tokIdent && strings.EqualFold(p.tok.text, word)
}

// acceptKw consumes the keyword if present.
func (p *parser) acceptKw(word string) (bool, error) {
	if !p.kw(word) {
		return false, nil
	}
	return true, p.advance()
}

// expectKw consumes the keyword or fails.
func (p *parser) expectKw(word string) error {
	if !p.kw(word) {
		return fmt.Errorf("fsql: expected %s, got %s", word, p.tok)
	}
	return p.advance()
}

// acceptSym consumes the symbol if present.
func (p *parser) acceptSym(s string) (bool, error) {
	if p.tok.kind != tokSymbol || p.tok.text != s {
		return false, nil
	}
	return true, p.advance()
}

// expectSym consumes the symbol or fails.
func (p *parser) expectSym(s string) error {
	if p.tok.kind != tokSymbol || p.tok.text != s {
		return fmt.Errorf("fsql: expected %q, got %s", s, p.tok)
	}
	return p.advance()
}

// ident consumes an identifier and returns its text.
func (p *parser) ident() (string, error) {
	if p.tok.kind != tokIdent {
		return "", fmt.Errorf("fsql: expected identifier, got %s", p.tok)
	}
	text := p.tok.text
	return text, p.advance()
}

// number consumes a (possibly negative) numeric literal.
func (p *parser) number() (float64, error) {
	neg := false
	if p.tok.kind == tokSymbol && p.tok.text == "-" {
		neg = true
		if err := p.advance(); err != nil {
			return 0, err
		}
	}
	if p.tok.kind != tokNumber {
		return 0, fmt.Errorf("fsql: expected number, got %s", p.tok)
	}
	v, err := strconv.ParseFloat(p.tok.text, 64)
	if err != nil {
		return 0, fmt.Errorf("fsql: bad number %q: %v", p.tok.text, err)
	}
	if neg {
		// 0-v, not -v: "-0" must parse to positive zero or the literal
		// would re-render as "-0" while comparing equal to 0, breaking
		// the String round-trip invariant.
		v = 0 - v
	}
	return v, p.advance()
}

// ref consumes an (optionally qualified) attribute reference.
func (p *parser) ref() (string, error) {
	first, err := p.ident()
	if err != nil {
		return "", err
	}
	ok, err := p.acceptSym(".")
	if err != nil {
		return "", err
	}
	if !ok {
		return first, nil
	}
	second, err := p.ident()
	if err != nil {
		return "", err
	}
	return first + "." + second, nil
}

// ParseQuery parses a single SELECT query.
func ParseQuery(src string) (*Select, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if _, err := p.acceptSym(";"); err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("fsql: trailing input at %s", p.tok)
	}
	return sel, nil
}

// ParseStatement parses any single statement.
func ParseStatement(src string) (Statement, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if _, err := p.acceptSym(";"); err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("fsql: trailing input at %s", p.tok)
	}
	return st, nil
}

// ParseScript parses a semicolon-separated sequence of statements.
func ParseScript(src string) ([]Statement, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	var out []Statement
	for {
		// Skip stray semicolons.
		for {
			ok, err := p.acceptSym(";")
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
		}
		if p.tok.kind == tokEOF {
			return out, nil
		}
		st, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.kw("SELECT"):
		return p.parseSelect()
	case p.kw("EXPLAIN"):
		return p.parseExplain()
	case p.kw("CREATE"):
		return p.parseCreate()
	case p.kw("DROP"):
		return p.parseDrop()
	case p.kw("INSERT"):
		return p.parseInsert()
	case p.kw("DELETE"):
		return p.parseDelete()
	case p.kw("DEFINE"):
		return p.parseDefineTerm()
	case p.kw("CHECKPOINT"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Checkpoint{}, nil
	case p.kw("BEGIN"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Begin{}, nil
	case p.kw("COMMIT"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Commit{}, nil
	case p.kw("ROLLBACK"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Rollback{}, nil
	default:
		return nil, fmt.Errorf("fsql: expected a statement, got %s", p.tok)
	}
}

// parseExplain parses EXPLAIN [ANALYZE] <select>.
func (p *parser) parseExplain() (Statement, error) {
	if err := p.expectKw("EXPLAIN"); err != nil {
		return nil, err
	}
	analyze, err := p.acceptKw("ANALYZE")
	if err != nil {
		return nil, err
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	return &Explain{Analyze: analyze, Query: sel}, nil
}

func (p *parser) parseSelect() (*Select, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{}
	if ok, err := p.acceptKw("DISTINCT"); err != nil {
		return nil, err
	} else if ok {
		sel.Distinct = true
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		ok, err := p.acceptSym(",")
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	for {
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		sel.From = append(sel.From, tr)
		ok, err := p.acceptSym(",")
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
	}
	if ok, err := p.acceptKw("WHERE"); err != nil {
		return nil, err
	} else if ok {
		preds, err := p.parseConjunction()
		if err != nil {
			return nil, err
		}
		sel.Where = preds
	}
	groupBy, err := p.parseOptGroupBy()
	if err != nil {
		return nil, err
	}
	sel.GroupBy = groupBy
	if ok, err := p.acceptKw("HAVING"); err != nil {
		return nil, err
	} else if ok {
		preds, err := p.parseConjunction()
		if err != nil {
			return nil, err
		}
		sel.Having = preds
	}
	if ok, err := p.acceptKw("WITH"); err != nil {
		return nil, err
	} else if ok {
		if err := p.expectKw("D"); err != nil {
			return nil, err
		}
		if p.tok.kind != tokOp || (p.tok.text != ">=" && p.tok.text != ">") {
			return nil, fmt.Errorf("fsql: WITH clause expects D >= z, got %s", p.tok)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		z, err := p.number()
		if err != nil {
			return nil, err
		}
		if z < 0 || z > 1 {
			return nil, fmt.Errorf("fsql: WITH threshold %g out of [0, 1]", z)
		}
		sel.With = z
		sel.HasWith = true
	}
	if ok, err := p.acceptKw("ORDER"); err != nil {
		return nil, err
	} else if ok {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		ref, err := p.ref()
		if err != nil {
			return nil, err
		}
		sel.OrderBy = ref
		if ok, err := p.acceptKw("DESC"); err != nil {
			return nil, err
		} else if ok {
			sel.OrderDesc = true
		} else if ok, err := p.acceptKw("ASC"); err != nil {
			return nil, err
		} else if ok {
			sel.OrderDesc = false
		}
	}
	if ok, err := p.acceptKw("LIMIT"); err != nil {
		return nil, err
	} else if ok {
		n, err := p.number()
		if err != nil {
			return nil, err
		}
		if n < 0 || n != float64(int(n)) {
			return nil, fmt.Errorf("fsql: LIMIT expects a non-negative integer, got %g", n)
		}
		sel.Limit = int(n)
		sel.HasLimit = true
	}
	return sel, nil
}

func (p *parser) parseDelete() (Statement, error) {
	if err := p.expectKw("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: name}
	if ok, err := p.acceptKw("WHERE"); err != nil {
		return nil, err
	} else if ok {
		preds, err := p.parseConjunction()
		if err != nil {
			return nil, err
		}
		del.Where = preds
	}
	if ok, err := p.acceptKw("WITH"); err != nil {
		return nil, err
	} else if ok {
		if err := p.expectKw("D"); err != nil {
			return nil, err
		}
		if p.tok.kind != tokOp || (p.tok.text != ">=" && p.tok.text != ">") {
			return nil, fmt.Errorf("fsql: WITH clause expects D >= z, got %s", p.tok)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		z, err := p.number()
		if err != nil {
			return nil, err
		}
		if z < 0 || z > 1 {
			return nil, fmt.Errorf("fsql: WITH threshold %g out of [0, 1]", z)
		}
		del.Threshold = z
	}
	return del, nil
}

func (p *parser) parseOptGroupBy() ([]string, error) {
	switch {
	case p.kw("GROUPBY"):
		if err := p.advance(); err != nil {
			return nil, err
		}
	case p.kw("GROUP"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
	default:
		return nil, nil
	}
	var refs []string
	for {
		r, err := p.ref()
		if err != nil {
			return nil, err
		}
		refs = append(refs, r)
		ok, err := p.acceptSym(",")
		if err != nil {
			return nil, err
		}
		if !ok {
			return refs, nil
		}
	}
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.tok.kind == tokIdent {
		if agg, err := fuzzy.ParseAggFunc(p.tok.text); err == nil {
			// Aggregate only if followed by '('.
			save := *p
			saveLx := *p.lx
			if err := p.advance(); err != nil {
				return SelectItem{}, err
			}
			if ok, err := p.acceptSym("("); err != nil {
				return SelectItem{}, err
			} else if ok {
				r, err := p.ref()
				if err != nil {
					return SelectItem{}, err
				}
				if err := p.expectSym(")"); err != nil {
					return SelectItem{}, err
				}
				return SelectItem{HasAgg: true, Agg: agg, Ref: r}, nil
			}
			*p.lx = saveLx
			p.tok = save.tok
		}
	}
	r, err := p.ref()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Ref: r}, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	tr := TableRef{Name: name}
	// An alias is a bare identifier that is not a clause keyword.
	if p.tok.kind == tokIdent && !p.isClauseKeyword(p.tok.text) {
		alias, err := p.ident()
		if err != nil {
			return TableRef{}, err
		}
		tr.Alias = alias
	}
	return tr, nil
}

func (p *parser) isClauseKeyword(s string) bool {
	switch strings.ToUpper(s) {
	case "WHERE", "GROUPBY", "GROUP", "HAVING", "WITH", "FROM", "SELECT", "ORDER", "LIMIT":
		return true
	default:
		return false
	}
}

func (p *parser) parseConjunction() ([]Predicate, error) {
	var preds []Predicate
	for {
		pr, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		preds = append(preds, pr)
		ok, err := p.acceptKw("AND")
		if err != nil {
			return nil, err
		}
		if !ok {
			return preds, nil
		}
	}
}

func (p *parser) parsePredicate() (Predicate, error) {
	// EXISTS / NOT EXISTS have no left operand. The paper's Section 7
	// notes queries with the EXIST quantifier unnest like SOME; both
	// spellings are accepted.
	if p.kw("EXISTS") || p.kw("EXIST") {
		if err := p.advance(); err != nil {
			return Predicate{}, err
		}
		sub, err := p.parseSubquery()
		if err != nil {
			return Predicate{}, err
		}
		return Predicate{Kind: PredExists, Sub: sub}, nil
	}
	if p.kw("NOT") {
		save := *p
		saveLx := *p.lx
		if err := p.advance(); err != nil {
			return Predicate{}, err
		}
		if p.kw("EXISTS") || p.kw("EXIST") {
			if err := p.advance(); err != nil {
				return Predicate{}, err
			}
			sub, err := p.parseSubquery()
			if err != nil {
				return Predicate{}, err
			}
			return Predicate{Kind: PredNotExists, Sub: sub}, nil
		}
		*p.lx = saveLx
		p.tok = save.tok
	}
	left, err := p.parseOperand()
	if err != nil {
		return Predicate{}, err
	}
	// X IN (subquery) / X NOT IN (subquery). The paper also writes
	// "is in" / "is not in"; accept the IS prefix.
	if ok, err := p.acceptKw("IS"); err != nil {
		return Predicate{}, err
	} else if ok && !p.kw("IN") && !p.kw("NOT") {
		return Predicate{}, fmt.Errorf("fsql: expected IN or NOT after IS, got %s", p.tok)
	}
	if ok, err := p.acceptKw("IN"); err != nil {
		return Predicate{}, err
	} else if ok {
		sub, err := p.parseSubquery()
		if err != nil {
			return Predicate{}, err
		}
		return Predicate{Kind: PredIn, Left: left, Sub: sub}, nil
	}
	if ok, err := p.acceptKw("NOT"); err != nil {
		return Predicate{}, err
	} else if ok {
		if err := p.expectKw("IN"); err != nil {
			return Predicate{}, err
		}
		sub, err := p.parseSubquery()
		if err != nil {
			return Predicate{}, err
		}
		return Predicate{Kind: PredNotIn, Left: left, Sub: sub}, nil
	}
	// Similarity predicate: X NEAR Y WITHIN tol. The tolerance is a plain
	// number (a symmetric crisp band) or a fuzzy literal of differences.
	if ok, err := p.acceptKw("NEAR"); err != nil {
		return Predicate{}, err
	} else if ok {
		right, err := p.parseOperand()
		if err != nil {
			return Predicate{}, err
		}
		if err := p.expectKw("WITHIN"); err != nil {
			return Predicate{}, err
		}
		tolOpd, err := p.parseOperand()
		if err != nil {
			return Predicate{}, err
		}
		if tolOpd.Kind != OpdNumber {
			return Predicate{}, fmt.Errorf("fsql: NEAR tolerance must be a number or fuzzy literal, got %s", tolOpd)
		}
		tol := tolOpd.Num
		if tol.IsCrisp() {
			// A plain number w means the symmetric band [-w, +w].
			tol = fuzzy.Tolerance(tol.A, tol.A)
		}
		return Predicate{Kind: PredNear, Left: left, Right: right, Tol: tol}, nil
	}
	if p.tok.kind != tokOp {
		return Predicate{}, fmt.Errorf("fsql: expected comparison operator, got %s", p.tok)
	}
	op, err := fuzzy.ParseOp(p.tok.text)
	if err != nil {
		return Predicate{}, err
	}
	if err := p.advance(); err != nil {
		return Predicate{}, err
	}
	// Quantified subquery.
	for q, name := range map[Quantifier]string{QuantAll: "ALL", QuantAny: "ANY", QuantSome: "SOME"} {
		if ok, err := p.acceptKw(name); err != nil {
			return Predicate{}, err
		} else if ok {
			sub, err := p.parseSubquery()
			if err != nil {
				return Predicate{}, err
			}
			return Predicate{Kind: PredQuant, Left: left, Op: op, Quant: q, Sub: sub}, nil
		}
	}
	// Scalar subquery: op '(' SELECT ... ')'.
	if p.tok.kind == tokSymbol && p.tok.text == "(" {
		sub, err := p.parseSubquery()
		if err != nil {
			return Predicate{}, err
		}
		return Predicate{Kind: PredScalarSub, Left: left, Op: op, Sub: sub}, nil
	}
	right, err := p.parseOperand()
	if err != nil {
		return Predicate{}, err
	}
	return Predicate{Kind: PredCompare, Left: left, Op: op, Right: right}, nil
}

func (p *parser) parseSubquery() (*Select, error) {
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	sub, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return sub, nil
}

func (p *parser) parseOperand() (Operand, error) {
	switch {
	case p.tok.kind == tokSymbol && p.tok.text == "?":
		opd := Operand{Kind: OpdParam, Ord: p.params}
		p.params++
		return opd, p.advance()
	case p.tok.kind == tokNumber || p.tok.kind == tokSymbol && p.tok.text == "-":
		v, err := p.number()
		if err != nil {
			return Operand{}, err
		}
		return NumOperand(fuzzy.Crisp(v)), nil
	case p.tok.kind == tokString:
		s := p.tok.text
		return StrOperand(s), p.advance()
	case p.tok.kind == tokIdent:
		// Fuzzy literal functions.
		upper := strings.ToUpper(p.tok.text)
		switch upper {
		case "TRAP", "TRI", "ABOUT", "INTERVAL":
			t, err := p.parseFuzzyLiteral(upper)
			if err != nil {
				return Operand{}, err
			}
			return NumOperand(t), nil
		}
		r, err := p.ref()
		if err != nil {
			return Operand{}, err
		}
		return RefOperand(r), nil
	default:
		return Operand{}, fmt.Errorf("fsql: expected operand, got %s", p.tok)
	}
}

// parseFuzzyLiteral parses TRAP(a,b,c,d), TRI(a,b,c), ABOUT(x[,spread])
// and INTERVAL(lo,hi). The keyword has been seen but not consumed.
func (p *parser) parseFuzzyLiteral(fn string) (fuzzy.Trapezoid, error) {
	if err := p.advance(); err != nil {
		return fuzzy.Trapezoid{}, err
	}
	if err := p.expectSym("("); err != nil {
		return fuzzy.Trapezoid{}, err
	}
	var args []float64
	for {
		v, err := p.number()
		if err != nil {
			return fuzzy.Trapezoid{}, err
		}
		args = append(args, v)
		ok, err := p.acceptSym(",")
		if err != nil {
			return fuzzy.Trapezoid{}, err
		}
		if !ok {
			break
		}
	}
	if err := p.expectSym(")"); err != nil {
		return fuzzy.Trapezoid{}, err
	}
	switch fn {
	case "TRAP":
		if len(args) != 4 {
			return fuzzy.Trapezoid{}, fmt.Errorf("fsql: TRAP takes 4 arguments, got %d", len(args))
		}
		return fuzzy.NewTrap(args[0], args[1], args[2], args[3])
	case "TRI":
		if len(args) != 3 {
			return fuzzy.Trapezoid{}, fmt.Errorf("fsql: TRI takes 3 arguments, got %d", len(args))
		}
		return fuzzy.NewTrap(args[0], args[1], args[1], args[2])
	case "ABOUT":
		switch len(args) {
		case 1:
			return fuzzy.About(args[0], defaultAboutSpread(args[0])), nil
		case 2:
			if args[1] < 0 {
				return fuzzy.Trapezoid{}, fmt.Errorf("fsql: ABOUT spread must be non-negative")
			}
			return fuzzy.About(args[0], args[1]), nil
		default:
			return fuzzy.Trapezoid{}, fmt.Errorf("fsql: ABOUT takes 1 or 2 arguments, got %d", len(args))
		}
	case "INTERVAL":
		if len(args) != 2 {
			return fuzzy.Trapezoid{}, fmt.Errorf("fsql: INTERVAL takes 2 arguments, got %d", len(args))
		}
		return fuzzy.NewTrap(args[0], args[0], args[1], args[1])
	default:
		return fuzzy.Trapezoid{}, fmt.Errorf("fsql: unknown fuzzy literal %q", fn)
	}
}

// defaultAboutSpread is the spread used by one-argument ABOUT(x): 10% of
// the magnitude, with a floor of 1.
func defaultAboutSpread(x float64) float64 {
	s := x
	if s < 0 {
		s = -s
	}
	s *= 0.1
	if s < 1 {
		s = 1
	}
	return s
}

// parseCreate dispatches CREATE TABLE vs CREATE INDEX.
func (p *parser) parseCreate() (Statement, error) {
	if err := p.expectKw("CREATE"); err != nil {
		return nil, err
	}
	switch {
	case p.kw("TABLE"):
		return p.parseCreateTable()
	case p.kw("INDEX"):
		return p.parseCreateIndex()
	default:
		return nil, fmt.Errorf("fsql: expected TABLE or INDEX after CREATE, got %s", p.tok)
	}
}

// parseDrop dispatches DROP TABLE vs DROP INDEX.
func (p *parser) parseDrop() (Statement, error) {
	if err := p.expectKw("DROP"); err != nil {
		return nil, err
	}
	switch {
	case p.kw("TABLE"):
		return p.parseDropTable()
	case p.kw("INDEX"):
		return p.parseDropIndex()
	default:
		return nil, fmt.Errorf("fsql: expected TABLE or INDEX after DROP, got %s", p.tok)
	}
}

// name consumes an object name: a bare identifier or a quoted string.
func (p *parser) name() (string, error) {
	if p.tok.kind == tokString {
		text := p.tok.text
		if text == "" {
			return "", fmt.Errorf("fsql: empty quoted name")
		}
		return text, p.advance()
	}
	return p.ident()
}

// parseCreateIndex parses INDEX name ON table (attr); CREATE has been
// consumed.
func (p *parser) parseCreateIndex() (Statement, error) {
	if err := p.expectKw("INDEX"); err != nil {
		return nil, err
	}
	name, err := p.name()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("ON"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	attr, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return &CreateIndex{Name: name, Table: table, Attr: attr}, nil
}

// parseDropIndex parses INDEX name; DROP has been consumed.
func (p *parser) parseDropIndex() (Statement, error) {
	if err := p.expectKw("INDEX"); err != nil {
		return nil, err
	}
	name, err := p.name()
	if err != nil {
		return nil, err
	}
	return &DropIndex{Name: name}, nil
}

// parseCreateTable parses TABLE name (col type, ...); CREATE has been
// consumed.
func (p *parser) parseCreateTable() (Statement, error) {
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	ct := &CreateTable{Name: name}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		kindName, err := p.ident()
		if err != nil {
			return nil, err
		}
		var kind frel.Kind
		switch strings.ToUpper(kindName) {
		case "NUMBER", "FUZZY", "NUMERIC":
			kind = frel.KindNumber
		case "STRING", "TEXT", "CHAR", "VARCHAR":
			kind = frel.KindString
		default:
			return nil, fmt.Errorf("fsql: unknown column type %q", kindName)
		}
		ct.Attrs = append(ct.Attrs, frel.Attribute{Name: strings.ToUpper(col), Kind: kind})
		ok, err := p.acceptSym(",")
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return ct, nil
}

// parseDropTable parses TABLE name; DROP has been consumed.
func (p *parser) parseDropTable() (Statement, error) {
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &DropTable{Name: name}, nil
}

func (p *parser) parseInsert() (Statement, error) {
	if err := p.expectKw("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	ins := &Insert{Table: name, Degree: 1}
	for {
		opd, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		if opd.Kind == OpdRef {
			return nil, fmt.Errorf("fsql: INSERT values must be literals, got reference %q", opd.Ref)
		}
		ins.Values = append(ins.Values, opd)
		ok, err := p.acceptSym(",")
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	if ok, err := p.acceptKw("DEGREE"); err != nil {
		return nil, err
	} else if ok {
		d, err := p.number()
		if err != nil {
			return nil, err
		}
		if d <= 0 || d > 1 {
			return nil, fmt.Errorf("fsql: DEGREE %g out of (0, 1]", d)
		}
		ins.Degree = d
	}
	return ins, nil
}

func (p *parser) parseDefineTerm() (Statement, error) {
	if err := p.expectKw("DEFINE"); err != nil {
		return nil, err
	}
	if err := p.expectKw("TERM"); err != nil {
		return nil, err
	}
	if p.tok.kind != tokString {
		return nil, fmt.Errorf("fsql: DEFINE TERM expects a quoted term name, got %s", p.tok)
	}
	name := p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectKw("AS"); err != nil {
		return nil, err
	}
	if p.tok.kind != tokIdent {
		return nil, fmt.Errorf("fsql: DEFINE TERM expects a fuzzy literal, got %s", p.tok)
	}
	fn := strings.ToUpper(p.tok.text)
	switch fn {
	case "TRAP", "TRI", "ABOUT", "INTERVAL":
	default:
		return nil, fmt.Errorf("fsql: DEFINE TERM expects TRAP/TRI/ABOUT/INTERVAL, got %s", p.tok)
	}
	t, err := p.parseFuzzyLiteral(fn)
	if err != nil {
		return nil, err
	}
	return &DefineTerm{Name: name, Value: t}, nil
}

// ParseLiteral parses a single literal value — a number, a quoted or bare
// string, or a fuzzy literal TRAP/TRI/ABOUT/INTERVAL — as used in CSV
// cells and other data-loading paths. A bare unquoted string that is not
// numeric or a fuzzy literal is returned as a string operand.
func ParseLiteral(src string) (Operand, error) {
	p, err := newParser(src)
	if err != nil {
		return Operand{}, err
	}
	// Bare words (possibly several, e.g. "medium young") are strings.
	if p.tok.kind == tokIdent {
		switch strings.ToUpper(p.tok.text) {
		case "TRAP", "TRI", "ABOUT", "INTERVAL":
		default:
			return StrOperand(strings.TrimSpace(src)), nil
		}
	}
	opd, err := p.parseOperand()
	if err != nil {
		return Operand{}, err
	}
	if p.tok.kind != tokEOF {
		return Operand{}, fmt.Errorf("fsql: trailing input in literal %q", src)
	}
	if opd.Kind == OpdRef {
		return StrOperand(opd.Ref), nil
	}
	return opd, nil
}
