package fsql

import (
	"strings"
	"testing"

	"repro/internal/fuzzy"
)

func TestParamsParseAndRender(t *testing.T) {
	q, err := ParseQuery(`SELECT R.K FROM R WHERE R.B = ? AND R.K IN (SELECT S.B FROM S WHERE S.A = ?)`)
	if err != nil {
		t.Fatal(err)
	}
	if got := NumParams(q); got != 2 {
		t.Fatalf("NumParams = %d, want 2", got)
	}
	// Rendering keeps the placeholders and round-trips to the same
	// ordinals.
	s := q.String()
	if strings.Count(s, "?") != 2 {
		t.Fatalf("rendered %q, want two placeholders", s)
	}
	q2, err := ParseQuery(s)
	if err != nil {
		t.Fatalf("re-parse %q: %v", s, err)
	}
	if q2.Where[0].Right.Ord != 0 || q2.Where[1].Sub.Where[0].Right.Ord != 1 {
		t.Fatalf("re-parse ordinals wrong: %+v", q2)
	}
}

func TestBindQuery(t *testing.T) {
	q, err := ParseQuery(`SELECT R.K FROM R WHERE R.B = ? AND R.A = ?`)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := BindQuery(q, []Operand{NumOperand(fuzzy.Crisp(7)), StrOperand("young")})
	if err != nil {
		t.Fatal(err)
	}
	if bound.Where[0].Right.Kind != OpdNumber || bound.Where[1].Right.Str != "young" {
		t.Fatalf("binding wrong: %v", bound)
	}
	// The original is untouched and can be bound again.
	if q.Where[0].Right.Kind != OpdParam || q.Where[1].Right.Kind != OpdParam {
		t.Fatalf("original mutated: %v", q)
	}
	if _, err := BindQuery(q, nil); err == nil {
		t.Fatal("want arity error for zero args")
	}
	if _, err := BindQuery(q, []Operand{RefOperand("R.K"), NumOperand(fuzzy.Crisp(1))}); err == nil {
		t.Fatal("want literal-only error for ref argument")
	}
}

func TestBindInsertAndDelete(t *testing.T) {
	st, err := ParseStatement(`INSERT INTO R VALUES (?, ?, 3)`)
	if err != nil {
		t.Fatal(err)
	}
	if got := NumParams(st); got != 2 {
		t.Fatalf("NumParams = %d, want 2", got)
	}
	bound, err := BindStatement(st, []Operand{NumOperand(fuzzy.Crisp(1)), StrOperand("x")})
	if err != nil {
		t.Fatal(err)
	}
	ins := bound.(*Insert)
	if ins.Values[0].Kind != OpdNumber || ins.Values[1].Str != "x" {
		t.Fatalf("insert binding wrong: %v", ins)
	}
	if st.(*Insert).Values[0].Kind != OpdParam {
		t.Fatal("original insert mutated")
	}

	del, err := ParseStatement(`DELETE FROM R WHERE R.K = ?`)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := BindStatement(del, []Operand{NumOperand(fuzzy.Crisp(9))})
	if err != nil {
		t.Fatal(err)
	}
	if b2.(*Delete).Where[0].Right.Kind != OpdNumber {
		t.Fatalf("delete binding wrong: %v", b2)
	}
}
