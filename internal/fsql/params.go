package fsql

import "fmt"

// Prepared-statement parameters. A '?' anywhere an operand is accepted
// (WHERE/HAVING predicates of a SELECT at any nesting depth, INSERT
// values, DELETE conditions) parses to an OpdParam operand whose ordinal
// is its position in parse order. BindStatement substitutes literal
// operands for the placeholders in a deep copy of the statement, so one
// parsed statement can be bound and executed many times concurrently.

// NumParams returns the number of '?' placeholders in the statement.
func NumParams(st Statement) int {
	n := 0
	walkOperands(st, func(o *Operand) {
		if o.Kind == OpdParam && o.Ord+1 > n {
			n = o.Ord + 1
		}
	})
	return n
}

// BindStatement returns a deep copy of st with every '?' placeholder
// replaced by the argument of its ordinal. Arguments must be literals
// (OpdNumber or OpdString) and must match the placeholder count exactly.
func BindStatement(st Statement, args []Operand) (Statement, error) {
	want := NumParams(st)
	if len(args) != want {
		return nil, fmt.Errorf("fsql: statement has %d parameters, got %d arguments", want, len(args))
	}
	for i, a := range args {
		if a.Kind != OpdNumber && a.Kind != OpdString {
			return nil, fmt.Errorf("fsql: argument %d must be a literal", i)
		}
	}
	bound := cloneStatement(st)
	var err error
	walkOperands(bound, func(o *Operand) {
		if o.Kind != OpdParam {
			return
		}
		if o.Ord < 0 || o.Ord >= len(args) {
			err = fmt.Errorf("fsql: parameter ordinal %d out of range", o.Ord)
			return
		}
		*o = args[o.Ord]
	})
	if err != nil {
		return nil, err
	}
	return bound, nil
}

// BindQuery is BindStatement restricted to SELECT queries.
func BindQuery(q *Select, args []Operand) (*Select, error) {
	st, err := BindStatement(q, args)
	if err != nil {
		return nil, err
	}
	return st.(*Select), nil
}

// walkOperands visits every operand of the statement (in place), following
// subqueries to any depth.
func walkOperands(st Statement, f func(*Operand)) {
	switch s := st.(type) {
	case *Select:
		walkSelectOperands(s, f)
	case *Insert:
		for i := range s.Values {
			f(&s.Values[i])
		}
	case *Delete:
		walkPredOperands(s.Where, f)
	case *Explain:
		walkSelectOperands(s.Query, f)
	}
}

func walkSelectOperands(s *Select, f func(*Operand)) {
	if s == nil {
		return
	}
	walkPredOperands(s.Where, f)
	walkPredOperands(s.Having, f)
}

func walkPredOperands(preds []Predicate, f func(*Operand)) {
	for i := range preds {
		p := &preds[i]
		switch p.Kind {
		case PredExists, PredNotExists:
			// No left operand.
		default:
			f(&p.Left)
		}
		switch p.Kind {
		case PredCompare, PredNear:
			f(&p.Right)
		}
		walkSelectOperands(p.Sub, f)
	}
}

// cloneStatement deep-copies the parts of a statement that binding
// mutates: predicates, value lists, and nested query blocks.
func cloneStatement(st Statement) Statement {
	switch s := st.(type) {
	case *Select:
		return CloneSelect(s)
	case *Insert:
		c := *s
		c.Values = append([]Operand(nil), s.Values...)
		return &c
	case *Delete:
		c := *s
		c.Where = clonePreds(s.Where)
		return &c
	case *Explain:
		c := *s
		c.Query = CloneSelect(s.Query)
		return &c
	default:
		return st
	}
}

// CloneSelect deep-copies a query block, including all nested subqueries.
func CloneSelect(s *Select) *Select {
	if s == nil {
		return nil
	}
	c := *s
	c.Items = append([]SelectItem(nil), s.Items...)
	c.From = append([]TableRef(nil), s.From...)
	c.GroupBy = append([]string(nil), s.GroupBy...)
	c.Where = clonePreds(s.Where)
	c.Having = clonePreds(s.Having)
	return &c
}

func clonePreds(preds []Predicate) []Predicate {
	if preds == nil {
		return nil
	}
	out := make([]Predicate, len(preds))
	for i, p := range preds {
		p.Sub = CloneSelect(p.Sub)
		out[i] = p
	}
	return out
}
