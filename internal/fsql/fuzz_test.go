package fsql

import "testing"

// fuzzSeeds covers every statement form of DESIGN.md: SELECT with nested
// subqueries of each class, fuzzy literals, NEAR, GROUPBY/HAVING, WITH,
// ORDER BY/LIMIT, EXPLAIN [ANALYZE], and the DDL/DML statements.
var fuzzSeeds = []string{
	`SELECT R.X FROM R`,
	`SELECT DISTINCT R.X, R.Y FROM R, S`,
	`SELECT R.X FROM R WHERE R.Y = 3 AND R.Z > -1.5`,
	`SELECT R.X FROM R WHERE R.Y = 1e+21`,
	`SELECT F.NAME FROM F WHERE F.AGE = 'medium young'`,
	`SELECT R.X FROM R WHERE R.NAME = 'O''Brien'`,
	`SELECT R.X FROM R WHERE R.Y = TRAP(20, 25, 30, 35) AND R.Z = TRI(1, 2, 3)`,
	`SELECT R.X FROM R WHERE R.W = ABOUT(35, 5) AND R.V = INTERVAL(10, 20)`,
	`SELECT R.X FROM R WHERE R.Y = ABOUT(50)`,
	`SELECT R.X FROM R, S WHERE R.Y NEAR S.Z WITHIN 5`,
	`SELECT R.X FROM R WHERE R.Y NEAR 10 WITHIN TRAP(-4, -1, 1, 4)`,
	`SELECT R.B IN (SELECT S.B FROM S) FROM R`,
	`SELECT R.K FROM R WHERE R.B IN (SELECT S.B FROM S)`,
	`SELECT R.K FROM R WHERE R.B IN (SELECT S.B FROM S WHERE S.A = R.A)`,
	`SELECT R.K FROM R WHERE R.B NOT IN (SELECT S.B FROM S WHERE S.A = R.A)`,
	`SELECT R.K FROM R WHERE R.B >= (SELECT AVG(S.B) FROM S WHERE S.A = R.A)`,
	`SELECT R.K FROM R WHERE R.K >= (SELECT COUNT(S.B) FROM S WHERE S.A = R.A)`,
	`SELECT R.K FROM R WHERE R.B > ALL (SELECT S.B FROM S WHERE S.A = R.A)`,
	`SELECT R.X FROM R WHERE R.Y = ANY (SELECT S.Z FROM S)`,
	`SELECT R.X FROM R WHERE R.Y >= SOME (SELECT S.Z FROM S)`,
	`SELECT R.X FROM R WHERE EXISTS (SELECT S.Z FROM S WHERE S.V = R.U)`,
	`SELECT R.X FROM R WHERE R.Y > 3 AND NOT EXISTS (SELECT S.Z FROM S) AND R.X < 9`,
	`SELECT R.X, COUNT(R.Y) FROM R GROUPBY R.X`,
	`SELECT R.X FROM R GROUP BY R.X, R.Y HAVING R.X > 3`,
	`SELECT R.X FROM R WITH D >= 0.5`,
	`SELECT R.X FROM R WHERE R.Y > 1 WITH D >= 0.2 ORDER BY D DESC LIMIT 10`,
	`SELECT R.X FROM R ORDER BY R.X ASC`,
	`SELECT R.X FROM R LIMIT 0`,
	`EXPLAIN SELECT R.K FROM R WHERE R.B IN (SELECT S.B FROM S WHERE S.A = R.A)`,
	`EXPLAIN ANALYZE SELECT R.K FROM R WHERE R.B IN (SELECT S.B FROM S)`,
	`CREATE TABLE F (ID NUMBER, NAME STRING, AGE NUMBER, INCOME NUMBER)`,
	`DROP TABLE F`,
	`INSERT INTO M VALUES (201, 'Allen', 24, 'about 25K')`,
	`INSERT INTO M VALUES (1, TRAP(1,2,3,4)) DEGREE 0.6`,
	`DELETE FROM W WHERE W.AGE = 'medium young' WITH D >= 0.7`,
	`DELETE FROM W`,
	`DEFINE TERM 'medium young' AS TRAP(20, 25, 30, 35)`,
	`DEFINE TERM 'young' AS ABOUT(25, 10)`,
	`CREATE INDEX r_b ON R (B)`,
	`CREATE INDEX 'my index' ON S (A)`,
	`CREATE INDEX "quoted" ON S (B)`,
	`DROP INDEX r_b`,
	`DROP INDEX 'my index'`,
	// Known-invalid inputs: the fuzzer mutates these toward boundary
	// cases of the error paths.
	`SELECT R.X FROM R WHERE R.Y = 'unterminated`,
	`SELECT R.X FROM R trailing junk`,
	`INSERT INTO`,
	"SELECT R.X -- comment\nFROM R;",
}

// FuzzParser checks that the parser never panics on arbitrary input and
// that every statement it accepts round-trips: parse → String → parse
// must succeed and re-render to the identical text (String is a fixed
// point after one normalization).
func FuzzParser(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		st, err := ParseStatement(src)
		if err != nil {
			return
		}
		rendered := st.String()
		st2, err := ParseStatement(rendered)
		if err != nil {
			t.Fatalf("round-trip parse failed\ninput:    %q\nrendered: %q\nerror:    %v", src, rendered, err)
		}
		if again := st2.String(); again != rendered {
			t.Fatalf("String not a fixed point\ninput:  %q\nfirst:  %q\nsecond: %q", src, rendered, again)
		}
	})
}

// TestFuzzSeedsRoundTrip runs the fuzz property over the seed corpus in
// a plain test so it is exercised by `go test` without -fuzz, and checks
// every valid seed actually parses.
func TestFuzzSeedsRoundTrip(t *testing.T) {
	valid := 0
	for _, src := range fuzzSeeds {
		st, err := ParseStatement(src)
		if err != nil {
			continue
		}
		valid++
		rendered := st.String()
		st2, err := ParseStatement(rendered)
		if err != nil {
			t.Errorf("round-trip parse failed for %q → %q: %v", src, rendered, err)
			continue
		}
		if again := st2.String(); again != rendered {
			t.Errorf("String not a fixed point for %q: %q vs %q", src, rendered, again)
		}
	}
	// All seeds except the deliberately-invalid block must parse.
	if want := len(fuzzSeeds) - 4; valid < want {
		t.Errorf("only %d/%d seeds parsed; want at least %d valid statements", valid, len(fuzzSeeds), want)
	}
}
