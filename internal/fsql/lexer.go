package fsql

import (
	"fmt"
	"strings"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // ( ) , . ; * ?
	tokOp     // = <> != < <= > >=
)

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset, for error messages
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer tokenizes a Fuzzy SQL source string.
type lexer struct {
	src string
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: src} }

func (l *lexer) errf(pos int, format string, args ...interface{}) error {
	return fmt.Errorf("fsql: at offset %d: %s", pos, fmt.Sprintf(format, args...))
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// SQL line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, pos: l.pos}, nil

scan:
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return token{tokIdent, l.src[start:l.pos], start}, nil

	case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
		seenDot := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if isDigit(ch) {
				l.pos++
				continue
			}
			if ch == '.' && !seenDot && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
				seenDot = true
				l.pos++
				continue
			}
			break
		}
		// Exponent part (%g renders large magnitudes as e.g. 1e+21).
		if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
			p := l.pos + 1
			if p < len(l.src) && (l.src[p] == '+' || l.src[p] == '-') {
				p++
			}
			if p < len(l.src) && isDigit(l.src[p]) {
				l.pos = p
				for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
					l.pos++
				}
			}
		}
		return token{tokNumber, l.src[start:l.pos], start}, nil

	case c == '\'' || c == '"':
		quote := c
		l.pos++
		var sb strings.Builder
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == quote {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == quote {
					// Doubled quote escapes itself.
					sb.WriteByte(quote)
					l.pos += 2
					continue
				}
				l.pos++
				return token{tokString, sb.String(), start}, nil
			}
			sb.WriteByte(ch)
			l.pos++
		}
		return token{}, l.errf(start, "unterminated string literal")

	case c == '(' || c == ')' || c == ',' || c == '.' || c == ';' || c == '*' || c == '?':
		l.pos++
		return token{tokSymbol, string(c), start}, nil

	case c == '=':
		l.pos++
		return token{tokOp, "=", start}, nil

	case c == '<':
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '=' || l.src[l.pos] == '>') {
			l.pos++
			return token{tokOp, l.src[start:l.pos], start}, nil
		}
		return token{tokOp, "<", start}, nil

	case c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{tokOp, ">=", start}, nil
		}
		return token{tokOp, ">", start}, nil

	case c == '!':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{tokOp, "!=", start}, nil
		}
		return token{}, l.errf(start, "unexpected character %q", c)

	case c == '-':
		l.pos++
		return token{tokSymbol, "-", start}, nil

	default:
		return token{}, l.errf(start, "unexpected character %q", rune(c))
	}
}

// isIdentStart accepts ASCII letters and underscore only. Bytes >= 0x80
// are rejected: treating them as Latin-1 letters made identifiers that
// case-folding (which is UTF-8 aware) silently corrupted, so they could
// not survive a parse → String → parse round-trip.
func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
